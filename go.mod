module vantage

go 1.22
