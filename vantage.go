// Package vantage is a from-scratch implementation of Vantage, the scalable
// fine-grain cache-partitioning scheme of Sanchez and Kozyrakis (ISCA 2011),
// together with every substrate its evaluation depends on: zcache and
// skew-associative arrays, H3 hashing, LRU and RRIP replacement, the
// way-partitioning and PIPP baselines, utility-based cache partitioning
// (UMON-DSS + Lookahead), a multicore cache-hierarchy simulator, synthetic
// SPEC-like workload models, and the paper's analytical models.
//
// The package is a facade: implementation lives in internal packages, and
// this package re-exports the public API.
//
// # Quick start
//
//	arr := vantage.NewZCache(32768, 4, 52, seed)       // 2 MB, Z4/52
//	ctl := vantage.New(arr, vantage.Config{
//	    Partitions:    4,
//	    UnmanagedFrac: 0.05,
//	    AMax:          0.5,
//	    Slack:         0.1,
//	})
//	ctl.SetTargets([]int{16384, 8192, 4096, 2489})     // lines per partition
//	res := ctl.Access(addr, partitionID)               // on every L2 access
//
// See examples/ for complete programs and internal/exp for the harness that
// regenerates the paper's figures and tables.
package vantage

import (
	"vantage/internal/analytic"
	"vantage/internal/cache"
	"vantage/internal/core"
	"vantage/internal/ctrl"
	"vantage/internal/part"
	"vantage/internal/repl"
	"vantage/internal/ucp"
)

// Core controller types.
type (
	// Config configures a Vantage controller (§4 of the paper).
	Config = core.Config
	// Controller is the Vantage cache controller.
	Controller = core.Controller
	// Mode selects the controller variant (setpoint, perfect-aperture
	// validation, or Vantage-DRRIP).
	Mode = core.Mode
	// Counters are the controller's event counts.
	Counters = core.Counters
)

// Controller variants.
const (
	// ModeSetpoint is the practical controller the paper evaluates.
	ModeSetpoint = core.ModeSetpoint
	// ModePerfectAperture is the §6.2 validation configuration.
	ModePerfectAperture = core.ModePerfectAperture
	// ModeRRIP is Vantage-DRRIP.
	ModeRRIP = core.ModeRRIP
	// ModeOnePerEviction is the §3.3 demotion-discipline ablation.
	ModeOnePerEviction = core.ModeOnePerEviction
)

// New returns a Vantage controller over any cache array.
func New(arr Array, cfg Config) *Controller { return core.New(arr, cfg) }

// Cache array types.
type (
	// Array is the interface all cache array designs implement.
	Array = cache.Array
	// LineID identifies a line slot within an array.
	LineID = cache.LineID
	// Line is a tag-array entry.
	Line = cache.Line
	// ZCache is a zcache (or skew-associative) array.
	ZCache = cache.ZCache
	// SetAssoc is a set-associative array.
	SetAssoc = cache.SetAssoc
	// RandomCands is the idealized uniform-candidates array.
	RandomCands = cache.RandomCands
)

// NewZCache returns a zcache with the given geometry, e.g.
// NewZCache(n, 4, 52, seed) for the paper's Z4/52.
func NewZCache(numLines, ways, candidates int, seed uint64) *ZCache {
	return cache.NewZCache(numLines, ways, candidates, seed)
}

// NewSkewAssoc returns a skew-associative array (a zcache without
// candidate-tree expansion).
func NewSkewAssoc(numLines, ways int, seed uint64) *ZCache {
	return cache.NewSkew(numLines, ways, seed)
}

// NewSetAssoc returns a set-associative array, optionally with hashed
// indexing (H3).
func NewSetAssoc(numLines, ways int, hashed bool, seed uint64) *SetAssoc {
	return cache.NewSetAssoc(numLines, ways, hashed, seed)
}

// NewRandomCands returns the idealized random-candidates array used to
// validate the analytical models.
func NewRandomCands(numLines, candidates int, seed uint64) *RandomCands {
	return cache.NewRandomCands(numLines, candidates, seed)
}

// Cache controller interfaces and baselines.
type (
	// CacheController is the interface shared by Vantage, the baseline
	// schemes, and unpartitioned caches.
	CacheController = ctrl.Controller
	// AccessResult reports what one access did.
	AccessResult = ctrl.AccessResult
	// EvictionObserver receives victim priorities for associativity
	// measurements.
	EvictionObserver = ctrl.EvictionObserver
	// ReplacementPolicy ranks lines for unpartitioned caches.
	ReplacementPolicy = repl.Policy
	// WayPartition is the way-partitioning baseline.
	WayPartition = part.WayPartition
	// PIPP is the promotion/insertion pseudo-partitioning baseline.
	PIPP = part.PIPP
)

// NewUnpartitioned returns a cache with no partitioning, pairing an array
// with a replacement policy; partition IDs are still tracked for occupancy
// accounting.
func NewUnpartitioned(arr Array, pol ReplacementPolicy, partitions int) CacheController {
	return ctrl.NewUnpartitioned(arr, pol, partitions)
}

// NewWayPartition returns the way-partitioning baseline over a
// set-associative array.
func NewWayPartition(arr *SetAssoc, partitions int) *WayPartition {
	return part.NewWayPartition(arr, partitions)
}

// NewPIPP returns the PIPP baseline over a set-associative array.
func NewPIPP(arr *SetAssoc, partitions int, seed uint64) *PIPP {
	return part.NewPIPP(arr, partitions, seed)
}

// Replacement policies.

// NewLRU returns coarse-timestamp LRU (the paper's base policy).
func NewLRU(numLines int) ReplacementPolicy { return repl.NewLRUTimestamp(numLines) }

// NewSRRIP, NewBRRIP, NewDRRIP and NewTADRRIP return the RRIP-family
// policies evaluated in Fig 11.
func NewSRRIP(numLines int) ReplacementPolicy { return repl.NewSRRIP(numLines) }

// NewBRRIP returns the bimodal RRIP policy.
func NewBRRIP(numLines int, seed uint64) ReplacementPolicy { return repl.NewBRRIP(numLines, seed) }

// NewDRRIP returns dynamic RRIP with set dueling.
func NewDRRIP(numLines int, seed uint64) ReplacementPolicy { return repl.NewDRRIP(numLines, seed) }

// NewTADRRIP returns thread-aware DRRIP.
func NewTADRRIP(numLines, threads int, seed uint64) ReplacementPolicy {
	return repl.NewTADRRIP(numLines, threads, seed)
}

// UCP allocation policy.
type (
	// UCP is the utility-based cache partitioning allocation policy.
	UCP = ucp.Policy
	// UMON is one core's utility monitor.
	UMON = ucp.UMON
	// Granularity selects way- or line-granularity allocation.
	Granularity = ucp.Granularity
)

// Allocation granularities.
const (
	// GranWays allocates whole ways (way-partitioning, PIPP).
	GranWays = ucp.GranWays
	// GranLines allocates 256ths of capacity (Vantage).
	GranLines = ucp.GranLines
)

// NewUCP returns a UCP policy for the given partition count, monitor
// associativity, and cache capacity.
func NewUCP(partitions, ways, cacheLines int, gran Granularity, seed uint64) *UCP {
	return ucp.NewPolicy(partitions, ways, cacheLines, gran, seed)
}

// Lookahead exposes UCP's allocation algorithm directly: it distributes
// total units across partitions by maximum marginal utility.
func Lookahead(hitCurves [][]float64, total, minPerPartition int) []int {
	return ucp.Lookahead(hitCurves, total, minPerPartition)
}

// Analytical models (paper §3, §4.3).
var (
	// AssocCDF is Equation 1: FA(x) = x^R.
	AssocCDF = analytic.AssocCDF
	// Aperture is Equation 4.
	Aperture = analytic.Aperture
	// MinStableSize is Equation 5.
	MinStableSize = analytic.MinStableSize
	// FeedbackAperture is Equation 7.
	FeedbackAperture = analytic.FeedbackAperture
	// UnmanagedFraction is the §4.3 sizing rule.
	UnmanagedFraction = analytic.UnmanagedFraction
	// ForcedEvictionProb is Pev = (1-u)^R.
	ForcedEvictionProb = analytic.ForcedEvictionProb
)

// StateOverhead reports Vantage's hardware state overhead (Fig 4).
func StateOverhead(lines, partitions, tagBits, lineBytes int) analytic.StateOverhead {
	return analytic.Overhead(lines, partitions, tagBits, lineBytes)
}
