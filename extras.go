package vantage

import (
	"io"

	"vantage/internal/part"
	"vantage/internal/sim"
	"vantage/internal/trace"
	"vantage/internal/ucp"
)

// Additional allocation policies ([9]'s taxonomy: communist, utilitarian,
// capitalist) and supporting infrastructure.

// Allocator decides partition targets; UCP and the simple policies below
// implement it, and Simulate accepts any of them.
type Allocator = sim.Allocator

// NewStaticAllocator returns a fixed-share allocation policy (for QoS
// reservations, pinning, and other uses that bypass utility monitoring).
func NewStaticAllocator(shares []float64) Allocator { return ucp.NewStatic(shares) }

// NewEqualShareAllocator returns the "communist" equal-split policy.
func NewEqualShareAllocator(partitions int) Allocator { return ucp.NewEqualShare(partitions) }

// NewProportionalAllocator returns the "capitalist" demand-proportional
// policy with a minimum per-partition share floor.
func NewProportionalAllocator(partitions int, floor float64) Allocator {
	return ucp.NewProportional(partitions, floor)
}

// UCPRRIP is the Vantage-DRRIP allocation policy (§6.2): UMON-RRIP monitors
// drive both Lookahead and the per-partition SRRIP/BRRIP choice.
type UCPRRIP = ucp.PolicyRRIP

// NewUCPRRIP returns a Vantage-DRRIP allocation policy.
func NewUCPRRIP(partitions, ways, cacheLines int, seed uint64) *UCPRRIP {
	return ucp.NewPolicyRRIP(partitions, ways, cacheLines, seed)
}

// SetPartition is the set-partitioning baseline (reconfigurable caches):
// full associativity per partition, but coarse allocations and scrubbing on
// resize.
type SetPartition = part.SetPartition

// NewSetPartition returns a set-partitioning controller over a
// set-associative array.
func NewSetPartition(arr *SetAssoc, partitions int) *SetPartition {
	return part.NewSetPartition(arr, partitions)
}

// Trace recording and replay.
type (
	// TraceRecord is one memory reference of a trace.
	TraceRecord = trace.Record
	// TraceWriter streams records in the compact binary format.
	TraceWriter = trace.Writer
	// TraceReader reads them back.
	TraceReader = trace.Reader
	// TraceApp replays a trace as an App, looping at the end.
	TraceApp = trace.App
)

// NewTraceWriter returns a trace writer over w.
func NewTraceWriter(w io.Writer) (*TraceWriter, error) { return trace.NewWriter(w) }

// NewTraceReader returns a trace reader over r.
func NewTraceReader(r io.Reader) (*TraceReader, error) { return trace.NewReader(r) }

// CaptureTrace runs app for n references, recording its stream.
func CaptureTrace(w *TraceWriter, app App, n int) error { return trace.Capture(w, app, n) }

// NewTraceApp replays recs as an App.
func NewTraceApp(name string, cat AppCategory, recs []TraceRecord) *TraceApp {
	return trace.NewApp(name, cat, recs)
}
