package vantage

import (
	"vantage/internal/exp"
	"vantage/internal/sim"
	"vantage/internal/workload"
)

// Simulation types.
type (
	// SimConfig configures one multicore simulation run.
	SimConfig = sim.Config
	// SimResult is its outcome.
	SimResult = sim.Result
	// CoreStats are one core's measurement-window counters.
	CoreStats = sim.CoreStats
	// Latencies are the memory-hierarchy latencies (Table 2).
	Latencies = sim.Latencies
)

// Simulate runs one multicore simulation to completion.
func Simulate(cfg SimConfig) SimResult { return sim.Run(cfg) }

// DefaultLatencies returns the paper's Table 2 latencies.
func DefaultLatencies() Latencies { return sim.DefaultLatencies() }

// Workload types.
type (
	// App is a synthetic application model.
	App = workload.App
	// AppCategory is the paper's Table 3 workload class.
	AppCategory = workload.Category
	// Mix is one multiprogrammed workload.
	Mix = workload.Mix
	// MixClass is a multiset of four categories.
	MixClass = workload.Class
	// WorkloadParams scales workload parameters to a cache capacity.
	WorkloadParams = workload.Params
)

// Workload categories (Table 3).
const (
	// Insensitive apps miss under 5 MPKI at any allocation.
	Insensitive = workload.Insensitive
	// Friendly apps benefit gradually from capacity.
	Friendly = workload.Friendly
	// Fitting apps have a miss cliff near their working-set size.
	Fitting = workload.Fitting
	// Thrashing apps see no benefit from any realistic allocation.
	Thrashing = workload.Thrashing
)

// NewZipfApp returns a cache-friendly Zipf-reuse application model.
func NewZipfApp(cat AppCategory, lines int, alpha, gapMean float64, burst int, seed uint64) App {
	return workload.NewZipfApp(cat, lines, alpha, gapMean, burst, seed)
}

// NewScanApp returns a cyclic-scan (cache-fitting) application model.
func NewScanApp(cat AppCategory, lines int, gapMean float64, burst int, seed uint64) App {
	return workload.NewScanApp(cat, lines, gapMean, burst, seed)
}

// NewStreamApp returns a streaming (thrashing) application model.
func NewStreamApp(regionLines int, gapMean float64, burst int, seed uint64) App {
	return workload.NewStreamApp(regionLines, gapMean, burst, seed)
}

// Mixes generates the paper's multiprogrammed workload set (35 classes ×
// mixesPerClass) for a machine with the given core count.
func Mixes(cores, mixesPerClass int, p WorkloadParams, seed uint64) []Mix {
	return workload.Mixes(cores, mixesPerClass, p, seed)
}

// Experiment harness types (the figure/table reproductions).
type (
	// Machine is a simulated CMP configuration (Table 2).
	Machine = exp.Machine
	// ExperimentScale selects unit/small/full experiment sizes.
	ExperimentScale = exp.Scale
	// Scheme is a cache configuration under test.
	Scheme = exp.Scheme
	// ThroughputResult is a Fig 6a/7-style relative-throughput result.
	ThroughputResult = exp.ThroughputResult
)

// Experiment scales.
const (
	// ScaleUnit is the smallest useful configuration.
	ScaleUnit = exp.ScaleUnit
	// ScaleSmall is the default experiment scale.
	ScaleSmall = exp.ScaleSmall
	// ScaleFull approaches the paper's geometry.
	ScaleFull = exp.ScaleFull
)

// SmallCMP returns the paper's 4-core machine at the given scale.
func SmallCMP(s ExperimentScale) Machine { return exp.SmallCMP(s) }

// LargeCMP returns the paper's 32-core machine at the given scale.
func LargeCMP(s ExperimentScale) Machine { return exp.LargeCMP(s) }
