package vantage

import (
	"net"

	"vantage/internal/service"
)

// The serving layer: a thread-safe, sharded, multi-tenant key-value cache
// where each shard is governed by a live Vantage controller, tenants map to
// partitions, and capacity targets are set online by UCP from per-tenant
// utility monitors fed by the real request stream. cmd/vantaged wraps this
// in a daemon; see internal/service for the wire protocol.

// Serving types.
type (
	// CacheService is the sharded multi-tenant cache service.
	CacheService = service.Service
	// ServiceConfig configures a CacheService.
	ServiceConfig = service.Config
	// ServiceServer serves the cache text protocol over TCP.
	ServiceServer = service.Server
	// ServiceStats is a whole-service statistics snapshot.
	ServiceStats = service.Stats
	// ServiceTenantStats is one tenant's statistics snapshot.
	ServiceTenantStats = service.TenantStats
)

// NewService returns a running cache service.
func NewService(cfg ServiceConfig) (*CacheService, error) { return service.New(cfg) }

// ServeCache starts serving the cache protocol for svc on lis, one handler
// goroutine per connection; close the returned server for graceful shutdown.
func ServeCache(svc *CacheService, lis net.Listener) *ServiceServer {
	return service.Serve(svc, lis)
}
