// Command mixgen lists the paper's multiprogrammed workload mixes (35
// classes × N mixes per class) with the per-app parameters the generator
// drew, so experiment runs are auditable and reproducible.
//
// Usage:
//
//	mixgen [-cores 4|8|...|32] [-per 10] [-lines 32768] [-seed 2011] [-class sftn]
package main

import (
	"flag"
	"fmt"
	"os"

	"vantage/internal/workload"
)

func main() {
	cores := flag.Int("cores", 4, "core count (multiple of 4)")
	per := flag.Int("per", 10, "mixes per class")
	lines := flag.Int("lines", 32768, "L2 lines the workloads target")
	seed := flag.Uint64("seed", 2011, "generator seed")
	class := flag.String("class", "", "only list mixes of this class (e.g. sftn)")
	mrc := flag.Bool("mrc", false, "print each app's exact LRU miss-rate curve (Mattson stack algorithm)")
	mrcRefs := flag.Int("mrc-refs", 200000, "references per app for -mrc")
	flag.Parse()

	filter := ""
	if *class != "" {
		filter = workload.CanonicalMixID(*class + "1")
		filter = filter[:4]
	}

	mixes := workload.Mixes(*cores, *per, workload.Params{CacheLines: *lines}, *seed)
	sizes := []int{*lines / 16, *lines / 4, *lines / 2, *lines, 2 * *lines}
	count := 0
	for _, m := range mixes {
		if filter != "" && m.Class.String() != filter {
			continue
		}
		count++
		fmt.Printf("%s:", m.ID)
		for _, app := range m.Apps {
			fmt.Printf(" %s", app.Name())
		}
		fmt.Println()
		if *mrc {
			for ai, app := range m.Apps {
				// Compute the curve over a recording of a fresh app instance
				// rather than consuming the mix's app in place: the listed
				// mix stays at reference zero, and the recorded stream is
				// shared if more consumers appear. The budget covers the
				// full pass; the remake factory only runs past it.
				ai, id := ai, m.ID
				remake := func() workload.App {
					cls, idx, err := workload.ParseMixID(id)
					if err != nil {
						panic(fmt.Sprintf("mixgen: cannot rebuild mix %q: %v", id, err))
					}
					return workload.NewMix(cls, idx, *cores/4, workload.Params{CacheLines: *lines}, *seed).Apps[ai]
				}
				rec := workload.NewRecording(remake(), remake, *mrcRefs+64)
				curve := workload.MissRateCurveRecorded(rec, *mrcRefs, sizes)
				fmt.Printf("  %-28s miss%%:", app.Name())
				for i, v := range curve {
					fmt.Printf(" %d:%0.1f", sizes[i], 100*v)
				}
				fmt.Println()
			}
		}
	}
	if count == 0 {
		fmt.Fprintln(os.Stderr, "mixgen: no mixes matched")
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "%d mixes, %d apps each\n", count, *cores)
}
