//go:build !unix

package main

// raiseNOFILE is a no-op off unix; 0 means "limit unknown" and the idle
// bench keeps its default target.
func raiseNOFILE() int { return 0 }
