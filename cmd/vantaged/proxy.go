package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"vantage/internal/cluster"
	"vantage/internal/latency"
)

// proxyMain runs "vantaged proxy": a pooled, pipelined consistent-hash
// forwarder that lets ring-unaware clients talk to a cluster through one
// address. Hot data commands on both wire fronts (text and binary) ride
// persistent per-backend binary connections shared across clients; see
// internal/cluster/proxy.go.
func proxyMain(args []string) {
	fs := flag.NewFlagSet("vantaged proxy", flag.ExitOnError)
	listen := fs.String("listen", ":7170", "proxy listen address")
	clusterList := fs.String("cluster", "", "comma-separated member addresses (required)")
	vnodes := fs.Int("vnodes", cluster.DefaultVNodes, "consistent-hash virtual nodes per member (must match the nodes)")
	metricsAddr := fs.String("metrics", "", "HTTP listen address for the proxy's own /metrics (empty disables)")
	trackLatency := fs.Bool("track-latency", false, "record per-request forwarding latency (exported as a histogram on /metrics and via STATS)")
	fs.Parse(args)

	members := splitAddrs(*clusterList)
	if len(members) == 0 {
		fmt.Fprintln(os.Stderr, "vantaged proxy: -cluster is required")
		os.Exit(2)
	}
	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vantaged proxy:", err)
		os.Exit(1)
	}
	p, err := cluster.NewProxyWith(lis, members, *vnodes, cluster.ProxyConfig{TrackLatency: *trackLatency})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vantaged proxy:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "vantaged proxy: forwarding %s -> %v (%d vnodes)\n", p.Addr(), members, *vnodes)

	var httpSrv *http.Server
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			writeProxyMetrics(w, p.Stats())
		})
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintln(w, "ok")
		})
		httpSrv = &http.Server{Addr: *metricsAddr, Handler: mux}
		go func() {
			if err := httpSrv.ListenAndServe(); err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "vantaged proxy: metrics:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "vantaged proxy: metrics on %s/metrics\n", *metricsAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "vantaged proxy: shutting down")
	if httpSrv != nil {
		httpSrv.Close()
	}
	p.Close()
}

// writeProxyMetrics renders the proxy's own counters in the Prometheus
// text exposition format, using the same histogram bucket layout the
// nodes export so dashboards can overlay node and proxy latency.
func writeProxyMetrics(w http.ResponseWriter, st cluster.ProxyStats) {
	fmt.Fprintf(w, "# TYPE vantaged_proxy_pool_conns gauge\n")
	fmt.Fprintf(w, "vantaged_proxy_pool_conns %d\n", st.PoolConns)
	fmt.Fprintf(w, "# TYPE vantaged_proxy_pool_conns_total counter\n")
	fmt.Fprintf(w, "vantaged_proxy_pool_conns_total %d\n", st.PoolConnsTotal)
	fmt.Fprintf(w, "# TYPE vantaged_proxy_pipelined_frames_total counter\n")
	fmt.Fprintf(w, "vantaged_proxy_pipelined_frames_total %d\n", st.PipelinedFrames)
	if st.LatencyCounts == nil {
		return
	}
	name := "vantaged_proxy_request_latency_seconds"
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	var cum uint64
	for i, c := range st.LatencyCounts {
		cum += c
		if i == len(st.LatencyCounts)-1 {
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
		} else {
			fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, float64(latency.BucketUpperNS(i))/1e9, cum)
		}
	}
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(st.LatencySumNS)/1e9)
	fmt.Fprintf(w, "%s_count %d\n", name, cum)
}

// splitAddrs parses a comma-separated address list, trimming blanks.
func splitAddrs(list string) []string {
	var out []string
	for _, s := range strings.Split(list, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}
