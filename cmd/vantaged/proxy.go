package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"vantage/internal/cluster"
)

// proxyMain runs "vantaged proxy": a thin consistent-hash forwarder that
// lets ring-unaware clients talk to a cluster through one address. Both
// wire fronts (text and binary) are forwarded verbatim; see
// internal/cluster/proxy.go.
func proxyMain(args []string) {
	fs := flag.NewFlagSet("vantaged proxy", flag.ExitOnError)
	listen := fs.String("listen", ":7170", "proxy listen address")
	clusterList := fs.String("cluster", "", "comma-separated member addresses (required)")
	vnodes := fs.Int("vnodes", cluster.DefaultVNodes, "consistent-hash virtual nodes per member (must match the nodes)")
	fs.Parse(args)

	members := splitAddrs(*clusterList)
	if len(members) == 0 {
		fmt.Fprintln(os.Stderr, "vantaged proxy: -cluster is required")
		os.Exit(2)
	}
	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vantaged proxy:", err)
		os.Exit(1)
	}
	p, err := cluster.NewProxy(lis, members, *vnodes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vantaged proxy:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "vantaged proxy: forwarding %s -> %v (%d vnodes)\n", p.Addr(), members, *vnodes)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "vantaged proxy: shutting down")
	p.Close()
}

// splitAddrs parses a comma-separated address list, trimming blanks.
func splitAddrs(list string) []string {
	var out []string
	for _, s := range strings.Split(list, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}
