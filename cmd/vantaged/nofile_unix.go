//go:build unix

package main

import "syscall"

// raiseNOFILE lifts the soft RLIMIT_NOFILE to the hard cap (best effort) and
// returns the resulting soft limit, or 0 when it can't be read — the idle
// bench adapts its connection count to whatever this achieves.
func raiseNOFILE() int {
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
		return 0
	}
	if rl.Cur < rl.Max {
		rl.Cur = rl.Max
		syscall.Setrlimit(syscall.RLIMIT_NOFILE, &rl)
		syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl)
	}
	if rl.Cur > 1<<20 {
		return 1 << 20
	}
	return int(rl.Cur)
}
