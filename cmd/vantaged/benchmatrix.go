package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vantage/internal/cluster"
	"vantage/internal/hash"
	"vantage/internal/service"
	"vantage/internal/service/loadgen"
	"vantage/internal/workload"
)

// benchRow is one matrix cell in BENCH_service.json.
type benchRow struct {
	Name       string  `json:"name"`
	Goroutines int     `json:"goroutines,omitempty"`
	Conns      int     `json:"conns,omitempty"`
	Batch      int     `json:"batch,omitempty"`
	MaxConns   int     `json:"max_conns,omitempty"`
	Ops        uint64  `json:"ops"`
	Seconds    float64 `json:"seconds"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	Rejected   uint64  `json:"rejected,omitempty"`
	Shed       uint64  `json:"shed,omitempty"`
	Dropped    uint64  `json:"dropped,omitempty"`
	Expired    uint64  `json:"expired,omitempty"`
	SweepLines uint64  `json:"sweep_lines,omitempty"`

	// Idle-connection probe (tcp-bin/idle-conns only): server-side heap
	// bytes and goroutines attributable to each parked binary connection.
	BytesPerConn      float64 `json:"bytes_per_conn,omitempty"`
	GoroutinesPerConn float64 `json:"goroutines_per_conn,omitempty"`
}

// benchReport is the BENCH_service.json schema.
type benchReport struct {
	GoVersion string     `json:"go_version"`
	NumCPU    int        `json:"num_cpu"`
	Shards    int        `json:"shards"`
	Lines     int        `json:"cache_lines"`
	ValueSize int        `json:"value_size"`
	Seed      uint64     `json:"seed"`
	Results   []benchRow `json:"results"`
}

// benchCase names one matrix cell up front so -only can filter by name
// substring without running the rest of the matrix.
type benchCase struct {
	name string
	run  func() (benchRow, error)
}

// runBenchMatrix runs the standard performance matrix and writes it to path:
// the in-process sharded access path at 1/4/16 goroutines (the same shape as
// BenchmarkShardedAccess: per-goroutine tenants, zipf working sets, ~90/10
// GET/PUT plus fills), then TCP loadgen against a self-hosted server over
// both wire protocols (tcp/* text, tcp-bin/* binary) unbatched and at
// batch=32, hot-read protocol-ceiling rows, the 10k idle-connection probe,
// the overload and TTL-storm scenarios, and the 3-node cluster rows (ring
// client, BMGET, and proxied). only, when non-empty, restricts the matrix
// to rows whose name contains it (the CI regression check runs just the
// cluster rows this way).
func runBenchMatrix(path, only string, lines, shards, valueSize int, seed uint64) (benchReport, error) {
	rep := benchReport{
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Shards:    shards,
		Lines:     lines,
		ValueSize: valueSize,
		Seed:      seed,
	}

	var cases []benchCase
	for _, gs := range []int{1, 4, 16} {
		gs := gs
		cases = append(cases, benchCase{fmt.Sprintf("inproc/goroutines=%d", gs), func() (benchRow, error) {
			return runInprocBench(gs, lines, shards, valueSize, seed)
		}})
	}
	for _, bin := range []bool{false, true} {
		for _, batch := range []int{1, 32} {
			bin, batch := bin, batch
			name := "tcp"
			if bin {
				name = "tcp-bin"
			}
			cases = append(cases, benchCase{fmt.Sprintf("%s/batch=%d", name, batch), func() (benchRow, error) {
				return runTCPBench(bin, batch, false, lines, shards, valueSize, seed)
			}})
		}
	}
	// Hot-read ceiling: the standard mix above is replacement-bound (the
	// stream tenant misses constantly, so putAt + the Vantage controller
	// dominate the profile); the insensitive-only rows measure what the wire
	// protocols themselves sustain when the cache serves ~all hits.
	for _, bin := range []bool{false, true} {
		bin := bin
		name := "tcp"
		if bin {
			name = "tcp-bin"
		}
		cases = append(cases, benchCase{name + "/batch=32-hot", func() (benchRow, error) {
			return runTCPBench(bin, 32, true, lines, shards, valueSize, seed)
		}})
	}
	cases = append(cases,
		benchCase{"tcp-bin/idle-conns", func() (benchRow, error) { return runBinIdleBench(lines, shards, seed) }},
		benchCase{"tcp/overload", func() (benchRow, error) { return runOverloadBench(lines, shards, valueSize, seed) }},
		benchCase{"tcp/ttl-storm", func() (benchRow, error) { return runTTLStormBench(lines, shards, valueSize, seed) }},
	)
	// Cluster rows: the same standard mix against a 3-node loopback cluster —
	// through the ring-aware client (each key dialed straight to its owner)
	// unbatched and pipelined, with the batch read as one BMGET frame per
	// owner, and through the "vantaged proxy" forwarder, text and BMGET —
	// the extra hop the proxy convenience costs. Each node gets the solo
	// geometry, so these rows are comparable to the tcp/* ones.
	for _, c := range []struct {
		name           string
		batch          int
		proxied, bmget bool
	}{
		{"cluster/3node/batch=1", 1, false, false},
		{"cluster/3node/batch=32", 32, false, false},
		{"cluster/3node/bmget/batch=32", 32, false, true},
		{"cluster/3node/proxy/batch=32", 32, true, false},
		{"cluster/3node/proxy/bmget/batch=32", 32, true, true},
	} {
		c := c
		cases = append(cases, benchCase{c.name, func() (benchRow, error) {
			return runClusterBench(c.name, c.batch, c.proxied, c.bmget, lines, shards, valueSize, seed)
		}})
	}

	for _, c := range cases {
		if only != "" && !strings.Contains(c.name, only) {
			continue
		}
		row, err := c.run()
		if err != nil {
			return rep, err
		}
		rep.Results = append(rep.Results, row)
		fmt.Fprintf(os.Stderr, "vantaged bench: %s: %.0f ops/sec\n", row.Name, row.OpsPerSec)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return rep, err
	}
	return rep, os.WriteFile(path, append(data, '\n'), 0o644)
}

// benchTolerance returns how far below the committed ops/sec a fresh run
// of the named row may fall before -compare fails, as a divisor (3.0 =
// one third of committed). Shared CI runners are noisy and these are
// throughput rows, not microbenchmarks, so tolerances are loose: they
// catch order-of-magnitude regressions (a serialization bug, a lost
// fast path), not percent-level drift. Returns 0 for rows that are not
// throughput comparisons.
func benchTolerance(name string) float64 {
	switch {
	case strings.Contains(name, "idle-conns"):
		return 0 // memory probe, not a throughput row
	case strings.Contains(name, "batch=1"):
		return 3.0 // unpipelined rows are dominated by loopback RTT jitter
	default:
		return 2.5
	}
}

// compareBenchReport checks fresh rows against the committed report at
// path: every row present in both must stay above committed/tolerance.
// Rows missing from either side are skipped (the matrix grows over time,
// and -only runs a subset), but a fresh run that matched nothing is an
// error — it means the filter or the committed file is wrong.
func compareBenchReport(fresh benchReport, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var committed benchReport
	if err := json.Unmarshal(data, &committed); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	base := make(map[string]benchRow, len(committed.Results))
	for _, row := range committed.Results {
		base[row.Name] = row
	}
	matched := 0
	var failures []string
	for _, row := range fresh.Results {
		ref, ok := base[row.Name]
		if !ok {
			continue
		}
		tol := benchTolerance(row.Name)
		if tol == 0 || ref.OpsPerSec == 0 {
			continue
		}
		matched++
		floor := ref.OpsPerSec / tol
		verdict := "ok"
		if row.OpsPerSec < floor {
			verdict = "FAIL"
			failures = append(failures, row.Name)
		}
		fmt.Fprintf(os.Stderr, "vantaged bench compare: %-36s %10.0f ops/sec (committed %.0f, floor %.0f) %s\n",
			row.Name, row.OpsPerSec, ref.OpsPerSec, floor, verdict)
	}
	if matched == 0 {
		return fmt.Errorf("compare: no rows in common with %s", path)
	}
	if len(failures) > 0 {
		return fmt.Errorf("compare: %d row(s) regressed past tolerance: %s", len(failures), strings.Join(failures, ", "))
	}
	return nil
}

// runInprocBench measures the in-process Get/Put path at gs goroutines.
func runInprocBench(gs, lines, shards, valueSize int, seed uint64) (benchRow, error) {
	svc, err := service.New(service.Config{
		Shards:        shards,
		LinesPerShard: lines / shards,
		MaxTenants:    16,
		Seed:          seed,
	})
	if err != nil {
		return benchRow{}, err
	}
	defer svc.Close()
	total := svc.TotalLines()
	tenants := gs
	if tenants > 16 {
		tenants = 16
	}
	for i := 0; i < tenants; i++ {
		if _, err := svc.AddTenant("t" + strconv.Itoa(i)); err != nil {
			return benchRow{}, err
		}
	}

	val := make([]byte, valueSize)
	warm := loadgen.CategoryApp(workload.Friendly, total, seed^1)
	for i := 0; i < 20000; i++ {
		_, addr := warm.Next()
		key := strconv.FormatUint(addr, 16)
		if _, hit, err := svc.Get("t0", key); err != nil {
			return benchRow{}, err
		} else if !hit {
			if err := svc.Put("t0", key, val); err != nil {
				return benchRow{}, err
			}
		}
	}
	svc.Repartition()

	const perGoroutine = 200000
	var ops atomic.Uint64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := "t" + strconv.Itoa(g%tenants)
			app := loadgen.CategoryApp(workload.Friendly, total, seed^uint64(g+2))
			rng := hash.NewRand(seed ^ uint64(g+100))
			key := make([]byte, 0, 16)
			for i := 0; i < perGoroutine; i++ {
				_, addr := app.Next()
				key = strconv.AppendUint(key[:0], addr, 16)
				k := string(key)
				if rng.Intn(10) == 0 {
					if err := svc.Put(tenant, k, val); err != nil {
						firstErr.CompareAndSwap(nil, err)
						return
					}
					ops.Add(1)
					continue
				}
				_, hit, err := svc.Get(tenant, k)
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				ops.Add(1)
				if !hit {
					if err := svc.Put(tenant, k, val); err != nil {
						firstErr.CompareAndSwap(nil, err)
						return
					}
					ops.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, ok := firstErr.Load().(error); ok {
		return benchRow{}, err
	}
	return benchRow{
		Name:       fmt.Sprintf("inproc/goroutines=%d", gs),
		Goroutines: gs,
		Ops:        ops.Load(),
		Seconds:    elapsed.Seconds(),
		OpsPerSec:  float64(ops.Load()) / elapsed.Seconds(),
	}, nil
}

// runTCPBench measures end-to-end throughput over the wire protocol against
// a self-hosted server, with the loadgen's standard two-tenant mix. bin
// selects the binary protocol (the tcp-bin/* rows); batch > 1 pipelines —
// MGET on the text protocol, a flush of GET frames on the binary one. hot
// swaps the mix for cache-insensitive tenants (working sets that fit, so
// steady state is ~all hits), isolating protocol cost from replacement cost.
func runTCPBench(bin bool, batch int, hot bool, lines, shards, valueSize int, seed uint64) (benchRow, error) {
	svc, err := service.New(service.Config{
		Shards:              shards,
		LinesPerShard:       lines / shards,
		RepartitionInterval: 50 * time.Millisecond,
		Seed:                seed,
	})
	if err != nil {
		return benchRow{}, err
	}
	defer svc.Close()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return benchRow{}, err
	}
	srv := service.Serve(svc, lis)
	defer srv.Close()

	mix, suffix, opsPerConn := "friendly=friendly:2,stream=stream:2", "", 50000
	if hot {
		mix, suffix, opsPerConn = "hot=insensitive:2", "-hot", 200000
	}
	specs, err := parseTenantSpecs(mix, lines, seed)
	if err != nil {
		return benchRow{}, err
	}
	conns := 0
	for _, t := range specs {
		conns += t.Conns
	}
	res, err := loadgen.Run(loadgen.Options{
		Addr:       srv.Addr().String(),
		Tenants:    specs,
		OpsPerConn: opsPerConn,
		ValueSize:  valueSize,
		Batch:      batch,
		Binary:     bin,
	})
	if err != nil {
		return benchRow{}, err
	}
	name := "tcp"
	if bin {
		name = "tcp-bin"
	}
	return benchRow{
		Name:      fmt.Sprintf("%s/batch=%d%s", name, batch, suffix),
		Conns:     conns,
		Batch:     batch,
		Ops:       res.Ops,
		Seconds:   res.Elapsed.Seconds(),
		OpsPerSec: res.OpsPerSec,
	}, nil
}

// runClusterBench measures the standard mix against a 3-node loopback
// cluster. Every node runs the solo-row geometry (same shards and lines),
// so the comparison against tcp/* isolates what routing costs: the
// ring-aware client's per-owner connections and MGET splitting, or — with
// proxied set — the extra forwarder hop of "vantaged proxy". bmget runs
// the binary protocol with the batch read as one BMGET frame per owner
// (one coalesced response frame instead of per-key GET frames).
func runClusterBench(name string, batch int, proxied, bmget bool, lines, shards, valueSize int, seed uint64) (benchRow, error) {
	const n = 3
	liss := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range liss {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return benchRow{}, err
		}
		defer lis.Close()
		liss[i] = lis
		addrs[i] = lis.Addr().String()
	}
	for i := 0; i < n; i++ {
		svc, err := service.New(service.Config{
			Shards:              shards,
			LinesPerShard:       lines / shards,
			RepartitionInterval: 50 * time.Millisecond,
			Seed:                seed + uint64(i),
		})
		if err != nil {
			return benchRow{}, err
		}
		defer svc.Close()
		srv := service.Serve(svc, liss[i])
		defer srv.Close()
		nd, err := cluster.NewNode(svc, addrs[i], addrs, cluster.DefaultVNodes)
		if err != nil {
			return benchRow{}, err
		}
		svc.SetClusterHandler(nd)
	}

	specs, err := parseTenantSpecs("friendly=friendly:2,stream=stream:2", lines, seed)
	if err != nil {
		return benchRow{}, err
	}
	conns := 0
	for _, t := range specs {
		conns += t.Conns
	}
	opts := loadgen.Options{
		Tenants:    specs,
		OpsPerConn: 50000,
		ValueSize:  valueSize,
		Batch:      batch,
		BMGet:      bmget,
	}
	if proxied {
		plis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return benchRow{}, err
		}
		p, err := cluster.NewProxy(plis, addrs, cluster.DefaultVNodes)
		if err != nil {
			return benchRow{}, err
		}
		defer p.Close()
		opts.Addr = p.Addr().String()
	} else {
		opts.ClusterAddrs = addrs
	}
	res, err := loadgen.Run(opts)
	if err != nil {
		return benchRow{}, err
	}
	return benchRow{
		Name:      name,
		Conns:     conns,
		Batch:     batch,
		Ops:       res.Ops,
		Seconds:   res.Elapsed.Seconds(),
		OpsPerSec: res.OpsPerSec,
	}, nil
}

// runBinIdleBench parks a large population of negotiated-but-idle binary
// connections against a self-hosted server and measures what each one costs:
// server heap bytes per connection and goroutines per connection. On Linux
// the epoll transport should hold the goroutine count near zero per conn
// (poller + workers only); the portable fallback pays one goroutine each.
// The population adapts downward if the file-descriptor budget (after a
// best-effort RLIMIT_NOFILE raise) can't seat the full 10k.
func runBinIdleBench(lines, shards int, seed uint64) (benchRow, error) {
	const want = 10000
	target := want
	if fds := raiseNOFILE(); fds > 0 {
		// Each parked conn needs two fds (client+server end) plus the
		// daemon's own; leave headroom so dials fail by adaptation, not EMFILE
		// mid-accept.
		if seats := (fds - 256) / 2; seats < target {
			target = seats
		}
	}
	if target < 100 {
		target = 100
	}

	svc, err := service.New(service.Config{
		Shards:        shards,
		LinesPerShard: lines / shards,
		Seed:          seed,
	})
	if err != nil {
		return benchRow{}, err
	}
	defer svc.Close()
	if _, err := svc.AddTenant("idle"); err != nil {
		return benchRow{}, err
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return benchRow{}, err
	}
	srv := service.Serve(svc, lis)
	defer srv.Close()
	addr := srv.Addr().String()

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	gBefore := runtime.NumGoroutine()

	preamble := []byte{0x83, 'V', 'B', 1}
	ping := make([]byte, 4+16)
	ping[0] = 16 // length: header only
	ping[4] = 5  // PING opcode
	conns := make([]net.Conn, 0, target)
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	start := time.Now()
	var pings uint64
	for i := 0; i < target; i++ {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			break // fd budget reached: measure what we seated
		}
		c.SetDeadline(time.Now().Add(10 * time.Second))
		var buf [4 + 12]byte // ack + one PING response frame
		if _, err := c.Write(preamble); err != nil {
			c.Close()
			break
		}
		if _, err := io.ReadFull(c, buf[:4]); err != nil || buf[0] != 0x83 {
			c.Close()
			break
		}
		// One round trip proves the connection is fully attached (on Linux:
		// registered with the poller, its handler goroutine retired).
		if _, err := c.Write(ping); err != nil {
			c.Close()
			break
		}
		if _, err := io.ReadFull(c, buf[:12]); err != nil {
			c.Close()
			break
		}
		pings++
		c.SetDeadline(time.Time{})
		conns = append(conns, c)
	}
	elapsed := time.Since(start)
	if len(conns) == 0 {
		return benchRow{}, fmt.Errorf("idle bench: no connections seated")
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	gAfter := runtime.NumGoroutine()

	heapDelta := float64(after.HeapAlloc) - float64(before.HeapAlloc)
	if heapDelta < 0 {
		heapDelta = 0
	}
	// The client ends of the parked conns live in this process too and cost
	// roughly a bufio-free net.Conn each; the row still upper-bounds the
	// server side, which is the number the acceptance criterion bounds.
	return benchRow{
		Name:              "tcp-bin/idle-conns",
		Conns:             len(conns),
		Ops:               pings,
		Seconds:           elapsed.Seconds(),
		OpsPerSec:         float64(pings) / elapsed.Seconds(),
		BytesPerConn:      heapDelta / float64(len(conns)),
		GoroutinesPerConn: float64(gAfter-gBefore) / float64(len(conns)),
	}, nil
}

// runOverloadBench drives the server past its connection cap in chaos mode:
// 8 loadgen connections against MaxConns=4, so half the dials must be
// fast-rejected with BUSY while the in-cap connections run at full speed.
// The row records both the surviving throughput and the reject count, so
// the trajectory shows degradation staying graceful (the overload analogue
// of Vantage shrinking partitions instead of collapsing them).
func runOverloadBench(lines, shards, valueSize int, seed uint64) (benchRow, error) {
	const maxConns = 4
	svc, err := service.New(service.Config{
		Shards:              shards,
		LinesPerShard:       lines / shards,
		RepartitionInterval: 50 * time.Millisecond,
		Seed:                seed,
	})
	if err != nil {
		return benchRow{}, err
	}
	defer svc.Close()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return benchRow{}, err
	}
	srv := service.ServeWith(svc, lis, service.ServerConfig{MaxConns: maxConns})
	defer srv.Close()

	specs, err := parseTenantSpecs("friendly=friendly:4,stream=stream:4", lines, seed)
	if err != nil {
		return benchRow{}, err
	}
	conns := 0
	for _, t := range specs {
		conns += t.Conns
	}
	res, err := loadgen.Run(loadgen.Options{
		Addr:       srv.Addr().String(),
		Tenants:    specs,
		OpsPerConn: 50000,
		ValueSize:  valueSize,
		Chaos:      true,
	})
	if err != nil {
		return benchRow{}, err
	}
	if res.Rejected == 0 {
		return benchRow{}, fmt.Errorf("overload bench: %d conns against max-conns=%d produced no BUSY rejects", conns, maxConns)
	}
	return benchRow{
		Name:      "tcp/overload",
		Conns:     conns,
		MaxConns:  maxConns,
		Ops:       res.Ops,
		Seconds:   res.Elapsed.Seconds(),
		OpsPerSec: res.OpsPerSec,
		Rejected:  res.Rejected,
		Shed:      res.Shed,
		Dropped:   res.Dropped,
	}, nil
}

// runTTLStormBench measures throughput under TTL churn with the background
// sweeper on: a quarter of the friendly tenant's fills carry 50ms TTLs, so
// the sweeper is continuously reclaiming expired lines and handing them to
// the Vantage controller while the workload runs. The row records the
// expired-read and sweep-reclaim counters alongside throughput, so the
// trajectory shows what expiry pressure costs the serving path.
func runTTLStormBench(lines, shards, valueSize int, seed uint64) (benchRow, error) {
	svc, err := service.New(service.Config{
		Shards:              shards,
		LinesPerShard:       lines / shards,
		RepartitionInterval: 50 * time.Millisecond,
		SweepInterval:       5 * time.Millisecond,
		Seed:                seed,
	})
	if err != nil {
		return benchRow{}, err
	}
	defer svc.Close()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return benchRow{}, err
	}
	srv := service.Serve(svc, lis)
	defer srv.Close()

	specs, err := parseTenantSpecs("friendly=friendly:2,stream=stream:2", lines, seed)
	if err != nil {
		return benchRow{}, err
	}
	conns := 0
	for i := range specs {
		conns += specs[i].Conns
		if specs[i].Name == "friendly" {
			specs[i].TTLMode = loadgen.TTLUniform
			specs[i].TTL = 50 * time.Millisecond
			specs[i].TTLFrac = 0.25
		}
	}
	res, err := loadgen.Run(loadgen.Options{
		Addr:       srv.Addr().String(),
		Tenants:    specs,
		OpsPerConn: 50000,
		ValueSize:  valueSize,
	})
	if err != nil {
		return benchRow{}, err
	}
	st := svc.Stats()
	return benchRow{
		Name:       "tcp/ttl-storm",
		Conns:      conns,
		Ops:        res.Ops,
		Seconds:    res.Elapsed.Seconds(),
		OpsPerSec:  res.OpsPerSec,
		Expired:    st.Expired,
		SweepLines: st.SweepLines,
	}, nil
}
