package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"vantage/internal/hash"
	"vantage/internal/service"
	"vantage/internal/service/loadgen"
	"vantage/internal/workload"
)

// benchMain runs the built-in load generator. Tenant specs are
// "name=class[:conns]" with class one of friendly, fitting, stream,
// insensitive (the paper's Table 3 categories); working sets scale to
// -lines the way internal/workload scales them to cache capacity.
//
// With -json <path>, bench instead runs the standard performance matrix —
// the in-process sharded access path at 1/4/16 goroutines, TCP loadgen
// unbatched and with MGET pipelining, the same pair over the binary
// protocol, hot-read protocol-ceiling rows for both protocols, and the
// 10k-idle-connection memory probe — and writes the results as JSON, so
// the repo can keep a benchmark trajectory across changes
// (BENCH_service.json at the repo root).
func benchMain(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	addr := fs.String("addr", "", "vantaged address; empty self-hosts an in-process server")
	tenants := fs.String("tenants", "friendly=friendly:2,stream=stream:2", "tenant specs name=class[:conns]")
	ops := fs.Int("ops", 20000, "operations per connection")
	valueSize := fs.Int("value", 64, "value size in bytes")
	batch := fs.Int("batch", 1, "keys per MGET batch (1 = plain GET round trips)")
	bin := fs.Bool("bin", false, "speak the binary wire protocol (batch > 1 pipelines GET frames)")
	lines := fs.Int("lines", 32768, "cache capacity in lines the workloads scale to (self-host size)")
	shards := fs.Int("shards", 4, "shards when self-hosting")
	repartition := fs.Duration("repartition", 50*time.Millisecond, "repartition interval when self-hosting")
	seed := fs.Uint64("seed", 2011, "workload and cache seed")
	jsonPath := fs.String("json", "", "run the standard benchmark matrix and write results to this JSON file")
	only := fs.String("only", "", "with -json: run only matrix rows whose name contains this substring")
	compare := fs.String("compare", "", "with -json: check results against this committed report, failing on per-row regressions past tolerance")
	chaos := fs.Bool("chaos", false, "overload-tolerant mode: count BUSY/shed/fault/dropped instead of aborting")
	maxConns := fs.Int("max-conns", 0, "self-host: max concurrent connections, extras get BUSY (0 = unlimited)")
	maxInflight := fs.Int("max-inflight", 0, "self-host: max data commands in flight (0 = unlimited)")
	faultSpec := fs.String("fault", "", "self-host: fault injection spec (see vantaged -fault)")
	fs.Parse(args)

	if *jsonPath != "" {
		rep, err := runBenchMatrix(*jsonPath, *only, *lines, *shards, *valueSize, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vantaged bench:", err)
			os.Exit(1)
		}
		if *compare != "" {
			if err := compareBenchReport(rep, *compare); err != nil {
				fmt.Fprintln(os.Stderr, "vantaged bench:", err)
				os.Exit(1)
			}
		}
		return
	}

	specs, err := parseTenantSpecs(*tenants, *lines, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vantaged bench:", err)
		os.Exit(2)
	}

	target := *addr
	var svc *service.Service
	var srv *service.Server
	if target == "" {
		svc, err = service.New(service.Config{
			Shards:              *shards,
			LinesPerShard:       *lines / *shards,
			RepartitionInterval: *repartition,
			Seed:                *seed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "vantaged bench:", err)
			os.Exit(1)
		}
		if *faultSpec != "" {
			plan, err := service.ParseFaultSpec(*faultSpec)
			if err != nil {
				fmt.Fprintln(os.Stderr, "vantaged bench:", err)
				os.Exit(1)
			}
			svc.SetFaultInjector(plan)
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, "vantaged bench:", err)
			os.Exit(1)
		}
		srv = service.ServeWith(svc, lis, service.ServerConfig{
			MaxConns:    *maxConns,
			MaxInflight: *maxInflight,
		})
		target = srv.Addr().String()
		fmt.Fprintf(os.Stderr, "vantaged bench: self-hosted server on %s\n", target)
	}

	res, err := loadgen.Run(loadgen.Options{
		Addr:       target,
		Tenants:    specs,
		OpsPerConn: *ops,
		ValueSize:  *valueSize,
		Batch:      *batch,
		Chaos:      *chaos,
		Binary:     *bin,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vantaged bench:", err)
		os.Exit(1)
	}

	fmt.Printf("%-12s %10s %10s %10s %8s\n", "tenant", "gets", "hits", "puts", "hitrate")
	for _, t := range res.Tenants {
		fmt.Printf("%-12s %10d %10d %10d %7.1f%%\n", t.Name, t.Gets, t.Hits, t.Puts, 100*t.HitRate())
	}
	fmt.Printf("total: %d ops in %.2fs = %.0f ops/sec\n", res.Ops, res.Elapsed.Seconds(), res.OpsPerSec)
	if *chaos {
		fmt.Printf("chaos: rejected=%d shed=%d injected=%d dropped=%d\n",
			res.Rejected, res.Shed, res.Injected, res.Dropped)
	}

	if srv != nil {
		srv.Close()
		svc.Close()
	}
}

// parseTenantSpecs parses "name=class[:conns],..." into loadgen tenants.
func parseTenantSpecs(spec string, cacheLines int, seed uint64) ([]loadgen.Tenant, error) {
	var out []loadgen.Tenant
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		name, rest, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("bad tenant spec %q (want name=class[:conns])", field)
		}
		class := rest
		conns := 1
		if c, n, ok := strings.Cut(rest, ":"); ok {
			class = c
			v, err := strconv.Atoi(n)
			if err != nil || v < 1 {
				return nil, fmt.Errorf("bad connection count in %q", field)
			}
			conns = v
		}
		cat, err := parseCategory(class)
		if err != nil {
			return nil, err
		}
		out = append(out, loadgen.Tenant{
			Name:  name,
			Conns: conns,
			MakeApp: func(conn int) workload.App {
				s := hash.Mix64(seed ^ uint64(conn)<<16 ^ hashString(name))
				return loadgen.CategoryApp(cat, cacheLines, s)
			},
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no tenants in spec %q", spec)
	}
	return out, nil
}

func parseCategory(class string) (workload.Category, error) {
	switch strings.ToLower(class) {
	case "insensitive", "n":
		return workload.Insensitive, nil
	case "friendly", "f":
		return workload.Friendly, nil
	case "fitting", "t":
		return workload.Fitting, nil
	case "stream", "thrashing", "s":
		return workload.Thrashing, nil
	}
	return 0, fmt.Errorf("unknown workload class %q (want friendly|fitting|stream|insensitive)", class)
}

func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
