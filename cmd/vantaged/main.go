// Command vantaged is a concurrent multi-tenant key-value cache daemon
// driven by the Vantage controller: a sharded in-memory cache where each
// tenant maps to a Vantage partition, capacity targets are set online by
// UCP from live per-tenant utility monitors, and Vantage's fine-grain
// partitioning provides isolation among tenants on real traffic.
//
// Usage:
//
//	vantaged [-listen :7171] [-metrics :7172] [-pprof] [flags]
//	vantaged [-cluster a:7171,b:7171,c:7171 -advertise a:7171] [flags]
//	vantaged bench [-addr host:port] [flags]
//	vantaged proxy -cluster a:7171,b:7171,c:7171 [-listen :7170]
//
// The daemon speaks a memcached-style text protocol (GET/PUT/DEL, TENANT
// admin verbs, STATS; see internal/service) and exports Prometheus metrics
// on /metrics: per-tenant hit rate, occupancy vs. target, demotions, and
// forced managed evictions. SIGINT/SIGTERM shut it down gracefully.
//
// "vantaged bench" is the built-in load generator: it replays synthetic
// workload models (the paper's Table 3 categories) as concurrent tenants
// and reports per-tenant hit rates plus aggregate throughput — run it
// against a live daemon, or with no -addr to self-host one in-process.
//
// -cluster runs the daemon as one node of a static cluster: tenant
// registrations replicate to every listed peer, CLUSTER MEMBERS re-homes
// keys on join/leave, and ring-aware clients (or "vantaged proxy", a thin
// forwarder for clients that are not) route each key to its owner.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"vantage/internal/cluster"
	"vantage/internal/service"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "bench" {
		benchMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "proxy" {
		proxyMain(os.Args[2:])
		return
	}

	listen := flag.String("listen", ":7171", "cache protocol listen address")
	metrics := flag.String("metrics", ":7172", "HTTP listen address for /metrics (empty disables)")
	shards := flag.Int("shards", 4, "cache shards (power of two)")
	lines := flag.Int("lines", 131072, "total capacity in lines (entries), split across shards")
	ways := flag.Int("ways", 4, "zcache ways")
	cands := flag.Int("cands", 52, "zcache replacement candidates")
	maxTenants := flag.Int("max-tenants", 16, "partition slots per shard")
	unmanaged := flag.Float64("unmanaged", 0.05, "unmanaged region fraction")
	amax := flag.Float64("amax", 0.5, "maximum aperture")
	slack := flag.Float64("slack", 0.1, "feedback slack")
	repartition := flag.Duration("repartition", 250*time.Millisecond, "online UCP repartition interval")
	defaultTTL := flag.Duration("default-ttl", 0, "TTL applied to PUTs without an EXPIRE clause (0 = entries never expire)")
	sweepInterval := flag.Duration("sweep-interval", 0, "background expiry sweep interval per shard (0 = lazy expiry only)")
	sweepBatch := flag.Int("sweep-batch", 0, "max expired entries reclaimed per sweep pass per shard (0 = 128 default)")
	seed := flag.Uint64("seed", 2011, "hash seed (perturbs shard routing, arrays, monitors)")
	tenants := flag.String("tenants", "", "comma-separated tenant names to pre-register")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the metrics address")
	maxConns := flag.Int("max-conns", 0, "max concurrent connections; extras are fast-rejected with BUSY (0 = unlimited)")
	maxInflight := flag.Int("max-inflight", 0, "max data commands in flight across all connections (0 = unlimited)")
	maxTenantInflight := flag.Int("max-inflight-tenant", 0, "max data commands in flight per tenant (0 = unlimited)")
	inflightWait := flag.Duration("inflight-wait", 0, "backpressure wait for a global in-flight slot before shedding (0 = 10ms default when -max-inflight is set)")
	idleTimeout := flag.Duration("idle-timeout", 0, "close connections idle (or dribbling a command line) longer than this (0 = never)")
	readTimeout := flag.Duration("read-timeout", 0, "deadline for reading a PUT value block (0 = never)")
	writeTimeout := flag.Duration("write-timeout", 0, "deadline for flushing responses (0 = never)")
	faultSpec := flag.String("fault", "", "fault injection spec, e.g. 'err=0.01,drop=0.001,delay=0.05:2ms,ops=get|put,tenants=a|b,seed=1' (empty disables)")
	clusterList := flag.String("cluster", "", "comma-separated member addresses; run as one node of this cluster (empty = solo)")
	advertise := flag.String("advertise", "", "this node's address within -cluster (default: the -listen address)")
	vnodes := flag.Int("vnodes", cluster.DefaultVNodes, "consistent-hash virtual nodes per member (must match across the cluster)")
	trackLatency := flag.Bool("track-latency", false, "record per-request service latency (exported as a histogram on /metrics)")
	flag.Parse()

	svc, err := service.New(service.Config{
		Shards:              *shards,
		LinesPerShard:       *lines / *shards,
		Ways:                *ways,
		Candidates:          *cands,
		MaxTenants:          *maxTenants,
		UnmanagedFrac:       *unmanaged,
		AMax:                *amax,
		Slack:               *slack,
		RepartitionInterval: *repartition,
		DefaultTTL:          *defaultTTL,
		SweepInterval:       *sweepInterval,
		SweepBatch:          *sweepBatch,
		Seed:                *seed,
		TrackLatency:        *trackLatency,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vantaged:", err)
		os.Exit(1)
	}
	for _, name := range strings.Split(*tenants, ",") {
		if name = strings.TrimSpace(name); name != "" {
			if _, err := svc.AddTenant(name); err != nil {
				fmt.Fprintln(os.Stderr, "vantaged:", err)
				os.Exit(1)
			}
		}
	}

	if *faultSpec != "" {
		plan, err := service.ParseFaultSpec(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vantaged:", err)
			os.Exit(1)
		}
		svc.SetFaultInjector(plan)
		fmt.Fprintf(os.Stderr, "vantaged: fault injection active: %s\n", *faultSpec)
	}

	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vantaged:", err)
		os.Exit(1)
	}
	srv := service.ServeWith(svc, lis, service.ServerConfig{
		MaxConns:          *maxConns,
		MaxInflight:       *maxInflight,
		MaxTenantInflight: *maxTenantInflight,
		InflightWait:      *inflightWait,
		IdleTimeout:       *idleTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
	})
	fmt.Fprintf(os.Stderr, "vantaged: serving on %s (%d shards x %d lines, %d tenant slots)\n",
		srv.Addr(), *shards, *lines / *shards, *maxTenants)

	if *clusterList != "" {
		members := splitAddrs(*clusterList)
		self := *advertise
		if self == "" {
			self = srv.Addr().String()
		}
		node, err := cluster.NewNode(svc, self, members, *vnodes)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vantaged:", err)
			os.Exit(1)
		}
		svc.SetClusterHandler(node)
		// Catch up on registrations made while this node was down (or
		// before it joined). Peers that are not up yet are fine: the first
		// reachable one has the converged registry.
		if err := node.Bootstrap(); err != nil {
			fmt.Fprintln(os.Stderr, "vantaged: cluster bootstrap:", err)
		}
		fmt.Fprintf(os.Stderr, "vantaged: cluster node %s of %v (%d vnodes)\n", self, members, *vnodes)
	}

	var httpSrv *http.Server
	if *metrics != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", svc.MetricsHandler())
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintln(w, "ok")
		})
		if *pprofOn {
			// Opt-in: the handlers expose stack traces and timings, so they
			// are off unless explicitly requested, and the explicit mux keeps
			// them off http.DefaultServeMux.
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			fmt.Fprintf(os.Stderr, "vantaged: pprof on http://%s/debug/pprof/\n", *metrics)
		}
		httpSrv = &http.Server{Addr: *metrics, Handler: mux}
		go func() {
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "vantaged: metrics:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "vantaged: metrics on http://%s/metrics\n", *metrics)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "vantaged: shutting down")
	srv.Close()
	if httpSrv != nil {
		httpSrv.Close()
	}
	svc.Close()
}
