// Command vantage-trace captures, inspects, and replays memory-reference
// traces in the repository's compact binary format.
//
// Usage:
//
//	vantage-trace capture -app <spec> -n 1000000 -o trace.vtr
//	vantage-trace stat   -i trace.vtr
//	vantage-trace replay -i trace.vtr [-lines 4096] [-ways 4] [-cands 52]
//
// App specs mirror the synthetic workload generators:
//
//	zipf:<lines>:<alpha>     cache-friendly Zipf reuse
//	scan:<lines>             cache-fitting cyclic scan
//	stream:<lines>           thrashing sequential stream
//
// replay drives the trace through an unpartitioned zcache with LRU and
// reports hit ratios, a quick way to estimate a captured workload's miss
// curve at one size.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"vantage/internal/cache"
	"vantage/internal/ctrl"
	"vantage/internal/repl"
	"vantage/internal/trace"
	"vantage/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "capture":
		capture(args)
	case "stat":
		stat(args)
	case "replay":
		replay(args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: vantage-trace capture|stat|replay [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vantage-trace:", err)
	os.Exit(1)
}

// parseApp builds a workload generator from a spec string.
func parseApp(spec string, seed uint64) (workload.App, error) {
	parts := strings.Split(spec, ":")
	atoi := func(s string) int {
		v, err := strconv.Atoi(s)
		if err != nil {
			fatal(fmt.Errorf("bad number %q in app spec", s))
		}
		return v
	}
	switch {
	case parts[0] == "zipf" && len(parts) == 3:
		alpha, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad alpha %q", parts[2])
		}
		return workload.NewZipfApp(workload.Friendly, atoi(parts[1]), alpha, 3, 2, seed), nil
	case parts[0] == "scan" && len(parts) == 2:
		return workload.NewScanApp(workload.Fitting, atoi(parts[1]), 3, 2, seed), nil
	case parts[0] == "stream" && len(parts) == 2:
		return workload.NewStreamApp(atoi(parts[1]), 2, 2, seed), nil
	}
	return nil, fmt.Errorf("unknown app spec %q", spec)
}

func capture(args []string) {
	fs := flag.NewFlagSet("capture", flag.ExitOnError)
	appSpec := fs.String("app", "zipf:8192:0.8", "app spec to capture")
	n := fs.Int("n", 1_000_000, "references to capture")
	out := fs.String("o", "trace.vtr", "output file")
	seed := fs.Uint64("seed", 1, "app seed")
	fs.Parse(args)

	app, err := parseApp(*appSpec, *seed)
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		fatal(err)
	}
	if err := trace.Capture(w, app, *n); err != nil {
		fatal(err)
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
	st, _ := f.Stat()
	fmt.Printf("captured %d references of %s to %s (%d bytes, %.2f B/ref)\n",
		*n, app.Name(), *out, st.Size(), float64(st.Size())/float64(*n))
}

func stat(args []string) {
	fs := flag.NewFlagSet("stat", flag.ExitOnError)
	in := fs.String("i", "trace.vtr", "input file")
	fs.Parse(args)

	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		fatal(err)
	}
	var (
		refs, instrs uint64
		distinct            = map[uint64]struct{}{}
		minA, maxA   uint64 = ^uint64(0), 0
	)
	for {
		rec, err := r.Read()
		if err != nil {
			break
		}
		refs++
		instrs += uint64(rec.Gap) + 1
		distinct[rec.Addr] = struct{}{}
		if rec.Addr < minA {
			minA = rec.Addr
		}
		if rec.Addr > maxA {
			maxA = rec.Addr
		}
	}
	if refs == 0 {
		fatal(fmt.Errorf("empty trace"))
	}
	fmt.Printf("references:      %d\n", refs)
	fmt.Printf("instructions:    %d (%.2f per reference)\n", instrs, float64(instrs)/float64(refs))
	fmt.Printf("distinct lines:  %d (footprint %.1f KB at 64 B/line)\n",
		len(distinct), float64(len(distinct))*64/1024)
	fmt.Printf("address range:   [%d, %d]\n", minA, maxA)
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("i", "trace.vtr", "input file")
	lines := fs.Int("lines", 4096, "cache lines")
	ways := fs.Int("ways", 4, "zcache ways")
	cands := fs.Int("cands", 52, "replacement candidates")
	fs.Parse(args)

	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		fatal(err)
	}
	recs, err := r.ReadAll()
	if err != nil {
		fatal(err)
	}
	if len(recs) == 0 {
		fatal(fmt.Errorf("empty trace"))
	}
	arr := cache.NewZCache(*lines, *ways, *cands, 1)
	l2 := ctrl.NewUnpartitioned(arr, repl.NewLRUTimestamp(*lines), 1)
	hits := 0
	for _, rec := range recs {
		if l2.Access(rec.Addr, 0).Hit {
			hits++
		}
	}
	fmt.Printf("replayed %d references on Z%d/%d with %d lines: %.2f%% hits\n",
		len(recs), *ways, *cands, *lines, 100*float64(hits)/float64(len(recs)))
}
