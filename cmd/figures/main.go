// Command figures regenerates the paper's analytical figures and static
// tables: Fig 1 (associativity CDFs), Fig 2 (managed-region demotion CDFs),
// Fig 5 (unmanaged-region sizing), Table 1 (scheme classification), Table 2
// (machine parameters), and the Fig 4 state-overhead accounting.
//
// Usage:
//
//	figures [-fig 1|2|5] [-table 1|2|state] [-csv dir] [-all]
//	        [-cpuprofile file] [-memprofile file]
//
// With -csv, the figure data is also written as CSV files into dir. The
// profiling flags write pprof CPU and heap profiles covering the figure
// regeneration, for chasing regressions in the analytical kernels.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"vantage/internal/exp"
)

func main() {
	fig := flag.Int("fig", 0, "figure to print (1, 2 or 5)")
	table := flag.String("table", "", "table to print (1, 2 or state)")
	csvDir := flag.String("csv", "", "directory to write CSV data into")
	all := flag.Bool("all", false, "print every analytical figure and table")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to `file`")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to `file` on exit")
	fast := flag.Bool("fast", false, "fast simulation tier (CLI parity with vantage-sim; see DESIGN.md §7)")
	flag.Parse()

	if *fast {
		// The tier switch only affects workload generators (vantage-sim's
		// simulation figures); every figure and table this command produces
		// is closed-form, so both tiers print identical output. The flag is
		// accepted so scripts can pass one tier switch to both commands.
		fmt.Fprintln(os.Stderr, "figures: analytical figures are closed-form; -fast changes nothing here")
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
				os.Exit(1)
			}
		}()
	}

	if !*all && *fig == 0 && *table == "" {
		*all = true
	}

	writeCSV := func(name, data string) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		path := filepath.Join(*csvDir, name)
		if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", path)
	}

	if *all || *fig == 1 {
		f := exp.RunFig1()
		fmt.Println(f.Table())
		fmt.Println(f.Plot(64, 14))
		writeCSV("fig1.csv", f.CSV())
	}
	if *all || *fig == 2 {
		f := exp.RunFig2()
		fmt.Println(f.Table())
		fmt.Println(f.Plot(0, 64, 14))
		writeCSV("fig2.csv", f.CSV())
	}
	if *all || *fig == 5 {
		f := exp.RunFig5()
		fmt.Println(f.Table())
		fmt.Println(f.Plot(64, 14))
		writeCSV("fig5.csv", f.CSV())
	}
	if *all || *table == "1" {
		fmt.Println(exp.Table1())
	}
	if *all || *table == "2" {
		fmt.Println(exp.Table2())
	}
	if *all || *table == "state" {
		fmt.Println(exp.StateOverheadTable())
	}
}
