package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"vantage/internal/exp"
)

// simBenchRow is one matrix cell in BENCH_sim.json: a full sim.Run of one
// mix on one machine/scheme configuration.
type simBenchRow struct {
	Name        string  `json:"name"`
	Cores       int     `json:"cores"`
	L1Lines     int     `json:"l1_lines"`
	L2Lines     int     `json:"l2_lines"`
	UCP         bool    `json:"ucp"`
	Accesses    uint64  `json:"accesses"`
	Seconds     float64 `json:"seconds"`
	NsPerAccess float64 `json:"ns_per_access"`
	Throughput  float64 `json:"sim_throughput"` // ΣIPC, a correctness canary
}

// simBenchReport is the BENCH_sim.json schema, mirroring the service
// benchmark report (cmd/vantaged).
type simBenchReport struct {
	GoVersion string        `json:"go_version"`
	NumCPU    int           `json:"num_cpu"`
	Scale     string        `json:"scale"`
	Results   []simBenchRow `json:"results"`
}

// runSimBenchMatrix times the simulator kernel across the standard matrix —
// {4-core, 32-core} × {with L1s, without} × {shared LRU, Vantage+UCP} — and
// writes the report to path. Each cell is one complete sim.Run; ns_per_access
// divides wall time by the measurement-window memory references.
func runSimBenchMatrix(path, scaleName string, sc exp.Scale) error {
	rep := simBenchReport{
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Scale:     scaleName,
	}

	machines := []struct {
		name string
		m    exp.Machine
	}{
		{"4core", exp.SmallCMP(sc)},
		{"32core", exp.LargeCMP(sc)},
	}
	schemes := []struct {
		name string
		sch  exp.Scheme
		ucp  bool
	}{
		{"LRU", exp.LRUBaseline(), false},
		{"Vantage-UCP", exp.DefaultVantageScheme(), true},
	}

	for _, mc := range machines {
		for _, noL1 := range []bool{false, true} {
			m := mc.m
			l1 := "L1"
			if noL1 {
				m.L1Lines, m.L1Ways = 0, 0
				l1 = "noL1"
			}
			mix := m.Mixes(1)[0]
			for _, sc := range schemes {
				start := time.Now()
				res := m.RunMix(mix, sc.sch)
				secs := time.Since(start).Seconds()
				accesses := uint64(0)
				for _, c := range res.Cores {
					accesses += c.L1Accesses
				}
				row := simBenchRow{
					Name:       fmt.Sprintf("%s/%s/%s", mc.name, l1, sc.name),
					Cores:      m.Cores,
					L1Lines:    m.L1Lines,
					L2Lines:    m.L2Lines,
					UCP:        sc.ucp,
					Accesses:   accesses,
					Seconds:    secs,
					Throughput: res.Throughput,
				}
				if accesses > 0 {
					row.NsPerAccess = secs * 1e9 / float64(accesses)
				}
				rep.Results = append(rep.Results, row)
				fmt.Fprintf(os.Stderr, "vantage-sim bench: %s: %.2fs (%.0f ns/access)\n",
					row.Name, row.Seconds, row.NsPerAccess)
			}
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
