package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"syscall"
	"time"

	"vantage/internal/exp"
	"vantage/internal/workload"
)

// simBenchRow is one matrix cell in BENCH_sim.json: a full sim.Run of one
// mix on one machine/scheme configuration. Seconds is wall-clock time;
// CPUSeconds is process CPU time over the same interval — on a single-CPU
// host the two coincide, while a gap between them is what substantiates (or
// debunks) any mix-level parallelism claim.
type simBenchRow struct {
	Name        string  `json:"name"`
	Cores       int     `json:"cores"`
	L1Lines     int     `json:"l1_lines"`
	L2Lines     int     `json:"l2_lines"`
	UCP         bool    `json:"ucp"`
	Accesses    uint64  `json:"accesses"`
	Seconds     float64 `json:"seconds"`
	CPUSeconds  float64 `json:"cpu_seconds"`
	NsPerAccess float64 `json:"ns_per_access"`
	Throughput  float64 `json:"sim_throughput"` // ΣIPC, a correctness canary
}

// genBenchRow times one reference-generation strategy over the standard
// generation micro-workload (the BenchmarkWorkloadGen* family, reproduced
// here so the committed report carries the memoization speedup).
type genBenchRow struct {
	Name        string  `json:"name"`
	Refs        int     `json:"refs"`
	Seconds     float64 `json:"seconds"`
	NsPerRef    float64 `json:"ns_per_ref"`
	SpeedupLive float64 `json:"speedup_vs_live"`
}

// fig7Bench records one Fig 7 regeneration wall-clock measurement — per
// simulation tier (exact/fast) and GOMAXPROCS — next to the measured history
// of earlier releases on the original bench host, so before/after is
// auditable from the report alone. The gmean canary is bit-deterministic on
// the exact tier only; fast-tier gmeans are statistically equivalent
// (±0.5%, see TestFastTierEquivalence), not identical.
type fig7Bench struct {
	Tier           string  `json:"tier,omitempty"` // "exact" (default) or "fast"
	GoMaxProcs     int     `json:"gomaxprocs,omitempty"`
	Mixes          int     `json:"mixes"`
	InstrLimit     uint64  `json:"instr_limit"`
	Seconds        float64 `json:"seconds"`
	CPUSeconds     float64 `json:"cpu_seconds"`
	GmeanVantage   float64 `json:"gmean_vantage"` // correctness canary
	PR2WallSeconds float64 `json:"pr2_wall_seconds,omitempty"`
	PR3WallSeconds float64 `json:"pr3_wall_seconds,omitempty"`
	PR5WallSeconds float64 `json:"pr5_wall_seconds,omitempty"`
}

// simBenchReport is the BENCH_sim.json schema, mirroring the service
// benchmark report (cmd/vantaged). Fig7 is the canonical exact-tier
// GOMAXPROCS=1 row (carrying the release history); Fig7Tiers holds the full
// tier × GOMAXPROCS scaling matrix.
type simBenchReport struct {
	GoVersion   string        `json:"go_version"`
	NumCPU      int           `json:"num_cpu"`
	GoMaxProcs  int           `json:"gomaxprocs"`
	Scale       string        `json:"scale"`
	Results     []simBenchRow `json:"results"`
	WorkloadGen []genBenchRow `json:"workload_gen"`
	Fig7        *fig7Bench    `json:"fig7,omitempty"`
	Fig7Tiers   []fig7Bench   `json:"fig7_tiers,omitempty"`
}

// cpuSeconds returns the process's cumulative user+system CPU time.
func cpuSeconds() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	sec := func(tv syscall.Timeval) float64 {
		return float64(tv.Sec) + float64(tv.Usec)/1e6
	}
	return sec(ru.Utime) + sec(ru.Stime)
}

// runWorkloadGenBench times the three generation strategies the harness can
// use — per-call live, batched live, and recorded replay — over identical
// Zipf draws, mirroring internal/workload's BenchmarkWorkloadGen* family.
func runWorkloadGenBench() []genBenchRow {
	const refs = 1 << 21
	const batch = 1 << 14
	mk := func() workload.App { return workload.NewZipfApp(workload.Friendly, 64<<10, 0.9, 3, 2, 42) }

	rows := make([]genBenchRow, 0, 3)
	timeIt := func(name string, fn func()) {
		// Collect garbage left by earlier sections so a mid-row GC pause
		// doesn't skew these sub-100ms measurements on a 1-CPU host.
		runtime.GC()
		start := time.Now()
		fn()
		secs := time.Since(start).Seconds()
		rows = append(rows, genBenchRow{
			Name:     name,
			Refs:     refs,
			Seconds:  secs,
			NsPerRef: secs * 1e9 / refs,
		})
	}
	timeIt("live", func() {
		app := mk()
		var sink uint64
		for i := 0; i < refs; i++ {
			g, a := app.Next()
			sink += uint64(g) + a
		}
		_ = sink
	})
	timeIt("batched", func() {
		app := mk().(workload.BatchApp)
		gaps := make([]int32, batch)
		addrs := make([]uint64, batch)
		for done := 0; done < refs; done += batch {
			app.NextBatch(gaps, addrs)
		}
	})
	rec := workload.NewRecording(mk(), mk, refs)
	warm := rec.Replay()
	{
		gaps := make([]int32, batch)
		addrs := make([]uint64, batch)
		for done := 0; done < refs; done += batch {
			warm.NextBatch(gaps, addrs)
		}
	}
	timeIt("replay", func() {
		r := rec.Replay()
		var sink uint64
		for i := 0; i < refs; i++ {
			g, a := r.Next()
			sink += uint64(g) + a
		}
		_ = sink
	})
	for i := range rows {
		rows[i].SpeedupLive = rows[0].NsPerRef / rows[i].NsPerRef
	}
	return rows
}

// runSimBenchMatrix times the simulator kernel across the standard matrix —
// {4-core, 32-core} × {with L1s, without} × {shared LRU, Vantage+UCP} — plus
// the generation micro-bench, and writes the report to path. Each cell is one
// complete sim.Run; ns_per_access divides wall time by the measurement-window
// memory references. With fig7 set it also times the Fig 7 regeneration
// microcosm (the root BenchmarkFig7LargeScale configuration; adds ~25s).
func runSimBenchMatrix(path, scaleName string, sc exp.Scale, fig7 bool) error {
	rep := simBenchReport{
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Scale:      scaleName,
	}

	machines := []struct {
		name string
		m    exp.Machine
	}{
		{"4core", exp.SmallCMP(sc)},
		{"32core", exp.LargeCMP(sc)},
	}
	schemes := []struct {
		name string
		sch  exp.Scheme
		ucp  bool
	}{
		{"LRU", exp.LRUBaseline(), false},
		{"Vantage-UCP", exp.DefaultVantageScheme(), true},
	}

	for _, mc := range machines {
		for _, noL1 := range []bool{false, true} {
			m := mc.m
			l1 := "L1"
			if noL1 {
				m.L1Lines, m.L1Ways = 0, 0
				l1 = "noL1"
			}
			mix := m.Mixes(1)[0]
			for _, sc := range schemes {
				start := time.Now()
				cpuStart := cpuSeconds()
				res := m.RunMix(mix, sc.sch)
				secs := time.Since(start).Seconds()
				cpu := cpuSeconds() - cpuStart
				accesses := uint64(0)
				for _, c := range res.Cores {
					accesses += c.L1Accesses
				}
				row := simBenchRow{
					Name:       fmt.Sprintf("%s/%s/%s", mc.name, l1, sc.name),
					Cores:      m.Cores,
					L1Lines:    m.L1Lines,
					L2Lines:    m.L2Lines,
					UCP:        sc.ucp,
					Accesses:   accesses,
					Seconds:    secs,
					CPUSeconds: cpu,
					Throughput: res.Throughput,
				}
				if accesses > 0 {
					row.NsPerAccess = secs * 1e9 / float64(accesses)
				}
				rep.Results = append(rep.Results, row)
				fmt.Fprintf(os.Stderr, "vantage-sim bench: %s: %.2fs wall / %.2fs cpu (%.0f ns/access)\n",
					row.Name, row.Seconds, row.CPUSeconds, row.NsPerAccess)
			}
		}
	}

	rep.WorkloadGen = runWorkloadGenBench()
	for _, g := range rep.WorkloadGen {
		fmt.Fprintf(os.Stderr, "vantage-sim bench: gen/%s: %.1f ns/ref (%.1fx vs live)\n",
			g.Name, g.NsPerRef, g.SpeedupLive)
	}

	if fig7 {
		m := exp.LargeCMP(exp.ScaleUnit)
		m.InstrLimit = 25_000 // the root BenchmarkFig7LargeScale configuration
		const mixCount = 6
		// Scaling rows: both tiers at GOMAXPROCS 1 and 2 (plus the full CPU
		// count on bigger hosts). Fig 7 parallelizes across mixes, so the
		// multi-proc rows substantiate the scaling claim wherever the bench
		// actually runs; on a single-CPU host they honestly show ~1x.
		procs := []int{1, 2}
		if n := runtime.NumCPU(); n > 2 {
			procs = append(procs, n)
		}
		prev := runtime.GOMAXPROCS(0)
		for _, tier := range []string{"exact", "fast"} {
			tm := m
			tm.FastTier = tier == "fast"
			for _, p := range procs {
				runtime.GOMAXPROCS(p)
				// Collect earlier sections' garbage so the timed region
				// matches a standalone run of the root benchmark.
				runtime.GC()
				start := time.Now()
				cpuStart := cpuSeconds()
				r := exp.Fig7(tm, mixCount, nil)
				secs := time.Since(start).Seconds()
				cpu := cpuSeconds() - cpuStart
				row := fig7Bench{
					Tier:       tier,
					GoMaxProcs: p,
					Mixes:      mixCount,
					InstrLimit: m.InstrLimit,
					Seconds:    secs,
					CPUSeconds: cpu,
				}
				if c := r.Curve("Vantage-Z4/52"); c != nil {
					row.GmeanVantage = c.Summary.GeoMean
				}
				rep.Fig7Tiers = append(rep.Fig7Tiers, row)
				if tier == "exact" && p == 1 {
					// The canonical row carries the wall-clock history
					// measured on the original bench host: PR 2's
					// pre-overhaul harness, PR 3's kernel overhaul, PR 5's
					// memoized generation.
					h := row
					h.PR2WallSeconds = 49.4
					h.PR3WallSeconds = 36.0
					h.PR5WallSeconds = 22.4
					rep.Fig7 = &h
				}
				fmt.Fprintf(os.Stderr, "vantage-sim bench: fig7/%s/p%d: %.1fs wall / %.1fs cpu (gmean %.4f)\n",
					tier, p, secs, cpu, row.GmeanVantage)
			}
		}
		runtime.GOMAXPROCS(prev)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// rowTolerance returns the allowed fresh/committed ns-per-access ratio for
// one matrix cell, keyed on the committed row's wall time: the shorter the
// timed region, the larger the share of timer granularity, GC pauses, and
// shared-runner scheduling noise in its measurement. Long rows get a tight
// bound — those are the cells where a real kernel regression shows up
// cleanly — while sub-50ms rows only gate gross blowups.
func rowTolerance(base simBenchRow) float64 {
	switch {
	case base.Seconds < 0.05:
		return 3.0
	case base.Seconds < 0.5:
		return 2.0
	default:
		return 1.6
	}
}

// compareSimBench is the CI perf-regression smoke: it loads a freshly
// written report and a committed baseline, prints a row-by-row diff, and
// fails on any matrix cell whose ns/access exceeds its per-row tolerance
// (see rowTolerance), so real kernel regressions are caught without flaking
// on shared-runner noise. Rows are matched by name; throughput canaries must
// match exactly (they are deterministic — any drift is a correctness bug,
// not noise).
func compareSimBench(newPath, basePath string) error {
	load := func(p string) (simBenchReport, error) {
		var rep simBenchReport
		data, err := os.ReadFile(p)
		if err != nil {
			return rep, err
		}
		return rep, json.Unmarshal(data, &rep)
	}
	fresh, err := load(newPath)
	if err != nil {
		return err
	}
	base, err := load(basePath)
	if err != nil {
		return err
	}
	if fresh.Scale != base.Scale {
		return fmt.Errorf("scale mismatch: fresh %q vs committed %q", fresh.Scale, base.Scale)
	}
	baseRows := make(map[string]simBenchRow, len(base.Results))
	for _, r := range base.Results {
		baseRows[r.Name] = r
	}
	matched := 0
	failures := 0
	fmt.Fprintf(os.Stderr, "vantage-sim bench: %-28s %12s %12s %7s %7s  %s\n",
		"row", "committed", "fresh", "ratio", "limit", "status")
	for _, r := range fresh.Results {
		b, ok := baseRows[r.Name]
		if !ok || b.NsPerAccess <= 0 {
			continue
		}
		matched++
		tol := rowTolerance(b)
		ratio := r.NsPerAccess / b.NsPerAccess
		status := "ok"
		if ratio > tol {
			status = "FAIL: regression"
			failures++
		}
		if r.Throughput != b.Throughput {
			status = fmt.Sprintf("FAIL: throughput canary %.6f != %.6f", r.Throughput, b.Throughput)
			failures++
		}
		fmt.Fprintf(os.Stderr, "vantage-sim bench: %-28s %9.0f ns %9.0f ns %6.2fx %6.1fx  %s\n",
			r.Name, b.NsPerAccess, r.NsPerAccess, ratio, tol, status)
	}
	if matched == 0 {
		return fmt.Errorf("no matrix rows matched between %s and %s", newPath, basePath)
	}
	// Fig 7 tier rows diff informationally (never gated: wall clocks are
	// host-dependent, and committed reports may predate the tier matrix).
	baseTiers := make(map[string]fig7Bench)
	for _, f := range base.Fig7Tiers {
		baseTiers[fmt.Sprintf("%s/p%d", f.Tier, f.GoMaxProcs)] = f
	}
	if base.Fig7 != nil && base.Fig7.Tier == "" {
		baseTiers["exact/p1"] = *base.Fig7
	}
	for _, f := range fresh.Fig7Tiers {
		key := fmt.Sprintf("%s/p%d", f.Tier, f.GoMaxProcs)
		if b, ok := baseTiers[key]; ok {
			fmt.Fprintf(os.Stderr, "vantage-sim bench: fig7/%-22s %10.1fs %11.1fs %6.2fx %7s  info\n",
				key, b.Seconds, f.Seconds, f.Seconds/b.Seconds, "-")
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d perf-regression check(s) failed against %s", failures, basePath)
	}
	fmt.Fprintf(os.Stderr, "vantage-sim bench: %d rows within per-row tolerance of %s\n", matched, basePath)
	return nil
}
