// Command vantage-sim runs the paper's simulation-based experiments: the
// scheme comparisons of Figures 6a/6b/7, the Fig 8 size-tracking traces,
// the Fig 9 unmanaged-region sweep, the Fig 10 cache-design comparison, the
// Fig 11 replacement-policy study, the Table 3 workload classification, and
// the §6.2 model-validation configurations.
//
// Usage:
//
//	vantage-sim -config fig6a [-scale unit|small|full] [-mixes N] [-csv dir]
//
// Configs: all (full report), fig6a, fig6b, fig7, fig8, fig9, fig10, fig11,
// table3, validation,
// bench (kernel timing matrix written to BENCH_sim.json),
// fairness (weighted/harmonic speedup metrics, §5's footnote), assoc
// (empirical associativity CDFs vs FA(x)=x^R), transient (resize
// convergence speed, the Fig 8 adaptation claim).
// The default -mixes caps runtime; pass -mixes 350 for the paper's full
// workload sets.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"vantage/internal/exp"
)

func main() {
	config := flag.String("config", "fig6a", "experiment to run")
	scale := flag.String("scale", "unit", "machine scale: unit, small or full")
	mixes := flag.Int("mixes", 35, "number of mixes (350 = paper)")
	csvDir := flag.String("csv", "", "directory to write CSV data into")
	mixID := flag.String("mix", "ttnn4", "mix for -config fig8")
	benchOut := flag.String("o", "BENCH_sim.json", "output path for -config bench")
	benchFig7 := flag.Bool("fig7", false, "also time the Fig 7 regeneration microcosm in -config bench (~25s)")
	benchCompare := flag.String("compare", "", "committed BENCH_sim.json to regression-check the fresh -config bench run against")
	contention := flag.Bool("contention", false, "model L2 banks and memory bandwidth (Table 2)")
	fast := flag.Bool("fast", false, "fast simulation tier: alias-method generators, statistically equivalent but not bit-exact (DESIGN.md §7)")
	partition := flag.Int("partition", 0, "partition to trace for -config fig8")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	var sc exp.Scale
	switch *scale {
	case "unit":
		sc = exp.ScaleUnit
	case "small":
		sc = exp.ScaleSmall
	case "full":
		sc = exp.ScaleFull
	default:
		fmt.Fprintf(os.Stderr, "vantage-sim: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	applyContention := func(m exp.Machine) exp.Machine {
		if *contention {
			m = m.WithContention()
		}
		m.FastTier = *fast
		return m
	}

	start := time.Now()
	progress := func(done, total int) {
		if *quiet {
			return
		}
		if done%10 == 0 || done == total {
			fmt.Fprintf(os.Stderr, "\r%s: %d/%d runs (%.0fs)", *config, done, total, time.Since(start).Seconds())
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	writeCSV := func(name, data string) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "vantage-sim:", err)
			os.Exit(1)
		}
		path := filepath.Join(*csvDir, name)
		if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "vantage-sim:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", path)
	}

	switch *config {
	case "all":
		dir := *csvDir
		if dir == "" {
			dir = "results"
		}
		err := exp.WriteReport(dir, exp.ReportOptions{
			Scale: sc,
			Mixes: *mixes,
			Tweak: applyContention,
			Progress: func(stage string) {
				if !*quiet {
					fmt.Fprintf(os.Stderr, "all: %s (%.0fs)\n", stage, time.Since(start).Seconds())
				}
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "vantage-sim:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", dir+"/REPORT.md")
	case "fig6a":
		m := applyContention(exp.SmallCMP(sc))
		r := exp.Fig6a(m, *mixes, progress)
		fmt.Println(r.Table())
		fmt.Println(r.BreakdownTable())
		fmt.Println(r.Plot(70, 16))
		writeCSV("fig6a.csv", r.CSV())
	case "fig6b":
		m := applyContention(exp.SmallCMP(sc))
		r := exp.Fig6b(m)
		fmt.Println(r.Table())
	case "fig7":
		m := applyContention(exp.LargeCMP(sc))
		r := exp.Fig7(m, *mixes, progress)
		fmt.Println(r.Table())
		fmt.Println(r.BreakdownTable())
		fmt.Println(r.Plot(70, 16))
		writeCSV("fig7.csv", r.CSV())
	case "fig8":
		m := applyContention(exp.SmallCMP(sc))
		r := exp.RunFig8(m, *mixID, *partition)
		fmt.Println(r.Table())
		for i := range r.Schemes {
			fmt.Println(r.Plot(i, 70, 12))
		}
		writeCSV("fig8.csv", r.CSV())
	case "fig9":
		m := applyContention(exp.SmallCMP(sc))
		r := exp.RunFig9(m, nil, *mixes, progress)
		fmt.Println(r.Table())
		writeCSV("fig9.csv", r.CSV())
	case "fig10":
		m := applyContention(exp.SmallCMP(sc))
		r := exp.Fig10(m, *mixes, progress)
		fmt.Println(r.Table())
		writeCSV("fig10.csv", r.CSV())
	case "fig11":
		m := applyContention(exp.SmallCMP(sc))
		r := exp.Fig11(m, *mixes, progress)
		fmt.Println(r.Table())
		writeCSV("fig11.csv", r.CSV())
	case "table3":
		m := applyContention(exp.SmallCMP(sc))
		r := exp.RunTable3(m, 3, progress)
		fmt.Println(r.Table())
		fmt.Printf("classification accuracy: %.0f%%\n", 100*r.Accuracy())
	case "validation":
		m := applyContention(exp.SmallCMP(sc))
		r := exp.Validation(m, *mixes, progress)
		fmt.Println(r.Table())
		writeCSV("validation.csv", r.CSV())
	case "transient":
		m := applyContention(exp.SmallCMP(sc))
		r := exp.RunTransient(m.L2Lines, m.Seed)
		fmt.Println(r.Table())
	case "assoc":
		m := applyContention(exp.SmallCMP(sc))
		r := exp.RunAssociativity(nil, m.L2Lines, 8000, m.Seed)
		fmt.Println(r.Table())
	case "bench":
		if err := runSimBenchMatrix(*benchOut, *scale, sc, *benchFig7); err != nil {
			fmt.Fprintln(os.Stderr, "vantage-sim:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *benchOut)
		if *benchCompare != "" {
			// CI perf-regression smoke: per-row tolerances (see
			// rowTolerance) so long, stable rows gate tightly while short
			// noisy ones only catch gross regressions.
			if err := compareSimBench(*benchOut, *benchCompare); err != nil {
				fmt.Fprintln(os.Stderr, "vantage-sim:", err)
				os.Exit(1)
			}
		}
	case "fairness":
		m := applyContention(exp.SmallCMP(sc))
		r := exp.RunFairness(m, exp.LRUBaseline(),
			[]exp.Scheme{exp.DefaultVantageScheme(), exp.WayPartScheme(), exp.PIPPScheme()},
			*mixes, progress)
		fmt.Println(r.Table())
	default:
		fmt.Fprintf(os.Stderr, "vantage-sim: unknown config %q\n", *config)
		os.Exit(2)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "total: %.1fs\n", time.Since(start).Seconds())
	}
}
