package vantage_test

import (
	"bytes"
	"testing"

	"vantage"
)

// TestPublicAPIQuickstart exercises the README's quick-start path end to
// end through the public facade only.
func TestPublicAPIQuickstart(t *testing.T) {
	arr := vantage.NewZCache(4096, 4, 52, 42)
	ctl := vantage.New(arr, vantage.Config{
		Partitions:    4,
		UnmanagedFrac: 0.05,
		AMax:          0.5,
		Slack:         0.1,
	})
	ctl.SetTargets([]int{2000, 1000, 500, 391})
	for i := 0; i < 50000; i++ {
		for p := 0; p < 4; p++ {
			addr := uint64(p)<<40 | uint64(i%(500*(p+1)))
			ctl.Access(addr, p)
		}
	}
	for p := 0; p < 4; p++ {
		if ctl.Size(p) == 0 {
			t.Fatalf("partition %d empty", p)
		}
	}
	c := ctl.Counters()
	if c.Hits == 0 || c.Misses == 0 {
		t.Fatal("no traffic recorded")
	}
}

func TestPublicArrays(t *testing.T) {
	arrays := []vantage.Array{
		vantage.NewZCache(512, 4, 16, 1),
		vantage.NewSkewAssoc(512, 4, 2),
		vantage.NewSetAssoc(512, 16, true, 3),
		vantage.NewRandomCands(512, 16, 4),
	}
	for _, arr := range arrays {
		cands := arr.Candidates(99, nil)
		if len(cands) == 0 {
			t.Fatalf("%s: no candidates", arr.Name())
		}
		id, _ := arr.Install(99, cands[0])
		if got, ok := arr.Lookup(99); !ok || got != id {
			t.Fatalf("%s: lookup after install failed", arr.Name())
		}
	}
}

func TestPublicBaselines(t *testing.T) {
	sa := vantage.NewSetAssoc(1024, 16, true, 5)
	wp := vantage.NewWayPartition(sa, 4)
	wp.SetTargets([]int{256, 256, 256, 256})
	wp.Access(1, 0)

	sa2 := vantage.NewSetAssoc(1024, 16, true, 6)
	pp := vantage.NewPIPP(sa2, 4, 7)
	pp.Access(1, 0)

	z := vantage.NewZCache(1024, 4, 16, 8)
	un := vantage.NewUnpartitioned(z, vantage.NewDRRIP(1024, 9), 2)
	un.Access(1, 0)

	for _, pol := range []vantage.ReplacementPolicy{
		vantage.NewLRU(64), vantage.NewSRRIP(64),
		vantage.NewBRRIP(64, 1), vantage.NewTADRRIP(64, 2, 1),
	} {
		if pol.Name() == "" {
			t.Fatal("unnamed policy")
		}
	}
}

func TestPublicUCPAndSim(t *testing.T) {
	apps := []vantage.App{
		vantage.NewScanApp(vantage.Fitting, 400, 2, 1, 11),
		vantage.NewStreamApp(1<<18, 2, 1, 13),
	}
	arr := vantage.NewZCache(1024, 4, 52, 15)
	ctl := vantage.New(arr, vantage.Config{Partitions: 2, UnmanagedFrac: 0.05, AMax: 0.5, Slack: 0.1})
	pol := vantage.NewUCP(2, 16, 1024, vantage.GranLines, 17)
	res := vantage.Simulate(vantage.SimConfig{
		Apps:               apps,
		L2:                 ctl,
		L1Lines:            32,
		L1Ways:             4,
		InstrLimit:         100_000,
		WarmupInstr:        50_000,
		Alloc:              pol,
		RepartitionCycles:  100_000,
		PartitionableLines: 972,
	})
	if res.Throughput <= 0 || len(res.Cores) != 2 {
		t.Fatalf("bad result: %+v", res)
	}
	if vantage.DefaultLatencies().Memory != 200 {
		t.Fatal("latencies wrong")
	}
}

func TestPublicAnalytics(t *testing.T) {
	if vantage.AssocCDF(0.5, 4) != 0.0625 {
		t.Fatal("AssocCDF")
	}
	if vantage.FeedbackAperture(1100, 1000, 0.4, 0.1) != 0.4 {
		t.Fatal("FeedbackAperture")
	}
	u := vantage.UnmanagedFraction(1e-2, 0.4, 0.1, 52)
	if u < 0.12 || u > 0.15 {
		t.Fatalf("UnmanagedFraction = %v", u)
	}
	o := vantage.StateOverhead(131072, 32, 64, 64)
	if o.PartitionBitsPerTag != 6 {
		t.Fatal("StateOverhead")
	}
	alloc := vantage.Lookahead([][]float64{{0, 10, 20}, {0, 1, 2}}, 2, 1)
	if alloc[0] != 1 || alloc[1] != 1 {
		t.Fatalf("Lookahead: %v", alloc)
	}
	if vantage.ForcedEvictionProb(0.05, 52) > 0.08 {
		t.Fatal("ForcedEvictionProb")
	}
	if vantage.MinStableSize(1, 1, 1, 0.5, 52, 1) <= 0 {
		t.Fatal("MinStableSize")
	}
	if vantage.Aperture(1, 4, 1, 4, 16, 0.625) <= 0 {
		t.Fatal("Aperture")
	}
}

func TestPublicMachines(t *testing.T) {
	small := vantage.SmallCMP(vantage.ScaleUnit)
	large := vantage.LargeCMP(vantage.ScaleUnit)
	if small.Cores != 4 || large.Cores != 32 {
		t.Fatal("machine configs wrong")
	}
	mixes := vantage.Mixes(4, 1, vantage.WorkloadParams{CacheLines: 1024}, 3)
	if len(mixes) != 35 {
		t.Fatalf("got %d mixes", len(mixes))
	}
}

func TestPublicExtras(t *testing.T) {
	// Allocation policies.
	st := vantage.NewStaticAllocator([]float64{3, 1})
	if a := st.Allocate(400); a[0] != 300 || a[1] != 100 {
		t.Fatalf("static allocator: %v", a)
	}
	eq := vantage.NewEqualShareAllocator(4)
	if a := eq.Allocate(400); a[0] != 100 {
		t.Fatalf("equal-share allocator: %v", a)
	}
	pr := vantage.NewProportionalAllocator(2, 0.1)
	pr.Access(0, 1)
	if a := pr.Allocate(100); a[0]+a[1] != 100 {
		t.Fatalf("proportional allocator: %v", a)
	}
	rr := vantage.NewUCPRRIP(2, 16, 1024, 5)
	for i := 0; i < 1000; i++ {
		rr.Access(0, uint64(i%50))
	}
	if a := rr.Allocate(1024); a[0]+a[1] != 1024 {
		t.Fatalf("UCP-RRIP allocator: %v", a)
	}
	if len(rr.InsertionPolicies()) != 2 {
		t.Fatal("UCP-RRIP policy vector")
	}

	// Set partitioning.
	sp := vantage.NewSetPartition(vantage.NewSetAssoc(512, 8, true, 1), 2)
	sp.Access(1, 0)
	if sp.Size(0) != 1 {
		t.Fatal("set partition basic access")
	}
}

func TestPublicTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := vantage.NewTraceWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	src := vantage.NewScanApp(vantage.Fitting, 100, 2, 1, 9)
	if err := vantage.CaptureTrace(w, src, 500); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := vantage.NewTraceReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var recs []vantage.TraceRecord
	for {
		rec, err := r.Read()
		if err != nil {
			break
		}
		recs = append(recs, rec)
	}
	if len(recs) != 500 {
		t.Fatalf("trace round trip lost records: %d", len(recs))
	}
	app := vantage.NewTraceApp("scan", vantage.Fitting, recs)
	if app.Name() != "trace:scan" {
		t.Fatal("trace app name")
	}
}

func TestPublicOnePerEvictionMode(t *testing.T) {
	ctl := vantage.New(vantage.NewZCache(512, 4, 16, 1), vantage.Config{
		Partitions: 1, UnmanagedFrac: 0.1, AMax: 0.5, Slack: 0.1,
		Mode: vantage.ModeOnePerEviction,
	})
	for i := 0; i < 5000; i++ {
		ctl.Access(uint64(i%600), 0)
	}
	if ctl.Counters().Demotions == 0 {
		t.Fatal("ablation mode never demoted")
	}
}
