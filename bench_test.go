// Benchmarks that regenerate every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index), plus ablation and
// microarchitectural benchmarks. Figure benches run scaled-down
// configurations (ScaleUnit machines, a handful of mixes) so the whole
// suite completes in minutes; cmd/vantage-sim runs the full versions.
//
// Shape metrics (geometric-mean speedups, forced-eviction fractions,
// classification accuracy) are attached to each benchmark via
// b.ReportMetric, so `go test -bench .` doubles as a results table.
package vantage_test

import (
	"testing"

	"vantage"
	"vantage/internal/analytic"
	"vantage/internal/core"
	"vantage/internal/exp"
	"vantage/internal/hash"
	"vantage/internal/ucp"
	"vantage/internal/workload"
)

// workloadMRC adapts the facade App to the workload package's MRC utility.
func workloadMRC(app vantage.App, n int, sizes []int) []float64 {
	return workload.MissRateCurve(app, n, sizes)
}

// benchMachine returns the scaled 4-core machine used by figure benches.
func benchMachine() exp.Machine {
	m := exp.SmallCMP(exp.ScaleUnit)
	m.InstrLimit, m.WarmupInstr = 60_000, 40_000
	return m
}

// BenchmarkFig1AssocCDF regenerates Fig 1 (Equation 1 associativity CDFs)
// and reports FA(0.8; R=64), the paper's quoted ~1e-6 point.
func BenchmarkFig1AssocCDF(b *testing.B) {
	var f exp.Fig1
	for i := 0; i < b.N; i++ {
		f = exp.RunFig1()
	}
	b.ReportMetric(f.F[3][80]*1e9, "FA(0.8,R64)_e-9")
}

// BenchmarkFig2ManagedCDF regenerates Fig 2 (managed-region demotion CDFs)
// and reports the demotion mass below priority 0.9 for R=16 under both
// demotion disciplines.
func BenchmarkFig2ManagedCDF(b *testing.B) {
	var f exp.Fig2
	for i := 0; i < b.N; i++ {
		f = exp.RunFig2()
	}
	b.ReportMetric(f.OnePer[0][90], "one-per-evict@0.9")
	b.ReportMetric(f.Average[0][90], "on-average@0.9")
}

// BenchmarkFig5UnmanagedSizing regenerates Fig 5 (unmanaged-region sizing)
// and reports u(Amax=0.4, Pev=1e-2, R=52), the paper's 13%.
func BenchmarkFig5UnmanagedSizing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = exp.RunFig5()
	}
	b.ReportMetric(100*analytic.UnmanagedFraction(1e-2, 0.4, 0.1, 52), "u_pct")
}

// BenchmarkFig6aSmallScale regenerates the 4-core scheme comparison
// (Fig 6a) on a reduced mix set and reports each scheme's geometric-mean
// throughput versus unpartitioned LRU. The paper's shape: Vantage > 1 on
// nearly all mixes; way-partitioning and PIPP hurt a large fraction.
func BenchmarkFig6aSmallScale(b *testing.B) {
	m := benchMachine()
	var r exp.ThroughputResult
	for i := 0; i < b.N; i++ {
		r = exp.Fig6a(m, 12, nil)
	}
	for _, c := range r.Curves {
		b.ReportMetric(c.Summary.GeoMean, "gmean_"+c.Scheme)
	}
}

// BenchmarkFig6bSelected regenerates the Fig 6b selected-mix bars.
func BenchmarkFig6bSelected(b *testing.B) {
	m := benchMachine()
	var r exp.SelectedMixes
	for i := 0; i < b.N; i++ {
		r = exp.Fig6b(m)
	}
	// Report Vantage's mean improvement across the selected mixes.
	last := len(r.Improv) - 1
	mean := 0.0
	for _, v := range r.Improv[last] {
		mean += v
	}
	b.ReportMetric(mean/float64(len(r.Improv[last])), "vantage_mean_pct")
}

// BenchmarkFig7LargeScale regenerates the 32-core comparison (Fig 7):
// Vantage on a 4-way zcache against way-partitioning and PIPP on 64-way
// caches. The paper's shape: the way-granular schemes degrade most mixes
// at 32 partitions while Vantage keeps improving.
func BenchmarkFig7LargeScale(b *testing.B) {
	m := exp.LargeCMP(exp.ScaleUnit)
	// Keep the machine's warmup: it is sized to cover the stream-driven
	// cache-fill transient (see exp.LargeCMP); shortening it reintroduces
	// the cold-start forced evictions the measurement must exclude.
	m.InstrLimit = 25_000
	var r exp.ThroughputResult
	for i := 0; i < b.N; i++ {
		r = exp.Fig7(m, 6, nil)
	}
	for _, c := range r.Curves {
		b.ReportMetric(c.Summary.GeoMean, "gmean_"+c.Scheme)
	}
}

// BenchmarkFig8SizeTracking regenerates the Fig 8 size-tracking traces and
// reports each scheme's mean undershoot (the paper's Fig 8c shows PIPP
// failing to meet its targets while Vantage tracks them).
func BenchmarkFig8SizeTracking(b *testing.B) {
	m := benchMachine()
	m.InstrLimit = 150_000
	var r exp.Fig8Result
	for i := 0; i < b.N; i++ {
		r = exp.RunFig8(m, "ttnn4", 0)
	}
	for i, name := range r.Schemes {
		under, _ := r.TrackingError(i)
		b.ReportMetric(100*under, "undershoot_pct_"+name)
	}
}

// BenchmarkFig9UnmanagedSweep regenerates the Fig 9 sensitivity study and
// reports the median forced-eviction fraction at u=5% and u=30%.
func BenchmarkFig9UnmanagedSweep(b *testing.B) {
	m := benchMachine()
	var r exp.Fig9Result
	for i := 0; i < b.N; i++ {
		r = exp.RunFig9(m, []float64{0.05, 0.30}, 8, nil)
	}
	for i, u := range r.U {
		ff := r.ForcedFrac[i]
		b.ReportMetric(ff[len(ff)/2], "median_forced_u"+fmtPct(u))
	}
}

func fmtPct(u float64) string {
	return string([]byte{byte('0' + int(u*100)/10%10), byte('0' + int(u*100)%10)})
}

// BenchmarkFig10CacheDesigns regenerates the Fig 10 array-design study:
// Vantage on Z4/52, SA64, Z4/16 and SA16.
func BenchmarkFig10CacheDesigns(b *testing.B) {
	m := benchMachine()
	var r exp.ThroughputResult
	for i := 0; i < b.N; i++ {
		r = exp.Fig10(m, 8, nil)
	}
	for _, c := range r.Curves {
		b.ReportMetric(c.Summary.GeoMean, "gmean_"+c.Scheme)
	}
}

// BenchmarkFig11RRIP regenerates the Fig 11 replacement-policy study:
// RRIP baselines versus Vantage-LRU and Vantage-DRRIP.
func BenchmarkFig11RRIP(b *testing.B) {
	m := benchMachine()
	var r exp.ThroughputResult
	for i := 0; i < b.N; i++ {
		r = exp.Fig11(m, 8, nil)
	}
	for _, c := range r.Curves {
		b.ReportMetric(c.Summary.GeoMean, "gmean_"+c.Scheme)
	}
}

// BenchmarkTable3Classification regenerates the Table 3 workload
// classification and reports its accuracy.
func BenchmarkTable3Classification(b *testing.B) {
	m := benchMachine()
	var r exp.Table3Result
	for i := 0; i < b.N; i++ {
		r = exp.RunTable3(m, 2, nil)
	}
	b.ReportMetric(100*r.Accuracy(), "accuracy_pct")
}

// BenchmarkValidationModels regenerates the §6.2 validation: practical
// Vantage versus perfect-aperture control versus the idealized
// random-candidates array. The three gmeans should nearly coincide.
func BenchmarkValidationModels(b *testing.B) {
	m := benchMachine()
	var r exp.ThroughputResult
	for i := 0; i < b.N; i++ {
		r = exp.Validation(m, 8, nil)
	}
	for _, c := range r.Curves {
		b.ReportMetric(c.Summary.GeoMean, "gmean_"+c.Scheme)
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §4)
// ---------------------------------------------------------------------------

// BenchmarkAblationDemotionMode quantifies §3.3's demote-on-average
// advantage empirically: the mean demotion priority of the practical
// (setpoint, on-average) controller versus the exactly-one-per-eviction
// ablation, whose distribution follows Eq 2 / Fig 2b.
func BenchmarkAblationDemotionMode(b *testing.B) {
	// The harmful demotions are the low-priority ones (lines the partition
	// still needs); report the tail mass below priority 0.85 under each
	// discipline. On-average demotions are confined to [1-A, 1]; the
	// one-per-eviction ablation has an Eq 2 tail reaching far lower. The
	// contrast is starkest at modest candidate counts, so the ablation runs
	// on Z4/16 (Fig 2 uses R=16 too).
	measure := func(mode vantage.Mode) float64 {
		arr := vantage.NewZCache(4096, 4, 16, 1)
		ctl := vantage.New(arr, vantage.Config{
			Partitions: 2, UnmanagedFrac: 0.10, AMax: 0.5, Slack: 0.1, Mode: mode,
		})
		ctl.SetTargets([]int{1843, 1843})
		var low float64
		var n int
		ctl.SetEvictionObserver(func(part int, pri float64, dem bool) {
			if dem {
				if pri < 0.85 {
					low++
				}
				n++
			}
		})
		// Mild overcommit keeps the demotion demand near one per eviction,
		// Fig 2's matched-rate comparison point.
		rng := hash.NewRand(7)
		for k := 0; k < 120000; k++ {
			ctl.Access(1<<40|uint64(rng.Intn(1950)), 0)
			ctl.Access(2<<40|uint64(rng.Intn(1950)), 1)
		}
		if n == 0 {
			return 0
		}
		return low / float64(n)
	}
	var onAvg, onePer float64
	for i := 0; i < b.N; i++ {
		onAvg = measure(vantage.ModeSetpoint)
		onePer = measure(vantage.ModeOnePerEviction)
	}
	b.ReportMetric(onAvg*100, "pct_below_085_on_average")
	b.ReportMetric(onePer*100, "pct_below_085_one_per_evict")
}

// BenchmarkAblationApertureControl compares the practical feedback
// controller against perfect-aperture knowledge (the §6.2 validation) on
// throughput.
func BenchmarkAblationApertureControl(b *testing.B) {
	m := benchMachine()
	var r exp.ThroughputResult
	for i := 0; i < b.N; i++ {
		r = exp.RunThroughput(m, exp.LRUBaseline(), []exp.Scheme{
			exp.DefaultVantageScheme(),
			exp.VantageScheme("Z4/52", exp.DefaultVantage(), core.ModePerfectAperture),
		}, 6, nil)
	}
	b.ReportMetric(r.Curves[0].Summary.GeoMean, "gmean_setpoint")
	b.ReportMetric(r.Curves[1].Summary.GeoMean, "gmean_perfect")
}

// BenchmarkAblationSetpoint measures how closely setpoint-based demotions
// track partition targets versus perfect priority knowledge: the mean
// absolute size error across a steady-state run.
func BenchmarkAblationSetpoint(b *testing.B) {
	var errSetpoint, errPerfect float64
	for i := 0; i < b.N; i++ {
		for _, mode := range []vantage.Mode{vantage.ModeSetpoint, vantage.ModePerfectAperture} {
			arr := vantage.NewZCache(4096, 4, 52, 1)
			ctl := vantage.New(arr, vantage.Config{
				Partitions: 2, UnmanagedFrac: 0.10, AMax: 0.5, Slack: 0.1, Mode: mode,
			})
			targets := []int{2400, 1286}
			ctl.SetTargets(targets)
			rng := hash.NewRand(11)
			sum, n := 0.0, 0
			for k := 0; k < 80000; k++ {
				ctl.Access(1<<40|uint64(rng.Intn(2600)), 0)
				ctl.Access(2<<40|uint64(k), 1)
				if k > 40000 && k%500 == 0 {
					for p := 0; p < 2; p++ {
						d := float64(ctl.Size(p) - targets[p])
						if d < 0 {
							d = -d
						}
						sum += d / float64(targets[p])
						n++
					}
				}
			}
			if mode == vantage.ModeSetpoint {
				errSetpoint = sum / float64(n)
			} else {
				errPerfect = sum / float64(n)
			}
		}
	}
	b.ReportMetric(100*errSetpoint, "size_err_pct_setpoint")
	b.ReportMetric(100*errPerfect, "size_err_pct_perfect")
}

// BenchmarkAblationSlackAmax sweeps the controller's two knobs over a
// representative mix, reporting relative throughput for each setting
// (the paper: largely insensitive for Amax 5-70%, slack > 2%).
func BenchmarkAblationSlackAmax(b *testing.B) {
	m := benchMachine()
	var results []float64
	var labels []string
	for i := 0; i < b.N; i++ {
		results = results[:0]
		labels = labels[:0]
		for _, cfg := range []struct {
			amax, slack float64
		}{{0.1, 0.1}, {0.5, 0.1}, {0.9, 0.1}, {0.5, 0.05}, {0.5, 0.3}} {
			v := exp.DefaultVantage()
			v.AMax, v.Slack = cfg.amax, cfg.slack
			r := exp.RunThroughput(m, exp.LRUBaseline(),
				[]exp.Scheme{exp.VantageScheme("Z4/52", v, core.ModeSetpoint)}, 4, nil)
			results = append(results, r.Curves[0].Summary.GeoMean)
			labels = append(labels, "gmean_A"+fmtPct(cfg.amax)+"_s"+fmtPct(cfg.slack))
		}
	}
	for i := range results {
		b.ReportMetric(results[i], labels[i])
	}
}

// BenchmarkAblationCandidates isolates the candidate count R: Vantage on
// Z4/16 vs Z4/52 at matched unmanaged fractions.
func BenchmarkAblationCandidates(b *testing.B) {
	m := benchMachine()
	var r exp.ThroughputResult
	for i := 0; i < b.N; i++ {
		v := exp.DefaultVantage()
		v.UnmanagedFrac = 0.10
		r = exp.RunThroughput(m, exp.LRUBaseline(), []exp.Scheme{
			exp.VantageScheme("Z4/16", v, core.ModeSetpoint),
			exp.VantageScheme("Z4/52", v, core.ModeSetpoint),
		}, 6, nil)
	}
	for _, c := range r.Curves {
		b.ReportMetric(c.Summary.GeoMean, "gmean_"+c.Scheme)
	}
}

// BenchmarkTransientConvergence measures resize-convergence speed (the
// Fig 8 adaptation claim): accesses until partition sizes reach a flipped
// allocation, per scheme.
func BenchmarkTransientConvergence(b *testing.B) {
	var r exp.TransientResult
	for i := 0; i < b.N; i++ {
		r = exp.RunTransient(4096, 7)
	}
	for i, name := range r.Schemes {
		b.ReportMetric(float64(r.Accesses[i]), "accesses_"+name)
	}
}

// ---------------------------------------------------------------------------
// Microbenchmarks (per-access costs of the substrates)
// ---------------------------------------------------------------------------

// BenchmarkZCacheAccess measures raw Z4/52 walk+install throughput.
func BenchmarkZCacheAccess(b *testing.B) {
	arr := vantage.NewZCache(32768, 4, 52, 1)
	rng := hash.NewRand(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := rng.Uint64() | 1
		if _, ok := arr.Lookup(addr); !ok {
			cands := arr.Candidates(addr, nil)
			arr.Install(addr, cands[len(cands)-1])
		}
	}
}

// BenchmarkSetAssocAccess measures raw SA16 lookup+install throughput.
func BenchmarkSetAssocAccess(b *testing.B) {
	arr := vantage.NewSetAssoc(32768, 16, true, 1)
	rng := hash.NewRand(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := rng.Uint64() | 1
		if _, ok := arr.Lookup(addr); !ok {
			cands := arr.Candidates(addr, nil)
			arr.Install(addr, cands[0])
		}
	}
}

// BenchmarkVantageAccess measures the full Vantage controller access path
// under steady demotion traffic.
func BenchmarkVantageAccess(b *testing.B) {
	arr := vantage.NewZCache(32768, 4, 52, 1)
	ctl := vantage.New(arr, vantage.Config{Partitions: 8, UnmanagedFrac: 0.05, AMax: 0.5, Slack: 0.1})
	rng := hash.NewRand(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := i & 7
		ctl.Access(uint64(p+1)<<40|uint64(rng.Intn(6000)), p)
	}
}

// BenchmarkUnpartitionedLRUAccess is the baseline access path.
func BenchmarkUnpartitionedLRUAccess(b *testing.B) {
	arr := vantage.NewZCache(32768, 4, 52, 1)
	ctl := vantage.NewUnpartitioned(arr, vantage.NewLRU(32768), 8)
	rng := hash.NewRand(9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := i & 7
		ctl.Access(uint64(p+1)<<40|uint64(rng.Intn(6000)), p)
	}
}

// BenchmarkUCPAllocate measures one Lookahead repartitioning decision at
// line granularity with 32 partitions.
func BenchmarkUCPAllocate(b *testing.B) {
	pol := ucp.NewPolicy(32, 16, 131072, ucp.GranLines, 1)
	rng := hash.NewRand(11)
	for p := 0; p < 32; p++ {
		for k := 0; k < 20000; k++ {
			pol.Access(p, uint64(p+1)<<40|uint64(rng.Intn(4000*(p+1))))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol.Allocate(124518)
	}
}

// BenchmarkSimulatorThroughput measures simulated accesses per second for
// the full 4-core stack (cores + L1s + UCP + Vantage L2).
func BenchmarkSimulatorThroughput(b *testing.B) {
	m := benchMachine()
	mix := m.Mixes(1)[0]
	sch := exp.DefaultVantageScheme()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.RunMix(mix, sch)
	}
}

// BenchmarkAblationBanking compares the paper's banked organization (4
// address-interleaved banks with per-bank Vantage controllers and split
// targets) against a single monolithic controller.
func BenchmarkAblationBanking(b *testing.B) {
	m := benchMachine()
	var r exp.ThroughputResult
	for i := 0; i < b.N; i++ {
		r = exp.RunThroughput(m, exp.LRUBaseline(), []exp.Scheme{
			exp.DefaultVantageScheme(),
			exp.BankedVantageScheme(4),
		}, 6, nil)
	}
	for _, c := range r.Curves {
		b.ReportMetric(c.Summary.GeoMean, "gmean_"+c.Scheme)
	}
}

// BenchmarkContention measures the effect of enabling Table 2's bank and
// bandwidth contention model on the Vantage-vs-LRU comparison.
func BenchmarkContention(b *testing.B) {
	var free, limited exp.ThroughputResult
	for i := 0; i < b.N; i++ {
		m := benchMachine()
		free = exp.RunThroughput(m, exp.LRUBaseline(), []exp.Scheme{exp.DefaultVantageScheme()}, 6, nil)
		mc := m.WithContention()
		limited = exp.RunThroughput(mc, exp.LRUBaseline(), []exp.Scheme{exp.DefaultVantageScheme()}, 6, nil)
	}
	b.ReportMetric(free.Curves[0].Summary.GeoMean, "gmean_zero_load")
	b.ReportMetric(limited.Curves[0].Summary.GeoMean, "gmean_contended")
}

// BenchmarkMissRateCurve measures the Mattson stack-distance MRC utility.
func BenchmarkMissRateCurve(b *testing.B) {
	sizes := []int{256, 512, 1024, 2048, 4096}
	for i := 0; i < b.N; i++ {
		app := vantage.NewZipfApp(vantage.Friendly, 4000, 0.7, 0, 1, uint64(i+1))
		workloadMRC(app, 30000, sizes)
	}
}
