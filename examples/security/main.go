// Security: close a prime+probe cache side channel with partition isolation
// (the paper's §1 motivates Vantage for exactly this, citing Percival's
// attack).
//
// An attacker primes the cache with its own lines, waits while a victim
// executes a secret-dependent memory burst, then probes its lines and
// counts misses. On a shared LRU cache, the victim's insertions evict
// attacker lines, so the probe miss count leaks the secret bit. With
// Vantage, the victim's churn is absorbed by its own partition and the
// unmanaged region — the attacker's partition is isolated and the two
// probe distributions collapse onto each other.
package main

import (
	"fmt"

	"vantage"
)

const (
	l2Lines    = 4096
	primeLines = 1500 // attacker's probe set
	burstLines = 3500 // victim's secret-dependent burst
	trials     = 400
)

// probeChannel runs the prime+probe protocol and returns the mean probe
// misses when the secret bit is 0 and when it is 1.
func probeChannel(mk func() vantage.CacheController) (mean0, mean1 float64) {
	l2 := mk()
	rng := uint64(12345)
	next := func(n uint64) uint64 { rng = rng*6364136223846793005 + 1442695040888963407; return rng % n }
	var sum [2]float64
	var cnt [2]int
	victimPos := uint64(0)
	for trial := 0; trial < trials; trial++ {
		// Prime: attacker (partition 1) touches its probe set.
		for i := uint64(0); i < primeLines; i++ {
			l2.Access(1<<40|i, 1)
		}
		// Victim (partition 0) bursts only when the secret bit is 1.
		bit := int(next(2))
		if bit == 1 {
			for i := uint64(0); i < burstLines; i++ {
				l2.Access(2<<40|victimPos, 0)
				victimPos++
			}
		}
		// Probe: attacker re-touches its set counting misses.
		misses := 0
		for i := uint64(0); i < primeLines; i++ {
			if r := l2.Access(1<<40|i, 1); !r.Hit {
				misses++
			}
		}
		if trial >= 10 { // skip cold-start trials
			sum[bit] += float64(misses)
			cnt[bit]++
		}
	}
	return sum[0] / float64(cnt[0]), sum[1] / float64(cnt[1])
}

func main() {
	shared := func() vantage.CacheController {
		return vantage.NewUnpartitioned(
			vantage.NewZCache(l2Lines, 4, 52, 7), vantage.NewLRU(l2Lines), 2)
	}
	partitioned := func() vantage.CacheController {
		// A large unmanaged region gives the strong isolation the paper
		// prescribes for security uses (§7): Pev = (1-0.25)^52 ≈ 3e-7.
		ctl := vantage.New(vantage.NewZCache(l2Lines, 4, 52, 7), vantage.Config{
			Partitions:    2,
			UnmanagedFrac: 0.25,
			AMax:          0.5,
			Slack:         0.1,
		})
		ctl.SetTargets([]int{1500, 1572}) // victim, attacker
		return ctl
	}

	s0, s1 := probeChannel(shared)
	v0, v1 := probeChannel(partitioned)

	fmt.Println("prime+probe side channel: mean attacker probe misses per trial")
	fmt.Printf("%-22s secret=0 %8.1f   secret=1 %8.1f   leak (delta) %8.1f\n",
		"shared LRU", s0, s1, s1-s0)
	fmt.Printf("%-22s secret=0 %8.1f   secret=1 %8.1f   leak (delta) %8.1f\n",
		"Vantage partitions", v0, v1, v1-v0)
	if s1-s0 > 10*(v1-v0) {
		fmt.Println("\nVantage collapses the channel: the victim's activity is no longer")
		fmt.Println("observable through the attacker's probe misses.")
	} else {
		fmt.Println("\nWARNING: channel not fully closed in this configuration.")
	}
}
