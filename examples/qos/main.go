// QoS: guarantee cache capacity — and therefore performance — to a
// latency-critical application while batch jobs thrash beside it.
//
// The example runs the same 4-app mix twice on the simulated CMP (Table 2
// latencies): once on a shared LRU cache, once with Vantage reserving a
// fixed allocation for the critical app. Under shared LRU the batch
// streams' churn evicts the critical app's working set; Vantage pins it
// with a hard capacity floor and no repartitioning policy in the loop.
package main

import (
	"fmt"

	"vantage"
)

const (
	l2Lines  = 8192
	critical = 0 // core 0 runs the latency-critical app
)

func mkApps() []vantage.App {
	return []vantage.App{
		// Critical app: cyclic scan over 7000 lines — the classic
		// cache-fitting shape with a miss cliff at its working set.
		vantage.NewScanApp(vantage.Fitting, 7000, 2, 1, 100),
		// Batch: three streams with high churn.
		vantage.NewStreamApp(1<<22, 1, 1, 101),
		vantage.NewStreamApp(1<<22, 1, 1, 102),
		vantage.NewStreamApp(1<<22, 1, 1, 103),
	}
}

func run(l2 vantage.CacheController) vantage.SimResult {
	return vantage.Simulate(vantage.SimConfig{
		Apps:        mkApps(),
		L2:          l2,
		L1Lines:     128,
		L1Ways:      4,
		InstrLimit:  1_500_000,
		WarmupInstr: 1_000_000,
	})
}

func main() {
	// Shared LRU baseline.
	base := run(vantage.NewUnpartitioned(
		vantage.NewZCache(l2Lines, 4, 52, 1), vantage.NewLRU(l2Lines), 4))

	// Vantage with a static QoS reservation: the critical app gets 7200
	// lines outright; the batch partitions share the small remainder.
	ctl := vantage.New(vantage.NewZCache(l2Lines, 4, 52, 1), vantage.Config{
		Partitions:    4,
		UnmanagedFrac: 0.05,
		AMax:          0.5,
		Slack:         0.1,
	})
	ctl.SetTargets([]int{7200, 190, 190, 202})
	qos := run(ctl)

	fmt.Println("core  app                     LRU IPC   LRU MPKI   Vantage IPC   Vantage MPKI")
	apps := mkApps()
	for i := range apps {
		tag := "  "
		if i == critical {
			tag = "* "
		}
		fmt.Printf("%s%d   %-22s %8.3f %10.1f %13.3f %14.1f\n",
			tag, i, apps[i].Name(),
			base.Cores[i].IPC, base.Cores[i].L2MPKI,
			qos.Cores[i].IPC, qos.Cores[i].L2MPKI)
	}
	speedup := qos.Cores[critical].IPC / base.Cores[critical].IPC
	fmt.Printf("\ncritical app speedup with the Vantage reservation: %.2fx\n", speedup)
	fmt.Printf("aggregate throughput: LRU %.3f vs Vantage %.3f\n",
		base.Throughput, qos.Throughput)
}
