// Dynamic partitions: create and delete partitions on the fly, the
// local-store use case of §3.4 ("since partitions are cheap, some
// applications might want a variable number of partitions, creating and
// deleting partitions dynamically").
//
// A pool of partition IDs is cycled through short-lived "scratchpad"
// tenants: each tenant gets a partition, fills it with its dataset, uses it
// while a background app churns the rest of the cache, and then releases
// it — deletion is just setting the target to 0 (aperture 1.0) and letting
// the lines drain into the unmanaged region before the ID is reused.
package main

import (
	"fmt"

	"vantage"
)

const (
	l2Lines     = 8192
	scratchSize = 1200
	bgPartition = 0 // long-running background app
	poolFirst   = 1 // partition IDs 1..3 cycle between tenants
	poolSize    = 3
)

func main() {
	ctl := vantage.New(vantage.NewZCache(l2Lines, 4, 52, 11), vantage.Config{
		Partitions:    1 + poolSize,
		UnmanagedFrac: 0.10,
		AMax:          0.5,
		Slack:         0.1,
	})
	targets := []int{4800, 0, 0, 0}
	ctl.SetTargets(targets)

	// The background app misses steadily (its working set exceeds its
	// allocation), which matters: demotions happen on replacements, so a
	// deleted partition drains at the speed of the cache's miss traffic.
	bg := vantage.NewZipfApp(vantage.Friendly, 9000, 0.5, 0, 1, 3)
	bgAccess := func(n int) {
		for i := 0; i < n; i++ {
			_, a := bg.Next()
			ctl.Access(1<<40|a, bgPartition)
		}
	}

	fmt.Println("tenant  partition  fill-hit%  use-hit%  drain-left  reused-after")
	for tenant := 0; tenant < 9; tenant++ {
		p := poolFirst + tenant%poolSize
		// Create: give the partition a live allocation.
		targets[p] = scratchSize + 100
		ctl.SetTargets(targets)

		// Fill the scratchpad dataset (tag address space by tenant so reuse
		// of the partition ID never aliases old data).
		base := uint64(tenant+2) << 40
		fillHits := 0
		for i := uint64(0); i < scratchSize; i++ {
			if ctl.Access(base|i, p).Hit {
				fillHits++
			}
		}
		// Use it with the background app churning alongside.
		useHits := 0
		for round := 0; round < 10; round++ {
			bgAccess(4000)
			for i := uint64(0); i < scratchSize; i++ {
				if ctl.Access(base|i, p).Hit {
					useHits++
				}
			}
		}
		// Delete: target 0 drains the partition while others run.
		targets[p] = 0
		ctl.SetTargets(targets)
		bgAccess(60_000)
		fmt.Printf("%6d  %9d  %8.1f%% %8.1f%% %11d %13s\n",
			tenant, p,
			100*float64(fillHits)/float64(scratchSize),
			100*float64(useHits)/float64(10*scratchSize),
			ctl.Size(p),
			fmt.Sprintf("tenant %d", tenant+poolSize))
	}

	c := ctl.Counters()
	fmt.Printf("\ntotals: %d demotions, %d promotions, forced evictions %.4f%%\n",
		c.Demotions, c.Promotions,
		100*float64(c.ForcedManagedEvictions)/float64(c.Evictions+1))
	fmt.Println("every tenant's scratchpad stayed ~100% resident while active, and")
	fmt.Println("partition IDs were recycled after draining — no flushes, no copies.")
}
