// UCP multicore: the paper's full evaluation stack on one 8-core mix —
// UMON-DSS utility monitors per core, the Lookahead allocation algorithm
// repartitioning every few hundred thousand cycles, and Vantage enforcing
// the line-granularity allocations on a Z4/52 zcache.
//
// The mix spans all four Table 3 categories. UCP discovers that the
// cache-fitting and cache-friendly apps profit from capacity while the
// streams do not, and Vantage turns those decisions into hard allocations.
package main

import (
	"fmt"

	"vantage"
)

const (
	cores   = 8
	l2Lines = 16384
)

func main() {
	apps := []vantage.App{
		vantage.NewScanApp(vantage.Fitting, 4500, 2, 2, 1),
		vantage.NewZipfApp(vantage.Friendly, 6000, 0.9, 3, 2, 2),
		vantage.NewZipfApp(vantage.Friendly, 5000, 0.8, 3, 2, 3),
		vantage.NewZipfApp(vantage.Insensitive, 150, 0.8, 8, 4, 4),
		vantage.NewZipfApp(vantage.Insensitive, 150, 0.8, 8, 4, 5),
		vantage.NewStreamApp(1<<22, 2, 2, 6),
		vantage.NewStreamApp(1<<22, 2, 2, 7),
		vantage.NewScanApp(vantage.Fitting, 3000, 2, 2, 8),
	}

	ctl := vantage.New(vantage.NewZCache(l2Lines, 4, 52, 99), vantage.Config{
		Partitions:    cores,
		UnmanagedFrac: 0.05,
		AMax:          0.5,
		Slack:         0.1,
	})
	policy := vantage.NewUCP(cores, 16, l2Lines, vantage.GranLines, 42)

	var lastTargets []int
	res := vantage.Simulate(vantage.SimConfig{
		Apps:               apps,
		L2:                 ctl,
		L1Lines:            256,
		L1Ways:             4,
		InstrLimit:         1_000_000,
		WarmupInstr:        500_000,
		Alloc:              policy,
		RepartitionCycles:  300_000,
		PartitionableLines: l2Lines * 95 / 100,
		OnRepartition: func(cycle uint64, targets, actual []int) {
			lastTargets = append([]int(nil), targets...)
		},
	})

	fmt.Printf("8-core CMP, %d-line shared L2, UCP repartitioning + Vantage (%d repartitions)\n\n",
		l2Lines, res.Repartitions)
	fmt.Println("core  app                        IPC    L2 MPKI   UCP lines   actual")
	for i, app := range apps {
		target := 0
		if lastTargets != nil {
			target = lastTargets[i]
		}
		fmt.Printf("%4d  %-24s %6.3f %9.1f %11d %8d\n",
			i, app.Name(), res.Cores[i].IPC, res.Cores[i].L2MPKI, target, ctl.Size(i))
	}
	fmt.Printf("\naggregate throughput: %.3f IPC\n", res.Throughput)

	um := ctl.UnmanagedSize()
	c := ctl.Counters()
	fmt.Printf("unmanaged region %d lines; forced managed evictions %.3f%%\n",
		um, 100*float64(c.ForcedManagedEvictions)/float64(c.Evictions+1))
}
