// Pinning: implement software-controlled line pinning (local stores /
// scratchpad semantics, §1 of the paper) with a dedicated Vantage partition.
//
// A critical dataset — say, a routing table or a real-time code's state —
// is pinned by giving it its own partition whose target exceeds its size;
// the partition never demotes, so the lines are soft-pinned: they survive
// any amount of other traffic, yet the hardware stays a normal cache (no
// flushes, no address remapping, and unused pin capacity is lent out via
// the unmanaged region).
package main

import (
	"fmt"

	"vantage"
)

const (
	l2Lines  = 8192
	pinLines = 1024 // the dataset to pin
	pinPart  = 0
	appPart  = 1
)

func main() {
	// Pinning wants strong isolation: the paper's sizing rule (§4.3) says a
	// large unmanaged region makes forced evictions from the managed region
	// (the only way a pinned line can die) vanishingly rare:
	// Pev = (1-u)^52 ≈ 3e-7 at u = 25%.
	ctl := vantage.New(vantage.NewZCache(l2Lines, 4, 52, 3), vantage.Config{
		Partitions:    2,
		UnmanagedFrac: 0.25,
		AMax:          0.5,
		Slack:         0.1,
	})
	// Partition 0 holds the pinned dataset with headroom; partition 1 gets
	// the rest of the managed region.
	ctl.SetTargets([]int{pinLines + 64, l2Lines*3/4 - pinLines - 64})

	// Load the dataset once.
	for i := uint64(0); i < pinLines; i++ {
		ctl.Access(1<<40|i, pinPart)
	}
	loaded := ctl.Size(pinPart)

	// Hammer the cache with ten million streaming accesses from the app
	// partition — more than 100x the total cache capacity.
	stream := vantage.NewStreamApp(1<<24, 0, 1, 9)
	for i := 0; i < 10_000_000; i++ {
		_, a := stream.Next()
		ctl.Access(2<<40|a, appPart)
	}

	// Probe the pinned dataset: count how many lines survived.
	survived := 0
	for i := uint64(0); i < pinLines; i++ {
		if r := ctl.Access(1<<40|i, pinPart); r.Hit {
			survived++
		}
	}

	fmt.Printf("pinned dataset: %d lines loaded, %d survived 10M streaming accesses (%.2f%%)\n",
		loaded, survived, 100*float64(survived)/float64(pinLines))
	c := ctl.Counters()
	fmt.Printf("stream evictions handled: %d; forced managed evictions: %d (%.4f%%)\n",
		c.Evictions, c.ForcedManagedEvictions,
		100*float64(c.ForcedManagedEvictions)/float64(c.Evictions))
	fmt.Println()
	fmt.Println("Compare: the same probe on an unpartitioned LRU cache:")
	lru := vantage.NewUnpartitioned(vantage.NewZCache(l2Lines, 4, 52, 3), vantage.NewLRU(l2Lines), 2)
	for i := uint64(0); i < pinLines; i++ {
		lru.Access(1<<40|i, pinPart)
	}
	stream2 := vantage.NewStreamApp(1<<24, 0, 1, 9)
	for i := 0; i < 10_000_000; i++ {
		_, a := stream2.Next()
		lru.Access(2<<40|a, appPart)
	}
	survivedLRU := 0
	for i := uint64(0); i < pinLines; i++ {
		if r := lru.Access(1<<40|i, pinPart); r.Hit {
			survivedLRU++
		}
	}
	fmt.Printf("unpartitioned LRU: %d of %d pinned lines survived (%.2f%%)\n",
		survivedLRU, pinLines, 100*float64(survivedLRU)/float64(pinLines))
}
