// Quickstart: build a Vantage-partitioned zcache, give two tenants very
// different allocations, drive them with synthetic traffic, and watch the
// controller hold the partition sizes at their targets — at line
// granularity, something way-partitioning cannot do.
package main

import (
	"fmt"

	"vantage"
)

func main() {
	// A 2 MB cache (32768 64-byte lines) as a 4-way zcache with 52
	// replacement candidates — the paper's Z4/52 configuration.
	const lines = 32768
	arr := vantage.NewZCache(lines, 4, 52, 0xbeef)
	ctl := vantage.New(arr, vantage.Config{
		Partitions:    2,
		UnmanagedFrac: 0.05, // leave 5% unmanaged (§6.1 default)
		AMax:          0.5,
		Slack:         0.1,
	})

	// Fine-grain targets: 21,000 lines for tenant 0, 8,128 for tenant 1
	// (not way multiples — Vantage sizes at line granularity). The sum
	// leaves the unmanaged region its 5% plus headroom for the borrowing
	// the paper's §4.3 sizing rule accounts for.
	targets := []int{21000, 8128}
	ctl.SetTargets(targets)

	// Tenant 0 re-uses a 25k-line working set (slightly bigger than its
	// allocation, so the controller has to actively hold the boundary);
	// tenant 1 streams.
	app0 := vantage.NewZipfApp(vantage.Friendly, 25000, 0, 0, 1, 1)
	app1 := vantage.NewStreamApp(1<<22, 0, 1, 2)

	for i := 0; i < 3_000_000; i++ {
		_, a0 := app0.Next()
		ctl.Access(1<<40|a0, 0)
		_, a1 := app1.Next()
		ctl.Access(2<<40|a1, 1)
	}

	fmt.Println("partition  target  actual")
	for p := 0; p < 2; p++ {
		fmt.Printf("%9d %7d %7d\n", p, targets[p], ctl.Size(p))
	}
	c := ctl.Counters()
	fmt.Printf("\nhits=%d misses=%d demotions=%d promotions=%d\n",
		c.Hits, c.Misses, c.Demotions, c.Promotions)
	fmt.Printf("forced managed evictions: %d of %d evictions (%.4f%%)\n",
		c.ForcedManagedEvictions, c.Evictions,
		100*float64(c.ForcedManagedEvictions)/float64(c.Evictions))
	um := ctl.UnmanagedSize()
	fmt.Printf("unmanaged region: %d lines; analytic worst-case Pev at that size: %.2e\n",
		um, vantage.ForcedEvictionProb(float64(um)/lines, 52))

	// The hardware cost of all this, per the paper's Fig 4 accounting:
	fmt.Printf("\nstate overhead: %s\n", vantage.StateOverhead(lines, 2, 64, 64))
}
