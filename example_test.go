package vantage_test

import (
	"fmt"

	"vantage"
)

// ExampleNew shows the minimal Vantage setup: a Z4/52 zcache partitioned
// between two tenants at line granularity.
func ExampleNew() {
	arr := vantage.NewZCache(4096, 4, 52, 42)
	ctl := vantage.New(arr, vantage.Config{
		Partitions:    2,
		UnmanagedFrac: 0.05,
		AMax:          0.5,
		Slack:         0.1,
	})
	ctl.SetTargets([]int{2500, 1391})

	// Tenant 0 fills its partition.
	for i := uint64(0); i < 2500; i++ {
		ctl.Access(1<<40|i, 0)
	}
	fmt.Println("tenant 0 holds", ctl.Size(0), "lines of its 2500-line target")
	// Output:
	// tenant 0 holds 2500 lines of its 2500-line target
}

// ExampleLookahead runs UCP's allocation algorithm on two utility curves:
// one partition gains 100 hits per unit for 4 units, the other 10 per unit
// throughout.
func ExampleLookahead() {
	steep := []float64{0, 100, 200, 300, 400, 400, 400, 400, 400}
	gentle := []float64{0, 10, 20, 30, 40, 50, 60, 70, 80}
	alloc := vantage.Lookahead([][]float64{steep, gentle}, 8, 1)
	fmt.Println(alloc)
	// Output:
	// [4 4]
}

// ExampleFeedbackAperture evaluates Equation 7, the controller's linear
// transfer function from partition size to demotion aperture.
func ExampleFeedbackAperture() {
	fmt.Printf("%.2f %.2f %.2f\n",
		vantage.FeedbackAperture(1000, 1000, 0.4, 0.1), // at target: closed
		vantage.FeedbackAperture(1050, 1000, 0.4, 0.1), // half slack
		vantage.FeedbackAperture(1200, 1000, 0.4, 0.1)) // beyond slack: Amax
	// Output:
	// 0.00 0.20 0.40
}

// ExampleUnmanagedFraction sizes the unmanaged region per §4.3 for the
// paper's Z4/52 configuration.
func ExampleUnmanagedFraction() {
	u := vantage.UnmanagedFraction(1e-2, 0.4, 0.1, 52)
	fmt.Printf("u = %.1f%%\n", 100*u)
	// Output:
	// u = 13.8%
}

// ExampleStateOverhead reproduces the paper's Fig 4 state accounting for an
// 8 MB cache with 32 partitions.
func ExampleStateOverhead() {
	o := vantage.StateOverhead(131072, 32, 64, 64)
	fmt.Println(o.PartitionBitsPerTag, "tag bits per line,", o.RegisterBitsPerPart, "register bits per partition")
	// Output:
	// 6 tag bits per line, 256 register bits per partition
}

// ExampleSimulate runs a tiny two-core simulation with UCP driving a
// Vantage-partitioned L2.
func ExampleSimulate() {
	apps := []vantage.App{
		vantage.NewScanApp(vantage.Fitting, 600, 2, 1, 13),
		vantage.NewStreamApp(1<<20, 2, 1, 17),
	}
	ctl := vantage.New(vantage.NewZCache(1024, 4, 52, 21), vantage.Config{
		Partitions: 2, UnmanagedFrac: 0.05, AMax: 0.5, Slack: 0.1,
	})
	res := vantage.Simulate(vantage.SimConfig{
		Apps:               apps,
		L2:                 ctl,
		L1Lines:            64,
		L1Ways:             4,
		InstrLimit:         200_000,
		WarmupInstr:        100_000,
		Alloc:              vantage.NewUCP(2, 16, 1024, vantage.GranLines, 23),
		RepartitionCycles:  100_000,
		PartitionableLines: 972,
	})
	fmt.Println("scan app misses per kilo-instruction:", int(res.Cores[0].L2MPKI))
	// Output:
	// scan app misses per kilo-instruction: 0
}
