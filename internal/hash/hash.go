// Package hash implements the H3 family of universal hash functions used to
// index cache arrays, as proposed by Carter and Wegman and used by the
// Vantage paper (§5) for both set-associative and zcache arrays.
//
// An H3 hash treats the input as a vector of bits; each input bit selects a
// random word that is XORed into the output. The family is universal: for a
// random member, any two distinct keys collide with probability 2^-bits.
// Good hashing is a prerequisite for the analytical framework Vantage builds
// on, because it makes the replacement candidates seen by the controller
// close to independent and uniformly distributed.
package hash

import "math/bits"

// H3 is a single member of the H3 universal hash family mapping 64-bit keys
// to values in [0, 2^outBits).
//
// Because H3 is XOR-linear in the key bits, the 64 random rows can be
// precombined into eight 256-entry tables (one per key byte), turning the
// per-bit XOR loop into eight table lookups on the hot path. The function
// computed is bit-identical to the row-per-bit definition for any seed.
type H3 struct {
	t8   [8][256]uint64
	mask uint64
}

// NewH3 returns an H3 hash with outBits output bits, drawn deterministically
// from seed. outBits must be in [1, 64].
func NewH3(outBits int, seed uint64) *H3 {
	if outBits < 1 || outBits > 64 {
		panic("hash: outBits out of range")
	}
	h := &H3{}
	if outBits == 64 {
		h.mask = ^uint64(0)
	} else {
		h.mask = (uint64(1) << uint(outBits)) - 1
	}
	s := splitMix64(seed)
	var rows [64]uint64
	for i := range rows {
		rows[i] = s.next() & h.mask
	}
	// t8[b][v] = XOR of rows[8b+i] over the set bits i of v, built
	// incrementally from the next-smaller subset.
	for b := 0; b < 8; b++ {
		for v := 1; v < 256; v++ {
			h.t8[b][v] = h.t8[b][v&(v-1)] ^ rows[8*b+bits.TrailingZeros8(uint8(v))]
		}
	}
	return h
}

// Hash returns the hash of key.
func (h *H3) Hash(key uint64) uint64 {
	return h.t8[0][byte(key)] ^
		h.t8[1][byte(key>>8)] ^
		h.t8[2][byte(key>>16)] ^
		h.t8[3][byte(key>>24)] ^
		h.t8[4][byte(key>>32)] ^
		h.t8[5][byte(key>>40)] ^
		h.t8[6][byte(key>>48)] ^
		h.t8[7][byte(key>>56)]
}

// Mask returns the output mask (2^outBits - 1).
func (h *H3) Mask() uint64 { return h.mask }

// splitMix64 is a tiny, high-quality PRNG used only to seed hash tables and
// other deterministic structures. It is the SplitMix64 generator.
type splitMix64 uint64

func (s *splitMix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 returns a well-mixed 64-bit value derived from x. It is the SplitMix64
// finalizer and is used wherever a cheap stateless mixing function is needed
// (e.g. deriving per-way seeds).
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Rand is a small deterministic PRNG (xorshift*) for simulation use. The
// standard library's math/rand would work too, but a local implementation
// keeps streams reproducible across Go versions and avoids global state.
type Rand struct {
	state uint64
}

// NewRand returns a PRNG seeded with seed (a zero seed is remapped).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x853c49e6748fea9b
	}
	return &Rand{state: seed}
}

// Uint64 returns the next pseudo-random 64-bit value.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("hash: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// LCG is the fast-tier PRNG: a 64-bit linear-congruential generator (Knuth's
// MMIX multiplier) with a single xorshift on output. One multiply-add per
// draw versus Rand's three shift-xor pairs plus a multiply. Its streams are
// NOT interchangeable with Rand's — the fast simulation tier uses it where
// only the statistics of the stream matter, never on the bit-exact path. The
// output xorshift folds the strong high half of the state into the weak low
// half, since consumers use both (alias-table draws split one output into a
// bucket index and an acceptance coin).
type LCG struct {
	state uint64
}

// NewLCG returns a fast-tier PRNG seeded with seed. Seeds are premixed so
// that related seeds (e.g. seed^const derivations) start decorrelated.
func NewLCG(seed uint64) *LCG {
	return &LCG{state: Mix64(seed)}
}

// Uint64 returns the next pseudo-random 64-bit value.
func (g *LCG) Uint64() uint64 {
	g.state = g.state*6364136223846793005 + 1442695040888963407
	x := g.state
	return x ^ x>>32
}
