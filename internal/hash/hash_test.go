package hash

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewH3PanicsOnBadBits(t *testing.T) {
	for _, bad := range []int{0, -1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewH3(%d) did not panic", bad)
				}
			}()
			NewH3(bad, 1)
		}()
	}
}

func TestH3OutputRange(t *testing.T) {
	for _, bitsN := range []int{1, 3, 8, 12, 16, 32, 64} {
		h := NewH3(bitsN, 42)
		for k := uint64(0); k < 1000; k++ {
			v := h.Hash(k * 0x9e3779b97f4a7c15)
			if v&^h.Mask() != 0 {
				t.Fatalf("bits=%d: hash %#x exceeds mask %#x", bitsN, v, h.Mask())
			}
		}
	}
}

func TestH3ZeroKeyHashesToZero(t *testing.T) {
	// H3 is a linear (XOR) function of the key bits, so the zero key always
	// maps to zero. This is a known property of the family, documented here.
	h := NewH3(16, 7)
	if got := h.Hash(0); got != 0 {
		t.Fatalf("Hash(0) = %#x, want 0", got)
	}
}

func TestH3Deterministic(t *testing.T) {
	a := NewH3(16, 99)
	b := NewH3(16, 99)
	for k := uint64(1); k < 500; k++ {
		if a.Hash(k) != b.Hash(k) {
			t.Fatalf("same-seed hashes differ at key %d", k)
		}
	}
}

func TestH3SeedsDiffer(t *testing.T) {
	a := NewH3(16, 1)
	b := NewH3(16, 2)
	same := 0
	const n = 4096
	for k := uint64(1); k <= n; k++ {
		if a.Hash(k) == b.Hash(k) {
			same++
		}
	}
	// Expected collisions between two independent 16-bit hashes: n/65536 ≈ 0.06.
	if same > 16 {
		t.Fatalf("different-seed hashes agree on %d/%d keys", same, n)
	}
}

func TestH3Linearity(t *testing.T) {
	// H3 is XOR-linear: H(a^b) == H(a)^H(b). Property-based check.
	h := NewH3(32, 12345)
	f := func(a, b uint64) bool {
		return h.Hash(a^b) == h.Hash(a)^h.Hash(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestH3ByteTablesMatchBitwiseReference(t *testing.T) {
	// The precombined byte tables must compute exactly the textbook H3:
	// XOR of one random row per set key bit. The rows are recoverable from
	// the tables as t8[b][1<<i].
	h := NewH3(32, 777)
	var rows [64]uint64
	for b := 0; b < 8; b++ {
		for i := 0; i < 8; i++ {
			rows[8*b+i] = h.t8[b][1<<i]
		}
	}
	ref := func(key uint64) uint64 {
		var out uint64
		for i := 0; i < 64; i++ {
			if key&(1<<uint(i)) != 0 {
				out ^= rows[i]
			}
		}
		return out
	}
	for k := uint64(0); k < 5000; k++ {
		key := Mix64(k)
		if h.Hash(key) != ref(key) {
			t.Fatalf("byte-table hash diverges from reference at key %#x", key)
		}
	}
}

func TestH3Uniformity(t *testing.T) {
	// Hash sequential keys into 64 buckets; a chi-squared statistic far above
	// the df=63 expectation indicates a broken table.
	h := NewH3(6, 2024)
	const n = 64 * 1024
	var buckets [64]int
	for k := uint64(0); k < n; k++ {
		buckets[h.Hash(k+1)]++
	}
	expected := float64(n) / 64
	chi2 := 0.0
	for _, c := range buckets {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// df=63; mean 63, stddev ~11.2. 150 is ~7.7 sigma.
	if chi2 > 150 {
		t.Fatalf("chi-squared %v too high for uniform hashing", chi2)
	}
}

func TestMix64AvalancheNonTrivial(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	for b := 0; b < 64; b++ {
		x := uint64(0x12345678abcdef)
		d := Mix64(x) ^ Mix64(x^(1<<uint(b)))
		pop := popcount(d)
		if pop < 10 || pop > 54 {
			t.Fatalf("bit %d: avalanche popcount %d outside [10,54]", b, pop)
		}
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(11)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestRandIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestRandZeroSeedRemapped(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero-seeded Rand is stuck at zero")
	}
}

func TestRandMeanApproximatelyHalf(t *testing.T) {
	r := NewRand(99)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean %v far from 0.5", mean)
	}
}
