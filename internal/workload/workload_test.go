package workload

import (
	"math"
	"testing"

	"vantage/internal/hash"
)

func TestCategoryCodes(t *testing.T) {
	if Insensitive.Letter() != 'n' || Friendly.Letter() != 'f' ||
		Fitting.Letter() != 't' || Thrashing.Letter() != 's' {
		t.Fatal("letters wrong")
	}
	if Category(9).Letter() != '?' || Category(9).String() != "unknown" {
		t.Fatal("unknown category handling")
	}
	for c := Insensitive; c <= Thrashing; c++ {
		if c.String() == "unknown" {
			t.Fatalf("category %d has no name", c)
		}
	}
}

func TestZipfAppDeterministic(t *testing.T) {
	a := NewZipfApp(Friendly, 1000, 0.9, 3, 2, 42)
	b := NewZipfApp(Friendly, 1000, 0.9, 3, 2, 42)
	for i := 0; i < 1000; i++ {
		g1, a1 := a.Next()
		g2, a2 := b.Next()
		if g1 != g2 || a1 != a2 {
			t.Fatalf("same-seed apps diverge at step %d", i)
		}
	}
}

func TestZipfAppSkew(t *testing.T) {
	a := NewZipfApp(Friendly, 10000, 1.0, 0, 1, 7)
	counts := map[uint64]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		_, addr := a.Next()
		counts[addr]++
	}
	// With alpha=1 over 10000 lines, the hottest line gets ~1/(H_10000) ≈
	// 10% of accesses; the top line must be far above uniform (20/200000).
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < n/50 {
		t.Fatalf("zipf not skewed: hottest line only %d/%d", max, n)
	}
	// And the tail must still be broad.
	if len(counts) < 2000 {
		t.Fatalf("zipf touched only %d distinct lines", len(counts))
	}
}

func TestZipfAddressesInRange(t *testing.T) {
	a := NewZipfApp(Friendly, 500, 0.8, 2, 3, 9)
	for i := 0; i < 10000; i++ {
		_, addr := a.Next()
		if addr == 0 || addr > 500 {
			t.Fatalf("address %d out of range (0,500]", addr)
		}
	}
}

func TestZipfPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewZipfApp(Friendly, 0, 1, 1, 1, 1) },
		func() { NewZipfApp(Friendly, 10, -1, 1, 1, 1) },
		func() { NewZipfApp(Friendly, 10, 1, 1, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad zipf params did not panic")
				}
			}()
			f()
		}()
	}
}

func TestScanAppCyclic(t *testing.T) {
	a := NewScanApp(Fitting, 100, 0, 1, 21)
	seen := map[uint64]int{}
	for i := 0; i < 300; i++ {
		_, addr := a.Next()
		seen[addr]++
	}
	if len(seen) != 100 {
		t.Fatalf("scan covered %d lines, want 100", len(seen))
	}
	for addr, c := range seen {
		if c != 3 {
			t.Fatalf("line %d visited %d times, want 3", addr, c)
		}
	}
}

func TestScanAppBurst(t *testing.T) {
	a := NewScanApp(Fitting, 50, 0, 4, 22)
	_, first := a.Next()
	same := 1
	for i := 0; i < 3; i++ {
		_, addr := a.Next()
		if addr == first {
			same++
		}
	}
	if same != 4 {
		t.Fatalf("burst of 4 produced %d consecutive repeats", same)
	}
}

func TestStreamAppSequential(t *testing.T) {
	a := NewStreamApp(1000000, 0, 1, 3)
	_, prev := a.Next()
	for i := 0; i < 1000; i++ {
		_, addr := a.Next()
		if addr != prev+1 {
			t.Fatalf("stream not sequential: %d -> %d", prev, addr)
		}
		prev = addr
	}
}

func TestGapMean(t *testing.T) {
	a := NewZipfApp(Friendly, 100, 0.8, 5, 1, 11)
	sum, n := 0, 20000
	for i := 0; i < n; i++ {
		g, _ := a.Next()
		if g < 0 {
			t.Fatalf("negative gap %d", g)
		}
		sum += g
	}
	mean := float64(sum) / float64(n)
	if mean < 4 || mean > 6 {
		t.Fatalf("gap mean %.2f, want ~5", mean)
	}
}

func TestPhasedAppAlternates(t *testing.T) {
	a := NewScanApp(Fitting, 10, 0, 1, 23)
	b := NewStreamApp(1000000, 0, 1, 5)
	p := NewPhasedApp(a, b, 100)
	if p.Category() != Fitting {
		t.Fatal("phased category should follow first app")
	}
	small, big := 0, 0
	for i := 0; i < 400; i++ {
		_, addr := p.Next()
		if addr <= 10 {
			small++
		} else {
			big++
		}
	}
	if small == 0 || big == 0 {
		t.Fatalf("phases did not alternate: %d small, %d big", small, big)
	}
}

func TestClasses(t *testing.T) {
	cs := Classes()
	if len(cs) != 35 {
		t.Fatalf("got %d classes, want 35 (combinations with repetition)", len(cs))
	}
	seen := map[string]bool{}
	for _, c := range cs {
		s := c.String()
		if seen[s] {
			t.Fatalf("duplicate class %s", s)
		}
		seen[s] = true
	}
	if !seen["nnnn"] || !seen["ssss"] || !seen["nfts"] {
		t.Fatal("expected canonical classes missing")
	}
}

func TestNewAppCategories(t *testing.T) {
	rng := hash.NewRand(3)
	p := Params{CacheLines: 4096}
	for cat := Insensitive; cat <= Thrashing; cat++ {
		app := NewApp(cat, p, rng)
		if app.Category() != cat {
			t.Fatalf("app of category %v reports %v", cat, app.Category())
		}
		if app.Name() == "" {
			t.Fatal("empty app name")
		}
		for i := 0; i < 100; i++ {
			app.Next()
		}
	}
}

func TestMixNaming(t *testing.T) {
	m := NewMix(Class{Thrashing, Friendly, Fitting, Insensitive}, 1, 1, Params{CacheLines: 1024}, 5)
	if m.ID != "sftn1" {
		t.Fatalf("mix ID = %q, want sftn1", m.ID)
	}
	if len(m.Apps) != 4 {
		t.Fatalf("mix has %d apps", len(m.Apps))
	}
}

func TestMixesFourCore(t *testing.T) {
	ms := Mixes(4, 10, Params{CacheLines: 1024}, 7)
	if len(ms) != 350 {
		t.Fatalf("got %d mixes, want 350", len(ms))
	}
	for _, m := range ms {
		if len(m.Apps) != 4 {
			t.Fatalf("mix %s has %d apps", m.ID, len(m.Apps))
		}
	}
}

func TestMixesThirtyTwoCore(t *testing.T) {
	ms := Mixes(32, 2, Params{CacheLines: 4096}, 7)
	if len(ms) != 70 {
		t.Fatalf("got %d mixes, want 70", len(ms))
	}
	for _, m := range ms {
		if len(m.Apps) != 32 {
			t.Fatalf("mix %s has %d apps", m.ID, len(m.Apps))
		}
	}
}

func TestMixesDeterministic(t *testing.T) {
	a := Mixes(4, 1, Params{CacheLines: 512}, 9)
	b := Mixes(4, 1, Params{CacheLines: 512}, 9)
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatal("mix IDs differ across runs")
		}
		for j := range a[i].Apps {
			if a[i].Apps[j].Name() != b[i].Apps[j].Name() {
				t.Fatalf("mix %s app %d differs: %s vs %s",
					a[i].ID, j, a[i].Apps[j].Name(), b[i].Apps[j].Name())
			}
		}
	}
}

func TestMixesPanicsOnBadCores(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("cores=6 did not panic")
		}
	}()
	Mixes(6, 1, Params{CacheLines: 512}, 1)
}

func TestPhasedFraction(t *testing.T) {
	rng := hash.NewRand(7)
	p := Params{CacheLines: 4096, PhasedFraction: 1.0}
	app := NewApp(Fitting, p, rng)
	if _, ok := app.(*PhasedApp); !ok {
		t.Fatalf("PhasedFraction=1 produced %T", app)
	}
	p.PhasedFraction = 0
	app = NewApp(Fitting, p, rng)
	if _, ok := app.(*ScanApp); !ok {
		t.Fatalf("PhasedFraction=0 produced %T", app)
	}
}

// TestZipfRankMatchesFullSearch pins the guide-table search to the plain
// full-range lower bound: the rank an u resolves to must be identical, for
// random draws and for draws sitting exactly on (and one ulp around) every
// CDF boundary, across skews and working-set sizes.
func TestZipfRankMatchesFullSearch(t *testing.T) {
	fullSearch := func(a *ZipfApp, u float64) int {
		lo, hi := 0, len(a.cdf)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if a.cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	for _, tc := range []struct {
		lines int
		alpha float64
	}{{17, 0}, {100, 0.5}, {1000, 0.9}, {4096, 1.2}} {
		a := NewZipfApp(Friendly, tc.lines, tc.alpha, 3, 1, 7)
		check := func(u float64) {
			t.Helper()
			if u < 0 || u >= 1 {
				return
			}
			if got, want := a.rank(u), fullSearch(a, u); got != want {
				t.Fatalf("lines=%d alpha=%g u=%v: rank %d, full search %d",
					tc.lines, tc.alpha, u, got, want)
			}
		}
		rng := hash.NewRand(99)
		for i := 0; i < 20000; i++ {
			check(rng.Float64())
		}
		for _, c := range a.cdf {
			check(c)
			check(math.Nextafter(c, 0))
			check(math.Nextafter(c, 2))
		}
		// Bucket boundaries k/K, where the int(u*scale) nudge matters.
		scale := float64(len(a.guide) - 1)
		for k := 0; k < len(a.guide)-1; k++ {
			b := float64(k) / scale
			check(b)
			check(math.Nextafter(b, 0))
			check(math.Nextafter(b, 2))
		}
	}
}
