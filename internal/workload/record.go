package workload

import (
	"math"
	"sync"
	"sync/atomic"
)

// chunkRefs is the number of references per recorded chunk. 16Ki references
// pack into 128KiB — large enough to amortize extension locking, small
// enough that short streams don't over-allocate.
const chunkRefs = 1 << 14

// References are recorded packed, one uint64 per reference (gap in the high
// 32 bits, line address in the low 32), halving replay memory traffic vs.
// separate gap/addr arrays. Line addresses from the generators are working-
// set indices (the simulator itself assumes addresses fit in 40 bits before
// core tagging), so 32 bits is not a practical restriction; packRefs panics
// loudly if an app violates it.

// UnpackRef splits a packed reference into its instruction gap and line
// address.
func UnpackRef(v uint64) (gap int, addr uint64) {
	return int(v >> 32), v & (1<<32 - 1)
}

func packRefs(dst []uint64, gaps []int32, addrs []uint64) {
	for i, g := range gaps {
		a := addrs[i]
		if g < 0 || a > math.MaxUint32 {
			panic("workload: reference does not fit packed form (need gap >= 0, addr < 2^32)")
		}
		dst[i] = uint64(g)<<32 | a
	}
}

// PackedApp is implemented by apps that can hand out their upcoming
// references as packed slices (see UnpackRef), advancing past them. It is
// the zero-copy replay fast path: the simulator reads recorded chunks in
// place, with no per-reference interface call. An empty return means the
// app cannot serve packed reads (any longer) and the caller must fall back
// to Next; returned slices are immutable and remain valid indefinitely.
type PackedApp interface {
	App
	NextPacked() []uint64
}

// Recording memoizes one app's reference stream. An App's output is a pure
// function of its construction seed (Next has no feedback from the cache),
// so the stream can be generated once and replayed by every scheme that
// simulates the same mix. Chunks are generated lazily as readers advance,
// up to a configurable budget; readers that outrun the budget fall through
// to live generation transparently (see ReplayApp).
//
// A Recording is safe for concurrent readers: published chunks are immutable,
// the chunk table is fixed-capacity (never reallocated), and the filled
// count is published with an atomic store after the chunk contents are
// written, so a reader that observes filled > i may read chunk i without
// locking.
type Recording struct {
	name string
	cat  Category

	// remake rebuilds the source app from scratch (positioned at reference
	// zero). It is used by readers that outrun the budget after the original
	// source has been claimed by an earlier reader.
	remake func() App

	mu     sync.Mutex   // guards extension: src, scratch, window state, unfilled table entries
	src    App          // live source at reference filled*chunkRefs; nil once claimed
	filled atomic.Int32 // published chunk count

	chunks [][]uint64

	// Windowed-release state (ReplaySet): cursorPos[i] is set cursor i's
	// next-chunk index; table entries below min(cursorPos) are dropped so
	// the resident window tracks the spread between the slowest and fastest
	// reader instead of the whole stream. A cursor that falls through to
	// live generation parks its position at maxInt so it stops holding the
	// window back.
	cursorPos []int
	released  int

	// scratch buffers for batched generation during extension (reused
	// across chunks; guarded by mu).
	scratchGaps  []int32
	scratchAddrs []uint64
}

// NewRecording wraps src in a recording with room for at most budgetRefs
// recorded references (rounded up to whole chunks; budgetRefs <= 0 records
// nothing and every replay generates live). remake must rebuild an app
// identical to src at reference zero; it must not be nil.
func NewRecording(src App, remake func() App, budgetRefs int) *Recording {
	if remake == nil {
		panic("workload: NewRecording requires a remake factory")
	}
	maxChunks := 0
	if budgetRefs > 0 {
		maxChunks = (budgetRefs + chunkRefs - 1) / chunkRefs
	}
	return &Recording{
		name:   src.Name(),
		cat:    src.Category(),
		remake: remake,
		src:    src,
		chunks: make([][]uint64, maxChunks),
	}
}

// Name returns the recorded app's name.
func (rec *Recording) Name() string { return rec.name }

// Category returns the recorded app's Table 3 class.
func (rec *Recording) Category() Category { return rec.cat }

// Replay returns a fresh cursor over the stream, starting at reference zero.
// Cursors are independent; any number may read concurrently.
func (rec *Recording) Replay() *ReplayApp {
	return &ReplayApp{rec: rec, setIdx: -1}
}

// ReplaySet returns n cursors and switches the recording to windowed
// release: a chunk's table entry is dropped once every cursor of the set has
// moved past it, so memory tracks the reader spread rather than the stream
// length (a straggler's in-flight chunk view stays alive through its own
// slice reference). All cursors must come from one ReplaySet call, made
// before any reading; Replay cursors handed out earlier would race the
// release and panic on a dropped chunk.
func (rec *Recording) ReplaySet(n int) []*ReplayApp {
	if n <= 0 {
		panic("workload: ReplaySet needs at least one cursor")
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.cursorPos != nil {
		panic("workload: ReplaySet called twice on one recording")
	}
	rec.cursorPos = make([]int, n)
	out := make([]*ReplayApp, n)
	for i := range out {
		out[i] = &ReplayApp{rec: rec, setIdx: i}
	}
	return out
}

// releaseLocked drops chunk table entries every set cursor has passed.
// Callers hold rec.mu.
func (rec *Recording) releaseLocked() {
	lo := rec.cursorPos[0]
	for _, p := range rec.cursorPos[1:] {
		if p < lo {
			lo = p
		}
	}
	if lo > int(rec.filled.Load()) {
		lo = int(rec.filled.Load())
	}
	for ; rec.released < lo; rec.released++ {
		rec.chunks[rec.released] = nil
	}
}

// extendLocked generates one more chunk from the live source and publishes
// it. It returns false when the budget is exhausted or the source has been
// claimed by a fallen-through reader. Callers hold rec.mu.
func (rec *Recording) extendLocked() bool {
	n := int(rec.filled.Load())
	if n == len(rec.chunks) || rec.src == nil {
		return false
	}
	if rec.scratchGaps == nil {
		rec.scratchGaps = make([]int32, chunkRefs)
		rec.scratchAddrs = make([]uint64, chunkRefs)
	}
	fillRefs(rec.src, rec.scratchGaps, rec.scratchAddrs)
	chunk := make([]uint64, chunkRefs)
	packRefs(chunk, rec.scratchGaps, rec.scratchAddrs)
	rec.chunks[n] = chunk
	rec.filled.Store(int32(n + 1)) // publishes the chunk to lock-free readers
	return true
}

// claimLocked hands the caller a live App positioned exactly at reference
// pos. The first reader past the recorded prefix takes the recording's own
// source for free — extension only ever stops at filled*chunkRefs, which is
// exactly where src sits. Later readers rebuild from the factory and
// fast-forward. Callers hold rec.mu.
func (rec *Recording) claimLocked(pos int) App {
	if rec.src != nil && pos == int(rec.filled.Load())*chunkRefs {
		src := rec.src
		rec.src = nil
		return src
	}
	return rec.replayTo(pos)
}

// replayTo rebuilds the stream from scratch and discards the first pos
// references, returning a live App positioned at pos.
func (rec *Recording) replayTo(pos int) App {
	app := rec.remake()
	if pos > 0 {
		n := min(pos, chunkRefs)
		gaps := make([]int32, n)
		addrs := make([]uint64, n)
		for pos > 0 {
			n = min(pos, chunkRefs)
			fillRefs(app, gaps[:n], addrs[:n])
			pos -= n
		}
	}
	return app
}

// ReplayApp is a read cursor over a Recording. It satisfies App (and
// BatchApp and PackedApp), so simulators consume it exactly like a live
// generator. The fast path of Next is one indexed load plus an unpack;
// chunk boundaries, lazy extension, and budget fall-through all live in
// advance.
type ReplayApp struct {
	rec    *Recording
	setIdx int // index into rec.cursorPos, or -1 outside a ReplaySet
	next   int // index of the next chunk to load
	off    int // read offset into the current chunk
	refs   []uint64
	live   App // non-nil once this cursor has outrun the budget
}

// Name implements App.
func (r *ReplayApp) Name() string { return r.rec.name }

// Category implements App.
func (r *ReplayApp) Category() Category { return r.rec.cat }

// Next implements App.
func (r *ReplayApp) Next() (int, uint64) {
	for {
		if r.off < len(r.refs) {
			v := r.refs[r.off]
			r.off++
			return UnpackRef(v)
		}
		if r.live != nil {
			return r.live.Next()
		}
		r.advance()
	}
}

// NextPacked implements PackedApp: it returns the unread remainder of the
// current chunk (extending the recording as needed) and advances past it.
// Once the cursor has fallen through to live generation it returns nil and
// the caller must use Next.
func (r *ReplayApp) NextPacked() []uint64 {
	for {
		if r.off < len(r.refs) {
			out := r.refs[r.off:]
			r.off = len(r.refs)
			return out
		}
		if r.live != nil {
			return nil
		}
		r.advance()
	}
}

// NextBatch implements BatchApp by unpacking from recorded chunks.
func (r *ReplayApp) NextBatch(gaps []int32, addrs []uint64) {
	if len(gaps) != len(addrs) {
		panic("workload: NextBatch buffer lengths differ")
	}
	for len(gaps) > 0 {
		if r.off < len(r.refs) {
			n := min(len(gaps), len(r.refs)-r.off)
			for i, v := range r.refs[r.off : r.off+n] {
				gaps[i] = int32(v >> 32)
				addrs[i] = v & (1<<32 - 1)
			}
			r.off += n
			gaps, addrs = gaps[n:], addrs[n:]
			continue
		}
		if r.live != nil {
			fillRefs(r.live, gaps, addrs)
			return
		}
		r.advance()
	}
}

// advance moves the cursor to the next chunk, extending the recording if
// needed. When the budget is exhausted it switches the cursor to live
// generation instead; the stale chunk slice is left in place with
// off == len so Next, NextPacked and NextBatch route around it. Set cursors
// (setIdx >= 0) take the lock on every chunk transition — once per 16Ki
// references — to publish their position and run windowed release;
// standalone cursors keep the lock-free published-chunk fast path.
func (r *ReplayApp) advance() {
	rec := r.rec
	if r.setIdx < 0 && int(rec.filled.Load()) > r.next {
		r.refs = rec.chunks[r.next]
		if r.refs == nil {
			panic("workload: replay cursor read a released chunk (cursor not part of the ReplaySet?)")
		}
		r.next++
		r.off = 0
		return
	}
	rec.mu.Lock()
	for int(rec.filled.Load()) <= r.next {
		if !rec.extendLocked() {
			// This cursor sits at the end of the recorded prefix
			// (it consumed chunks 0..next-1 fully and extension
			// stopped at filled == next).
			r.live = rec.claimLocked(r.next * chunkRefs)
			if r.setIdx >= 0 {
				// Stop holding the release window back.
				rec.cursorPos[r.setIdx] = int(^uint(0) >> 1)
				rec.releaseLocked()
			}
			rec.mu.Unlock()
			return
		}
	}
	r.refs = rec.chunks[r.next]
	if r.refs == nil {
		panic("workload: replay cursor read a released chunk (cursor not part of the ReplaySet?)")
	}
	r.next++
	r.off = 0
	if r.setIdx >= 0 {
		rec.cursorPos[r.setIdx] = r.next
		rec.releaseLocked()
	}
	rec.mu.Unlock()
}

// MixRecording memoizes every app stream of one mix so that the baseline run
// and all partitioning schemes replay identical references.
type MixRecording struct {
	ID    string
	Class Class
	Recs  []*Recording
}

// NewMixRecording records mix. remake(i) must rebuild app i of an identical
// mix at reference zero. budgetRefs bounds the recorded prefix per app.
func NewMixRecording(mix Mix, remake func(i int) App, budgetRefs int) *MixRecording {
	recs := make([]*Recording, len(mix.Apps))
	for i, app := range mix.Apps {
		recs[i] = NewRecording(app, func() App { return remake(i) }, budgetRefs)
	}
	return &MixRecording{ID: mix.ID, Class: mix.Class, Recs: recs}
}

// Replay returns a Mix whose apps replay the recorded streams from the
// beginning. Each call yields independent cursors, so concurrent scheme runs
// can share one recording.
func (mr *MixRecording) Replay() Mix {
	apps := make([]App, len(mr.Recs))
	for i, rec := range mr.Recs {
		apps[i] = rec.Replay()
	}
	return Mix{ID: mr.ID, Class: mr.Class, Apps: apps}
}

// ReplayAll returns n replayed mixes whose cursors form a ReplaySet per
// app: chunks are dropped as soon as all n readers have consumed them, so
// n concurrent scheme runs share each generated chunk while it is still
// cache-hot and resident memory tracks the spread between the slowest and
// fastest run instead of the full stream length. Call once per recording,
// before any reading.
func (mr *MixRecording) ReplayAll(n int) []Mix {
	sets := make([][]*ReplayApp, len(mr.Recs))
	for i, rec := range mr.Recs {
		sets[i] = rec.ReplaySet(n)
	}
	out := make([]Mix, n)
	for r := range out {
		apps := make([]App, len(mr.Recs))
		for i := range mr.Recs {
			apps[i] = sets[i][r]
		}
		out[r] = Mix{ID: mr.ID, Class: mr.Class, Apps: apps}
	}
	return out
}
