package workload

import (
	"fmt"

	"vantage/internal/hash"
)

// Class is a multiset of four categories, identifying one of the paper's 35
// workload classes (combinations with repetition of the 4 categories taken
// 4 at a time). The paper names classes by their letters, e.g. "sftn" or
// "ffnn".
type Class [4]Category

// String returns the paper-style class code, e.g. "sftn".
func (c Class) String() string {
	b := make([]byte, 4)
	for i, cat := range c {
		b[i] = cat.Letter()
	}
	return string(b)
}

// Classes enumerates all 35 category multisets in a deterministic order.
func Classes() []Class {
	var out []Class
	for a := Insensitive; a <= Thrashing; a++ {
		for b := a; b <= Thrashing; b++ {
			for c := b; c <= Thrashing; c++ {
				for d := c; d <= Thrashing; d++ {
					out = append(out, Class{a, b, c, d})
				}
			}
		}
	}
	return out
}

// Params scales workload parameters to a simulated cache capacity. All
// working-set sizes derive from CacheLines so the same mix definitions run
// at unit-test scale or paper scale.
type Params struct {
	// CacheLines is the shared L2 capacity in lines the mix targets.
	CacheLines int
	// PhasedFraction, in [0,1], is the probability that a cache-fitting app
	// is generated with two alternating working-set phases, exercising
	// repartitioning transients (§3.4, Fig 8). Zero (the default, used by
	// the recorded experiments) keeps all apps stationary.
	PhasedFraction float64
	// Fast selects the fast generator tier: Zipf ranks and geometric gaps
	// come from alias tables fed by a cheaper PRNG instead of the exact
	// tier's inverse-CDF transforms (see fast.go). Mix composition and every
	// per-app parameter are identical between tiers — only the reference
	// streams' draw sequences differ, and those follow the same
	// distributions. Fast-tier results are statistically interchangeable
	// with exact-tier ones but NOT bit-identical; never use for goldens.
	Fast bool
}

// randIn returns a pseudo-random int in [lo, hi].
func randIn(rng *hash.Rand, lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + rng.Intn(hi-lo+1)
}

// NewApp instantiates a random application of category cat, with parameters
// drawn from the category's range, deterministically from rng. The draws
// from rng are identical whether or not p.Fast is set, so both tiers build
// structurally identical mixes; Fast only swaps the constructed app's
// samplers (fast-tier seeds are pure functions of the exact-tier seed).
func NewApp(cat Category, p Params, rng *hash.Rand) App {
	app, seed := newApp(cat, p, rng)
	if p.Fast {
		enableFastApp(app, seed)
	}
	return app
}

func newApp(cat Category, p Params, rng *hash.Rand) (App, uint64) {
	L := p.CacheLines
	if L < 64 {
		L = 64
	}
	seed := rng.Uint64()
	switch cat {
	case Insensitive:
		// Tiny working set, sparse memory accesses: under 5 MPKI at any
		// allocation.
		ws := randIn(rng, L/64, L/16)
		if ws < 8 {
			ws = 8
		}
		alpha := 0.6 + 0.4*rng.Float64()
		return NewZipfApp(Insensitive, ws, alpha, 8, 4, seed), seed
	case Friendly:
		// Zipf reuse over 1-3x the cache with a mild exponent: utility is
		// spread across the whole allocation range, the gradually-decreasing
		// miss curve of the paper's cache-friendly class (strong exponents
		// would concentrate all utility in a sliver the size of a way, which
		// matches SPEC's friendly apps poorly and defeats way-granular
		// utility monitoring).
		ws := randIn(rng, L, 3*L)
		alpha := 0.3 + 0.4*rng.Float64()
		return NewZipfApp(Friendly, ws, alpha, 3, 2, seed), seed
	case Fitting:
		// Cyclic scan with a working set around cache capacity: a miss
		// cliff once the allocation covers it (classified "over 1MB" of the
		// 2MB cache in the paper, i.e. roughly half the cache and up).
		ws := randIn(rng, L*4/10, L*12/10)
		if ws < 16 {
			ws = 16
		}
		if p.PhasedFraction > 0 && rng.Float64() < p.PhasedFraction {
			// Two alternating working sets force UCP to re-size the
			// partition repeatedly.
			ws2 := randIn(rng, L/8, L*4/10)
			if ws2 < 16 {
				ws2 = 16
			}
			phase := randIn(rng, 20*ws, 60*ws)
			return NewPhasedApp(
				NewScanApp(Fitting, ws, 3, 4, seed),
				NewScanApp(Fitting, ws2, 3, 4, seed^0x9e),
				phase), seed
		}
		return NewScanApp(Fitting, ws, 3, 4, seed), seed
	case Thrashing:
		// Stream over a region far larger than the cache.
		region := randIn(rng, 32*L, 128*L)
		return NewStreamApp(region, 2, 2, seed), seed
	}
	panic("workload: unknown category")
}

// Mix is one multiprogrammed workload: an App per core plus bookkeeping.
type Mix struct {
	// ID is "<class><index>", e.g. "sftn1", following the paper's naming.
	ID    string
	Class Class
	Apps  []App
}

// NewMix builds mix number idx (0-based) of a class: appsPerSlot apps per
// class slot (1 for the 4-core config, 8 for the 32-core config), with
// random per-app parameters drawn deterministically from seed.
func NewMix(class Class, idx, appsPerSlot int, p Params, seed uint64) Mix {
	rng := hash.NewRand(hash.Mix64(seed ^ uint64(idx)<<32 ^ classKey(class)))
	m := Mix{
		ID:    fmt.Sprintf("%s%d", class, idx),
		Class: class,
	}
	for _, cat := range class {
		for k := 0; k < appsPerSlot; k++ {
			m.Apps = append(m.Apps, NewApp(cat, p, rng))
		}
	}
	return m
}

func classKey(c Class) uint64 {
	var k uint64
	for _, cat := range c {
		k = k*7 + uint64(cat)
	}
	return k
}

// ParseMixID parses a paper-style mix ID like "sftn1" into its canonical
// class (letters sorted in category order, e.g. "nfts") and mix index. The
// paper writes class letters in arbitrary order; canonicalization lets both
// spellings name the same mix.
func ParseMixID(id string) (Class, int, error) {
	if len(id) < 5 {
		return Class{}, 0, fmt.Errorf("workload: mix id %q too short", id)
	}
	var cats []Category
	for i := 0; i < 4; i++ {
		switch id[i] {
		case 'n':
			cats = append(cats, Insensitive)
		case 'f':
			cats = append(cats, Friendly)
		case 't':
			cats = append(cats, Fitting)
		case 's':
			cats = append(cats, Thrashing)
		default:
			return Class{}, 0, fmt.Errorf("workload: bad class letter %q in %q", id[i], id)
		}
	}
	idx := 0
	for i := 4; i < len(id); i++ {
		if id[i] < '0' || id[i] > '9' {
			return Class{}, 0, fmt.Errorf("workload: bad mix index in %q", id)
		}
		idx = idx*10 + int(id[i]-'0')
	}
	// Insertion-sort the four categories.
	var c Class
	copy(c[:], cats)
	for i := 1; i < 4; i++ {
		for j := i; j > 0 && c[j] < c[j-1]; j-- {
			c[j], c[j-1] = c[j-1], c[j]
		}
	}
	return c, idx, nil
}

// CanonicalMixID rewrites a paper-style mix ID into the canonical spelling
// used by Mixes, e.g. "sftn1" -> "nfts1". Invalid IDs are returned as-is.
func CanonicalMixID(id string) string {
	c, idx, err := ParseMixID(id)
	if err != nil {
		return id
	}
	return fmt.Sprintf("%s%d", c, idx)
}

// Mixes generates the paper's full workload set for a machine with
// cores cores: 35 classes × mixesPerClass mixes. cores must be a multiple
// of 4 (apps per slot = cores/4).
func Mixes(cores, mixesPerClass int, p Params, seed uint64) []Mix {
	if cores%4 != 0 || cores <= 0 {
		panic("workload: cores must be a positive multiple of 4")
	}
	perSlot := cores / 4
	var out []Mix
	for _, class := range Classes() {
		for i := 0; i < mixesPerClass; i++ {
			out = append(out, NewMix(class, i+1, perSlot, p, seed))
		}
	}
	return out
}
