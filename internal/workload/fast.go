// Fast-tier generators: statistically-equivalent, not bit-identical.
//
// The simulator's default ("exact") tier draws Zipf ranks by guided binary
// search over the CDF and geometric gaps by logarithmic inversion — both
// chosen for bit-exact reproducibility against the golden fingerprints. The
// fast tier swaps those inverse-CDF transforms for Walker/Vose alias tables
// fed by a cheaper PRNG (hash.LCG): every draw becomes one table probe and
// consumes exactly one 64-bit value, with no float math on the sampling path.
//
// The alias method samples the *same distributions* (the Zipf table is built
// from the exact tier's own CDF; the geometric table enumerates the exact
// success probability's pmf, truncated where the tail mass falls below
// 2^-32), but the draw sequences differ, so fast-tier simulations are only
// statistically interchangeable with exact-tier ones. internal/stats provides
// the equivalence tests that police this contract, and internal/exp enforces
// it against Fig 7 (per-scheme gmean throughput within ±0.5%).
package workload

import (
	"math"
	"math/bits"

	"vantage/internal/hash"
)

// fastGapSalt decorrelates an app's fast-tier gap stream from its fast-tier
// address stream (mirroring the seed^const derivations the exact tier uses
// for its independent Rand streams).
const fastGapSalt = 0xfa576a9

// aliasTable samples an arbitrary discrete distribution over [0, n) in O(1)
// per draw via the Walker/Vose alias method. Column i is chosen uniformly;
// with probability prob[i] (in 2^-32 units) the sample is i, otherwise it is
// alias[i]. Construction redistributes the pmf so every column's two
// outcomes sum to exactly 1/n of the total mass.
type aliasTable struct {
	n     uint64
	prob  []uint32
	alias []uint32
}

// newAliasTable builds an alias table from non-negative weights (not
// necessarily normalized). Acceptance thresholds are quantized to 32 bits,
// which perturbs each column's split by at most 2^-32 — far below the
// fast tier's statistical-equivalence tolerance.
func newAliasTable(w []float64) *aliasTable {
	n := len(w)
	if n == 0 {
		panic("workload: empty alias table")
	}
	sum := 0.0
	for _, x := range w {
		if x < 0 || math.IsNaN(x) {
			panic("workload: negative or NaN alias weight")
		}
		sum += x
	}
	if sum <= 0 {
		panic("workload: alias weights sum to zero")
	}
	t := &aliasTable{
		n:     uint64(n),
		prob:  make([]uint32, n),
		alias: make([]uint32, n),
	}
	// Vose's two-worklist construction: columns below average donate their
	// deficit to a column above average.
	scaled := make([]float64, n)
	small := make([]uint32, 0, n)
	large := make([]uint32, 0, n)
	inv := float64(n) / sum
	for i, x := range w {
		scaled[i] = x * inv
		if scaled[i] < 1 {
			small = append(small, uint32(i))
		} else {
			large = append(large, uint32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		t.prob[s] = probToU32(scaled[s])
		t.alias[s] = l
		// The donor keeps whatever mass the acceptor did not need.
		scaled[l] = (scaled[l] + scaled[s]) - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Leftovers are exactly 1 up to rounding: accept unconditionally.
	for _, i := range large {
		t.prob[i] = math.MaxUint32
		t.alias[i] = i
	}
	for _, i := range small {
		t.prob[i] = math.MaxUint32
		t.alias[i] = i
	}
	return t
}

func probToU32(p float64) uint32 {
	v := p * (1 << 32)
	if v >= math.MaxUint32 {
		return math.MaxUint32
	}
	return uint32(v)
}

// sample maps one 64-bit draw to a bucket. The high word of r*n picks the
// column (an unbiased fixed-point scaling of r into [0, n)); the top 32 bits
// of the low word — the fractional part of that scaling, uniform within any
// column — form the acceptance coin. One multiply, one compare, at most two
// table reads.
func (t *aliasTable) sample(r uint64) int {
	hi, lo := bits.Mul64(r, t.n)
	if uint32(lo>>32) < t.prob[hi] {
		return int(hi)
	}
	return int(t.alias[hi])
}

// enableFast switches g to alias-table sampling of the same geometric
// distribution: pmf p(1-p)^k enumerated up to the point where the remaining
// tail mass drops below 2^-32 (for the simulator's gap means of 2-8 that is
// a few hundred entries; the exact tier's own 53-bit inversion cannot
// produce gaps meaningfully beyond that point either).
func (g *gapGen) enableFast(seed uint64) {
	if g.mean <= 0 {
		return
	}
	p := 1 / (1 + g.mean)
	q := 1 - p
	k := int(math.Ceil(-32 * math.Ln2 / math.Log(q)))
	w := make([]float64, k+1)
	pk := p
	for i := range w {
		w[i] = pk
		pk *= q
	}
	g.ftab = newAliasTable(w)
	g.flcg = hash.NewLCG(seed)
}

// enableFast switches a to alias-table rank sampling over the identical Zipf
// pmf (recovered from the exact tier's CDF) and fast gap sampling.
func (a *ZipfApp) enableFast(seed uint64) {
	w := make([]float64, len(a.cdf))
	prev := 0.0
	for i, c := range a.cdf {
		w[i] = c - prev
		prev = c
	}
	a.fAlias = newAliasTable(w)
	a.flcg = hash.NewLCG(seed ^ 0xa11a5)
	a.gaps.enableFast(seed ^ fastGapSalt)
}

// enableFastApp recursively enables fast-tier sampling on an app built by
// NewApp, deriving per-stream seeds the same way construction did. Scan and
// stream address sequences are deterministic walks with no sampling cost, so
// only their gap generators change.
func enableFastApp(app App, seed uint64) {
	switch t := app.(type) {
	case *ZipfApp:
		t.enableFast(seed)
	case *ScanApp:
		t.gaps.enableFast(seed ^ fastGapSalt)
	case *StreamApp:
		t.gaps.enableFast(seed ^ fastGapSalt)
	case *PhasedApp:
		enableFastApp(t.a, seed)
		enableFastApp(t.b, seed^0x9e)
	}
}
