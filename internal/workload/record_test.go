package workload

import (
	"fmt"
	"sync"
	"testing"

	"vantage/internal/hash"
)

// testApps enumerates one factory per generator kind plus one per Table 3
// category (the latter via NewApp, exactly as mixes build them). Each factory
// is deterministic: calling it twice yields identical streams.
func testApps() map[string]func() App {
	apps := map[string]func() App{
		"zipf":   func() App { return NewZipfApp(Friendly, 3000, 0.9, 3, 2, 42) },
		"scan":   func() App { return NewScanApp(Thrashing, 5000, 2, 2, 77) },
		"stream": func() App { return NewStreamApp(1<<14, 2, 2, 99) },
		"phased": func() App {
			return NewPhasedApp(
				NewZipfApp(Fitting, 2000, 1.0, 3, 4, 5),
				NewZipfApp(Fitting, 6000, 1.0, 3, 4, 6),
				1000)
		},
	}
	for cat := Insensitive; cat <= Thrashing; cat++ {
		cat := cat
		apps["cat-"+cat.String()] = func() App {
			return NewApp(cat, Params{CacheLines: 4096, PhasedFraction: 0.5}, hash.NewRand(uint64(cat)*13+7))
		}
	}
	return apps
}

func drawSeq(app App, n int) ([]int, []uint64) {
	gaps := make([]int, n)
	addrs := make([]uint64, n)
	for i := range gaps {
		gaps[i], addrs[i] = app.Next()
	}
	return gaps, addrs
}

func checkSeq(t *testing.T, name string, app App, gaps []int, addrs []uint64) {
	t.Helper()
	for i := range gaps {
		g, a := app.Next()
		if g != gaps[i] || a != addrs[i] {
			t.Fatalf("%s: draw %d: got (%d,%d), want (%d,%d)", name, i, g, a, gaps[i], addrs[i])
		}
	}
}

// TestBatchMatchesNext pins the batched generation path draw-for-draw
// against the per-call path, across uneven batch sizes and interleaved
// Next/NextBatch use, for every generator kind and Table 3 category.
func TestBatchMatchesNext(t *testing.T) {
	const n = 3*chunkRefs + 17
	for name, mk := range testApps() {
		t.Run(name, func(t *testing.T) {
			gaps, addrs := drawSeq(mk(), n)

			batched := mk()
			b, ok := batched.(BatchApp)
			if !ok {
				t.Fatalf("%T does not implement BatchApp", batched)
			}
			pos := 0
			for _, sz := range []int{1, 7, 64, 1000, chunkRefs, 3} {
				if pos+sz > n {
					break
				}
				bg := make([]int32, sz)
				ba := make([]uint64, sz)
				b.NextBatch(bg, ba)
				for i := 0; i < sz; i++ {
					if int(bg[i]) != gaps[pos+i] || ba[i] != addrs[pos+i] {
						t.Fatalf("batch draw %d: got (%d,%d), want (%d,%d)",
							pos+i, bg[i], ba[i], gaps[pos+i], addrs[pos+i])
					}
				}
				pos += sz
				// Interleave a single Next call between batches.
				if pos < n {
					g, a := batched.Next()
					if g != gaps[pos] || a != addrs[pos] {
						t.Fatalf("interleaved draw %d: got (%d,%d), want (%d,%d)",
							pos, g, a, gaps[pos], addrs[pos])
					}
					pos++
				}
			}
			checkSeq(t, name, batched, gaps[pos:], addrs[pos:])
		})
	}
}

// TestReplayEquivalence is the draw-for-draw memoization contract: a
// ReplayApp over a recording must emit exactly the live App.Next() stream,
// across chunk boundaries, for every generator kind and Table 3 category.
func TestReplayEquivalence(t *testing.T) {
	const n = 3*chunkRefs + 17 // crosses three chunk boundaries mid-chunk
	for name, mk := range testApps() {
		t.Run(name, func(t *testing.T) {
			gaps, addrs := drawSeq(mk(), n)
			rec := NewRecording(mk(), mk, n+chunkRefs)
			if rec.Name() != mk().Name() || rec.Category() != mk().Category() {
				t.Fatal("recording does not preserve identity")
			}
			r := rec.Replay()
			if r.Name() != rec.Name() || r.Category() != rec.Category() {
				t.Fatal("replay does not preserve identity")
			}
			checkSeq(t, name, r, gaps, addrs)

			// A second cursor over the already-extended recording.
			checkSeq(t, name+"/second", rec.Replay(), gaps, addrs)

			// A batched cursor.
			rb := rec.Replay()
			bg := make([]int32, 1000)
			ba := make([]uint64, 1000)
			for pos := 0; pos+len(bg) <= n; pos += len(bg) {
				rb.NextBatch(bg, ba)
				for i := range bg {
					if int(bg[i]) != gaps[pos+i] || ba[i] != addrs[pos+i] {
						t.Fatalf("replay batch draw %d: got (%d,%d), want (%d,%d)",
							pos+i, bg[i], ba[i], gaps[pos+i], addrs[pos+i])
					}
				}
			}
		})
	}
}

// TestReplayBudgetFallThrough drives cursors past a one-chunk budget: the
// first overflowing cursor claims the recorder's live source, later ones
// rebuild from the factory and fast-forward. Both must stay draw-identical.
func TestReplayBudgetFallThrough(t *testing.T) {
	mk := func() App { return NewZipfApp(Friendly, 3000, 0.9, 3, 2, 42) }
	const n = 4*chunkRefs + 5
	gaps, addrs := drawSeq(mk(), n)

	rec := NewRecording(mk(), mk, chunkRefs) // budget: exactly one chunk
	first, second := rec.Replay(), rec.Replay()
	checkSeq(t, "first", first, gaps, addrs)
	if rec.src != nil {
		t.Fatal("first overflowing cursor should have claimed the live source")
	}
	if first.live == nil {
		t.Fatal("first cursor should have fallen through to live generation")
	}
	if got := int(rec.filled.Load()); got != 1 {
		t.Fatalf("recording grew past its budget: %d chunks", got)
	}
	// The second cursor must rebuild + fast-forward when it outruns chunk 0.
	checkSeq(t, "second", second, gaps, addrs)

	// Mixed Next/NextBatch reads across the fall-through boundary.
	third := rec.Replay()
	bg := make([]int32, chunkRefs-3)
	ba := make([]uint64, chunkRefs-3)
	third.NextBatch(bg, ba)
	for i := range bg {
		if int(bg[i]) != gaps[i] || ba[i] != addrs[i] {
			t.Fatalf("third batch draw %d mismatch", i)
		}
	}
	checkSeq(t, "third", third, gaps[len(bg):], addrs[len(bg):])

	// A zero budget records nothing but still replays correctly.
	rec0 := NewRecording(mk(), mk, 0)
	checkSeq(t, "zero-budget", rec0.Replay(), gaps, addrs)
	checkSeq(t, "zero-budget-2", rec0.Replay(), gaps, addrs)
	if got := int(rec0.filled.Load()); got != 0 {
		t.Fatalf("zero-budget recording stored %d chunks", got)
	}
}

// TestReplayConcurrentReaders hammers one recording from many goroutines
// (race detector coverage for the lock-free published-chunk reads and the
// claim/rebuild fall-through under contention).
func TestReplayConcurrentReaders(t *testing.T) {
	mk := func() App { return NewZipfApp(Friendly, 3000, 0.9, 3, 2, 42) }
	const n = 3*chunkRefs + 101
	gaps, addrs := drawSeq(mk(), n)

	rec := NewRecording(mk(), mk, 2*chunkRefs) // all readers outrun the budget
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rec.Replay()
			// Vary read granularity per worker to interleave differently.
			batch := 1 + 997*w
			bg := make([]int32, batch)
			ba := make([]uint64, batch)
			pos := 0
			for pos < n {
				if w%2 == 0 && pos+batch <= n {
					r.NextBatch(bg, ba)
					for i := range bg {
						if int(bg[i]) != gaps[pos+i] || ba[i] != addrs[pos+i] {
							errs <- fmt.Errorf("worker %d draw %d mismatch", w, pos+i)
							return
						}
					}
					pos += batch
					continue
				}
				g, a := r.Next()
				if g != gaps[pos] || a != addrs[pos] {
					errs <- fmt.Errorf("worker %d draw %d: got (%d,%d), want (%d,%d)",
						w, pos, g, a, gaps[pos], addrs[pos])
					return
				}
				pos++
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestMixRecordingReplay checks the mix-level wrapper: every app of every
// replayed mix re-emits its original stream, and replays are independent.
func TestMixRecordingReplay(t *testing.T) {
	p := Params{CacheLines: 4096, PhasedFraction: 0.3}
	mkMix := func() Mix { return NewMix(Class{Friendly, Fitting, Thrashing, Insensitive}, 0, 1, p, 12345) }
	ref := mkMix()
	const n = chunkRefs + 57
	refGaps := make([][]int, len(ref.Apps))
	refAddrs := make([][]uint64, len(ref.Apps))
	for i, app := range ref.Apps {
		refGaps[i], refAddrs[i] = drawSeq(app, n)
	}

	mr := NewMixRecording(mkMix(), func(i int) App { return mkMix().Apps[i] }, 2*chunkRefs)
	if mr.ID != ref.ID || mr.Class != ref.Class {
		t.Fatalf("mix identity lost: %s vs %s", mr.ID, ref.ID)
	}
	for round := 0; round < 2; round++ {
		mix := mr.Replay()
		if mix.ID != ref.ID || len(mix.Apps) != len(ref.Apps) {
			t.Fatal("replayed mix shape differs")
		}
		for i, app := range mix.Apps {
			if app.Name() != ref.Apps[i].Name() {
				t.Fatalf("app %d name %q vs %q", i, app.Name(), ref.Apps[i].Name())
			}
			checkSeq(t, fmt.Sprintf("round%d/app%d", round, i), app, refGaps[i], refAddrs[i])
		}
	}
}
