package workload_test

import (
	"fmt"

	"vantage/internal/workload"
)

// A cyclic scan's miss-rate curve has the cache-fitting cliff: total misses
// below the working-set size, only compulsory misses above it.
func ExampleMissRateCurve() {
	app := workload.NewScanApp(workload.Fitting, 1000, 0, 1, 7)
	curve := workload.MissRateCurve(app, 100_000, []int{500, 999, 1000, 2000})
	for i, size := range []int{500, 999, 1000, 2000} {
		fmt.Printf("size %4d: %.0f%% misses\n", size, 100*curve[i])
	}
	// Output:
	// size  500: 100% misses
	// size  999: 100% misses
	// size 1000: 1% misses
	// size 2000: 1% misses
}

// Mix IDs follow the paper's naming: four class letters plus an index, with
// letters accepted in any order.
func ExampleCanonicalMixID() {
	fmt.Println(workload.CanonicalMixID("sftn1"))
	fmt.Println(workload.CanonicalMixID("ssst7"))
	// Output:
	// nfts1
	// tsss7
}
