package workload

import "testing"

// benchApp builds the benchmark generator: a Zipf app shaped like a cache-
// friendly Table 3 draw (Zipf rank + geometric gap per reference), which is
// the dominant generator in mix streams.
func benchApp() App { return NewZipfApp(Friendly, 64<<10, 0.9, 3, 2, 42) }

// BenchmarkWorkloadGenLive measures per-call live generation: one Next per
// reference (the pre-memoization harness path).
func BenchmarkWorkloadGenLive(b *testing.B) {
	app := benchApp()
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		g, a := app.Next()
		sink += uint64(g) + a
	}
	_ = sink
}

// BenchmarkWorkloadGenBatched measures batched live generation: chunk-sized
// NextBatch calls (the path the recorder uses to fill chunks).
func BenchmarkWorkloadGenBatched(b *testing.B) {
	app := benchApp().(BatchApp)
	gaps := make([]int32, chunkRefs)
	addrs := make([]uint64, chunkRefs)
	b.ReportAllocs()
	for done := 0; done < b.N; done += chunkRefs {
		n := min(b.N-done, chunkRefs)
		app.NextBatch(gaps[:n], addrs[:n])
	}
}

// BenchmarkWorkloadGenReplay measures what the simulator pays per reference
// once a stream is recorded: ReplayApp.Next over already-published chunks.
func BenchmarkWorkloadGenReplay(b *testing.B) {
	const refs = 4 * chunkRefs
	rec := NewRecording(benchApp(), benchApp, refs)
	warm := rec.Replay() // force all chunks to be generated up front
	gaps := make([]int32, chunkRefs)
	addrs := make([]uint64, chunkRefs)
	for i := 0; i < refs; i += chunkRefs {
		warm.NextBatch(gaps, addrs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	r := rec.Replay()
	for i, pos := 0, 0; i < b.N; i++ {
		if pos == refs {
			r, pos = rec.Replay(), 0
		}
		g, a := r.Next()
		sink += uint64(g) + a
		pos++
	}
	_ = sink
}
