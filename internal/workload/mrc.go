package workload

// MissRateCurve computes an application's exact LRU miss-rate curve with
// Mattson's stack algorithm: one pass over n references from the app
// records each access's stack distance (number of distinct lines touched
// since the previous access to the same line), and the curve follows from
// the distance histogram. This is the offline ground truth that UMON-DSS
// approximates with sampled auxiliary tags, useful for validating monitors
// and for allocation studies that want oracle curves.
//
// The returned curve has len(sizes) entries: curve[i] is the miss ratio
// (misses per reference, compulsory misses included) of an LRU cache with
// sizes[i] lines. sizes must be ascending.
func MissRateCurve(app App, n int, sizes []int) []float64 {
	if n <= 0 {
		panic("workload: non-positive reference count")
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			panic("workload: sizes must be ascending")
		}
	}
	d := newDistanceTracker()
	// histogram of stack distances, capped at the largest size.
	maxSize := 0
	if len(sizes) > 0 {
		maxSize = sizes[len(sizes)-1]
	}
	hist := make([]int, maxSize+1)
	infinite := 0 // cold misses / distances beyond maxSize
	// Consume the stream through the packed bulk path when the app offers
	// one (replay cursors do): one chunk load instead of an interface call
	// per reference, same draws either way.
	packed, _ := app.(PackedApp)
	var refs []uint64
	pos := 0
	for i := 0; i < n; i++ {
		var addr uint64
		if pos < len(refs) {
			_, addr = UnpackRef(refs[pos])
			pos++
		} else if packed != nil {
			if refs = packed.NextPacked(); len(refs) > 0 {
				_, addr = UnpackRef(refs[0])
				pos = 1
			} else {
				packed = nil // budget fall-through: cursor went live
				_, addr = app.Next()
			}
		} else {
			_, addr = app.Next()
		}
		dist := d.access(addr)
		if dist < 0 || dist >= len(hist) {
			infinite++
		} else {
			hist[dist]++
		}
	}
	curve := make([]float64, len(sizes))
	// hits with cache size s = accesses with stack distance < s.
	cum := 0
	prev := 0
	for i, s := range sizes {
		for dist := prev; dist < s && dist < len(hist); dist++ {
			cum += hist[dist]
		}
		prev = s
		curve[i] = 1 - float64(cum)/float64(n)
	}
	return curve
}

// MissRateCurveRecorded computes the curve over a recording's replay cursor
// instead of a live app, so miss-curve construction shares the memoized
// stream with the simulation runs rather than regenerating it (and leaves
// the recording's other cursors untouched). Identical to MissRateCurve over
// the source app: replay is draw-for-draw equivalent.
func MissRateCurveRecorded(rec *Recording, n int, sizes []int) []float64 {
	return MissRateCurve(rec.Replay(), n, sizes)
}

// distanceTracker computes exact LRU stack distances with an order-statistic
// treap keyed by last-access time: the stack distance of an access is the
// number of lines accessed more recently than the line's previous access.
type distanceTracker struct {
	last map[uint64]uint64 // line -> last access time
	root *treapNode
	seq  uint64
	rng  uint64
}

func newDistanceTracker() *distanceTracker {
	return &distanceTracker{last: make(map[uint64]uint64), rng: 0x9e3779b97f4a7c15}
}

type treapNode struct {
	key         uint64 // access time
	prio        uint64
	size        int
	left, right *treapNode
}

func sz(n *treapNode) int {
	if n == nil {
		return 0
	}
	return n.size
}

func (n *treapNode) update() { n.size = 1 + sz(n.left) + sz(n.right) }

// split partitions by key: left < key <= right.
func split(n *treapNode, key uint64) (l, r *treapNode) {
	if n == nil {
		return nil, nil
	}
	if n.key < key {
		n.right, r = split(n.right, key)
		n.update()
		return n, r
	}
	l, n.left = split(n.left, key)
	n.update()
	return l, n
}

func merge(l, r *treapNode) *treapNode {
	switch {
	case l == nil:
		return r
	case r == nil:
		return l
	case l.prio > r.prio:
		l.right = merge(l.right, r)
		l.update()
		return l
	default:
		r.left = merge(l, r.left)
		r.update()
		return r
	}
}

// countGreater returns the number of keys strictly greater than key.
func countGreater(n *treapNode, key uint64) int {
	count := 0
	for n != nil {
		if n.key > key {
			count += 1 + sz(n.right)
			n = n.left
		} else {
			n = n.right
		}
	}
	return count
}

// remove deletes key from the treap (must be present).
func remove(n *treapNode, key uint64) *treapNode {
	if n == nil {
		return nil
	}
	if n.key == key {
		return merge(n.left, n.right)
	}
	if key < n.key {
		n.left = remove(n.left, key)
	} else {
		n.right = remove(n.right, key)
	}
	n.update()
	return n
}

func (d *distanceTracker) nextPrio() uint64 {
	x := d.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	d.rng = x
	return x * 0x2545f4914f6cdd1d
}

// access records one reference and returns its stack distance (-1 for a
// cold miss).
func (d *distanceTracker) access(addr uint64) int {
	d.seq++
	now := d.seq
	prev, seen := d.last[addr]
	dist := -1
	if seen {
		dist = countGreater(d.root, prev)
		d.root = remove(d.root, prev)
	}
	node := &treapNode{key: now, prio: d.nextPrio(), size: 1}
	l, r := split(d.root, now)
	d.root = merge(merge(l, node), r)
	d.last[addr] = now
	return dist
}
