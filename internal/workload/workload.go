// Package workload provides synthetic application models that reproduce the
// memory behavior of the paper's four SPEC CPU2006 categories (Table 3):
// insensitive, cache-friendly, cache-fitting, and thrashing/streaming — plus
// the multiprogrammed mix generator used by the evaluation (35 category
// classes × 10 mixes = 350 workloads per machine configuration).
//
// The paper runs real SPEC binaries under a Pin-based simulator; this
// package substitutes parameterized address-stream generators whose miss
// curves versus cache capacity have the same shapes the classification in
// Table 3 is based on:
//
//   - insensitive: tiny working set (hits in L1/L2 regardless of allocation)
//   - cache-friendly: Zipf-distributed reuse, smoothly decreasing miss curve
//   - cache-fitting: cyclic scan over a working set near cache capacity —
//     misses fall off a cliff once the allocation covers the set
//   - thrashing/streaming: sequential stream much larger than the cache
//
// All model parameters are expressed relative to the simulated L2 capacity,
// so experiments scale from unit-test sizes to paper-scale caches without
// changing workload character.
package workload

import (
	"fmt"
	"math"

	"vantage/internal/hash"
)

// Category is the paper's Table 3 workload classification.
type Category int

const (
	// Insensitive apps (paper class "n") miss under 5 MPKI at any size.
	Insensitive Category = iota
	// Friendly apps ("f") benefit gradually from additional capacity.
	Friendly
	// Fitting apps ("t") have a sharp miss cliff near their working-set size.
	Fitting
	// Thrashing apps ("s") see no benefit from any realistic allocation.
	Thrashing
)

// Letter returns the paper's one-letter class code (n/f/t/s).
func (c Category) Letter() byte {
	switch c {
	case Insensitive:
		return 'n'
	case Friendly:
		return 'f'
	case Fitting:
		return 't'
	case Thrashing:
		return 's'
	}
	return '?'
}

// String returns the category name.
func (c Category) String() string {
	switch c {
	case Insensitive:
		return "insensitive"
	case Friendly:
		return "cache-friendly"
	case Fitting:
		return "cache-fitting"
	case Thrashing:
		return "thrashing/streaming"
	}
	return "unknown"
}

// App generates one core's instruction and memory-reference stream.
// Implementations are deterministic given their construction seed.
type App interface {
	// Name identifies the app instance, e.g. "f:zipf-ws8192-a0.9".
	Name() string
	// Category returns the Table 3 class.
	Category() Category
	// Next returns the number of non-memory instructions executed before
	// the next memory reference, and the referenced line address (block
	// address, without the core's address-space tag).
	Next() (gap int, addr uint64)
}

// BatchApp is implemented by apps that can generate many references at once.
// NextBatch fills gaps and addrs (which must have equal lengths) with the
// next len(gaps) references and leaves the app in exactly the state that
// many successive Next calls would: every PRNG stream advances by the same
// draws in the same order, so both the filled values and all subsequent
// output are bit-identical to the per-call path. Batching exists purely to
// amortize call overhead (interface dispatch, closure calls, per-draw
// bookkeeping) around the irreducible per-sample math.
type BatchApp interface {
	App
	NextBatch(gaps []int32, addrs []uint64)
}

// fillRefs advances src by len(gaps) references into the buffers, using the
// batched generator when src supports it.
func fillRefs(src App, gaps []int32, addrs []uint64) {
	if b, ok := src.(BatchApp); ok {
		b.NextBatch(gaps, addrs)
		return
	}
	for i := range gaps {
		g, a := src.Next()
		if g > math.MaxInt32 {
			panic("workload: instruction gap overflows int32")
		}
		gaps[i] = int32(g)
		addrs[i] = a
	}
}

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

// burster adds spatial locality: each generated line address is accessed
// burst times in a row (the L1 absorbs the repeats, as word accesses within
// a cache line would).
type burster struct {
	remaining int
	last      uint64
}

func (b *burster) next(gen func() uint64, burst int) uint64 {
	if b.remaining > 0 {
		b.remaining--
		return b.last
	}
	b.last = gen()
	b.remaining = burst - 1
	return b.last
}

// gapGen produces geometrically distributed instruction gaps with the given
// mean, approximating a fixed memory-instruction fraction.
type gapGen struct {
	rng  *hash.Rand
	mean float64
	// logQ caches math.Log(1-p) for the instance's success probability.
	// Dividing by the cached value is the same float64 operation as
	// dividing by a freshly computed one, so samples are bit-identical;
	// caching halves the math.Log calls on the per-reference path.
	logQ float64
	// ftab/flcg, when set by enableFast, replace log inversion with an
	// alias-table draw of the same distribution (fast tier; see fast.go).
	ftab *aliasTable
	flcg *hash.LCG
}

func (g *gapGen) next() int {
	if g.mean <= 0 {
		return 0
	}
	if g.ftab != nil {
		return g.ftab.sample(g.flcg.Uint64())
	}
	if g.logQ == 0 {
		// Geometric via inversion; mean = (1-p)/p with success prob p.
		p := 1 / (1 + g.mean)
		g.logQ = math.Log(1 - p)
	}
	u := g.rng.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return int(math.Log(1-u) / g.logQ)
}

// nextBatch draws len(out) gaps in one tight loop. Each sample performs the
// identical float64 operations (and consumes the identical rng draws) as
// next, so the batch is bit-identical to len(out) sequential calls; the
// per-call branches and pointer chasing are hoisted out of the loop.
func (g *gapGen) nextBatch(out []int32) {
	if g.mean <= 0 {
		for i := range out {
			out[i] = 0
		}
		return
	}
	if g.ftab != nil {
		tab, rng := g.ftab, g.flcg
		for i := range out {
			out[i] = int32(tab.sample(rng.Uint64()))
		}
		return
	}
	if g.logQ == 0 {
		p := 1 / (1 + g.mean)
		g.logQ = math.Log(1 - p)
	}
	rng, logQ := g.rng, g.logQ
	for i := range out {
		u := rng.Float64()
		if u >= 1 {
			u = math.Nextafter(1, 0)
		}
		v := int(math.Log(1-u) / logQ)
		if v > math.MaxInt32 {
			panic("workload: instruction gap overflows int32")
		}
		out[i] = int32(v)
	}
}

// ZipfApp models cache-friendly behavior: accesses are Zipf-distributed
// over lines lines with exponent alpha, giving a smooth, heavy-tailed reuse
// pattern and a gradually decreasing miss curve.
type ZipfApp struct {
	name  string
	cat   Category
	rng   *hash.Rand
	gaps  gapGen
	burst int
	b     burster
	cdf   []float64
	perm  []uint32 // rank -> address permutation, so hot lines spread out
	// guide is an inverse-CDF index: guide[k] is the lower bound of k/K in
	// cdf (K = len(guide)-1), so a draw u only needs a binary search within
	// [guide[k], guide[k+1]] for its bucket k. The lower bound an u resolves
	// to is a pure function of (cdf, u) — the same index whatever search
	// range finds it — so the guided search is bit-identical to a full one.
	guide []uint32
	lines uint64
	// fAlias/flcg, when set by enableFast, replace the guided CDF search
	// with an alias-table draw of the same pmf (fast tier; see fast.go).
	fAlias *aliasTable
	flcg   *hash.LCG
}

// NewZipfApp returns a Zipf-reuse app over lines lines with exponent alpha.
func NewZipfApp(cat Category, lines int, alpha float64, gapMean float64, burst int, seed uint64) *ZipfApp {
	if lines <= 0 || alpha < 0 || burst < 1 {
		panic("workload: bad zipf parameters")
	}
	a := &ZipfApp{
		name:  fmt.Sprintf("%c:zipf-ws%d-a%.2f", cat.Letter(), lines, alpha),
		cat:   cat,
		rng:   hash.NewRand(seed),
		gaps:  gapGen{rng: hash.NewRand(seed ^ 0x6a9), mean: gapMean},
		burst: burst,
		cdf:   make([]float64, lines),
		perm:  make([]uint32, lines),
		lines: uint64(lines),
	}
	sum := 0.0
	for i := 0; i < lines; i++ {
		sum += 1 / math.Pow(float64(i+1), alpha)
		a.cdf[i] = sum
	}
	for i := range a.cdf {
		a.cdf[i] /= sum
	}
	// Build the guide table with one merge pass: advance i to the first rank
	// with cdf[i] >= k/K for each bucket boundary. K = lines keeps the table
	// a third the size of the cdf while leaving head buckets (where the Zipf
	// mass concentrates) only a handful of ranks wide.
	a.guide = make([]uint32, lines+1)
	scale := float64(lines)
	i := 0
	for k := 1; k <= lines; k++ {
		b := float64(k) / scale
		for i < lines-1 && a.cdf[i] < b {
			i++
		}
		a.guide[k] = uint32(i)
	}
	// A Fisher-Yates permutation maps popularity ranks to addresses, so the
	// hot lines are spread across the address space (a hash mod lines is
	// not injective and would shrink the working set by ~1/e).
	prng := hash.NewRand(hash.Mix64(seed ^ 0x51cada))
	for i := range a.perm {
		a.perm[i] = uint32(i)
	}
	for i := lines - 1; i > 0; i-- {
		j := prng.Intn(i + 1)
		a.perm[i], a.perm[j] = a.perm[j], a.perm[i]
	}
	return a
}

// Name implements App.
func (a *ZipfApp) Name() string { return a.name }

// Category implements App.
func (a *ZipfApp) Category() Category { return a.cat }

// drawLine draws one Zipf-distributed line address: the rank comes from the
// tier-appropriate sampler, then the permutation scrambles it into an
// address so that hot lines don't cluster in nearby sets.
func (a *ZipfApp) drawLine() uint64 {
	if a.fAlias != nil {
		return uint64(a.perm[a.fAlias.sample(a.flcg.Uint64())]) + 1
	}
	return uint64(a.perm[a.rank(a.rng.Float64())]) + 1
}

// Next implements App.
func (a *ZipfApp) Next() (int, uint64) {
	addr := a.b.next(a.drawLine, a.burst)
	return a.gaps.next(), addr
}

// NextBatch implements BatchApp. Rank draws (a.rng) and gap draws
// (a.gaps.rng) come from independent generators, so filling the address run
// first and the gap run second consumes each stream in exactly the per-call
// order and the batch is bit-identical to len(gaps) Next calls.
func (a *ZipfApp) NextBatch(gaps []int32, addrs []uint64) {
	if len(gaps) != len(addrs) {
		panic("workload: NextBatch buffer lengths differ")
	}
	rem, last := a.b.remaining, a.b.last
	for i := range addrs {
		if rem > 0 {
			rem--
		} else {
			last = a.drawLine()
			rem = a.burst - 1
		}
		addrs[i] = last
	}
	a.b.remaining, a.b.last = rem, last
	a.gaps.nextBatch(gaps)
}

// rank returns the lower bound of u in the CDF: the smallest rank i with
// cdf[i] >= u. The guide table narrows the binary search to u's bucket; the
// nudge handles int(u*scale) rounding into a neighboring bucket (off by at
// most one, since the product's error is below one ulp).
func (a *ZipfApp) rank(u float64) int {
	scale := float64(len(a.guide) - 1)
	k := int(u * scale)
	if k >= len(a.guide)-1 {
		k = len(a.guide) - 2
	}
	if u < float64(k)/scale {
		k--
	} else if u >= float64(k+1)/scale {
		k++
	}
	lo, hi := int(a.guide[k]), int(a.guide[k+1])
	for lo < hi {
		mid := (lo + hi) / 2
		if a.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// ScanApp models cache-fitting behavior: a cyclic scan over a fixed working
// set. Under LRU a cyclic scan gets zero hits until the allocation covers
// the whole set, then hits everything — the sharp cliff of the paper's
// cache-fitting class.
type ScanApp struct {
	name  string
	cat   Category
	gaps  gapGen
	burst int
	b     burster
	pos   uint64
	lines uint64
}

// NewScanApp returns a cyclic-scan app over lines lines.
func NewScanApp(cat Category, lines int, gapMean float64, burst int, seed uint64) *ScanApp {
	if lines <= 0 || burst < 1 {
		panic("workload: bad scan parameters")
	}
	return &ScanApp{
		name:  fmt.Sprintf("%c:scan-ws%d", cat.Letter(), lines),
		cat:   cat,
		gaps:  gapGen{rng: hash.NewRand(seed ^ 0x5ca), mean: gapMean},
		burst: burst,
		lines: uint64(lines),
	}
}

// Name implements App.
func (a *ScanApp) Name() string { return a.name }

// Category implements App.
func (a *ScanApp) Category() Category { return a.cat }

// Next implements App.
func (a *ScanApp) Next() (int, uint64) {
	addr := a.b.next(func() uint64 {
		a.pos = (a.pos + 1) % a.lines
		return a.pos + 1
	}, a.burst)
	return a.gaps.next(), addr
}

// NextBatch implements BatchApp (see ZipfApp.NextBatch for the equivalence
// argument; the scan position is not random at all).
func (a *ScanApp) NextBatch(gaps []int32, addrs []uint64) {
	if len(gaps) != len(addrs) {
		panic("workload: NextBatch buffer lengths differ")
	}
	rem, last, pos := a.b.remaining, a.b.last, a.pos
	for i := range addrs {
		if rem > 0 {
			rem--
		} else {
			pos = (pos + 1) % a.lines
			last = pos + 1
			rem = a.burst - 1
		}
		addrs[i] = last
	}
	a.b.remaining, a.b.last, a.pos = rem, last, pos
	a.gaps.nextBatch(gaps)
}

// StreamApp models thrashing/streaming behavior: a sequential walk over a
// region far larger than any cache, with optional wraparound.
type StreamApp struct {
	name   string
	gaps   gapGen
	burst  int
	b      burster
	pos    uint64
	region uint64
}

// NewStreamApp returns a streaming app over region lines.
func NewStreamApp(region int, gapMean float64, burst int, seed uint64) *StreamApp {
	if region <= 0 || burst < 1 {
		panic("workload: bad stream parameters")
	}
	return &StreamApp{
		name:   fmt.Sprintf("s:stream-%d", region),
		gaps:   gapGen{rng: hash.NewRand(seed ^ 0x57e), mean: gapMean},
		burst:  burst,
		region: uint64(region),
	}
}

// Name implements App.
func (a *StreamApp) Name() string { return a.name }

// Category implements App.
func (a *StreamApp) Category() Category { return Thrashing }

// Next implements App.
func (a *StreamApp) Next() (int, uint64) {
	addr := a.b.next(func() uint64 {
		a.pos = (a.pos + 1) % a.region
		return a.pos + 1
	}, a.burst)
	return a.gaps.next(), addr
}

// NextBatch implements BatchApp (see ZipfApp.NextBatch for the equivalence
// argument; the stream position is not random at all).
func (a *StreamApp) NextBatch(gaps []int32, addrs []uint64) {
	if len(gaps) != len(addrs) {
		panic("workload: NextBatch buffer lengths differ")
	}
	rem, last, pos := a.b.remaining, a.b.last, a.pos
	for i := range addrs {
		if rem > 0 {
			rem--
		} else {
			pos = (pos + 1) % a.region
			last = pos + 1
			rem = a.burst - 1
		}
		addrs[i] = last
	}
	a.b.remaining, a.b.last, a.pos = rem, last, pos
	a.gaps.nextBatch(gaps)
}

// PhasedApp alternates between two inner apps every phaseLen memory
// references, modeling time-varying behavior (the transients that exercise
// repartitioning in Fig 8).
type PhasedApp struct {
	name     string
	cat      Category
	a, b     App
	phaseLen int
	count    int
	inB      bool
}

// NewPhasedApp returns an app that alternates between a and b every
// phaseLen references. Its category is a's.
func NewPhasedApp(a, b App, phaseLen int) *PhasedApp {
	if phaseLen <= 0 {
		panic("workload: bad phase length")
	}
	return &PhasedApp{
		name:     fmt.Sprintf("%s|%s", a.Name(), b.Name()),
		cat:      a.Category(),
		a:        a,
		b:        b,
		phaseLen: phaseLen,
	}
}

// Name implements App.
func (p *PhasedApp) Name() string { return p.name }

// Category implements App.
func (p *PhasedApp) Category() Category { return p.cat }

// Next implements App.
func (p *PhasedApp) Next() (int, uint64) {
	p.count++
	if p.count >= p.phaseLen {
		p.count = 0
		p.inB = !p.inB
	}
	if p.inB {
		return p.b.Next()
	}
	return p.a.Next()
}

// NextBatch implements BatchApp. Phase switches depend only on the reference
// count, so the per-call path is reproduced exactly; the inner apps draw in
// the same interleaved order as under Next.
func (p *PhasedApp) NextBatch(gaps []int32, addrs []uint64) {
	if len(gaps) != len(addrs) {
		panic("workload: NextBatch buffer lengths differ")
	}
	for i := range gaps {
		g, a := p.Next()
		if g > math.MaxInt32 {
			panic("workload: instruction gap overflows int32")
		}
		gaps[i] = int32(g)
		addrs[i] = a
	}
}
