package workload

import (
	"math"
	"testing"
)

// fixedApp replays a fixed address sequence.
type fixedApp struct {
	seq []uint64
	pos int
}

func (f *fixedApp) Name() string       { return "fixed" }
func (f *fixedApp) Category() Category { return Friendly }
func (f *fixedApp) Next() (int, uint64) {
	a := f.seq[f.pos%len(f.seq)]
	f.pos++
	return 0, a
}

func TestMissRateCurvePanics(t *testing.T) {
	app := &fixedApp{seq: []uint64{1}}
	for _, f := range []func(){
		func() { MissRateCurve(app, 0, []int{1}) },
		func() { MissRateCurve(app, 10, []int{4, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad input accepted")
				}
			}()
			f()
		}()
	}
}

func TestMissRateCurveCyclicScan(t *testing.T) {
	// Cyclic scan over 8 lines: with LRU, size < 8 gives 100% misses
	// (after compulsory, still 100%); size >= 8 gives hits on every
	// revisit: miss ratio -> 8/n.
	seq := make([]uint64, 8)
	for i := range seq {
		seq[i] = uint64(i + 1)
	}
	app := &fixedApp{seq: seq}
	curve := MissRateCurve(app, 800, []int{4, 7, 8, 16})
	if curve[0] != 1 || curve[1] != 1 {
		t.Fatalf("undersized LRU should miss everything on a cyclic scan: %v", curve)
	}
	want := 8.0 / 800
	if math.Abs(curve[2]-want) > 1e-9 || math.Abs(curve[3]-want) > 1e-9 {
		t.Fatalf("covering sizes should only see compulsory misses: %v", curve)
	}
}

func TestMissRateCurveAlternation(t *testing.T) {
	// Sequence 1,2,1,2,...: stack distance 1 after warmup, so any size >= 2
	// hits everything, size 1 misses everything.
	app := &fixedApp{seq: []uint64{1, 2}}
	curve := MissRateCurve(app, 1000, []int{1, 2})
	if curve[0] != 1 {
		t.Fatalf("size-1 miss ratio %v, want 1", curve[0])
	}
	if math.Abs(curve[1]-2.0/1000) > 1e-9 {
		t.Fatalf("size-2 miss ratio %v, want compulsory only", curve[1])
	}
}

func TestMissRateCurveMonotone(t *testing.T) {
	app := NewZipfApp(Friendly, 2000, 0.7, 0, 1, 9)
	sizes := []int{64, 128, 256, 512, 1024, 2048}
	curve := MissRateCurve(app, 50000, sizes)
	for i := 1; i < len(curve); i++ {
		if curve[i] > curve[i-1]+1e-12 {
			t.Fatalf("MRC not monotone: %v", curve)
		}
	}
	if curve[0] < curve[len(curve)-1]+0.05 {
		t.Fatalf("zipf MRC too flat: %v", curve)
	}
}

// TestMissRateCurveMatchesSimulatedLRU cross-validates the analytic stack
// curve against a brute-force fully-associative LRU simulation.
func TestMissRateCurveMatchesSimulatedLRU(t *testing.T) {
	app := NewZipfApp(Friendly, 500, 0.8, 0, 1, 11)
	ref := NewZipfApp(Friendly, 500, 0.8, 0, 1, 11)
	const n = 20000
	const size = 128
	curve := MissRateCurve(app, n, []int{size})

	// Brute-force LRU of 128 lines.
	type node struct{ prev, next uint64 }
	lastUse := map[uint64]int{}
	clock := 0
	misses := 0
	for i := 0; i < n; i++ {
		_, a := ref.Next()
		if _, ok := lastUse[a]; !ok {
			misses++
			if len(lastUse) >= size {
				// evict least recently used
				victim, oldest := uint64(0), 1<<62
				for line, ts := range lastUse {
					if ts < oldest {
						victim, oldest = line, ts
					}
				}
				delete(lastUse, victim)
			}
		}
		lastUse[a] = clock
		clock++
	}
	_ = node{}
	got := float64(misses) / n
	if math.Abs(curve[0]-got) > 0.01 {
		t.Fatalf("stack curve %v vs simulated LRU %v", curve[0], got)
	}
}

// TestMissRateCurveRecordedMatchesLive pins the recorded-stream curve to the
// live-stream curve exactly: replay is draw-for-draw equivalent, so the
// Mattson pass must produce identical histograms either way — including when
// the cursor outruns a tiny budget and falls through to live generation.
func TestMissRateCurveRecordedMatchesLive(t *testing.T) {
	sizes := []int{64, 256, 1024}
	const n = 30000
	for _, budget := range []int{n + 64, 4096} {
		mk := func() App { return NewZipfApp(Friendly, 2000, 0.8, 2, 1, 77) }
		live := MissRateCurve(mk(), n, sizes)
		rec := NewRecording(mk(), mk, budget)
		got := MissRateCurveRecorded(rec, n, sizes)
		for i := range sizes {
			if got[i] != live[i] {
				t.Fatalf("budget %d size %d: recorded %v != live %v", budget, sizes[i], got[i], live[i])
			}
		}
	}
}

// TestMissRateCurvePinned is a regression fence for the curve values
// themselves: the apps are deterministic, so these exact ratios must never
// drift (any change means the generator or the stack algorithm changed).
func TestMissRateCurvePinned(t *testing.T) {
	sizes := []int{64, 256, 1024, 2048}
	app := NewZipfApp(Friendly, 2000, 0.7, 0, 1, 9)
	got := MissRateCurve(app, 50000, sizes)
	want := []float64{0.84870, 0.64626, 0.27554, 0.04}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("curve drifted at size %d: got %.5f want %.5f (full: %v)",
				sizes[i], got[i], want[i], got)
		}
	}
}

func TestDistanceTrackerBasics(t *testing.T) {
	d := newDistanceTracker()
	if d.access(1) != -1 {
		t.Fatal("first touch should be cold")
	}
	if d.access(2) != -1 || d.access(3) != -1 {
		t.Fatal("cold misses expected")
	}
	// Re-access 1: lines 2 and 3 were touched since -> distance 2.
	if got := d.access(1); got != 2 {
		t.Fatalf("distance = %d, want 2", got)
	}
	// Immediately re-access 1: distance 0.
	if got := d.access(1); got != 0 {
		t.Fatalf("distance = %d, want 0", got)
	}
}
