// Package latency provides the lock-free log2 request-latency histogram
// shared by the serving layer and the cluster proxy, so both record in the
// same bucket layout and their /metrics renderings and quantile math line
// up.
package latency

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Hist is a lock-free log2 histogram of request service times. Bucket i
// spans (4096<<(i-1), 4096<<i] nanoseconds (bucket 0 is everything up to
// 4.096µs), so 26 buckets reach ~137s — far past any deadline the server
// allows. Recording is one atomic add on the bucket plus one on the
// running sum, cheap enough for the per-request hot path when enabled.
type Hist struct {
	counts [Buckets]atomic.Uint64
	sumNS  atomic.Uint64
}

const (
	Buckets = 26
	BaseNS  = 4096
)

// Record adds one observation. Negative durations (a clock stepping
// backwards) count into bucket 0 rather than corrupting the sum.
func (h *Hist) Record(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	i := bits.Len64(uint64(ns) / BaseNS)
	if i >= Buckets {
		i = Buckets - 1
	}
	h.counts[i].Add(1)
	h.sumNS.Add(uint64(ns))
}

// Snapshot returns the bucket counts and sum. Buckets are read one atomic
// at a time, so the snapshot is only approximately consistent — fine for
// metrics.
func (h *Hist) Snapshot() ([]uint64, uint64) {
	out := make([]uint64, Buckets)
	for i := range out {
		out[i] = h.counts[i].Load()
	}
	return out, h.sumNS.Load()
}

// BucketUpperNS returns bucket i's inclusive upper bound in nanoseconds
// (the last bucket is unbounded and reports +Inf seconds in the
// Prometheus rendering).
func BucketUpperNS(i int) uint64 {
	return uint64(BaseNS) << uint(i)
}

// Quantile estimates quantile q (0..1) from a snapshot's bucket counts,
// returning the upper bound of the bucket containing the q-th observation
// — a conservative (over-)estimate, which is the right direction for
// asserting p99 bounds. Returns 0 when the histogram is disabled or
// empty.
func Quantile(counts []uint64, q float64) time.Duration {
	if len(counts) == 0 || math.IsNaN(q) {
		return 0
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			return time.Duration(BucketUpperNS(i))
		}
	}
	return time.Duration(BucketUpperNS(len(counts) - 1))
}
