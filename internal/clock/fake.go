package clock

import (
	"sync"
	"time"
)

// Fake is a deterministic Clock for tests. Time stands still until Advance
// moves it; Advance fires every timer whose deadline falls inside the step,
// in (deadline, creation-order) order, setting Now to each timer's deadline
// while it fires so callbacks observe the time they were scheduled for.
//
// Channel timers (NewTimer, NewTicker) deliver with a buffered, non-blocking
// send, matching the standard library: a receiver that has not drained the
// previous delivery loses the new one. AfterFunc callbacks run synchronously
// in the advancing goroutine, outside the Fake's lock, so a callback may
// call back into the Fake (Reset, Stop, NewTimer, ...) freely — but a
// callback that re-arms its own timer to fire within the remaining step will
// fire again in the same Advance.
type Fake struct {
	mu     sync.Mutex
	now    time.Time
	seq    uint64
	timers []*fakeTimer
}

// NewFake returns a Fake whose Now is start.
func NewFake(start time.Time) *Fake {
	return &Fake{now: start}
}

// Now returns the fake's current time.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Pending returns the number of armed timers (including tickers). Tests use
// it to wait until some other goroutine has scheduled its wakeup before
// advancing past it.
func (f *Fake) Pending() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, t := range f.timers {
		if t.active {
			n++
		}
	}
	return n
}

// Sleep blocks until the clock has been advanced d past the current time.
func (f *Fake) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	t := f.NewTimer(d)
	<-t.C()
}

// NewTimer returns a one-shot timer firing when the clock advances d.
func (f *Fake) NewTimer(d time.Duration) Timer {
	return f.newTimer(d, 0, nil)
}

// NewTicker returns a ticker firing every d of advanced time.
func (f *Fake) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("clock: non-positive ticker period")
	}
	return fakeTicker{f.newTimer(d, d, nil)}
}

// fakeTicker narrows fakeTimer to the Ticker surface (Stop returns nothing).
type fakeTicker struct{ t *fakeTimer }

func (t fakeTicker) C() <-chan time.Time { return t.t.ch }
func (t fakeTicker) Stop()               { t.t.Stop() }

// AfterFunc returns a timer that runs fn when the clock advances d.
func (f *Fake) AfterFunc(d time.Duration, fn func()) Timer {
	return f.newTimer(d, 0, fn)
}

func (f *Fake) newTimer(d, period time.Duration, fn func()) *fakeTimer {
	f.mu.Lock()
	defer f.mu.Unlock()
	t := &fakeTimer{
		f:      f,
		when:   f.now.Add(d),
		seq:    f.seq,
		period: period,
		fn:     fn,
		active: true,
		queued: true,
	}
	f.seq++
	if fn == nil {
		t.ch = make(chan time.Time, 1)
	}
	f.timers = append(f.timers, t)
	return t
}

// Advance moves the clock forward by d, firing due timers along the way.
// It returns once every timer with a deadline in [now, now+d] has fired and
// the clock reads now+d.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	target := f.now.Add(d)
	for {
		next := f.nextDueLocked(target)
		if next == nil {
			break
		}
		if next.when.After(f.now) {
			f.now = next.when
		}
		if next.period > 0 {
			next.when = next.when.Add(next.period)
			next.seq = f.seq
			f.seq++
		} else {
			next.active = false
		}
		ch, fn, at := next.ch, next.fn, f.now
		// Fire outside the lock: callbacks may re-enter the Fake.
		f.mu.Unlock()
		if fn != nil {
			fn()
		} else {
			select {
			case ch <- at:
			default:
			}
		}
		f.mu.Lock()
	}
	f.now = target
	f.mu.Unlock()
}

// nextDueLocked returns the armed timer with the earliest deadline not after
// target, ties broken by creation order. Caller holds f.mu.
func (f *Fake) nextDueLocked(target time.Time) *fakeTimer {
	var best *fakeTimer
	live := f.timers[:0]
	for _, t := range f.timers {
		if !t.active {
			t.queued = false // pruned; a later Reset re-appends it
			continue
		}
		live = append(live, t)
		if t.when.After(target) {
			continue
		}
		if best == nil || t.when.Before(best.when) || (t.when.Equal(best.when) && t.seq < best.seq) {
			best = t
		}
	}
	f.timers = live
	return best
}

type fakeTimer struct {
	f      *Fake
	when   time.Time
	seq    uint64
	period time.Duration // > 0 for tickers
	ch     chan time.Time
	fn     func()
	active bool
	queued bool // present in f.timers
}

func (t *fakeTimer) C() <-chan time.Time { return t.ch }

func (t *fakeTimer) Stop() bool {
	t.f.mu.Lock()
	defer t.f.mu.Unlock()
	was := t.active
	t.active = false
	return was
}

func (t *fakeTimer) Reset(d time.Duration) bool {
	t.f.mu.Lock()
	defer t.f.mu.Unlock()
	was := t.active
	t.when = t.f.now.Add(d)
	t.seq = t.f.seq
	t.f.seq++
	t.active = true
	if !t.queued {
		t.queued = true
		t.f.timers = append(t.f.timers, t)
	}
	return was
}
