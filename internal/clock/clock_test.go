package clock

import (
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)

func TestFakeNowAdvances(t *testing.T) {
	f := NewFake(t0)
	if got := f.Now(); !got.Equal(t0) {
		t.Fatalf("Now = %v, want %v", got, t0)
	}
	f.Advance(3 * time.Second)
	if got, want := f.Now(), t0.Add(3*time.Second); !got.Equal(want) {
		t.Fatalf("Now after Advance = %v, want %v", got, want)
	}
}

// TestFakeTimerOrdering pins the firing order: deadlines ascending, ties
// broken by creation order, regardless of the order timers were created in.
func TestFakeTimerOrdering(t *testing.T) {
	f := NewFake(t0)
	var order []string
	add := func(name string, d time.Duration) {
		f.AfterFunc(d, func() { order = append(order, name) })
	}
	add("c30", 30*time.Millisecond)
	add("a10", 10*time.Millisecond)
	add("tie1", 20*time.Millisecond)
	add("tie2", 20*time.Millisecond)
	f.Advance(50 * time.Millisecond)
	want := []string{"a10", "tie1", "tie2", "c30"}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
}

// TestFakeAdvancePastMultipleTimers checks that one Advance stepping past
// several deadlines fires them all, and that each callback observes the
// clock at its own deadline, not the final target.
func TestFakeAdvancePastMultipleTimers(t *testing.T) {
	f := NewFake(t0)
	var seen []time.Time
	for _, d := range []time.Duration{10, 20, 40} {
		f.AfterFunc(d*time.Millisecond, func() { seen = append(seen, f.Now()) })
	}
	f.Advance(time.Second)
	if len(seen) != 3 {
		t.Fatalf("fired %d timers, want 3", len(seen))
	}
	for i, d := range []time.Duration{10, 20, 40} {
		if want := t0.Add(d * time.Millisecond); !seen[i].Equal(want) {
			t.Fatalf("callback %d saw Now=%v, want %v", i, seen[i], want)
		}
	}
	if got, want := f.Now(), t0.Add(time.Second); !got.Equal(want) {
		t.Fatalf("final Now = %v, want %v", got, want)
	}
}

func TestFakeTimerChannelAndStop(t *testing.T) {
	f := NewFake(t0)
	tm := f.NewTimer(10 * time.Millisecond)
	stopped := f.NewTimer(10 * time.Millisecond)
	if !stopped.Stop() {
		t.Fatal("Stop on pending timer returned false")
	}
	f.Advance(20 * time.Millisecond)
	select {
	case at := <-tm.C():
		if want := t0.Add(10 * time.Millisecond); !at.Equal(want) {
			t.Fatalf("delivered %v, want %v", at, want)
		}
	default:
		t.Fatal("timer did not deliver")
	}
	select {
	case <-stopped.C():
		t.Fatal("stopped timer delivered")
	default:
	}
	if tm.Stop() {
		t.Fatal("Stop on fired timer returned true")
	}
}

func TestFakeTimerReset(t *testing.T) {
	f := NewFake(t0)
	tm := f.NewTimer(10 * time.Millisecond)
	f.Advance(15 * time.Millisecond)
	<-tm.C()
	if tm.Reset(10 * time.Millisecond) {
		t.Fatal("Reset on fired timer returned true")
	}
	f.Advance(5 * time.Millisecond)
	select {
	case <-tm.C():
		t.Fatal("reset timer fired early")
	default:
	}
	f.Advance(5 * time.Millisecond)
	select {
	case <-tm.C():
	default:
		t.Fatal("reset timer did not fire at its new deadline")
	}
}

func TestFakeTicker(t *testing.T) {
	f := NewFake(t0)
	tk := f.NewTicker(10 * time.Millisecond)
	defer tk.Stop()
	for i := 0; i < 3; i++ {
		f.Advance(10 * time.Millisecond)
		select {
		case <-tk.C():
		default:
			t.Fatalf("tick %d not delivered", i)
		}
	}
	tk.Stop()
	f.Advance(50 * time.Millisecond)
	select {
	case <-tk.C():
		t.Fatal("stopped ticker delivered")
	default:
	}
}

func TestFakeSleepWakesOnAdvance(t *testing.T) {
	f := NewFake(t0)
	done := make(chan struct{})
	go func() {
		f.Sleep(100 * time.Millisecond)
		close(done)
	}()
	// Wait for the sleeper to register its timer, then release it.
	for f.Pending() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	f.Advance(100 * time.Millisecond)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Sleep did not wake after Advance")
	}
	f.Sleep(0) // non-positive sleeps return immediately
}

// TestFakeConcurrentAdvanceNow is the race-detector test: timers are
// created, read, stopped, and fired while other goroutines advance and read
// the clock.
func TestFakeConcurrentAdvanceNow(t *testing.T) {
	f := NewFake(t0)
	var fired sync.Map
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch i % 4 {
				case 0:
					f.Advance(time.Millisecond)
				case 1:
					_ = f.Now()
				case 2:
					id := g*1000 + i
					f.AfterFunc(time.Duration(i%7)*time.Millisecond, func() { fired.Store(id, true) })
				default:
					tm := f.NewTimer(time.Duration(i%5) * time.Millisecond)
					tm.Stop()
				}
			}
		}(g)
	}
	wg.Wait()
	f.Advance(time.Second) // drain whatever is still pending
}

func TestSystemClock(t *testing.T) {
	c := System()
	before := c.Now()
	tm := c.NewTimer(time.Millisecond)
	select {
	case <-tm.C():
	case <-time.After(5 * time.Second):
		t.Fatal("system timer did not fire")
	}
	fired := make(chan struct{})
	af := c.AfterFunc(time.Millisecond, func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("system AfterFunc did not fire")
	}
	af.Stop()
	tk := c.NewTicker(time.Millisecond)
	select {
	case <-tk.C():
	case <-time.After(5 * time.Second):
		t.Fatal("system ticker did not tick")
	}
	tk.Stop()
	c.Sleep(time.Millisecond)
	if c.Now().Before(before) {
		t.Fatal("system clock went backwards")
	}
}
