// Package clock abstracts time behind an injectable interface so every
// temporal behavior in the service — TTL expiry, sweep pacing, overload
// deadlines, repartition intervals — can run on a deterministic fake in
// tests. The real implementation (System) is a thin veneer over package
// time; the fake (Fake) advances only when told to, firing pending timers
// in deadline order, so a test can drive hours of simulated time in
// microseconds and observe every intermediate state.
package clock

import "time"

// Clock is the time source. Two implementations exist: System (wall clock)
// and Fake (manually advanced). All methods are safe for concurrent use.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep blocks for d. On a Fake it blocks until another goroutine
	// advances the clock past the wakeup.
	Sleep(d time.Duration)
	// NewTimer returns a Timer that delivers the time on its channel after d.
	NewTimer(d time.Duration) Timer
	// NewTicker returns a Ticker delivering ticks every d. Panics if d <= 0.
	NewTicker(d time.Duration) Ticker
	// AfterFunc returns a Timer that calls fn after d. On a Fake, fn runs
	// synchronously inside Advance, in the advancing goroutine.
	AfterFunc(d time.Duration, fn func()) Timer
}

// Timer matches the useful surface of time.Timer. Stop and Reset carry the
// standard library's semantics (and caveats) for the return value.
type Timer interface {
	// C returns the delivery channel (nil for AfterFunc timers).
	C() <-chan time.Time
	// Stop deactivates the timer, reporting whether it was still pending.
	Stop() bool
	// Reset re-arms the timer to fire after d, reporting whether it was
	// still pending.
	Reset(d time.Duration) bool
}

// Ticker matches the useful surface of time.Ticker.
type Ticker interface {
	C() <-chan time.Time
	Stop()
}

// System returns the real clock backed by package time.
func System() Clock { return systemClock{} }

type systemClock struct{}

func (systemClock) Now() time.Time                 { return time.Now() }
func (systemClock) Sleep(d time.Duration)          { time.Sleep(d) }
func (systemClock) NewTimer(d time.Duration) Timer { return systemTimer{time.NewTimer(d)} }
func (systemClock) NewTicker(d time.Duration) Ticker {
	return systemTicker{time.NewTicker(d)}
}
func (systemClock) AfterFunc(d time.Duration, fn func()) Timer {
	return systemTimer{time.AfterFunc(d, fn)}
}

type systemTimer struct{ t *time.Timer }

func (t systemTimer) C() <-chan time.Time        { return t.t.C }
func (t systemTimer) Stop() bool                 { return t.t.Stop() }
func (t systemTimer) Reset(d time.Duration) bool { return t.t.Reset(d) }

type systemTicker struct{ t *time.Ticker }

func (t systemTicker) C() <-chan time.Time { return t.t.C }
func (t systemTicker) Stop()               { t.t.Stop() }
