// Package core implements the Vantage cache-partitioning controller, the
// primary contribution of the paper (§3 and §4).
//
// Vantage divides the cache into a managed region, which is partitioned, and
// a small unmanaged region that absorbs evictions and partition outgrowth
// (§3.3). Partition sizes are maintained by matching each partition's
// insertion rate (churn) with its demotion rate (§3.4): on every replacement
// the controller checks all candidates and demotes the ones below their
// partition's aperture into the unmanaged region, then evicts the oldest
// unmanaged candidate. The practical controller (§4) derives apertures with
// negative feedback (feedback-based aperture control) and picks demotion
// victims without tracking eviction priorities (setpoint-based demotions),
// using only 8/16-bit registers per partition — the state of the paper's
// Fig 4.
//
// Besides the practical controller, the package implements the two
// validation configurations of §6.2 (perfect-aperture control backed by
// exact priority tracking) and the Vantage-DRRIP variant where per-partition
// setpoint RRPVs replace setpoint timestamps.
package core

import (
	"fmt"

	"vantage/internal/cache"
	"vantage/internal/ctrl"
	"vantage/internal/hash"
	"vantage/internal/stats"
)

// Mode selects the controller variant.
type Mode int

const (
	// ModeSetpoint is the practical controller of §4: feedback-based
	// aperture control with setpoint-based demotions over coarse-timestamp
	// LRU. This is the configuration the paper evaluates as "Vantage".
	ModeSetpoint Mode = iota
	// ModePerfectAperture is the §6.2 validation configuration: the same
	// feedback transfer function (Eq 7) but demotions use exact eviction
	// priorities (perfect knowledge) instead of setpoints.
	ModePerfectAperture
	// ModeRRIP is Vantage-DRRIP (§6.2): per-partition setpoint RRPVs over
	// 3-bit re-reference prediction values, with per-partition dynamic
	// SRRIP/BRRIP insertion dueling.
	ModeRRIP
	// ModeOnePerEviction is the §3.3 ablation: instead of demoting on the
	// average with an aperture, every replacement demotes exactly the
	// single best candidate from an over-target partition. Its demotion
	// priorities follow Eq 2's distribution (Fig 2b) — markedly worse
	// associativity than the on-average discipline.
	ModeOnePerEviction
)

// String returns the variant name.
func (m Mode) String() string {
	switch m {
	case ModeSetpoint:
		return "Vantage"
	case ModePerfectAperture:
		return "Vantage-Perfect"
	case ModeRRIP:
		return "Vantage-DRRIP"
	case ModeOnePerEviction:
		return "Vantage-OnePerEvict"
	}
	return "Vantage-?"
}

// Config configures a Vantage controller.
type Config struct {
	// Partitions is the number of partitions (excluding the unmanaged
	// region).
	Partitions int
	// UnmanagedFrac is u, the fraction of the cache left unmanaged. The
	// paper's default evaluation setting is 0.05 with Z4/52 (§6.1).
	UnmanagedFrac float64
	// AMax is the maximum aperture (paper: 0.4–0.5).
	AMax float64
	// Slack is the feedback slack (paper: 0.1).
	Slack float64
	// Mode selects the controller variant (default ModeSetpoint).
	Mode Mode
	// Seed seeds the BRRIP bimodal throttle in ModeRRIP.
	Seed uint64
}

// thresholdEntries is the size of the demotion-thresholds lookup table
// (paper Fig 4: 8 entries).
const thresholdEntries = 8

// candsPerAdjust is c, the candidates seen per partition between setpoint
// adjustments; 256 matches the paper's 8-bit CandsSeen counter.
const candsPerAdjust = 256

// partState is the per-partition controller state of the paper's Fig 4.
// Registers are modeled at their architectural widths where the width has
// semantic effect (8-bit timestamps and candidate counters wrap).
//
// Field order is part of the hot-path contract: the demotion scan of replace
// reads currentTS/setpointTS/candsSeen/actual/target (and on a demotion
// candsDemoted/demotedLines) for every managed candidate — 52 per miss on
// the paper's zcache — so those fields lead the struct and share its first
// cache line; the cold threshold tables and instrumentation counters follow.
type partState struct {
	currentTS    uint8
	setpointTS   uint8
	candsSeen    uint8
	setpointRRPV uint8  // ModeRRIP state
	brrip        bool   // ModeRRIP: current insertion policy
	extPolicy    bool   // ModeRRIP: insertion policy set externally (UMON-RRIP)
	psel         int16  // ModeRRIP: per-partition SRRIP/BRRIP duel selector
	actual       int
	target       int
	accessCtr    int
	candsDemoted int
	demotedLines uint64
	thrSize      [thresholdEntries]int
	thrDems      [thresholdEntries]int
	// Churn measurement (insertions since last Stats call), for reporting
	// and for tests of Eq 4 behavior.
	insertions uint64
	// Lifetime per-partition counters (not architectural state; for
	// instrumentation).
	hits, misses, promotedLines uint64
}

// lineMeta is one line's controller state: the owning partition (partition
// index, unmanagedID, or -1 when none) and the replacement state (coarse
// timestamp, plus RRPV in ModeRRIP). The three fields share a four-byte
// record because the miss path reads all of them for every replacement
// candidate — 52 per miss on the paper's zcache — and split arrays would
// cost a cache miss each.
//
// Invariant: part == -1 exactly when the slot's line is invalid. It holds
// because every transition is paired — New starts all-invalid/-1, installs
// set the owner, relocations run through the move hook (which claims dst and
// clears src), and evictions clear the victim's owner just before the array
// overwrites the slot. Nothing else invalidates lines under a controller:
// deletion in the serving layer leaves the tag to age out, and expiry runs
// through DemoteExpired. The setpoint scan relies on this to detect free
// slots from the metadata word alone, without touching the line store.
type lineMeta struct {
	part int16
	ts   uint8
	rrpv uint8
}

// Controller is a Vantage cache controller implementing ctrl.Controller.
type Controller struct {
	arr   cache.Array
	marr  cache.MixedArray // arr's mixed fast path, or nil
	lines []cache.Line     // arr's backing line store, or nil (see cache.LinesAccessor)
	cfg   Config
	name  string

	parts []partState
	// Per-line state, packed so the candidate scan of replace touches one
	// word per candidate instead of three parallel arrays.
	meta []lineMeta

	unmanagedID     int16
	unmanagedTS     uint8
	unmanagedCtr    int
	unmanagedSize   int
	unmanagedTarget int

	candBuf []cache.LineID
	// metaBuf is scanSetpoint's gather scratch: the candidates' metadata
	// words are batch-copied first so the scattered loads overlap, then the
	// scan runs over the dense copy (writes still go through meta).
	metaBuf []lineMeta
	rng     *hash.Rand

	// Exact priority tracking: per-partition + unmanaged timestamp
	// histograms. Enabled in ModePerfectAperture or when an observer is set.
	track    bool
	quant    []stats.TSQuantiler // len Partitions+1; last is unmanaged
	observer ctrl.EvictionObserver
	duelMask uint64
	duelH    *hash.H3

	// Counters.
	hits, misses, demotions, promotions uint64
	evictions, forcedEvictions          uint64
	setpointAdjusts                     uint64
}

// New returns a Vantage controller over arr.
func New(arr cache.Array, cfg Config) *Controller {
	if cfg.Partitions <= 0 {
		panic("core: need at least one partition")
	}
	if cfg.UnmanagedFrac <= 0 || cfg.UnmanagedFrac >= 1 {
		panic("core: UnmanagedFrac must be in (0,1)")
	}
	if cfg.AMax <= 0 || cfg.AMax > 1 {
		panic("core: AMax must be in (0,1]")
	}
	if cfg.Slack <= 0 {
		panic("core: Slack must be positive")
	}
	n := arr.NumLines()
	c := &Controller{
		arr:             arr,
		cfg:             cfg,
		name:            cfg.Mode.String(),
		parts:           make([]partState, cfg.Partitions),
		meta:            make([]lineMeta, n),
		unmanagedID:     int16(cfg.Partitions),
		unmanagedTarget: int(cfg.UnmanagedFrac * float64(n)),
		rng:             hash.NewRand(cfg.Seed ^ 0xa17a9e),
		duelMask:        63,
		duelH:           hash.NewH3(16, hash.Mix64(cfg.Seed^0x7a91)),
	}
	c.marr, _ = arr.(cache.MixedArray)
	if la, ok := arr.(cache.LinesAccessor); ok {
		c.lines = la.Lines()
	}
	if c.unmanagedTarget < 1 {
		c.unmanagedTarget = 1
	}
	for i := range c.meta {
		c.meta[i].part = -1
	}
	for i := range c.parts {
		p := &c.parts[i]
		p.setpointTS = p.currentTS - 128 // mid-range keep window; feedback converges
		p.setpointRRPV = 7
		p.brrip = false
	}
	c.track = cfg.Mode == ModePerfectAperture
	if c.track {
		c.quant = make([]stats.TSQuantiler, cfg.Partitions+1)
	}
	// Give every partition an equal initial target over the managed region.
	managed := n - c.unmanagedTarget
	targets := make([]int, cfg.Partitions)
	for i := range targets {
		targets[i] = managed / cfg.Partitions
	}
	c.SetTargets(targets)
	if rel, ok := arr.(cache.Relocator); ok {
		rel.SetMoveHook(func(src, dst cache.LineID) {
			c.meta[dst] = c.meta[src]
			c.meta[src].part = -1
		})
	}
	return c
}

// Name implements ctrl.Controller.
func (c *Controller) Name() string { return c.name }

// Array implements ctrl.Controller.
func (c *Controller) Array() cache.Array { return c.arr }

// NumPartitions implements ctrl.Controller.
func (c *Controller) NumPartitions() int { return c.cfg.Partitions }

// Size implements ctrl.Controller.
func (c *Controller) Size(part int) int { return c.parts[part].actual }

// Target returns the current target size of partition part, in lines.
func (c *Controller) Target(part int) int { return c.parts[part].target }

// UnmanagedSize returns the current number of lines in the unmanaged region.
func (c *Controller) UnmanagedSize() int { return c.unmanagedSize }

// SetEvictionObserver implements ctrl.Observable. Setting an observer
// enables exact priority tracking (histograms per partition), which the
// hardware would not have; it is measurement-only and does not change
// control decisions in ModeSetpoint.
func (c *Controller) SetEvictionObserver(fn ctrl.EvictionObserver) {
	c.observer = fn
	if fn != nil && c.quant == nil {
		c.quant = make([]stats.TSQuantiler, c.cfg.Partitions+1)
		// Populate from current contents.
		for id := 0; id < c.arr.NumLines(); id++ {
			if m := &c.meta[id]; m.part >= 0 {
				c.quant[m.part].Add(m.ts)
			}
		}
	}
	c.track = c.cfg.Mode == ModePerfectAperture || fn != nil
}

// SetTargets implements ctrl.Controller: sets the per-partition allocations
// in lines and rebuilds the demotion-thresholds lookup tables (Fig 3c).
// Deleting a partition is setting its target to 0 (§3.4): its aperture
// becomes 1.0 and its lines drain into the unmanaged region.
func (c *Controller) SetTargets(targets []int) {
	if len(targets) != c.cfg.Partitions {
		panic(fmt.Sprintf("core: SetTargets got %d targets for %d partitions", len(targets), c.cfg.Partitions))
	}
	for i, t := range targets {
		if t < 0 {
			panic("core: negative target")
		}
		p := &c.parts[i]
		p.target = t
		// Fig 3c: entry k covers sizes from target·(1+slack·k/(E-1)) and
		// prescribes c·Amax·(k+1)/E demotions per c candidates.
		for k := 0; k < thresholdEntries; k++ {
			p.thrSize[k] = int(float64(t) * (1 + c.cfg.Slack*float64(k)/float64(thresholdEntries-1)))
			p.thrDems[k] = int(candsPerAdjust * c.cfg.AMax * float64(k+1) / float64(thresholdEntries))
		}
	}
}

// Targets returns a copy of the current target allocations.
func (c *Controller) Targets() []int {
	out := make([]int, c.cfg.Partitions)
	for i := range c.parts {
		out[i] = c.parts[i].target
	}
	return out
}

// Counters reports the controller's event counts.
type Counters struct {
	Hits, Misses          uint64
	Demotions, Promotions uint64
	// Evictions counts replacements that evicted a valid line; of those,
	// ForcedManagedEvictions found no unmanaged candidate (§4.3, Fig 9b).
	Evictions, ForcedManagedEvictions uint64
	SetpointAdjusts                   uint64
}

// Counters returns the accumulated event counts.
func (c *Controller) Counters() Counters {
	return Counters{
		Hits: c.hits, Misses: c.misses,
		Demotions: c.demotions, Promotions: c.promotions,
		Evictions: c.evictions, ForcedManagedEvictions: c.forcedEvictions,
		SetpointAdjusts: c.setpointAdjusts,
	}
}

// PartitionCounters are one partition's lifetime event counts.
type PartitionCounters struct {
	Hits, Misses          uint64
	Demotions, Promotions uint64
}

// PartitionCounters returns partition part's accumulated event counts.
func (c *Controller) PartitionCounters(part int) PartitionCounters {
	p := &c.parts[part]
	return PartitionCounters{
		Hits: p.hits, Misses: p.misses,
		Demotions: p.demotedLines, Promotions: p.promotedLines,
	}
}

// SnapshotPartitions implements ctrl.Snapshotter: every partition's size,
// target, and lifetime counters in one call (callers serialize with Access).
func (c *Controller) SnapshotPartitions(dst []ctrl.PartitionSnapshot) []ctrl.PartitionSnapshot {
	for i := range c.parts {
		p := &c.parts[i]
		dst = append(dst, ctrl.PartitionSnapshot{
			Size: p.actual, Target: p.target,
			Hits: p.hits, Misses: p.misses,
			Demotions: p.demotedLines, Promotions: p.promotedLines,
		})
	}
	return dst
}

// Churn returns and resets the insertion count of partition part since the
// last call; allocation policies may use it as the churn estimate Ci.
func (c *Controller) Churn(part int) uint64 {
	v := c.parts[part].insertions
	c.parts[part].insertions = 0
	return v
}

// Aperture reports the effective aperture the feedback controller is
// applying for partition part (Eq 7 evaluated at the current size); useful
// for tests and instrumentation.
func (c *Controller) Aperture(part int) float64 {
	p := &c.parts[part]
	if p.target == 0 {
		return 1
	}
	return feedbackAperture(float64(p.actual), float64(p.target), c.cfg.AMax, c.cfg.Slack)
}

// KeepWindow exposes partition part's setpoint keep-window width, in
// coarse-timestamp units (test/instrumentation hook).
func (c *Controller) KeepWindow(part int) uint8 { return c.parts[part].keepWindow() }

// InsertionPolicy reports whether partition part currently inserts with
// BRRIP (ModeRRIP only).
func (c *Controller) InsertionPolicy(part int) (brrip bool) { return c.parts[part].brrip }

var _ ctrl.Controller = (*Controller)(nil)
var _ ctrl.MixedController = (*Controller)(nil)
var _ ctrl.Observable = (*Controller)(nil)
var _ ctrl.Snapshotter = (*Controller)(nil)
