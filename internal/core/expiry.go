// Expiry integration: the service layer's TTL subsystem reports lines whose
// values have expired, and the controller retires them through the demotion
// machinery rather than a special invalidation path. Demotion is the right
// primitive because it only changes region ownership — the line still leaves
// the array through the ordinary replacement process, so every unmanaged-
// region invariant (its size feedback, its timestamp clock, its eviction
// ordering) keeps holding; the paper's §3.4 deletion idiom applied at line
// rather than partition granularity.

package core

import (
	"vantage/internal/cache"
	"vantage/internal/hash"
)

// DemoteExpired moves the line holding addr into the unmanaged region,
// backdated to maximum age so it is the replacement process's preferred
// victim, and reports whether the line was present. The owning partition's
// occupancy drops immediately, which is the point: a mass expiry shrinks the
// partition's actual size at sweep speed instead of churn speed, and the
// next repartition sees occupancy that reflects live data.
//
// Unlike demote (the §4 churn path), this does not count toward the
// partition's candsDemoted: expired lines never pass through the candidate
// scan, so charging them to the setpoint feedback loop would bias the
// aperture toward fewer churn demotions than the target requires.
func (c *Controller) DemoteExpired(addr uint64) bool {
	var (
		id cache.LineID
		ok bool
	)
	if c.marr != nil {
		id, ok = c.marr.LookupMixed(addr, hash.Mix64(addr))
	} else {
		id, ok = c.arr.Lookup(addr)
	}
	if !ok {
		return false
	}
	m := &c.meta[id]
	owner := m.part
	if owner < 0 {
		return false
	}
	if owner == c.unmanagedID {
		// Already unmanaged (demoted by churn since it expired): re-stale it
		// so it still evicts first.
		if c.track {
			c.quant[c.unmanagedID].Remove(m.ts)
		}
		m.ts = c.unmanagedTS + 1
		if c.track {
			c.quant[c.unmanagedID].Add(m.ts)
		}
		return true
	}
	q := int(owner)
	p := &c.parts[q]
	if c.observer != nil {
		c.observer(q, c.quant[q].EvictionPriority(m.ts, p.currentTS), true)
	}
	if c.track {
		c.quant[q].Remove(m.ts)
	}
	p.actual--
	p.demotedLines++
	c.demotions++
	c.unmanagedSize++
	c.unmanagedTick()
	// Set the timestamp after the tick: unmanagedTS+1 reads as age 255 (the
	// 8-bit clock's maximum) to the candidate scan, making the line the top
	// unmanaged eviction candidate until the clock wraps past it.
	m.part = c.unmanagedID
	m.ts = c.unmanagedTS + 1
	if c.track {
		c.quant[c.unmanagedID].Add(m.ts)
	}
	return true
}
