package core

import (
	"testing"

	"vantage/internal/analytic"
	"vantage/internal/cache"
	"vantage/internal/ctrl"
	"vantage/internal/hash"
)

// newTestController builds a Vantage controller on a Z4/52 zcache with
// numLines lines and the paper's default knobs.
func newTestController(numLines, parts int, mode Mode) *Controller {
	arr := cache.NewZCache(numLines, 4, 52, 0xc0ffee)
	return New(arr, Config{
		Partitions:    parts,
		UnmanagedFrac: 0.10,
		AMax:          0.5,
		Slack:         0.1,
		Mode:          mode,
		Seed:          7,
	})
}

// drive issues n accesses per partition round-robin; each partition streams
// uniformly over its own working set of wsLines lines (disjoint address
// spaces, as in the paper's multiprogrammed mixes).
func drive(c *Controller, rng *hash.Rand, wsLines []int, n int) {
	parts := c.NumPartitions()
	for i := 0; i < n; i++ {
		for p := 0; p < parts; p++ {
			addr := uint64(p)<<40 | uint64(rng.Intn(wsLines[p]))
			c.Access(addr, p)
		}
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	arr := cache.NewZCache(256, 4, 16, 1)
	bad := []Config{
		{Partitions: 0, UnmanagedFrac: 0.1, AMax: 0.5, Slack: 0.1},
		{Partitions: 2, UnmanagedFrac: 0, AMax: 0.5, Slack: 0.1},
		{Partitions: 2, UnmanagedFrac: 1.0, AMax: 0.5, Slack: 0.1},
		{Partitions: 2, UnmanagedFrac: 0.1, AMax: 0, Slack: 0.1},
		{Partitions: 2, UnmanagedFrac: 0.1, AMax: 1.5, Slack: 0.1},
		{Partitions: 2, UnmanagedFrac: 0.1, AMax: 0.5, Slack: 0},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d did not panic", i)
				}
			}()
			New(arr, cfg)
		}()
	}
}

func TestModeNames(t *testing.T) {
	if ModeSetpoint.String() != "Vantage" ||
		ModePerfectAperture.String() != "Vantage-Perfect" ||
		ModeRRIP.String() != "Vantage-DRRIP" ||
		ModeOnePerEviction.String() != "Vantage-OnePerEvict" {
		t.Fatal("mode names wrong")
	}
	if Mode(42).String() != "Vantage-?" {
		t.Fatal("unknown mode name wrong")
	}
}

func TestHitAfterInsert(t *testing.T) {
	c := newTestController(1024, 2, ModeSetpoint)
	r := c.Access(0x1234, 0)
	if r.Hit {
		t.Fatal("first access hit")
	}
	r = c.Access(0x1234, 0)
	if !r.Hit {
		t.Fatal("second access missed")
	}
	if c.Size(0) != 1 || c.Size(1) != 0 {
		t.Fatalf("sizes: %d %d", c.Size(0), c.Size(1))
	}
	cnt := c.Counters()
	if cnt.Hits != 1 || cnt.Misses != 1 {
		t.Fatalf("counters: %+v", cnt)
	}
}

func TestSetTargetsValidation(t *testing.T) {
	c := newTestController(1024, 2, ModeSetpoint)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("wrong target count did not panic")
			}
		}()
		c.SetTargets([]int{1})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative target did not panic")
			}
		}()
		c.SetTargets([]int{-1, 5})
	}()
}

func TestTargetsRoundTrip(t *testing.T) {
	c := newTestController(1024, 3, ModeSetpoint)
	c.SetTargets([]int{100, 200, 300})
	got := c.Targets()
	if got[0] != 100 || got[1] != 200 || got[2] != 300 {
		t.Fatalf("targets: %v", got)
	}
	if c.Target(1) != 200 {
		t.Fatalf("Target(1) = %d", c.Target(1))
	}
}

// TestSizeAccountingInvariant checks the fundamental bookkeeping identity:
// the per-partition actual sizes plus the unmanaged size equal the number of
// valid lines in the array, under heavy randomized traffic with relocations.
func TestSizeAccountingInvariant(t *testing.T) {
	for _, mode := range []Mode{ModeSetpoint, ModePerfectAperture, ModeRRIP} {
		c := newTestController(1024, 4, mode)
		rng := hash.NewRand(11)
		drive(c, rng, []int{400, 600, 150, 800}, 3000)
		valid := 0
		for id := 0; id < c.Array().NumLines(); id++ {
			if c.Array().Line(cache.LineID(id)).Valid {
				valid++
			}
		}
		total := c.UnmanagedSize()
		for p := 0; p < 4; p++ {
			total += c.Size(p)
		}
		if total != valid {
			t.Fatalf("mode %v: accounted %d lines, array holds %d", mode, total, valid)
		}
	}
}

// TestPartOfConsistency cross-checks the partOf map against the sizes.
func TestPartOfConsistency(t *testing.T) {
	c := newTestController(512, 3, ModeSetpoint)
	rng := hash.NewRand(13)
	drive(c, rng, []int{300, 300, 300}, 4000)
	counts := make([]int, 4) // 3 partitions + unmanaged
	for id := 0; id < c.Array().NumLines(); id++ {
		if c.Array().Line(cache.LineID(id)).Valid {
			o := c.meta[id].part
			if o < 0 {
				t.Fatal("valid line with no owner")
			}
			counts[o]++
		} else if c.meta[id].part >= 0 {
			t.Fatal("invalid line with an owner")
		}
	}
	for p := 0; p < 3; p++ {
		if counts[p] != c.Size(p) {
			t.Fatalf("partition %d: counted %d, Size reports %d", p, counts[p], c.Size(p))
		}
	}
	if counts[3] != c.UnmanagedSize() {
		t.Fatalf("unmanaged: counted %d, reported %d", counts[3], c.UnmanagedSize())
	}
}

// TestSizesTrackTargets is the paper's headline property (Fig 8): with
// churn-based management, actual partition sizes stay near their targets
// even with very different churns, and partitions never starve below target
// while over-target traffic runs.
func TestSizesTrackTargets(t *testing.T) {
	c := newTestController(4096, 4, ModeSetpoint)
	targets := []int{2400, 800, 300, 186} // sums to ~90% of 4096
	c.SetTargets(targets)
	rng := hash.NewRand(17)
	// Partition 0: large WS (misses often); 1: medium; 2: small, hot;
	// 3: streaming (huge WS).
	ws := []int{2400, 800, 280, 1 << 20}
	drive(c, rng, ws, 30000)
	for p := 0; p < 4; p++ {
		size, target := c.Size(p), targets[p]
		// Allow the slack band plus the minimum-stable-size effect for the
		// small high-churn partitions: bound deviation at 25% + 60 lines.
		hi := int(float64(target)*1.25) + 60
		if size > hi {
			t.Errorf("partition %d: size %d exceeds target %d beyond tolerance", p, size, target)
		}
	}
	// The cache must be fully utilized: unmanaged region near its target.
	if um := c.UnmanagedSize(); um < 100 {
		t.Errorf("unmanaged region starved: %d lines", um)
	}
}

// TestIsolation: a quiet partition keeps its lines when a thrashing
// partition runs beside it — Vantage partitions borrow from the unmanaged
// region, not from each other (§3.3). Isolation strength depends on the
// unmanaged fraction (§7): u=5-10% gives moderate isolation (forced
// managed-region evictions at ~1e-2..1e-3 per eviction can still nick idle
// partitions over very long runs), while u=20-25% makes forced evictions
// negligible (Pev = (1-u)^52 ≈ 3e-7) and eliminates interference.
func TestIsolation(t *testing.T) {
	cases := []struct {
		u         float64
		minRetain float64 // fraction of warm size retained after the thrash
	}{
		{0.10, 0.80}, // moderate isolation
		{0.25, 0.99}, // strong isolation
	}
	for _, tc := range cases {
		arr := cache.NewZCache(4096, 4, 52, 0xc0ffee)
		c := New(arr, Config{Partitions: 2, UnmanagedFrac: tc.u, AMax: 0.5, Slack: 0.1, Seed: 7})
		c.SetTargets([]int{1800, int(4096*(1-tc.u)) - 1800})
		rng := hash.NewRand(19)
		// Warm partition 0 with a working set that fits its allocation.
		for i := 0; i < 40000; i++ {
			c.Access(uint64(0)<<40|uint64(rng.Intn(1700)), 0)
		}
		if c.Size(0) < 1500 {
			t.Fatalf("u=%v: partition 0 failed to warm: %d lines", tc.u, c.Size(0))
		}
		// Thrash partition 1 hard; partition 0 gets no accesses at all, so
		// every one of its lines ages to maximum. The first phase lets the
		// unmanaged region fill and the feedback converge (the paper's Fig 9b
		// attributes excess forced evictions to transients); the guarantee is
		// then measured over the steady-state phase.
		for i := 0; i < 50000; i++ {
			c.Access(uint64(1)<<40|uint64(i), 1)
		}
		warmSize := c.Size(0)
		for i := 50000; i < 250000; i++ {
			c.Access(uint64(1)<<40|uint64(i), 1)
		}
		got := c.Size(0)
		if float64(got) < tc.minRetain*float64(warmSize) {
			t.Errorf("u=%v: thrashing neighbor stole lines: partition 0 went %d -> %d (retention %.3f, want >= %.2f)",
				tc.u, warmSize, got, float64(got)/float64(warmSize), tc.minRetain)
		}
	}
}

// TestForcedEvictionsRare: with a properly sized unmanaged region, the
// fraction of evictions forced from the managed region must be small
// (Fig 9b: ~1e-2 for u=5-10%, most workloads far below).
func TestForcedEvictionsRare(t *testing.T) {
	c := newTestController(4096, 4, ModeSetpoint)
	rng := hash.NewRand(23)
	drive(c, rng, []int{1500, 1500, 1 << 18, 700}, 30000)
	cnt := c.Counters()
	if cnt.Evictions == 0 {
		t.Fatal("no evictions at all")
	}
	frac := float64(cnt.ForcedManagedEvictions) / float64(cnt.Evictions)
	if frac > 0.05 {
		t.Fatalf("forced managed evictions %.4f of evictions, want < 0.05 (u=10%%)", frac)
	}
}

// TestPromotionFlow: hitting a demoted line pulls it back into the
// accessor's partition and adjusts both sizes.
func TestPromotionFlow(t *testing.T) {
	c := newTestController(1024, 2, ModeSetpoint)
	c.SetTargets([]int{500, 421})
	rng := hash.NewRand(29)
	drive(c, rng, []int{800, 400}, 8000)
	cnt := c.Counters()
	if cnt.Demotions == 0 {
		t.Fatal("no demotions under over-target traffic")
	}
	if cnt.Promotions == 0 {
		t.Skip("no promotions observed in this run (demoted lines not re-touched)")
	}
}

func TestPromotionDirect(t *testing.T) {
	c := newTestController(1024, 2, ModeSetpoint)
	// Manufacture a promotion: insert a line, demote it by hand via the
	// deletion path, then hit it from partition 1.
	c.Access(0x42, 0)
	id, ok := c.Array().Lookup(0x42)
	if !ok {
		t.Fatal("line missing")
	}
	// Force-demote: mark unmanaged directly through the drain path.
	c.SetTargets([]int{0, 900})
	// Drive partition 1 until the line is demoted or evicted.
	rng := hash.NewRand(31)
	for i := 0; i < 20000 && c.meta[id].part != c.unmanagedID; i++ {
		c.Access(uint64(1)<<40|uint64(rng.Intn(2000)), 1)
		if nid, ok2 := c.Array().Lookup(0x42); ok2 {
			id = nid
		} else {
			t.Skip("line evicted before demotion could be observed")
		}
	}
	if c.meta[id].part != c.unmanagedID {
		t.Fatal("deleted partition's line never demoted")
	}
	um := c.UnmanagedSize()
	r := c.Access(0x42, 1)
	if !r.Hit {
		t.Fatal("promotion access missed")
	}
	if c.UnmanagedSize() != um-1 {
		t.Fatal("promotion did not shrink unmanaged region")
	}
	if c.meta[id].part != 1 {
		t.Fatal("promoted line not owned by accessor")
	}
	if c.Counters().Promotions != 1 {
		t.Fatal("promotion not counted")
	}
}

// TestPartitionDeletion: setting a target to 0 drains the partition (§3.4).
func TestPartitionDeletion(t *testing.T) {
	c := newTestController(2048, 2, ModeSetpoint)
	c.SetTargets([]int{900, 943})
	rng := hash.NewRand(37)
	drive(c, rng, []int{850, 900}, 10000)
	if c.Size(0) < 700 {
		t.Fatalf("partition 0 did not fill: %d", c.Size(0))
	}
	if a := c.Aperture(0); a != 0 && c.Size(0) <= c.Target(0) {
		t.Fatalf("aperture %v with size under target", a)
	}
	c.SetTargets([]int{0, 1843})
	if c.Aperture(0) != 1 {
		t.Fatalf("deleted partition aperture = %v, want 1", c.Aperture(0))
	}
	// Only partition 1 runs now; partition 0 must drain.
	for i := 0; i < 100000; i++ {
		c.Access(uint64(1)<<40|uint64(rng.Intn(1800)), 1)
	}
	if got := c.Size(0); got > 64 {
		t.Fatalf("deleted partition still holds %d lines", got)
	}
}

// TestDownsizeTransient: a downsized partition converges to its new target.
func TestDownsizeTransient(t *testing.T) {
	c := newTestController(4096, 2, ModeSetpoint)
	c.SetTargets([]int{3000, 686})
	rng := hash.NewRand(41)
	drive(c, rng, []int{2900, 650}, 20000)
	before := c.Size(0)
	if before < 2400 {
		t.Fatalf("partition 0 did not fill: %d", before)
	}
	c.SetTargets([]int{1000, 2686})
	drive(c, rng, []int{2900, 2600}, 40000)
	after := c.Size(0)
	if after > 1250 {
		t.Fatalf("downsized partition stuck at %d (target 1000)", after)
	}
	if c.Size(1) < 2200 {
		t.Fatalf("upsized partition did not grow: %d", c.Size(1))
	}
}

// TestPerfectApertureMatchesSetpoint: the §6.2 validation — the practical
// setpoint controller must deliver partition sizes close to the
// perfect-knowledge controller's.
func TestPerfectApertureMatchesSetpoint(t *testing.T) {
	sizes := map[Mode][]int{}
	for _, mode := range []Mode{ModeSetpoint, ModePerfectAperture} {
		c := newTestController(4096, 3, mode)
		c.SetTargets([]int{2000, 1000, 686})
		rng := hash.NewRand(43)
		drive(c, rng, []int{1900, 950, 1 << 18}, 30000)
		sizes[mode] = []int{c.Size(0), c.Size(1), c.Size(2)}
	}
	for p := 0; p < 3; p++ {
		a, b := sizes[ModeSetpoint][p], sizes[ModePerfectAperture][p]
		diff := a - b
		if diff < 0 {
			diff = -diff
		}
		if diff > (a+b)/4 {
			t.Errorf("partition %d: setpoint %d vs perfect %d differ too much", p, a, b)
		}
	}
}

// TestRRIPModeBasics: Vantage-DRRIP keeps sizes near targets too.
func TestRRIPModeBasics(t *testing.T) {
	c := newTestController(4096, 2, ModeRRIP)
	targets := []int{2500, 1186}
	c.SetTargets(targets)
	rng := hash.NewRand(47)
	drive(c, rng, []int{2400, 1 << 18}, 30000)
	for p := 0; p < 2; p++ {
		if c.Size(p) > int(float64(targets[p])*1.3)+60 {
			t.Errorf("partition %d: size %d vs target %d", p, c.Size(p), targets[p])
		}
	}
	// The streaming partition should have settled on BRRIP eventually or at
	// least have a functional selector; just exercise the accessor.
	_ = c.InsertionPolicy(1)
}

// TestDemotionPrioritiesConcentrated: the associativity guarantee. With one
// partition and low churn/size ratio the aperture is small, so demotions
// must hit only lines near the top of the eviction ranking (priority close
// to 1.0) — Fig 8's heat map result.
func TestDemotionPrioritiesConcentrated(t *testing.T) {
	arr := cache.NewZCache(4096, 4, 52, 0xfeed)
	c := New(arr, Config{Partitions: 2, UnmanagedFrac: 0.10, AMax: 0.5, Slack: 0.1, Seed: 3})
	c.SetTargets([]int{1843, 1843})
	var samples []float64
	c.SetEvictionObserver(func(part int, pri float64, dem bool) {
		if dem && part == 0 {
			samples = append(samples, pri)
		}
	})
	rng := hash.NewRand(53)
	// Working sets slightly exceed the targets so both partitions sit just
	// over target and demote continuously at a small aperture.
	drive(c, rng, []int{2100, 2100}, 30000)
	if len(samples) < 500 {
		t.Fatalf("too few demotion samples: %d", len(samples))
	}
	low := 0
	for _, s := range samples {
		if s < 0.7 {
			low++
		}
	}
	frac := float64(low) / float64(len(samples))
	if frac > 0.05 {
		t.Fatalf("%.3f of demotions hit priority < 0.7; want high associativity", frac)
	}
}

// TestKeepWindowResponds: the setpoint feedback must adapt the keep window
// under traffic (it starts mid-range and converges somewhere useful).
func TestKeepWindowResponds(t *testing.T) {
	c := newTestController(2048, 2, ModeSetpoint)
	c.SetTargets([]int{1000, 843})
	start := c.KeepWindow(0)
	rng := hash.NewRand(59)
	drive(c, rng, []int{1200, 800}, 20000)
	if c.Counters().SetpointAdjusts == 0 {
		t.Fatal("setpoint never adjusted")
	}
	if c.KeepWindow(0) == start && c.KeepWindow(1) == start {
		t.Fatal("keep windows never moved")
	}
}

// TestChurnCounter: Churn returns and resets insertion counts.
func TestChurnCounter(t *testing.T) {
	c := newTestController(1024, 2, ModeSetpoint)
	for i := 0; i < 100; i++ {
		c.Access(uint64(i), 0)
	}
	if got := c.Churn(0); got != 100 {
		t.Fatalf("churn = %d, want 100", got)
	}
	if got := c.Churn(0); got != 0 {
		t.Fatalf("churn after reset = %d, want 0", got)
	}
}

// TestObserverTrackingConsistency: enabling the observer mid-run populates
// histograms that stay consistent with partition sizes.
func TestObserverTrackingConsistency(t *testing.T) {
	c := newTestController(1024, 2, ModeSetpoint)
	rng := hash.NewRand(61)
	drive(c, rng, []int{600, 600}, 2000)
	c.SetEvictionObserver(func(part int, pri float64, dem bool) {
		if pri < 0 || pri > 1 {
			t.Fatalf("priority out of range: %v", pri)
		}
	})
	drive(c, rng, []int{600, 600}, 2000)
	for p := 0; p < 2; p++ {
		if got := c.quant[p].Total(); got != c.Size(p) {
			t.Fatalf("partition %d: histogram %d vs size %d", p, got, c.Size(p))
		}
	}
	if got := c.quant[2].Total(); got != c.UnmanagedSize() {
		t.Fatalf("unmanaged histogram %d vs size %d", got, c.UnmanagedSize())
	}
}

// TestWorksOnSetAssociative: Vantage on a hashed set-associative array
// (§6.2, Fig 10) must function, with weaker but real behavior.
func TestWorksOnSetAssociative(t *testing.T) {
	arr := cache.NewSetAssoc(4096, 16, true, 5)
	c := New(arr, Config{Partitions: 2, UnmanagedFrac: 0.10, AMax: 0.5, Slack: 0.1})
	c.SetTargets([]int{2500, 1186})
	rng := hash.NewRand(67)
	for i := 0; i < 30000; i++ {
		c.Access(uint64(0)<<40|uint64(rng.Intn(2400)), 0)
		c.Access(uint64(1)<<40|uint64(i), 1)
	}
	if c.Size(0) > 3200 {
		t.Fatalf("partition 0 uncontrolled on SA16: %d", c.Size(0))
	}
	if c.Size(1) > 2000 {
		t.Fatalf("streaming partition uncontrolled on SA16: %d", c.Size(1))
	}
}

// TestWorksOnRandomCandidates: the idealized array satisfies the uniformity
// assumption exactly; Vantage must hold sizes tightly there.
func TestWorksOnRandomCandidates(t *testing.T) {
	arr := cache.NewRandomCands(4096, 52, 5)
	c := New(arr, Config{Partitions: 2, UnmanagedFrac: 0.10, AMax: 0.5, Slack: 0.1})
	targets := []int{2500, 1186}
	c.SetTargets(targets)
	rng := hash.NewRand(71)
	for i := 0; i < 30000; i++ {
		c.Access(uint64(0)<<40|uint64(rng.Intn(2400)), 0)
		c.Access(uint64(1)<<40|uint64(i), 1)
	}
	for p := 0; p < 2; p++ {
		if c.Size(p) > int(float64(targets[p])*1.25)+60 {
			t.Errorf("partition %d: size %d vs target %d", p, c.Size(p), targets[p])
		}
	}
}

var _ ctrl.Controller = (*Controller)(nil)

// TestOnePerEvictionMatchesEq2 empirically contrasts the two demotion
// disciplines of §3.3 and checks the ablation against Eq 2 quantitatively:
// with R=52 and u=0.1, Eq 2 predicts a fraction
// FM(x) = Σ B(i,52)·x^i of demotions below priority x (≈0.7% below 0.9,
// ≈9% below 0.95), while setpoint-based on-average demotions keep
// essentially everything above 1-A.
func TestOnePerEvictionMatchesEq2(t *testing.T) {
	collect := func(mode Mode) (below07, below09, n float64) {
		arr := cache.NewZCache(4096, 4, 52, 0xfeed)
		c := New(arr, Config{Partitions: 2, UnmanagedFrac: 0.10, AMax: 0.5, Slack: 0.1, Mode: mode, Seed: 3})
		c.SetTargets([]int{1843, 1843})
		c.SetEvictionObserver(func(part int, pri float64, dem bool) {
			if !dem {
				return
			}
			n++
			if pri < 0.7 {
				below07++
			}
			if pri < 0.9 {
				below09++
			}
		})
		rng := hash.NewRand(53)
		drive(c, rng, []int{2100, 2100}, 30000)
		return below07, below09, n
	}
	b7s, _, ns := collect(ModeSetpoint)
	if ns < 500 {
		t.Fatalf("setpoint mode produced only %v demotions", ns)
	}
	if frac := b7s / ns; frac > 0.05 {
		t.Fatalf("setpoint demotions below 0.7: %.3f, want ~0", frac)
	}
	_, b9o, no := collect(ModeOnePerEviction)
	if no < 500 {
		t.Fatalf("one-per-eviction mode produced only %v demotions", no)
	}
	pred := analytic.ManagedCDFOnePerEviction(0.9, 52, 0.1)
	frac := b9o / no
	// The empirical fraction must be the same order as Eq 2's prediction —
	// nonzero (unlike the setpoint discipline at this threshold) and within
	// a factor of ~4 (finite-sample and partition-skew effects).
	if frac < pred/4 || frac > pred*4 {
		t.Fatalf("one-per-eviction demotions below 0.9: %.4f, Eq 2 predicts %.4f", frac, pred)
	}
}

// TestOnePerEvictionStillHoldsSizes: the ablation changes associativity,
// not the size-control property.
func TestOnePerEvictionStillHoldsSizes(t *testing.T) {
	c := newTestController(4096, 2, ModeOnePerEviction)
	targets := []int{2400, 1286}
	c.SetTargets(targets)
	rng := hash.NewRand(61)
	drive(c, rng, []int{2600, 1 << 18}, 30000)
	for p := 0; p < 2; p++ {
		if c.Size(p) > int(float64(targets[p])*1.3)+60 {
			t.Errorf("partition %d: size %d vs target %d", p, c.Size(p), targets[p])
		}
	}
}

// TestPartitionCounters checks the per-partition instrumentation counters.
func TestPartitionCounters(t *testing.T) {
	c := newTestController(1024, 2, ModeSetpoint)
	c.SetTargets([]int{400, 521})
	rng := hash.NewRand(73)
	drive(c, rng, []int{700, 300}, 8000)
	total := c.Counters()
	var hits, misses, dems, proms uint64
	for p := 0; p < 2; p++ {
		pc := c.PartitionCounters(p)
		hits += pc.Hits
		misses += pc.Misses
		dems += pc.Demotions
		proms += pc.Promotions
	}
	if hits != total.Hits || misses != total.Misses {
		t.Fatalf("per-partition hit/miss sums (%d/%d) != totals (%d/%d)",
			hits, misses, total.Hits, total.Misses)
	}
	if dems != total.Demotions || proms != total.Promotions {
		t.Fatalf("per-partition demotion/promotion sums (%d/%d) != totals (%d/%d)",
			dems, proms, total.Demotions, total.Promotions)
	}
	if c.PartitionCounters(0).Demotions == 0 {
		t.Fatal("over-committed partition never demoted")
	}
}
