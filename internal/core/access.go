// The controller access paths: the hit path of §4.3 (timestamp refresh and
// promotions) and the miss path (demotion scan, victim selection, insertion).

package core

import (
	"vantage/internal/cache"
	"vantage/internal/ctrl"
	"vantage/internal/hash"
)

// Access implements ctrl.Controller.
func (c *Controller) Access(addr uint64, part int) ctrl.AccessResult {
	if c.marr != nil {
		return c.AccessMixed(addr, hash.Mix64(addr), part)
	}
	if id, ok := c.arr.Lookup(addr); ok {
		c.hits++
		c.parts[part].hits++
		c.onHit(id, part)
		return ctrl.AccessResult{Hit: true}
	}
	c.misses++
	c.parts[part].misses++
	return c.replace(addr, 0, part)
}

// AccessMixed implements ctrl.MixedController: Access with the Mix64 of addr
// precomputed, so the zcache probes, the candidate walk, and the install
// share one mix instead of re-hashing per layer.
func (c *Controller) AccessMixed(addr, mixed uint64, part int) ctrl.AccessResult {
	if c.marr == nil {
		return c.Access(addr, part)
	}
	if id, ok := c.marr.LookupMixed(addr, mixed); ok {
		c.hits++
		c.parts[part].hits++
		c.onHit(id, part)
		return ctrl.AccessResult{Hit: true}
	}
	c.misses++
	c.parts[part].misses++
	return c.replace(addr, mixed, part)
}

// onHit handles the §4.3 hit path: refresh the timestamp, tick the clock,
// and promote unmanaged lines into the accessor's partition.
func (c *Controller) onHit(id cache.LineID, part int) {
	p := &c.parts[part]
	m := &c.meta[id]
	owner := m.part
	switch {
	case owner == c.unmanagedID:
		// Promotion: the line rejoins the accessor's partition.
		c.promotions++
		p.promotedLines++
		c.unmanagedSize--
		if c.track {
			c.quant[c.unmanagedID].Remove(m.ts)
			c.quant[part].Add(p.currentTS)
		}
		m.part = int16(part)
		p.actual++
	case int(owner) != part:
		// Cross-partition hit (shared line): migrate to the accessor. The
		// paper's workloads have disjoint address spaces, so this is rare.
		if owner >= 0 {
			c.parts[owner].actual--
			if c.track {
				c.quant[owner].Remove(m.ts)
			}
		}
		m.part = int16(part)
		p.actual++
		if c.track {
			c.quant[part].Add(p.currentTS)
		}
	default:
		if c.track {
			c.quant[part].Move(m.ts, p.currentTS)
		}
	}
	m.ts = p.currentTS
	if c.cfg.Mode == ModeRRIP {
		m.rrpv = 0
	}
	c.tick(p)
}

// scanOutcome carries a demotion scan's victim-selection inputs.
type scanOutcome struct {
	freeSlot     cache.LineID
	bestUnman    cache.LineID
	bestDemoted  cache.LineID
	fallback     cache.LineID
	sawUnmanaged bool
}

// replace implements the §4.3 miss path. mixed is the Mix64 of addr; it is
// consulted only when the array has a mixed fast path (c.marr != nil) —
// generic-array callers pass 0.
func (c *Controller) replace(addr, mixed uint64, part int) ctrl.AccessResult {
	if c.marr != nil {
		c.candBuf = c.marr.CandidatesMixed(addr, mixed, c.candBuf[:0])
	} else {
		c.candBuf = c.arr.Candidates(addr, c.candBuf[:0])
	}

	var res ctrl.AccessResult
	var sc scanOutcome
	if c.cfg.Mode == ModeSetpoint && !c.track {
		// The practical controller with no measurement hooks is the
		// configuration every production run uses; it gets a scan
		// specialized to it.
		sc = c.scanSetpoint()
	} else {
		sc = c.scanGeneral()
	}
	freeSlot, bestUnmanStale, sawUnmanaged := sc.freeSlot, sc.bestUnman, sc.sawUnmanaged
	bestDemoted, fallback := sc.bestDemoted, sc.fallback

	// Pick the victim: free slot > oldest pre-existing unmanaged candidate >
	// demoted candidate > any managed candidate (forced managed eviction).
	victim := cache.InvalidLine
	switch {
	case freeSlot != cache.InvalidLine:
		victim = freeSlot
	case sawUnmanaged:
		victim = bestUnmanStale
	case bestDemoted != cache.InvalidLine:
		victim = bestDemoted
		res.ForcedManagedEviction = true
	default:
		victim = fallback
		res.ForcedManagedEviction = true
	}

	var vline *cache.Line
	if c.lines != nil {
		vline = &c.lines[victim]
	} else {
		vline = c.arr.Line(victim)
	}
	if line := vline; line.Valid {
		res.EvictedValid = true
		res.Evicted = line.Addr
		c.evictions++
		if res.ForcedManagedEviction {
			c.forcedEvictions++
		}
		vm := &c.meta[victim]
		owner := vm.part
		if owner == c.unmanagedID {
			if c.observer != nil {
				c.observer(int(c.unmanagedID), c.quant[c.unmanagedID].EvictionPriority(vm.ts, c.unmanagedTS), false)
			}
			c.unmanagedSize--
			if c.track {
				c.quant[c.unmanagedID].Remove(vm.ts)
			}
		} else if owner >= 0 {
			q := int(owner)
			if c.observer != nil {
				c.observer(q, c.quant[q].EvictionPriority(vm.ts, c.parts[q].currentTS), false)
			}
			c.parts[q].actual--
			if c.track {
				c.quant[q].Remove(vm.ts)
			}
		}
		vm.part = -1
	}

	var id cache.LineID
	var moves int
	if c.marr != nil {
		id, moves = c.marr.InstallMixed(addr, mixed, victim)
	} else {
		id, moves = c.arr.Install(addr, victim)
	}
	res.Relocations = moves

	p := &c.parts[part]
	im := &c.meta[id]
	im.part = int16(part)
	im.ts = p.currentTS
	if c.cfg.Mode == ModeRRIP {
		im.rrpv = c.insertRRPV(part)
	}
	p.actual++
	p.insertions++
	if c.track {
		c.quant[part].Add(p.currentTS)
	}
	c.tick(p)
	c.duelOnMiss(addr, part)
	return res
}

// scanSetpoint is the demotion scan specialized for ModeSetpoint with no
// priority tracking and no eviction observer — the practical controller of
// §4 as every production configuration runs it. Relative to scanGeneral it
// relies on the candidate-metadata invariant (meta[id].part == -1 exactly
// when the slot is invalid; see lineMeta) to skip the line-store load
// entirely, inlines the demotion bookkeeping, and keeps the unmanaged clock
// in registers. Every arithmetic step and tie-break matches scanGeneral's
// ModeSetpoint path, so the two scans are decision-identical.
func (c *Controller) scanSetpoint() scanOutcome {
	out := scanOutcome{
		freeSlot:    cache.InvalidLine,
		bestUnman:   cache.InvalidLine,
		bestDemoted: cache.InvalidLine,
		fallback:    c.candBuf[0],
	}
	var (
		bestUnmanAge uint8
		bestDemAge   uint8
		fallbackAge  = -1
	)
	meta, parts := c.meta, c.parts
	unmanagedID := c.unmanagedID
	// The unmanaged clock is advanced by every demotion; it runs in locals
	// and is stored back after the scan (nothing else reads it mid-scan:
	// observers are nil on this path).
	uTS, uCtr := c.unmanagedTS, c.unmanagedCtr
	uPeriod := c.unmanagedTarget / 16
	if uPeriod < 1 {
		uPeriod = 1
	}
	demotions := uint64(0)
	// Gather the candidates' metadata words up front: the copies are
	// independent scattered loads the CPU can overlap, where the scan's own
	// loads would serialize behind its branches. Candidates are unique, so a
	// demotion never mutates the metadata of a later candidate and the dense
	// copy stays exact.
	if cap(c.metaBuf) < len(c.candBuf) {
		c.metaBuf = make([]lineMeta, len(c.candBuf))
	}
	mv := c.metaBuf[:len(c.candBuf)]
	for i, id := range c.candBuf {
		mv[i] = meta[id]
	}
	for ci, id := range c.candBuf {
		m := &mv[ci]
		owner := m.part
		if owner < 0 {
			if out.freeSlot == cache.InvalidLine {
				out.freeSlot = id
			}
			continue
		}
		if owner == unmanagedID {
			age := uTS - m.ts
			if !out.sawUnmanaged || age > bestUnmanAge {
				out.bestUnman, bestUnmanAge, out.sawUnmanaged = id, age, true
			}
			continue
		}
		p := &parts[owner]
		p.candsSeen++
		age := p.currentTS - m.ts
		if p.actual > p.target && (p.target == 0 || age > p.currentTS-p.setpointTS) {
			// Demote (inlined from demote(), minus the tracking hooks).
			// Writes go through the backing array, not the gathered copy.
			p.actual--
			p.candsDemoted++
			p.demotedLines++
			demotedTS := uTS
			meta[id] = lineMeta{part: unmanagedID, ts: demotedTS, rrpv: m.rrpv}
			demotions++
			uCtr++
			if uCtr >= uPeriod {
				uCtr = 0
				uTS++
			}
			if dAge := uTS - demotedTS; out.bestDemoted == cache.InvalidLine || dAge > bestDemAge {
				out.bestDemoted, bestDemAge = id, dAge
			}
		} else if int(age) > fallbackAge {
			out.fallback, fallbackAge = id, int(age)
		}
		if p.candsSeen == 0 { // wrapped: 256 candidates seen
			c.unmanagedTS, c.unmanagedCtr = uTS, uCtr
			c.adjustSetpoint(int(owner))
		}
	}
	c.unmanagedTS, c.unmanagedCtr = uTS, uCtr
	c.demotions += demotions
	c.unmanagedSize += int(demotions)
	return out
}

// scanGeneral is the demotion scan for every other configuration: the
// validation modes, tracking-enabled runs, and observers.
func (c *Controller) scanGeneral() scanOutcome {
	out := scanOutcome{
		freeSlot:    cache.InvalidLine,
		bestUnman:   cache.InvalidLine,
		bestDemoted: cache.InvalidLine,
		fallback:    c.candBuf[0],
	}
	var (
		bestUnmanAge uint8
		bestDemAge   uint8
		fallbackAge  = -1
		// ModeOnePerEviction scratch.
		onePerBest cache.LineID = cache.InvalidLine
		onePerAge  int          = -1
		onePerPart int
	)

	// Index the backing line store directly when the array exposes it: the
	// scan reads one line per candidate and an interface call each would
	// dominate it. The per-line metadata, the partition table, and the
	// loop-invariant config are hoisted into locals; demotions mutate
	// elements through the same backing arrays, so the aliases stay exact.
	// c.unmanagedTS is NOT hoisted: each demotion can advance it.
	lines := c.lines
	meta, parts := c.meta, c.parts
	mode, unmanagedID := c.cfg.Mode, c.unmanagedID
	for _, id := range c.candBuf {
		var line *cache.Line
		if lines != nil {
			line = &lines[id]
		} else {
			line = c.arr.Line(id)
		}
		if !line.Valid {
			if out.freeSlot == cache.InvalidLine {
				out.freeSlot = id
			}
			continue
		}
		m := &meta[id]
		owner := m.part
		if owner == unmanagedID {
			age := c.unmanagedTS - m.ts
			if !out.sawUnmanaged || age > bestUnmanAge {
				out.bestUnman, bestUnmanAge, out.sawUnmanaged = id, age, true
			}
			continue
		}
		q := int(owner)
		p := &parts[q]
		p.candsSeen++
		wasDemoted := false
		if mode == ModeOnePerEviction {
			// Ablation (§3.3, Fig 2b): remember the best over-target
			// candidate; exactly one is demoted after the scan.
			if p.actual > p.target || p.target == 0 {
				if age := int(p.currentTS - m.ts); age > onePerAge {
					onePerBest, onePerAge, onePerPart = id, age, q
				}
			}
		} else if c.shouldDemote(q, id) {
			c.demote(q, id)
			wasDemoted = true
			age := c.unmanagedTS - m.ts // 0: just demoted
			if out.bestDemoted == cache.InvalidLine || age > bestDemAge {
				out.bestDemoted, bestDemAge = id, age
			}
		} else if mode == ModeRRIP && p.actual > p.target && m.rrpv < 7 {
			// RRIP aging, restricted to over-target partitions (§6.2).
			m.rrpv++
		}
		if !wasDemoted {
			if age := int(p.currentTS - m.ts); age > fallbackAge {
				out.fallback, fallbackAge = id, int(age)
			}
		}
		if p.candsSeen == 0 { // wrapped: 256 candidates seen
			c.adjustSetpoint(q)
		}
	}
	if mode == ModeOnePerEviction && onePerBest != cache.InvalidLine {
		c.demote(onePerPart, onePerBest)
		out.bestDemoted = onePerBest
	}
	return out
}
