// The controller access paths: the hit path of §4.3 (timestamp refresh and
// promotions) and the miss path (demotion scan, victim selection, insertion).

package core

import (
	"vantage/internal/cache"
	"vantage/internal/ctrl"
)

// Access implements ctrl.Controller.
func (c *Controller) Access(addr uint64, part int) ctrl.AccessResult {
	if id, ok := c.arr.Lookup(addr); ok {
		c.hits++
		c.parts[part].hits++
		c.onHit(id, part)
		return ctrl.AccessResult{Hit: true}
	}
	c.misses++
	c.parts[part].misses++
	return c.replace(addr, part)
}

// onHit handles the §4.3 hit path: refresh the timestamp, tick the clock,
// and promote unmanaged lines into the accessor's partition.
func (c *Controller) onHit(id cache.LineID, part int) {
	p := &c.parts[part]
	owner := c.partOf[id]
	switch {
	case owner == c.unmanagedID:
		// Promotion: the line rejoins the accessor's partition.
		c.promotions++
		p.promotedLines++
		c.unmanagedSize--
		if c.track {
			c.quant[c.unmanagedID].Remove(c.ts[id])
			c.quant[part].Add(p.currentTS)
		}
		c.partOf[id] = int16(part)
		p.actual++
	case int(owner) != part:
		// Cross-partition hit (shared line): migrate to the accessor. The
		// paper's workloads have disjoint address spaces, so this is rare.
		if owner >= 0 {
			c.parts[owner].actual--
			if c.track {
				c.quant[owner].Remove(c.ts[id])
			}
		}
		c.partOf[id] = int16(part)
		p.actual++
		if c.track {
			c.quant[part].Add(p.currentTS)
		}
	default:
		if c.track {
			c.quant[part].Move(c.ts[id], p.currentTS)
		}
	}
	c.ts[id] = p.currentTS
	if c.cfg.Mode == ModeRRIP {
		c.rrpv[id] = 0
	}
	c.tick(p)
}

// replace implements the §4.3 miss path.
func (c *Controller) replace(addr uint64, part int) ctrl.AccessResult {
	c.candBuf = c.arr.Candidates(addr, c.candBuf[:0])

	var (
		res            ctrl.AccessResult
		freeSlot                    = cache.InvalidLine
		bestUnmanStale cache.LineID = cache.InvalidLine
		bestUnmanAge   uint8
		sawUnmanaged   bool
		bestDemoted    cache.LineID = cache.InvalidLine
		bestDemAge     uint8
		fallback           = c.candBuf[0]
		fallbackAge    int = -1
		// ModeOnePerEviction scratch.
		onePerBest cache.LineID = cache.InvalidLine
		onePerAge  int          = -1
		onePerPart int
	)

	for _, id := range c.candBuf {
		line := c.arr.Line(id)
		if !line.Valid {
			if freeSlot == cache.InvalidLine {
				freeSlot = id
			}
			continue
		}
		owner := c.partOf[id]
		if owner == c.unmanagedID {
			age := c.unmanagedTS - c.ts[id]
			if !sawUnmanaged || age > bestUnmanAge {
				bestUnmanStale, bestUnmanAge, sawUnmanaged = id, age, true
			}
			continue
		}
		q := int(owner)
		p := &c.parts[q]
		p.candsSeen++
		wasDemoted := false
		if c.cfg.Mode == ModeOnePerEviction {
			// Ablation (§3.3, Fig 2b): remember the best over-target
			// candidate; exactly one is demoted after the scan.
			if p.actual > p.target || p.target == 0 {
				if age := int(p.currentTS - c.ts[id]); age > onePerAge {
					onePerBest, onePerAge, onePerPart = id, age, q
				}
			}
		} else if c.shouldDemote(q, id) {
			c.demote(q, id)
			wasDemoted = true
			age := c.unmanagedTS - c.ts[id] // 0: just demoted
			if bestDemoted == cache.InvalidLine || age > bestDemAge {
				bestDemoted, bestDemAge = id, age
			}
		} else if c.cfg.Mode == ModeRRIP && p.actual > p.target && c.rrpv[id] < 7 {
			// RRIP aging, restricted to over-target partitions (§6.2).
			c.rrpv[id]++
		}
		if !wasDemoted {
			if age := int(p.currentTS - c.ts[id]); age > fallbackAge {
				fallback, fallbackAge = id, age
			}
		}
		if p.candsSeen == 0 { // wrapped: 256 candidates seen
			c.adjustSetpoint(q)
		}
	}
	if c.cfg.Mode == ModeOnePerEviction && onePerBest != cache.InvalidLine {
		c.demote(onePerPart, onePerBest)
		bestDemoted, bestDemAge = onePerBest, 0
	}

	// Pick the victim: free slot > oldest pre-existing unmanaged candidate >
	// demoted candidate > any managed candidate (forced managed eviction).
	victim := cache.InvalidLine
	switch {
	case freeSlot != cache.InvalidLine:
		victim = freeSlot
	case sawUnmanaged:
		victim = bestUnmanStale
	case bestDemoted != cache.InvalidLine:
		victim = bestDemoted
		res.ForcedManagedEviction = true
	default:
		victim = fallback
		res.ForcedManagedEviction = true
	}

	if line := c.arr.Line(victim); line.Valid {
		res.EvictedValid = true
		res.Evicted = line.Addr
		c.evictions++
		if res.ForcedManagedEviction {
			c.forcedEvictions++
		}
		owner := c.partOf[victim]
		if owner == c.unmanagedID {
			if c.observer != nil {
				c.observer(int(c.unmanagedID), c.quant[c.unmanagedID].EvictionPriority(c.ts[victim], c.unmanagedTS), false)
			}
			c.unmanagedSize--
			if c.track {
				c.quant[c.unmanagedID].Remove(c.ts[victim])
			}
		} else if owner >= 0 {
			q := int(owner)
			if c.observer != nil {
				c.observer(q, c.quant[q].EvictionPriority(c.ts[victim], c.parts[q].currentTS), false)
			}
			c.parts[q].actual--
			if c.track {
				c.quant[q].Remove(c.ts[victim])
			}
		}
		c.partOf[victim] = -1
	}

	id, moves := c.arr.Install(addr, victim)
	res.Relocations = moves

	p := &c.parts[part]
	c.partOf[id] = int16(part)
	c.ts[id] = p.currentTS
	if c.cfg.Mode == ModeRRIP {
		c.rrpv[id] = c.insertRRPV(part)
	}
	p.actual++
	p.insertions++
	if c.track {
		c.quant[part].Add(p.currentTS)
	}
	c.tick(p)
	c.duelOnMiss(addr, part)
	return res
}
