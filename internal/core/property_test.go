package core

import (
	"testing"
	"testing/quick"

	"vantage/internal/cache"
	"vantage/internal/hash"
)

// TestPropertyConservation drives randomized traffic shapes through the
// controller and checks the bookkeeping identities after every batch:
//   - Σ partition sizes + unmanaged size == valid lines in the array
//   - every valid line has an owner; every invalid line has none
//   - no partition size is negative
func TestPropertyConservation(t *testing.T) {
	f := func(seed uint64, wsRaw [4]uint16, targetRaw [4]uint16) bool {
		arr := cache.NewZCache(1024, 4, 52, seed)
		c := New(arr, Config{Partitions: 4, UnmanagedFrac: 0.08, AMax: 0.5, Slack: 0.1, Seed: seed})
		targets := make([]int, 4)
		for i, tr := range targetRaw {
			targets[i] = int(tr) % 400 // may be 0: deletion is legal
		}
		c.SetTargets(targets)
		rng := hash.NewRand(seed | 1)
		ws := make([]int, 4)
		for i, w := range wsRaw {
			ws[i] = int(w)%1500 + 1
		}
		for step := 0; step < 4000; step++ {
			p := rng.Intn(4)
			c.Access(uint64(p+1)<<40|uint64(rng.Intn(ws[p])), p)
		}
		valid, owned := 0, 0
		for id := 0; id < arr.NumLines(); id++ {
			hasOwner := c.meta[id].part >= 0
			if arr.Line(cache.LineID(id)).Valid {
				valid++
				if !hasOwner {
					return false
				}
			} else if hasOwner {
				return false
			}
		}
		total := c.UnmanagedSize()
		if total < 0 {
			return false
		}
		for p := 0; p < 4; p++ {
			if c.Size(p) < 0 {
				return false
			}
			total += c.Size(p)
		}
		owned = total
		return owned == valid
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCountersConsistent checks counter identities under random
// traffic: evictions <= misses, hits+misses == accesses issued, and
// forced evictions <= evictions.
func TestPropertyCountersConsistent(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		arr := cache.NewZCache(512, 4, 16, seed)
		c := New(arr, Config{Partitions: 2, UnmanagedFrac: 0.1, AMax: 0.4, Slack: 0.1, Seed: seed})
		rng := hash.NewRand(seed | 1)
		accesses := uint64(n) + 100
		for i := uint64(0); i < accesses; i++ {
			p := rng.Intn(2)
			c.Access(uint64(p+1)<<40|uint64(rng.Intn(700)), p)
		}
		cnt := c.Counters()
		if cnt.Hits+cnt.Misses != accesses {
			return false
		}
		if cnt.Evictions > cnt.Misses {
			return false
		}
		return cnt.ForcedManagedEvictions <= cnt.Evictions
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyLookupAfterTraffic: any address just accessed must hit on an
// immediate re-access, whatever the controller did in between (demotion,
// relocation, promotion).
func TestPropertyLookupAfterTraffic(t *testing.T) {
	f := func(seed uint64) bool {
		arr := cache.NewZCache(512, 4, 52, seed)
		c := New(arr, Config{Partitions: 3, UnmanagedFrac: 0.1, AMax: 0.5, Slack: 0.1, Seed: seed})
		rng := hash.NewRand(seed | 1)
		for i := 0; i < 2000; i++ {
			p := rng.Intn(3)
			addr := uint64(p+1)<<40 | uint64(rng.Intn(600))
			c.Access(addr, p)
			if r := c.Access(addr, p); !r.Hit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyTargetsNeverDemoteUnder: a partition never demotes while at
// or below its target (checked via the observer across random traffic).
func TestPropertyTargetsNeverDemoteUnder(t *testing.T) {
	f := func(seed uint64) bool {
		arr := cache.NewZCache(1024, 4, 52, seed)
		c := New(arr, Config{Partitions: 2, UnmanagedFrac: 0.1, AMax: 0.5, Slack: 0.1, Seed: seed})
		c.SetTargets([]int{600, 321})
		ok := true
		c.SetEvictionObserver(func(part int, pri float64, dem bool) {
			// At demotion time the partition was over target (size is
			// decremented by the demotion itself, so >= target holds after).
			if dem && part < 2 && c.Size(part) < c.Target(part) {
				ok = false
			}
		})
		rng := hash.NewRand(seed | 1)
		for i := 0; i < 6000; i++ {
			p := rng.Intn(2)
			c.Access(uint64(p+1)<<40|uint64(rng.Intn(900)), p)
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
