package core

import (
	"testing"

	"vantage/internal/hash"
)

// TestDemoteExpiredMovesLineToUnmanaged checks the bookkeeping: the owning
// partition's occupancy drops, the unmanaged region grows, the demotion
// counters advance, and the aperture feedback counter (candsDemoted) is NOT
// charged.
func TestDemoteExpiredMovesLineToUnmanaged(t *testing.T) {
	c := newTestController(4096, 2, ModeSetpoint)
	rng := hash.NewRand(11)
	drive(c, rng, []int{1500, 1500}, 4000)

	addr := uint64(0)<<40 | 7 // partition 0's working set includes line 7
	c.Access(addr, 0)         // make sure it is resident
	size0 := c.Size(0)
	unman := c.UnmanagedSize()
	dems := c.Counters().Demotions
	cands0 := c.parts[0].candsDemoted

	if !c.DemoteExpired(addr) {
		t.Fatal("DemoteExpired on a resident line returned false")
	}
	if got := c.Size(0); got != size0-1 {
		t.Fatalf("partition 0 size = %d after DemoteExpired, want %d", got, size0-1)
	}
	if got := c.UnmanagedSize(); got != unman+1 {
		t.Fatalf("unmanaged size = %d, want %d", got, unman+1)
	}
	if got := c.Counters().Demotions; got != dems+1 {
		t.Fatalf("demotions = %d, want %d", got, dems+1)
	}
	if got := c.parts[0].candsDemoted; got != cands0 {
		t.Fatalf("candsDemoted changed %d -> %d; expiry must not bias aperture feedback", cands0, got)
	}

	// The line now reads as the oldest possible unmanaged candidate.
	id, ok := c.arr.Lookup(addr)
	if !ok {
		t.Fatal("line vanished from the array")
	}
	m := &c.meta[id]
	if m.part != c.unmanagedID {
		t.Fatalf("line owner = %d, want unmanaged (%d)", m.part, c.unmanagedID)
	}
	if age := c.unmanagedTS - m.ts; age != 255 {
		t.Fatalf("unmanaged age = %d, want 255 (top eviction candidate)", age)
	}

	// Demoting again (already unmanaged) re-stales without double-counting.
	if !c.DemoteExpired(addr) {
		t.Fatal("DemoteExpired on an unmanaged line returned false")
	}
	if got := c.UnmanagedSize(); got != unman+1 {
		t.Fatalf("unmanaged size double-counted: %d, want %d", got, unman+1)
	}
}

// TestDemoteExpiredAbsent: lines the array does not hold are reported absent
// and nothing changes.
func TestDemoteExpiredAbsent(t *testing.T) {
	c := newTestController(1024, 2, ModeSetpoint)
	if c.DemoteExpired(0xdead<<40 | 42) {
		t.Fatal("DemoteExpired on an absent address returned true")
	}
	if got := c.Counters().Demotions; got != 0 {
		t.Fatalf("demotions = %d on absent address, want 0", got)
	}
}

// TestDemoteExpiredWithObserver checks the tracked path (observer installed):
// histograms stay consistent through expiry demotions — Remove/Add pairs must
// balance or later eviction-priority queries would corrupt.
func TestDemoteExpiredWithObserver(t *testing.T) {
	c := newTestController(4096, 2, ModeSetpoint)
	demoted := 0
	c.SetEvictionObserver(func(part int, priority float64, demotion bool) {
		if demotion {
			demoted++
		}
	})
	rng := hash.NewRand(13)
	drive(c, rng, []int{1200, 1200}, 3000)

	before := demoted
	addr := uint64(1)<<40 | 99
	c.Access(addr, 1)
	if !c.DemoteExpired(addr) {
		t.Fatal("DemoteExpired returned false")
	}
	if demoted != before+1 {
		t.Fatalf("observer saw %d demotions, want %d", demoted, before+1)
	}
	// The controller must stay usable: keep driving traffic through the
	// tracked histograms (Remove of an untracked ts would panic/corrupt).
	drive(c, rng, []int{1200, 1200}, 2000)
}
