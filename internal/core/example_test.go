package core_test

import (
	"fmt"

	"vantage/internal/cache"
	"vantage/internal/core"
)

// The §3.4 partition-deletion protocol: set the target to 0 (aperture 1.0)
// and let replacements drain the partition before reusing its ID.
func ExampleController_SetTargets_deletion() {
	arr := cache.NewZCache(1024, 4, 52, 1)
	c := core.New(arr, core.Config{
		Partitions: 2, UnmanagedFrac: 0.1, AMax: 0.5, Slack: 0.1,
	})
	c.SetTargets([]int{400, 521})
	for i := uint64(0); i < 400; i++ {
		c.Access(1<<40|i, 0)
	}
	fmt.Println("before deletion:", c.Size(0), "lines, aperture", c.Aperture(0))

	c.SetTargets([]int{0, 921}) // delete partition 0
	fmt.Println("after deletion: aperture", c.Aperture(0))
	// Partition 1's replacements now demote partition 0's lines on contact.
	for i := uint64(0); i < 200000; i++ {
		c.Access(2<<40|i, 1)
	}
	fmt.Println("drained below 32 lines:", c.Size(0) < 32)
	// Output:
	// before deletion: 400 lines, aperture 0
	// after deletion: aperture 1
	// drained below 32 lines: true
}

// Counters expose the §3.3 flows: insertions demote other lines into the
// unmanaged region, and evictions leave from there.
func ExampleController_Counters() {
	arr := cache.NewZCache(512, 4, 52, 1)
	c := core.New(arr, core.Config{
		Partitions: 1, UnmanagedFrac: 0.1, AMax: 0.5, Slack: 0.1,
	})
	c.SetTargets([]int{460})
	for i := uint64(0); i < 50000; i++ {
		c.Access(i%600, 0) // working set exceeds the target
	}
	cnt := c.Counters()
	fmt.Println("demotions within 10% of evictions:",
		cnt.Demotions > cnt.Evictions*9/10 && cnt.Demotions < cnt.Evictions*11/10)
	// Output:
	// demotions within 10% of evictions: true
}
