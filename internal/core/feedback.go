// Feedback-based aperture control and setpoint-based demotions (§4.1, §4.2):
// the coarse-timestamp clocks, the demotion test, and the 256-candidate
// setpoint adjustment against the demotion-thresholds lookup table.

package core

import "vantage/internal/cache"

// tick advances partition p's coarse timestamp clock by one access:
// CurrentTS (and SetpointTS, to keep their distance constant, §4.2) advance
// every ActualSize/16 accesses.
func (c *Controller) tick(p *partState) {
	p.accessCtr++
	period := p.actual / 16
	if period < 1 {
		period = 1
	}
	if p.accessCtr >= period {
		p.accessCtr = 0
		p.currentTS++
		p.setpointTS++
	}
}

// unmanagedTick advances the unmanaged region's timestamp every
// unmanagedTarget/16 insertions (demotions).
func (c *Controller) unmanagedTick() {
	c.unmanagedCtr++
	period := c.unmanagedTarget / 16
	if period < 1 {
		period = 1
	}
	if c.unmanagedCtr >= period {
		c.unmanagedCtr = 0
		c.unmanagedTS++
	}
}

// keepWindow returns the width of partition p's keep window
// (CurrentTS - SetpointTS mod 256): lines older than the window (age greater
// than it) are below the setpoint and eligible for demotion.
func (p *partState) keepWindow() uint8 { return p.currentTS - p.setpointTS }

// shouldDemote applies the demotion test for a valid managed candidate owned
// by partition q.
func (c *Controller) shouldDemote(q int, id cache.LineID) bool {
	p := &c.parts[q]
	if p.actual <= p.target {
		return false
	}
	if p.target == 0 {
		// Deleted partition: aperture 1.0, demote unconditionally (§3.4).
		return true
	}
	switch c.cfg.Mode {
	case ModePerfectAperture:
		a := feedbackAperture(float64(p.actual), float64(p.target), c.cfg.AMax, c.cfg.Slack)
		// Demote the top-a fraction by age: lines with fewer than a·size
		// strictly-older lines in the partition.
		return c.quant[q].FracOlder(c.meta[id].ts, p.currentTS) < a
	case ModeRRIP:
		return c.meta[id].rrpv >= p.setpointRRPV
	default:
		age := p.currentTS - c.meta[id].ts
		return age > p.keepWindow()
	}
}

// feedbackAperture is Equation 7 (duplicated from the analytic package to
// keep core dependency-light; the analytic package's tests pin it).
func feedbackAperture(s, t, aMax, slack float64) float64 {
	if t <= 0 {
		return aMax
	}
	switch {
	case s <= t:
		return 0
	case s <= (1+slack)*t:
		return aMax / slack * (s - t) / t
	default:
		return aMax
	}
}

// demote moves candidate id (owned by q) into the unmanaged region.
func (c *Controller) demote(q int, id cache.LineID) {
	p := &c.parts[q]
	m := &c.meta[id]
	if c.observer != nil {
		c.observer(q, c.quant[q].EvictionPriority(m.ts, p.currentTS), true)
	}
	if c.track {
		c.quant[q].Remove(m.ts)
		c.quant[c.unmanagedID].Add(c.unmanagedTS)
	}
	p.actual--
	p.candsDemoted++
	p.demotedLines++
	m.part = c.unmanagedID
	m.ts = c.unmanagedTS
	c.demotions++
	c.unmanagedSize++
	c.unmanagedTick()
}

// adjustSetpoint applies the §4.2 feedback rule after candsPerAdjust
// candidates from partition q: compare the demotions done against the
// demotion-thresholds table entry for the current size and nudge the
// setpoint.
func (c *Controller) adjustSetpoint(q int) {
	p := &c.parts[q]
	c.setpointAdjusts++
	thr := 0
	for k := thresholdEntries - 1; k >= 0; k-- {
		if p.thrSize[k] <= p.actual && (k > 0 || p.actual > p.target) {
			thr = p.thrDems[k]
			break
		}
	}
	if p.target == 0 {
		thr = candsPerAdjust // aperture 1.0: never throttle a draining partition
	}
	if c.cfg.Mode == ModeRRIP {
		if p.candsDemoted > thr && p.setpointRRPV < 8 {
			p.setpointRRPV++
		} else if p.candsDemoted < thr && p.setpointRRPV > 1 {
			p.setpointRRPV--
		}
	} else {
		if p.candsDemoted > thr && p.keepWindow() < 255 {
			p.setpointTS-- // widen the keep window: fewer demotions
		} else if p.candsDemoted < thr && p.keepWindow() > 0 {
			p.setpointTS++ // narrow the keep window: more demotions
		}
	}
	p.candsDemoted = 0
}
