// Vantage-DRRIP specifics (§6.2): per-partition insertion-policy state,
// inline SRRIP/BRRIP dueling, and the external UMON-RRIP override.

package core

// insertRRPV returns the insertion RRPV for partition part per its current
// SRRIP/BRRIP choice.
func (c *Controller) insertRRPV(part int) uint8 {
	p := &c.parts[part]
	if p.brrip {
		if c.rng.Intn(32) == 0 {
			return 6
		}
		return 7
	}
	return 6
}

// SetInsertionPolicy pins partition part's ModeRRIP insertion policy
// (true = BRRIP), as chosen by an external UMON-RRIP monitor (§6.2); it
// disables the controller's inline dueling for that partition.
func (c *Controller) SetInsertionPolicy(part int, brrip bool) {
	p := &c.parts[part]
	p.extPolicy = true
	p.brrip = brrip
}

// duelOnMiss updates partition part's SRRIP/BRRIP duel in ModeRRIP. By
// default the controller duels inline over hashed leader buckets (thread-
// aware by construction, no monitor changes); when SetInsertionPolicy has
// pinned a partition's policy (the paper's UMON-RRIP path), the inline duel
// is disabled for it.
func (c *Controller) duelOnMiss(addr uint64, part int) {
	if c.cfg.Mode != ModeRRIP || c.parts[part].extPolicy {
		return
	}
	p := &c.parts[part]
	switch c.duelH.Hash(addr) & c.duelMask {
	case 0: // SRRIP leader missed: vote BRRIP
		if p.psel > -512 {
			p.psel--
		}
	case 1: // BRRIP leader missed: vote SRRIP
		if p.psel < 512 {
			p.psel++
		}
	}
	p.brrip = p.psel < 0
}
