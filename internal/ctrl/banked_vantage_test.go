package ctrl_test

import (
	"testing"

	"vantage/internal/cache"
	"vantage/internal/core"
	"vantage/internal/ctrl"
	"vantage/internal/hash"
)

// TestBankedVantagePropertySizes drives a banked Vantage L2 (the paper's
// physical organization) with randomized traffic and repartitioning, and
// checks that global sizes always equal the per-bank sums and that global
// targets divide without loss.
func TestBankedVantagePropertySizes(t *testing.T) {
	rng := hash.NewRand(41)
	for trial := 0; trial < 5; trial++ {
		banks := make([]ctrl.Controller, 4)
		for i := range banks {
			arr := cache.NewZCache(512, 4, 16, rng.Uint64())
			banks[i] = core.New(arr, core.Config{Partitions: 3, UnmanagedFrac: 0.1, AMax: 0.5, Slack: 0.1, Seed: rng.Uint64()})
		}
		b := ctrl.NewBanked(banks, rng.Uint64())
		for step := 0; step < 8000; step++ {
			q := rng.Intn(3)
			b.Access(uint64(q+1)<<40|uint64(rng.Intn(2500)), q)
			if step%2000 == 1999 {
				targets := make([]int, 3)
				rem := 1900
				for i := 0; i < 2; i++ {
					targets[i] = rng.Intn(rem / 2)
					rem -= targets[i]
				}
				targets[2] = rem
				b.SetTargets(targets)
			}
		}
		for q := 0; q < 3; q++ {
			sum := 0
			for i := 0; i < 4; i++ {
				sum += b.Bank(i).Size(q)
			}
			if b.Size(q) != sum {
				t.Fatalf("trial %d: partition %d global %d != bank sum %d",
					trial, q, b.Size(q), sum)
			}
		}
	}
}
