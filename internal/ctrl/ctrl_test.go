package ctrl

import (
	"testing"

	"vantage/internal/cache"
	"vantage/internal/hash"
	"vantage/internal/repl"
)

func TestUnpartitionedBasics(t *testing.T) {
	arr := cache.NewZCache(512, 4, 16, 1)
	u := NewUnpartitioned(arr, repl.NewLRUTimestamp(512), 2)
	if u.Name() != "Unpart-LRU" {
		t.Fatalf("name = %q", u.Name())
	}
	if u.Array() != cache.Array(arr) || u.NumPartitions() != 2 {
		t.Fatal("metadata wrong")
	}
	r := u.Access(42, 0)
	if r.Hit {
		t.Fatal("cold access hit")
	}
	if r = u.Access(42, 0); !r.Hit {
		t.Fatal("second access missed")
	}
	if u.Size(0) != 1 || u.Size(1) != 0 {
		t.Fatalf("sizes %d %d", u.Size(0), u.Size(1))
	}
	u.SetTargets([]int{1, 1}) // accepted and ignored
}

func TestUnpartitionedEvictsUnderPressure(t *testing.T) {
	arr := cache.NewZCache(256, 4, 16, 2)
	u := NewUnpartitioned(arr, repl.NewLRUTimestamp(256), 1)
	evicted := 0
	for i := 0; i < 4096; i++ {
		r := u.Access(uint64(i), 0)
		if r.EvictedValid {
			evicted++
		}
	}
	if evicted == 0 {
		t.Fatal("streaming never evicted")
	}
	if got := u.Size(0); got != 256 {
		t.Fatalf("occupancy %d, want full 256", got)
	}
}

// TestUnpartitionedSizesConsistent drives mixed traffic with zcache
// relocations and checks the occupancy bookkeeping.
func TestUnpartitionedSizesConsistent(t *testing.T) {
	arr := cache.NewZCache(512, 4, 52, 3)
	u := NewUnpartitioned(arr, repl.NewLRUTimestamp(512), 3)
	rng := hash.NewRand(7)
	for i := 0; i < 20000; i++ {
		p := rng.Intn(3)
		u.Access(uint64(p)<<40|uint64(rng.Intn(400)), p)
	}
	valid, counted := 0, 0
	for id := 0; id < arr.NumLines(); id++ {
		if arr.Line(cache.LineID(id)).Valid {
			valid++
		}
	}
	for p := 0; p < 3; p++ {
		counted += u.Size(p)
	}
	if valid != counted {
		t.Fatalf("valid %d != counted %d", valid, counted)
	}
}

// TestUnpartitionedLRUSharingAsymmetry reproduces the baseline problem the
// paper opens with: under shared LRU, a streaming thread takes capacity from
// a reuse-friendly thread.
func TestUnpartitionedLRUSharingAsymmetry(t *testing.T) {
	arr := cache.NewZCache(1024, 4, 16, 4)
	u := NewUnpartitioned(arr, repl.NewLRUTimestamp(1024), 2)
	rng := hash.NewRand(9)
	// Thread 0 reuses 600 lines; thread 1 streams, accessed 3x as often.
	for i := 0; i < 60000; i++ {
		u.Access(uint64(0)<<40|uint64(rng.Intn(600)), 0)
		for k := 0; k < 3; k++ {
			u.Access(uint64(1)<<40|uint64(i*3+k), 1)
		}
	}
	if u.Size(1) < 400 {
		t.Fatalf("streaming thread only holds %d lines; expected LRU to give it a large share", u.Size(1))
	}
}

func TestUnpartitionedWithRRIP(t *testing.T) {
	arr := cache.NewSetAssoc(512, 16, true, 5)
	u := NewUnpartitioned(arr, repl.NewDRRIP(512, 6), 2)
	rng := hash.NewRand(11)
	for i := 0; i < 20000; i++ {
		u.Access(uint64(rng.Intn(300)), 0)
		u.Access(uint64(1)<<40|uint64(i), 1)
	}
	if u.Name() != "Unpart-DRRIP" {
		t.Fatalf("name = %q", u.Name())
	}
	// Scan resistance: the reused working set (300 lines) should hold a
	// clear majority of the cache against the stream.
	if u.Size(0) < 256 {
		t.Fatalf("DRRIP failed scan resistance: reuse partition holds %d", u.Size(0))
	}
}

func TestBankedPanics(t *testing.T) {
	mk := func(parts int) Controller {
		arr := cache.NewZCache(256, 4, 16, 1)
		return NewUnpartitioned(arr, repl.NewLRUTimestamp(256), parts)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("3 banks accepted")
			}
		}()
		NewBanked([]Controller{mk(2), mk(2), mk(2)}, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("mismatched partition counts accepted")
			}
		}()
		NewBanked([]Controller{mk(2), mk(3)}, 1)
	}()
}

func TestBankedRoutesAndSums(t *testing.T) {
	banks := make([]Controller, 4)
	for i := range banks {
		arr := cache.NewZCache(512, 4, 16, uint64(i+1))
		banks[i] = NewUnpartitioned(arr, repl.NewLRUTimestamp(512), 2)
	}
	b := NewBanked(banks, 7)
	if b.Banks() != 4 || b.NumPartitions() != 2 || b.Array() == nil {
		t.Fatal("metadata wrong")
	}
	if b.Name() == "" {
		t.Fatal("empty name")
	}
	rng := hash.NewRand(3)
	for i := 0; i < 8000; i++ {
		p := rng.Intn(2)
		b.Access(uint64(p+1)<<40|uint64(rng.Intn(3000)), p)
	}
	// Routing is deterministic: a just-accessed address must hit.
	addr := uint64(1)<<40 | 12345
	b.Access(addr, 0)
	if r := b.Access(addr, 0); !r.Hit {
		t.Fatal("banked routing not stable")
	}
	// Size sums the banks.
	sum := 0
	for i := 0; i < 4; i++ {
		sum += b.Bank(i).Size(0)
	}
	if b.Size(0) != sum {
		t.Fatalf("Size %d != bank sum %d", b.Size(0), sum)
	}
	// Traffic spread across all banks.
	for i := 0; i < 4; i++ {
		if b.Bank(i).Size(0)+b.Bank(i).Size(1) == 0 {
			t.Fatalf("bank %d never used", i)
		}
	}
	b.SetTargets([]int{300, 212}) // accepted (no-op for unpartitioned banks)
}
