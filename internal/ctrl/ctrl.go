// Package ctrl defines the cache-controller interface shared by every
// partitioning scheme (Vantage, way-partitioning, PIPP, and the
// unpartitioned baselines) and a generic unpartitioned controller that pairs
// any cache array with any replacement policy.
//
// A Controller owns an array and implements the full access path: lookups,
// hit updates, and the replacement process on misses. Partition IDs identify
// the thread (or other principal) performing each access; targets are
// capacity allocations in lines, set by an allocation policy such as UCP.
package ctrl

import (
	"vantage/internal/cache"
	"vantage/internal/hash"
	"vantage/internal/repl"
)

// AccessResult reports what happened on one cache access.
type AccessResult struct {
	// Hit reports whether the access hit.
	Hit bool
	// EvictedValid reports whether a valid line was evicted; Evicted is its
	// address.
	EvictedValid bool
	Evicted      uint64
	// ForcedManagedEviction reports a Vantage eviction that had to come from
	// the managed region because no unmanaged candidates were found (§4.3);
	// always false for other schemes.
	ForcedManagedEviction bool
	// Relocations is the number of zcache line moves the install performed.
	Relocations int
}

// Controller is a partitioned (or unpartitioned) cache controller.
type Controller interface {
	// Name identifies the scheme, e.g. "Vantage" or "WayPart".
	Name() string
	// Array returns the underlying cache array.
	Array() cache.Array
	// Access performs one access by partition part.
	Access(addr uint64, part int) AccessResult
	// SetTargets sets the per-partition capacity allocations, in lines.
	// Schemes interpret them per their granularity (way-partitioning rounds
	// to ways).
	SetTargets(targets []int)
	// Size returns the current actual size of partition part, in lines.
	Size(part int) int
	// NumPartitions returns the partition count.
	NumPartitions() int
}

// MixedController is implemented by controllers whose access path can reuse
// a precomputed hash.Mix64 of the address (see cache.MixedArray). Callers
// that feed one address to several hashed structures — the simulator's UMON
// feed plus the L2 — resolve this interface once and mix once per reference;
// for mixed == hash.Mix64(addr) the result is bit-for-bit identical to
// Access(addr, part).
type MixedController interface {
	AccessMixed(addr, mixed uint64, part int) AccessResult
}

// EvictionObserver receives the eviction (or demotion) priority of each
// replacement victim, for associativity measurements: part is the victim's
// partition, priority ∈ [0,1] with 1 = best victim under the partition's
// ranking, and demotion distinguishes Vantage demotions from evictions.
type EvictionObserver func(part int, priority float64, demotion bool)

// Observable is implemented by controllers that can report victim priorities.
type Observable interface {
	SetEvictionObserver(EvictionObserver)
}

// PartitionSnapshot is one partition's capacity state and lifetime event
// counts, captured atomically with respect to the controller (callers
// serialize with accesses; controllers are not internally synchronized).
type PartitionSnapshot struct {
	// Size and Target are the partition's actual and allocated capacity, in
	// lines. Schemes without explicit targets report Target == 0.
	Size, Target int
	// Hits, Misses, Demotions and Promotions are lifetime counts. Schemes
	// without per-partition counters report zeros.
	Hits, Misses, Demotions, Promotions uint64
}

// Snapshotter is implemented by controllers that can report every
// partition's size, target, and counters in a single call, so serving layers
// can export consistent per-tenant statistics while holding one lock.
type Snapshotter interface {
	// SnapshotPartitions appends one PartitionSnapshot per partition to dst
	// and returns it (dst may be nil; pass dst[:0] to reuse a buffer).
	SnapshotPartitions(dst []PartitionSnapshot) []PartitionSnapshot
}

// ---------------------------------------------------------------------------
// Unpartitioned controller
// ---------------------------------------------------------------------------

// Unpartitioned pairs an array with a replacement policy and no partitioning:
// the LRU (and RRIP) baselines of the paper's evaluation. It still tracks
// per-partition occupancy so experiments can observe how capacity is shared.
type Unpartitioned struct {
	arr     cache.Array
	marr    cache.MixedArray // arr's mixed fast path, or nil
	lines   []cache.Line     // arr's backing line store, or nil (see cache.LinesAccessor)
	pol     repl.Policy
	parts   int
	partOf  []int16
	sizes   []int
	candBuf []cache.LineID
	// live counts valid lines. Nothing invalidates a line under this
	// controller (there is no deletion path and relocations preserve
	// validity), so the count is monotone and, once it reaches NumLines,
	// pickVictim's first-invalid scan can be skipped: no set can have a free
	// slot when the whole array is full.
	live int
}

// NewUnpartitioned returns an unpartitioned controller over arr using policy
// pol, tracking occupancy for parts partitions.
func NewUnpartitioned(arr cache.Array, pol repl.Policy, parts int) *Unpartitioned {
	u := &Unpartitioned{
		arr:    arr,
		pol:    pol,
		parts:  parts,
		partOf: make([]int16, arr.NumLines()),
		sizes:  make([]int, parts),
	}
	u.marr, _ = arr.(cache.MixedArray)
	if la, ok := arr.(cache.LinesAccessor); ok {
		u.lines = la.Lines()
	}
	for i := range u.partOf {
		u.partOf[i] = -1
	}
	if rel, ok := arr.(cache.Relocator); ok {
		rel.SetMoveHook(func(src, dst cache.LineID) {
			pol.OnMove(src, dst)
			u.partOf[dst] = u.partOf[src]
			u.partOf[src] = -1
		})
	}
	return u
}

// Name implements Controller.
func (u *Unpartitioned) Name() string { return "Unpart-" + u.pol.Name() }

// Array implements Controller.
func (u *Unpartitioned) Array() cache.Array { return u.arr }

// NumPartitions implements Controller.
func (u *Unpartitioned) NumPartitions() int { return u.parts }

// SetTargets implements Controller: allocations are ignored (the cache is
// shared freely), but the call is accepted so allocation policies can be
// driven uniformly across schemes.
func (u *Unpartitioned) SetTargets(targets []int) {}

// Size implements Controller.
func (u *Unpartitioned) Size(part int) int { return u.sizes[part] }

// SnapshotPartitions implements Snapshotter: occupancies only (the shared
// cache has no targets and keeps no per-partition hit counters).
func (u *Unpartitioned) SnapshotPartitions(dst []PartitionSnapshot) []PartitionSnapshot {
	for _, sz := range u.sizes {
		dst = append(dst, PartitionSnapshot{Size: sz})
	}
	return dst
}

// Access implements Controller.
func (u *Unpartitioned) Access(addr uint64, part int) AccessResult {
	if u.marr != nil {
		return u.AccessMixed(addr, hash.Mix64(addr), part)
	}
	var id cache.LineID
	var ok bool
	if id, ok = u.arr.Lookup(addr); ok {
		return u.onHit(id, part)
	}
	u.pol.OnMiss(addr, part)
	u.candBuf = u.arr.Candidates(addr, u.candBuf[:0])
	res, victim := u.pickVictim()
	id, moves := u.arr.Install(addr, victim)
	res.Relocations = moves
	u.onInsert(id, addr, part)
	return res
}

// AccessMixed implements MixedController: Access with the Mix64 of addr
// precomputed, so the hashed array is not re-mixed for the lookup, the
// candidate walk, and the install.
func (u *Unpartitioned) AccessMixed(addr, mixed uint64, part int) AccessResult {
	if u.marr == nil {
		return u.Access(addr, part)
	}
	if id, ok := u.marr.LookupMixed(addr, mixed); ok {
		return u.onHit(id, part)
	}
	u.pol.OnMiss(addr, part)
	u.candBuf = u.marr.CandidatesMixed(addr, mixed, u.candBuf[:0])
	res, victim := u.pickVictim()
	id, moves := u.marr.InstallMixed(addr, mixed, victim)
	res.Relocations = moves
	u.onInsert(id, addr, part)
	return res
}

// onHit performs the hit-path bookkeeping shared by Access and AccessMixed.
func (u *Unpartitioned) onHit(id cache.LineID, part int) AccessResult {
	u.pol.OnHit(id, part)
	if old := u.partOf[id]; int(old) != part {
		// A line shared across partitions migrates to the last accessor;
		// in multiprogrammed runs address spaces are disjoint so this
		// only happens on first touch after warmup.
		if old >= 0 {
			u.sizes[old]--
		}
		u.partOf[id] = int16(part)
		u.sizes[part]++
	}
	return AccessResult{Hit: true}
}

// pickVictim selects the replacement victim from u.candBuf: the first
// invalid slot, else the policy's choice (with eviction bookkeeping).
func (u *Unpartitioned) pickVictim() (AccessResult, cache.LineID) {
	victim := cache.InvalidLine
	if u.live < len(u.partOf) {
		if lines := u.lines; lines != nil {
			for _, c := range u.candBuf {
				if !lines[c].Valid {
					victim = c
					break
				}
			}
		} else {
			for _, c := range u.candBuf {
				if !u.arr.Line(c).Valid {
					victim = c
					break
				}
			}
		}
		if victim != cache.InvalidLine {
			// The install that follows fills this free slot.
			u.live++
		}
	}
	var res AccessResult
	if victim == cache.InvalidLine {
		victim = u.pol.Victim(u.candBuf)
		res.EvictedValid = true
		res.Evicted = u.arr.Line(victim).Addr
		u.pol.OnEvict(victim)
		if old := u.partOf[victim]; old >= 0 {
			u.sizes[old]--
			u.partOf[victim] = -1
		}
	}
	return res, victim
}

// onInsert performs the insert-path bookkeeping shared by Access and
// AccessMixed.
func (u *Unpartitioned) onInsert(id cache.LineID, addr uint64, part int) {
	u.pol.OnInsert(id, addr, part)
	u.partOf[id] = int16(part)
	u.sizes[part]++
}

var _ MixedController = (*Unpartitioned)(nil)
