package ctrl

import (
	"fmt"

	"vantage/internal/cache"
	"vantage/internal/hash"
)

// Banked composes several per-bank controllers into one address-interleaved
// cache, the way the paper's 8 MB L2 is organized (Table 2: 4 banks, each
// with its own Vantage controller and per-partition state; Fig 4's register
// budget is quoted per bank). Addresses are distributed across banks by a
// hash, and capacity targets are split evenly: with good hashing each
// partition's footprint spreads uniformly, so per-bank targets of T/N lines
// implement a global target of T.
type Banked struct {
	banks []Controller
	// mixedBanks[i] is banks[i]'s mixed fast path, or nil; pre-resolved so
	// the per-access path does no type assertions.
	mixedBanks []MixedController
	h          *hash.H3
	mask       uint64
	parts      int
}

// NewBanked returns a banked controller over the given per-bank
// controllers, which must all have the same partition count. The bank count
// must be a power of two.
func NewBanked(banks []Controller, seed uint64) *Banked {
	if len(banks) == 0 || len(banks)&(len(banks)-1) != 0 {
		panic(fmt.Sprintf("ctrl: bank count %d must be a power of two", len(banks)))
	}
	parts := banks[0].NumPartitions()
	for _, b := range banks {
		if b.NumPartitions() != parts {
			panic("ctrl: banks disagree on partition count")
		}
	}
	mixed := make([]MixedController, len(banks))
	for i, b := range banks {
		mixed[i], _ = b.(MixedController)
	}
	return &Banked{
		banks:      banks,
		mixedBanks: mixed,
		h:          hash.NewH3(16, hash.Mix64(seed^0xbabe)),
		mask:       uint64(len(banks) - 1),
		parts:      parts,
	}
}

// Name implements Controller.
func (b *Banked) Name() string {
	return fmt.Sprintf("%s x%d", b.banks[0].Name(), len(b.banks))
}

// Array implements Controller; it returns the first bank's array (banked
// caches have no single array — use Bank to reach the others).
func (b *Banked) Array() cache.Array { return b.banks[0].Array() }

// Access implements Controller.
func (b *Banked) Access(addr uint64, part int) AccessResult {
	return b.AccessMixed(addr, hash.Mix64(addr), part)
}

// AccessMixed implements MixedController: the bank routing hash and the
// bank's own access path share one Mix64 of the address.
func (b *Banked) AccessMixed(addr, mixed uint64, part int) AccessResult {
	i := b.h.Hash(mixed) & b.mask
	if mb := b.mixedBanks[i]; mb != nil {
		return mb.AccessMixed(addr, mixed, part)
	}
	return b.banks[i].Access(addr, part)
}

// SetTargets implements Controller: global line targets are divided evenly
// across banks (remainders to the lower banks).
func (b *Banked) SetTargets(targets []int) {
	n := len(b.banks)
	per := make([]int, len(targets))
	for bi, bank := range b.banks {
		for p, t := range targets {
			share := t / n
			if bi < t%n {
				share++
			}
			per[p] = share
		}
		bank.SetTargets(per)
	}
}

// Size implements Controller: the sum over banks.
func (b *Banked) Size(part int) int {
	total := 0
	for _, bank := range b.banks {
		total += bank.Size(part)
	}
	return total
}

// NumPartitions implements Controller.
func (b *Banked) NumPartitions() int { return b.parts }

// SnapshotPartitions implements Snapshotter when every bank does: the
// element-wise sum of the per-bank snapshots. Banks that cannot snapshot
// contribute only their Size.
func (b *Banked) SnapshotPartitions(dst []PartitionSnapshot) []PartitionSnapshot {
	base := len(dst)
	for p := 0; p < b.parts; p++ {
		dst = append(dst, PartitionSnapshot{})
	}
	per := make([]PartitionSnapshot, 0, b.parts)
	for _, bank := range b.banks {
		if sn, ok := bank.(Snapshotter); ok {
			per = sn.SnapshotPartitions(per[:0])
			for p := range per {
				d := &dst[base+p]
				d.Size += per[p].Size
				d.Target += per[p].Target
				d.Hits += per[p].Hits
				d.Misses += per[p].Misses
				d.Demotions += per[p].Demotions
				d.Promotions += per[p].Promotions
			}
			continue
		}
		for p := 0; p < b.parts; p++ {
			dst[base+p].Size += bank.Size(p)
		}
	}
	return dst
}

// Banks returns the bank count.
func (b *Banked) Banks() int { return len(b.banks) }

// Bank returns bank i's controller.
func (b *Banked) Bank(i int) Controller { return b.banks[i] }

var _ Controller = (*Banked)(nil)
var _ MixedController = (*Banked)(nil)
