package ucp

import (
	"testing"

	"vantage/internal/hash"
)

func TestNewUMONPanics(t *testing.T) {
	cases := []struct{ ways, sets, bits int }{
		{0, 64, 5}, {16, 0, 5}, {16, 63, 5}, {16, 64, -1}, {16, 64, 0},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewUMON(%d,%d,%d) did not panic", c.ways, c.sets, c.bits)
				}
			}()
			NewUMON(c.ways, c.sets, c.bits, 1)
		}()
	}
}

func TestUMONHitCurveSmallWorkingSet(t *testing.T) {
	// Sample everything (ratioBits=0) so the estimates are exact. A working
	// set that fits in 4 ways should show no extra hits beyond depth ~4.
	u := NewUMON(16, 64, 64, 7)
	rng := hash.NewRand(3)
	// 128 distinct lines over 64 sets -> about 2 lines per set.
	for i := 0; i < 100000; i++ {
		u.Access(uint64(rng.Intn(128)))
	}
	hc := u.HitCurve()
	if hc[16] == 0 {
		t.Fatal("no hits recorded")
	}
	// Monotone non-decreasing.
	for w := 1; w <= 16; w++ {
		if hc[w] < hc[w-1] {
			t.Fatalf("hit curve decreases at %d", w)
		}
	}
	// Nearly all hits should come from the first few stack positions.
	if float64(hc[8]) < 0.99*float64(hc[16]) {
		t.Fatalf("deep stack hits for a tiny working set: %v", hc)
	}
}

func TestUMONMissCurveStream(t *testing.T) {
	u := NewUMON(16, 64, 64, 9)
	for i := 0; i < 200000; i++ {
		u.Access(uint64(i)) // pure stream: never hits
	}
	mc := u.MissCurve()
	if mc[0] == 0 {
		t.Fatal("no misses recorded")
	}
	if mc[16] != mc[0] {
		t.Fatalf("stream shows utility: %v", mc)
	}
}

func TestUMONSamplingReducesAccesses(t *testing.T) {
	full := NewUMON(16, 2048, 2048, 11)
	sampled := NewUMON(16, 2048, 64, 11)
	for i := 0; i < 100000; i++ {
		full.Access(uint64(i))
		sampled.Access(uint64(i))
	}
	if sampled.Accesses() == 0 {
		t.Fatal("sampling filtered everything")
	}
	ratio := float64(sampled.Accesses()) / float64(full.Accesses())
	if ratio < 0.02 || ratio > 0.05 {
		t.Fatalf("sampling ratio %.4f, want ~1/32", ratio)
	}
}

func TestUMONAccessMixedMatchesAccess(t *testing.T) {
	// AccessMixed with the caller-computed Mix64 must be observationally
	// identical to Access: same sampling decisions, same hit curve.
	a := NewUMON(16, 2048, 64, 17)
	b := NewUMON(16, 2048, 64, 17)
	for i := 0; i < 50000; i++ {
		addr := hash.Mix64(uint64(i)) % 4096
		a.Access(addr)
		b.AccessMixed(addr, hash.Mix64(addr))
	}
	if a.Accesses() != b.Accesses() {
		t.Fatalf("sampled access counts differ: %d vs %d", a.Accesses(), b.Accesses())
	}
	ca, cb := a.HitCurve(), b.HitCurve()
	for w := range ca {
		if ca[w] != cb[w] {
			t.Fatalf("hit curves differ at way %d: %d vs %d", w, ca[w], cb[w])
		}
	}
}

func TestUMONDecay(t *testing.T) {
	u := NewUMON(4, 64, 64, 13)
	for i := 0; i < 1000; i++ {
		u.Access(uint64(i % 10))
	}
	before := u.HitCurve()[4]
	u.Decay()
	after := u.HitCurve()[4]
	if after > before/2+4 || after < before/2-4 {
		t.Fatalf("decay: %d -> %d", before, after)
	}
}

func TestLookaheadFavorsHighUtility(t *testing.T) {
	// Partition 0 gains 100 hits/unit up to 8 units; partition 1 gains 10.
	mk := func(slope float64, knee int, units int) []float64 {
		c := make([]float64, units+1)
		for i := 1; i <= units; i++ {
			if i <= knee {
				c[i] = c[i-1] + slope
			} else {
				c[i] = c[i-1]
			}
		}
		return c
	}
	curves := [][]float64{mk(100, 8, 16), mk(10, 16, 16)}
	alloc := Lookahead(curves, 16, 1)
	if alloc[0] != 8 || alloc[1] != 8 {
		t.Fatalf("alloc = %v, want [8 8]", alloc)
	}
}

func TestLookaheadSeesPastPlateaus(t *testing.T) {
	// Cache-fitting shape: no utility until 12 units, then a cliff of 1000
	// hits. Greedy per-unit allocation would never get there; lookahead must.
	cliff := make([]float64, 17)
	for i := 12; i <= 16; i++ {
		cliff[i] = 1000
	}
	gentle := make([]float64, 17)
	for i := 1; i <= 16; i++ {
		gentle[i] = gentle[i-1] + 20 // 320 total
	}
	alloc := Lookahead([][]float64{cliff, gentle}, 16, 1)
	if alloc[0] < 12 {
		t.Fatalf("lookahead missed the cliff: %v", alloc)
	}
}

func TestLookaheadExhaustsUnits(t *testing.T) {
	flat := make([]float64, 9)
	alloc := Lookahead([][]float64{flat, flat, flat}, 24, 1)
	sum := 0
	for _, a := range alloc {
		if a < 1 {
			t.Fatalf("allocation below minimum: %v", alloc)
		}
		sum += a
	}
	if sum != 24 {
		t.Fatalf("allocated %d of 24 units: %v", sum, alloc)
	}
}

func TestLookaheadPanicsWhenInfeasible(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("infeasible minPer did not panic")
		}
	}()
	Lookahead([][]float64{{0, 1}, {0, 1}}, 1, 1)
}

func TestInterpolateCurve(t *testing.T) {
	curve := []uint64{0, 10, 20, 30, 40}
	out := InterpolateCurve(curve, 8)
	if len(out) != 9 {
		t.Fatalf("len = %d", len(out))
	}
	want := []float64{0, 5, 10, 15, 20, 25, 30, 35, 40}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestInterpolateCurvePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad input did not panic")
		}
	}()
	InterpolateCurve([]uint64{5}, 8)
}

func TestPolicyAllocatesTowardsUtility(t *testing.T) {
	for _, gran := range []Granularity{GranWays, GranLines} {
		p := NewPolicy(2, 16, 4096, gran, 5)
		rng := hash.NewRand(17)
		// Partition 0 reuses heavily; partition 1 streams.
		for i := 0; i < 400000; i++ {
			p.Access(0, uint64(rng.Intn(256)))
			p.Access(1, uint64(1)<<40|uint64(i))
		}
		alloc := p.Allocate(4096)
		if alloc[0]+alloc[1] != 4096 {
			t.Fatalf("gran %v: allocations sum to %d", gran, alloc[0]+alloc[1])
		}
		if alloc[0] <= alloc[1] {
			t.Fatalf("gran %v: reuse partition got %v", gran, alloc)
		}
	}
}

func TestPolicyLineGranularityIsFiner(t *testing.T) {
	// With line granularity, allocations need not be multiples of a way's
	// worth of lines. Construct asymmetric utility and check granularity.
	pw := NewPolicy(2, 4, 4096, GranWays, 7)
	pl := NewPolicy(2, 4, 4096, GranLines, 7)
	rng := hash.NewRand(19)
	for i := 0; i < 200000; i++ {
		a0 := uint64(rng.Intn(300))
		a1 := uint64(1)<<40 | uint64(rng.Intn(150))
		pw.Access(0, a0)
		pw.Access(1, a1)
		pl.Access(0, a0)
		pl.Access(1, a1)
	}
	aw := pw.Allocate(4096)
	al := pl.Allocate(4096)
	wayLines := 4096 / 4
	if aw[0]%wayLines != 0 {
		t.Fatalf("way-granular allocation not a multiple of way size: %v", aw)
	}
	_ = al // line-granular allocations are unconstrained; just must sum
	if al[0]+al[1] != 4096 {
		t.Fatalf("line allocations sum to %d", al[0]+al[1])
	}
}

func TestPolicyMinimumOneUnitEach(t *testing.T) {
	p := NewPolicy(4, 16, 1024, GranWays, 9)
	// Only partition 0 has any utility.
	rng := hash.NewRand(23)
	for i := 0; i < 100000; i++ {
		p.Access(0, uint64(rng.Intn(100)))
	}
	alloc := p.Allocate(1024)
	for i, a := range alloc {
		if a < 1024/16 {
			t.Fatalf("partition %d got %d lines, below one way's worth: %v", i, a, alloc)
		}
	}
}
