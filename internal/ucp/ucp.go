// Package ucp implements utility-based cache partitioning (Qureshi & Patt,
// MICRO 2006), the allocation policy the paper drives every partitioning
// scheme with (§5): per-core UMON-DSS utility monitors estimate each
// thread's hit curve versus allocated capacity, and the Lookahead algorithm
// turns the curves into partition sizes that maximize expected hits.
//
// For way-granularity schemes (way-partitioning, PIPP) Lookahead runs in way
// units. For Vantage, which partitions at line granularity, the way-granular
// miss curves are linearly interpolated to 256 points, as the paper
// describes (§5).
package ucp

import (
	"fmt"
	"math/bits"

	"vantage/internal/hash"
)

// UMON is a dynamic-set-sampling utility monitor (UMON-DSS): an auxiliary
// tag directory with true-LRU stacks over a sampled subset of sets, counting
// hits per LRU stack position plus misses. The monitor observes one core's
// L2 access stream and estimates the hits the core would achieve if it had
// 1..W ways of the cache to itself.
type UMON struct {
	ways      int
	totalSets int // sets of the modeled cache (cacheLines / ways)
	sampled   int // instantiated ATD sets
	ratio     int // totalSets / sampled, a power of two
	// sampleMask (ratio-1) and ratioShift (log2 ratio) express the sampling
	// filter and set compaction as mask/shift: the filter runs on every
	// monitored access and a runtime-divisor modulo would dominate it.
	sampleMask int
	ratioShift uint
	h          *hash.H3
	// tags is the auxiliary tag directory, one MRU-first LRU stack of ways
	// entries per sampled set, flattened into a single backing array
	// (set s occupies tags[s*ways : (s+1)*ways]) so the per-access stack
	// walk reads contiguous memory with no per-set slice header.
	tags      []uint64
	occupancy []int
	hits      []uint64 // per stack position
	misses    uint64
	accesses  uint64
	// decision memo: whether an address maps to a sampled set (and which
	// compacted set) is a pure function of the address, so it is cached in a
	// small direct-mapped table and survives across repartition intervals.
	dec []decEntry
	// sig/sigCnt form an exact per-set presence filter over the resident
	// tags: bit 1<<(tag&63) of sig[set] is set iff sigCnt[set*64 + tag&63]
	// counts at least one resident tag mapping to that bit. A clear bit
	// proves the tag is absent, so a miss — which would otherwise scan the
	// whole stack before shifting it — skips the scan; a set bit falls
	// through to the exact scan, so hit depths are untouched.
	sig    []uint64
	sigCnt []uint8
}

// decEntry is one decision-memo slot: the address and its encoded decision
// (decUnknown empty, decFiltered not sampled, else compacted set + 1). The
// 16-byte record keeps a probe within one cache line.
type decEntry struct {
	addr uint64
	set  int32
	_    int32
}

// decision-memo geometry: 512 entries (8 KiB per UMON) cover the hot working
// set of a monitored stream without crowding the cache.
const (
	decEntries  = 512
	decMask     = decEntries - 1
	decUnknown  = int32(0)
	decFiltered = int32(-1)
)

// NewUMON returns a monitor modeling a cache with the given associativity
// and totalSets sets, instantiating at most sampledSets auxiliary-tag sets
// (dynamic set sampling; the paper uses 64). The monitor's set geometry must
// mirror the modeled cache so per-set LRU stack depths are faithful.
func NewUMON(ways, totalSets, sampledSets int, seed uint64) *UMON {
	if ways <= 0 || totalSets <= 0 || totalSets&(totalSets-1) != 0 {
		panic(fmt.Sprintf("ucp: bad UMON geometry ways=%d sets=%d", ways, totalSets))
	}
	if sampledSets <= 0 {
		panic("ucp: need at least one sampled set")
	}
	if sampledSets > totalSets {
		sampledSets = totalSets
	}
	// Round the sampled count down to a power of two so the ratio divides.
	for totalSets%sampledSets != 0 || sampledSets&(sampledSets-1) != 0 {
		sampledSets--
	}
	ratio := totalSets / sampledSets
	u := &UMON{
		ways:       ways,
		totalSets:  totalSets,
		sampled:    sampledSets,
		ratio:      ratio,
		sampleMask: ratio - 1,
		ratioShift: uint(bits.TrailingZeros(uint(ratio))),
		h:          hash.NewH3(32, hash.Mix64(seed^0x0e0e)),
		tags:       make([]uint64, sampledSets*ways),
		occupancy:  make([]int, sampledSets),
		hits:       make([]uint64, ways),
		dec:        make([]decEntry, decEntries),
		sig:        make([]uint64, sampledSets),
		sigCnt:     make([]uint8, sampledSets*64),
	}
	return u
}

// Ways returns the monitor associativity.
func (u *UMON) Ways() int { return u.ways }

// SampledSets returns the number of instantiated ATD sets.
func (u *UMON) SampledSets() int { return u.sampled }

// Access feeds one address from the monitored core's access stream. Only
// addresses mapping to sampled sets touch the auxiliary tags.
func (u *UMON) Access(addr uint64) {
	u.AccessMixed(addr, hash.Mix64(addr))
}

// AccessMixed is Access with the Mix64 finalizer already applied to addr.
// Serving layers that route the same address through several hashed
// structures (shard routing, the controller's array, the UMON) compute the
// mix once and share it; the result is identical to Access(addr).
func (u *UMON) AccessMixed(addr, mixed uint64) {
	// The sampled-set decision (H3 hash, filter mask, set compaction) is a
	// pure function of the address; consult the memo before hashing.
	var set int
	e := &u.dec[int(mixed)&decMask]
	if e.addr == addr && e.set != decUnknown {
		if e.set == decFiltered {
			return
		}
		set = int(e.set) - 1
	} else {
		hv := u.h.Hash(mixed)
		modelSet := int(hv) & (u.totalSets - 1)
		e.addr = addr
		if modelSet&u.sampleMask != 0 {
			e.set = decFiltered
			return
		}
		set = modelSet >> u.ratioShift
		e.set = int32(set) + 1
	}
	u.accesses++
	stack := u.tags[set*u.ways : (set+1)*u.ways]
	n := u.occupancy[set]
	bit := uint64(1) << (addr & 63)
	if u.sig[set]&bit != 0 {
		// The tag may be resident: run the exact stack scan.
		for k := 0; k < n; k++ {
			if stack[k] == addr {
				u.hits[k]++
				copy(stack[1:k+1], stack[:k])
				stack[0] = addr
				return
			}
		}
	}
	u.misses++
	if n < u.ways {
		copy(stack[1:n+1], stack[:n])
		n++
		u.occupancy[set] = n
	} else {
		evb := set<<6 | int(stack[u.ways-1]&63)
		if u.sigCnt[evb]--; u.sigCnt[evb] == 0 {
			u.sig[set] &^= uint64(1) << (evb & 63)
		}
		copy(stack[1:], stack[:u.ways-1])
	}
	stack[0] = addr
	u.sigCnt[set<<6|int(addr&63)]++
	u.sig[set] |= bit
}

// HitCurve returns the estimated hits with w = 0..Ways() ways: element w is
// the number of sampled accesses that hit within LRU stack depth w.
func (u *UMON) HitCurve() []uint64 {
	curve := make([]uint64, u.ways+1)
	for w := 1; w <= u.ways; w++ {
		curve[w] = curve[w-1] + u.hits[w-1]
	}
	return curve
}

// MissCurve returns estimated misses with w = 0..Ways() ways.
func (u *UMON) MissCurve() []uint64 {
	hc := u.HitCurve()
	total := u.misses + hc[u.ways]
	out := make([]uint64, len(hc))
	for w := range hc {
		out[w] = total - hc[w]
	}
	return out
}

// Accesses returns the sampled access count since the last Decay.
func (u *UMON) Accesses() uint64 { return u.accesses }

// Reset clears the monitor completely — auxiliary-tag stacks and all
// counters — so a monitor slot can be reused for a fresh stream (e.g. a new
// tenant taking over a freed partition slot in a serving layer).
func (u *UMON) Reset() {
	for i := range u.occupancy {
		u.occupancy[i] = 0
	}
	for i := range u.sig {
		u.sig[i] = 0
	}
	for i := range u.sigCnt {
		u.sigCnt[i] = 0
	}
	for i := range u.hits {
		u.hits[i] = 0
	}
	u.misses, u.accesses = 0, 0
}

// Decay halves all counters, aging the estimates across repartitioning
// intervals as UCP prescribes.
func (u *UMON) Decay() {
	for i := range u.hits {
		u.hits[i] /= 2
	}
	u.misses /= 2
	u.accesses /= 2
}

// ---------------------------------------------------------------------------
// Lookahead
// ---------------------------------------------------------------------------

// Lookahead runs UCP's lookahead allocation: given per-partition hit curves
// over allocation units (curves[i][a] = expected hits of partition i with a
// units, len units+1 and monotone non-decreasing), it distributes total
// units, at least minPer each, greedily by maximum marginal utility
// (hits gained per unit, evaluated over all lookahead distances).
//
// The naive algorithm rescans every partition's full distance range on every
// pick — O(p·units) per pick, and the dominant repartitioning cost at line
// granularity (256 units). This implementation caches each partition's
// champion distance (argmax over d of marginal utility): a champion computed
// at allocation a stays the argmax while a is unchanged and the remaining
// budget still covers its distance, because shrinking the scan range cannot
// change an argmax that remains inside it. Only the picked partition (its a
// changed) and partitions whose champion distance exceeds the new remaining
// budget are rescanned. Champions are recomputed with the exact arithmetic
// and scan order of the naive loop, and ties break identically (strictly
// greater beats, so the smallest distance and then the lowest partition
// index win), so the allocation is bit-identical to the naive algorithm's.
func Lookahead(curves [][]float64, total, minPer int) []int {
	p := len(curves)
	if p == 0 {
		return nil
	}
	if minPer*p > total {
		panic(fmt.Sprintf("ucp: cannot give %d partitions %d units each out of %d", p, minPer, total))
	}
	units := len(curves[0]) - 1
	alloc := make([]int, p)
	remaining := total
	for i := range alloc {
		alloc[i] = minPer
		remaining -= minPer
	}
	// Champion cache: chD[i]/chMU[i] hold partition i's best (distance,
	// marginal utility) for its current allocation; chValid[i] marks entries
	// that are current.
	chD := make([]int, p)
	chMU := make([]float64, p)
	chValid := make([]bool, p)
	for remaining > 0 {
		bestPart, bestD, bestMU := -1, 0, 0.0
		for i := 0; i < p; i++ {
			a := alloc[i]
			if a >= units {
				continue
			}
			if !chValid[i] || chD[i] > remaining {
				maxD := units - a
				if maxD > remaining {
					maxD = remaining
				}
				curve := curves[i]
				base := curve[a]
				d0, mu0 := 0, 0.0
				for d := 1; d <= maxD; d++ {
					mu := (curve[a+d] - base) / float64(d)
					if mu > mu0 {
						d0, mu0 = d, mu
					}
				}
				chD[i], chMU[i], chValid[i] = d0, mu0, true
			}
			if chMU[i] > bestMU {
				bestPart, bestD, bestMU = i, chD[i], chMU[i]
			}
		}
		if bestPart < 0 {
			// No partition has positive marginal utility (or all are
			// saturated): spread the remaining capacity evenly instead of
			// piling zero-utility space onto whichever partition comes
			// first.
			for i := 0; remaining > 0; i = (i + 1) % p {
				alloc[i]++
				remaining--
			}
			break
		}
		alloc[bestPart] += bestD
		remaining -= bestD
		chValid[bestPart] = false
	}
	return alloc
}

// InterpolateCurve linearly resamples a way-granularity hit curve
// (len W+1) onto n+1 points, the paper's 256-point refinement for Vantage.
func InterpolateCurve(curve []uint64, n int) []float64 {
	w := len(curve) - 1
	if w <= 0 || n <= 0 {
		panic("ucp: bad interpolation input")
	}
	out := make([]float64, n+1)
	for j := 0; j <= n; j++ {
		x := float64(j) * float64(w) / float64(n)
		lo := int(x)
		if lo >= w {
			out[j] = float64(curve[w])
			continue
		}
		frac := x - float64(lo)
		out[j] = float64(curve[lo])*(1-frac) + float64(curve[lo+1])*frac
	}
	return out
}

// ---------------------------------------------------------------------------
// Policy
// ---------------------------------------------------------------------------

// Granularity selects the allocation units Lookahead runs in.
type Granularity int

const (
	// GranWays allocates whole ways (way-partitioning, PIPP).
	GranWays Granularity = iota
	// GranLines allocates 256ths of the partitionable capacity (Vantage).
	GranLines
)

// linePoints is the resolution of line-granularity allocation (§5).
const linePoints = 256

// Policy is the complete UCP allocation policy: one UMON per partition plus
// Lookahead, producing line-granularity targets for any partitioning scheme.
type Policy struct {
	monitors []*UMON
	gran     Granularity
	ways     int
}

// NewPolicy returns a UCP policy for parts partitions over a cache of
// cacheLines lines, with UMONs of the given associativity (matching the
// monitoring granularity, typically the partitioned cache's ways or the way
// count of the baseline the paper compares against) and up to 64 sampled
// sets each, mirroring the modeled cache's set count (cacheLines/ways).
func NewPolicy(parts, ways, cacheLines int, gran Granularity, seed uint64) *Policy {
	if parts <= 0 {
		panic("ucp: need at least one partition")
	}
	totalSets := cacheLines / ways
	if totalSets < 1 {
		totalSets = 1
	}
	// Round up to a power of two.
	ts := 1
	for ts < totalSets {
		ts <<= 1
	}
	p := &Policy{gran: gran, ways: ways}
	for i := 0; i < parts; i++ {
		p.monitors = append(p.monitors, NewUMON(ways, ts, 64, hash.Mix64(seed+uint64(i))))
	}
	return p
}

// Access feeds one address of partition part's access stream into its UMON.
func (p *Policy) Access(part int, addr uint64) { p.monitors[part].Access(addr) }

// AccessMixed is Access with the Mix64 finalizer already applied to addr
// (see UMON.AccessMixed).
func (p *Policy) AccessMixed(part int, addr, mixed uint64) {
	p.monitors[part].AccessMixed(addr, mixed)
}

// Monitor exposes partition part's UMON (for tests and instrumentation).
func (p *Policy) Monitor(part int) *UMON { return p.monitors[part] }

// Allocate computes the next per-partition targets in lines, summing to
// totalLines (the partitionable capacity), and decays the monitors.
func (p *Policy) Allocate(totalLines int) []int {
	return p.AllocateActive(totalLines, nil)
}

// AllocateActive is Allocate restricted to a subset of partitions: capacity
// is distributed among the partitions with active[i] true only (a nil slice
// means all are active); the rest get zero-line targets — the paper's §3.4
// partition-deletion idiom, used by serving layers whose tenant population
// changes at runtime. All monitors are decayed, active or not.
func (p *Policy) AllocateActive(totalLines int, active []bool) []int {
	parts := len(p.monitors)
	allocs := make([]int, parts)
	idx := make([]int, 0, parts)
	for i := 0; i < parts; i++ {
		if active == nil || (i < len(active) && active[i]) {
			idx = append(idx, i)
		}
	}
	if len(idx) > 0 {
		curves := make([][]float64, len(idx))
		var units int
		switch p.gran {
		case GranWays:
			units = p.ways
			for k, i := range idx {
				hc := p.monitors[i].HitCurve()
				f := make([]float64, len(hc))
				for j, v := range hc {
					f[j] = float64(v)
				}
				curves[k] = f
			}
		case GranLines:
			units = linePoints
			for k, i := range idx {
				curves[k] = InterpolateCurve(p.monitors[i].HitCurve(), linePoints)
			}
		default:
			panic("ucp: unknown granularity")
		}
		shares := Lookahead(curves, units, 1)
		for k, i := range idx {
			allocs[i] = totalLines * shares[k] / units
		}
		// Fix rounding drift so the targets sum exactly to totalLines.
		sum := 0
		for _, a := range allocs {
			sum += a
		}
		for k := 0; sum < totalLines; k = (k + 1) % len(idx) {
			allocs[idx[k]]++
			sum++
		}
		for k := 0; sum > totalLines; k = (k + 1) % len(idx) {
			if allocs[idx[k]] > 0 {
				allocs[idx[k]]--
				sum--
			}
		}
	}
	for _, m := range p.monitors {
		m.Decay()
	}
	return allocs
}
