package ucp

import (
	"testing"

	"vantage/internal/hash"
)

func TestNewUMONRRIPPanics(t *testing.T) {
	cases := []struct{ ways, sets, sampled int }{
		{0, 64, 64}, {16, 0, 64}, {16, 63, 64}, {16, 64, 0},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewUMONRRIP(%d,%d,%d) did not panic", c.ways, c.sets, c.sampled)
				}
			}()
			NewUMONRRIP(c.ways, c.sets, c.sampled, 1)
		}()
	}
}

func TestUMONRRIPHitCurveShape(t *testing.T) {
	u := NewUMONRRIP(16, 64, 64, 7)
	rng := hash.NewRand(3)
	for i := 0; i < 100000; i++ {
		u.Access(uint64(rng.Intn(128)))
	}
	hc := u.HitCurve()
	if hc[16] == 0 {
		t.Fatal("no hits recorded")
	}
	for w := 1; w <= 16; w++ {
		if hc[w] < hc[w-1] {
			t.Fatalf("curve decreases at %d", w)
		}
	}
	// Small hot working set: essentially all hits at shallow ranks.
	if float64(hc[8]) < 0.95*float64(hc[16]) {
		t.Fatalf("deep-rank hits for a hot set: %v", hc)
	}
}

func TestUMONRRIPPrefersBRRIPForThrash(t *testing.T) {
	// A cyclic scan larger than the monitored capacity: SRRIP gets zero
	// hits; BRRIP keeps a subset resident (thrash resistance). The monitor
	// must prefer BRRIP.
	u := NewUMONRRIP(16, 64, 64, 9)
	for round := 0; round < 200; round++ {
		for a := uint64(0); a < 4096; a++ {
			u.Access(a)
		}
	}
	if !u.PreferBRRIP() {
		t.Fatal("thrashing stream did not prefer BRRIP")
	}
}

func TestUMONRRIPPrefersSRRIPForReuse(t *testing.T) {
	// A working set that fits: both halves hit nearly always, and the
	// default (insufficient difference) must be SRRIP; exercise with a mix
	// of reuse and scans where SRRIP's scan resistance wins.
	u := NewUMONRRIP(16, 64, 64, 11)
	rng := hash.NewRand(5)
	for i := 0; i < 200000; i++ {
		u.Access(uint64(rng.Intn(200))) // hot reuse
		if i%4 == 0 {
			u.Access(1<<30 | uint64(i)) // occasional scan
		}
	}
	if u.PreferBRRIP() {
		t.Fatal("reuse-dominated stream preferred BRRIP")
	}
}

func TestUMONRRIPDecay(t *testing.T) {
	u := NewUMONRRIP(4, 64, 64, 13)
	for i := 0; i < 10000; i++ {
		u.Access(uint64(i % 16))
	}
	before := u.HitCurve()[4]
	u.Decay()
	after := u.HitCurve()[4]
	if after > before/2+4 || after+4 < before/2 {
		t.Fatalf("decay: %d -> %d", before, after)
	}
	if u.Accesses() != 10000/2 {
		t.Fatalf("accesses after decay: %d", u.Accesses())
	}
}

func TestPolicyRRIPAllocatesAndChooses(t *testing.T) {
	p := NewPolicyRRIP(2, 16, 4096, 17)
	rng := hash.NewRand(19)
	// Partition 0: capacity-hungry reuse over ~3/4 of the cache.
	// Partition 1: huge cyclic thrash (BRRIP keeps only a sliver resident).
	for i := 0; i < 300000; i++ {
		p.Access(0, uint64(rng.Intn(3000)))
		p.Access(1, 1<<40|uint64(i%100000))
	}
	alloc := p.Allocate(4096)
	if alloc[0]+alloc[1] != 4096 {
		t.Fatalf("allocations sum to %d", alloc[0]+alloc[1])
	}
	if alloc[0] <= alloc[1] {
		t.Fatalf("reuse partition got %v", alloc)
	}
	pols := p.InsertionPolicies()
	if len(pols) != 2 {
		t.Fatal("policy vector wrong length")
	}
	if pols[1] != true {
		t.Fatal("thrashing partition should prefer BRRIP")
	}
	if p.Monitor(0) == nil {
		t.Fatal("monitor accessor broken")
	}
}

func TestNewPolicyRRIPPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero partitions accepted")
		}
	}()
	NewPolicyRRIP(0, 16, 1024, 1)
}
