package ucp

import (
	"fmt"
	"math/bits"

	"vantage/internal/hash"
)

// UMONRRIP is the modified utility monitor the paper builds for
// Vantage-DRRIP (§6.2): auxiliary tag sets maintain RRIP state instead of
// LRU, with hit counters indexed by the line's rank in RRPV order; half of
// the sampled sets insert with SRRIP and half with BRRIP, so each interval
// the monitor can report which insertion policy serves the partition better
// (set dueling inside the monitor) in addition to the utility curve
// Lookahead needs.
type UMONRRIP struct {
	ways      int
	totalSets int
	sampled   int
	ratio     int // totalSets / sampled, a power of two
	// Mask/shift forms of the ratio, as in UMON: the sampling filter runs on
	// every monitored access.
	sampleMask int
	ratioShift uint
	h          *hash.H3
	rng        *hash.Rand
	tags       [][]uint64
	rrpv       [][]uint8
	occupancy  []int
	hits       []uint64 // per RRPV-rank position
	misses     uint64
	accesses   uint64
	// Dueling: per-half hit/access counts since the last Decay.
	halfHits [2]uint64
	halfAcc  [2]uint64
}

// NewUMONRRIP returns an RRIP utility monitor mirroring a cache with the
// given associativity and set count, sampling at most sampledSets sets.
func NewUMONRRIP(ways, totalSets, sampledSets int, seed uint64) *UMONRRIP {
	if ways <= 0 || totalSets <= 0 || totalSets&(totalSets-1) != 0 {
		panic(fmt.Sprintf("ucp: bad UMON-RRIP geometry ways=%d sets=%d", ways, totalSets))
	}
	if sampledSets <= 0 {
		panic("ucp: need at least one sampled set")
	}
	if sampledSets > totalSets {
		sampledSets = totalSets
	}
	for totalSets%sampledSets != 0 || sampledSets&(sampledSets-1) != 0 || sampledSets < 2 {
		sampledSets--
		if sampledSets == 0 {
			panic("ucp: cannot sample at least two sets")
		}
	}
	ratio := totalSets / sampledSets
	u := &UMONRRIP{
		ways:       ways,
		totalSets:  totalSets,
		sampled:    sampledSets,
		ratio:      ratio,
		sampleMask: ratio - 1,
		ratioShift: uint(bits.TrailingZeros(uint(ratio))),
		h:          hash.NewH3(32, hash.Mix64(seed^0x0e1e)),
		rng:        hash.NewRand(seed ^ 0x4449),
		tags:       make([][]uint64, sampledSets),
		rrpv:       make([][]uint8, sampledSets),
		occupancy:  make([]int, sampledSets),
		hits:       make([]uint64, ways),
	}
	for i := range u.tags {
		u.tags[i] = make([]uint64, ways)
		u.rrpv[i] = make([]uint8, ways)
		for w := range u.rrpv[i] {
			u.rrpv[i][w] = 7
		}
	}
	return u
}

// half reports whether set is a BRRIP-insertion set (odd halves duel).
func (u *UMONRRIP) half(set int) int { return set & 1 }

// Access feeds one address from the monitored partition's stream.
func (u *UMONRRIP) Access(addr uint64) {
	u.AccessMixed(addr, hash.Mix64(addr))
}

// AccessMixed is Access with the Mix64 finalizer already applied to addr
// (see UMON.AccessMixed); the result is identical to Access(addr).
func (u *UMONRRIP) AccessMixed(addr, mixed uint64) {
	hv := u.h.Hash(mixed)
	modelSet := int(hv) & (u.totalSets - 1)
	if modelSet&u.sampleMask != 0 {
		return
	}
	set := modelSet >> u.ratioShift
	u.accesses++
	u.halfAcc[u.half(set)]++
	tags, rrpvs := u.tags[set], u.rrpv[set]
	n := u.occupancy[set]
	for k := 0; k < n; k++ {
		if tags[k] == addr {
			// Hit: the utility position is the line's rank in RRPV order
			// (ties by slot order), the RRIP analogue of stack distance.
			rank := 0
			for j := 0; j < n; j++ {
				if j == k {
					continue
				}
				if rrpvs[j] < rrpvs[k] || (rrpvs[j] == rrpvs[k] && j < k) {
					rank++
				}
			}
			u.hits[rank]++
			u.halfHits[u.half(set)]++
			rrpvs[k] = 0
			return
		}
	}
	u.misses++
	// Victim: max RRPV, aging all if none is saturated.
	victim := 0
	if n < u.ways {
		victim = n
		u.occupancy[set] = n + 1
	} else {
		maxv := uint8(0)
		for k := 0; k < n; k++ {
			if rrpvs[k] > maxv {
				maxv = rrpvs[k]
				victim = k
			}
		}
		if maxv < 7 {
			for k := 0; k < n; k++ {
				rrpvs[k] += 7 - maxv
			}
		}
	}
	tags[victim] = addr
	if u.half(set) == 1 {
		// BRRIP half: distant insertion nearly always.
		if u.rng.Intn(32) == 0 {
			rrpvs[victim] = 6
		} else {
			rrpvs[victim] = 7
		}
	} else {
		rrpvs[victim] = 6 // SRRIP half
	}
}

// HitCurve returns estimated hits with 0..Ways() allocated units, by RRPV
// rank.
func (u *UMONRRIP) HitCurve() []uint64 {
	curve := make([]uint64, u.ways+1)
	for w := 1; w <= u.ways; w++ {
		curve[w] = curve[w-1] + u.hits[w-1]
	}
	return curve
}

// PreferBRRIP reports whether the BRRIP half achieved the better hit ratio
// in the current interval (the per-partition policy choice of §6.2).
func (u *UMONRRIP) PreferBRRIP() bool {
	// Compare hit ratios; insufficient samples default to SRRIP.
	if u.halfAcc[0] < 16 || u.halfAcc[1] < 16 {
		return false
	}
	return float64(u.halfHits[1])/float64(u.halfAcc[1]) >
		float64(u.halfHits[0])/float64(u.halfAcc[0])
}

// Accesses returns the sampled access count since the last Decay.
func (u *UMONRRIP) Accesses() uint64 { return u.accesses }

// Decay halves the counters across repartitioning intervals.
func (u *UMONRRIP) Decay() {
	for i := range u.hits {
		u.hits[i] /= 2
	}
	u.misses /= 2
	u.accesses /= 2
	for i := range u.halfHits {
		u.halfHits[i] /= 2
		u.halfAcc[i] /= 2
	}
}

// ---------------------------------------------------------------------------

// PolicyRRIP is the allocation policy for Vantage-DRRIP: UMON-RRIP monitors
// drive both Lookahead (via RRPV-rank hit curves interpolated to line
// granularity) and the per-partition SRRIP/BRRIP choice.
type PolicyRRIP struct {
	monitors []*UMONRRIP
	ways     int
	prefer   []bool
}

// NewPolicyRRIP returns a Vantage-DRRIP allocation policy for parts
// partitions over a cache of cacheLines lines with the given monitor
// associativity.
func NewPolicyRRIP(parts, ways, cacheLines int, seed uint64) *PolicyRRIP {
	if parts <= 0 {
		panic("ucp: need at least one partition")
	}
	totalSets := cacheLines / ways
	if totalSets < 1 {
		totalSets = 1
	}
	ts := 1
	for ts < totalSets {
		ts <<= 1
	}
	p := &PolicyRRIP{ways: ways, prefer: make([]bool, parts)}
	for i := 0; i < parts; i++ {
		p.monitors = append(p.monitors, NewUMONRRIP(ways, ts, 64, hash.Mix64(seed+uint64(i))))
	}
	return p
}

// Access feeds one address of partition part's stream.
func (p *PolicyRRIP) Access(part int, addr uint64) { p.monitors[part].Access(addr) }

// AccessMixed is Access with the Mix64 finalizer already applied to addr.
func (p *PolicyRRIP) AccessMixed(part int, addr, mixed uint64) {
	p.monitors[part].AccessMixed(addr, mixed)
}

// Monitor exposes partition part's monitor.
func (p *PolicyRRIP) Monitor(part int) *UMONRRIP { return p.monitors[part] }

// Allocate computes line targets (like Policy.Allocate at line granularity)
// and refreshes the per-partition insertion-policy choices.
func (p *PolicyRRIP) Allocate(totalLines int) []int {
	parts := len(p.monitors)
	curves := make([][]float64, parts)
	for i, m := range p.monitors {
		curves[i] = InterpolateCurve(m.HitCurve(), linePoints)
		p.prefer[i] = m.PreferBRRIP()
	}
	pts := Lookahead(curves, linePoints, 1)
	allocs := make([]int, parts)
	sum := 0
	for i, n := range pts {
		allocs[i] = totalLines * n / linePoints
		sum += allocs[i]
	}
	for i := 0; sum < totalLines; i = (i + 1) % parts {
		allocs[i]++
		sum++
	}
	for _, m := range p.monitors {
		m.Decay()
	}
	return allocs
}

// InsertionPolicies returns the current per-partition choices (true =
// BRRIP), refreshed by the last Allocate call.
func (p *PolicyRRIP) InsertionPolicies() []bool {
	out := make([]bool, len(p.prefer))
	copy(out, p.prefer)
	return out
}
