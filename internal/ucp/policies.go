package ucp

import "fmt"

// This file provides simple allocation policies beyond UCP, following the
// taxonomy the paper cites ([9]: communist, utilitarian, capitalist): a
// static policy (fixed shares), an equal-share policy, and a
// capitalist/proportional policy that sizes partitions by observed demand.
// They implement the same Allocator shape as Policy and are useful both as
// baselines for allocation-policy studies and for applications (QoS,
// pinning) that need fixed reservations.

// Static always returns fixed fractional shares.
type Static struct {
	shares []float64
}

// NewStatic returns a static policy with the given shares (normalized
// internally; all must be non-negative, at least one positive).
func NewStatic(shares []float64) *Static {
	total := 0.0
	for _, s := range shares {
		if s < 0 {
			panic("ucp: negative share")
		}
		total += s
	}
	if total == 0 {
		panic("ucp: all shares zero")
	}
	norm := make([]float64, len(shares))
	for i, s := range shares {
		norm[i] = s / total
	}
	return &Static{shares: norm}
}

// Access implements the allocator contract (static policies ignore traffic).
func (s *Static) Access(part int, addr uint64) {}

// AccessMixed is Access with the Mix64 finalizer already applied to addr.
func (s *Static) AccessMixed(part int, addr, mixed uint64) {}

// Allocate returns the fixed shares scaled to totalLines.
func (s *Static) Allocate(totalLines int) []int {
	out := make([]int, len(s.shares))
	sum := 0
	for i, sh := range s.shares {
		out[i] = int(sh * float64(totalLines))
		sum += out[i]
	}
	for i := 0; sum < totalLines; i = (i + 1) % len(out) {
		out[i]++
		sum++
	}
	return out
}

// NewEqualShare returns a "communist" policy: equal allocations for parts
// partitions regardless of behavior.
func NewEqualShare(parts int) *Static {
	if parts <= 0 {
		panic("ucp: need at least one partition")
	}
	shares := make([]float64, parts)
	for i := range shares {
		shares[i] = 1
	}
	return NewStatic(shares)
}

// Proportional is the "capitalist" policy: partitions are sized in
// proportion to their recent L2 access volume, so loud threads get more
// space whether or not they use it well — the behavior an unpartitioned
// LRU cache approximates, made explicit.
type Proportional struct {
	counts []uint64
	floor  float64 // minimum fraction per partition
}

// NewProportional returns a demand-proportional policy for parts
// partitions; floor (in [0, 1/parts]) guarantees a minimum share.
func NewProportional(parts int, floor float64) *Proportional {
	if parts <= 0 {
		panic("ucp: need at least one partition")
	}
	if floor < 0 || floor > 1/float64(parts) {
		panic(fmt.Sprintf("ucp: floor %v out of range", floor))
	}
	return &Proportional{counts: make([]uint64, parts), floor: floor}
}

// Access implements the allocator contract.
func (p *Proportional) Access(part int, addr uint64) { p.counts[part]++ }

// AccessMixed is Access with the Mix64 finalizer already applied to addr.
func (p *Proportional) AccessMixed(part int, addr, mixed uint64) { p.counts[part]++ }

// Allocate sizes partitions by access counts (with the floor) and halves
// the counters, like UCP's decay.
func (p *Proportional) Allocate(totalLines int) []int {
	parts := len(p.counts)
	total := uint64(0)
	for _, c := range p.counts {
		total += c
	}
	out := make([]int, parts)
	sum := 0
	floorLines := int(p.floor * float64(totalLines))
	flexible := totalLines - floorLines*parts
	for i, c := range p.counts {
		share := 0.0
		if total > 0 {
			share = float64(c) / float64(total)
		} else {
			share = 1 / float64(parts)
		}
		out[i] = floorLines + int(share*float64(flexible))
		sum += out[i]
		p.counts[i] /= 2
	}
	for i := 0; sum < totalLines; i = (i + 1) % parts {
		out[i]++
		sum++
	}
	for i := 0; sum > totalLines; i = (i + 1) % parts {
		if out[i] > 0 {
			out[i]--
			sum--
		}
	}
	return out
}
