package ucp

import "testing"

func TestStaticPanics(t *testing.T) {
	for _, bad := range [][]float64{{-1, 2}, {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewStatic(%v) did not panic", bad)
				}
			}()
			NewStatic(bad)
		}()
	}
}

func TestStaticAllocate(t *testing.T) {
	s := NewStatic([]float64{3, 1})
	s.Access(0, 123) // no-op
	out := s.Allocate(1000)
	if out[0]+out[1] != 1000 {
		t.Fatalf("sum = %d", out[0]+out[1])
	}
	if out[0] != 750 || out[1] != 250 {
		t.Fatalf("alloc = %v, want [750 250]", out)
	}
}

func TestStaticRounding(t *testing.T) {
	s := NewStatic([]float64{1, 1, 1})
	out := s.Allocate(100)
	if out[0]+out[1]+out[2] != 100 {
		t.Fatalf("sum = %d", out[0]+out[1]+out[2])
	}
}

func TestEqualShare(t *testing.T) {
	e := NewEqualShare(4)
	out := e.Allocate(400)
	for i, v := range out {
		if v != 100 {
			t.Fatalf("partition %d got %d, want 100", i, v)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewEqualShare(0) did not panic")
			}
		}()
		NewEqualShare(0)
	}()
}

func TestProportionalTracksDemand(t *testing.T) {
	p := NewProportional(2, 0.1)
	for i := 0; i < 3000; i++ {
		p.Access(0, uint64(i))
	}
	for i := 0; i < 1000; i++ {
		p.Access(1, uint64(i))
	}
	out := p.Allocate(1000)
	if out[0]+out[1] != 1000 {
		t.Fatalf("sum = %d", out[0]+out[1])
	}
	if out[0] <= out[1] {
		t.Fatalf("louder partition not larger: %v", out)
	}
	// Floor respected.
	if out[1] < 100 {
		t.Fatalf("floor violated: %v", out)
	}
}

func TestProportionalDecays(t *testing.T) {
	p := NewProportional(2, 0)
	for i := 0; i < 1000; i++ {
		p.Access(0, uint64(i))
	}
	p.Allocate(100)
	// After several decay rounds with partition 1 active, the split flips.
	for round := 0; round < 10; round++ {
		for i := 0; i < 500; i++ {
			p.Access(1, uint64(i))
		}
		p.Allocate(100)
	}
	out := p.Allocate(100)
	if out[1] <= out[0] {
		t.Fatalf("stale demand still dominates: %v", out)
	}
}

func TestProportionalNoTraffic(t *testing.T) {
	p := NewProportional(4, 0)
	out := p.Allocate(400)
	sum := 0
	for _, v := range out {
		sum += v
	}
	if sum != 400 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestProportionalPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewProportional(0, 0) },
		func() { NewProportional(4, -0.1) },
		func() { NewProportional(4, 0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad proportional config did not panic")
				}
			}()
			f()
		}()
	}
}
