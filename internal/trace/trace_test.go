package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"vantage/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Gap: 0, Addr: 100},
		{Gap: 3, Addr: 101},
		{Gap: 1000, Addr: 50},   // backwards delta
		{Gap: 2, Addr: 1 << 40}, // big jump
		{Gap: 0, Addr: 1<<40 + 1},
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 5 {
		t.Fatalf("count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records", len(got))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], recs[i])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(gaps []uint16, addrs []uint64) bool {
		n := len(gaps)
		if len(addrs) < n {
			n = len(addrs)
		}
		if n == 0 {
			return true
		}
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		want := make([]Record, n)
		for i := 0; i < n; i++ {
			want[i] = Record{Gap: int(gaps[i]), Addr: addrs[i]}
			if err := w.Write(want[i]); err != nil {
				return false
			}
		}
		w.Flush()
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := r.ReadAll()
		if err != nil || len(got) != n {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWriterRejectsNegativeGap(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	if err := w.Write(Record{Gap: -1}); err == nil {
		t.Fatal("negative gap accepted")
	}
}

func TestReaderRejectsBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("XXXX????"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestReaderTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(Record{Gap: 300, Addr: 1 << 30})
	w.Flush()
	data := buf.Bytes()
	r, err := NewReader(bytes.NewReader(data[:len(data)-1]))
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Read()
	if err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("truncated record gave %v, want a hard error", err)
	}
}

func TestCaptureAndReplay(t *testing.T) {
	src := workload.NewZipfApp(workload.Friendly, 500, 0.8, 3, 2, 42)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	if err := Capture(w, src, 1000); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	r, _ := NewReader(&buf)
	recs, err := r.ReadAll()
	if err != nil || len(recs) != 1000 {
		t.Fatalf("captured %d records, err %v", len(recs), err)
	}
	// Replay must match a fresh instance of the same app.
	ref := workload.NewZipfApp(workload.Friendly, 500, 0.8, 3, 2, 42)
	app := NewApp("zipf", workload.Friendly, recs)
	if app.Name() != "trace:zipf" || app.Category() != workload.Friendly {
		t.Fatal("replay metadata wrong")
	}
	for i := 0; i < 1000; i++ {
		g1, a1 := ref.Next()
		g2, a2 := app.Next()
		if g1 != g2 || a1 != a2 {
			t.Fatalf("replay diverges at %d", i)
		}
	}
	// Looping: record 1001 equals record 1.
	g, a := app.Next()
	if g != recs[0].Gap || a != recs[0].Addr {
		t.Fatal("trace did not loop")
	}
}

func TestNewAppPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty trace accepted")
		}
	}()
	NewApp("x", workload.Friendly, nil)
}

func TestCompactness(t *testing.T) {
	// A sequential stream should compress to ~2 bytes per record.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	app := workload.NewStreamApp(1<<30, 0, 1, 7)
	Capture(w, app, 10000)
	w.Flush()
	if per := float64(buf.Len()) / 10000; per > 3 {
		t.Fatalf("sequential trace costs %.1f bytes/record", per)
	}
}
