// Package trace records and replays memory-reference traces, so workloads
// can be captured once and replayed deterministically (or imported from
// external tools). The format is a compact varint stream: each record is an
// instruction gap followed by a zig-zag-encoded line-address delta, which
// compresses both sequential streams and small working sets well.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"vantage/internal/workload"
)

// magic identifies the binary trace format ("VTR1").
var magic = [4]byte{'V', 'T', 'R', '1'}

// Record is one memory reference: Gap non-memory instructions followed by
// an access to line Addr.
type Record struct {
	Gap  int
	Addr uint64
}

// Writer streams records to an io.Writer in the binary format.
type Writer struct {
	w       *bufio.Writer
	last    uint64
	started bool
	count   uint64
	buf     [2 * binary.MaxVarintLen64]byte
}

// NewWriter returns a Writer that emits the header immediately.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Write appends one record.
func (w *Writer) Write(r Record) error {
	if r.Gap < 0 {
		return errors.New("trace: negative gap")
	}
	n := binary.PutUvarint(w.buf[:], uint64(r.Gap))
	delta := int64(r.Addr - w.last)
	n += binary.PutVarint(w.buf[n:], delta)
	w.last = r.Addr
	w.count++
	if _, err := w.w.Write(w.buf[:n]); err != nil {
		return fmt.Errorf("trace: writing record: %w", err)
	}
	return nil
}

// Count returns the number of records written.
func (w *Writer) Count() uint64 { return w.count }

// Flush flushes buffered output; call it before closing the underlying
// writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader streams records from an io.Reader.
type Reader struct {
	r    *bufio.Reader
	last uint64
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if hdr != magic {
		return nil, fmt.Errorf("trace: bad magic %q", hdr[:])
	}
	return &Reader{r: br}, nil
}

// Read returns the next record, or io.EOF at the end of the trace.
func (r *Reader) Read() (Record, error) {
	gap, err := binary.ReadUvarint(r.r)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("trace: reading gap: %w", err)
	}
	delta, err := binary.ReadVarint(r.r)
	if err != nil {
		return Record{}, fmt.Errorf("trace: truncated record: %w", err)
	}
	r.last += uint64(delta)
	return Record{Gap: int(gap), Addr: r.last}, nil
}

// ReadAll drains the trace into memory.
func (r *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Read()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

// Capture runs app for n references and writes its stream.
func Capture(w *Writer, app workload.App, n int) error {
	for i := 0; i < n; i++ {
		gap, addr := app.Next()
		if err := w.Write(Record{Gap: gap, Addr: addr}); err != nil {
			return err
		}
	}
	return nil
}

// App replays an in-memory trace as a workload.App, looping at the end so
// it can drive arbitrarily long simulations.
type App struct {
	name string
	cat  workload.Category
	recs []Record
	pos  int
}

// NewApp returns a replaying App over recs (which must be non-empty).
func NewApp(name string, cat workload.Category, recs []Record) *App {
	if len(recs) == 0 {
		panic("trace: empty trace")
	}
	return &App{name: name, cat: cat, recs: recs}
}

// Name implements workload.App.
func (a *App) Name() string { return "trace:" + a.name }

// Category implements workload.App.
func (a *App) Category() workload.Category { return a.cat }

// Next implements workload.App, looping over the trace.
func (a *App) Next() (int, uint64) {
	r := a.recs[a.pos]
	a.pos++
	if a.pos == len(a.recs) {
		a.pos = 0
	}
	return r.Gap, r.Addr
}

var _ workload.App = (*App)(nil)
