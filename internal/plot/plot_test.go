package plot

import (
	"strings"
	"testing"
)

func TestChartBasics(t *testing.T) {
	c := New("test", 40, 10)
	c.AddYs("up", []float64{1, 2, 3, 4, 5})
	c.AddYs("down", []float64{5, 4, 3, 2, 1})
	out := c.String()
	if !strings.Contains(out, "test") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "* up") || !strings.Contains(out, "+ down") {
		t.Fatal("missing legend")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatal("missing data markers")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 12 {
		t.Fatalf("chart too short: %d lines", len(lines))
	}
}

func TestChartMinimumDimensions(t *testing.T) {
	c := New("t", 1, 1)
	if c.Width < 20 || c.Height < 5 {
		t.Fatal("minimum dimensions not enforced")
	}
}

func TestChartEmpty(t *testing.T) {
	c := New("empty", 40, 10)
	if !strings.Contains(c.String(), "no data") {
		t.Fatal("empty chart should say so")
	}
}

func TestChartPanicsOnBadSeries(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched series accepted")
		}
	}()
	New("t", 40, 10).Add(Series{Name: "bad", X: []float64{1}, Y: []float64{1, 2}})
}

func TestChartFlatSeries(t *testing.T) {
	c := New("flat", 30, 6)
	c.AddYs("const", []float64{2, 2, 2})
	out := c.String()
	if !strings.Contains(out, "*") {
		t.Fatal("flat series not rendered")
	}
}

func TestChartFixedYRange(t *testing.T) {
	c := New("fixed", 30, 6)
	c.YMin, c.YMax = 0, 10
	c.AddYs("s", []float64{5, 50}) // 50 clamps to top
	out := c.String()
	if !strings.Contains(out, "10.000") {
		t.Fatalf("fixed y-range not used:\n%s", out)
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if len([]rune(s)) != 8 {
		t.Fatalf("sparkline length %d", len([]rune(s)))
	}
	if []rune(s)[0] != '▁' || []rune(s)[7] != '█' {
		t.Fatalf("sparkline ends wrong: %q", s)
	}
	if Sparkline(nil) != "" {
		t.Fatal("empty sparkline should be empty")
	}
	if len([]rune(Sparkline([]float64{3, 3}))) != 2 {
		t.Fatal("flat sparkline broken")
	}
}
