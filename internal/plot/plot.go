// Package plot renders small ASCII charts for the experiment tools: line
// charts (sorted relative-throughput curves, Fig 6a/7 style), CDFs, and
// time series (Fig 8 size tracking), so the reproductions are visible
// directly in a terminal without external tooling.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line of a chart.
type Series struct {
	Name string
	X, Y []float64
}

// Chart renders multiple series into a fixed-size ASCII grid.
type Chart struct {
	Title         string
	Width, Height int
	XLabel        string
	YLabel        string
	series        []Series
	// YMin/YMax fix the y-range; both zero means auto.
	YMin, YMax float64
}

// markers are assigned to series in order.
var markers = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// New returns a chart with the given dimensions (sensible minimums are
// enforced).
func New(title string, width, height int) *Chart {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	return &Chart{Title: title, Width: width, Height: height}
}

// Add appends a series. X and Y must have equal nonzero length.
func (c *Chart) Add(s Series) {
	if len(s.X) != len(s.Y) || len(s.X) == 0 {
		panic("plot: series needs equal nonzero X and Y lengths")
	}
	c.series = append(c.series, s)
}

// AddYs appends a series whose x-values are the indices 0..len(ys)-1 (the
// natural x-axis for sorted per-mix curves).
func (c *Chart) AddYs(name string, ys []float64) {
	xs := make([]float64, len(ys))
	for i := range xs {
		xs[i] = float64(i)
	}
	c.Add(Series{Name: name, X: xs, Y: ys})
}

// bounds computes the data ranges.
func (c *Chart) bounds() (xmin, xmax, ymin, ymax float64) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, s := range c.series {
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if c.YMin != 0 || c.YMax != 0 {
		ymin, ymax = c.YMin, c.YMax
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	return
}

// String renders the chart.
func (c *Chart) String() string {
	if len(c.series) == 0 {
		return c.Title + " (no data)\n"
	}
	xmin, xmax, ymin, ymax := c.bounds()
	grid := make([][]byte, c.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", c.Width))
	}
	for si, s := range c.series {
		m := markers[si%len(markers)]
		for i := range s.X {
			col := int((s.X[i] - xmin) / (xmax - xmin) * float64(c.Width-1))
			y := s.Y[i]
			if y < ymin {
				y = ymin
			}
			if y > ymax {
				y = ymax
			}
			row := c.Height - 1 - int((y-ymin)/(ymax-ymin)*float64(c.Height-1))
			grid[row][col] = m
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	for r, line := range grid {
		yVal := ymax - (ymax-ymin)*float64(r)/float64(c.Height-1)
		fmt.Fprintf(&b, "%9.3f |%s|\n", yVal, string(line))
	}
	fmt.Fprintf(&b, "%9s +%s+\n", "", strings.Repeat("-", c.Width))
	fmt.Fprintf(&b, "%9s  %-*.4g%*.4g\n", "", c.Width/2, xmin, c.Width-c.Width/2, xmax)
	// Legend.
	for si, s := range c.series {
		fmt.Fprintf(&b, "%9s  %c %s\n", "", markers[si%len(markers)], s.Name)
	}
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "%9s  (x: %s, y: %s)\n", "", c.XLabel, c.YLabel)
	}
	return b.String()
}

// Sparkline renders ys as a one-line unicode sparkline.
func Sparkline(ys []float64) string {
	if len(ys) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	mn, mx := math.Inf(1), math.Inf(-1)
	for _, y := range ys {
		mn = math.Min(mn, y)
		mx = math.Max(mx, y)
	}
	if mx == mn {
		mx = mn + 1
	}
	var b strings.Builder
	for _, y := range ys {
		i := int((y - mn) / (mx - mn) * float64(len(blocks)-1))
		b.WriteRune(blocks[i])
	}
	return b.String()
}
