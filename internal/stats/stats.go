// Package stats provides the measurement utilities the experiments need:
// coarse-timestamp quantile histograms (to compute empirical eviction and
// demotion priorities, Fig 8's heat maps), CDF accumulators, time series,
// and simple summary statistics.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// TSQuantiler tracks the multiset of 8-bit coarse timestamps of a
// population of lines and answers "what fraction of lines are older than
// this timestamp", which is the (one minus) eviction priority of a victim
// within its population. Ages are computed modulo 256 relative to a current
// timestamp maintained by the caller.
type TSQuantiler struct {
	hist  [256]int
	total int
}

// Add records a line with timestamp ts.
func (q *TSQuantiler) Add(ts uint8) { q.hist[ts]++; q.total++ }

// Remove forgets a line with timestamp ts.
func (q *TSQuantiler) Remove(ts uint8) {
	if q.hist[ts] == 0 {
		panic("stats: TSQuantiler.Remove of absent timestamp")
	}
	q.hist[ts]--
	q.total--
}

// Move re-tags one line from old to new timestamp.
func (q *TSQuantiler) Move(old, new uint8) {
	q.Remove(old)
	q.Add(new)
}

// Total returns the population size.
func (q *TSQuantiler) Total() int { return q.total }

// FracOlder returns the fraction of lines strictly older than ts, where age
// is (current - ts) mod 256. A line about to be evicted with FracOlder ≈ 0
// is the oldest (eviction priority ≈ 1.0 in the paper's convention).
func (q *TSQuantiler) FracOlder(ts, current uint8) float64 {
	if q.total == 0 {
		return 0
	}
	age := int(current - ts) // uint8 subtraction: age in [0,255]
	older := 0
	for a := age + 1; a < 256; a++ {
		older += q.hist[uint8(current)-uint8(a)]
	}
	return float64(older) / float64(q.total)
}

// EvictionPriority returns the paper's eviction priority e ∈ [0,1] of a line
// with timestamp ts under LRU ranking: 1 means oldest (best victim).
func (q *TSQuantiler) EvictionPriority(ts, current uint8) float64 {
	return 1 - q.FracOlder(ts, current)
}

// ---------------------------------------------------------------------------

// CDF accumulates samples in [0,1] and reports an empirical CDF. It is used
// to measure associativity distributions (Figs 1, 2, 8).
type CDF struct {
	buckets []int
	total   int
}

// NewCDF returns a CDF accumulator with n buckets over [0,1].
func NewCDF(n int) *CDF {
	if n <= 0 {
		panic("stats: CDF needs at least one bucket")
	}
	return &CDF{buckets: make([]int, n)}
}

// Add records a sample (clamped to [0,1]).
func (c *CDF) Add(x float64) {
	if x < 0 {
		x = 0
	}
	if x > 1 {
		x = 1
	}
	i := int(x * float64(len(c.buckets)))
	if i == len(c.buckets) {
		i--
	}
	c.buckets[i]++
	c.total++
}

// N returns the number of samples.
func (c *CDF) N() int { return c.total }

// At returns the empirical CDF value at x.
func (c *CDF) At(x float64) float64 {
	if c.total == 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	if x < 0 {
		return 0
	}
	hi := int(x * float64(len(c.buckets)))
	sum := 0
	for i := 0; i < hi; i++ {
		sum += c.buckets[i]
	}
	return float64(sum) / float64(c.total)
}

// Quantile returns the approximate p-quantile of the samples.
func (c *CDF) Quantile(p float64) float64 {
	if c.total == 0 {
		return 0
	}
	target := p * float64(c.total)
	sum := 0.0
	for i, b := range c.buckets {
		sum += float64(b)
		if sum >= target {
			return (float64(i) + 0.5) / float64(len(c.buckets))
		}
	}
	return 1
}

// ---------------------------------------------------------------------------

// Series records (x, y) samples, e.g. partition size over time (Fig 8).
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Append adds a point.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// ---------------------------------------------------------------------------

// Heatmap accumulates per-time-slice CDFs of priorities, reproducing the
// Fig 8 heat maps: x is the time slice, y the priority in [0,1].
type Heatmap struct {
	cols  []*CDF
	yBins int
}

// NewHeatmap returns an empty heat map with yBins priority buckets.
func NewHeatmap(yBins int) *Heatmap {
	return &Heatmap{yBins: yBins}
}

// Add records a priority sample in time slice col.
func (h *Heatmap) Add(col int, priority float64) {
	for len(h.cols) <= col {
		h.cols = append(h.cols, NewCDF(h.yBins))
	}
	h.cols[col].Add(priority)
}

// Cols returns the number of time slices.
func (h *Heatmap) Cols() int { return len(h.cols) }

// At returns the CDF value at priority y in slice col (0 if no samples).
func (h *Heatmap) At(col int, y float64) float64 {
	if col < 0 || col >= len(h.cols) {
		return 0
	}
	return h.cols[col].At(y)
}

// ---------------------------------------------------------------------------

// Summary holds simple descriptive statistics.
type Summary struct {
	N              int
	Mean, Min, Max float64
	GeoMean        float64
	P10, P50, P90  float64
	FracAboveOne   float64 // fraction of samples > 1 (e.g. speedups)
	FracBelowOne   float64
}

// Summarize computes a Summary of xs. GeoMean is only meaningful for
// positive samples.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	logSum := 0.0
	above, below := 0, 0
	for _, x := range xs {
		s.Mean += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		if x > 0 {
			logSum += math.Log(x)
		}
		if x > 1 {
			above++
		} else if x < 1 {
			below++
		}
	}
	s.Mean /= float64(len(xs))
	s.GeoMean = math.Exp(logSum / float64(len(xs)))
	s.FracAboveOne = float64(above) / float64(len(xs))
	s.FracBelowOne = float64(below) / float64(len(xs))
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	q := func(p float64) float64 {
		i := int(p * float64(len(sorted)-1))
		return sorted[i]
	}
	s.P10, s.P50, s.P90 = q(0.10), q(0.50), q(0.90)
	return s
}

// String formats the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d gmean=%.4f mean=%.4f min=%.4f p50=%.4f max=%.4f improved=%.0f%%",
		s.N, s.GeoMean, s.Mean, s.Min, s.P50, s.Max, 100*s.FracAboveOne)
}
