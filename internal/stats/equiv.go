package stats

import (
	"fmt"
	"math"
	"sort"
)

// Equivalence quantifies how close two samples of a throughput-like metric
// are — the fast simulation tier's validation contract against the exact
// tier. Two tests matter for the simulator: the geometric-mean ratio (the
// paper's headline summary of per-scheme throughput, so tier drift shows up
// here first) and the two-sample Kolmogorov-Smirnov distance (per-mix
// distribution agreement — a gmean can match by luck while individual mixes
// diverge in compensating directions).
type Equivalence struct {
	// Name labels the compared quantity, e.g. a scheme name.
	Name string
	// NA and NB are the sample sizes.
	NA, NB int
	// GeoMeanA and GeoMeanB are the two samples' geometric means.
	GeoMeanA, GeoMeanB float64
	// GmeanDelta is |GeoMeanB/GeoMeanA - 1|, the relative gmean error.
	GmeanDelta float64
	// KS is the two-sample Kolmogorov-Smirnov statistic: the largest
	// vertical gap between the samples' empirical CDFs, in [0, 1].
	KS float64
}

// CompareEquivalence computes the equivalence metrics between reference
// sample a and candidate sample b. Both must be non-empty and, for the
// geometric means, strictly positive. The samples need not be paired or of
// equal size.
func CompareEquivalence(name string, a, b []float64) Equivalence {
	e := Equivalence{
		Name:     name,
		NA:       len(a),
		NB:       len(b),
		GeoMeanA: geoMean(a),
		GeoMeanB: geoMean(b),
		KS:       KSDistance(a, b),
	}
	e.GmeanDelta = math.Abs(e.GeoMeanB/e.GeoMeanA - 1)
	return e
}

// Check returns nil when both metrics are within tolerance, and an error
// naming the violated bound otherwise. Pass maxKS <= 0 to skip the
// distribution test (e.g. when sample sizes make KS meaningless).
func (e Equivalence) Check(maxGmeanDelta, maxKS float64) error {
	if math.IsNaN(e.GmeanDelta) || e.GmeanDelta > maxGmeanDelta {
		return fmt.Errorf("stats: %s gmean delta %.4f%% exceeds %.4f%% (gmean %.5f vs %.5f)",
			e.Name, 100*e.GmeanDelta, 100*maxGmeanDelta, e.GeoMeanA, e.GeoMeanB)
	}
	if maxKS > 0 && e.KS > maxKS {
		return fmt.Errorf("stats: %s KS distance %.4f exceeds %.4f (n=%d, m=%d)",
			e.Name, e.KS, maxKS, e.NA, e.NB)
	}
	return nil
}

// String renders the comparison for diff-style reports.
func (e Equivalence) String() string {
	return fmt.Sprintf("%s: gmean %.5f vs %.5f (Δ %.3f%%), KS %.3f (n=%d,%d)",
		e.Name, e.GeoMeanA, e.GeoMeanB, 100*e.GmeanDelta, e.KS, e.NA, e.NB)
}

// geoMean is Summarize's geometric mean on its own, for samples that need no
// full Summary. Non-positive values yield NaN.
func geoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	logSum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// KSDistance returns the two-sample Kolmogorov-Smirnov statistic between a
// and b: sup_x |F_a(x) - F_b(x)| over the empirical CDFs. It is 0 for
// identical samples and approaches 1 for disjoint ones. Inputs are not
// modified.
func KSDistance(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return math.NaN()
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	var d float64
	i, j := 0, 0
	for i < len(as) && j < len(bs) {
		// Evaluate both CDFs just after each distinct jump point: step past
		// every occurrence of the smaller value in BOTH samples, so ties
		// across samples move the two CDFs together.
		x := as[i]
		if bs[j] < x {
			x = bs[j]
		}
		for i < len(as) && as[i] == x {
			i++
		}
		for j < len(bs) && bs[j] == x {
			j++
		}
		gap := math.Abs(float64(i)/float64(len(as)) - float64(j)/float64(len(bs)))
		if gap > d {
			d = gap
		}
	}
	return d
}

// KSCritical returns the critical Kolmogorov-Smirnov distance at which the
// null hypothesis "same distribution" is rejected at significance alpha for
// sample sizes n and m, using the standard asymptotic form
// c(alpha) * sqrt((n+m)/(n*m)) with c(alpha) = sqrt(-ln(alpha/2)/2). With
// the simulator's small per-scheme mix counts this is a loose bound — which
// is the honest amount of distributional checking a handful of mixes can
// support; the tight bound is the gmean tolerance.
func KSCritical(alpha float64, n, m int) float64 {
	if n <= 0 || m <= 0 || alpha <= 0 || alpha >= 1 {
		return math.NaN()
	}
	c := math.Sqrt(-math.Log(alpha/2) / 2)
	return c * math.Sqrt(float64(n+m)/float64(n*m))
}
