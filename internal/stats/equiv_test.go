package stats

import (
	"math"
	"testing"

	"vantage/internal/hash"
)

// sample draws n values from a lognormal-ish positive distribution with the
// given scale, deterministically.
func sample(seed uint64, n int, scale float64) []float64 {
	rng := hash.NewRand(seed)
	out := make([]float64, n)
	for i := range out {
		// Sum of uniforms approximates a normal; exp keeps it positive.
		s := 0.0
		for k := 0; k < 4; k++ {
			s += rng.Float64()
		}
		out[i] = scale * math.Exp(0.2*(s-2))
	}
	return out
}

func TestKSDistanceIdentical(t *testing.T) {
	a := sample(1, 100, 1.0)
	if d := KSDistance(a, a); d != 0 {
		t.Fatalf("KS of identical samples = %v, want 0", d)
	}
}

func TestKSDistanceDisjoint(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{10, 20, 30, 40}
	if d := KSDistance(a, b); d != 1 {
		t.Fatalf("KS of disjoint samples = %v, want 1", d)
	}
}

func TestKSDistanceKnownValue(t *testing.T) {
	// CDFs cross at 0.5 vs 0.25 -> D = 0.5 by hand: a jumps to 1/2 at 2,
	// b is still at 0 until 3.
	a := []float64{1, 2, 5, 6}
	b := []float64{3, 4, 7, 8}
	if d := KSDistance(a, b); math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("KS = %v, want 0.5", d)
	}
}

func TestEquivalenceAccepts(t *testing.T) {
	// Same distribution, different draws: gmean within a loose bound and KS
	// below the 1% critical value.
	a := sample(11, 400, 1.0)
	b := sample(22, 400, 1.0)
	e := CompareEquivalence("same-dist", a, b)
	if err := e.Check(0.02, KSCritical(0.01, len(a), len(b))); err != nil {
		t.Fatalf("equivalent samples rejected: %v", err)
	}
}

// TestEquivalenceRejectsGmeanShift is a known-divergent fixture: a 3% scale
// shift must trip a 0.5% gmean tolerance. If this test ever passes the
// check, the harness has lost its teeth.
func TestEquivalenceRejectsGmeanShift(t *testing.T) {
	a := sample(11, 400, 1.00)
	b := sample(22, 400, 1.03)
	e := CompareEquivalence("shifted", a, b)
	if err := e.Check(0.005, 0); err == nil {
		t.Fatalf("3%% gmean shift passed a 0.5%% tolerance: %+v", e)
	}
	if e.GmeanDelta < 0.02 || e.GmeanDelta > 0.04 {
		t.Fatalf("gmean delta %.4f outside the planted 3%% shift", e.GmeanDelta)
	}
}

// TestEquivalenceRejectsDistributionChange: equal gmeans, different shapes —
// the KS test must catch what the gmean cannot. Fixture: half the mass
// displaced symmetrically in log space keeps the gmean but widens the CDF.
func TestEquivalenceRejectsDistributionChange(t *testing.T) {
	a := sample(11, 400, 1.0)
	b := make([]float64, len(a))
	for i, x := range a {
		if i%2 == 0 {
			b[i] = x * 1.5
		} else {
			b[i] = x / 1.5
		}
	}
	e := CompareEquivalence("reshaped", a, b)
	if e.GmeanDelta > 1e-9 {
		t.Fatalf("fixture broken: gmean moved by %v", e.GmeanDelta)
	}
	if err := e.Check(0.005, KSCritical(0.01, len(a), len(b))); err == nil {
		t.Fatalf("distribution change passed the KS test: %+v", e)
	}
}

func TestEquivalenceNonPositive(t *testing.T) {
	e := CompareEquivalence("bad", []float64{1, -1}, []float64{1, 2})
	if err := e.Check(0.005, 0); err == nil {
		t.Fatal("NaN gmean delta must fail the check")
	}
}

func TestKSCritical(t *testing.T) {
	// Classic table value: alpha=0.05, large equal n -> 1.358*sqrt(2/n).
	got := KSCritical(0.05, 1000, 1000)
	want := 1.3581 * math.Sqrt(2.0/1000)
	if math.Abs(got-want) > 1e-4 {
		t.Fatalf("KSCritical = %v, want %v", got, want)
	}
	if !math.IsNaN(KSCritical(0.05, 0, 10)) {
		t.Fatal("KSCritical with n=0 must be NaN")
	}
}
