package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTSQuantilerBasics(t *testing.T) {
	var q TSQuantiler
	// Lines with timestamps 10 (oldest), 11, 12; current = 12.
	q.Add(10)
	q.Add(11)
	q.Add(12)
	if q.Total() != 3 {
		t.Fatalf("total = %d", q.Total())
	}
	if f := q.FracOlder(12, 12); !closeTo(f, 2.0/3, 1e-12) {
		t.Fatalf("FracOlder(newest) = %v, want 2/3", f)
	}
	if f := q.FracOlder(10, 12); f != 0 {
		t.Fatalf("FracOlder(oldest) = %v, want 0", f)
	}
	if e := q.EvictionPriority(10, 12); e != 1 {
		t.Fatalf("oldest eviction priority = %v, want 1", e)
	}
}

func TestTSQuantilerModuloAges(t *testing.T) {
	var q TSQuantiler
	// current = 2, lines at ts 250 (age 8) and ts 1 (age 1).
	q.Add(250)
	q.Add(1)
	if f := q.FracOlder(1, 2); f != 0.5 {
		t.Fatalf("FracOlder across wrap = %v, want 0.5", f)
	}
	if f := q.FracOlder(250, 2); f != 0 {
		t.Fatalf("FracOlder oldest across wrap = %v, want 0", f)
	}
}

func TestTSQuantilerRemoveMove(t *testing.T) {
	var q TSQuantiler
	q.Add(5)
	q.Move(5, 9)
	if q.hist[5] != 0 || q.hist[9] != 1 {
		t.Fatal("move did not retag")
	}
	q.Remove(9)
	if q.Total() != 0 {
		t.Fatal("remove did not decrement")
	}
}

func TestTSQuantilerRemoveAbsentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on absent remove")
		}
	}()
	var q TSQuantiler
	q.Remove(3)
}

func TestCDFUniformSamples(t *testing.T) {
	c := NewCDF(100)
	for i := 0; i < 10000; i++ {
		c.Add(float64(i%100) / 100)
	}
	if got := c.At(0.5); !closeTo(got, 0.5, 0.02) {
		t.Fatalf("CDF(0.5) = %v", got)
	}
	if c.At(1) != 1 || c.At(-0.5) != 0 {
		t.Fatal("CDF edges wrong")
	}
	if q := c.Quantile(0.25); !closeTo(q, 0.25, 0.02) {
		t.Fatalf("quantile(0.25) = %v", q)
	}
}

func TestCDFClamping(t *testing.T) {
	c := NewCDF(10)
	c.Add(-5)
	c.Add(7)
	if c.N() != 2 {
		t.Fatal("clamped samples lost")
	}
}

func TestCDFMonotone(t *testing.T) {
	c := NewCDF(64)
	for i := 0; i < 1000; i++ {
		c.Add(float64(i*i%97) / 97)
	}
	f := func(a, b float64) bool {
		x, y := math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		if x > y {
			x, y = y, x
		}
		return c.At(x) <= c.At(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewCDFPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 0 buckets")
		}
	}()
	NewCDF(0)
}

func TestSeries(t *testing.T) {
	var s Series
	s.Append(1, 2)
	s.Append(3, 4)
	if s.Len() != 2 || s.X[1] != 3 || s.Y[1] != 4 {
		t.Fatal("series append broken")
	}
}

func TestHeatmap(t *testing.T) {
	h := NewHeatmap(10)
	h.Add(0, 0.95)
	h.Add(0, 0.99)
	h.Add(2, 0.1)
	if h.Cols() != 3 {
		t.Fatalf("cols = %d", h.Cols())
	}
	if v := h.At(0, 0.9); v != 0 {
		t.Fatalf("high-priority samples counted below 0.9: %v", v)
	}
	if v := h.At(2, 0.5); v != 1 {
		t.Fatalf("low-priority sample not below 0.5: %v", v)
	}
	if h.At(7, 0.5) != 0 || h.At(-1, 0.5) != 0 {
		t.Fatal("out-of-range column not zero")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1.0, 2.0, 4.0, 0.5})
	if s.N != 4 || s.Min != 0.5 || s.Max != 4.0 {
		t.Fatalf("summary basics wrong: %+v", s)
	}
	if !closeTo(s.Mean, 1.875, 1e-12) {
		t.Fatalf("mean = %v", s.Mean)
	}
	want := math.Pow(1*2*4*0.5, 0.25)
	if !closeTo(s.GeoMean, want, 1e-12) {
		t.Fatalf("gmean = %v, want %v", s.GeoMean, want)
	}
	if s.FracAboveOne != 0.5 || s.FracBelowOne != 0.25 {
		t.Fatalf("fractions wrong: %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Fatal("empty summary should be zero")
	}
}

func closeTo(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
