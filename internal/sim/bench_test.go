package sim

import (
	"testing"

	"vantage/internal/cache"
	"vantage/internal/core"
	"vantage/internal/ctrl"
	"vantage/internal/repl"
	"vantage/internal/ucp"
	"vantage/internal/workload"
)

// Kernel micro-benchmarks: one sim.Run per op over a fixed instruction
// budget, reporting ns/access (memory references through the hierarchy,
// approximated by the measurement-window L1 access counts) alongside the
// standard ns/op and allocs/op. The steady-state target is zero allocations
// per access; see TestRunSteadyStateAllocs for the hard assertion.

const benchInstr = 200000

func benchApps(n int) []workload.App {
	apps := make([]workload.App, n)
	for i := range apps {
		switch i % 4 {
		case 0:
			apps[i] = workload.NewZipfApp(workload.Insensitive, 1<<14, 0.9, 4, 4, uint64(3+i))
		case 1:
			apps[i] = workload.NewStreamApp(1<<18, 2, 1, uint64(5+i))
		case 2:
			apps[i] = workload.NewZipfApp(workload.Fitting, 1<<13, 0.8, 3, 4, uint64(7+i))
		default:
			apps[i] = workload.NewZipfApp(workload.Thrashing, 1<<16, 0.7, 3, 4, uint64(11+i))
		}
	}
	return apps
}

func benchRun(b *testing.B, cores int, withL1 bool, mk func() (ctrl.Controller, Allocator, int)) {
	b.Helper()
	cfg := Config{
		Apps:       benchApps(cores),
		InstrLimit: benchInstr,
	}
	if withL1 {
		cfg.L1Lines, cfg.L1Ways = 256, 4
	}
	b.ReportAllocs()
	var refs uint64
	for i := 0; i < b.N; i++ {
		l2, alloc, partLines := mk()
		cfg.L2 = l2
		if alloc != nil {
			cfg.Alloc = alloc
			cfg.RepartitionCycles = 200000
			cfg.PartitionableLines = partLines
		}
		res := Run(cfg)
		refs = 0
		for _, c := range res.Cores {
			refs += c.L1Accesses
		}
	}
	if refs > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int(refs)*b.N), "ns/access")
	}
}

// BenchmarkSimKernelLRU is the unmanaged baseline: 4 cores, private L1s, a
// shared zcache L2 under coarse-timestamp LRU, no allocator.
func BenchmarkSimKernelLRU(b *testing.B) {
	benchRun(b, 4, true, func() (ctrl.Controller, Allocator, int) {
		arr := cache.NewZCache(2048, 4, 16, 99)
		return ctrl.NewUnpartitioned(arr, repl.NewLRUTimestamp(2048), 4), nil, 0
	})
}

// BenchmarkSimKernelVantageUCP is the paper's headline configuration: 4
// cores, private L1s, a Vantage-controlled zcache repartitioned by UCP.
func BenchmarkSimKernelVantageUCP(b *testing.B) {
	benchRun(b, 4, true, func() (ctrl.Controller, Allocator, int) {
		arr := cache.NewZCache(2048, 4, 52, 21)
		vc := core.New(arr, core.Config{Partitions: 4, UnmanagedFrac: 0.05, AMax: 0.5, Slack: 0.1})
		pol := ucp.NewPolicy(4, 16, 2048, ucp.GranLines, 23)
		return vc, pol, 1945
	})
}

// BenchmarkSimKernelNoL1 stresses the L2 path: every reference reaches the
// shared cache (and the allocator-free controller) directly.
func BenchmarkSimKernelNoL1(b *testing.B) {
	benchRun(b, 4, false, func() (ctrl.Controller, Allocator, int) {
		arr := cache.NewZCache(2048, 4, 16, 99)
		return ctrl.NewUnpartitioned(arr, repl.NewLRUTimestamp(2048), 4), nil, 0
	})
}

// TestRunSteadyStateAllocs asserts the per-access target: zero steady-state
// allocations in the kernel. Setup (controllers, heaps, stats slices) does
// allocate, so the test measures differentially: doubling the instruction
// budget must not add allocations beyond a tiny slack for one-off growth.
func TestRunSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement under -short")
	}
	run := func(instr uint64) func() {
		return func() {
			arr := cache.NewZCache(1024, 4, 16, 99)
			l2 := ctrl.NewUnpartitioned(arr, repl.NewLRUTimestamp(1024), 4)
			Run(Config{
				Apps:       benchApps(4),
				L2:         l2,
				L1Lines:    128,
				L1Ways:     4,
				InstrLimit: instr,
			})
		}
	}
	const base = 50000
	short := testing.AllocsPerRun(5, run(base))
	long := testing.AllocsPerRun(5, run(2*base))
	if extra := long - short; extra > 4 {
		t.Fatalf("steady state allocates: %d extra instructions cost %.0f allocations (%.0f vs %.0f)",
			base, extra, long, short)
	}
}
