package sim

import (
	"testing"

	"vantage/internal/cache"
	"vantage/internal/core"
	"vantage/internal/ctrl"
	"vantage/internal/repl"
	"vantage/internal/ucp"
	"vantage/internal/workload"
)

func lruL2(lines int) ctrl.Controller {
	arr := cache.NewZCache(lines, 4, 16, 99)
	return ctrl.NewUnpartitioned(arr, repl.NewLRUTimestamp(lines), 8)
}

func TestRunPanics(t *testing.T) {
	app := workload.NewStreamApp(1000, 1, 1, 1)
	for i, cfg := range []Config{
		{},
		{Apps: []workload.App{app}},
		{Apps: []workload.App{app}, L2: lruL2(256)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d did not panic", i)
				}
			}()
			Run(cfg)
		}()
	}
}

func TestSingleCoreHotLoopHitsL1(t *testing.T) {
	// A tiny working set lives in the L1: IPC should be near 1.
	app := workload.NewZipfApp(workload.Insensitive, 32, 0.8, 4, 4, 3)
	res := Run(Config{
		Apps:       []workload.App{app},
		L2:         lruL2(1024),
		L1Lines:    256,
		L1Ways:     4,
		InstrLimit: 200000,
	})
	c := res.Cores[0]
	if c.IPC < 0.8 {
		t.Fatalf("hot-loop IPC = %.3f, want near 1", c.IPC)
	}
	if c.L2MPKI > 5 {
		t.Fatalf("insensitive app has %.1f L2 MPKI, want < 5 (Table 3)", c.L2MPKI)
	}
}

func TestSingleCoreStreamIsMemoryBound(t *testing.T) {
	app := workload.NewStreamApp(1<<20, 2, 1, 5)
	res := Run(Config{
		Apps:       []workload.App{app},
		L2:         lruL2(1024),
		L1Lines:    128,
		L1Ways:     4,
		InstrLimit: 100000,
	})
	c := res.Cores[0]
	// Every reference misses everywhere: latency ~212+gap per 3 instrs.
	if c.IPC > 0.1 {
		t.Fatalf("stream IPC = %.3f, want memory-bound (<0.1)", c.IPC)
	}
	if c.L2Misses == 0 || c.L2Misses != c.L2Accesses {
		t.Fatalf("stream should miss all L2 accesses: %d/%d", c.L2Misses, c.L2Accesses)
	}
}

func TestScanFitsInL2(t *testing.T) {
	// A cyclic scan over 512 lines against a 2048-line L2: once warm, every
	// access hits L2 (cliff behavior).
	app := workload.NewScanApp(workload.Fitting, 512, 2, 1, 7)
	res := Run(Config{
		Apps:        []workload.App{app},
		L2:          lruL2(2048),
		L1Lines:     64,
		L1Ways:      4,
		InstrLimit:  300000,
		WarmupInstr: 50000,
	})
	c := res.Cores[0]
	missRatio := float64(c.L2Misses) / float64(c.L2Accesses+1)
	if missRatio > 0.02 {
		t.Fatalf("fitting scan missing %.3f of L2 accesses after warmup", missRatio)
	}
}

func TestScanThrashesSmallL2(t *testing.T) {
	// The same scan against a 256-line L2 with LRU: ~100% misses.
	app := workload.NewScanApp(workload.Fitting, 512, 2, 1, 7)
	res := Run(Config{
		Apps:        []workload.App{app},
		L2:          lruL2(256),
		L1Lines:     64,
		L1Ways:      4,
		InstrLimit:  200000,
		WarmupInstr: 50000,
	})
	c := res.Cores[0]
	missRatio := float64(c.L2Misses) / float64(c.L2Accesses+1)
	if missRatio < 0.9 {
		t.Fatalf("undersized scan only missing %.3f; cyclic scan under LRU should thrash", missRatio)
	}
}

func TestMultiCoreDisjointAddressSpaces(t *testing.T) {
	apps := []workload.App{
		workload.NewScanApp(workload.Fitting, 200, 2, 1, 11),
		workload.NewScanApp(workload.Fitting, 200, 2, 1, 11), // identical app
	}
	l2 := lruL2(1024)
	res := Run(Config{
		Apps:       apps,
		L2:         l2,
		L1Lines:    32,
		L1Ways:     4,
		InstrLimit: 100000,
	})
	// Identical apps on disjoint address spaces: both working sets fit, and
	// the L2 must hold both copies (no false sharing).
	if l2.Size(0) < 150 || l2.Size(1) < 150 {
		t.Fatalf("occupancies %d/%d: address spaces overlapping?", l2.Size(0), l2.Size(1))
	}
	if res.Throughput <= 0 {
		t.Fatal("no throughput")
	}
}

func TestVantageProtectsFittingAppFromStream(t *testing.T) {
	// The paper's motivating scenario: a cache-fitting app whose working set
	// nearly fills the cache, co-running with three streams. Under shared
	// LRU the streams' combined churn exceeds the spare capacity, so the
	// scan's lines (largest reuse distance) are evicted and it thrashes;
	// UCP+Vantage walls off a covering allocation and rescues it.
	mkApps := func() []workload.App {
		return []workload.App{
			workload.NewScanApp(workload.Fitting, 900, 2, 1, 13),
			workload.NewStreamApp(1<<20, 1, 1, 17),
			workload.NewStreamApp(1<<20, 1, 1, 18),
			workload.NewStreamApp(1<<20, 1, 1, 19),
		}
	}
	run := func(l2 ctrl.Controller, alloc Allocator, partLines int) Result {
		return Run(Config{
			Apps:               mkApps(),
			L2:                 l2,
			L1Lines:            64,
			L1Ways:             4,
			InstrLimit:         300000,
			WarmupInstr:        150000,
			Alloc:              alloc,
			RepartitionCycles:  200000,
			PartitionableLines: partLines,
		})
	}
	// Baseline: shared LRU.
	base := run(lruL2(1024), nil, 0)
	// Vantage + UCP.
	arr := cache.NewZCache(1024, 4, 52, 21)
	vc := core.New(arr, core.Config{Partitions: 4, UnmanagedFrac: 0.05, AMax: 0.5, Slack: 0.1})
	pol := ucp.NewPolicy(4, 16, 1024, ucp.GranLines, 23)
	vres := run(vc, pol, 972)

	fitBase := base.Cores[0]
	fitVan := vres.Cores[0]
	// The paper's 4-core gains are 6.2% geometric mean (up to 40%); this
	// scenario sits near the mean, so assert a solid >5% win on both the
	// rescued app and aggregate throughput.
	if fitVan.IPC <= fitBase.IPC*1.05 {
		t.Fatalf("Vantage+UCP did not rescue the fitting app: IPC %.3f vs LRU %.3f",
			fitVan.IPC, fitBase.IPC)
	}
	if vres.Throughput <= base.Throughput*1.05 {
		t.Fatalf("Vantage throughput %.3f not clearly above LRU %.3f", vres.Throughput, base.Throughput)
	}
	if vres.Repartitions == 0 {
		t.Fatal("UCP never repartitioned")
	}
}

func TestOnRepartitionObserved(t *testing.T) {
	apps := []workload.App{
		workload.NewStreamApp(1<<18, 2, 1, 31),
		workload.NewStreamApp(1<<18, 2, 1, 37),
	}
	arr := cache.NewZCache(512, 4, 16, 41)
	vc := core.New(arr, core.Config{Partitions: 2, UnmanagedFrac: 0.1, AMax: 0.5, Slack: 0.1})
	pol := ucp.NewPolicy(2, 16, 512, ucp.GranLines, 43)
	calls := 0
	Run(Config{
		Apps:               apps,
		L2:                 vc,
		L1Lines:            32,
		L1Ways:             4,
		InstrLimit:         100000,
		Alloc:              pol,
		RepartitionCycles:  100000,
		PartitionableLines: 460,
		OnRepartition: func(cycle uint64, targets, actual []int) {
			calls++
			if len(targets) != 2 || len(actual) != 2 {
				t.Fatalf("bad callback shapes: %v %v", targets, actual)
			}
			sum := targets[0] + targets[1]
			if sum != 460 {
				t.Fatalf("targets sum to %d, want 460", sum)
			}
		},
	})
	if calls == 0 {
		t.Fatal("repartition callback never fired")
	}
}

func TestWarmupExcludedFromStats(t *testing.T) {
	app := workload.NewScanApp(workload.Fitting, 400, 2, 1, 47)
	with := Run(Config{
		Apps: []workload.App{app}, L2: lruL2(1024),
		L1Lines: 32, L1Ways: 4, InstrLimit: 100000, WarmupInstr: 100000,
	})
	appCold := workload.NewScanApp(workload.Fitting, 400, 2, 1, 47)
	without := Run(Config{
		Apps: []workload.App{appCold}, L2: lruL2(1024),
		L1Lines: 32, L1Ways: 4, InstrLimit: 100000,
	})
	// The warm run should show a higher (or equal) hit rate than the cold
	// run whose window includes compulsory misses.
	warmMiss := float64(with.Cores[0].L2Misses) / float64(with.Cores[0].L2Accesses+1)
	coldMiss := float64(without.Cores[0].L2Misses) / float64(without.Cores[0].L2Accesses+1)
	if warmMiss > coldMiss {
		t.Fatalf("warm miss ratio %.3f above cold %.3f", warmMiss, coldMiss)
	}
	if with.Cores[0].Instructions < 100000 {
		t.Fatal("measurement window too short")
	}
}

func TestNoL1Configuration(t *testing.T) {
	app := workload.NewZipfApp(workload.Friendly, 256, 0.8, 2, 1, 53)
	res := Run(Config{
		Apps:       []workload.App{app},
		L2:         lruL2(512),
		InstrLimit: 50000,
	})
	c := res.Cores[0]
	if c.L2Accesses != c.L1Accesses {
		t.Fatalf("without L1 every reference must reach L2: %d vs %d", c.L2Accesses, c.L1Accesses)
	}
	if res.String() == "" {
		t.Fatal("empty result string")
	}
}

func TestDefaultLatencies(t *testing.T) {
	l := DefaultLatencies()
	if l.L1Hit != 1 || l.L2Hit != 12 || l.Memory != 200 {
		t.Fatalf("Table 2 latencies wrong: %+v", l)
	}
}
