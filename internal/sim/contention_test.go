package sim

import (
	"testing"

	"vantage/internal/workload"
)

func TestContentionStatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative contention accepted")
		}
	}()
	newContentionState(Contention{L2Banks: -1})
}

func TestContentionDisabledIsFree(t *testing.T) {
	s := newContentionState(Contention{})
	for i := uint64(0); i < 100; i++ {
		if s.l2Delay(i*64, i) != 0 || s.memDelay(i) != 0 {
			t.Fatal("disabled contention delayed")
		}
	}
}

func TestBankConflictsDelay(t *testing.T) {
	s := newContentionState(Contention{L2Banks: 4, L2BankBusy: 2})
	// Two back-to-back accesses to the same bank at the same cycle: the
	// second waits for the busy time.
	if d := s.l2Delay(0, 100); d != 0 {
		t.Fatalf("first access delayed %d", d)
	}
	if d := s.l2Delay(0, 100); d != 2 {
		t.Fatalf("conflicting access delayed %d, want 2", d)
	}
	// A different bank is free.
	if d := s.l2Delay(64, 100); d != 0 {
		t.Fatalf("other bank delayed %d", d)
	}
}

func TestMemoryBandwidthThrottles(t *testing.T) {
	s := newContentionState(Contention{MemCyclesPerLine: 4})
	total := uint64(0)
	for i := 0; i < 10; i++ {
		total += s.memDelay(100)
	}
	// Ten simultaneous fetches at one line per 4 cycles: delays 0,4,8,...,36.
	if total != 4*(1+2+3+4+5+6+7+8+9) {
		t.Fatalf("total queuing delay %d", total)
	}
	// After the burst drains, a later request sails through.
	if d := s.memDelay(1000); d != 0 {
		t.Fatalf("post-drain delay %d", d)
	}
}

func TestContentionSlowsStreams(t *testing.T) {
	run := func(c Contention) float64 {
		apps := []workload.App{
			workload.NewStreamApp(1<<20, 0, 1, 1),
			workload.NewStreamApp(1<<20, 0, 1, 2),
			workload.NewStreamApp(1<<20, 0, 1, 3),
			workload.NewStreamApp(1<<20, 0, 1, 4),
		}
		res := Run(Config{
			Apps: apps, L2: lruL2(512), L1Lines: 32, L1Ways: 4,
			InstrLimit: 20000, Contention: c,
		})
		return res.Throughput
	}
	free := run(Contention{})
	// Severe bandwidth limit: one line per 100 cycles shared by 4 streams
	// that would each want one per ~201 cycles.
	limited := run(Contention{MemCyclesPerLine: 100, L2Banks: 4})
	if limited >= free {
		t.Fatalf("bandwidth limit did not slow streams: %.4f vs %.4f", limited, free)
	}
}
