package sim

import (
	"reflect"
	"sync"
	"testing"

	"vantage/internal/cache"
	"vantage/internal/core"
	"vantage/internal/ctrl"
	"vantage/internal/ucp"
	"vantage/internal/workload"
)

// filterApps builds a four-app mix covering every Table 3 category (fitting
// scan, streaming, friendly zipf, insensitive zipf) with fresh state per
// call; app construction is deterministic, so every call yields
// draw-for-draw identical streams.
func filterApps() []workload.App {
	return []workload.App{
		workload.NewScanApp(workload.Fitting, 900, 2, 1, 13),
		workload.NewStreamApp(1<<20, 1, 1, 17),
		workload.NewZipfApp(workload.Friendly, 2048, 0.9, 3, 2, 19),
		workload.NewZipfApp(workload.Insensitive, 256, 0.8, 4, 4, 23),
	}
}

// filterRecorders wraps fresh copies of the mix in post-L1 recorders matching
// the given simulator geometry.
func filterRecorders(l1Lines, l1Ways int, warmup, limit uint64) []*MissRecorder {
	apps := filterApps()
	out := make([]*MissRecorder, len(apps))
	for i, a := range apps {
		out[i] = NewMissRecorder(a, l1Lines, l1Ways, DefaultLatencies(), warmup, limit)
	}
	return out
}

// TestFilteredMatchesUnfiltered is the bit-identity contract of the filtered
// path: Config.Miss must reproduce the per-reference loop's Result exactly —
// per-core counters, IPC, throughput and finish cycles — on both an
// unpartitioned LRU baseline and a repartitioning Vantage+UCP scheme
// (covering warmup splits, freeze splits and repartition firing).
func TestFilteredMatchesUnfiltered(t *testing.T) {
	const (
		l1Lines = 64
		l1Ways  = 4
		warmup  = 150000
		limit   = 300000
	)
	type build func() (ctrl.Controller, Allocator, int)
	schemes := map[string]build{
		"lru": func() (ctrl.Controller, Allocator, int) {
			return lruL2(1024), nil, 0
		},
		"vantage-ucp": func() (ctrl.Controller, Allocator, int) {
			arr := cache.NewZCache(1024, 4, 52, 21)
			vc := core.New(arr, core.Config{Partitions: 4, UnmanagedFrac: 0.05, AMax: 0.5, Slack: 0.1})
			return vc, ucp.NewPolicy(4, 16, 1024, ucp.GranLines, 23), 972
		},
	}
	for name, mk := range schemes {
		l2, alloc, partLines := mk()
		want := Run(Config{
			Apps:               filterApps(),
			L2:                 l2,
			L1Lines:            l1Lines,
			L1Ways:             l1Ways,
			InstrLimit:         limit,
			WarmupInstr:        warmup,
			Alloc:              alloc,
			RepartitionCycles:  200000,
			PartitionableLines: partLines,
		})
		recs := filterRecorders(l1Lines, l1Ways, warmup, limit)
		miss := make([]*MissReplay, len(recs))
		for i, mr := range recs {
			miss[i] = mr.MissSet(1)[0]
		}
		l2, alloc, partLines = mk()
		got := Run(Config{
			Miss:               miss,
			L2:                 l2,
			InstrLimit:         limit,
			WarmupInstr:        warmup,
			Alloc:              alloc,
			RepartitionCycles:  200000,
			PartitionableLines: partLines,
		})
		if !reflect.DeepEqual(got.Cores, want.Cores) {
			t.Errorf("%s: filtered per-core stats diverge:\n got %+v\nwant %+v", name, got.Cores, want.Cores)
		}
		if got.Throughput != want.Throughput || got.WeightedCycles != want.WeightedCycles {
			t.Errorf("%s: filtered aggregate diverges: throughput %.6f/%.6f cycles %d/%d",
				name, got.Throughput, want.Throughput, got.WeightedCycles, want.WeightedCycles)
		}
		if want.Repartitions > 0 && got.Repartitions == 0 {
			t.Errorf("%s: filtered run never repartitioned", name)
		}
	}
}

// TestMissReplayConcurrentCursors runs three identical scheme configurations
// concurrently over one shared recorder set: results must match a solo run
// exactly, and the windowed chunk release must never free a chunk a cursor
// still needs. The instruction budget spans several segment chunks.
func TestMissReplayConcurrentCursors(t *testing.T) {
	const (
		l1Lines = 32
		l1Ways  = 4
		limit   = 300000
		readers = 3
	)
	runOne := func(miss []*MissReplay) Result {
		arr := cache.NewZCache(1024, 4, 52, 21)
		vc := core.New(arr, core.Config{Partitions: 4, UnmanagedFrac: 0.05, AMax: 0.5, Slack: 0.1})
		return Run(Config{
			Miss:               miss,
			L2:                 vc,
			InstrLimit:         limit,
			Alloc:              ucp.NewPolicy(4, 16, 1024, ucp.GranLines, 23),
			RepartitionCycles:  200000,
			PartitionableLines: 972,
		})
	}
	solo := filterRecorders(l1Lines, l1Ways, 0, limit)
	soloMiss := make([]*MissReplay, len(solo))
	for i, mr := range solo {
		soloMiss[i] = mr.MissSet(1)[0]
	}
	want := runOne(soloMiss)

	recs := filterRecorders(l1Lines, l1Ways, 0, limit)
	sets := make([][]*MissReplay, readers) // [run][app]
	for i, mr := range recs {
		for r, cur := range mr.MissSet(readers) {
			if sets[r] == nil {
				sets[r] = make([]*MissReplay, len(recs))
			}
			sets[r][i] = cur
		}
	}
	got := make([]Result, readers)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			got[r] = runOne(sets[r])
		}(r)
	}
	wg.Wait()
	for r := range got {
		if !reflect.DeepEqual(got[r], want) {
			t.Errorf("concurrent reader %d diverged:\n got %+v\nwant %+v", r, got[r], want)
		}
	}
}

// TestMissRecorderPanics pins the loud-failure contract of the filtered path.
func TestMissRecorderPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	app := func() workload.App { return workload.NewStreamApp(1000, 1, 1, 1) }
	expectPanic("nil source", func() {
		NewMissRecorder(nil, 32, 4, Latencies{}, 0, 1000)
	})
	expectPanic("zero limit", func() {
		NewMissRecorder(app(), 32, 4, Latencies{}, 0, 0)
	})
	expectPanic("MissSet(0)", func() {
		NewMissRecorder(app(), 32, 4, Latencies{}, 0, 1000).MissSet(0)
	})
	expectPanic("MissSet twice", func() {
		mr := NewMissRecorder(app(), 32, 4, Latencies{}, 0, 1000)
		mr.MissSet(1)
		mr.MissSet(1)
	})
	expectPanic("OnRepartition with Miss", func() {
		mr := NewMissRecorder(app(), 32, 4, Latencies{}, 0, 1000)
		Run(Config{
			Miss:          mr.MissSet(1),
			L2:            lruL2(256),
			InstrLimit:    1000,
			OnRepartition: func(uint64, []int, []int) {},
		})
	})
	expectPanic("Apps/Miss length mismatch", func() {
		mr := NewMissRecorder(app(), 32, 4, Latencies{}, 0, 1000)
		Run(Config{
			Apps:       []workload.App{app(), app()},
			Miss:       mr.MissSet(1),
			L2:         lruL2(256),
			InstrLimit: 1000,
		})
	})
}
