package sim

import (
	"fmt"
	"sync"

	"vantage/internal/workload"
)

// This file memoizes the post-L1 reference stream. The private L1s are
// feedback-free: lookups, fills, evictions and the coarse LRU timestamp are
// pure functions of the address sequence (nothing flows back from the shared
// L2), and every scheme run of a mix drives identical L1 geometry with
// identical recorded streams. The L1 hit/miss sequence is therefore
// scheme-independent and can be computed once per (mix, app) and shared by
// the baseline and every partitioning scheme — which also shrinks the
// simulator's hot loop by the L1 hit rate (roughly 3x fewer scheduler steps),
// because runs of L1 hits collapse into a single cycle/instruction delta.
//
// Equivalence argument (locked down by TestFilteredRunEquivalence and the
// golden fingerprints in internal/exp):
//
//   - L1 hits touch no shared state, so only the interleaving of post-L1
//     accesses matters. The per-reference scheduler steps cores in
//     (cycle, index) order; its L2 accesses therefore execute in
//     (missCycle, coreIndex) order. The filtered scheduler keys its heap on
//     exactly that pair, so the shared cache and the UMONs observe the same
//     access sequence.
//   - UCP repartitions when the global cycle low-water mark crosses a
//     boundary. In the per-reference loop the low-water mark advances by at
//     most one reference's cycles per step, so each boundary fires at the
//     first step at or past it — after every L2 access below the boundary
//     and before every L2 access at or above it, with only shared-state-free
//     L1 hit steps in between. The filtered loop fires each boundary at the
//     first popped miss at or past it, which is the same point in the L2
//     access (and UMON mutation) sequence.
//   - Measurement bookkeeping is exact because segments never span a regime
//     change: the recorder splits at the warmup-to-measurement transition
//     and at the instruction-limit crossing, so warmup credit, IPC windows,
//     freeze cycles and hit/miss counters aggregate to identical values.
//
// Residual divergence: Result.Repartitions can omit trailing boundary
// crossings that the per-reference loop still flushed after the last L2
// access (allocator decisions that no access ever observes), and
// OnRepartition cycle stamps would differ — Run therefore rejects filtered
// configs with an OnRepartition observer, unless Config.RelaxedRepartition
// (fast tier) opts into observers with pending-miss cycle stamps.

// A filtered stream is a sequence of packed two-word segments, each "a run of
// L1 hits, optionally terminated by one L1 miss":
//
//	w0 = hasMiss<<63 | missGap<<48 | hits<<32 | missAddr
//	w1 = preHits<<32 | steps
//
// hits (16 bits) counts leading L1 hits; preHits (32 bits) is the cycles
// they advance the core's clock (their gaps plus L1 hit latencies); steps
// (32 bits) is the whole segment's instruction count (gap+1 per reference).
// For miss-terminated segments, missAddr (32 bits) is the untagged line
// address and missGap (15 bits) its instruction gap: the miss occurs at
// clock+preHits, issues at clock+preHits+missGap, and its (scheme-dependent)
// latency stays in the simulator. Hit-only segments (hasMiss == 0) appear
// where the recorder was forced to split. The field widths hold by
// construction: addresses are recorded (packed) form, gaps are geometric
// with small means, and the hits bound forces a split; emit panics loudly on
// violation rather than truncating.
const (
	missChunkSegs = 1 << 13 // segments per chunk: two words each, 128 KiB
	// missChunkRefs caps the raw references filtered per chunk, so a chunk is
	// published (possibly short) after bounded work even when misses are
	// rare. At typical post-L1 miss rates (~0.3) a chunk fills well under
	// the cap; the cap only bites on L1-resident phases.
	missChunkRefs = 1 << 16

	segMissFlag  = uint64(1) << 63
	segGapShift  = 48
	segGapMax    = 1<<15 - 1
	segHitsShift = 32
	segHitsMax   = 1<<16 - 1
	segAddrMask  = 1<<32 - 1
	segPreMax    = 1<<32 - 1

	// flatSchedCores is the core count at or below which runFiltered's
	// scheduler uses a flat argmin scan instead of the 8-ary heap.
	flatSchedCores = 64
)

// MissRecorder computes and memoizes one app's post-L1 segment stream. It is
// safe for concurrent readers: all chunk-table state is guarded by mu (reads
// lock only once per chunk), published chunks are immutable, and the table
// entries behind every reader of the MissSet are dropped so resident memory
// tracks the reader spread, not the stream length.
type MissRecorder struct {
	mu sync.Mutex

	// Raw reference source (typically a windowed replay cursor over the raw
	// recording, which releases raw chunks right behind this reader) and its
	// packed fast path.
	src    workload.App
	packed workload.PackedApp
	refs   []uint64
	refPos int

	l1       *l1Cache
	latL1Hit uint64

	// Warmup/measurement replica of the simulator's per-core bookkeeping,
	// used only to place the two regime-change splits.
	warmLeft uint64
	measured uint64
	limit    uint64
	frozen   bool

	// Pending segment accumulators (the hit prefix not yet emitted).
	pendHits  uint64
	pendPre   uint64
	pendSteps uint64

	chunks   [][]uint64
	filled   int
	building []uint64

	cursorPos []int
	released  int
}

// NewMissRecorder wraps a raw reference stream in a post-L1 segment
// recorder. src must start at reference zero; l1Lines/l1Ways and lat must
// match the simulator configuration the replays will run under, and
// warmupInstr/instrLimit must match so regime splits land on the exact
// references where the simulator's bookkeeping transitions.
func NewMissRecorder(src workload.App, l1Lines, l1Ways int, lat Latencies, warmupInstr, instrLimit uint64) *MissRecorder {
	if src == nil {
		panic("sim: NewMissRecorder requires a source stream")
	}
	if instrLimit == 0 {
		panic("sim: NewMissRecorder requires an instruction limit")
	}
	if lat == (Latencies{}) {
		lat = DefaultLatencies()
	}
	mr := &MissRecorder{
		src:      src,
		l1:       newL1Cache(l1Lines, l1Ways),
		latL1Hit: uint64(lat.L1Hit),
		warmLeft: warmupInstr,
		limit:    instrLimit,
	}
	mr.packed, _ = src.(workload.PackedApp)
	return mr
}

// MissSet returns n independent read cursors over the segment stream and
// enables windowed release: a chunk is dropped once every cursor has moved
// past it. Call once, before any reading.
func (mr *MissRecorder) MissSet(n int) []*MissReplay {
	if n <= 0 {
		panic("sim: MissSet needs at least one cursor")
	}
	mr.mu.Lock()
	defer mr.mu.Unlock()
	if mr.cursorPos != nil {
		panic("sim: MissSet called twice on one recorder")
	}
	mr.cursorPos = make([]int, n)
	out := make([]*MissReplay, n)
	for i := range out {
		out[i] = &MissReplay{mr: mr, idx: i}
	}
	return out
}

// nextRef pulls one raw reference. Callers hold mr.mu.
func (mr *MissRecorder) nextRef() (gap int, addr uint64) {
	if mr.refPos < len(mr.refs) {
		gap, addr = workload.UnpackRef(mr.refs[mr.refPos])
		mr.refPos++
		return gap, addr
	}
	if mr.packed != nil {
		if mr.refs = mr.packed.NextPacked(); len(mr.refs) > 0 {
			mr.refPos = 1
			return workload.UnpackRef(mr.refs[0])
		}
		mr.packed = nil // source fell through to live generation
	}
	return mr.src.Next()
}

// emit appends one segment to the chunk under construction. Callers hold
// mr.mu.
func (mr *MissRecorder) emit(w0, w1 uint64) {
	mr.building = append(mr.building, w0, w1)
}

// flushHits emits the pending hit prefix as a hit-only segment (forced
// split). Callers hold mr.mu.
func (mr *MissRecorder) flushHits() {
	if mr.pendSteps == 0 {
		return
	}
	mr.emit(mr.pendHits<<segHitsShift, mr.pendPre<<32|mr.pendSteps)
	mr.pendHits, mr.pendPre, mr.pendSteps = 0, 0, 0
}

// extendLocked filters raw references into one chunk of segments and
// publishes it — full in the common case, shorter when the reference cap is
// reached first (rare misses). Callers hold mr.mu.
func (mr *MissRecorder) extendLocked() {
	if mr.building == nil {
		mr.building = make([]uint64, 0, 2*missChunkSegs)
	}
	for budget := missChunkRefs; budget > 0 && len(mr.building) < 2*missChunkSegs; budget-- {
		gap, addr := mr.nextRef()
		if gap < 0 || uint64(gap) > segGapMax || addr > segAddrMask {
			panic(fmt.Sprintf("sim: reference does not fit segment form (gap=%d addr=%#x)", gap, addr))
		}
		steps := uint64(gap) + 1
		if mr.l1.access(addr) {
			mr.pendHits++
			mr.pendPre += uint64(gap) + mr.latL1Hit
			mr.pendSteps += steps
			if mr.track(steps) || mr.pendHits == segHitsMax ||
				mr.pendPre > segPreMax-(segGapMax+mr.latL1Hit) ||
				mr.pendSteps > segPreMax-(segGapMax+1) {
				mr.flushHits()
			}
			continue
		}
		mr.emit(
			segMissFlag|uint64(gap)<<segGapShift|mr.pendHits<<segHitsShift|addr,
			mr.pendPre<<32|(mr.pendSteps+steps),
		)
		mr.pendHits, mr.pendPre, mr.pendSteps = 0, 0, 0
		mr.track(steps)
	}
	if len(mr.building) == 0 {
		// A whole cap's worth of references without one segment: flush the
		// pending hit run so every published chunk is non-empty (the forced
		// split is semantically neutral, like the hits-counter flush).
		mr.flushHits()
	}
	mr.chunks = append(mr.chunks, mr.building)
	mr.building = nil
	mr.filled++
}

// track replays the simulator's warmup/measurement bookkeeping for one
// reference and reports whether a regime change lands on it (forcing a
// segment split so no segment spans the transition).
func (mr *MissRecorder) track(steps uint64) bool {
	if mr.warmLeft > 0 {
		if mr.warmLeft > steps {
			mr.warmLeft -= steps
			return false
		}
		mr.warmLeft = 0
		return true // warmup ends here; measurement starts next reference
	}
	if mr.frozen {
		return false
	}
	mr.measured += steps
	if mr.measured >= mr.limit {
		mr.frozen = true
		return true // the core's measurement window closes on this reference
	}
	return false
}

// releaseLocked drops chunk-table entries every cursor has passed. Callers
// hold mr.mu.
func (mr *MissRecorder) releaseLocked() {
	lo := mr.cursorPos[0]
	for _, p := range mr.cursorPos[1:] {
		if p < lo {
			lo = p
		}
	}
	for ; mr.released < lo; mr.released++ {
		mr.chunks[mr.released] = nil
	}
}

// MissReplay is a read cursor over a MissRecorder's segment stream. The
// simulator consumes whole chunks (NextChunk) and iterates the packed
// segments in place.
type MissReplay struct {
	mr   *MissRecorder
	idx  int
	next int
}

// NextChunk returns the next chunk of packed segments and advances past it,
// extending the recording as needed. The stream never ends (the raw source
// falls through to live generation past its own budget); chunks are full in
// the common case and shorter when the per-chunk reference cap hit first.
func (r *MissReplay) NextChunk() []uint64 {
	mr := r.mr
	mr.mu.Lock()
	for mr.filled <= r.next {
		mr.extendLocked()
	}
	chunk := mr.chunks[r.next]
	if chunk == nil {
		panic("sim: miss replay cursor read a released chunk")
	}
	r.next++
	mr.cursorPos[r.idx] = r.next
	mr.releaseLocked()
	mr.mu.Unlock()
	return chunk
}

// advanceMiss consumes a core's segments until it holds a pending miss,
// applying hit-only segments in place as they are read. Hit-only segments
// touch no shared state, so consuming them eagerly — ahead of their place in
// the global cycle order — cannot change any other core's view; the clock
// arithmetic and measurement bookkeeping are core-local and exact because
// segments never span a regime change. The walk terminates because every
// machine's workloads have working sets well beyond the tiny private L1, so
// misses recur within a bounded number of references (filtered mode is not
// meant for — and would spin on — an app that stops missing its L1 forever).
func (rs *runState) advanceMiss(c *coreState, ci int) {
	for {
		if c.mpos == len(c.msegs) {
			c.msegs = c.mstream.NextChunk()
			c.mpos = 0
		}
		w0, w1 := c.msegs[c.mpos], c.msegs[c.mpos+1]
		c.mpos += 2
		pre, steps := w1>>32, w1&segPreMax
		if w0&segMissFlag != 0 {
			c.missCycle = c.cycle + pre
			c.missGap = w0 >> segGapShift & segGapMax
			c.missAddr = uint64(ci+1)<<40 | w0&segAddrMask
			c.segHits = w0 >> segHitsShift & segHitsMax
			c.segSteps = steps
			return
		}
		hits := w0 >> segHitsShift & segHitsMax
		measuring := c.warmLeft == 0 && !c.frozen
		c.cycle += pre
		if measuring {
			c.stats.L1Accesses += hits
			c.instrs += steps
			if c.instrs >= rs.instrLimit {
				rs.freeze(c)
			}
		} else if c.warmLeft > 0 {
			if c.warmLeft > steps {
				c.warmLeft -= steps
			} else {
				c.warmLeft = 0
				c.startCycle = c.cycle
			}
		}
	}
}

// runFiltered is the main loop over memoized post-L1 segments: the scheduler
// heap keys each core by the cycle of its next pending L2 access, so pops
// replay exactly the (missCycle, coreIndex) order the per-reference loop
// produces (see the equivalence argument at the top of this file).
func (rs *runState) runFiltered(cfg *Config, res *Result) {
	n := len(rs.cores)
	rs.instrLimit = cfg.InstrLimit
	for i := range rs.cores {
		rs.advanceMiss(&rs.cores[i], i)
		rs.heap[i] = rs.cores[i].missCycle<<rs.ciBits | uint64(i)
	}
	// At small core counts the scheduler drops the heap entirely: rs.heap
	// becomes a flat per-core key array (slot i always holds core i's key)
	// plus a cached minimum per group of eight cores. An event then costs
	// one scan over the group minima (pop) and one eight-wide rescan of the
	// updated core's group — about a dozen branch-predictable compares with
	// no sift writes. The packed keys are unique (the core index is in the
	// low bits), so the strict-< minimum over group minima is exactly the
	// heap's pop and the replay order is unchanged.
	flat := n <= flatSchedCores
	var gmin []uint64
	keys := rs.heap[:n]
	if flat {
		gmin = make([]uint64, (n+7)/8)
		for g := range gmin {
			lo := g << 3
			hi := lo + 8
			if hi > n {
				hi = n
			}
			m := keys[lo]
			for _, k := range keys[lo+1 : hi] {
				if k < m {
					m = k
				}
			}
			gmin[g] = m
		}
	} else {
		// Unlike the all-zero per-reference start, initial miss cycles are
		// arbitrary, so establish the heap invariant explicitly (bottom-up
		// from the last slot with children in the 8-ary layout).
		for i := (n - 2) / 8; i >= 0; i-- {
			rs.siftDown(i)
		}
	}

	nextRepart := cfg.RepartitionCycles
	repartEnabled := rs.alloc != nil && cfg.RepartitionCycles > 0
	for rs.remaining > 0 {
		var ci int
		if flat {
			min := gmin[0]
			for _, k := range gmin[1:] {
				if k < min {
					min = k
				}
			}
			ci = int(min & rs.ciMask)
		} else {
			ci = int(rs.heap[0] & rs.ciMask)
		}
		c := &rs.cores[ci]

		// Fire every boundary at or below this miss. The per-reference loop
		// spread these fires over intervening L1-hit steps, which mutate
		// nothing the allocator or cache can see, so firing them back to
		// back here leaves identical state for the access below. The
		// observer (fast tier only; see Config.RelaxedRepartition) gets the
		// pending-miss stamp, the closest filtered analog of the exact
		// tier's per-reference clock.
		for repartEnabled && c.missCycle >= nextRepart {
			targets := rs.repartition(cfg, res)
			if cfg.OnRepartition != nil {
				actual := make([]int, rs.l2.NumPartitions())
				for p := range actual {
					actual[p] = rs.l2.Size(p)
				}
				cfg.OnRepartition(c.missCycle, targets, actual)
			}
			nextRepart += cfg.RepartitionCycles
		}

		lat, l2Hit := rs.accessL2(c.missAddr, ci)
		now := c.missCycle + c.missGap
		lat += int(rs.cont.l2Delay(c.missAddr, now))
		if !l2Hit {
			lat += int(rs.cont.memDelay(now))
		}
		measuring := c.warmLeft == 0 && !c.frozen
		steps := c.segSteps
		c.cycle = now + uint64(lat)
		if measuring {
			c.stats.L1Accesses += c.segHits + 1
			c.stats.L1Misses++
			c.stats.L2Accesses++
			if !l2Hit {
				c.stats.L2Misses++
			}
			c.instrs += steps
			if c.instrs >= cfg.InstrLimit {
				rs.freeze(c)
			}
		} else if c.warmLeft > 0 {
			if c.warmLeft > steps {
				c.warmLeft -= steps
			} else {
				c.warmLeft = 0
				c.startCycle = c.cycle
			}
		}
		rs.advanceMiss(c, ci)
		if flat {
			keys[ci] = c.missCycle<<rs.ciBits | uint64(ci)
			g := ci >> 3
			lo := g << 3
			hi := lo + 8
			if hi > n {
				hi = n
			}
			m := keys[lo]
			for _, k := range keys[lo+1 : hi] {
				if k < m {
					m = k
				}
			}
			gmin[g] = m
		} else {
			rs.heap[0] = c.missCycle<<rs.ciBits | uint64(ci)
			rs.fixRoot()
		}
	}
}
