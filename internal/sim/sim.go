// Package sim implements the multicore simulator of the paper's evaluation
// (Table 2): in-order cores with IPC=1 except on memory accesses, private L1
// caches, a shared partitioned L2, and a fixed-latency memory, running
// multiprogrammed mixes with disjoint per-core address spaces. UCP
// repartitions the shared cache at a fixed cycle interval, feeding each
// core's post-L1 access stream into its UMON.
//
// The paper's Pin-based execution-driven simulator is replaced by
// model-driven cores (workload.App address streams); latencies follow
// Table 2. Memory bandwidth contention is not modeled (fixed zero-load
// latency), a substitution recorded in DESIGN.md.
package sim

import (
	"fmt"
	"math/bits"

	"vantage/internal/ctrl"
	"vantage/internal/hash"
	"vantage/internal/ucp"
	"vantage/internal/workload"
)

// Allocator decides partition targets: it observes each partition's post-L1
// access stream and produces line-granularity allocations on demand.
// *ucp.Policy implements it; so do the simpler policies in that package.
type Allocator interface {
	// Access feeds one address of partition part's L2 access stream.
	Access(part int, addr uint64)
	// Allocate returns per-partition targets summing to totalLines.
	Allocate(totalLines int) []int
}

var _ Allocator = (*ucp.Policy)(nil)

// MixedAllocator is implemented by allocators whose access feed can reuse a
// precomputed hash.Mix64 of the address (all the ucp policies). The
// simulator mixes each post-L1 reference once and shares the value between
// the allocator's monitors and the L2 controller; for
// mixed == hash.Mix64(addr) the result is bit-for-bit identical to
// Access(part, addr).
type MixedAllocator interface {
	Allocator
	// AccessMixed is Access with the Mix64 finalizer already applied to addr.
	AccessMixed(part int, addr, mixed uint64)
}

var (
	_ MixedAllocator = (*ucp.Policy)(nil)
	_ MixedAllocator = (*ucp.PolicyRRIP)(nil)
	_ MixedAllocator = (*ucp.Static)(nil)
	_ MixedAllocator = (*ucp.Proportional)(nil)
)

// PolicyChooser is implemented by allocators that also pick per-partition
// insertion policies (UMON-RRIP for Vantage-DRRIP, §6.2): true = BRRIP.
type PolicyChooser interface {
	InsertionPolicies() []bool
}

// InsertionPolicySetter is implemented by controllers that accept external
// insertion-policy choices (the Vantage-DRRIP controller).
type InsertionPolicySetter interface {
	SetInsertionPolicy(part int, brrip bool)
}

// Latencies are the Table 2 access latencies, in cycles.
type Latencies struct {
	L1Hit  int // paper: 1
	L2Hit  int // paper: 4 (L1-to-bank) + 8 (bank) = 12
	Memory int // paper: 200 zero-load
}

// DefaultLatencies returns the Table 2 values.
func DefaultLatencies() Latencies { return Latencies{L1Hit: 1, L2Hit: 12, Memory: 200} }

// Config describes one simulation run.
type Config struct {
	// Apps is the mix, one App per core.
	Apps []workload.App
	// L2 is the shared cache controller under test (one partition per core
	// unless the controller is unpartitioned).
	L2 ctrl.Controller
	// L1Lines and L1Ways size the private L1s (0 lines disables them).
	L1Lines, L1Ways int
	// Lat are the hierarchy latencies.
	Lat Latencies
	// InstrLimit is the per-core instruction budget; IPC is measured over
	// exactly this many instructions per core (the paper's 200 M).
	InstrLimit uint64
	// WarmupInstr runs each core this many instructions before measurement
	// begins (the paper fast-forwards 20 B instructions instead).
	WarmupInstr uint64
	// Alloc, if non-nil, repartitions the L2 every RepartitionCycles;
	// PartitionableLines is the capacity handed to the allocator (for
	// Vantage, the managed region). ucp.Policy is the paper's allocator;
	// any Allocator (e.g. ucp.Static) can drive the schemes.
	Alloc              Allocator
	RepartitionCycles  uint64
	PartitionableLines int
	// OnRepartition, if set, observes every repartitioning decision.
	OnRepartition func(cycle uint64, targets, actual []int)
	// RelaxedRepartition (fast tier) permits OnRepartition observers on
	// filtered streams. The filtered loop times repartitioning off
	// pending-miss cycle stamps rather than exact per-reference clocks, so
	// observed cycles can lag the exact tier's by up to one L1-hit run;
	// the decisions themselves (targets, actual sizes) come from the same
	// allocator machinery. Exact-tier runs must leave this unset so the
	// bit-identity assertion keeps catching misuse.
	RelaxedRepartition bool
	// Miss, if non-nil, replaces per-reference simulation with memoized
	// post-L1 segment streams (one cursor per core; see MissRecorder). The
	// private L1s are then not modeled per run — their behavior is baked
	// into the segments — so L1Lines/L1Ways and Apps are ignored. Mutually
	// exclusive with OnRepartition (cycle stamps would differ; see
	// filter.go) unless RelaxedRepartition accepts the approximate stamps.
	Miss []*MissReplay
	// Contention optionally models L2 bank conflicts and memory bandwidth
	// (zero value: the paper's zero-load latencies).
	Contention Contention
}

// CoreStats accumulates one core's measurement-window counters.
type CoreStats struct {
	Instructions uint64
	Cycles       uint64
	L1Accesses   uint64
	L1Misses     uint64
	L2Accesses   uint64
	L2Misses     uint64
	IPC          float64
	L2MPKI       float64
}

// Result is the outcome of a run.
type Result struct {
	Cores []CoreStats
	// Throughput is ΣIPC, the paper's headline metric.
	Throughput float64
	// WeightedCycles is the global cycle count when the last core finished.
	WeightedCycles uint64
	// Repartitions counts allocator invocations.
	Repartitions uint64
}

// coreState is one core's runtime state.
type coreState struct {
	app workload.App
	// packed is app's zero-copy bulk read path (recorded streams), or nil.
	// refs/refPos are the current packed view; when packed reads run dry
	// (budget fall-through) packed is cleared and the core reverts to
	// per-reference app.Next calls.
	packed workload.PackedApp
	refs   []uint64
	refPos int
	l1     *l1Cache
	// Filtered-stream state (Config.Miss): the segment cursor, the current
	// chunk view, and the decoded pending miss the scheduler key points at.
	mstream   *MissReplay
	msegs     []uint64
	mpos      int
	missCycle uint64 // clock at the pending miss (clock + hit-prefix cycles)
	missAddr  uint64 // core-tagged line address of the pending miss
	missGap   uint64
	segHits   uint64
	segSteps  uint64
	cycle     uint64
	instrs    uint64 // instructions retired in the measurement window
	warmLeft  uint64
	// frozen cores have finished their measurement window; they keep
	// running (so the cache keeps seeing their traffic, as in the paper's
	// methodology) but their stats no longer change.
	frozen bool
	// startCycle is the local clock value when the measurement window
	// opened (end of warmup). Clocks are never reset: rewinding a core's
	// clock would let the min-cycle scheduler run it solo for long
	// stretches, destroying the access interleaving the shared cache sees.
	startCycle uint64
	doneCycle  uint64
	stats      CoreStats
}

// runState is the execution state of one Run with every per-reference
// dynamic decision resolved up front: latencies and capability probes
// (mixed fast paths, insertion-policy hooks) live in flat fields instead of
// being re-derived from Config inside the hot loop.
//
// Each scheduler heap slot packs a core's local clock and its index into one
// uint64, cycle<<ciBits | ci. Because ci < 1<<ciBits, plain integer order on
// the packed key equals lexicographic (cycle, index) order, so the sift-down
// compares one word per slot and the heap is half the size of a struct-based
// one. Clocks stay far below 1<<(64-ciBits) (2^58 even at 64 cores), so the
// shift cannot overflow in any configured run.
type runState struct {
	cores      []coreState
	heap       []uint64 // min-heap of cycle<<ciBits | core index
	ciBits     uint     // bits reserved for the core index in a heap key
	ciMask     uint64
	remaining  int    // cores still inside their measurement window
	instrLimit uint64 // cached for the filtered loop's hit-segment freezes

	l2         ctrl.Controller
	l2Mixed    ctrl.MixedController // l2's mixed fast path, or nil
	alloc      Allocator
	allocMixed MixedAllocator        // alloc's mixed fast path, or nil
	chooser    PolicyChooser         // alloc's insertion-policy choices, or nil
	setter     InsertionPolicySetter // l2's insertion-policy hook, or nil

	latL1Hit  int
	latL2Hit  int
	latL2Miss int // L2 hit latency plus memory latency

	cont *contentionState
}

// Run executes the configured simulation to completion.
func Run(cfg Config) Result {
	n := len(cfg.Apps)
	if len(cfg.Miss) > 0 {
		if n > 0 && n != len(cfg.Miss) {
			panic("sim: Apps and Miss lengths differ")
		}
		if cfg.OnRepartition != nil && !cfg.RelaxedRepartition {
			panic("sim: OnRepartition requires unfiltered streams (see filter.go)")
		}
		n = len(cfg.Miss)
	}
	if n == 0 {
		panic("sim: no apps")
	}
	if cfg.L2 == nil {
		panic("sim: no L2 controller")
	}
	if cfg.InstrLimit == 0 {
		panic("sim: zero instruction limit")
	}
	if cfg.Lat == (Latencies{}) {
		cfg.Lat = DefaultLatencies()
	}
	rs := &runState{
		cores:     make([]coreState, n),
		heap:      make([]uint64, n),
		ciBits:    uint(bits.Len(uint(n - 1))),
		l2:        cfg.L2,
		alloc:     cfg.Alloc,
		latL1Hit:  cfg.Lat.L1Hit,
		latL2Hit:  cfg.Lat.L2Hit,
		latL2Miss: cfg.Lat.L2Hit + cfg.Lat.Memory,
		cont:      newContentionState(cfg.Contention),
	}
	rs.ciMask = 1<<rs.ciBits - 1
	rs.l2Mixed, _ = cfg.L2.(ctrl.MixedController)
	rs.allocMixed, _ = cfg.Alloc.(MixedAllocator)
	rs.chooser, _ = cfg.Alloc.(PolicyChooser)
	rs.setter, _ = cfg.L2.(InsertionPolicySetter)
	rs.remaining = n
	for i := range rs.cores {
		c := &rs.cores[i]
		c.warmLeft = cfg.WarmupInstr
		if len(cfg.Miss) > 0 {
			c.mstream = cfg.Miss[i]
			continue
		}
		c.app = cfg.Apps[i]
		c.packed, _ = cfg.Apps[i].(workload.PackedApp)
		if cfg.L1Lines > 0 {
			c.l1 = newL1Cache(cfg.L1Lines, cfg.L1Ways)
		}
		// The identity order is a valid heap: all clocks start at zero and
		// ties order by core index, so every parent precedes its children.
		rs.heap[i] = uint64(i) // cycle 0 packed with index i
	}

	var res Result
	if len(cfg.Miss) > 0 {
		rs.runFiltered(&cfg, &res)
		return rs.finish(res)
	}
	nextRepart := cfg.RepartitionCycles
	repartEnabled := rs.alloc != nil && cfg.RepartitionCycles > 0
	for rs.remaining > 0 {
		// Step the core with the lowest local clock (the global low-water
		// mark), so shared-cache accesses interleave in time order. Frozen
		// cores keep running so the cache keeps seeing their traffic. Only
		// the stepped core's clock changes, so restoring heap order after
		// the step is a single sift-down from the root.
		ci := int(rs.heap[0] & rs.ciMask)
		c := &rs.cores[ci]

		// Repartition when global time crosses the boundary.
		if repartEnabled && c.cycle >= nextRepart {
			targets := rs.repartition(&cfg, &res)
			if cfg.OnRepartition != nil {
				actual := make([]int, rs.l2.NumPartitions())
				for p := range actual {
					actual[p] = rs.l2.Size(p)
				}
				cfg.OnRepartition(c.cycle, targets, actual)
			}
			nextRepart += cfg.RepartitionCycles
		}

		var gap int
		var addr uint64
		if c.refPos < len(c.refs) {
			// Recorded-stream fast path: one load from the packed chunk,
			// no interface call.
			gap, addr = workload.UnpackRef(c.refs[c.refPos])
			c.refPos++
		} else if c.packed != nil {
			if c.refs = c.packed.NextPacked(); len(c.refs) > 0 {
				gap, addr = workload.UnpackRef(c.refs[0])
				c.refPos = 1
			} else {
				// Budget fall-through: the replay cursor went live.
				c.packed = nil
				gap, addr = c.app.Next()
			}
		} else {
			gap, addr = c.app.Next()
		}
		addr = uint64(ci+1)<<40 | addr // disjoint address spaces
		lat, l1Miss, l2Hit, l2Acc := rs.access(c, addr, ci)
		if l2Acc {
			now := c.cycle + uint64(gap)
			lat += int(rs.cont.l2Delay(addr, now))
			if !l2Hit {
				lat += int(rs.cont.memDelay(now))
			}
		}

		measuring := c.warmLeft == 0 && !c.frozen
		steps := uint64(gap) + 1
		c.cycle += uint64(gap) + uint64(lat)
		if measuring {
			c.stats.L1Accesses++
			if l1Miss {
				c.stats.L1Misses++
			}
			if l2Acc {
				c.stats.L2Accesses++
				if !l2Hit {
					c.stats.L2Misses++
				}
			}
			c.instrs += steps
			if c.instrs >= cfg.InstrLimit {
				rs.freeze(c)
			}
		} else if c.warmLeft > 0 {
			if c.warmLeft > steps {
				c.warmLeft -= steps
			} else {
				c.warmLeft = 0
				c.startCycle = c.cycle
			}
		}
		rs.heap[0] = c.cycle<<rs.ciBits | uint64(ci)
		rs.fixRoot()
	}
	return rs.finish(res)
}

// repartition runs one allocator invocation and applies its decisions.
func (rs *runState) repartition(cfg *Config, res *Result) []int {
	targets := rs.alloc.Allocate(cfg.PartitionableLines)
	rs.l2.SetTargets(targets)
	if rs.chooser != nil && rs.setter != nil {
		for p, brrip := range rs.chooser.InsertionPolicies() {
			rs.setter.SetInsertionPolicy(p, brrip)
		}
	}
	res.Repartitions++
	return targets
}

// freeze closes a core's measurement window at its current clock.
func (rs *runState) freeze(c *coreState) {
	c.frozen = true
	c.doneCycle = c.cycle
	c.stats.Instructions = c.instrs
	c.stats.Cycles = c.cycle - c.startCycle
	rs.remaining--
}

// finish derives the per-core rates and the aggregate result.
func (rs *runState) finish(res Result) Result {
	res.Cores = make([]CoreStats, len(rs.cores))
	for i := range rs.cores {
		c := &rs.cores[i]
		s := c.stats
		if s.Cycles > 0 {
			s.IPC = float64(s.Instructions) / float64(s.Cycles)
		}
		if s.Instructions > 0 {
			s.L2MPKI = float64(s.L2Misses) / float64(s.Instructions) * 1000
		}
		res.Cores[i] = s
		res.Throughput += s.IPC
		if c.doneCycle > res.WeightedCycles {
			res.WeightedCycles = c.doneCycle
		}
	}
	return res
}

// access performs one memory reference through the hierarchy and returns
// its latency plus what happened at each level.
func (rs *runState) access(c *coreState, addr uint64, core int) (lat int, l1Miss, l2Hit, l2Acc bool) {
	if c.l1 != nil && c.l1.access(addr) {
		return rs.latL1Hit, false, false, false
	}
	lat, l2Hit = rs.accessL2(addr, core)
	return lat, true, l2Hit, true
}

// accessL2 performs one post-L1 reference: it feeds the allocator's monitors
// and the shared controller, and returns the access latency and whether the
// L2 hit. The address is mixed once here and the value shared between the
// monitors and the controller's hashed arrays; the L1 indexes by low address
// bits, so hits there never need the mix.
func (rs *runState) accessL2(addr uint64, core int) (lat int, hit bool) {
	mixed := hash.Mix64(addr)
	if rs.allocMixed != nil {
		rs.allocMixed.AccessMixed(core, addr, mixed)
	} else if rs.alloc != nil {
		rs.alloc.Access(core, addr)
	}
	var r ctrl.AccessResult
	if rs.l2Mixed != nil {
		r = rs.l2Mixed.AccessMixed(addr, mixed, core)
	} else {
		r = rs.l2.Access(addr, core)
	}
	if r.Hit {
		return rs.latL2Hit, true
	}
	return rs.latL2Miss, false
}

// fixRoot restores the heap invariant after the root core's clock advanced:
// a hole-based sift-down (children move up into the hole, the root key is
// written once at its final level). Keys pack (cycle, index) so each
// comparison is a single integer compare; the order is a strict total order
// (core indices are unique), so the minimum core is unique and any valid
// heap shape pops the same schedule as the original linear min-scan (strict
// less-than keeps the lowest-index minimum).
//
// The heap is 8-ary: a stepped core usually traverses the sift in full (its
// clock jumps past most peers every step), so depth dominates the cost. The
// wide fan-out keeps every configured core count within two levels (a 32-core
// heap is 3 levels at 4-ary, 2 at 8-ary) and each level's children share at
// most two cache lines. Because the packed keys form a strict total order,
// the popped schedule is arity-independent — any valid heap shape yields the
// same unique minimum — so widening preserves bit-identical runs. The
// identity layout remains a valid initial heap: every parent index is below
// its children's, matching the all-zero-clock tie order.
func (rs *runState) fixRoot() { rs.siftDown(0) }

// siftDown restores the heap invariant below slot i after its key grew.
func (rs *runState) siftDown(i int) {
	h := rs.heap
	n := len(h)
	root := h[i]
	for {
		c0 := 8*i + 1
		if c0 >= n {
			break
		}
		end := c0 + 8
		if end > n {
			end = n
		}
		best := c0
		bk := h[c0]
		for j := c0 + 1; j < end; j++ {
			if h[j] < bk {
				best, bk = j, h[j]
			}
		}
		if bk >= root {
			break
		}
		h[i] = h[best]
		i = best
	}
	h[i] = root
}

// String formats a result compactly.
func (r Result) String() string {
	return fmt.Sprintf("throughput=%.3f cores=%d repartitions=%d", r.Throughput, len(r.Cores), r.Repartitions)
}
