// Package sim implements the multicore simulator of the paper's evaluation
// (Table 2): in-order cores with IPC=1 except on memory accesses, private L1
// caches, a shared partitioned L2, and a fixed-latency memory, running
// multiprogrammed mixes with disjoint per-core address spaces. UCP
// repartitions the shared cache at a fixed cycle interval, feeding each
// core's post-L1 access stream into its UMON.
//
// The paper's Pin-based execution-driven simulator is replaced by
// model-driven cores (workload.App address streams); latencies follow
// Table 2. Memory bandwidth contention is not modeled (fixed zero-load
// latency), a substitution recorded in DESIGN.md.
package sim

import (
	"fmt"

	"vantage/internal/cache"
	"vantage/internal/ctrl"
	"vantage/internal/repl"
	"vantage/internal/ucp"
	"vantage/internal/workload"
)

// Allocator decides partition targets: it observes each partition's post-L1
// access stream and produces line-granularity allocations on demand.
// *ucp.Policy implements it; so do the simpler policies in that package.
type Allocator interface {
	// Access feeds one address of partition part's L2 access stream.
	Access(part int, addr uint64)
	// Allocate returns per-partition targets summing to totalLines.
	Allocate(totalLines int) []int
}

var _ Allocator = (*ucp.Policy)(nil)

// PolicyChooser is implemented by allocators that also pick per-partition
// insertion policies (UMON-RRIP for Vantage-DRRIP, §6.2): true = BRRIP.
type PolicyChooser interface {
	InsertionPolicies() []bool
}

// InsertionPolicySetter is implemented by controllers that accept external
// insertion-policy choices (the Vantage-DRRIP controller).
type InsertionPolicySetter interface {
	SetInsertionPolicy(part int, brrip bool)
}

// Latencies are the Table 2 access latencies, in cycles.
type Latencies struct {
	L1Hit  int // paper: 1
	L2Hit  int // paper: 4 (L1-to-bank) + 8 (bank) = 12
	Memory int // paper: 200 zero-load
}

// DefaultLatencies returns the Table 2 values.
func DefaultLatencies() Latencies { return Latencies{L1Hit: 1, L2Hit: 12, Memory: 200} }

// Config describes one simulation run.
type Config struct {
	// Apps is the mix, one App per core.
	Apps []workload.App
	// L2 is the shared cache controller under test (one partition per core
	// unless the controller is unpartitioned).
	L2 ctrl.Controller
	// L1Lines and L1Ways size the private L1s (0 lines disables them).
	L1Lines, L1Ways int
	// Lat are the hierarchy latencies.
	Lat Latencies
	// InstrLimit is the per-core instruction budget; IPC is measured over
	// exactly this many instructions per core (the paper's 200 M).
	InstrLimit uint64
	// WarmupInstr runs each core this many instructions before measurement
	// begins (the paper fast-forwards 20 B instructions instead).
	WarmupInstr uint64
	// Alloc, if non-nil, repartitions the L2 every RepartitionCycles;
	// PartitionableLines is the capacity handed to the allocator (for
	// Vantage, the managed region). ucp.Policy is the paper's allocator;
	// any Allocator (e.g. ucp.Static) can drive the schemes.
	Alloc              Allocator
	RepartitionCycles  uint64
	PartitionableLines int
	// OnRepartition, if set, observes every repartitioning decision.
	OnRepartition func(cycle uint64, targets, actual []int)
	// Contention optionally models L2 bank conflicts and memory bandwidth
	// (zero value: the paper's zero-load latencies).
	Contention Contention
}

// CoreStats accumulates one core's measurement-window counters.
type CoreStats struct {
	Instructions uint64
	Cycles       uint64
	L1Accesses   uint64
	L1Misses     uint64
	L2Accesses   uint64
	L2Misses     uint64
	IPC          float64
	L2MPKI       float64
}

// Result is the outcome of a run.
type Result struct {
	Cores []CoreStats
	// Throughput is ΣIPC, the paper's headline metric.
	Throughput float64
	// WeightedCycles is the global cycle count when the last core finished.
	WeightedCycles uint64
	// Repartitions counts allocator invocations.
	Repartitions uint64
}

// coreState is one core's runtime state.
type coreState struct {
	app      workload.App
	l1       *ctrl.Unpartitioned
	cycle    uint64
	instrs   uint64 // instructions retired in the measurement window
	warmLeft uint64
	// frozen cores have finished their measurement window; they keep
	// running (so the cache keeps seeing their traffic, as in the paper's
	// methodology) but their stats no longer change.
	frozen bool
	// startCycle is the local clock value when the measurement window
	// opened (end of warmup). Clocks are never reset: rewinding a core's
	// clock would let the min-cycle scheduler run it solo for long
	// stretches, destroying the access interleaving the shared cache sees.
	startCycle uint64
	doneCycle  uint64
	stats      CoreStats
}

// Run executes the configured simulation to completion.
func Run(cfg Config) Result {
	n := len(cfg.Apps)
	if n == 0 {
		panic("sim: no apps")
	}
	if cfg.L2 == nil {
		panic("sim: no L2 controller")
	}
	if cfg.InstrLimit == 0 {
		panic("sim: zero instruction limit")
	}
	if cfg.Lat == (Latencies{}) {
		cfg.Lat = DefaultLatencies()
	}
	cores := make([]*coreState, n)
	for i := range cores {
		cs := &coreState{app: cfg.Apps[i], warmLeft: cfg.WarmupInstr}
		if cfg.L1Lines > 0 {
			arr := cache.NewSetAssoc(cfg.L1Lines, cfg.L1Ways, false, 0)
			cs.l1 = ctrl.NewUnpartitioned(arr, repl.NewLRUTimestamp(cfg.L1Lines), 1)
		}
		cores[i] = cs
	}

	var res Result
	cont := newContentionState(cfg.Contention)
	nextRepart := cfg.RepartitionCycles
	remaining := n
	for remaining > 0 {
		// Step the core with the lowest local clock (the global low-water
		// mark), so shared-cache accesses interleave in time order. Frozen
		// cores keep running so the cache keeps seeing their traffic.
		var c *coreState
		ci := -1
		for i, cand := range cores {
			if c == nil || cand.cycle < c.cycle {
				c, ci = cand, i
			}
		}

		// Repartition when global time crosses the boundary.
		if cfg.Alloc != nil && cfg.RepartitionCycles > 0 && c.cycle >= nextRepart {
			targets := cfg.Alloc.Allocate(cfg.PartitionableLines)
			cfg.L2.SetTargets(targets)
			if chooser, ok := cfg.Alloc.(PolicyChooser); ok {
				if setter, ok2 := cfg.L2.(InsertionPolicySetter); ok2 {
					for p, brrip := range chooser.InsertionPolicies() {
						setter.SetInsertionPolicy(p, brrip)
					}
				}
			}
			res.Repartitions++
			if cfg.OnRepartition != nil {
				actual := make([]int, cfg.L2.NumPartitions())
				for p := range actual {
					actual[p] = cfg.L2.Size(p)
				}
				cfg.OnRepartition(c.cycle, targets, actual)
			}
			nextRepart += cfg.RepartitionCycles
		}

		gap, addr := c.app.Next()
		addr = uint64(ci+1)<<40 | addr // disjoint address spaces
		lat, l1Miss, l2Hit, l2Acc := access(cfg, cores[ci], addr, ci)
		if l2Acc {
			now := c.cycle + uint64(gap)
			lat += int(cont.l2Delay(addr, now))
			if !l2Hit {
				lat += int(cont.memDelay(now))
			}
		}

		measuring := c.warmLeft == 0 && !c.frozen
		steps := uint64(gap) + 1
		c.cycle += uint64(gap) + uint64(lat)
		if measuring {
			c.stats.L1Accesses++
			if l1Miss {
				c.stats.L1Misses++
			}
			if l2Acc {
				c.stats.L2Accesses++
				if !l2Hit {
					c.stats.L2Misses++
				}
			}
			c.instrs += steps
			if c.instrs >= cfg.InstrLimit {
				c.frozen = true
				c.doneCycle = c.cycle
				c.stats.Instructions = c.instrs
				c.stats.Cycles = c.cycle - c.startCycle
				remaining--
			}
		} else if c.warmLeft > 0 {
			if c.warmLeft > steps {
				c.warmLeft -= steps
			} else {
				c.warmLeft = 0
				c.startCycle = c.cycle
			}
		}
	}

	res.Cores = make([]CoreStats, n)
	for i, c := range cores {
		s := c.stats
		if s.Cycles > 0 {
			s.IPC = float64(s.Instructions) / float64(s.Cycles)
		}
		if s.Instructions > 0 {
			s.L2MPKI = float64(s.L2Misses) / float64(s.Instructions) * 1000
		}
		res.Cores[i] = s
		res.Throughput += s.IPC
		if c.doneCycle > res.WeightedCycles {
			res.WeightedCycles = c.doneCycle
		}
	}
	return res
}

// access performs one memory reference through the hierarchy and returns
// its latency plus what happened at each level.
func access(cfg Config, c *coreState, addr uint64, core int) (lat int, l1Miss, l2Hit, l2Acc bool) {
	if c.l1 != nil {
		if r := c.l1.Access(addr, 0); r.Hit {
			return cfg.Lat.L1Hit, false, false, false
		}
		l1Miss = true
	} else {
		l1Miss = true
	}
	// L2 access; feed the UMON with the post-L1 stream.
	if cfg.Alloc != nil {
		cfg.Alloc.Access(core, addr)
	}
	l2Acc = true
	r := cfg.L2.Access(addr, core)
	if r.Hit {
		return cfg.Lat.L2Hit, l1Miss, true, l2Acc
	}
	return cfg.Lat.L2Hit + cfg.Lat.Memory, l1Miss, false, l2Acc
}

// String formats a result compactly.
func (r Result) String() string {
	return fmt.Sprintf("throughput=%.3f cores=%d repartitions=%d", r.Throughput, len(r.Cores), r.Repartitions)
}
