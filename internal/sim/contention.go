package sim

// Contention models the queuing effects Table 2 implies but the base
// simulator idealizes: the L2 is banked (4 banks in the paper) and memory
// has finite bandwidth (32 GB/s peak at 2 GHz = 16 bytes/cycle, i.e. one
// 64-byte line every 4 cycles). Both are modeled as next-free-time servers:
// a request arriving before its server is free waits for it, adding queuing
// delay on top of the zero-load latency.
//
// Contention is optional (zero value disables it) because the paper reports
// zero-load latencies; EXPERIMENTS.md notes the effect of enabling it.
type Contention struct {
	// L2Banks is the number of L2 banks (paper: 4); 0 disables bank
	// conflict modeling. Banks are selected by address hash.
	L2Banks int
	// L2BankBusy is the bank occupancy per access, in cycles (how long a
	// bank stays busy serving one request; paper's 8-cycle bank latency
	// pipelined down to a few cycles — default 2 when banks are enabled).
	L2BankBusy int
	// MemCyclesPerLine is the inverse memory bandwidth: cycles between
	// line transfers at peak (paper: 64 B / 16 B-per-cycle = 4); 0 disables
	// bandwidth modeling.
	MemCyclesPerLine int
}

// contentionState tracks the servers' next-free times.
type contentionState struct {
	cfg      Contention
	bankFree []uint64
	memFree  uint64
}

func newContentionState(cfg Contention) *contentionState {
	if cfg.L2Banks < 0 || cfg.L2BankBusy < 0 || cfg.MemCyclesPerLine < 0 {
		panic("sim: negative contention parameters")
	}
	s := &contentionState{cfg: cfg}
	if cfg.L2Banks > 0 {
		s.bankFree = make([]uint64, cfg.L2Banks)
		if s.cfg.L2BankBusy == 0 {
			s.cfg.L2BankBusy = 2
		}
	}
	return s
}

// l2Delay returns the queuing delay for an L2 access to addr at time now
// and reserves the bank.
func (s *contentionState) l2Delay(addr, now uint64) uint64 {
	if s == nil || s.cfg.L2Banks == 0 {
		return 0
	}
	b := int(addr>>6) % s.cfg.L2Banks // consecutive lines interleave across banks
	wait := uint64(0)
	if s.bankFree[b] > now {
		wait = s.bankFree[b] - now
	}
	s.bankFree[b] = now + wait + uint64(s.cfg.L2BankBusy)
	return wait
}

// memDelay returns the queuing delay for a memory line fetch issued at time
// now and reserves the channel.
func (s *contentionState) memDelay(now uint64) uint64 {
	if s == nil || s.cfg.MemCyclesPerLine == 0 {
		return 0
	}
	wait := uint64(0)
	if s.memFree > now {
		wait = s.memFree - now
	}
	s.memFree = now + wait + uint64(s.cfg.MemCyclesPerLine)
	return wait
}
