package sim

import "fmt"

// The simulator's private L1s are always the same structure: an unhashed
// set-associative array with coarse-timestamp LRU and a single partition
// (ctrl.Unpartitioned over cache.NewSetAssoc(lines, ways, false, 0) with
// repl.NewLRUTimestamp(lines)). The generic stack pays for that flexibility
// on every reference — interface dispatch into the controller, a candidate
// slice walk, per-line partition bookkeeping nobody reads. l1Cache is the
// same cache flattened into one struct: set index from the low address bits,
// way-order lookup, first-invalid fill, oldest-timestamp victim, one
// timestamp tick per access. Every decision is bit-identical to the generic
// stack's (the golden determinism tests in internal/exp lock this down).
type l1Line struct {
	addr  uint64
	ts    uint8
	valid bool
}

type l1Cache struct {
	lines   []l1Line
	setMask uint64
	ways    int
	// Coarse-timestamp LRU state, exactly repl.LRUTimestamp's: an 8-bit
	// global timestamp incremented every numLines/16 accesses; ages compare
	// in modulo-256 arithmetic.
	current  uint8
	accesses int
	period   int
}

// newL1Cache returns a private-L1 model with numLines lines and the given
// associativity, with the same geometry constraints as cache.NewSetAssoc.
func newL1Cache(numLines, ways int) *l1Cache {
	if ways <= 0 || numLines <= 0 || numLines%ways != 0 {
		panic(fmt.Sprintf("sim: invalid L1 geometry: %d lines, %d ways", numLines, ways))
	}
	sets := numLines / ways
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("sim: L1 set count %d is not a power of two", sets))
	}
	period := numLines / 16
	if period < 1 {
		period = 1
	}
	return &l1Cache{
		lines:   make([]l1Line, numLines),
		setMask: uint64(sets - 1),
		ways:    ways,
		period:  period,
	}
}

// access performs one L1 reference and reports whether it hit.
func (c *l1Cache) access(addr uint64) bool {
	base := int(addr&c.setMask) * c.ways
	set := c.lines[base : base+c.ways]
	for w := range set {
		l := &set[w]
		if l.valid && l.addr == addr {
			l.ts = c.current
			c.tick()
			return true
		}
	}
	// Miss: fill the first invalid way; otherwise evict the oldest line,
	// ties to the lowest way (strict greater-than keeps the first maximum,
	// matching repl.LRUTimestamp.Victim over way-ordered candidates).
	victim := -1
	for w := range set {
		if !set[w].valid {
			victim = w
			break
		}
	}
	if victim < 0 {
		victim = 0
		bestAge := c.current - set[0].ts
		for w := 1; w < len(set); w++ {
			if age := c.current - set[w].ts; age > bestAge {
				victim, bestAge = w, age
			}
		}
	}
	set[victim] = l1Line{addr: addr, ts: c.current, valid: true}
	c.tick()
	return false
}

// tick advances the coarse timestamp: one tick per access (hit or insert),
// never on evictions, exactly like the generic policy.
func (c *l1Cache) tick() {
	c.accesses++
	if c.accesses >= c.period {
		c.accesses = 0
		c.current++
	}
}
