// Package repl implements the replacement policies used by the paper:
// coarse-timestamp LRU (the base policy for Vantage and the unpartitioned
// baselines, per the zcache paper), true LRU (for UMON monitors and
// reference), and the RRIP family — SRRIP, BRRIP, DRRIP, and thread-aware
// TA-DRRIP — evaluated in §6.2 / Fig 11.
//
// A Policy ranks lines; it does not decide partitioning. Partitioning
// schemes call Victim with the candidate subset they allow (e.g.
// way-partitioning passes only the ways owned by the inserting partition).
// Policies keep per-line state in slices indexed by cache.LineID and must be
// informed of zcache relocations via OnMove.
package repl

import (
	"vantage/internal/cache"
	"vantage/internal/hash"
)

// Policy is a replacement policy over a fixed-size line store.
type Policy interface {
	// Name returns a short identifier, e.g. "LRU" or "DRRIP".
	Name() string
	// OnHit updates state when line id hits. part is the partition (thread)
	// performing the access; policies that are not thread-aware ignore it.
	OnHit(id cache.LineID, part int)
	// OnInsert updates state when addr is installed into id by part.
	OnInsert(id cache.LineID, addr uint64, part int)
	// OnMiss is called once per miss (before the insert) with the address;
	// set-dueling policies use it to update their selector counters.
	OnMiss(addr uint64, part int)
	// OnEvict clears state when line id is evicted or invalidated.
	OnEvict(id cache.LineID)
	// OnMove transfers state from slot src to dst (zcache relocation).
	OnMove(src, dst cache.LineID)
	// Victim returns the best eviction victim among cands, all of which must
	// hold valid lines. It may mutate aging state (RRIP does).
	Victim(cands []cache.LineID) cache.LineID
}

// ---------------------------------------------------------------------------
// Coarse-timestamp LRU
// ---------------------------------------------------------------------------

// LRUTimestamp is the coarse-grained 8-bit timestamp LRU of the zcache paper:
// a global current timestamp is incremented every numLines/16 accesses, and
// accessed lines are tagged with it. Age is computed in modulo-256
// arithmetic. This is the base replacement policy Vantage assumes (§4.2),
// here in its unpartitioned form for baseline caches.
type LRUTimestamp struct {
	ts       []uint8
	current  uint8
	accesses int
	period   int
}

// NewLRUTimestamp returns a coarse-timestamp LRU policy for a cache with
// numLines lines.
func NewLRUTimestamp(numLines int) *LRUTimestamp {
	period := numLines / 16
	if period < 1 {
		period = 1
	}
	return &LRUTimestamp{ts: make([]uint8, numLines), period: period}
}

// Name implements Policy.
func (p *LRUTimestamp) Name() string { return "LRU" }

func (p *LRUTimestamp) tick() {
	p.accesses++
	if p.accesses >= p.period {
		p.accesses = 0
		p.current++
	}
}

// OnHit implements Policy.
func (p *LRUTimestamp) OnHit(id cache.LineID, part int) {
	p.ts[id] = p.current
	p.tick()
}

// OnInsert implements Policy.
func (p *LRUTimestamp) OnInsert(id cache.LineID, addr uint64, part int) {
	p.ts[id] = p.current
	p.tick()
}

// OnMiss implements Policy.
func (p *LRUTimestamp) OnMiss(addr uint64, part int) {}

// OnEvict implements Policy.
func (p *LRUTimestamp) OnEvict(id cache.LineID) { p.ts[id] = p.current }

// OnMove implements Policy.
func (p *LRUTimestamp) OnMove(src, dst cache.LineID) { p.ts[dst] = p.ts[src] }

// Age returns the age of line id in timestamp units (0 = most recent).
func (p *LRUTimestamp) Age(id cache.LineID) uint8 { return p.current - p.ts[id] }

// Victim implements Policy: the candidate with the oldest timestamp.
func (p *LRUTimestamp) Victim(cands []cache.LineID) cache.LineID {
	best := cands[0]
	bestAge := p.Age(best)
	for _, c := range cands[1:] {
		if a := p.Age(c); a > bestAge {
			best, bestAge = c, a
		}
	}
	return best
}

// ---------------------------------------------------------------------------
// True LRU
// ---------------------------------------------------------------------------

// TrueLRU keeps an exact 64-bit access counter per line. It is too expensive
// for real hardware but useful as a reference and for small structures.
type TrueLRU struct {
	ts    []uint64
	clock uint64
}

// NewTrueLRU returns an exact LRU policy for numLines lines.
func NewTrueLRU(numLines int) *TrueLRU {
	return &TrueLRU{ts: make([]uint64, numLines)}
}

// Name implements Policy.
func (p *TrueLRU) Name() string { return "TrueLRU" }

// OnHit implements Policy.
func (p *TrueLRU) OnHit(id cache.LineID, part int) {
	p.clock++
	p.ts[id] = p.clock
}

// OnInsert implements Policy.
func (p *TrueLRU) OnInsert(id cache.LineID, addr uint64, part int) {
	p.clock++
	p.ts[id] = p.clock
}

// OnMiss implements Policy.
func (p *TrueLRU) OnMiss(addr uint64, part int) {}

// OnEvict implements Policy.
func (p *TrueLRU) OnEvict(id cache.LineID) { p.ts[id] = 0 }

// OnMove implements Policy.
func (p *TrueLRU) OnMove(src, dst cache.LineID) { p.ts[dst] = p.ts[src] }

// Victim implements Policy: the least recently used candidate.
func (p *TrueLRU) Victim(cands []cache.LineID) cache.LineID {
	best := cands[0]
	for _, c := range cands[1:] {
		if p.ts[c] < p.ts[best] {
			best = c
		}
	}
	return best
}

// ---------------------------------------------------------------------------
// RRIP family
// ---------------------------------------------------------------------------

// RRPV constants for the 3-bit re-reference prediction values used in the
// paper's Fig 11 experiments (M = 3 bits).
const (
	rrpvBits     = 3
	rrpvMax      = 1<<rrpvBits - 1 // 7: predicted distant re-reference
	rrpvLong     = rrpvMax - 1     // 6: predicted long re-reference (SRRIP insert)
	brripEpsilon = 32              // BRRIP inserts with rrpvLong 1/32 of the time
)

// rripMode selects the insertion behavior of an RRIP policy instance.
type rripMode int

const (
	modeSRRIP rripMode = iota // always insert at rrpvLong
	modeBRRIP                 // insert at rrpvMax, rrpvLong with prob 1/32
	modeDRRIP                 // set dueling chooses between the two
)

// RRIP implements SRRIP/BRRIP/DRRIP (Jaleel et al., ISCA 2010) and, with
// perThread selectors, TA-DRRIP (thread-aware set dueling, [11]). The
// policies do not require set ordering, so they apply directly to zcaches
// and skew-associative caches (paper §6.2); dueling "leader sets" are chosen
// by hashing the address.
type RRIP struct {
	rrpv      []uint8
	mode      rripMode
	name      string
	rng       *hash.Rand
	perThread bool
	// Set-dueling state (DRRIP/TA-DRRIP). psel > 0 favors SRRIP.
	psel     []int16
	pselMax  int16
	duelMask uint64
	duelH    *hash.H3
}

// NewSRRIP returns a scan-resistant static RRIP policy.
func NewSRRIP(numLines int) *RRIP {
	return &RRIP{rrpv: newRRPV(numLines), mode: modeSRRIP, name: "SRRIP"}
}

// NewBRRIP returns a thrash-resistant bimodal RRIP policy.
func NewBRRIP(numLines int, seed uint64) *RRIP {
	return &RRIP{rrpv: newRRPV(numLines), mode: modeBRRIP, name: "BRRIP", rng: hash.NewRand(seed)}
}

// NewDRRIP returns a dynamic RRIP policy that chooses between SRRIP and
// BRRIP with set dueling over hashed leader buckets.
func NewDRRIP(numLines int, seed uint64) *RRIP {
	return &RRIP{
		rrpv:     newRRPV(numLines),
		mode:     modeDRRIP,
		name:     "DRRIP",
		rng:      hash.NewRand(seed),
		psel:     make([]int16, 1),
		pselMax:  512,
		duelMask: 63,
		duelH:    hash.NewH3(16, hash.Mix64(seed^0xd0e1)),
	}
}

// NewTADRRIP returns a thread-aware DRRIP: each of numThreads threads duels
// independently and uses its own winning insertion policy.
func NewTADRRIP(numLines, numThreads int, seed uint64) *RRIP {
	p := NewDRRIP(numLines, seed)
	p.name = "TA-DRRIP"
	p.perThread = true
	p.psel = make([]int16, numThreads)
	return p
}

func newRRPV(numLines int) []uint8 {
	r := make([]uint8, numLines)
	for i := range r {
		r[i] = rrpvMax
	}
	return r
}

// Name implements Policy.
func (p *RRIP) Name() string { return p.name }

// OnHit implements Policy: hit promotion to RRPV 0 (HP policy).
func (p *RRIP) OnHit(id cache.LineID, part int) { p.rrpv[id] = 0 }

// selector returns the dueling selector index for thread part.
func (p *RRIP) selector(part int) int {
	if !p.perThread {
		return 0
	}
	if part < 0 || part >= len(p.psel) {
		return 0
	}
	return part
}

// duelBucket classifies addr: 0 = SRRIP leader, 1 = BRRIP leader, else
// follower.
func (p *RRIP) duelBucket(addr uint64) uint64 {
	return p.duelH.Hash(addr) & p.duelMask
}

// OnMiss implements Policy: misses in leader buckets move the selector
// against that bucket's policy (a miss is a vote for the other policy).
func (p *RRIP) OnMiss(addr uint64, part int) {
	if p.mode != modeDRRIP {
		return
	}
	s := p.selector(part)
	switch p.duelBucket(addr) {
	case 0: // SRRIP leader missed: vote for BRRIP
		if p.psel[s] > -p.pselMax {
			p.psel[s]--
		}
	case 1: // BRRIP leader missed: vote for SRRIP
		if p.psel[s] < p.pselMax {
			p.psel[s]++
		}
	}
}

// insertBRRIP reports whether the insertion for (addr, part) should use the
// bimodal (BRRIP) pattern.
func (p *RRIP) insertBRRIP(addr uint64, part int) bool {
	switch p.mode {
	case modeSRRIP:
		return false
	case modeBRRIP:
		return true
	default: // DRRIP: leaders play their own policy; followers follow psel
		switch p.duelBucket(addr) {
		case 0:
			return false
		case 1:
			return true
		}
		return p.psel[p.selector(part)] < 0
	}
}

// OnInsert implements Policy.
func (p *RRIP) OnInsert(id cache.LineID, addr uint64, part int) {
	if p.insertBRRIP(addr, part) {
		// Bimodal: distant prediction nearly always.
		if p.rng.Intn(brripEpsilon) == 0 {
			p.rrpv[id] = rrpvLong
		} else {
			p.rrpv[id] = rrpvMax
		}
		return
	}
	p.rrpv[id] = rrpvLong
}

// OnEvict implements Policy.
func (p *RRIP) OnEvict(id cache.LineID) { p.rrpv[id] = rrpvMax }

// OnMove implements Policy.
func (p *RRIP) OnMove(src, dst cache.LineID) { p.rrpv[dst] = p.rrpv[src] }

// RRPV exposes the current prediction value of a line (used by UMON-RRIP).
func (p *RRIP) RRPV(id cache.LineID) uint8 { return p.rrpv[id] }

// Victim implements Policy: pick a candidate with RRPV == max, aging all
// candidates if none has it (the aging that would walk a set in hardware is
// applied to the candidate pool, the natural generalization for candidate-
// based arrays).
func (p *RRIP) Victim(cands []cache.LineID) cache.LineID {
	maxv := uint8(0)
	best := cands[0]
	for _, c := range cands {
		if p.rrpv[c] > maxv {
			maxv = p.rrpv[c]
			best = c
		}
	}
	if maxv < rrpvMax {
		delta := uint8(rrpvMax) - maxv
		for _, c := range cands {
			p.rrpv[c] += delta
		}
	}
	return best
}
