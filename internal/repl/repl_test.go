package repl

import (
	"testing"

	"vantage/internal/cache"
)

func ids(xs ...int) []cache.LineID {
	out := make([]cache.LineID, len(xs))
	for i, x := range xs {
		out[i] = cache.LineID(x)
	}
	return out
}

func TestLRUTimestampVictimIsOldest(t *testing.T) {
	p := NewLRUTimestamp(16) // period = 1: every access bumps the clock
	for i := 0; i < 8; i++ {
		p.OnInsert(cache.LineID(i), uint64(i), 0)
	}
	if got := p.Victim(ids(0, 1, 2, 3, 4, 5, 6, 7)); got != 0 {
		t.Fatalf("victim = %d, want 0 (oldest)", got)
	}
	p.OnHit(0, 0) // refresh line 0
	if got := p.Victim(ids(0, 1, 2, 3)); got != 1 {
		t.Fatalf("victim after refresh = %d, want 1", got)
	}
}

func TestLRUTimestampModuloAge(t *testing.T) {
	p := NewLRUTimestamp(16)
	p.OnInsert(0, 0, 0)
	// Advance the clock close to a wraparound.
	for i := 0; i < 250; i++ {
		p.OnHit(1, 0)
	}
	// The insert itself also ticked the clock once, so age is 251.
	if a := p.Age(0); a != 251 {
		t.Fatalf("age = %d, want 251", a)
	}
	for i := 0; i < 10; i++ {
		p.OnHit(1, 0)
	}
	// 261 mod 256 = 5: coarse timestamps wrap, which the paper tolerates by
	// making wraparounds rare (ki = size/16).
	if a := p.Age(0); a != 5 {
		t.Fatalf("age after wrap = %d, want 5", a)
	}
}

func TestLRUTimestampPeriod(t *testing.T) {
	p := NewLRUTimestamp(160) // period = 10
	p.OnInsert(0, 0, 0)
	for i := 0; i < 9; i++ {
		p.OnHit(1, 0)
	}
	if p.Age(0) != 1 {
		t.Fatalf("age = %d, want 1 after 10 accesses with period 10", p.Age(0))
	}
}

func TestLRUTimestampMovePreservesAge(t *testing.T) {
	p := NewLRUTimestamp(16)
	p.OnInsert(3, 0, 0)
	for i := 0; i < 5; i++ {
		p.OnHit(1, 0)
	}
	age := p.Age(3)
	p.OnMove(3, 9)
	if p.Age(9) != age {
		t.Fatalf("age after move = %d, want %d", p.Age(9), age)
	}
}

func TestTrueLRUExactOrder(t *testing.T) {
	p := NewTrueLRU(8)
	for i := 0; i < 8; i++ {
		p.OnInsert(cache.LineID(i), uint64(i), 0)
	}
	p.OnHit(0, 0)
	p.OnHit(1, 0)
	// LRU order is now 2,3,...,7,0,1.
	if got := p.Victim(ids(0, 1, 2, 3, 4, 5, 6, 7)); got != 2 {
		t.Fatalf("victim = %d, want 2", got)
	}
}

func TestSRRIPInsertLongHitZero(t *testing.T) {
	p := NewSRRIP(8)
	p.OnInsert(0, 100, 0)
	if p.RRPV(0) != rrpvLong {
		t.Fatalf("insert RRPV = %d, want %d", p.RRPV(0), rrpvLong)
	}
	p.OnHit(0, 0)
	if p.RRPV(0) != 0 {
		t.Fatalf("hit RRPV = %d, want 0", p.RRPV(0))
	}
}

func TestSRRIPVictimAging(t *testing.T) {
	p := NewSRRIP(8)
	for i := 0; i < 4; i++ {
		p.OnInsert(cache.LineID(i), uint64(i), 0)
	}
	p.OnHit(2, 0) // RRPV 0
	v := p.Victim(ids(0, 1, 2, 3))
	if v == 2 {
		t.Fatal("victimized the just-hit line")
	}
	// All candidates aged so the max reached rrpvMax.
	if p.RRPV(v) != rrpvMax {
		t.Fatalf("victim RRPV = %d, want %d", p.RRPV(v), rrpvMax)
	}
	// Line 2 was aged by the same delta (7-6=1): now 1.
	if p.RRPV(2) != 1 {
		t.Fatalf("hit line RRPV after aging = %d, want 1", p.RRPV(2))
	}
}

func TestBRRIPMostlyDistant(t *testing.T) {
	p := NewBRRIP(4096, 7)
	distant := 0
	for i := 0; i < 4096; i++ {
		p.OnInsert(cache.LineID(i), uint64(i), 0)
		if p.RRPV(cache.LineID(i)) == rrpvMax {
			distant++
		}
	}
	// Expect ~ 4096 * 31/32 = 3968 distant insertions.
	if distant < 3800 || distant > 4090 {
		t.Fatalf("distant insertions = %d/4096, want ~3968", distant)
	}
}

func TestDRRIPDuelingConverges(t *testing.T) {
	p := NewDRRIP(1024, 3)
	// Make only BRRIP-leader buckets miss: selector should move towards
	// SRRIP (psel > 0).
	var brripLeader []uint64
	for a := uint64(0); len(brripLeader) < 600; a++ {
		if p.duelBucket(a) == 1 {
			brripLeader = append(brripLeader, a)
		}
	}
	for _, a := range brripLeader {
		p.OnMiss(a, 0)
	}
	if p.psel[0] <= 0 {
		t.Fatalf("psel = %d, want > 0 after BRRIP-leader misses", p.psel[0])
	}
	// Followers should now insert SRRIP-style.
	var follower uint64
	for a := uint64(0); ; a++ {
		if b := p.duelBucket(a); b != 0 && b != 1 {
			follower = a
			break
		}
	}
	p.OnInsert(0, follower, 0)
	if p.RRPV(0) != rrpvLong {
		t.Fatalf("follower insert RRPV = %d, want %d (SRRIP)", p.RRPV(0), rrpvLong)
	}
}

func TestDRRIPPselSaturates(t *testing.T) {
	p := NewDRRIP(64, 3)
	var srripLeader uint64
	for a := uint64(0); ; a++ {
		if p.duelBucket(a) == 0 {
			srripLeader = a
			break
		}
	}
	for i := 0; i < 10000; i++ {
		p.OnMiss(srripLeader, 0)
	}
	if p.psel[0] != -p.pselMax {
		t.Fatalf("psel = %d, want saturated at %d", p.psel[0], -p.pselMax)
	}
}

func TestTADRRIPPerThreadSelectors(t *testing.T) {
	p := NewTADRRIP(1024, 4, 9)
	var srripLeader, brripLeader uint64
	haveS, haveB := false, false
	for a := uint64(0); !haveS || !haveB; a++ {
		switch p.duelBucket(a) {
		case 0:
			if !haveS {
				srripLeader, haveS = a, true
			}
		case 1:
			if !haveB {
				brripLeader, haveB = a, true
			}
		}
	}
	// Thread 0 misses on SRRIP leaders (→ BRRIP), thread 1 on BRRIP leaders.
	for i := 0; i < 100; i++ {
		p.OnMiss(srripLeader, 0)
		p.OnMiss(brripLeader, 1)
	}
	if p.psel[0] >= 0 {
		t.Fatalf("thread 0 psel = %d, want < 0", p.psel[0])
	}
	if p.psel[1] <= 0 {
		t.Fatalf("thread 1 psel = %d, want > 0", p.psel[1])
	}
	if p.psel[2] != 0 || p.psel[3] != 0 {
		t.Fatal("uninvolved threads' selectors moved")
	}
}

func TestRRIPEvictResets(t *testing.T) {
	p := NewSRRIP(8)
	p.OnInsert(0, 1, 0)
	p.OnHit(0, 0)
	p.OnEvict(0)
	if p.RRPV(0) != rrpvMax {
		t.Fatalf("RRPV after evict = %d, want %d", p.RRPV(0), rrpvMax)
	}
}

func TestRRIPMove(t *testing.T) {
	p := NewSRRIP(8)
	p.OnInsert(0, 1, 0)
	p.OnHit(0, 0)
	p.OnMove(0, 5)
	if p.RRPV(5) != 0 {
		t.Fatalf("RRPV after move = %d, want 0", p.RRPV(5))
	}
}

func TestPolicyNames(t *testing.T) {
	if NewLRUTimestamp(8).Name() != "LRU" ||
		NewTrueLRU(8).Name() != "TrueLRU" ||
		NewSRRIP(8).Name() != "SRRIP" ||
		NewBRRIP(8, 1).Name() != "BRRIP" ||
		NewDRRIP(8, 1).Name() != "DRRIP" ||
		NewTADRRIP(8, 2, 1).Name() != "TA-DRRIP" {
		t.Fatal("policy names wrong")
	}
}
