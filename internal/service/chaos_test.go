package service

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vantage/internal/hash"
)

// The chaos test drives the whole hardened serving stack at once: N client
// goroutines issue mixed GET/PUT/DEL/MGET traffic over real TCP while the
// fault injector drops connections, delays operations, and fails them with
// errors, tenants are concurrently added and removed, in-flight limits shed
// requests, and the background loop repartitions. It asserts the
// degrade-don't-collapse contract end to end:
//
//   - no deadlock or hang (the test completes under a watchdog),
//   - no pooled-buffer reuse-after-free: every PUT value is a deterministic
//     function of (tenant, key), so any cross-connection buffer aliasing in
//     the pooled connState/reader/writer path surfaces as a GET returning
//     bytes that fail the poison check,
//   - accounting stays consistent with observed replies: the server-side
//     per-tenant gets/hits/puts counters must equal the replies the clients
//     actually received, and sheds must equal the ERR SHED replies seen.

// chaosValue is the poison check: the value stored under (tenant, key) is
// deterministic, so corruption from buffer reuse is detectable on any hit.
func chaosValue(tenant, key string) string {
	return tenant + "/" + key + "/" + strconv.FormatUint(hash.Mix64(uint64(len(tenant)+len(key))), 36) + "/payload"
}

// chaosCounts are the per-tenant client-observed reply counts.
type chaosCounts struct {
	gets, hits, puts        atomic.Uint64
	shed, injected, dropped atomic.Uint64 // dropped = connections lost and redialed
}

var errChaosReconnect = errors.New("connection dropped")

// chaosClient is a blocking protocol client whose methods classify overload
// and fault replies instead of failing.
type chaosClient struct {
	conn net.Conn
	r    *bufio.Reader
}

func dialChaos(addr, tenant string) (*chaosClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	conn.SetDeadline(time.Now().Add(20 * time.Second))
	c := &chaosClient{conn: conn, r: bufio.NewReader(conn)}
	if _, err := io.WriteString(conn, "TENANT ADD "+tenant+"\r\n"); err != nil {
		conn.Close()
		return nil, err
	}
	resp, err := c.line()
	if err != nil || !strings.HasPrefix(resp, "OK") {
		conn.Close()
		return nil, fmt.Errorf("TENANT ADD: %q %v", resp, err)
	}
	return c, nil
}

func (c *chaosClient) line() (string, error) {
	resp, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(resp, "\r\n"), nil
}

// op runs one command line and classifies the reply. It returns the reply
// line for further inspection; "" with errChaosReconnect when the
// connection died (a drop fault or deadline).
func (c *chaosClient) op(cmd string, counts *chaosCounts) (string, error) {
	if _, err := io.WriteString(c.conn, cmd); err != nil {
		return "", errChaosReconnect
	}
	resp, err := c.line()
	if err != nil {
		return "", errChaosReconnect
	}
	switch {
	case strings.HasPrefix(resp, "ERR FAULT"):
		counts.injected.Add(1)
		return "", nil
	case strings.HasPrefix(resp, "ERR SHED"):
		counts.shed.Add(1)
		return "", nil
	}
	return resp, nil
}

// chaosWorker drives ops operations for tenant against addr, reconnecting
// on dropped connections, and verifies every hit against the poison value.
func chaosWorker(addr, tenant string, g, ops int, counts *chaosCounts) error {
	c, err := dialChaos(addr, tenant)
	if err != nil {
		return err
	}
	defer func() { c.conn.Close() }()
	rng := hash.NewRand(uint64(g)*977 + 13)
	reconnect := func() error {
		c.conn.Close()
		counts.dropped.Add(1)
		nc, err := dialChaos(addr, tenant)
		if err != nil {
			return err
		}
		c = nc
		return nil
	}
	for i := 0; i < ops; i++ {
		j := rng.Intn(200)
		key := "k" + strconv.Itoa(j)
		val := chaosValue(tenant, key)
		var err error
		switch r := rng.Intn(100); {
		case r < 55: // GET
			var resp string
			resp, err = c.op("GET "+tenant+" "+key+"\r\n", counts)
			if err == nil && resp != "" {
				if err2 := c.finishGet(resp, val, counts); err2 != nil {
					return err2
				}
			}
		case r < 80: // PUT
			var resp string
			resp, err = c.op(fmt.Sprintf("PUT %s %s %d\r\n%s\r\n", tenant, key, len(val), val), counts)
			if err == nil && resp != "" {
				if resp != "STORED" {
					return fmt.Errorf("PUT: %q", resp)
				}
				counts.puts.Add(1)
			}
		case r < 90: // DEL
			var resp string
			resp, err = c.op("DEL "+tenant+" "+key+"\r\n", counts)
			if err == nil && resp != "" && resp != "DELETED" && resp != "MISS" {
				return fmt.Errorf("DEL: %q", resp)
			}
		default: // MGET of 4 keys
			k1, k2, k3 := "k"+strconv.Itoa(rng.Intn(200)), "k"+strconv.Itoa(rng.Intn(200)), "k"+strconv.Itoa(rng.Intn(200))
			err = c.mget(tenant, []string{key, k1, k2, k3}, counts)
		}
		if err != nil {
			if err == errChaosReconnect {
				if err := reconnect(); err != nil {
					return err
				}
				continue
			}
			return err
		}
	}
	return nil
}

// finishGet consumes a GET reply whose first line is resp, verifying hits
// against the poison value.
func (c *chaosClient) finishGet(resp, want string, counts *chaosCounts) error {
	switch {
	case resp == "MISS":
		counts.gets.Add(1)
		return nil
	case strings.HasPrefix(resp, "VALUE "):
		n, err := strconv.Atoi(resp[len("VALUE "):])
		if err != nil || n < 0 {
			return fmt.Errorf("bad VALUE header %q", resp)
		}
		body := make([]byte, n+2)
		if _, err := io.ReadFull(c.r, body); err != nil {
			return errChaosReconnect
		}
		got := string(body[:n])
		if got != want {
			return fmt.Errorf("poison check failed: GET returned %q, want %q", got, want)
		}
		counts.gets.Add(1)
		counts.hits.Add(1)
		return nil
	default:
		return fmt.Errorf("GET: %q", resp)
	}
}

// mget issues one MGET and consumes its responses. A mid-batch ERR line
// aborts the batch (the hardened protocol's contract) and is classified
// like any other fault reply.
func (c *chaosClient) mget(tenant string, keys []string, counts *chaosCounts) error {
	cmd := "MGET " + tenant + " " + strconv.Itoa(len(keys)) + " " + strings.Join(keys, " ") + "\r\n"
	if _, err := io.WriteString(c.conn, cmd); err != nil {
		return errChaosReconnect
	}
	for i := 0; ; i++ {
		resp, err := c.line()
		if err != nil {
			return errChaosReconnect
		}
		switch {
		case resp == "END":
			if i != len(keys) {
				return fmt.Errorf("MGET: END after %d of %d responses", i, len(keys))
			}
			return nil
		case strings.HasPrefix(resp, "ERR FAULT"):
			counts.injected.Add(1)
			return nil // batch aborted; no END follows
		case strings.HasPrefix(resp, "ERR SHED"):
			counts.shed.Add(1)
			return nil
		case strings.HasPrefix(resp, "ERR"):
			return fmt.Errorf("MGET: %q", resp)
		default:
			if i >= len(keys) {
				return fmt.Errorf("MGET: response %q beyond %d keys", resp, len(keys))
			}
			if err := c.finishGet(resp, chaosValue(tenant, keys[i]), counts); err != nil {
				return err
			}
		}
	}
}

func TestChaosTorture(t *testing.T) {
	const (
		workers       = 8
		stableTenants = 4
	)
	ops := 1500
	if testing.Short() {
		ops = 300
	}

	svc := newTestService(t, Config{
		Shards: 2, LinesPerShard: 1024, MaxTenants: 8,
		RepartitionInterval: 2 * time.Millisecond, Seed: 1234,
	})
	plan := &FaultPlan{
		Seed:      99,
		DropRate:  0.004,
		ErrRate:   0.02,
		DelayRate: 0.01,
		Delay:     200 * time.Microsecond,
	}
	svc.SetFaultInjector(plan)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeWith(svc, lis, ServerConfig{
		MaxInflight:       4,
		MaxTenantInflight: 2,
		InflightWait:      time.Millisecond,
		IdleTimeout:       5 * time.Second,
		ReadTimeout:       5 * time.Second,
		WriteTimeout:      5 * time.Second,
	})
	t.Cleanup(func() { srv.Close() })
	addr := srv.Addr().String()

	// Watchdog: the whole storm must finish; a deadlock anywhere (shard
	// locks, registry, in-flight semaphore, pipelined flush) trips it.
	watchdog := time.AfterFunc(2*time.Minute, func() {
		panic("chaos test deadlocked")
	})
	defer watchdog.Stop()

	counts := make([]chaosCounts, stableTenants)
	var workerWg sync.WaitGroup
	errs := make(chan error, workers+1)
	for g := 0; g < workers; g++ {
		workerWg.Add(1)
		go func(g int) {
			defer workerWg.Done()
			tenant := "s" + strconv.Itoa(g%stableTenants)
			if err := chaosWorker(addr, tenant, g, ops, &counts[g%stableTenants]); err != nil {
				errs <- fmt.Errorf("worker %d: %w", g, err)
			}
		}(g)
	}

	// Tenant churn concurrent with the data storm: the slot-reservation
	// protocol must keep churned slots from leaking state into anyone.
	churnStop := make(chan struct{})
	var churnWg sync.WaitGroup
	churnWg.Add(1)
	go func() {
		defer churnWg.Done()
		for i := 0; ; i++ {
			select {
			case <-churnStop:
				return
			default:
			}
			name := "c" + strconv.Itoa(i%2)
			if _, err := svc.AddTenant(name); err != nil {
				errs <- fmt.Errorf("churn add: %w", err)
				return
			}
			svc.Put(name, "k", []byte("churn"))
			if err := svc.RemoveTenant(name); err != nil {
				errs <- fmt.Errorf("churn remove: %w", err)
				return
			}
			// Throttle: every add/remove pair forces two full repartitions;
			// unpaced churn turns the test into a repartition benchmark and
			// starves the data path of shard locks.
			time.Sleep(2 * time.Millisecond)
		}
	}()

	workerWg.Wait()
	close(churnStop)
	churnWg.Wait()

	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		return
	}

	// Accounting: server-side per-tenant counters must equal the replies
	// the clients observed. (Shed and injected-error ops return before any
	// counter; dropped commands die before executing.)
	st := svc.Stats()
	var totalShed uint64
	for i := 0; i < stableTenants; i++ {
		name := "s" + strconv.Itoa(i)
		var ts *TenantStats
		for j := range st.Tenants {
			if st.Tenants[j].Name == name {
				ts = &st.Tenants[j]
			}
		}
		if ts == nil {
			t.Fatalf("tenant %s missing from stats", name)
		}
		c := &counts[i]
		if ts.Gets != c.gets.Load() {
			t.Errorf("%s: server gets %d != client-observed %d", name, ts.Gets, c.gets.Load())
		}
		if ts.Hits != c.hits.Load() {
			t.Errorf("%s: server hits %d != client-observed %d", name, ts.Hits, c.hits.Load())
		}
		if ts.Puts != c.puts.Load() {
			t.Errorf("%s: server puts %d != client-observed %d", name, ts.Puts, c.puts.Load())
		}
		if ts.Hits+ts.Misses != ts.Gets {
			t.Errorf("%s: hits %d + misses %d != gets %d", name, ts.Hits, ts.Misses, ts.Gets)
		}
		totalShed += c.shed.Load()
	}
	if st.RequestsShed != totalShed {
		t.Errorf("RequestsShed %d != client-observed sheds %d", st.RequestsShed, totalShed)
	}
	var injected, dropped uint64
	for i := range counts {
		injected += counts[i].injected.Load()
		dropped += counts[i].dropped.Load()
	}
	t.Logf("chaos: %d workers x %d ops: shed=%d injected=%d reconnects=%d repartitions=%d",
		workers, ops, totalShed, injected, dropped, st.Repartitions)
	if injected == 0 {
		t.Error("fault injector never fired an error — chaos did not exercise the fault path")
	}
}
