package service

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"vantage/internal/hash"
)

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc
}

func TestGetPutDelete(t *testing.T) {
	svc := newTestService(t, Config{Shards: 2, LinesPerShard: 512, MaxTenants: 4, Seed: 1})
	if _, err := svc.AddTenant("alice"); err != nil {
		t.Fatal(err)
	}

	if _, hit, err := svc.Get("alice", "k1"); err != nil || hit {
		t.Fatalf("cold GET: hit=%v err=%v", hit, err)
	}
	if err := svc.Put("alice", "k1", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	val, hit, err := svc.Get("alice", "k1")
	if err != nil || !hit || string(val) != "v1" {
		t.Fatalf("GET after PUT: val=%q hit=%v err=%v", val, hit, err)
	}

	// Overwrite.
	if err := svc.Put("alice", "k1", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if val, _, _ := svc.Get("alice", "k1"); string(val) != "v2" {
		t.Fatalf("overwrite lost: got %q", val)
	}

	// Delete removes the value.
	if present, _ := svc.Delete("alice", "k1"); !present {
		t.Fatal("DEL of present key reported absent")
	}
	if _, hit, _ := svc.Get("alice", "k1"); hit {
		t.Fatal("GET hit after DEL")
	}
	if present, _ := svc.Delete("alice", "k1"); present {
		t.Fatal("double DEL reported present")
	}

	// Unknown tenant errors.
	if _, _, err := svc.Get("bob", "k"); err == nil {
		t.Fatal("GET for unknown tenant succeeded")
	}
	if err := svc.Put("bob", "k", nil); err == nil {
		t.Fatal("PUT for unknown tenant succeeded")
	}
}

func TestTenantNamespacesAreDisjoint(t *testing.T) {
	svc := newTestService(t, Config{Shards: 1, LinesPerShard: 512, MaxTenants: 4, Seed: 2})
	svc.AddTenant("a")
	svc.AddTenant("b")
	svc.Put("a", "shared-key", []byte("from-a"))
	if _, hit, _ := svc.Get("b", "shared-key"); hit {
		t.Fatal("tenant b sees tenant a's key")
	}
	svc.Put("b", "shared-key", []byte("from-b"))
	if val, _, _ := svc.Get("a", "shared-key"); string(val) != "from-a" {
		t.Fatalf("tenant b's PUT clobbered tenant a's value: %q", val)
	}
}

func TestTenantLifecycle(t *testing.T) {
	svc := newTestService(t, Config{Shards: 1, LinesPerShard: 512, MaxTenants: 2, Seed: 3})

	p0, err := svc.AddTenant("t0")
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := svc.AddTenant("t0"); p != p0 {
		t.Fatalf("re-ADD moved tenant: %d != %d", p, p0)
	}
	if _, err := svc.AddTenant("t1"); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.AddTenant("t2"); err == nil {
		t.Fatal("exceeded MaxTenants without error")
	}
	for _, bad := range []string{"", "has space", "quo\"te", string([]byte{0x01}), "x123456789012345678901234567890123456789012345678901234567890123456789"} {
		if _, err := svc.AddTenant(bad); err == nil {
			t.Fatalf("invalid name %q accepted", bad)
		}
	}

	// Removal frees the slot and purges values.
	svc.Put("t0", "k", []byte("v"))
	if err := svc.RemoveTenant("t0"); err != nil {
		t.Fatal(err)
	}
	if err := svc.RemoveTenant("t0"); err == nil {
		t.Fatal("double remove succeeded")
	}
	p2, err := svc.AddTenant("t2")
	if err != nil {
		t.Fatal(err)
	}
	if p2 != p0 {
		t.Fatalf("freed slot not reused: got %d want %d", p2, p0)
	}
	if _, hit, _ := svc.Get("t2", "k"); hit {
		t.Fatal("slot successor sees predecessor's value")
	}
	st, err := svc.TenantStats("t2")
	if err != nil {
		t.Fatal(err)
	}
	if st.Puts != 0 || st.Hits != 0 {
		t.Fatalf("slot successor inherited counters: %+v", st)
	}
}

// TestConcurrentHammer is the service's concurrency test: N goroutines x M
// tenants hammer GET/PUT/DEL while the background loop repartitions, and
// every GET hit must return exactly the value most recently PUT for that
// key (each goroutine owns a disjoint key range, so a mismatch is a lost
// or corrupted update). Run under -race this also exercises the locking of
// the controller, monitors, store, and registry.
func TestConcurrentHammer(t *testing.T) {
	const (
		goroutines = 8
		tenants    = 4
		keysPerG   = 200
		opsPerG    = 4000
	)
	svc := newTestService(t, Config{
		Shards: 2, LinesPerShard: 1024, MaxTenants: tenants,
		RepartitionInterval: time.Millisecond, Seed: 4,
	})
	for i := 0; i < tenants; i++ {
		if _, err := svc.AddTenant(fmt.Sprintf("t%d", i)); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", g%tenants)
			rng := hash.NewRand(uint64(g + 1))
			type state struct {
				val     string
				present bool
			}
			last := make([]state, keysPerG)
			version := 0
			for i := 0; i < opsPerG; i++ {
				j := rng.Intn(keysPerG)
				key := fmt.Sprintf("g%d-k%d", g, j)
				switch op := rng.Intn(10); {
				case op < 5: // PUT
					version++
					v := fmt.Sprintf("g%d-k%d-v%d", g, j, version)
					if err := svc.Put(tenant, key, []byte(v)); err != nil {
						errs <- err
						return
					}
					last[j] = state{val: v, present: true}
				case op < 9: // GET
					val, hit, err := svc.Get(tenant, key)
					if err != nil {
						errs <- err
						return
					}
					if hit {
						if !last[j].present {
							errs <- fmt.Errorf("GET %s hit after DEL", key)
							return
						}
						if string(val) != last[j].val {
							errs <- fmt.Errorf("lost update on %s: got %q want %q", key, val, last[j].val)
							return
						}
					}
				default: // DEL
					if _, err := svc.Delete(tenant, key); err != nil {
						errs <- err
						return
					}
					last[j].present = false
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Accounting must be coherent after the storm.
	st := svc.Stats()
	var gets, hits, misses uint64
	occupancy := 0
	for _, ts := range st.Tenants {
		gets += ts.Gets
		hits += ts.Hits
		misses += ts.Misses
		occupancy += ts.OccupancyLines
	}
	if hits+misses != gets {
		t.Errorf("hits %d + misses %d != gets %d", hits, misses, gets)
	}
	if occupancy > st.TotalLines {
		t.Errorf("occupancy %d exceeds capacity %d", occupancy, st.TotalLines)
	}
	if st.StoreEntries > st.TotalLines {
		t.Errorf("store entries %d exceed capacity %d", st.StoreEntries, st.TotalLines)
	}
	if st.Repartitions == 0 {
		t.Error("background repartition loop never ran")
	}
}

// TestOccupancyConvergence checks the whole control loop end-to-end on live
// traffic: UCP must award the cache-friendly tenant a much larger target
// than the thrashing tenant, and the Vantage controllers must converge each
// tenant's actual occupancy to its target.
func TestOccupancyConvergence(t *testing.T) {
	svc := newTestService(t, Config{Shards: 2, LinesPerShard: 4096, MaxTenants: 8, Seed: 5})
	total := svc.TotalLines()
	svc.AddTenant("friendly")
	svc.AddTenant("stream")

	friendly := driver{svc: svc, tenant: "friendly", app: newZipfDriver(total, 6)}
	stream := driver{svc: svc, tenant: "stream", app: newStreamDriver(total, 7)}
	for round := 0; round < 12; round++ {
		for i := 0; i < 6000; i++ {
			friendly.stepT(t)
			stream.stepT(t)
		}
		svc.Repartition()
	}

	fr, _ := svc.TenantStats("friendly")
	st, _ := svc.TenantStats("stream")
	if fr.TargetLines < 3*st.TargetLines {
		t.Errorf("UCP did not favor the friendly tenant: friendly target %d, stream target %d",
			fr.TargetLines, st.TargetLines)
	}
	if dev := absInt(fr.OccupancyLines-fr.TargetLines) * 100 / max(fr.TargetLines, 1); dev > 35 {
		t.Errorf("friendly occupancy %d is %d%% off target %d", fr.OccupancyLines, dev, fr.TargetLines)
	}
	if fr.OccupancyLines+st.OccupancyLines > total {
		t.Errorf("occupancies %d+%d exceed capacity %d", fr.OccupancyLines, st.OccupancyLines, total)
	}
	if st.Demotions == 0 {
		t.Error("thrashing tenant was never demoted")
	}
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
