package service

import (
	"bufio"
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// Native Go fuzz targets for the memcached-style wire protocol. Two layers:
//
//   - FuzzParseRequest drives the parse+dispatch path directly (no sockets):
//     the input's first line is the command, the remainder is the payload
//     stream a PUT would consume. The hard invariant is "no panic, no
//     unbounded allocation"; a soft invariant checks that whatever the
//     dispatcher wrote is newline-terminated, since a partial line would
//     desync every later response on a real connection.
//
//   - FuzzServeConn feeds the raw byte stream to a live server over TCP and
//     drains the responses, with deadlines on both sides so a hang (server
//     neither replying nor closing after input EOF) fails the target rather
//     than wedging it.
//
//   - FuzzBinFrames is FuzzServeConn for the binary protocol: the harness
//     completes the negotiation, then the fuzzed bytes are the frame
//     stream. Framing violations must close, semantic errors must answer
//     ERR, and nothing may hang or panic — across the epoll and goroutine
//     transports alike (the seed corpus runs under both via the binNoPoll
//     seam in the unit tests; the fuzz target uses the default transport).
//
// Regression inputs for anything these find live under
// testdata/fuzz/<FuzzName>/ and run as ordinary test cases forever after.

func fuzzService(f *testing.F) *Service {
	f.Helper()
	svc, err := New(Config{Shards: 1, LinesPerShard: 256, MaxTenants: 4, Seed: 77})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { svc.Close() })
	if _, err := svc.AddTenant("t"); err != nil {
		f.Fatal(err)
	}
	svc.Put("t", "k", []byte("seed-value"))
	return svc
}

func FuzzParseRequest(f *testing.F) {
	svc := fuzzService(f)
	srv := &Server{svc: svc, conns: make(map[net.Conn]struct{})}

	for _, seed := range [][]byte{
		[]byte("GET t k\r\n"),
		[]byte("PUT t k 5\r\nhello\r\n"),
		[]byte("DEL t k\r\n"),
		[]byte("MGET t 3 k a b\r\n"),
		[]byte("PING\r\n"),
		[]byte("STATS\r\n"),
		[]byte("STATS t\r\n"),
		[]byte("TENANT ADD u\r\n"),
		[]byte("TENANT DEL u\r\n"),
		[]byte("TENANT LIST\r\n"),
		[]byte("QUIT\r\n"),
		[]byte("PUT t k 0\r\n\r\n"),
		[]byte("PUT t k 99999999999\r\n"),
		[]byte("MGET t 1024 k\r\n"),
		[]byte("get T K\n"),
		[]byte(" \t \r\n"),
		[]byte("PUT t " + string(bytes.Repeat([]byte("K"), 300)) + " 4\r\nxxxx\r\n"),
		// TTL grammar: the EXPIRE clause and the TOUCH/EXPIRE verb.
		[]byte("PUT t k 5 EXPIRE 100\r\nhello\r\n"),
		[]byte("PUT t k 5 EXPIRE 0\r\nhello\r\n"),
		[]byte("PUT t k 2 EXPIRE nope\r\nhi\r\n"), // malformed clause, payload must drain
		[]byte("PUT t k 2 EXPIRE -1\r\nhi\r\n"),
		[]byte("PUT t k 2 EXPIRE 99999999999999999999\r\nhi\r\n"),
		[]byte("PUT t k 2 EXPIRES 5\r\nhi\r\n"),             // wrong keyword
		[]byte("PUT t k 2 EXPIRE\r\nhi\r\nPING\r\n"),        // arity 5: usage error, payload must drain
		[]byte("PUT t k 2 EXPIRE 5 junk\r\nhi\r\nPING\r\n"), // arity 7: same
		[]byte("TOUCH t k 100\r\n"),
		[]byte("TOUCH t k 0\r\n"),
		[]byte("EXPIRE t k 100\r\n"),
		[]byte("TOUCH t k\r\n"),
		[]byte("TOUCH t k -5\r\n"),
		[]byte("EXPIRE t k 100 extra\r\n"),
	} {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReaderSize(bytes.NewReader(data), 1<<10)
		line, err := readLine(r)
		if err != nil {
			return
		}
		var out bytes.Buffer
		w := bufio.NewWriter(&out)
		cs := &connState{}
		srv.dispatch(nil, line, r, w, cs)
		w.Flush()
		if out.Len() > 0 && out.Bytes()[out.Len()-1] != '\n' {
			t.Fatalf("dispatch wrote a partial line: %q", out.Bytes())
		}
	})
}

func FuzzServeConn(f *testing.F) {
	svc := fuzzService(f)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		f.Fatal(err)
	}
	srv := ServeWith(svc, lis, ServerConfig{
		// Deadlines keep a stalled exec bounded and exercise the reaper
		// under fuzzed input; the client-side deadline below is longer, so
		// a hang is always attributed to the server.
		IdleTimeout:  2 * time.Second,
		ReadTimeout:  time.Second,
		WriteTimeout: time.Second,
	})
	f.Cleanup(func() { srv.Close() })
	addr := srv.Addr().String()

	for _, seed := range [][]byte{
		[]byte("PING\r\nGET t k\r\nQUIT\r\n"),
		[]byte("PUT t k 5\r\nhello\r\nGET t k\r\nDEL t k\r\n"),
		[]byte("MGET t 2 k nosuch\r\nSTATS\r\n"),
		[]byte("TENANT ADD u\r\nPUT u x 2\r\nhi\r\nTENANT DEL u\r\n"),
		[]byte("PUT t k 100\r\nshort"),                  // truncated payload
		[]byte("PUT t k 1048577\r\n"),                   // over the value cap
		[]byte("GET t\r\nFROB\r\n\r\nPING\r\n"),         // malformed run
		[]byte{0x00, 0xff, 0xfe, '\r', '\n', 'P', 'I'},  // binary garbage
		bytes.Repeat([]byte("MGET t 1 k\r\n"), 64),      // pipelined batch
		[]byte("PUT t k 10\r\nab\r\nGET t k\r\nxx\r\n"), // payload shorter than declared
	} {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip("oversized input")
		}
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Skip("dial failed") // transient resource exhaustion, not a finding
		}
		defer conn.Close()
		conn.SetDeadline(time.Now().Add(10 * time.Second))
		tc := conn.(*net.TCPConn)
		if _, err := tc.Write(data); err != nil {
			// The server may legitimately close mid-write (oversized PUT,
			// deadline); drain whatever it sent.
			io.Copy(io.Discard, conn)
			return
		}
		tc.CloseWrite()
		if _, err := io.Copy(io.Discard, conn); err != nil && isTimeout(err) {
			t.Fatalf("server hung on input %q", data)
		}
	})
}

func FuzzBinFrames(f *testing.F) {
	svc := fuzzService(f)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		f.Fatal(err)
	}
	srv := ServeWith(svc, lis, ServerConfig{
		IdleTimeout:  2 * time.Second,
		WriteTimeout: time.Second,
	})
	f.Cleanup(func() { srv.Close() })
	addr := srv.Addr().String()

	seeds := [][]byte{
		binFrame(binOpPing, 0, 1, 0, "", "", ""),
		binFrame(binOpTenantAdd, 0, 2, 0, "u", "", ""),
		binFrame(binOpPut, 0, 3, 0, "t", "k", "hello"),
		binFrame(binOpGet, 0, 4, 0, "t", "k", ""),
		binFrame(binOpDel, 0, 5, 0, "t", "k", ""),
		binFrame(binOpTouch, 0, 6, 250, "t", "k", ""),
		binFrame(binOpPut, binFlagTTL, 7, 100, "t", "k", "v"),
		binFrame(binOpGet, 0, 8, 0, "ghost", "k", ""),   // unknown tenant: ERR
		binFrame(binOpGet, 0, 9, 0, "t", "", ""),        // zero-length key: ERR
		binFrame(binOpGet, 0, 10, 0, "t", "k", "extra"), // value on a GET: ERR
		binFrame(99, 0, 11, 0, "", "", ""),              // unknown opcode: close
		{4, 0, 0, 0, 1, 0},                              // truncated frame
		{255, 255, 255, 255},                            // absurd length: close
		append(binFrame(binOpPing, 0, 12, 0, "", "", ""), binFrame(binOpPing, 0, 13, 0, "", "", "")...),
		// BMGET: valid multi-key, empty list (semantic ERR), truncated key
		// list and trailing bytes (framing: close), oversized count, and two
		// pipelined frames sharing an id.
		bmFrame(14, "t", "k", "nosuch"),
		bmFrame(15, "t"),
		bmFrameN(0, 16, 0, "t", 3, []string{"k"}, ""),
		bmFrameN(0, 17, 0, "t", 1, []string{"k"}, "junk"),
		bmFrameN(0, 18, 0, "t", maxBatchKeys+1, []string{"k"}, ""),
		bmFrameN(binFlagTTL, 19, 250, "t", 1, []string{"k"}, ""),
		append(bmFrame(20, "t", "k"), bmFrame(20, "t", "k", "k2")...),
	}
	for _, seed := range seeds {
		f.Add(seed)
	}

	preamble := []byte{binMagic, 'V', 'B', binVersion}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip("oversized input")
		}
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Skip("dial failed")
		}
		defer conn.Close()
		conn.SetDeadline(time.Now().Add(10 * time.Second))
		tc := conn.(*net.TCPConn)
		if _, err := tc.Write(preamble); err != nil {
			return
		}
		var ack [4]byte
		if _, err := io.ReadFull(conn, ack[:]); err != nil {
			return // server at cap or closing; not a finding
		}
		if _, err := tc.Write(data); err != nil {
			io.Copy(io.Discard, conn)
			return
		}
		tc.CloseWrite()
		if _, err := io.Copy(io.Discard, conn); err != nil && isTimeout(err) {
			t.Fatalf("binary server hung on input %q", data)
		}
	})
}
