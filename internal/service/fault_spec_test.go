package service

import (
	"strings"
	"testing"
	"time"
)

// TestParseFaultSpecTable pins ParseFaultSpec's accept/reject behavior,
// including the edge cases that used to slip through: NaN rates (every
// band comparison is false, so a NaN passed both the [0,1] check and the
// sum check), duplicate keys (the second silently overwrote the first,
// when the caller's intent was two overlapping bands), empty ops/tenants
// bands (accepted but could never match), and rate sums past 1.0.
func TestParseFaultSpecTable(t *testing.T) {
	cases := []struct {
		name    string
		spec    string
		wantErr string // substring; "" = must parse
		check   func(t *testing.T, p *FaultPlan)
	}{
		{
			name: "full valid spec",
			spec: "err=0.01,drop=0.001,delay=0.05:2ms,ops=get|put,tenants=a|b,seed=7",
			check: func(t *testing.T, p *FaultPlan) {
				if p.ErrRate != 0.01 || p.DropRate != 0.001 || p.DelayRate != 0.05 {
					t.Fatalf("rates = %v/%v/%v", p.ErrRate, p.DropRate, p.DelayRate)
				}
				if p.Delay != 2*time.Millisecond || p.Seed != 7 {
					t.Fatalf("delay %v seed %d", p.Delay, p.Seed)
				}
				if !p.Ops[OpGet] || !p.Ops[OpPut] || p.Ops[OpDelete] {
					t.Fatalf("ops = %v", p.Ops)
				}
				if !p.Tenants["a"] || !p.Tenants["b"] {
					t.Fatalf("tenants = %v", p.Tenants)
				}
			},
		},
		{
			name: "empty spec is the no-fault plan",
			spec: "",
			check: func(t *testing.T, p *FaultPlan) {
				if p.ErrRate != 0 || p.DropRate != 0 || p.DelayRate != 0 {
					t.Fatal("empty spec should inject nothing")
				}
			},
		},
		{
			name: "rates may sum to exactly 1",
			spec: "err=0.5,drop=0.3,delay=0.2:1ms",
		},
		{name: "sum past 1.0", spec: "err=0.6,drop=0.5", wantErr: "sum"},
		{name: "sum past 1.0 with delay", spec: "err=0.5,drop=0.3,delay=0.4:1ms", wantErr: "sum"},
		{name: "NaN err rate", spec: "err=NaN", wantErr: "bad err rate"},
		{name: "NaN drop rate", spec: "drop=nan", wantErr: "bad drop rate"},
		{name: "NaN delay rate", spec: "delay=NaN:1ms", wantErr: "bad delay rate"},
		{name: "negative rate", spec: "err=-0.1", wantErr: "bad err rate"},
		{name: "rate above one", spec: "err=1.5", wantErr: "bad err rate"},
		{name: "infinite rate", spec: "err=+Inf", wantErr: "bad err rate"},
		{name: "overlapping err bands", spec: "err=0.1,err=0.9", wantErr: "twice"},
		{name: "overlapping drop bands", spec: "drop=0.1,drop=0.2", wantErr: "twice"},
		{name: "overlapping delay bands", spec: "delay=0.1:1ms,delay=0.2:2ms", wantErr: "twice"},
		{name: "duplicate ops key", spec: "ops=get,ops=put", wantErr: "twice"},
		{name: "empty err band", spec: "err=", wantErr: "bad err rate"},
		{name: "empty ops band", spec: "ops=", wantErr: "empty ops"},
		{name: "empty tenants band", spec: "tenants=", wantErr: "empty tenants"},
		{name: "empty tenant name in band", spec: "tenants=a||b", wantErr: "empty tenant name"},
		{name: "bare key", spec: "err", wantErr: "not key=value"},
		{name: "unknown key", spec: "frob=1", wantErr: "unknown fault spec key"},
		{name: "unknown op", spec: "ops=frob", wantErr: "unknown op"},
		{name: "delay without duration", spec: "delay=0.5", wantErr: "wants <p>:<duration>"},
		{name: "negative delay duration", spec: "delay=0.5:-1ms", wantErr: "bad delay duration"},
		{name: "bad seed", spec: "seed=x", wantErr: "bad fault seed"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			p, err := ParseFaultSpec(tc.spec)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("spec %q parsed; want error containing %q", tc.spec, tc.wantErr)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %q does not contain %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("spec %q: %v", tc.spec, err)
			}
			if tc.check != nil {
				tc.check(t, p)
			}
		})
	}
}

// TestFaultPlanBands: with rates summing to 1 every draw lands in some
// band, and with an op filter no draw fires for other ops — the contract
// the scale suite's chaos leg leans on.
func TestFaultPlanBands(t *testing.T) {
	p, err := ParseFaultSpec("err=0.5,drop=0.3,delay=0.2:1ms,ops=get")
	if err != nil {
		t.Fatal(err)
	}
	var errs, drops, delays int
	for i := 0; i < 2000; i++ {
		f := p.Fault(OpGet, "t")
		switch {
		case f.Err:
			errs++
		case f.Drop:
			drops++
		case f.Delay > 0:
			delays++
		default:
			t.Fatal("draw landed outside all bands though rates sum to 1")
		}
	}
	if errs == 0 || drops == 0 || delays == 0 {
		t.Fatalf("band never fired: err=%d drop=%d delay=%d", errs, drops, delays)
	}
	if f := p.Fault(OpPut, "t"); f != (Fault{}) {
		t.Fatalf("op filter leaked: %+v", f)
	}
}
