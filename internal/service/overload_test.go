package service

import (
	"bufio"
	"io"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"vantage/internal/clock"
)

// newOverloadServer starts a server with explicit overload limits.
func newOverloadServer(t *testing.T, cfg Config, scfg ServerConfig) (*Service, *Server) {
	t.Helper()
	svc := newTestService(t, cfg)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeWith(svc, lis, scfg)
	t.Cleanup(func() { srv.Close() })
	return svc, srv
}

// injectorFunc adapts a function to FaultInjector.
type injectorFunc func(op Op, tenant string) Fault

func (f injectorFunc) Fault(op Op, tenant string) Fault { return f(op, tenant) }

// waitForGoroutines polls until the goroutine count settles back to at most
// want, failing the test if it does not within 3s.
func waitForGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d goroutines alive, want <= %d\n%s",
				runtime.NumGoroutine(), want, buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMaxConnsFastReject: connections beyond MaxConns get a single BUSY line
// and an immediate close instead of queueing, the rejection is counted, a
// freed slot is reusable, and nothing leaks goroutines.
func TestMaxConnsFastReject(t *testing.T) {
	before := runtime.NumGoroutine()

	svc, err := New(Config{Shards: 1, LinesPerShard: 512, MaxTenants: 4, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeWith(svc, lis, ServerConfig{MaxConns: 2})
	addr := srv.Addr().String()

	c1 := dialTest(t, addr)
	c1.expect("PING", "PONG")
	c2 := dialTest(t, addr)
	c2.expect("PING", "PONG")

	// Third connection: fast-rejected.
	c3 := dialTest(t, addr)
	if got := c3.line(); got != "BUSY" {
		t.Fatalf("over-cap connection: got %q want BUSY", got)
	}
	if _, err := c3.r.ReadString('\n'); err == nil {
		t.Fatal("rejected connection left open")
	}
	if got := svc.Stats().ConnsRejected; got != 1 {
		t.Fatalf("ConnsRejected = %d, want 1", got)
	}

	// Freeing a slot re-admits new connections (the handler's cleanup is
	// asynchronous, so poll).
	c1.expect("QUIT", "BYE")
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, first := dialProbe(t, addr)
		if first == "PONG" {
			break
		}
		if first != "BUSY" {
			t.Fatalf("unexpected first line %q", first)
		}
		if time.Now().After(deadline) {
			t.Fatal("slot never freed after QUIT")
		}
		time.Sleep(5 * time.Millisecond)
	}

	srv.Close()
	svc.Close()
	waitForGoroutines(t, before)
}

// dialProbe connects and immediately PINGs, returning the first response
// line ("PONG" or "BUSY").
func dialProbe(t *testing.T, addr string) (*testClient, string) {
	t.Helper()
	c := dialTest(t, addr)
	c.send("PING")
	return c, c.line()
}

// TestSlowLorisReaped: a client dribbling bytes that never complete a
// command line must be closed by the idle deadline (which is absolute per
// command line, not per read), with the close counted, and the service must
// keep serving others. Runs on the fake clock: the dribble happens in real
// time, but the 250ms idle window expires by Advance, so the test never
// waits out a real deadline (TestSlowLorisReapedFakeClock pins the minimal
// single-write variant; this one keeps the multi-write dribble coverage).
func TestSlowLorisReaped(t *testing.T) {
	fc := clock.NewFake(time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC))
	svc, srv := newOverloadServer(t,
		Config{Shards: 1, LinesPerShard: 512, MaxTenants: 4, Seed: 22, Clock: fc},
		ServerConfig{IdleTimeout: 250 * time.Millisecond})

	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Dribble a partial command, one byte per write, no pacing needed: the
	// window is absolute from the first arm, not per read, so the dribble
	// must NOT extend it.
	for _, b := range []byte("STATS and more") {
		if _, err := conn.Write([]byte{b}); err != nil {
			t.Fatalf("server closed before the deadline expired: %v", err)
		}
	}
	// Wait for the handler's watchdog to arm, then expire the window.
	deadline := time.Now().Add(5 * time.Second)
	for fc.Pending() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("watchdog timer never armed")
		}
		time.Sleep(time.Millisecond)
	}
	fc.Advance(300 * time.Millisecond)

	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil || isTimeout(err) {
		t.Fatalf("slow-loris connection not reaped: read err %v", err)
	}
	for svc.Stats().DeadlineCloses == 0 {
		if time.Now().After(deadline) {
			t.Fatal("DeadlineCloses not incremented")
		}
		time.Sleep(time.Millisecond)
	}

	// The server is unharmed: a well-behaved client is served.
	c := dialTest(t, srv.Addr().String())
	c.expect("PING", "PONG")
}

// TestSlowLorisReapedFakeClock is TestSlowLorisReaped with the deadline
// machinery on the injected fake clock: no dribble pacing, no waiting out a
// real 250ms. The test parks a silent connection, waits (bounded poll) for
// the handler's watchdog timer to arm, then advances the clock past the
// idle deadline — the watchdog must poison the connection's kernel deadline
// and the server must reap it.
func TestSlowLorisReapedFakeClock(t *testing.T) {
	fc := clock.NewFake(time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC))
	svc, srv := newOverloadServer(t,
		Config{Shards: 1, LinesPerShard: 512, MaxTenants: 4, Seed: 28, Clock: fc},
		ServerConfig{IdleTimeout: 250 * time.Millisecond})

	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("STATS without a newline")); err != nil {
		t.Fatal(err)
	}

	// The handler arms its read watchdog at the top of the command loop;
	// poll until the timer exists (the accept/handle goroutines run
	// asynchronously), then advance past the deadline.
	deadline := time.Now().Add(5 * time.Second)
	for fc.Pending() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("watchdog timer never armed")
		}
		time.Sleep(time.Millisecond)
	}
	fc.Advance(300 * time.Millisecond)

	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil || isTimeout(err) {
		t.Fatalf("connection not reaped after fake-clock advance: read err %v", err)
	}
	for svc.Stats().DeadlineCloses == 0 {
		if time.Now().After(deadline) {
			t.Fatal("DeadlineCloses not incremented")
		}
		time.Sleep(time.Millisecond)
	}

	// The server keeps serving well-behaved clients.
	c := dialTest(t, srv.Addr().String())
	c.expect("PING", "PONG")
}

// TestHalfWritePutReaped: a PUT that declares a value length and then stalls
// mid-payload must be reaped by the read deadline, leaving the shard
// consistent (no partial value installed). Runs on the fake clock with a
// deliberately huge IdleTimeout, so the only window that can expire is the
// payload-read one — pinning that the PUT value block gets its own
// ReadTimeout window rather than riding the idle deadline.
func TestHalfWritePutReaped(t *testing.T) {
	fc := clock.NewFake(time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC))
	svc, srv := newOverloadServer(t,
		Config{Shards: 1, LinesPerShard: 512, MaxTenants: 4, Seed: 23, Clock: fc},
		ServerConfig{IdleTimeout: time.Hour, ReadTimeout: 250 * time.Millisecond})

	c := dialTest(t, srv.Addr().String())
	c.expect("TENANT ADD alice", "OK 0")

	c.sendRaw("PUT alice stalled 100\r\nonly-ten-") // 9 of 100 payload bytes
	// Advance-and-probe: each round expires any armed 250ms window (the
	// hour-long idle window never trips) and polls for the error reply. The
	// reaper fails the command ("ERR short value") and closes.
	deadline := time.Now().Add(5 * time.Second)
	var reply strings.Builder
	for !strings.HasSuffix(reply.String(), "\n") {
		fc.Advance(300 * time.Millisecond)
		c.conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		part, err := c.r.ReadString('\n')
		reply.WriteString(part)
		if err != nil && !isTimeout(err) {
			t.Fatalf("closed without an error reply (got %q): %v", reply.String(), err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("half-written PUT never reaped (got %q)", reply.String())
		}
	}
	if got := strings.TrimRight(reply.String(), "\r\n"); got != "ERR short value" {
		t.Fatalf("half-written PUT: got %q", got)
	}
	c.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.r.ReadString('\n'); err == nil {
		t.Fatal("connection left open after half-written PUT")
	}
	if got := svc.Stats().DeadlineCloses; got == 0 {
		t.Error("DeadlineCloses not incremented")
	}

	// Shard consistency: the partial value was never installed, and the
	// tenant still works on a fresh connection.
	c2 := dialTest(t, srv.Addr().String())
	c2.expect("GET alice stalled", "MISS")
	c2.sendRaw("PUT alice stalled 2\r\nok\r\n")
	if got := c2.line(); got != "STORED" {
		t.Fatalf("PUT after reap: %q", got)
	}
}

// TestInflightShed: with MaxInflight=1 and a slow in-flight request, the
// next data command waits out the backpressure window and is shed with an
// ERR SHED reply; the connection stays usable and the shed is counted.
func TestInflightShed(t *testing.T) {
	svc, srv := newOverloadServer(t,
		Config{Shards: 1, LinesPerShard: 512, MaxTenants: 4, Seed: 24},
		ServerConfig{MaxInflight: 1, InflightWait: 10 * time.Millisecond})
	svc.SetFaultInjector(injectorFunc(func(op Op, tenant string) Fault {
		if tenant == "slow" {
			return Fault{Delay: 400 * time.Millisecond}
		}
		return Fault{}
	}))
	if _, err := svc.AddTenant("slow"); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.AddTenant("fast"); err != nil {
		t.Fatal(err)
	}

	c1 := dialTest(t, srv.Addr().String())
	c2 := dialTest(t, srv.Addr().String())
	c1.send("GET slow k") // holds the single in-flight slot for 400ms
	time.Sleep(100 * time.Millisecond)
	c2.send("GET fast k")
	if got := c2.line(); got != "ERR SHED server overloaded" {
		t.Fatalf("over-limit GET: got %q", got)
	}
	c2.expect("PING", "PONG") // connection survives shedding
	if got := c1.line(); got != "MISS" {
		t.Fatalf("slow GET: got %q", got)
	}
	if got := svc.Stats().RequestsShed; got != 1 {
		t.Fatalf("RequestsShed = %d, want 1", got)
	}
	// Once the slot frees, the same command succeeds.
	c2.expect("GET fast k", "MISS")
}

// TestTenantInflightShed: the per-tenant limit sheds the saturated tenant
// immediately while other tenants proceed, and the shed is attributed to
// the tenant.
func TestTenantInflightShed(t *testing.T) {
	svc, srv := newOverloadServer(t,
		Config{Shards: 1, LinesPerShard: 512, MaxTenants: 4, Seed: 25},
		ServerConfig{MaxTenantInflight: 1})
	svc.SetFaultInjector(injectorFunc(func(op Op, tenant string) Fault {
		if tenant == "hog" {
			return Fault{Delay: 400 * time.Millisecond}
		}
		return Fault{}
	}))
	svc.AddTenant("hog")
	svc.AddTenant("quiet")

	c1 := dialTest(t, srv.Addr().String())
	c2 := dialTest(t, srv.Addr().String())
	c3 := dialTest(t, srv.Addr().String())
	c1.send("GET hog k")
	time.Sleep(100 * time.Millisecond)
	c2.send("GET hog k2")
	if got := c2.line(); got != "ERR SHED server overloaded" {
		t.Fatalf("over-limit tenant GET: got %q", got)
	}
	c3.expect("GET quiet k", "MISS") // other tenants unaffected
	if got := c1.line(); got != "MISS" {
		t.Fatalf("in-limit GET: got %q", got)
	}
	ts, err := svc.TenantStats("hog")
	if err != nil {
		t.Fatal(err)
	}
	if ts.Shed != 1 {
		t.Errorf("hog shed = %d, want 1", ts.Shed)
	}
	if qs, _ := svc.TenantStats("quiet"); qs.Shed != 0 {
		t.Errorf("quiet shed = %d, want 0", qs.Shed)
	}
}

// TestLineTooLong: a command line over maxLineLen draws a protocol error and
// a close — not unbounded buffering, not a panic.
func TestLineTooLong(t *testing.T) {
	_, srv := newOverloadServer(t,
		Config{Shards: 1, LinesPerShard: 512, MaxTenants: 4, Seed: 26},
		ServerConfig{})

	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	junk := strings.Repeat("x", 64<<10)
	for written := 0; written <= maxLineLen+(64<<10); written += len(junk) {
		if _, err := conn.Write([]byte(junk)); err != nil {
			break // server gave up mid-write; response below
		}
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	r := bufio.NewReader(conn)
	line, err := r.ReadString('\n')
	if err != nil {
		t.Fatalf("no response to oversized line: %v", err)
	}
	if got := strings.TrimRight(line, "\r\n"); got != "ERR line too long" {
		t.Fatalf("oversized line: got %q", got)
	}
	if _, err := r.ReadString('\n'); err == nil {
		t.Fatal("connection left open after oversized line")
	}
}

// TestOverloadGoroutineHygiene drives rejected, reaped, and served
// connections through one server and verifies everything winds down to the
// starting goroutine count — the acceptance gate for "no goroutine leaks
// under overload". The idle reap runs on the fake clock: the held
// connections are parked, the clock advances past the window, and the
// reaper must fire — no wall-clock sleeps.
func TestOverloadGoroutineHygiene(t *testing.T) {
	before := runtime.NumGoroutine()

	fc := clock.NewFake(time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC))
	svc, err := New(Config{Shards: 1, LinesPerShard: 512, MaxTenants: 4, Seed: 27, Clock: fc})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeWith(svc, lis, ServerConfig{
		MaxConns:    4,
		IdleTimeout: 100 * time.Millisecond,
	})
	addr := srv.Addr().String()

	// A full house of served conns, a burst of rejected ones, and the held
	// four left parked for the reaper.
	var held []net.Conn
	for i := 0; i < 4; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, conn)
		io.WriteString(conn, "PING\r\n")
		bufio.NewReader(conn).ReadString('\n')
	}
	for i := 0; i < 8; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, conn) // BUSY then EOF
		conn.Close()
	}

	// With the clock frozen, the reaper cannot have raced the burst: every
	// over-cap dial was fast-rejected.
	st := svc.Stats()
	if st.ConnsRejected != 8 {
		t.Errorf("ConnsRejected = %d, want 8", st.ConnsRejected)
	}

	// The held conns sit with armed idle watchdogs; expire them. (All four
	// handlers armed their windows when serving PING, so Pending covers
	// them; advance until the reaper has closed every one.)
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().DeadlineCloses < 4 {
		fc.Advance(150 * time.Millisecond)
		if time.Now().After(deadline) {
			t.Fatalf("idle reaper closed %d of 4 held conns", svc.Stats().DeadlineCloses)
		}
		time.Sleep(time.Millisecond)
	}
	for _, conn := range held {
		conn.Close()
	}

	srv.Close()
	svc.Close()
	waitForGoroutines(t, before)
}
