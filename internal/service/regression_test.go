package service

import (
	"runtime"
	"strconv"
	"sync"
	"testing"
)

// TestDeletedKeyTagAgesOut covers the dead-tag promotion bug: a GET whose tag
// is resident but whose store entry is gone (the key was deleted, or a 40-bit
// address collision with a different key) must NOT refresh the line's
// recency. Before the fix, Get promoted on any tag hit, so a client polling a
// deleted key kept its dead line at top recency forever — the line was never
// demoted, never evicted, and permanently wasted capacity. After the fix the
// dead tag ages out under fill pressure like any cold line.
func TestDeletedKeyTagAgesOut(t *testing.T) {
	svc := newTestService(t, Config{Shards: 1, LinesPerShard: 512, MaxTenants: 2, Seed: 21})
	if _, err := svc.AddTenant("alice"); err != nil {
		t.Fatal(err)
	}
	val := make([]byte, 16)
	if err := svc.Put("alice", "victim", val); err != nil {
		t.Fatal(err)
	}

	addr := addrOf(0, "victim")
	sh := svc.shards[0]
	tagPresent := func() bool {
		sh.mu.Lock()
		defer sh.mu.Unlock()
		_, ok := sh.ctl.Array().Lookup(addr)
		return ok
	}
	if !tagPresent() {
		t.Fatal("victim tag not installed by Put")
	}
	if present, err := svc.Delete("alice", "victim"); err != nil || !present {
		t.Fatalf("Delete = %v, %v", present, err)
	}

	// Poll the deleted key (the pathological client) while filling the shard
	// with fresh keys. The fills must eventually evict the dead tag.
	for i := 0; i < 60000; i++ {
		if _, hit, err := svc.Get("alice", "victim"); err != nil {
			t.Fatal(err)
		} else if hit {
			t.Fatal("Get hit a deleted key")
		}
		if err := svc.Put("alice", "fill-"+strconv.Itoa(i), val); err != nil {
			t.Fatal(err)
		}
		if i%500 == 0 {
			svc.Repartition()
		}
		if i%128 == 0 && !tagPresent() {
			return // aged out — recency was not refreshed by the dead-tag polls
		}
	}
	if tagPresent() {
		t.Fatal("deleted key's tag still resident after 60000 fills: polling GETs are keeping a dead line hot")
	}
}

// TestRemoveTenantReservesSlotDuringPurge pins the slot-reservation ordering
// deterministically: while RemoveTenant's purge is still pending (the
// removePurgeHook seam), a concurrent AddTenant must NOT be able to claim the
// departing tenant's partition slot. Before the fix the slot was freed before
// the purge, so the hook's AddTenant succeeded and the purge then deleted the
// new tenant's fresh data.
func TestRemoveTenantReservesSlotDuringPurge(t *testing.T) {
	svc := newTestService(t, Config{Shards: 2, LinesPerShard: 2048, MaxTenants: 1, Seed: 33})
	if _, err := svc.AddTenant("old"); err != nil {
		t.Fatal(err)
	}
	val := []byte("v")
	for i := 0; i < 32; i++ {
		if err := svc.Put("old", "old-"+strconv.Itoa(i), val); err != nil {
			t.Fatal(err)
		}
	}

	claimedDuringPurge := false
	svc.removePurgeHook = func() {
		if _, err := svc.AddTenant("new"); err != nil {
			return // slot still reserved — the fixed behavior
		}
		claimedDuringPurge = true
		if err := svc.Put("new", "fresh", val); err != nil {
			t.Errorf("Put on freshly claimed slot failed: %v", err)
		}
	}
	if err := svc.RemoveTenant("old"); err != nil {
		t.Fatal(err)
	}
	svc.removePurgeHook = nil

	if claimedDuringPurge {
		// Pre-fix interleaving happened: the new tenant's data must have
		// survived the old tenant's purge (it cannot have, which is the bug).
		if _, hit, err := svc.Get("new", "fresh"); err != nil {
			t.Fatal(err)
		} else if !hit {
			t.Fatal("AddTenant claimed the slot mid-removal and the old tenant's purge deleted its fresh data")
		}
		return
	}
	// Fixed behavior: the slot opened only after cleanup; a new tenant now
	// registers cleanly and keeps its data.
	if _, err := svc.AddTenant("new"); err != nil {
		t.Fatalf("AddTenant after removal completed: %v", err)
	}
	if err := svc.Put("new", "fresh", val); err != nil {
		t.Fatal(err)
	}
	if _, hit, err := svc.Get("new", "fresh"); err != nil || !hit {
		t.Fatalf("Get after clean claim = hit %v, err %v", hit, err)
	}
}

// TestTenantChurnRace covers the RemoveTenant slot-reuse race: removal must
// keep the partition slot reserved until the store purge and UMON reset
// finish. Before the fix the slot was freed first, so a concurrent AddTenant
// could claim it and have its fresh data purged by the old tenant's cleanup —
// observed here as a Get miss immediately after a successful Put. Run with
// -race to also catch the ordering at the memory level.
func TestTenantChurnRace(t *testing.T) {
	svc := newTestService(t, Config{Shards: 2, LinesPerShard: 2048, MaxTenants: 1, Seed: 33})
	const iters = 400
	val := []byte("fresh")
	var wg sync.WaitGroup
	for _, name := range []string{"a", "b"} {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			key := "k-" + name
			for i := 0; i < iters; i++ {
				// Both goroutines contend for the single partition slot;
				// "tenant limit reached" means the other tenant holds it (or,
				// post-fix, its removal is still purging) — retry.
				for {
					if _, err := svc.AddTenant(name); err == nil {
						break
					}
					runtime.Gosched()
				}
				if err := svc.Put(name, key, val); err != nil {
					t.Errorf("iter %d: Put(%s) failed: %v", i, name, err)
					return
				}
				if _, hit, err := svc.Get(name, key); err != nil {
					t.Errorf("iter %d: Get(%s) failed: %v", i, name, err)
					return
				} else if !hit {
					t.Errorf("iter %d: tenant %s lost its fresh Put — a concurrent removal purged the reused slot", i, name)
					return
				}
				if err := svc.RemoveTenant(name); err != nil {
					t.Errorf("iter %d: RemoveTenant(%s) failed: %v", i, name, err)
					return
				}
			}
		}(name)
	}
	wg.Wait()
}

// TestGetHitZeroAllocs locks in the allocation-free steady-state GET path: a
// hit must not allocate — no value copy (the stored slice is returned), no
// key conversions, no boxing on the controller or UMON paths.
func TestGetHitZeroAllocs(t *testing.T) {
	svc := newTestService(t, Config{Shards: 4, LinesPerShard: 1024, MaxTenants: 4, Seed: 7})
	if _, err := svc.AddTenant("alice"); err != nil {
		t.Fatal(err)
	}
	if err := svc.Put("alice", "hotkey", []byte("hotvalue")); err != nil {
		t.Fatal(err)
	}
	// Drain the UMON ring so the measured runs only append to it (the ring
	// holds 4096 samples; the measurement performs ~1000 GETs).
	svc.Repartition()

	allocs := testing.AllocsPerRun(1000, func() {
		_, hit, err := svc.Get("alice", "hotkey")
		if err != nil || !hit {
			t.Fatalf("Get = hit %v, err %v", hit, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Get hit allocates %.1f times per op, want 0", allocs)
	}
}
