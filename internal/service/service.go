// Package service turns the Vantage library into a servable system: a
// thread-safe, sharded, multi-tenant in-memory key-value cache whose
// capacity management is a live Vantage controller per shard.
//
// Keys are hashed to 64-bit line addresses in a per-tenant namespace, and
// addresses are interleaved across shards by an H3 hash, exactly the way
// internal/ctrl's Banked organization distributes a physical cache across
// banks (Table 2). Each shard pairs a Vantage controller over a zcache tag
// array with a value store; the tag array decides placement, demotion, and
// eviction, and the store holds the bytes for the lines the array retains.
// Tenants map 1:1 to Vantage partitions, so every tenant gets Vantage's
// isolation guarantees — fine-grain capacity targets, demotions confined by
// aperture, a shared unmanaged region absorbing churn — on real traffic.
//
// Capacity targets are set online by utility-based cache partitioning: each
// shard owns a ucp.Policy whose UMON-DSS monitors are fed the shard's live
// GET stream (the read stream defines utility; PUTs are the fill path), and
// a background goroutine reruns Lookahead every RepartitionInterval.
//
// Concurrency model: one mutex per shard serializes that shard's controller,
// monitors, and store; the tenant registry has its own RWMutex; per-tenant
// request counters are atomics. The repartition loop takes shard locks one
// at a time, so reconfiguration never stops the world.
package service

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"vantage/internal/cache"
	"vantage/internal/core"
	"vantage/internal/ctrl"
	"vantage/internal/hash"
	"vantage/internal/ucp"
)

// Config configures a Service.
type Config struct {
	// Shards is the number of independent cache shards (power of two).
	// Default 4.
	Shards int
	// LinesPerShard is each shard's capacity in cache lines (= stored
	// entries). Default 8192.
	LinesPerShard int
	// Ways and Candidates set the zcache geometry (default 4/52, the
	// paper's Z4/52).
	Ways, Candidates int
	// MaxTenants is the number of partition slots per shard controller
	// (paper: Vantage scales to tens of partitions). Default 16, max 64.
	MaxTenants int
	// UnmanagedFrac, AMax and Slack are the Vantage knobs (§4.3); defaults
	// 0.05, 0.5, 0.1 — the paper's evaluation settings.
	UnmanagedFrac, AMax, Slack float64
	// MonitorWays is the UMON associativity (default 16).
	MonitorWays int
	// RepartitionInterval is the period of the online UCP loop; 0 disables
	// the background goroutine (call Repartition manually, e.g. in tests).
	RepartitionInterval time.Duration
	// Seed perturbs every hash in the service: shard routing, zcache H3
	// functions, UMON sampling. Equal seeds give identical placement.
	Seed uint64
}

func (c *Config) applyDefaults() {
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.LinesPerShard == 0 {
		c.LinesPerShard = 8192
	}
	if c.Ways == 0 {
		c.Ways = 4
	}
	if c.Candidates == 0 {
		c.Candidates = 52
	}
	if c.MaxTenants == 0 {
		c.MaxTenants = 16
	}
	if c.UnmanagedFrac == 0 {
		c.UnmanagedFrac = 0.05
	}
	if c.AMax == 0 {
		c.AMax = 0.5
	}
	if c.Slack == 0 {
		c.Slack = 0.1
	}
	if c.MonitorWays == 0 {
		c.MonitorWays = 16
	}
}

// entry is one stored value. The full key is kept to reject the (rare)
// collisions of two keys on one 40-bit line address.
type entry struct {
	key string
	val []byte
}

// shard is one bank of the service: a Vantage controller over a zcache tag
// array, the UCP monitors fed by its GET stream, and the value store. mu
// guards every field.
type shard struct {
	mu      sync.Mutex
	ctl     *core.Controller
	alloc   *ucp.Policy
	store   map[uint64]entry
	managed int // partitionable lines (capacity minus unmanaged target)
	snap    []ctrl.PartitionSnapshot
}

// Service is a sharded multi-tenant key-value cache driven by Vantage
// controllers. All methods are safe for concurrent use.
type Service struct {
	cfg    Config
	shards []*shard
	route  *hash.H3
	mask   uint64

	mu      sync.RWMutex // guards tenants and byPart
	tenants map[string]*Tenant
	byPart  []*Tenant

	ops          atomic.Uint64
	repartitions atomic.Uint64

	done   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
	start  time.Time
}

// New returns a running Service. If cfg.RepartitionInterval > 0 a background
// goroutine repartitions every interval until Close.
func New(cfg Config) (*Service, error) {
	cfg.applyDefaults()
	if cfg.Shards&(cfg.Shards-1) != 0 || cfg.Shards <= 0 {
		return nil, fmt.Errorf("service: shard count %d must be a power of two", cfg.Shards)
	}
	if cfg.MaxTenants < 1 || cfg.MaxTenants > 64 {
		return nil, fmt.Errorf("service: MaxTenants %d out of range [1,64]", cfg.MaxTenants)
	}
	if cfg.LinesPerShard < cfg.MaxTenants*4 {
		return nil, fmt.Errorf("service: %d lines per shard too small for %d tenants", cfg.LinesPerShard, cfg.MaxTenants)
	}
	s := &Service{
		cfg:     cfg,
		route:   hash.NewH3(16, hash.Mix64(cfg.Seed^0xbabe)),
		mask:    uint64(cfg.Shards - 1),
		tenants: make(map[string]*Tenant),
		byPart:  make([]*Tenant, cfg.MaxTenants),
		done:    make(chan struct{}),
		start:   time.Now(),
	}
	for i := 0; i < cfg.Shards; i++ {
		seed := hash.Mix64(cfg.Seed ^ uint64(i)*0x9e3779b97f4a7c15)
		arr := cache.NewZCache(cfg.LinesPerShard, cfg.Ways, cfg.Candidates, seed)
		ctl := core.New(arr, core.Config{
			Partitions:    cfg.MaxTenants,
			UnmanagedFrac: cfg.UnmanagedFrac,
			AMax:          cfg.AMax,
			Slack:         cfg.Slack,
			Seed:          seed,
		})
		unmanaged := int(cfg.UnmanagedFrac * float64(cfg.LinesPerShard))
		if unmanaged < 1 {
			unmanaged = 1
		}
		s.shards = append(s.shards, &shard{
			ctl:     ctl,
			alloc:   ucp.NewPolicy(cfg.MaxTenants, cfg.MonitorWays, cfg.LinesPerShard, ucp.GranLines, seed^0xa110c),
			store:   make(map[uint64]entry, cfg.LinesPerShard),
			managed: cfg.LinesPerShard - unmanaged,
		})
	}
	// No tenants yet: park every partition at target 0 until traffic arrives.
	zero := make([]int, cfg.MaxTenants)
	for _, sh := range s.shards {
		sh.ctl.SetTargets(zero)
	}
	if cfg.RepartitionInterval > 0 {
		s.wg.Add(1)
		go s.repartitionLoop()
	}
	return s, nil
}

// Close stops the repartition loop. The service remains usable for reads and
// writes afterwards (shutdown ordering: stop the protocol server first).
func (s *Service) Close() error {
	if s.closed.CompareAndSwap(false, true) {
		close(s.done)
	}
	s.wg.Wait()
	return nil
}

// Config returns the effective configuration (defaults applied).
func (s *Service) Config() Config { return s.cfg }

// TotalLines returns the service's total capacity in lines.
func (s *Service) TotalLines() int { return s.cfg.Shards * s.cfg.LinesPerShard }

// addrOf maps a tenant partition and key to a line address: the tenant
// selects a disjoint 40-bit address space (the idiom internal/sim uses for
// per-core spaces), the key hash the line within it.
func addrOf(part int, key string) uint64 {
	// FNV-1a, then a SplitMix64 finalizer: H3 routing downstream needs
	// well-mixed input bits.
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return uint64(part+1)<<40 | hash.Mix64(h)&(1<<40-1)
}

// shardOf routes an address to its shard (ctrl.Banked's bankOf).
func (s *Service) shardOf(addr uint64) *shard {
	return s.shards[s.route.Hash(hash.Mix64(addr))&s.mask]
}

// Get looks key up in tenant's partition. It returns the stored value and
// whether it hit; a miss does not install anything (the caller is expected
// to fetch from its origin and Put, the cache-aside pattern).
func (s *Service) Get(tenant, key string) ([]byte, bool, error) {
	t, err := s.tenant(tenant)
	if err != nil {
		return nil, false, err
	}
	addr := addrOf(t.part, key)
	sh := s.shardOf(addr)
	var val []byte
	hit := false
	sh.mu.Lock()
	sh.alloc.Access(t.part, addr) // UMON-DSS sees the live read stream
	if _, ok := sh.ctl.Array().Lookup(addr); ok {
		sh.ctl.Access(addr, t.part) // refresh recency; counted as a hit
		if e, ok := sh.store[addr]; ok && e.key == key {
			val = append([]byte(nil), e.val...)
			hit = true
		}
	}
	sh.mu.Unlock()
	s.ops.Add(1)
	t.gets.Add(1)
	if hit {
		t.hits.Add(1)
	} else {
		t.misses.Add(1)
	}
	return val, hit, nil
}

// Put stores val under key in tenant's partition, evicting whatever line
// the Vantage replacement process selects if the shard is full.
func (s *Service) Put(tenant, key string, val []byte) error {
	t, err := s.tenant(tenant)
	if err != nil {
		return err
	}
	addr := addrOf(t.part, key)
	sh := s.shardOf(addr)
	v := append([]byte(nil), val...)
	sh.mu.Lock()
	res := sh.ctl.Access(addr, t.part) // hit refreshes; miss installs
	if res.EvictedValid {
		delete(sh.store, res.Evicted)
	}
	sh.store[addr] = entry{key: key, val: v}
	sh.mu.Unlock()
	s.ops.Add(1)
	t.puts.Add(1)
	if res.ForcedManagedEviction {
		t.forced.Add(1)
	}
	return nil
}

// Delete removes key's value from tenant's partition, reporting whether it
// was present. The tag line is left to age out of the array (the controller
// has no invalidation path; a dead tag is demoted and evicted like any cold
// line), so occupancy decays rather than dropping instantly.
func (s *Service) Delete(tenant, key string) (bool, error) {
	t, err := s.tenant(tenant)
	if err != nil {
		return false, err
	}
	addr := addrOf(t.part, key)
	sh := s.shardOf(addr)
	sh.mu.Lock()
	e, ok := sh.store[addr]
	present := ok && e.key == key
	if present {
		delete(sh.store, addr)
	}
	sh.mu.Unlock()
	s.ops.Add(1)
	return present, nil
}

// Repartition reruns UCP once on every shard: each shard's Lookahead
// distributes its managed capacity among the active tenants from its own
// UMON curves, and the Vantage controllers converge to the new targets by
// churn-based demotion. Safe to call concurrently with requests.
func (s *Service) Repartition() {
	s.mu.RLock()
	active := make([]bool, s.cfg.MaxTenants)
	for _, t := range s.tenants {
		active[t.part] = true
	}
	s.mu.RUnlock()
	for _, sh := range s.shards {
		sh.mu.Lock()
		targets := sh.alloc.AllocateActive(sh.managed, active)
		sh.ctl.SetTargets(targets)
		sh.mu.Unlock()
	}
	s.repartitions.Add(1)
}

func (s *Service) repartitionLoop() {
	defer s.wg.Done()
	tick := time.NewTicker(s.cfg.RepartitionInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-tick.C:
			s.Repartition()
		}
	}
}
