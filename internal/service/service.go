// Package service turns the Vantage library into a servable system: a
// thread-safe, sharded, multi-tenant in-memory key-value cache whose
// capacity management is a live Vantage controller per shard.
//
// Keys are hashed to 64-bit line addresses in a per-tenant namespace, and
// addresses are interleaved across shards by an H3 hash, exactly the way
// internal/ctrl's Banked organization distributes a physical cache across
// banks (Table 2). Each shard pairs a Vantage controller over a zcache tag
// array with a value store; the tag array decides placement, demotion, and
// eviction, and the store holds the bytes for the lines the array retains.
// Tenants map 1:1 to Vantage partitions, so every tenant gets Vantage's
// isolation guarantees — fine-grain capacity targets, demotions confined by
// aperture, a shared unmanaged region absorbing churn — on real traffic.
//
// Capacity targets are set online by utility-based cache partitioning: each
// shard owns a ucp.Policy whose UMON-DSS monitors are fed the shard's live
// GET stream (the read stream defines utility; PUTs are the fill path), and
// a background goroutine reruns Lookahead every RepartitionInterval.
//
// Concurrency model: each shard has two locks. sh.mu serializes the shard's
// controller and value store — these stay coupled under one lock because
// the install/evict path must atomically pair a tag change with the store
// mutation. sh.umu guards the UCP monitors and a fixed-size ring of sampled
// GET addresses: the request path only appends to the ring (a few stores),
// and the expensive UMON auxiliary-tag walks happen when the ring drains —
// in the repartition loop, or inline when the ring fills. The tenant
// registry is a copy-on-write snapshot behind an atomic pointer, so the
// request path resolves tenants without any lock; registry mutations
// serialize on a writers-only mutex. Per-tenant request counters are
// atomics. The repartition loop takes shard locks one at a time, so
// reconfiguration never stops the world.
//
// The request path is allocation-free in steady state: GET returns the
// stored slice without copying (callers must treat it as immutable — every
// PUT installs a freshly copied value, so returned slices are stable
// snapshots), the address computation mixes the key once and shares the
// mixed hash between shard routing and the UMON, and the byte-slice
// variants (GetB/PutB/DeleteB) let protocol handlers avoid key/tenant
// string conversions entirely.
package service

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"vantage/internal/cache"
	"vantage/internal/clock"
	"vantage/internal/core"
	"vantage/internal/ctrl"
	"vantage/internal/hash"
	"vantage/internal/ucp"
)

// Config configures a Service.
type Config struct {
	// Shards is the number of independent cache shards (power of two).
	// Default 4.
	Shards int
	// LinesPerShard is each shard's capacity in cache lines (= stored
	// entries). Default 8192.
	LinesPerShard int
	// Ways and Candidates set the zcache geometry (default 4/52, the
	// paper's Z4/52).
	Ways, Candidates int
	// MaxTenants is the number of partition slots per shard controller
	// (paper: Vantage scales to tens of partitions per bank; the scale suite
	// registers hundreds per node). Default 16, max 1024.
	MaxTenants int
	// UnmanagedFrac, AMax and Slack are the Vantage knobs (§4.3); defaults
	// 0.05, 0.5, 0.1 — the paper's evaluation settings.
	UnmanagedFrac, AMax, Slack float64
	// MonitorWays is the UMON associativity (default 16).
	MonitorWays int
	// RepartitionInterval is the period of the online UCP loop; 0 disables
	// the background goroutine (call Repartition manually, e.g. in tests).
	RepartitionInterval time.Duration
	// Seed perturbs every hash in the service: shard routing, zcache H3
	// functions, UMON sampling. Equal seeds give identical placement.
	Seed uint64
	// Clock is the time source for TTLs, sweeping, protocol deadlines, and
	// the repartition loop. nil means the system clock; tests inject a
	// clock.Fake to drive all temporal behavior deterministically.
	Clock clock.Clock
	// DefaultTTL is applied to PUTs that carry no explicit EXPIRE clause.
	// 0 means entries without a TTL never expire.
	DefaultTTL time.Duration
	// SweepInterval is the period of the per-shard background sweeper that
	// reclaims expired entries; 0 disables it (expiry is then lazy-only, or
	// driven manually via SweepOnce).
	SweepInterval time.Duration
	// SweepBatch bounds the expiry-hint pops per sweep pass per shard, so a
	// mass expiry degrades sweep latency instead of stalling the shard lock
	// (the same degrade-don't-collapse discipline as the overload limits).
	// Default 128.
	SweepBatch int
	// TrackLatency enables the per-request latency histogram exported
	// through Stats and /metrics (vantaged_request_latency_seconds). Off by
	// default: recording is two atomic adds per request, cheap but not free.
	TrackLatency bool
}

func (c *Config) applyDefaults() {
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.LinesPerShard == 0 {
		c.LinesPerShard = 8192
	}
	if c.Ways == 0 {
		c.Ways = 4
	}
	if c.Candidates == 0 {
		c.Candidates = 52
	}
	if c.MaxTenants == 0 {
		c.MaxTenants = 16
	}
	if c.UnmanagedFrac == 0 {
		c.UnmanagedFrac = 0.05
	}
	if c.AMax == 0 {
		c.AMax = 0.5
	}
	if c.Slack == 0 {
		c.Slack = 0.1
	}
	if c.MonitorWays == 0 {
		c.MonitorWays = 16
	}
	if c.Clock == nil {
		c.Clock = clock.System()
	}
	if c.SweepBatch == 0 {
		c.SweepBatch = 128
	}
}

// entry is one stored value. The full key is kept to reject the (rare)
// collisions of two keys on one 40-bit line address. exp is the expiry
// deadline in Unix nanoseconds, 0 when the entry never expires; an entry at
// or past its deadline is dead — reads treat it as a miss (counted as an
// expired miss, not a cold one) and reclaim it on the spot.
type entry struct {
	key string
	val []byte
	exp int64
}

// umonSample is one deferred UMON access: the line address plus its Mix64,
// computed once on the request path and reused at drain time.
type umonSample struct {
	addr  uint64
	mixed uint64
	part  int32
}

// umonRingSize is the per-shard capacity of the deferred-UMON ring. When
// the ring fills between repartitions, the producer drains it inline, so no
// sample is ever dropped and per-partition feed order is preserved — the
// monitor state at allocation time is identical to feeding synchronously.
const umonRingSize = 4096

// shard is one bank of the service: a Vantage controller over a zcache tag
// array plus the value store (both guarded by mu), and the UCP monitors
// plus their deferred-access ring (guarded by umu).
type shard struct {
	mu      sync.Mutex
	ctl     *core.Controller
	store   map[uint64]entry
	managed int // partitionable lines (capacity minus unmanaged target)
	snap    []ctrl.PartitionSnapshot

	// Expiry state (under mu): a min-heap of (deadline, addr) hints pushed
	// by TTL'd writes, and the sweeper's lifetime counters. Hints are not
	// authoritative — the entry's exp field is — so a hint whose entry was
	// deleted, overwritten, or touched to a later deadline is simply
	// discarded when popped.
	exph        expHeap
	sweepLines  uint64 // expired entries reclaimed by the sweeper
	sweepPasses uint64 // sweep passes executed

	umu    sync.Mutex
	alloc  *ucp.Policy
	ring   []umonSample
	ringN  int
	drains uint64
}

// observe queues one GET address for the shard's UMONs. Appending is a few
// stores under umu; the auxiliary-tag walk happens at drain time, off the
// tag/store critical path.
func (sh *shard) observe(part int, addr, mixed uint64) {
	sh.umu.Lock()
	if sh.ringN == len(sh.ring) {
		sh.drainLocked()
	}
	sh.ring[sh.ringN] = umonSample{addr: addr, mixed: mixed, part: int32(part)}
	sh.ringN++
	sh.umu.Unlock()
}

// drainLocked feeds every queued sample into the UMONs. Caller holds umu.
func (sh *shard) drainLocked() {
	for i := 0; i < sh.ringN; i++ {
		s := &sh.ring[i]
		sh.alloc.AccessMixed(int(s.part), s.addr, s.mixed)
	}
	if sh.ringN > 0 {
		sh.drains++
	}
	sh.ringN = 0
}

// registry is an immutable snapshot of the tenant population. The request
// path reads it through an atomic pointer; mutations build a fresh copy
// under Service.regMu. byPart entries may outlive their tenants map entry:
// RemoveTenant keeps the slot reserved until the purge completes, so a
// concurrent AddTenant can never claim a slot whose cleanup is in flight.
type registry struct {
	tenants map[string]*Tenant
	byPart  []*Tenant
}

// Service is a sharded multi-tenant key-value cache driven by Vantage
// controllers. All methods are safe for concurrent use.
type Service struct {
	cfg    Config
	shards []*shard
	route  *hash.H3
	mask   uint64

	reg   atomic.Pointer[registry]
	regMu sync.Mutex // serializes registry writers

	ops          atomic.Uint64
	mgets        atomic.Uint64
	repartitions atomic.Uint64
	expired      atomic.Uint64 // reads that found an expired entry

	// Overload counters, incremented by the protocol server(s) attached to
	// this service (several Servers may share one Service; these aggregate).
	connsRejected  atomic.Uint64 // connections fast-rejected with BUSY
	requestsShed   atomic.Uint64 // data ops refused by in-flight limits
	deadlineCloses atomic.Uint64 // connections reaped by read/write deadlines

	// Binary-protocol counters (see binproto.go).
	binConnsTotal atomic.Uint64 // connections that negotiated binary framing
	binConns      atomic.Int64  // currently open binary connections
	binFrames     atomic.Uint64 // binary request frames dispatched
	bmgetKeys     atomic.Uint64 // keys carried by BMGET multi-key frames

	// fault, when non-nil, injects delays/errors into the shard path and
	// connection drops into the dispatcher (see fault.go).
	fault atomic.Pointer[faultHolder]

	// Cluster state (see cluster.go). clusterVersion is a Lamport-style
	// counter over registry mutations: origin operations increment it,
	// replicated operations max-merge the sender's value, so all peers
	// converge to equal versions at quiescence. rehomedOut/rehomedIn count
	// keys drained to / received from peers on membership changes. The
	// handler, when set, broadcasts origin registry mutations to peers.
	clusterVersion atomic.Uint64
	rehomedOut     atomic.Uint64
	rehomedIn      atomic.Uint64
	cluster        atomic.Pointer[clusterHolder]

	// latency, when non-nil, is the request-latency histogram enabled by
	// Config.TrackLatency (see latency.go).
	latency *latencyHist

	clk    clock.Clock
	done   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
	start  time.Time

	// removePurgeHook, when non-nil, runs between RemoveTenant's
	// unregistration and its purge — a test seam for the slot-reservation
	// ordering. Always nil in production.
	removePurgeHook func()
}

// New returns a running Service. If cfg.RepartitionInterval > 0 a background
// goroutine repartitions every interval until Close.
func New(cfg Config) (*Service, error) {
	cfg.applyDefaults()
	if cfg.Shards&(cfg.Shards-1) != 0 || cfg.Shards <= 0 {
		return nil, fmt.Errorf("service: shard count %d must be a power of two", cfg.Shards)
	}
	if cfg.MaxTenants < 1 || cfg.MaxTenants > 1024 {
		return nil, fmt.Errorf("service: MaxTenants %d out of range [1,1024]", cfg.MaxTenants)
	}
	if cfg.LinesPerShard < cfg.MaxTenants*4 {
		return nil, fmt.Errorf("service: %d lines per shard too small for %d tenants", cfg.LinesPerShard, cfg.MaxTenants)
	}
	s := &Service{
		cfg:   cfg,
		route: hash.NewH3(16, hash.Mix64(cfg.Seed^0xbabe)),
		mask:  uint64(cfg.Shards - 1),
		clk:   cfg.Clock,
		done:  make(chan struct{}),
		start: cfg.Clock.Now(),
	}
	if cfg.TrackLatency {
		s.latency = newLatencyHist()
	}
	s.reg.Store(&registry{
		tenants: make(map[string]*Tenant),
		byPart:  make([]*Tenant, cfg.MaxTenants),
	})
	for i := 0; i < cfg.Shards; i++ {
		seed := hash.Mix64(cfg.Seed ^ uint64(i)*0x9e3779b97f4a7c15)
		arr := cache.NewZCache(cfg.LinesPerShard, cfg.Ways, cfg.Candidates, seed)
		ctl := core.New(arr, core.Config{
			Partitions:    cfg.MaxTenants,
			UnmanagedFrac: cfg.UnmanagedFrac,
			AMax:          cfg.AMax,
			Slack:         cfg.Slack,
			Seed:          seed,
		})
		unmanaged := int(cfg.UnmanagedFrac * float64(cfg.LinesPerShard))
		if unmanaged < 1 {
			unmanaged = 1
		}
		s.shards = append(s.shards, &shard{
			ctl:     ctl,
			alloc:   ucp.NewPolicy(cfg.MaxTenants, cfg.MonitorWays, cfg.LinesPerShard, ucp.GranLines, seed^0xa110c),
			store:   make(map[uint64]entry, cfg.LinesPerShard),
			managed: cfg.LinesPerShard - unmanaged,
			ring:    make([]umonSample, umonRingSize),
		})
	}
	// No tenants yet: park every partition at target 0 until traffic arrives.
	zero := make([]int, cfg.MaxTenants)
	for _, sh := range s.shards {
		sh.ctl.SetTargets(zero)
	}
	if cfg.RepartitionInterval > 0 {
		s.wg.Add(1)
		go s.repartitionLoop()
	}
	if cfg.SweepInterval > 0 {
		for _, sh := range s.shards {
			s.wg.Add(1)
			go s.sweepLoop(sh)
		}
	}
	return s, nil
}

// Close stops the repartition loop. The service remains usable for reads and
// writes afterwards (shutdown ordering: stop the protocol server first).
func (s *Service) Close() error {
	if s.closed.CompareAndSwap(false, true) {
		close(s.done)
	}
	s.wg.Wait()
	return nil
}

// Config returns the effective configuration (defaults applied).
func (s *Service) Config() Config { return s.cfg }

// TotalLines returns the service's total capacity in lines.
func (s *Service) TotalLines() int { return s.cfg.Shards * s.cfg.LinesPerShard }

// fnv1a is FNV-1a over the key bytes; addrOf/addrOfB finish it with the
// SplitMix64 finalizer because H3 routing downstream needs well-mixed input
// bits.
func fnv1a(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

func fnv1aB(key []byte) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

// addrOf maps a tenant partition and key to a line address: the tenant
// selects a disjoint 40-bit address space (the idiom internal/sim uses for
// per-core spaces), the key hash the line within it.
func addrOf(part int, key string) uint64 {
	return uint64(part+1)<<40 | hash.Mix64(fnv1a(key))&(1<<40-1)
}

// addrOfB is addrOf for byte-slice keys.
func addrOfB(part int, key []byte) uint64 {
	return uint64(part+1)<<40 | hash.Mix64(fnv1aB(key))&(1<<40-1)
}

// shardOf routes an address to its shard (ctrl.Banked's bankOf).
func (s *Service) shardOf(addr uint64) *shard {
	return s.shards[s.route.Hash(hash.Mix64(addr))&s.mask]
}

// Get looks key up in tenant's partition. It returns the stored value and
// whether it hit; a miss does not install anything (the caller is expected
// to fetch from its origin and Put, the cache-aside pattern).
//
// An entry at or past its expiry deadline is a miss: it is reclaimed on the
// spot (store delete + expiry demotion) and counted as an expired miss, not
// a cold one. Expired reads deliberately bypass the UMON — an expired miss
// is compulsory, no capacity allocation could have served it, so feeding it
// to the utility monitors would credit the tenant for demand that capacity
// cannot convert into hits.
//
// The returned slice aliases the store and must not be modified. It is a
// stable snapshot: overwrites install fresh copies, so a slice returned
// here is never mutated afterwards.
func (s *Service) Get(tenant, key string) ([]byte, bool, error) {
	if err := s.injectFault(OpGet, tenant); err != nil {
		return nil, false, err
	}
	t := s.reg.Load().tenants[tenant]
	if t == nil {
		return nil, false, fmt.Errorf("service: unknown tenant %q", tenant)
	}
	addr := addrOf(t.part, key)
	mixed := hash.Mix64(addr)
	sh := s.shards[s.route.Hash(mixed)&s.mask]
	var val []byte
	hit, expired := false, false
	sh.mu.Lock()
	if e, ok := sh.store[addr]; ok && e.key == key {
		if e.exp != 0 && s.clk.Now().UnixNano() >= e.exp {
			delete(sh.store, addr)
			sh.ctl.DemoteExpired(addr)
			expired = true
		} else {
			// Tag presence is implied: a stored entry's tag can only leave
			// the array via eviction, which purges the entry. Refresh recency
			// for real hits only — a dead tag (deleted key, or a 40-bit
			// collision with a different key) must age out like any cold
			// line, so it is deliberately not promoted here.
			sh.ctl.Access(addr, t.part)
			val, hit = e.val, true
		}
	}
	sh.mu.Unlock()
	if !expired {
		sh.observe(t.part, addr, mixed) // UMON-DSS sees the live read stream
	}
	s.ops.Add(1)
	t.gets.Add(1)
	switch {
	case hit:
		t.hits.Add(1)
	case expired:
		t.expired.Add(1)
		s.expired.Add(1)
	default:
		t.misses.Add(1)
	}
	return val, hit, nil
}

// GetB is Get with byte-slice tenant and key, for protocol handlers that
// parse requests into shared buffers; it performs no allocation on any
// path but the unknown-tenant error.
func (s *Service) GetB(tenant, key []byte) ([]byte, bool, error) {
	if s.fault.Load() != nil {
		if err := s.injectFault(OpGet, string(tenant)); err != nil {
			return nil, false, err
		}
	}
	t := s.reg.Load().tenants[string(tenant)]
	if t == nil {
		return nil, false, fmt.Errorf("service: unknown tenant %q", tenant)
	}
	addr := addrOfB(t.part, key)
	val, hit := s.getAt(t, addr, hash.Mix64(addr), key)
	return val, hit, nil
}

// getAt is the resolved GET path shared by GetB and the binary shard
// workers: the caller already resolved the tenant and computed the line
// address and its Mix64 (binary dispatch resolves once at decode time and
// routes on the mix, so the worker never rehashes).
func (s *Service) getAt(t *Tenant, addr, mixed uint64, key []byte) ([]byte, bool) {
	sh := s.shards[s.route.Hash(mixed)&s.mask]
	var val []byte
	hit, expired := false, false
	sh.mu.Lock()
	if e, ok := sh.store[addr]; ok && e.key == string(key) {
		if e.exp != 0 && s.clk.Now().UnixNano() >= e.exp {
			delete(sh.store, addr)
			sh.ctl.DemoteExpired(addr)
			expired = true
		} else {
			sh.ctl.Access(addr, t.part)
			val, hit = e.val, true
		}
	}
	sh.mu.Unlock()
	if !expired {
		sh.observe(t.part, addr, mixed)
	}
	s.ops.Add(1)
	t.gets.Add(1)
	switch {
	case hit:
		t.hits.Add(1)
	case expired:
		t.expired.Add(1)
		s.expired.Add(1)
	default:
		t.misses.Add(1)
	}
	return val, hit
}

// Put stores val under key in tenant's partition with the service's default
// TTL, evicting whatever line the Vantage replacement process selects if the
// shard is full. The value is copied; the caller may reuse val.
func (s *Service) Put(tenant, key string, val []byte) error {
	return s.PutTTL(tenant, key, val, s.cfg.DefaultTTL)
}

// PutTTL is Put with an explicit TTL: the entry expires ttl from now. ttl 0
// stores a non-expiring entry, overriding any configured default.
func (s *Service) PutTTL(tenant, key string, val []byte, ttl time.Duration) error {
	if err := s.injectFault(OpPut, tenant); err != nil {
		return err
	}
	t := s.reg.Load().tenants[tenant]
	if t == nil {
		return fmt.Errorf("service: unknown tenant %q", tenant)
	}
	addr := addrOf(t.part, key)
	sh := s.shardOf(addr)
	v := append([]byte(nil), val...)
	var exp int64
	if ttl > 0 {
		exp = s.clk.Now().Add(ttl).UnixNano()
	}
	sh.mu.Lock()
	res := sh.ctl.Access(addr, t.part) // hit refreshes; miss installs
	if res.EvictedValid {
		delete(sh.store, res.Evicted)
	}
	sh.store[addr] = entry{key: key, val: v, exp: exp}
	if exp != 0 {
		sh.pushHint(expHint{at: exp, addr: addr})
	}
	sh.mu.Unlock()
	s.ops.Add(1)
	t.puts.Add(1)
	if res.ForcedManagedEviction {
		t.forced.Add(1)
	}
	return nil
}

// PutB is Put with byte-slice tenant, key, and value. Key and value are
// copied as needed; on an overwrite of the same key the stored key string
// is reused, so steady-state overwrites allocate only the value copy.
func (s *Service) PutB(tenant, key, val []byte) error {
	return s.PutBTTL(tenant, key, val, s.cfg.DefaultTTL)
}

// PutBTTL is PutTTL with byte-slice tenant, key, and value.
func (s *Service) PutBTTL(tenant, key, val []byte, ttl time.Duration) error {
	if s.fault.Load() != nil {
		if err := s.injectFault(OpPut, string(tenant)); err != nil {
			return err
		}
	}
	t := s.reg.Load().tenants[string(tenant)]
	if t == nil {
		return fmt.Errorf("service: unknown tenant %q", tenant)
	}
	s.putAt(t, addrOfB(t.part, key), key, val, ttl)
	return nil
}

// putAt is the resolved PUT path shared by PutBTTL and the binary shard
// workers. The value is copied; on an overwrite of the same key the stored
// key string is reused.
func (s *Service) putAt(t *Tenant, addr uint64, key, val []byte, ttl time.Duration) {
	sh := s.shardOf(addr)
	v := append([]byte(nil), val...)
	var exp int64
	if ttl > 0 {
		exp = s.clk.Now().Add(ttl).UnixNano()
	}
	sh.mu.Lock()
	res := sh.ctl.Access(addr, t.part)
	if res.EvictedValid {
		delete(sh.store, res.Evicted)
	}
	if e, ok := sh.store[addr]; ok && e.key == string(key) {
		sh.store[addr] = entry{key: e.key, val: v, exp: exp}
	} else {
		sh.store[addr] = entry{key: string(key), val: v, exp: exp}
	}
	if exp != 0 {
		sh.pushHint(expHint{at: exp, addr: addr})
	}
	sh.mu.Unlock()
	s.ops.Add(1)
	t.puts.Add(1)
	if res.ForcedManagedEviction {
		t.forced.Add(1)
	}
}

// Touch resets key's TTL in tenant's partition: the entry now expires ttl
// from now (ttl 0 clears the TTL — the entry becomes non-expiring). It
// reports whether the entry was live; touching an expired entry reclaims it
// and returns false, same as a read would. A successful touch refreshes the
// line's recency like a GET hit, since a touch is a liveness declaration.
func (s *Service) Touch(tenant, key string, ttl time.Duration) (bool, error) {
	if err := s.injectFault(OpTouch, tenant); err != nil {
		return false, err
	}
	t := s.reg.Load().tenants[tenant]
	if t == nil {
		return false, fmt.Errorf("service: unknown tenant %q", tenant)
	}
	return s.touch(t, addrOf(t.part, key), key, ttl)
}

// TouchB is Touch with byte-slice tenant and key.
func (s *Service) TouchB(tenant, key []byte, ttl time.Duration) (bool, error) {
	if s.fault.Load() != nil {
		if err := s.injectFault(OpTouch, string(tenant)); err != nil {
			return false, err
		}
	}
	t := s.reg.Load().tenants[string(tenant)]
	if t == nil {
		return false, fmt.Errorf("service: unknown tenant %q", tenant)
	}
	return s.touchAt(t, addrOfB(t.part, key), key, ttl), nil
}

func (s *Service) touch(t *Tenant, addr uint64, key string, ttl time.Duration) (bool, error) {
	sh := s.shardOf(addr)
	now := s.clk.Now()
	var exp int64
	if ttl > 0 {
		exp = now.Add(ttl).UnixNano()
	}
	live, expired := false, false
	sh.mu.Lock()
	if e, ok := sh.store[addr]; ok && e.key == key {
		if e.exp != 0 && now.UnixNano() >= e.exp {
			delete(sh.store, addr)
			sh.ctl.DemoteExpired(addr)
			expired = true
		} else {
			e.exp = exp
			sh.store[addr] = e
			if exp != 0 {
				sh.pushHint(expHint{at: exp, addr: addr})
			}
			sh.ctl.Access(addr, t.part) // tag is present: refreshes recency
			live = true
		}
	}
	sh.mu.Unlock()
	s.ops.Add(1)
	if expired {
		t.expired.Add(1)
		s.expired.Add(1)
	}
	return live, nil
}

// touchAt is the resolved TOUCH path shared by TouchB and the binary shard
// workers; unlike touch it compares the stored key against a byte slice, so
// the protocol paths never build a key string.
func (s *Service) touchAt(t *Tenant, addr uint64, key []byte, ttl time.Duration) bool {
	sh := s.shardOf(addr)
	now := s.clk.Now()
	var exp int64
	if ttl > 0 {
		exp = now.Add(ttl).UnixNano()
	}
	live, expired := false, false
	sh.mu.Lock()
	if e, ok := sh.store[addr]; ok && e.key == string(key) {
		if e.exp != 0 && now.UnixNano() >= e.exp {
			delete(sh.store, addr)
			sh.ctl.DemoteExpired(addr)
			expired = true
		} else {
			e.exp = exp
			sh.store[addr] = e
			if exp != 0 {
				sh.pushHint(expHint{at: exp, addr: addr})
			}
			sh.ctl.Access(addr, t.part)
			live = true
		}
	}
	sh.mu.Unlock()
	s.ops.Add(1)
	if expired {
		t.expired.Add(1)
		s.expired.Add(1)
	}
	return live
}

// Delete removes key's value from tenant's partition, reporting whether it
// was present. The tag line is left to age out of the array (the controller
// has no invalidation path; a dead tag is demoted and evicted like any cold
// line), so occupancy decays rather than dropping instantly.
func (s *Service) Delete(tenant, key string) (bool, error) {
	if err := s.injectFault(OpDelete, tenant); err != nil {
		return false, err
	}
	t := s.reg.Load().tenants[tenant]
	if t == nil {
		return false, fmt.Errorf("service: unknown tenant %q", tenant)
	}
	addr := addrOf(t.part, key)
	sh := s.shardOf(addr)
	sh.mu.Lock()
	e, ok := sh.store[addr]
	present := ok && e.key == key
	if present {
		delete(sh.store, addr)
	}
	sh.mu.Unlock()
	s.ops.Add(1)
	return present, nil
}

// DeleteB is Delete with byte-slice tenant and key.
func (s *Service) DeleteB(tenant, key []byte) (bool, error) {
	if s.fault.Load() != nil {
		if err := s.injectFault(OpDelete, string(tenant)); err != nil {
			return false, err
		}
	}
	t := s.reg.Load().tenants[string(tenant)]
	if t == nil {
		return false, fmt.Errorf("service: unknown tenant %q", tenant)
	}
	return s.deleteAt(t, addrOfB(t.part, key), key), nil
}

// deleteAt is the resolved DELETE path shared by DeleteB and the binary
// shard workers.
func (s *Service) deleteAt(t *Tenant, addr uint64, key []byte) bool {
	sh := s.shardOf(addr)
	sh.mu.Lock()
	e, ok := sh.store[addr]
	present := ok && e.key == string(key)
	if present {
		delete(sh.store, addr)
	}
	sh.mu.Unlock()
	s.ops.Add(1)
	return present
}

// Repartition reruns UCP once on every shard: each shard first drains its
// deferred-UMON ring (so the monitors reflect the full GET stream), then
// Lookahead distributes its managed capacity among the active tenants from
// its own UMON curves, and the Vantage controllers converge to the new
// targets by churn-based demotion. Safe to call concurrently with requests.
func (s *Service) Repartition() {
	reg := s.reg.Load()
	active := make([]bool, s.cfg.MaxTenants)
	for _, t := range reg.tenants {
		active[t.part] = true
	}
	for _, sh := range s.shards {
		sh.umu.Lock()
		sh.drainLocked()
		targets := sh.alloc.AllocateActive(sh.managed, active)
		sh.umu.Unlock()
		sh.mu.Lock()
		sh.ctl.SetTargets(targets)
		sh.mu.Unlock()
	}
	s.repartitions.Add(1)
}

func (s *Service) repartitionLoop() {
	defer s.wg.Done()
	tick := s.clk.NewTicker(s.cfg.RepartitionInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-tick.C():
			s.Repartition()
		}
	}
}
