package service

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"
)

// TenantStats is one tenant's externally visible state: request counters
// from the service layer plus capacity state and controller counters summed
// across shards.
type TenantStats struct {
	Name      string
	Partition int

	// Request-path counters (service layer). Expired counts reads and
	// touches that found an entry past its TTL; such reads are misses but
	// are not included in Misses (gets = hits + misses + expired).
	Gets, Puts   uint64
	Hits, Misses uint64
	Expired      uint64

	// Capacity state summed over shards.
	OccupancyLines, TargetLines int

	// Controller counters summed over shards: demotions into the unmanaged
	// region, and forced managed evictions this tenant's fills caused.
	Demotions       uint64
	ForcedEvictions uint64

	// Shed counts data commands refused by the per-tenant in-flight limit
	// (serving-layer overload protection; see protocol.go).
	Shed uint64
}

// HitRate returns hits/gets in [0,1] (zero when the tenant has no gets).
func (t TenantStats) HitRate() float64 {
	if t.Gets == 0 {
		return 0
	}
	return float64(t.Hits) / float64(t.Gets)
}

// Stats is a consistent-enough snapshot of the whole service (each shard is
// snapshotted atomically; the service totals are atomics).
type Stats struct {
	Tenants []TenantStats // sorted by name

	Ops          uint64
	MGets        uint64 // MGET batch commands served by the protocol layer
	Repartitions uint64
	UMONDrains   uint64 // deferred-UMON ring drains summed over shards

	// TTL/expiry counters: reads that observed an expired entry, and the
	// background sweeper's reclaimed lines and passes summed over shards.
	// ExpHeapEntries is the current expiry-hint heap population summed over
	// shards — bounded by compaction (see sweep.go pushHint).
	Expired        uint64
	SweepLines     uint64
	SweepPasses    uint64
	ExpHeapEntries int

	// Overload counters from the protocol layer (see protocol.go).
	ConnsRejected  uint64 // connections fast-rejected with BUSY
	RequestsShed   uint64 // data commands refused by in-flight limits
	DeadlineCloses uint64 // connections reaped by read/write deadlines

	// Binary-protocol counters (see binproto.go).
	BinConns       uint64 // connections that negotiated binary framing
	BinConnsActive int64  // currently open binary connections
	BinFrames      uint64 // binary request frames dispatched
	BmgetKeys      uint64 // keys carried by BMGET multi-key frames

	// Cluster state (see cluster.go). ClusterPeers is 0 when no cluster
	// handler is installed; ClusterRegistryVersion converges across peers.
	ClusterPeers           int
	ClusterRegistryVersion uint64
	ClusterRehomedKeys     uint64 // keys drained to peers on membership changes
	ClusterRehomedIn       uint64 // keys received from draining peers

	// Request-latency histogram (Config.TrackLatency): log2 bucket counts
	// (see latency.go for bounds) and the running sum. Nil when disabled.
	LatencyCounts []uint64
	LatencySumNS  uint64

	Shards, LinesPerShard, TotalLines int
	StoreEntries                      int
	UnmanagedLines                    int
	Uptime                            time.Duration
}

// Stats snapshots the service.
func (s *Service) Stats() Stats {
	st := Stats{
		Ops:                    s.ops.Load(),
		MGets:                  s.mgets.Load(),
		ConnsRejected:          s.connsRejected.Load(),
		RequestsShed:           s.requestsShed.Load(),
		DeadlineCloses:         s.deadlineCloses.Load(),
		BinConns:               s.binConnsTotal.Load(),
		BinConnsActive:         s.binConns.Load(),
		BinFrames:              s.binFrames.Load(),
		BmgetKeys:              s.bmgetKeys.Load(),
		Repartitions:           s.repartitions.Load(),
		Expired:                s.expired.Load(),
		ClusterRegistryVersion: s.clusterVersion.Load(),
		ClusterRehomedKeys:     s.rehomedOut.Load(),
		ClusterRehomedIn:       s.rehomedIn.Load(),
		Shards:                 s.cfg.Shards,
		LinesPerShard:          s.cfg.LinesPerShard,
		TotalLines:             s.TotalLines(),
		Uptime:                 s.clk.Now().Sub(s.start),
	}
	if h := s.clusterHandler(); h != nil {
		st.ClusterPeers = h.Peers()
	}
	if s.latency != nil {
		st.LatencyCounts, st.LatencySumNS = s.latency.Snapshot()
	}

	reg := s.reg.Load()
	tenants := make([]*Tenant, 0, len(reg.tenants))
	for _, t := range reg.tenants {
		tenants = append(tenants, t)
	}
	sort.Slice(tenants, func(i, j int) bool { return tenants[i].name < tenants[j].name })

	// Per-partition sums over shards, one snapshot call per shard lock hold.
	sizes := make([]int, s.cfg.MaxTenants)
	targets := make([]int, s.cfg.MaxTenants)
	demotions := make([]uint64, s.cfg.MaxTenants)
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.snap = sh.ctl.SnapshotPartitions(sh.snap[:0])
		for p, ps := range sh.snap {
			sizes[p] += ps.Size
			targets[p] += ps.Target
			demotions[p] += ps.Demotions
		}
		st.StoreEntries += len(sh.store)
		st.UnmanagedLines += sh.ctl.UnmanagedSize()
		st.SweepLines += sh.sweepLines
		st.SweepPasses += sh.sweepPasses
		st.ExpHeapEntries += len(sh.exph)
		sh.mu.Unlock()
		sh.umu.Lock()
		st.UMONDrains += sh.drains
		sh.umu.Unlock()
	}

	for _, t := range tenants {
		st.Tenants = append(st.Tenants, TenantStats{
			Name:            t.name,
			Partition:       t.part,
			Gets:            t.gets.Load(),
			Puts:            t.puts.Load(),
			Hits:            t.hits.Load(),
			Misses:          t.misses.Load(),
			Expired:         t.expired.Load(),
			OccupancyLines:  sizes[t.part],
			TargetLines:     targets[t.part],
			Demotions:       demotions[t.part],
			ForcedEvictions: t.forced.Load(),
			Shed:            t.shed.Load(),
		})
	}
	return st
}

// TenantStats returns one tenant's snapshot.
func (s *Service) TenantStats(name string) (TenantStats, error) {
	if _, err := s.tenant(name); err != nil {
		return TenantStats{}, err
	}
	for _, ts := range s.Stats().Tenants {
		if ts.Name == name {
			return ts, nil
		}
	}
	return TenantStats{}, fmt.Errorf("service: unknown tenant %q", name)
}

// MetricsHandler returns an http.Handler exporting the service's state in
// Prometheus text exposition format, for a /metrics endpoint.
func (s *Service) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var b strings.Builder
		writeMetrics(&b, s.Stats())
		_, _ = w.Write([]byte(b.String()))
	})
}

// writeMetrics renders st in Prometheus text format.
func writeMetrics(b *strings.Builder, st Stats) {
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("vantaged_ops_total", "Requests served (GET+PUT+DEL).", st.Ops)
	counter("vantaged_mgets_total", "MGET batch commands served.", st.MGets)
	counter("vantaged_conns_rejected_total", "Connections fast-rejected with BUSY at the connection cap.", st.ConnsRejected)
	counter("vantaged_requests_shed_total", "Data commands refused by in-flight limits.", st.RequestsShed)
	counter("vantaged_deadline_closes_total", "Connections reaped by read/write deadlines.", st.DeadlineCloses)
	counter("vantaged_repartitions_total", "Online UCP repartitionings.", st.Repartitions)
	counter("vantaged_umon_drains_total", "Deferred-UMON ring drains.", st.UMONDrains)
	counter("vantaged_expired_total", "Reads and touches that found an expired entry.", st.Expired)
	counter("vantaged_sweep_lines_total", "Expired entries reclaimed by the background sweeper.", st.SweepLines)
	counter("vantaged_sweep_passes_total", "Expiry sweep passes executed.", st.SweepPasses)
	counter("vantaged_bin_conns_total", "Connections that negotiated binary framing.", st.BinConns)
	counter("vantaged_bin_frames_total", "Binary request frames dispatched.", st.BinFrames)
	counter("vantaged_bmget_keys_total", "Keys carried by BMGET multi-key frames.", st.BmgetKeys)
	gauge("vantaged_bin_conns_active", "Currently open binary connections.", float64(st.BinConnsActive))
	gauge("vantaged_exp_heap_entries", "Expiry-hint heap entries across shards.", float64(st.ExpHeapEntries))
	gauge("vantaged_shards", "Cache shards.", float64(st.Shards))
	gauge("vantaged_cache_lines", "Total capacity in lines.", float64(st.TotalLines))
	gauge("vantaged_store_entries", "Values currently stored.", float64(st.StoreEntries))
	gauge("vantaged_unmanaged_lines", "Lines in the unmanaged regions.", float64(st.UnmanagedLines))
	gauge("vantaged_tenants", "Registered tenants.", float64(len(st.Tenants)))
	gauge("vantaged_uptime_seconds", "Seconds since start.", st.Uptime.Seconds())
	gauge("vantaged_cluster_peers", "Cluster peers this node replicates to (0 outside cluster mode).", float64(st.ClusterPeers))
	gauge("vantaged_cluster_registry_version", "Replicated tenant-registry version (converges across peers).", float64(st.ClusterRegistryVersion))
	counter("vantaged_cluster_rehomed_keys_total", "Keys drained to peers on membership changes.", st.ClusterRehomedKeys)
	counter("vantaged_cluster_rehomed_in_keys_total", "Keys received from draining peers.", st.ClusterRehomedIn)
	if st.LatencyCounts != nil {
		name := "vantaged_request_latency_seconds"
		fmt.Fprintf(b, "# HELP %s Request service time (text dispatch and binary shard execution).\n# TYPE %s histogram\n", name, name)
		var cum uint64
		for i, c := range st.LatencyCounts {
			cum += c
			if i == len(st.LatencyCounts)-1 {
				fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
			} else {
				fmt.Fprintf(b, "%s_bucket{le=\"%g\"} %d\n", name, float64(latencyBucketUpperNS(i))/1e9, cum)
			}
		}
		fmt.Fprintf(b, "%s_sum %g\n", name, float64(st.LatencySumNS)/1e9)
		fmt.Fprintf(b, "%s_count %d\n", name, cum)
	}

	perTenant := []struct {
		name, help, typ string
		value           func(t TenantStats) float64
	}{
		{"vantaged_tenant_gets_total", "GET requests by tenant.", "counter", func(t TenantStats) float64 { return float64(t.Gets) }},
		{"vantaged_tenant_puts_total", "PUT requests by tenant.", "counter", func(t TenantStats) float64 { return float64(t.Puts) }},
		{"vantaged_tenant_hits_total", "GET hits by tenant.", "counter", func(t TenantStats) float64 { return float64(t.Hits) }},
		{"vantaged_tenant_misses_total", "GET misses by tenant.", "counter", func(t TenantStats) float64 { return float64(t.Misses) }},
		{"vantaged_tenant_expired_total", "Reads and touches that found an expired entry, by tenant.", "counter", func(t TenantStats) float64 { return float64(t.Expired) }},
		{"vantaged_tenant_hit_ratio", "Lifetime hit ratio by tenant.", "gauge", func(t TenantStats) float64 { return t.HitRate() }},
		{"vantaged_tenant_occupancy_lines", "Actual partition size by tenant.", "gauge", func(t TenantStats) float64 { return float64(t.OccupancyLines) }},
		{"vantaged_tenant_target_lines", "Vantage capacity target by tenant.", "gauge", func(t TenantStats) float64 { return float64(t.TargetLines) }},
		{"vantaged_tenant_demotions_total", "Lines demoted to the unmanaged region by tenant.", "counter", func(t TenantStats) float64 { return float64(t.Demotions) }},
		{"vantaged_tenant_forced_managed_evictions_total", "Forced managed evictions caused by tenant fills.", "counter", func(t TenantStats) float64 { return float64(t.ForcedEvictions) }},
		{"vantaged_tenant_shed_total", "Data commands refused by the per-tenant in-flight limit.", "counter", func(t TenantStats) float64 { return float64(t.Shed) }},
	}
	for _, m := range perTenant {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.typ)
		for _, t := range st.Tenants {
			fmt.Fprintf(b, "%s{tenant=%q} %g\n", m.name, t.Name, m.value(t))
		}
	}
}
