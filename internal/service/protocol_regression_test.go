package service

import (
	"strings"
	"testing"
	"time"
)

// TestPutBadArityDrainsPayload covers the PUT stream-desync bug: a PUT with
// a parseable <bytes> but a malformed tail (5 fields — a bare EXPIRE — or
// 7+ fields) still has its declared value block on the wire. Before the fix
// the usage error returned without draining it, so the payload bytes were
// parsed as the next command and every later response on the connection
// answered the wrong request. After the fix the block is drained whenever
// <bytes> parses, and the next pipelined command answers correctly.
func TestPutBadArityDrainsPayload(t *testing.T) {
	_, srv := newTestServer(t)
	c := dialTest(t, srv.Addr().String())
	c.expect("TENANT ADD alice", "OK 0")

	const usage = "ERR usage: PUT <tenant> <key> <bytes> [EXPIRE <ms>]"

	// Arity 5: "EXPIRE" with no operand. The 5-byte payload is on the wire
	// and the pipelined PING behind it must answer PONG, not be eaten.
	c.sendRaw("PUT alice k 5 EXPIRE\r\nhello\r\nPING\r\n")
	if got := c.line(); got != usage {
		t.Fatalf("arity-5 PUT: got %q want %q", got, usage)
	}
	if got := c.line(); got != "PONG" {
		t.Fatalf("pipelined command after arity-5 PUT answered %q — stream desynced", got)
	}

	// Arity 7: trailing junk after a valid EXPIRE clause.
	c.sendRaw("PUT alice k 5 EXPIRE 10 junk\r\nhello\r\nPING\r\n")
	if got := c.line(); got != usage {
		t.Fatalf("arity-7 PUT: got %q want %q", got, usage)
	}
	if got := c.line(); got != "PONG" {
		t.Fatalf("pipelined command after arity-7 PUT answered %q — stream desynced", got)
	}

	// The connection is fully healthy: a valid PUT/GET round-trips, and the
	// malformed PUTs stored nothing.
	c.sendRaw("PUT alice k 2\r\nok\r\n")
	if got := c.line(); got != "STORED" {
		t.Fatalf("PUT after drained errors: %q", got)
	}
	c.expect("DEL alice k", "DELETED")
}

// TestExpiryHeapBoundedHotOverwrite covers the expiry-heap growth bug:
// every TTL'd overwrite (and every TOUCH) pushes a fresh hint, and before
// the fix the stale hints for dead deadlines stayed until their moment
// came up in the sweep — a hot key rewritten with a long TTL grew the heap
// without bound. Compaction now keeps the heap at O(live TTL'd entries):
// after any number of overwrites of one key, the invariant
// len(heap) <= 2*len(store)+64 holds.
func TestExpiryHeapBoundedHotOverwrite(t *testing.T) {
	svc := newTestService(t, Config{Shards: 1, LinesPerShard: 512, MaxTenants: 2, Seed: 41})
	if _, err := svc.AddTenant("alice"); err != nil {
		t.Fatal(err)
	}
	val := []byte("v")

	// One hot key, rewritten with a far-future TTL tens of thousands of
	// times. Pre-fix this leaves ~50000 heap entries; post-fix a handful.
	for i := 0; i < 50000; i++ {
		if err := svc.PutTTL("alice", "hot", val, time.Hour); err != nil {
			t.Fatal(err)
		}
	}
	st := svc.Stats()
	if bound := 2*st.StoreEntries + 64; st.ExpHeapEntries > bound {
		t.Fatalf("heap grew to %d entries for %d stored values (bound %d): stale hints survive overwrites",
			st.ExpHeapEntries, st.StoreEntries, bound)
	}

	// TOUCH churn on the same key obeys the same bound.
	for i := 0; i < 50000; i++ {
		if ok, err := svc.Touch("alice", "hot", time.Hour); err != nil || !ok {
			t.Fatalf("Touch = %v, %v", ok, err)
		}
	}
	st = svc.Stats()
	if bound := 2*st.StoreEntries + 64; st.ExpHeapEntries > bound {
		t.Fatalf("heap grew to %d entries under TOUCH churn (bound %d)", st.ExpHeapEntries, bound)
	}

	// The survivors are real: the hot key still expires. Sanity-check the
	// deadline ordering survived compaction by re-PUTting with a short TTL
	// and reading through the lazy-expiry path after it lapses.
	if err := svc.PutTTL("alice", "hot", val, time.Nanosecond); err != nil {
		t.Fatal(err)
	}
	time.Sleep(time.Millisecond)
	if _, hit, err := svc.Get("alice", "hot"); err != nil || hit {
		t.Fatalf("expired hot key: hit=%v err=%v", hit, err)
	}
}

// TestReadLineBoundary covers the long-line cap off-by-a-chunk bug: the
// fallback path checked the cap only after appending each 16 KiB chunk and
// never on the success path, accepting lines up to maxLineLen+16KiB-1.
// The boundary contract: exactly maxLineLen is accepted (one response, the
// connection lives), maxLineLen+1 draws "ERR line too long" and a close.
func TestReadLineBoundary(t *testing.T) {
	_, srv := newTestServer(t)

	mkLine := func(n int) string {
		const prefix = "GET alice "
		return prefix + strings.Repeat("k", n-len(prefix))
	}

	// Exactly at the cap: the command is parsed and answered (the huge key
	// simply misses), and the connection keeps working.
	c := dialTest(t, srv.Addr().String())
	c.expect("TENANT ADD alice", "OK 0")
	c.sendRaw(mkLine(maxLineLen) + "\r\n")
	if got := c.line(); got == "ERR line too long" {
		t.Fatalf("line of exactly maxLineLen rejected: %q", got)
	}
	c.expect("PING", "PONG")

	// One byte over: rejected by name, then closed.
	c2 := dialTest(t, srv.Addr().String())
	c2.sendRaw(mkLine(maxLineLen+1) + "\r\n")
	if got := c2.line(); got != "ERR line too long" {
		t.Fatalf("line of maxLineLen+1: got %q want %q", got, "ERR line too long")
	}
	if _, err := c2.r.ReadString('\n'); err == nil {
		t.Fatal("connection left open after oversized line")
	}
}
