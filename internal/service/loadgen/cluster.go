package loadgen

import (
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"vantage/internal/cluster"
)

// Cluster-mode load generation: when Options.ClusterAddrs is set, every
// connection becomes a ring-aware client — it owns one real connection per
// node and routes each key to its owner with the same consistent-hash ring
// the nodes use, the way a production smart client would. The workload
// loops, chaos accounting and redial logic in loadgen.go are untouched:
// the ring client implements the same proto interface as a single
// connection, so a "connection" in the results means one ring client
// (whose member connections live and die together).

// dialRing eagerly dials one protocol connection to every member. Eager,
// not lazy, so BUSY rejects surface at dial time where dialChaos's retry
// and yield policy applies, exactly as in solo mode.
func dialRing(o Options, tenant string) (proto, error) {
	ring := o.ring
	rp := &ringProto{ring: ring, conns: make(map[string]batchProto, len(ring.Members()))}
	for _, addr := range ring.Members() {
		so := o
		so.Addr = addr
		c, err := dialProtoSolo(so, tenant)
		if err != nil {
			rp.close()
			return nil, err
		}
		rp.conns[addr] = c
	}
	return rp, nil
}

type ringProto struct {
	ring  *cluster.Ring
	conns map[string]batchProto
}

func (rp *ringProto) close() {
	for _, c := range rp.conns {
		c.close()
	}
}

func (rp *ringProto) get(tenant, key string) (bool, error) {
	return rp.conns[rp.ring.Owner(tenant, key)].get(tenant, key)
}

func (rp *ringProto) put(tenant, key string, val []byte, ttlMS int) error {
	return rp.conns[rp.ring.Owner(tenant, key)].put(tenant, key, val, ttlMS)
}

// mget splits the batch by owner and pipelines the scatter: every owner's
// sub-batch is written (and flushed) before any response is read, so the
// nodes execute concurrently and the whole batch costs one round-trip of
// latency instead of one per owner. Responses are then drained in member
// order — all of them, even after an error, because every sent sub-batch
// has responses in flight and skipping one would desync that connection.
// hits/seen/missBuf accumulate across sub-batches and the first error
// surfaces, matching the sequential semantics.
func (rp *ringProto) mget(tenant string, keys []string, missBuf []string) (hits, seen int, _ []string, _ error) {
	byOwner := make(map[string][]string)
	for _, k := range keys {
		owner := rp.ring.Owner(tenant, k)
		byOwner[owner] = append(byOwner[owner], k)
	}
	type pend struct {
		addr string
		sub  []string
		tok  uint32
	}
	var pends []pend
	var firstErr error
	for _, addr := range rp.ring.Members() {
		sub := byOwner[addr]
		if len(sub) == 0 {
			continue
		}
		tok, err := rp.conns[addr].mgetSend(tenant, sub)
		if err != nil {
			firstErr = err
			break // transport loss; drain what was already sent
		}
		pends = append(pends, pend{addr: addr, sub: sub, tok: tok})
	}
	for _, p := range pends {
		h, s, mb, err := rp.conns[p.addr].mgetRecv(p.tok, tenant, p.sub, missBuf)
		hits += h
		seen += s
		missBuf = mb
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return hits, seen, missBuf, firstErr
}

// putPipelined splits the fill batch by owner, preserving each key's TTL,
// with the same pipelined scatter as mget: all sub-batches are written
// before any response is read, then every sent sub-batch is drained.
func (rp *ringProto) putPipelined(tenant string, keys []string, val []byte, ttls []int, chaos bool, tr *TenantResult) (stored uint64, _ error) {
	type sub struct {
		keys []string
		ttls []int
	}
	byOwner := make(map[string]*sub)
	for i, k := range keys {
		owner := rp.ring.Owner(tenant, k)
		g := byOwner[owner]
		if g == nil {
			g = &sub{}
			byOwner[owner] = g
		}
		g.keys = append(g.keys, k)
		if len(ttls) > i {
			g.ttls = append(g.ttls, ttls[i])
		} else {
			g.ttls = append(g.ttls, -1)
		}
	}
	type pend struct {
		addr string
		n    int
		tok  uint32
	}
	var pends []pend
	var firstErr error
	for _, addr := range rp.ring.Members() {
		g := byOwner[addr]
		if g == nil {
			continue
		}
		tok, err := rp.conns[addr].putSend(tenant, g.keys, val, g.ttls)
		if err != nil {
			firstErr = err
			break
		}
		pends = append(pends, pend{addr: addr, n: len(g.keys), tok: tok})
	}
	for _, p := range pends {
		st, err := rp.conns[p.addr].putRecv(p.tok, p.n, chaos, tr)
		stored += st
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return stored, firstErr
}

// churner drives tenant-registry churn alongside a run: a rotating
// add/remove cycle over ChurnTenants synthetic tenants, each op issued to
// a different node round-robin so replication is exercised in every
// direction. Errors are tolerated (the run may be overloading the nodes on
// purpose); the op only counts when the node acknowledged it.
type churner struct {
	addrs    []string
	interval time.Duration
	tenants  int

	ops  atomic.Uint64
	stop chan struct{}
	wg   sync.WaitGroup
}

func startChurner(addrs []string, tenants int, interval time.Duration) *churner {
	ch := &churner{addrs: addrs, interval: interval, tenants: tenants, stop: make(chan struct{})}
	ch.wg.Add(1)
	go ch.loop()
	return ch
}

func (ch *churner) halt() uint64 {
	close(ch.stop)
	ch.wg.Wait()
	return ch.ops.Load()
}

func (ch *churner) loop() {
	defer ch.wg.Done()
	conns := make(map[string]*client)
	defer func() {
		for _, c := range conns {
			c.close()
		}
	}()
	ticker := time.NewTicker(ch.interval)
	defer ticker.Stop()
	for i := 0; ; i++ {
		select {
		case <-ch.stop:
			return
		case <-ticker.C:
		}
		addr := ch.addrs[i%len(ch.addrs)]
		var line string
		// Two adds per remove keeps churned tenants mostly present, so
		// replication races surface as registry divergence, not absence.
		// The remove targets the tenant added two ticks earlier — the
		// ADD-tick indices and DEL-tick indices otherwise never coincide
		// whenever tenants is a multiple of 3, and the removal replication
		// path would go unexercised.
		if i%3 == 2 {
			line = "TENANT DEL churn-" + strconv.Itoa((i-2)%ch.tenants)
		} else {
			line = "TENANT ADD churn-" + strconv.Itoa(i%ch.tenants)
		}
		c := conns[addr]
		if c == nil {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				continue
			}
			c = newRawClient(conn)
			conns[addr] = c
		}
		resp, err := c.roundTrip(line)
		if err != nil {
			c.close()
			delete(conns, addr)
			continue
		}
		// "OK ..." acknowledges; "ERR unknown tenant" on a DEL that raced
		// another DEL is benign and still exercised the registry path.
		if len(resp) >= 2 && resp[:2] == "OK" {
			ch.ops.Add(1)
		}
	}
}
