// Package loadgen replays internal/workload application models as
// concurrent tenants against a vantaged server, over the real TCP protocol,
// so Vantage's isolation and the service's throughput are measurable
// end-to-end.
//
// Each tenant runs one or more connections; each connection owns a
// deterministic workload.App and drives the cache-aside pattern: GET the
// app's next line address as a key, and on a MISS, PUT the value (the
// "fetch from origin and fill" step). Per-tenant hit rates therefore mirror
// the cache hit rates the simulator would measure for the same app — which
// is what makes the isolation experiment (cache-friendly tenant vs.
// thrashing co-runner) meaningful on live traffic.
package loadgen

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vantage/internal/cluster"
	"vantage/internal/workload"
)

// Overload signals a chaos-mode run classifies instead of failing on.
// They mirror the server's degrade-don't-collapse responses (see
// internal/service/protocol.go "Overload behavior").
var (
	// ErrBusy: the server fast-rejected the connection at its -max-conns cap.
	ErrBusy = errors.New("loadgen: connection rejected (BUSY)")
	// ErrShed: a data command was refused by an in-flight limit.
	ErrShed = errors.New("loadgen: request shed")
	// ErrInjected: the server's fault injector failed the command.
	ErrInjected = errors.New("loadgen: injected fault")
)

// CategoryApp builds one Table 3 category's address-stream model scaled to
// a cache of cacheLines lines. Unlike workload.NewApp (whose burst
// parameter models word accesses within a line that a private L1 would
// absorb), these run with burst 1 and no instruction gaps: cache clients
// have no L1, so every generated reference reaches the service.
func CategoryApp(cat workload.Category, cacheLines int, seed uint64) workload.App {
	L := cacheLines
	if L < 64 {
		L = 64
	}
	switch cat {
	case workload.Insensitive:
		return workload.NewZipfApp(cat, L/32, 0.8, 0, 1, seed)
	case workload.Friendly:
		return workload.NewZipfApp(cat, 2*L, 0.5, 0, 1, seed)
	case workload.Fitting:
		return workload.NewScanApp(cat, L*8/10, 0, 1, seed)
	case workload.Thrashing:
		return workload.NewStreamApp(64*L, 0, 1, seed)
	}
	panic("loadgen: unknown category")
}

// TTLMode selects how a tenant's fill PUTs carry expiry.
type TTLMode int

const (
	// TTLNone: fills carry no EXPIRE clause (the server's default TTL, if
	// any, applies).
	TTLNone TTLMode = iota
	// TTLUniform: each selected fill expires TTL after it is stored — the
	// steady TTL-churn workload.
	TTLUniform
	// TTLStorm: each selected fill expires at the same absolute instant,
	// run start + TTL — the whole working set dies in one window, the
	// mass-expiry transient the sweeper and repartitioner must absorb.
	TTLStorm
)

// Tenant describes one load-generating tenant.
type Tenant struct {
	// Name is the tenant name (registered with TENANT ADD; idempotent).
	Name string
	// MakeApp builds the address-stream model for connection conn
	// (0-based). Connections need distinct App instances: models are not
	// safe for concurrent use.
	MakeApp func(conn int) workload.App
	// Conns is the number of concurrent connections (default 1).
	Conns int

	// TTLMode, TTL and TTLFrac attach expiry to this tenant's fill PUTs:
	// TTLFrac (default 1) is the fraction of fills carrying an EXPIRE
	// clause, selected deterministically so every run with the same
	// parameters marks the same fills.
	TTLMode TTLMode
	TTL     time.Duration
	TTLFrac float64
}

// nextTTLMS returns the EXPIRE argument in milliseconds for this tenant's
// next fill, or -1 when the fill carries none. fills counts the
// connection's TTL-eligible fills so far and is advanced by the call.
func (spec Tenant) nextTTLMS(o Options, fills *uint64) int {
	if spec.TTLMode == TTLNone || spec.TTL <= 0 {
		return -1
	}
	frac := spec.TTLFrac
	if frac <= 0 || frac > 1 {
		frac = 1
	}
	n := *fills
	*fills = n + 1
	// Every fill where the scaled counter crosses an integer is selected:
	// a uniform frac-of-fills pattern with no RNG state.
	if uint64(float64(n+1)*frac) == uint64(float64(n)*frac) {
		return -1
	}
	var ms int64
	switch spec.TTLMode {
	case TTLUniform:
		ms = spec.TTL.Milliseconds()
	case TTLStorm:
		ms = time.Until(o.start.Add(spec.TTL)).Milliseconds()
	}
	if ms < 1 {
		ms = 1 // already-due deadlines still get a valid EXPIRE clause
	}
	return int(ms)
}

// Options configures a load-generation run.
type Options struct {
	// Addr is the vantaged TCP address, e.g. "127.0.0.1:7171".
	Addr string
	// Tenants are the concurrent tenants to replay.
	Tenants []Tenant
	// OpsPerConn is the number of GET(+fill) operations per connection.
	OpsPerConn int
	// ValueSize is the PUT value size in bytes (default 64).
	ValueSize int
	// Batch is the number of keys per MGET command (default 1: plain GETs,
	// one synchronous round trip per operation). With Batch > 1 each round
	// trip carries one MGET of Batch keys, and the fills for that batch's
	// misses are pipelined PUTs sharing a single flush — the protocol's
	// deferred-flush dispatcher answers them in one write.
	Batch int
	// Chaos makes the run overload-tolerant: BUSY connection rejects, shed
	// replies, injected faults, and dropped connections are counted in the
	// per-tenant results and the run continues (reconnecting as needed)
	// instead of aborting on the first error. BUSY dials are retried a few
	// times with backoff; a connection that is still rejected gives up its
	// budget rather than hammering an overloaded server.
	Chaos bool
	// Binary speaks the length-prefixed binary protocol instead of the text
	// one: each connection negotiates with the 4-byte preamble, then every
	// operation is one frame. Batch > 1 pipelines Batch GET frames per flush
	// (the binary analogue of MGET) and the fill PUTs share one flush the
	// same way. Overload semantics are identical: BUSY at dial time surfaces
	// as ErrBusy (the reject line is not a valid preamble ack), shed frames
	// as ErrShed, injected faults as ErrInjected.
	Binary bool
	// BMGet batches reads as one BMGET multi-key frame per batch instead of
	// Batch pipelined GET frames — one request frame and one coalesced
	// response frame per batch. Implies Binary. Per-key shed statuses
	// surface as ErrShed exactly like a shed GET frame in the batch.
	BMGet bool

	// ClusterAddrs switches the run to cluster mode: every "connection"
	// becomes a ring-aware client that routes each key to its owner among
	// these node addresses (Addr is then ignored). See cluster.go.
	ClusterAddrs []string
	// VNodes is the ring's virtual-node count (0 = cluster.DefaultVNodes).
	// It must match the nodes' own -vnodes setting or routing diverges.
	VNodes int

	// ChurnTenants > 0 runs a registry churner alongside the workload: a
	// rotating TENANT ADD/DEL cycle over this many synthetic tenants, one
	// op per ChurnInterval, spread round-robin across the nodes so
	// replication is driven from every origin.
	ChurnTenants int
	// ChurnInterval is the delay between churn ops (default 10ms).
	ChurnInterval time.Duration

	// start is the run's t0, recorded by Run so TTLStorm tenants can aim
	// every fill at the same absolute deadline.
	start time.Time
	// ring is the cluster-mode routing ring, built once by Run.
	ring *cluster.Ring
}

// TenantResult is one tenant's aggregate outcome.
type TenantResult struct {
	Name               string
	Gets, Hits, Misses uint64
	Puts               uint64
	Errors             uint64

	// Chaos-mode overload accounting (zero outside chaos runs).
	Rejected uint64 // connections refused with BUSY (one per rejected dial)
	Shed     uint64 // commands refused by in-flight limits ("ERR SHED")
	Injected uint64 // commands failed by the fault injector ("ERR FAULT")
	Dropped  uint64 // connection losses: drop faults or server deadline closes
}

// HitRate returns hits/gets in [0,1].
func (t TenantResult) HitRate() float64 {
	if t.Gets == 0 {
		return 0
	}
	return float64(t.Hits) / float64(t.Gets)
}

// Result is the outcome of a run.
type Result struct {
	Tenants []TenantResult
	// Ops is the total operation count (gets + puts) across tenants.
	Ops       uint64
	Elapsed   time.Duration
	OpsPerSec float64

	// Totals of the chaos-mode counters across tenants.
	Rejected, Shed, Injected, Dropped uint64

	// ChurnOps is the number of acknowledged registry churn operations
	// (zero unless Options.ChurnTenants was set).
	ChurnOps uint64
}

// Run executes the configured load against the server and blocks until
// every connection finishes its budget.
func Run(o Options) (Result, error) {
	if o.Addr == "" && len(o.ClusterAddrs) == 0 {
		return Result{}, fmt.Errorf("loadgen: no server address")
	}
	if o.BMGet {
		o.Binary = true // BMGET is a binary opcode
	}
	if len(o.ClusterAddrs) > 0 {
		vn := o.VNodes
		if vn <= 0 {
			vn = cluster.DefaultVNodes
		}
		ring, err := cluster.NewRing(o.ClusterAddrs, vn)
		if err != nil {
			return Result{}, err
		}
		o.ring = ring
	}
	if o.OpsPerConn <= 0 {
		o.OpsPerConn = 10000
	}
	if o.ValueSize <= 0 {
		o.ValueSize = 64
	}
	var churn *churner
	if o.ChurnTenants > 0 {
		interval := o.ChurnInterval
		if interval <= 0 {
			interval = 10 * time.Millisecond
		}
		addrs := o.ClusterAddrs
		if len(addrs) == 0 {
			addrs = []string{o.Addr}
		}
		churn = startChurner(addrs, o.ChurnTenants, interval)
	}
	counters := make([]TenantResult, len(o.Tenants))
	var wg sync.WaitGroup
	var firstErr atomic.Value
	start := time.Now()
	o.start = start
	for ti := range o.Tenants {
		t := o.Tenants[ti]
		conns := t.Conns
		if conns <= 0 {
			conns = 1
		}
		counters[ti].Name = t.Name
		for ci := 0; ci < conns; ci++ {
			wg.Add(1)
			go func(tr *TenantResult, spec Tenant, conn int) {
				defer wg.Done()
				if err := runConn(o, tr, spec, conn); err != nil {
					atomic.AddUint64(&tr.Errors, 1)
					firstErr.CompareAndSwap(nil, err)
				}
			}(&counters[ti], t, ci)
		}
	}
	wg.Wait()
	res := Result{Tenants: counters, Elapsed: time.Since(start)}
	if churn != nil {
		res.ChurnOps = churn.halt()
	}
	for i := range counters {
		res.Ops += counters[i].Gets + counters[i].Puts
		res.Rejected += counters[i].Rejected
		res.Shed += counters[i].Shed
		res.Injected += counters[i].Injected
		res.Dropped += counters[i].Dropped
	}
	if res.Elapsed > 0 {
		res.OpsPerSec = float64(res.Ops) / res.Elapsed.Seconds()
	}
	if err, ok := firstErr.Load().(error); ok {
		return res, err
	}
	return res, nil
}

// busyRetries is how many times a chaos-mode dial retries a BUSY reject
// (with backoff) before the connection gives up its budget.
const busyRetries = 3

// proto is the per-connection client surface runConn drives; the text
// client and the binary client (binclient.go) both satisfy it, so the
// workload loops, chaos accounting, and redial logic are shared verbatim
// across the two wire protocols.
type proto interface {
	get(tenant, key string) (bool, error)
	put(tenant, key string, val []byte, ttlMS int) error
	mget(tenant string, keys []string, missBuf []string) (hits, seen int, _ []string, _ error)
	putPipelined(tenant string, keys []string, val []byte, ttls []int, chaos bool, tr *TenantResult) (stored uint64, _ error)
	close()
}

// batchProto is a proto whose batch operations split into a send phase and
// a receive phase. The ring client uses the split to truly pipeline a
// scattered batch: it writes every owner's sub-batch before reading any
// response, so the nodes work concurrently and the batch costs one
// round-trip of latency instead of one per owner. The token returned by a
// send is handed back to the matching recv (the binary client's base
// request id; the text client has no use for it).
type batchProto interface {
	proto
	mgetSend(tenant string, keys []string) (uint32, error)
	mgetRecv(tok uint32, tenant string, keys []string, missBuf []string) (hits, seen int, _ []string, _ error)
	putSend(tenant string, keys []string, val []byte, ttls []int) (uint32, error)
	putRecv(tok uint32, n int, chaos bool, tr *TenantResult) (stored uint64, _ error)
}

// dialProto connects with the run's selected wire protocol — a ring
// client in cluster mode, a single connection otherwise.
func dialProto(o Options, tenant string) (proto, error) {
	if o.ring != nil {
		return dialRing(o, tenant)
	}
	return dialProtoSolo(o, tenant)
}

// dialProtoSolo connects to o.Addr with the selected wire protocol.
func dialProtoSolo(o Options, tenant string) (batchProto, error) {
	if o.Binary {
		return dialBin(o.Addr, tenant, o.BMGet)
	}
	return dial(o.Addr, tenant)
}

// dialChaos dials with the run's overload policy. In chaos mode a BUSY
// reject is counted and retried with backoff; exhausting the retries
// returns ErrBusy, which callers treat as "this connection yields" rather
// than a run failure.
func dialChaos(o Options, tr *TenantResult, tenant string) (proto, error) {
	var err error
	for attempt := 0; ; attempt++ {
		var c proto
		c, err = dialProto(o, tenant)
		if err == nil {
			return c, nil
		}
		if !o.Chaos || !errors.Is(err, ErrBusy) {
			return nil, err
		}
		atomic.AddUint64(&tr.Rejected, 1)
		if attempt >= busyRetries {
			return nil, ErrBusy
		}
		time.Sleep(time.Duration(attempt+1) * 10 * time.Millisecond)
	}
}

// chaosOpErr folds one failed command into the chaos counters. It returns
// reconnect=true when the error means the connection is gone (a drop fault
// or a server deadline close) and the worker should redial, and fatal
// non-nil when the error is a real protocol failure that should end the run
// even in chaos mode.
func chaosOpErr(err error, tr *TenantResult) (reconnect bool, fatal error) {
	switch {
	case errors.Is(err, ErrShed):
		atomic.AddUint64(&tr.Shed, 1)
		return false, nil
	case errors.Is(err, ErrInjected):
		atomic.AddUint64(&tr.Injected, 1)
		return false, nil
	case isConnErr(err):
		atomic.AddUint64(&tr.Dropped, 1)
		return true, nil
	default:
		return false, err
	}
}

// isConnErr reports whether err is a transport-level loss (EOF, reset,
// timeout) rather than a protocol reply.
func isConnErr(err error) bool {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	var oe *net.OpError
	return errors.As(err, &oe)
}

// runConn drives one connection's operation budget.
func runConn(o Options, tr *TenantResult, spec Tenant, conn int) error {
	c, err := dialChaos(o, tr, spec.Name)
	if err != nil {
		if o.Chaos && errors.Is(err, ErrBusy) {
			return nil // rejected conns yield; the Rejected counter has the story
		}
		return err
	}
	defer func() { c.close() }()
	app := spec.MakeApp(conn)
	val := make([]byte, o.ValueSize)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	if o.Batch > 1 {
		return runConnBatched(o, tr, spec, app, c, val)
	}
	var fills uint64
	// redial replaces the connection after a drop; it reports whether the
	// worker can keep going.
	redial := func() (bool, error) {
		c.close()
		nc, err := dialChaos(o, tr, spec.Name)
		if err != nil {
			if errors.Is(err, ErrBusy) {
				return false, nil
			}
			return false, err
		}
		c = nc
		return true, nil
	}
	for i := 0; i < o.OpsPerConn; i++ {
		_, addr := app.Next()
		key := strconv.FormatUint(addr, 16)
		hit, err := c.get(spec.Name, key)
		if err != nil {
			if !o.Chaos {
				return err
			}
			reconnect, fatal := chaosOpErr(err, tr)
			if fatal != nil {
				return fatal
			}
			if reconnect {
				ok, err := redial()
				if !ok || err != nil {
					return err
				}
			}
			continue
		}
		atomic.AddUint64(&tr.Gets, 1)
		if hit {
			atomic.AddUint64(&tr.Hits, 1)
			continue
		}
		atomic.AddUint64(&tr.Misses, 1)
		if err := c.put(spec.Name, key, val, spec.nextTTLMS(o, &fills)); err != nil {
			if !o.Chaos {
				return err
			}
			reconnect, fatal := chaosOpErr(err, tr)
			if fatal != nil {
				return fatal
			}
			if reconnect {
				ok, err := redial()
				if !ok || err != nil {
					return err
				}
			}
			continue
		}
		atomic.AddUint64(&tr.Puts, 1)
	}
	return nil
}

// runConnBatched drives the budget in MGET batches: one round trip reads
// o.Batch keys, then the misses are filled with pipelined PUTs sharing one
// flush and one response read.
func runConnBatched(o Options, tr *TenantResult, spec Tenant, app workload.App, c proto, val []byte) error {
	defer func() { c.close() }() // closes the current conn, which redial may have replaced
	keys := make([]string, 0, o.Batch)
	missed := make([]string, 0, o.Batch)
	ttls := make([]int, 0, o.Batch)
	var fills uint64
	redial := func() (bool, error) {
		c.close()
		nc, err := dialChaos(o, tr, spec.Name)
		if err != nil {
			if errors.Is(err, ErrBusy) {
				return false, nil
			}
			return false, err
		}
		c = nc
		return true, nil
	}
	for done := 0; done < o.OpsPerConn; {
		n := o.Batch
		if rest := o.OpsPerConn - done; n > rest {
			n = rest
		}
		keys = keys[:0]
		for i := 0; i < n; i++ {
			_, addr := app.Next()
			keys = append(keys, strconv.FormatUint(addr, 16))
		}
		hits, seen, missIdx, err := c.mget(spec.Name, keys, missed[:0])
		missed = missIdx
		// Responses received before a mid-batch abort are real GETs the
		// server performed and accounted; count them either way.
		atomic.AddUint64(&tr.Gets, uint64(seen))
		atomic.AddUint64(&tr.Hits, uint64(hits))
		atomic.AddUint64(&tr.Misses, uint64(seen-hits))
		if err != nil {
			if !o.Chaos {
				return err
			}
			reconnect, fatal := chaosOpErr(err, tr)
			if fatal != nil {
				return fatal
			}
			if reconnect {
				ok, err := redial()
				if !ok || err != nil {
					return err
				}
			}
			done += n // the batch's budget is spent even when it aborted
			continue
		}
		if len(missed) > 0 {
			ttls = ttls[:0]
			for range missed {
				ttls = append(ttls, spec.nextTTLMS(o, &fills))
			}
			stored, err := c.putPipelined(spec.Name, missed, val, ttls, o.Chaos, tr)
			atomic.AddUint64(&tr.Puts, stored)
			if err != nil {
				if !o.Chaos {
					return err
				}
				reconnect, fatal := chaosOpErr(err, tr)
				if fatal != nil {
					return fatal
				}
				if reconnect {
					ok, err := redial()
					if !ok || err != nil {
						return err
					}
				}
			}
		}
		done += n
	}
	return nil
}

// client is a minimal blocking protocol client over one TCP connection.
type client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// newRawClient wraps an established connection without the TENANT ADD
// handshake (the churner issues its own registry commands).
func newRawClient(conn net.Conn) *client {
	return &client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
}

// dial connects and registers the tenant.
func dial(addr, tenant string) (*client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
	resp, err := c.roundTrip("TENANT ADD " + tenant)
	if err != nil {
		conn.Close()
		// A fast-rejecting server writes BUSY and closes before reading our
		// command; depending on timing the client sees the BUSY line, an
		// EOF, or a reset. All mean the same thing at dial time.
		if isConnErr(err) {
			return nil, fmt.Errorf("%w (%v)", ErrBusy, err)
		}
		return nil, err
	}
	if resp == "BUSY" {
		conn.Close()
		return nil, ErrBusy
	}
	if !strings.HasPrefix(resp, "OK") {
		conn.Close()
		return nil, fmt.Errorf("loadgen: TENANT ADD: %s", resp)
	}
	return c, nil
}

// classifyErr maps a protocol ERR reply to its overload sentinel, or wraps
// it as a generic failure.
func classifyErr(ctx, resp string) error {
	switch {
	case strings.HasPrefix(resp, "ERR SHED"):
		return ErrShed
	case strings.HasPrefix(resp, "ERR FAULT"):
		return ErrInjected
	}
	return fmt.Errorf("loadgen: %s: %s", ctx, resp)
}

func (c *client) close() { c.conn.Close() }

// roundTrip sends one command line and reads one response line.
func (c *client) roundTrip(line string) (string, error) {
	if _, err := c.w.WriteString(line + "\r\n"); err != nil {
		return "", err
	}
	if err := c.w.Flush(); err != nil {
		return "", err
	}
	return c.readLine()
}

func (c *client) readLine() (string, error) {
	resp, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(resp, "\r\n"), nil
}

// get returns whether key hit. The value bytes are read and discarded.
func (c *client) get(tenant, key string) (bool, error) {
	resp, err := c.roundTrip("GET " + tenant + " " + key)
	if err != nil {
		return false, err
	}
	switch {
	case resp == "MISS":
		return false, nil
	case strings.HasPrefix(resp, "VALUE "):
		n, err := strconv.Atoi(resp[len("VALUE "):])
		if err != nil || n < 0 {
			return false, fmt.Errorf("loadgen: bad VALUE header %q", resp)
		}
		if _, err := io.ReadFull(c.r, make([]byte, n+2)); err != nil { // value + CRLF
			return false, err
		}
		return true, nil
	default:
		return false, classifyErr("GET", resp)
	}
}

// mget requests keys in one MGET round trip, returning the hit count, the
// number of per-key responses actually received, and the missed keys
// appended to missBuf. A server that sheds the batch or hits an injected
// fault mid-batch aborts with a single ERR line in place of the remaining
// responses and no END (the line stream stays in sync); that surfaces here
// as ErrShed/ErrInjected with seen < len(keys).
func (c *client) mget(tenant string, keys []string, missBuf []string) (hits, seen int, _ []string, _ error) {
	tok, err := c.mgetSend(tenant, keys)
	if err != nil {
		return 0, 0, missBuf, err
	}
	return c.mgetRecv(tok, tenant, keys, missBuf)
}

// mgetSend writes and flushes the MGET command line (the send phase of the
// batchProto split; the token is unused by the text protocol).
func (c *client) mgetSend(tenant string, keys []string) (uint32, error) {
	c.w.WriteString("MGET ")
	c.w.WriteString(tenant)
	c.w.WriteByte(' ')
	c.w.WriteString(strconv.Itoa(len(keys)))
	for _, k := range keys {
		c.w.WriteByte(' ')
		c.w.WriteString(k)
	}
	c.w.WriteString("\r\n")
	return 0, c.w.Flush()
}

// mgetRecv reads the MGET's per-key responses and END terminator.
func (c *client) mgetRecv(_ uint32, tenant string, keys []string, missBuf []string) (hits, seen int, _ []string, _ error) {
	for _, k := range keys {
		resp, err := c.readLine()
		if err != nil {
			return hits, seen, missBuf, err
		}
		switch {
		case resp == "MISS":
			missBuf = append(missBuf, k)
			seen++
		case strings.HasPrefix(resp, "VALUE "):
			n, err := strconv.Atoi(resp[len("VALUE "):])
			if err != nil || n < 0 {
				return hits, seen, missBuf, fmt.Errorf("loadgen: bad VALUE header %q", resp)
			}
			if _, err := c.r.Discard(n + 2); err != nil { // value + CRLF
				return hits, seen, missBuf, err
			}
			hits++
			seen++
		default:
			return hits, seen, missBuf, classifyErr("MGET", resp)
		}
	}
	resp, err := c.readLine()
	if err != nil {
		return hits, seen, missBuf, err
	}
	if resp != "END" {
		return hits, seen, missBuf, fmt.Errorf("loadgen: MGET missing END, got %q", resp)
	}
	return hits, seen, missBuf, nil
}

// putPipelined stores val under every key, writing all PUT commands before
// a single flush and then reading all responses — one round trip for the
// whole fill batch. ttls carries one EXPIRE argument in milliseconds per
// key, -1 meaning none. It returns how many PUTs the server acknowledged as
// STORED. In chaos mode, per-command shed/fault replies are folded into tr
// and the remaining responses are still drained (every PUT gets exactly one
// reply line, so the stream stays in sync).
func (c *client) putPipelined(tenant string, keys []string, val []byte, ttls []int, chaos bool, tr *TenantResult) (stored uint64, _ error) {
	tok, err := c.putSend(tenant, keys, val, ttls)
	if err != nil {
		return 0, err
	}
	return c.putRecv(tok, len(keys), chaos, tr)
}

// putSend writes and flushes the batch's PUT commands (the send phase of
// the batchProto split).
func (c *client) putSend(tenant string, keys []string, val []byte, ttls []int) (uint32, error) {
	for i, key := range keys {
		if len(ttls) > i && ttls[i] >= 0 {
			fmt.Fprintf(c.w, "PUT %s %s %d EXPIRE %d\r\n", tenant, key, len(val), ttls[i])
		} else {
			fmt.Fprintf(c.w, "PUT %s %s %d\r\n", tenant, key, len(val))
		}
		c.w.Write(val)
		c.w.WriteString("\r\n")
	}
	return 0, c.w.Flush()
}

// putRecv drains the batch's n response lines.
func (c *client) putRecv(_ uint32, n int, chaos bool, tr *TenantResult) (stored uint64, _ error) {
	for i := 0; i < n; i++ {
		resp, err := c.readLine()
		if err != nil {
			return stored, err
		}
		if resp == "STORED" {
			stored++
			continue
		}
		err = classifyErr("PUT", resp)
		if !chaos {
			return stored, err
		}
		switch {
		case errors.Is(err, ErrShed):
			atomic.AddUint64(&tr.Shed, 1)
		case errors.Is(err, ErrInjected):
			atomic.AddUint64(&tr.Injected, 1)
		default:
			return stored, err
		}
	}
	return stored, nil
}

// put stores val under key; ttlMS >= 0 attaches an EXPIRE clause.
func (c *client) put(tenant, key string, val []byte, ttlMS int) error {
	if ttlMS >= 0 {
		fmt.Fprintf(c.w, "PUT %s %s %d EXPIRE %d\r\n", tenant, key, len(val), ttlMS)
	} else {
		fmt.Fprintf(c.w, "PUT %s %s %d\r\n", tenant, key, len(val))
	}
	c.w.Write(val)
	c.w.WriteString("\r\n")
	if err := c.w.Flush(); err != nil {
		return err
	}
	resp, err := c.readLine()
	if err != nil {
		return err
	}
	if resp != "STORED" {
		return classifyErr("PUT", resp)
	}
	return nil
}
