// Package loadgen replays internal/workload application models as
// concurrent tenants against a vantaged server, over the real TCP protocol,
// so Vantage's isolation and the service's throughput are measurable
// end-to-end.
//
// Each tenant runs one or more connections; each connection owns a
// deterministic workload.App and drives the cache-aside pattern: GET the
// app's next line address as a key, and on a MISS, PUT the value (the
// "fetch from origin and fill" step). Per-tenant hit rates therefore mirror
// the cache hit rates the simulator would measure for the same app — which
// is what makes the isolation experiment (cache-friendly tenant vs.
// thrashing co-runner) meaningful on live traffic.
package loadgen

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vantage/internal/workload"
)

// CategoryApp builds one Table 3 category's address-stream model scaled to
// a cache of cacheLines lines. Unlike workload.NewApp (whose burst
// parameter models word accesses within a line that a private L1 would
// absorb), these run with burst 1 and no instruction gaps: cache clients
// have no L1, so every generated reference reaches the service.
func CategoryApp(cat workload.Category, cacheLines int, seed uint64) workload.App {
	L := cacheLines
	if L < 64 {
		L = 64
	}
	switch cat {
	case workload.Insensitive:
		return workload.NewZipfApp(cat, L/32, 0.8, 0, 1, seed)
	case workload.Friendly:
		return workload.NewZipfApp(cat, 2*L, 0.5, 0, 1, seed)
	case workload.Fitting:
		return workload.NewScanApp(cat, L*8/10, 0, 1, seed)
	case workload.Thrashing:
		return workload.NewStreamApp(64*L, 0, 1, seed)
	}
	panic("loadgen: unknown category")
}

// Tenant describes one load-generating tenant.
type Tenant struct {
	// Name is the tenant name (registered with TENANT ADD; idempotent).
	Name string
	// MakeApp builds the address-stream model for connection conn
	// (0-based). Connections need distinct App instances: models are not
	// safe for concurrent use.
	MakeApp func(conn int) workload.App
	// Conns is the number of concurrent connections (default 1).
	Conns int
}

// Options configures a load-generation run.
type Options struct {
	// Addr is the vantaged TCP address, e.g. "127.0.0.1:7171".
	Addr string
	// Tenants are the concurrent tenants to replay.
	Tenants []Tenant
	// OpsPerConn is the number of GET(+fill) operations per connection.
	OpsPerConn int
	// ValueSize is the PUT value size in bytes (default 64).
	ValueSize int
	// Batch is the number of keys per MGET command (default 1: plain GETs,
	// one synchronous round trip per operation). With Batch > 1 each round
	// trip carries one MGET of Batch keys, and the fills for that batch's
	// misses are pipelined PUTs sharing a single flush — the protocol's
	// deferred-flush dispatcher answers them in one write.
	Batch int
}

// TenantResult is one tenant's aggregate outcome.
type TenantResult struct {
	Name               string
	Gets, Hits, Misses uint64
	Puts               uint64
	Errors             uint64
}

// HitRate returns hits/gets in [0,1].
func (t TenantResult) HitRate() float64 {
	if t.Gets == 0 {
		return 0
	}
	return float64(t.Hits) / float64(t.Gets)
}

// Result is the outcome of a run.
type Result struct {
	Tenants []TenantResult
	// Ops is the total operation count (gets + puts) across tenants.
	Ops       uint64
	Elapsed   time.Duration
	OpsPerSec float64
}

// Run executes the configured load against the server and blocks until
// every connection finishes its budget.
func Run(o Options) (Result, error) {
	if o.Addr == "" {
		return Result{}, fmt.Errorf("loadgen: no server address")
	}
	if o.OpsPerConn <= 0 {
		o.OpsPerConn = 10000
	}
	if o.ValueSize <= 0 {
		o.ValueSize = 64
	}
	counters := make([]TenantResult, len(o.Tenants))
	var wg sync.WaitGroup
	var firstErr atomic.Value
	start := time.Now()
	for ti := range o.Tenants {
		t := o.Tenants[ti]
		conns := t.Conns
		if conns <= 0 {
			conns = 1
		}
		counters[ti].Name = t.Name
		for ci := 0; ci < conns; ci++ {
			wg.Add(1)
			go func(tr *TenantResult, spec Tenant, conn int) {
				defer wg.Done()
				if err := runConn(o, tr, spec, conn); err != nil {
					atomic.AddUint64(&tr.Errors, 1)
					firstErr.CompareAndSwap(nil, err)
				}
			}(&counters[ti], t, ci)
		}
	}
	wg.Wait()
	res := Result{Tenants: counters, Elapsed: time.Since(start)}
	for i := range counters {
		res.Ops += counters[i].Gets + counters[i].Puts
	}
	if res.Elapsed > 0 {
		res.OpsPerSec = float64(res.Ops) / res.Elapsed.Seconds()
	}
	if err, ok := firstErr.Load().(error); ok {
		return res, err
	}
	return res, nil
}

// runConn drives one connection's operation budget.
func runConn(o Options, tr *TenantResult, spec Tenant, conn int) error {
	c, err := dial(o.Addr, spec.Name)
	if err != nil {
		return err
	}
	defer c.close()
	app := spec.MakeApp(conn)
	val := make([]byte, o.ValueSize)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	if o.Batch > 1 {
		return runConnBatched(o, tr, spec, app, c, val)
	}
	for i := 0; i < o.OpsPerConn; i++ {
		_, addr := app.Next()
		key := strconv.FormatUint(addr, 16)
		hit, err := c.get(spec.Name, key)
		if err != nil {
			return err
		}
		atomic.AddUint64(&tr.Gets, 1)
		if hit {
			atomic.AddUint64(&tr.Hits, 1)
			continue
		}
		atomic.AddUint64(&tr.Misses, 1)
		if err := c.put(spec.Name, key, val); err != nil {
			return err
		}
		atomic.AddUint64(&tr.Puts, 1)
	}
	return nil
}

// runConnBatched drives the budget in MGET batches: one round trip reads
// o.Batch keys, then the misses are filled with pipelined PUTs sharing one
// flush and one response read.
func runConnBatched(o Options, tr *TenantResult, spec Tenant, app workload.App, c *client, val []byte) error {
	keys := make([]string, 0, o.Batch)
	missed := make([]string, 0, o.Batch)
	for done := 0; done < o.OpsPerConn; {
		n := o.Batch
		if rest := o.OpsPerConn - done; n > rest {
			n = rest
		}
		keys = keys[:0]
		for i := 0; i < n; i++ {
			_, addr := app.Next()
			keys = append(keys, strconv.FormatUint(addr, 16))
		}
		hits, missIdx, err := c.mget(spec.Name, keys, missed[:0])
		if err != nil {
			return err
		}
		missed = missIdx
		atomic.AddUint64(&tr.Gets, uint64(n))
		atomic.AddUint64(&tr.Hits, uint64(hits))
		atomic.AddUint64(&tr.Misses, uint64(n-hits))
		if len(missed) > 0 {
			if err := c.putPipelined(spec.Name, missed, val); err != nil {
				return err
			}
			atomic.AddUint64(&tr.Puts, uint64(len(missed)))
		}
		done += n
	}
	return nil
}

// client is a minimal blocking protocol client over one TCP connection.
type client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// dial connects and registers the tenant.
func dial(addr, tenant string) (*client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
	resp, err := c.roundTrip("TENANT ADD " + tenant)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if !strings.HasPrefix(resp, "OK") {
		conn.Close()
		return nil, fmt.Errorf("loadgen: TENANT ADD: %s", resp)
	}
	return c, nil
}

func (c *client) close() { c.conn.Close() }

// roundTrip sends one command line and reads one response line.
func (c *client) roundTrip(line string) (string, error) {
	if _, err := c.w.WriteString(line + "\r\n"); err != nil {
		return "", err
	}
	if err := c.w.Flush(); err != nil {
		return "", err
	}
	return c.readLine()
}

func (c *client) readLine() (string, error) {
	resp, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(resp, "\r\n"), nil
}

// get returns whether key hit. The value bytes are read and discarded.
func (c *client) get(tenant, key string) (bool, error) {
	resp, err := c.roundTrip("GET " + tenant + " " + key)
	if err != nil {
		return false, err
	}
	switch {
	case resp == "MISS":
		return false, nil
	case strings.HasPrefix(resp, "VALUE "):
		n, err := strconv.Atoi(resp[len("VALUE "):])
		if err != nil || n < 0 {
			return false, fmt.Errorf("loadgen: bad VALUE header %q", resp)
		}
		if _, err := io.ReadFull(c.r, make([]byte, n+2)); err != nil { // value + CRLF
			return false, err
		}
		return true, nil
	default:
		return false, fmt.Errorf("loadgen: GET: %s", resp)
	}
}

// mget requests keys in one MGET round trip, returning the hit count and
// the missed keys appended to missBuf.
func (c *client) mget(tenant string, keys []string, missBuf []string) (int, []string, error) {
	c.w.WriteString("MGET ")
	c.w.WriteString(tenant)
	c.w.WriteByte(' ')
	c.w.WriteString(strconv.Itoa(len(keys)))
	for _, k := range keys {
		c.w.WriteByte(' ')
		c.w.WriteString(k)
	}
	c.w.WriteString("\r\n")
	if err := c.w.Flush(); err != nil {
		return 0, missBuf, err
	}
	hits := 0
	for _, k := range keys {
		resp, err := c.readLine()
		if err != nil {
			return hits, missBuf, err
		}
		switch {
		case resp == "MISS":
			missBuf = append(missBuf, k)
		case strings.HasPrefix(resp, "VALUE "):
			n, err := strconv.Atoi(resp[len("VALUE "):])
			if err != nil || n < 0 {
				return hits, missBuf, fmt.Errorf("loadgen: bad VALUE header %q", resp)
			}
			if _, err := c.r.Discard(n + 2); err != nil { // value + CRLF
				return hits, missBuf, err
			}
			hits++
		default:
			return hits, missBuf, fmt.Errorf("loadgen: MGET: %s", resp)
		}
	}
	resp, err := c.readLine()
	if err != nil {
		return hits, missBuf, err
	}
	if resp != "END" {
		return hits, missBuf, fmt.Errorf("loadgen: MGET missing END, got %q", resp)
	}
	return hits, missBuf, nil
}

// putPipelined stores val under every key, writing all PUT commands before
// a single flush and then reading all responses — one round trip for the
// whole fill batch.
func (c *client) putPipelined(tenant string, keys []string, val []byte) error {
	for _, key := range keys {
		fmt.Fprintf(c.w, "PUT %s %s %d\r\n", tenant, key, len(val))
		c.w.Write(val)
		c.w.WriteString("\r\n")
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	for range keys {
		resp, err := c.readLine()
		if err != nil {
			return err
		}
		if resp != "STORED" {
			return fmt.Errorf("loadgen: PUT: %s", resp)
		}
	}
	return nil
}

// put stores val under key.
func (c *client) put(tenant, key string, val []byte) error {
	fmt.Fprintf(c.w, "PUT %s %s %d\r\n", tenant, key, len(val))
	c.w.Write(val)
	c.w.WriteString("\r\n")
	if err := c.w.Flush(); err != nil {
		return err
	}
	resp, err := c.readLine()
	if err != nil {
		return err
	}
	if resp != "STORED" {
		return fmt.Errorf("loadgen: PUT: %s", resp)
	}
	return nil
}
