package loadgen

import (
	"errors"
	"net"
	"testing"
	"time"

	"vantage/internal/service"
	"vantage/internal/workload"
)

// newBenchServer self-hosts a fresh service+server for one subtest so runs
// are deterministic and isolated.
func newBenchServer(t *testing.T, cfg service.ServerConfig) (addr string) {
	t.Helper()
	svc, err := service.New(service.Config{
		Shards:        2,
		LinesPerShard: 1024,
		MaxTenants:    4,
		Seed:          2011,
	})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := service.ServeWith(svc, lis, cfg)
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return srv.Addr().String()
}

func benchTenants() []Tenant {
	return []Tenant{{
		Name:  "t",
		Conns: 1,
		MakeApp: func(conn int) workload.App {
			return CategoryApp(workload.Friendly, 2048, 7)
		},
	}}
}

// TestBinaryMatchesText runs the identical single-connection deterministic
// workload through the text and the binary client against fresh servers and
// requires identical per-tenant results: the binary protocol must be a pure
// transport change, invisible to cache behavior.
func TestBinaryMatchesText(t *testing.T) {
	for _, batch := range []int{1, 8} {
		run := func(bin, bmget bool) Result {
			res, err := Run(Options{
				Addr:       newBenchServer(t, service.ServerConfig{}),
				Tenants:    benchTenants(),
				OpsPerConn: 3000,
				ValueSize:  32,
				Batch:      batch,
				Binary:     bin,
				BMGet:      bmget,
			})
			if err != nil {
				t.Fatalf("batch=%d binary=%v bmget=%v: %v", batch, bin, bmget, err)
			}
			return res
		}
		text := run(false, false)
		tt := text.Tenants[0]
		for _, mode := range []struct {
			name  string
			bmget bool
		}{{"binary", false}, {"bmget", true}} {
			bt := run(true, mode.bmget).Tenants[0]
			if tt.Gets != bt.Gets || tt.Hits != bt.Hits || tt.Misses != bt.Misses || tt.Puts != bt.Puts {
				t.Fatalf("batch=%d: text %+v != %s %+v", batch, tt, mode.name, bt)
			}
			if bt.Gets != 3000 {
				t.Fatalf("batch=%d %s: did %d gets, want full 3000 budget", batch, mode.name, bt.Gets)
			}
			if bt.Hits == 0 || bt.Puts == 0 {
				t.Fatalf("batch=%d %s: degenerate run %+v", batch, mode.name, bt)
			}
		}
	}
}

// TestBinaryTTLFills checks the TTL flag path end-to-end: a TTLUniform
// tenant's fills must actually expire on the server.
func TestBinaryTTLFills(t *testing.T) {
	addr := newBenchServer(t, service.ServerConfig{})
	tenants := benchTenants()
	tenants[0].TTLMode = TTLUniform
	tenants[0].TTL = time.Millisecond
	res, err := Run(Options{
		Addr:       addr,
		Tenants:    tenants,
		OpsPerConn: 500,
		Binary:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tenants[0].Puts == 0 {
		t.Fatal("no fills happened")
	}
	// Every fill carried a 1ms TTL, so after a beat the working set is dead:
	// a rerun of the same app stream on the same server should miss heavily.
	time.Sleep(20 * time.Millisecond)
	res2, err := Run(Options{
		Addr:       addr,
		Tenants:    benchTenants(),
		OpsPerConn: 500,
		Binary:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Tenants[0].Misses == 0 {
		t.Fatal("expected misses after TTL expiry, got none")
	}
}

// TestBinaryDialBusy checks the dial-time BUSY mapping: a server at its
// connection cap answers the preamble with its text reject (or a close),
// never a binary ack, and the binary client must classify that as ErrBusy.
func TestBinaryDialBusy(t *testing.T) {
	addr := newBenchServer(t, service.ServerConfig{MaxConns: 1})
	hold, err := dialBin(addr, "t", false)
	if err != nil {
		t.Fatal(err)
	}
	defer hold.close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err = dialBin(addr, "t", false)
		if errors.Is(err, ErrBusy) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("dial over cap: got %v, want ErrBusy", err)
		}
		// The first conn's accept may still be settling; retry briefly.
		time.Sleep(5 * time.Millisecond)
	}
}

// TestBinaryChaosRun drives the binary client through the chaos path: more
// connections than the cap, so dials are BUSY-rejected and counted while
// the in-cap connections complete their budget.
func TestBinaryChaosRun(t *testing.T) {
	addr := newBenchServer(t, service.ServerConfig{MaxConns: 2})
	tenants := benchTenants()
	tenants[0].Conns = 6
	res, err := Run(Options{
		Addr:       addr,
		Tenants:    tenants,
		OpsPerConn: 300,
		Batch:      4,
		Binary:     true,
		Chaos:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected == 0 {
		t.Fatalf("6 conns against max-conns=2 produced no BUSY rejects: %+v", res)
	}
	if res.Ops == 0 {
		t.Fatal("no surviving throughput under overload")
	}
}
