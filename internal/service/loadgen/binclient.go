// The binary-protocol client: the same per-connection surface as the text
// client (see the proto interface in loadgen.go), speaking the
// length-prefixed frames of internal/service/binproto.go.
//
// The wire constants below mirror the server's (which are unexported on
// purpose: the frame layout is the contract, not a shared Go package). The
// binary protocol has no MGET verb — a batch is simply Batch GET frames
// written before one flush, which is what the server's shard rings and
// response coalescing are built for. Responses within a batch arrive in
// per-shard completion order and are matched back by the echoed request id.
// mget and putPipelined therefore always drain every response of a batch,
// even after a shed or fault reply: each frame gets exactly one response, so
// the stream can never desync the way an aborted text MGET would without its
// END sentinel.
package loadgen

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"sync/atomic"
)

// Wire constants, mirrored from internal/service/binproto.go.
const (
	binMagic   = 0x83
	binVersion = 1
	binReqHdr  = 16
	binRespHdr = 8

	binOpGet       = 1
	binOpPut       = 2
	binOpDel       = 3
	binOpTouch     = 4
	binOpPing      = 5
	binOpTenantAdd = 6
	binOpBMGet     = 11

	binStOK   = 0
	binStMiss = 1
	binStErr  = 2
	binStShed = 3

	binFlagTTL = 1 << 0
)

// binClient is a blocking binary-protocol client over one TCP connection.
type binClient struct {
	conn  net.Conn
	r     *bufio.Reader
	w     *bufio.Writer
	id    uint32 // request id counter; responses echo it back in order
	rbuf  []byte // response body scratch, grown as needed
	bmget bool   // batch reads as one BMGET frame instead of pipelined GETs
}

// dialBin connects, negotiates the binary protocol, and registers the
// tenant. A server at its connection cap writes its text "BUSY" reject and
// closes before any negotiation; that surfaces as a first ack byte that is
// not the magic (0x83 can never start a text line), or as a transport error
// — both mean ErrBusy here, matching the text client's dial semantics.
func dialBin(addr, tenant string, bmget bool) (*binClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &binClient{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn), bmget: bmget}
	if _, err := conn.Write([]byte{binMagic, 'V', 'B', binVersion}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("%w (%v)", ErrBusy, err)
	}
	var ack [4]byte
	if _, err := readFullBuf(c.r, ack[:]); err != nil {
		conn.Close()
		if isConnErr(err) {
			return nil, fmt.Errorf("%w (%v)", ErrBusy, err)
		}
		return nil, err
	}
	if ack[0] != binMagic {
		conn.Close()
		return nil, ErrBusy
	}
	if ack[3] != binVersion {
		conn.Close()
		return nil, fmt.Errorf("loadgen: binary version mismatch: server speaks v%d, client v%d", ack[3], binVersion)
	}
	id := c.nextID()
	c.writeFrame(binOpTenantAdd, 0, id, 0, tenant, "", nil)
	if err := c.w.Flush(); err != nil {
		conn.Close()
		return nil, err
	}
	status, payload, err := c.readRespFor(id)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if status != binStOK {
		conn.Close()
		return nil, fmt.Errorf("loadgen: binary TENANT_ADD: %s", payload)
	}
	return c, nil
}

func (c *binClient) close() { c.conn.Close() }

func (c *binClient) nextID() uint32 { return atomic.AddUint32(&c.id, 1) }

// writeFrame appends one request frame to the buffered writer.
func (c *binClient) writeFrame(op, flags uint8, id, ttlMS uint32, tenant, key string, val []byte) {
	var hdr [4 + binReqHdr]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(binReqHdr+len(tenant)+len(key)+len(val)))
	hdr[4] = op
	hdr[5] = flags
	hdr[6] = uint8(len(tenant))
	binary.LittleEndian.PutUint32(hdr[8:], id)
	binary.LittleEndian.PutUint32(hdr[12:], ttlMS)
	binary.LittleEndian.PutUint16(hdr[16:], uint16(len(key)))
	c.w.Write(hdr[:])
	c.w.WriteString(tenant)
	c.w.WriteString(key)
	c.w.Write(val)
}

// readFullBuf is io.ReadFull without the import dance around the text
// client's helpers.
func readFullBuf(r *bufio.Reader, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		m, err := r.Read(buf[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// readResp reads one response frame. Responses to a pipelined batch arrive
// in per-shard order, not request order — the shard ring workers complete
// independently — so callers match the echoed id against their outstanding
// window rather than assuming FIFO. The returned payload aliases the
// client's scratch buffer and is only valid until the next readResp.
func (c *binClient) readResp() (status, op uint8, id uint32, payload []byte, err error) {
	var lenb [4]byte
	if _, err := readFullBuf(c.r, lenb[:]); err != nil {
		return 0, 0, 0, nil, err
	}
	n := binary.LittleEndian.Uint32(lenb[:])
	if n < binRespHdr || n > 1<<21 {
		return 0, 0, 0, nil, fmt.Errorf("loadgen: bad binary response length %d", n)
	}
	if cap(c.rbuf) < int(n) {
		c.rbuf = make([]byte, n)
	}
	body := c.rbuf[:n]
	if _, err := readFullBuf(c.r, body); err != nil {
		return 0, 0, 0, nil, err
	}
	return body[0], body[1], binary.LittleEndian.Uint32(body[4:]), body[binRespHdr:], nil
}

// readRespFor reads the next response and requires it to answer wantID —
// for callers with exactly one frame outstanding.
func (c *binClient) readRespFor(wantID uint32) (status uint8, payload []byte, err error) {
	status, _, id, payload, err := c.readResp()
	if err != nil {
		return 0, nil, err
	}
	if id != wantID {
		return 0, nil, fmt.Errorf("loadgen: binary response id %d, want %d (stream desynced)", id, wantID)
	}
	return status, payload, nil
}

// classifyBinErr maps a status byte to the overload sentinels the chaos
// counters understand. ERR payloads from the fault injector start with
// "FAULT" (the text protocol prefixes the same message with "ERR ").
func classifyBinErr(ctx string, status uint8, payload []byte) error {
	if status == binStShed {
		return ErrShed
	}
	if len(payload) >= 5 && string(payload[:5]) == "FAULT" {
		return ErrInjected
	}
	return fmt.Errorf("loadgen: binary %s: %s", ctx, payload)
}

// get returns whether key hit. The value payload is read and discarded.
func (c *binClient) get(tenant, key string) (bool, error) {
	id := c.nextID()
	c.writeFrame(binOpGet, 0, id, 0, tenant, key, nil)
	if err := c.w.Flush(); err != nil {
		return false, err
	}
	status, payload, err := c.readRespFor(id)
	if err != nil {
		return false, err
	}
	switch status {
	case binStOK:
		return true, nil
	case binStMiss:
		return false, nil
	default:
		return false, classifyBinErr("GET", status, payload)
	}
}

// put stores val under key; ttlMS >= 0 sets the TTL flag and deadline.
func (c *binClient) put(tenant, key string, val []byte, ttlMS int) error {
	id := c.nextID()
	var flags uint8
	var ttl uint32
	if ttlMS >= 0 {
		flags = binFlagTTL
		ttl = uint32(ttlMS)
	}
	c.writeFrame(binOpPut, flags, id, ttl, tenant, key, val)
	if err := c.w.Flush(); err != nil {
		return err
	}
	status, payload, err := c.readRespFor(id)
	if err != nil {
		return err
	}
	if status != binStOK {
		return classifyBinErr("PUT", status, payload)
	}
	return nil
}

// matchBatchID maps an echoed response id back to its index in a batch of
// n frames whose ids were base+1..base+n, rejecting out-of-window ids and
// duplicates via the got bitmap.
func matchBatchID(id, base uint32, got []bool) (int, error) {
	idx := int(id - base - 1)
	if idx < 0 || idx >= len(got) {
		return 0, fmt.Errorf("loadgen: binary response id %d outside batch window [%d,%d] (stream desynced)", id, base+1, base+uint32(len(got)))
	}
	if got[idx] {
		return 0, fmt.Errorf("loadgen: duplicate binary response id %d", id)
	}
	got[idx] = true
	return idx, nil
}

// mget pipelines one GET frame per key before a single flush — the binary
// batch. Responses arrive in per-shard completion order, so each is matched
// back to its key by the echoed id. Every frame gets exactly one response,
// so unlike the text MGET (which aborts with a bare ERR line) the whole
// batch is always drained; the first shed or fault reply is returned as the
// error with the successfully-answered GETs still counted in hits/seen.
func (c *binClient) mget(tenant string, keys []string, missBuf []string) (hits, seen int, _ []string, _ error) {
	tok, err := c.mgetSend(tenant, keys)
	if err != nil {
		return 0, 0, missBuf, err
	}
	return c.mgetRecv(tok, tenant, keys, missBuf)
}

// writeBMGetFrame appends one BMGET request frame: the header's klen field
// carries the key count and the body is tenant then count x (u16 len, key).
func (c *binClient) writeBMGetFrame(id uint32, tenant string, keys []string) {
	n := binReqHdr + len(tenant)
	for _, k := range keys {
		n += 2 + len(k)
	}
	var hdr [4 + binReqHdr]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(n))
	hdr[4] = binOpBMGet
	hdr[6] = uint8(len(tenant))
	binary.LittleEndian.PutUint32(hdr[8:], id)
	binary.LittleEndian.PutUint16(hdr[16:], uint16(len(keys)))
	c.w.Write(hdr[:])
	c.w.WriteString(tenant)
	var kl [2]byte
	for _, k := range keys {
		binary.LittleEndian.PutUint16(kl[:], uint16(len(k)))
		c.w.Write(kl[:])
		c.w.WriteString(k)
	}
}

// mgetSend writes the batch's read frames — one BMGET frame in bmget mode,
// Batch pipelined GETs otherwise — and flushes. The returned token is the
// base id mgetRecv matches responses against.
func (c *binClient) mgetSend(tenant string, keys []string) (uint32, error) {
	base := c.id
	if c.bmget {
		c.writeBMGetFrame(c.nextID(), tenant, keys)
	} else {
		for _, k := range keys {
			c.writeFrame(binOpGet, 0, c.nextID(), 0, tenant, k, nil)
		}
	}
	return base, c.w.Flush()
}

// mgetRecv reads the batch's responses. In bmget mode that is one
// coalesced frame whose payload carries per-key statuses in request order;
// a per-key SHED surfaces as ErrShed just like a shed GET frame would,
// with the rest of the batch still counted.
func (c *binClient) mgetRecv(base uint32, tenant string, keys []string, missBuf []string) (hits, seen int, _ []string, _ error) {
	if c.bmget {
		return c.bmgetRecv(base, keys, missBuf)
	}
	got := make([]bool, len(keys))
	var firstErr error
	for range keys {
		status, _, id, payload, err := c.readResp()
		if err != nil {
			return hits, seen, missBuf, err // transport loss: stream is gone
		}
		idx, err := matchBatchID(id, base, got)
		if err != nil {
			return hits, seen, missBuf, err
		}
		switch status {
		case binStOK:
			hits++
			seen++
		case binStMiss:
			missBuf = append(missBuf, keys[idx])
			seen++
		default:
			if firstErr == nil {
				firstErr = classifyBinErr("GET", status, payload)
			}
		}
	}
	return hits, seen, missBuf, firstErr
}

// bmgetRecv reads and decodes the single BMGET response frame. The frame
// answers id base+1; a frame-level ERR (unknown tenant, injected fault)
// fails the whole batch with seen = 0, mirroring a text MGET abort.
func (c *binClient) bmgetRecv(base uint32, keys []string, missBuf []string) (hits, seen int, _ []string, _ error) {
	status, payload, err := c.readRespFor(base + 1)
	if err != nil {
		return 0, 0, missBuf, err
	}
	if status != binStOK {
		return 0, 0, missBuf, classifyBinErr("BMGET", status, payload)
	}
	if len(payload) < 2 {
		return 0, 0, missBuf, fmt.Errorf("loadgen: short BMGET payload (%d bytes)", len(payload))
	}
	count := int(binary.LittleEndian.Uint16(payload))
	if count != len(keys) {
		return 0, 0, missBuf, fmt.Errorf("loadgen: BMGET answered %d keys, want %d", count, len(keys))
	}
	p := payload[2:]
	var firstErr error
	for i := 0; i < count; i++ {
		if len(p) < 5 {
			return hits, seen, missBuf, fmt.Errorf("loadgen: truncated BMGET entry %d", i)
		}
		st := p[0]
		vl := int(binary.LittleEndian.Uint32(p[1:5]))
		p = p[5:]
		if len(p) < vl {
			return hits, seen, missBuf, fmt.Errorf("loadgen: truncated BMGET value %d", i)
		}
		p = p[vl:]
		switch st {
		case binStOK:
			hits++
			seen++
		case binStMiss:
			missBuf = append(missBuf, keys[i])
			seen++
		default:
			if firstErr == nil {
				firstErr = classifyBinErr("BMGET", st, nil)
			}
		}
	}
	return hits, seen, missBuf, firstErr
}

// putPipelined writes one PUT frame per key before a single flush and then
// drains the batch's responses. ttls carries one TTL in milliseconds per
// key, -1 meaning none. In chaos mode, shed and fault replies are folded
// into tr and the batch continues; otherwise the first such reply is
// returned after the drain completes.
func (c *binClient) putPipelined(tenant string, keys []string, val []byte, ttls []int, chaos bool, tr *TenantResult) (stored uint64, _ error) {
	tok, err := c.putSend(tenant, keys, val, ttls)
	if err != nil {
		return 0, err
	}
	return c.putRecv(tok, len(keys), chaos, tr)
}

// putSend writes the batch's PUT frames and flushes (the send phase of the
// batchProto split); the returned token is the base id for putRecv.
func (c *binClient) putSend(tenant string, keys []string, val []byte, ttls []int) (uint32, error) {
	base := c.id
	for i, key := range keys {
		var flags uint8
		var ttl uint32
		if len(ttls) > i && ttls[i] >= 0 {
			flags = binFlagTTL
			ttl = uint32(ttls[i])
		}
		c.writeFrame(binOpPut, flags, c.nextID(), ttl, tenant, key, val)
	}
	return base, c.w.Flush()
}

// putRecv drains the batch's n responses, matching ids against the window.
func (c *binClient) putRecv(base uint32, n int, chaos bool, tr *TenantResult) (stored uint64, _ error) {
	got := make([]bool, n)
	var firstErr error
	for i := 0; i < n; i++ {
		status, _, id, payload, err := c.readResp()
		if err != nil {
			return stored, err
		}
		if _, err := matchBatchID(id, base, got); err != nil {
			return stored, err
		}
		if status == binStOK {
			stored++
			continue
		}
		err = classifyBinErr("PUT", status, payload)
		if !chaos {
			if firstErr == nil {
				firstErr = err
			}
			continue // keep draining: every frame has a response in flight
		}
		switch err {
		case ErrShed:
			atomic.AddUint64(&tr.Shed, 1)
		case ErrInjected:
			atomic.AddUint64(&tr.Injected, 1)
		default:
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	return stored, firstErr
}
