//go:build !linux

// Portable stub for the binary-connection event loop: platforms without
// epoll fall back to the goroutine transport (binServeConn), which is
// functionally identical — the poller only changes the cost model of idle
// connections, never the protocol semantics.

package service

import "net"

type binPoller struct{}

func newBinPoller(*Server) *binPoller { return nil }

func (p *binPoller) stop() {}

func (p *binPoller) attach(*net.TCPConn, *binConn, []byte) error { return errPollerDown }

func (c *binConn) pollerRequestClose() {}

func (c *binConn) pollerFlushLocked() {}

func (c *binConn) armWriteLocked() {}
