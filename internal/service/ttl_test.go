package service

import (
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"vantage/internal/clock"
)

// ttlT0 is the fake clocks' epoch for TTL tests.
var ttlT0 = time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)

// TestLazyExpiryOnGet: an entry at or past its TTL reads as a miss, is
// counted as an expired miss (not a cold one), and is reclaimed on the spot.
func TestLazyExpiryOnGet(t *testing.T) {
	fc := clock.NewFake(ttlT0)
	svc := newTestService(t, Config{Shards: 1, LinesPerShard: 512, MaxTenants: 4, Seed: 31, Clock: fc})
	svc.AddTenant("a")

	if err := svc.PutTTL("a", "k", []byte("v"), 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, hit, _ := svc.Get("a", "k"); !hit {
		t.Fatal("GET before TTL missed")
	}
	fc.Advance(99 * time.Millisecond)
	if _, hit, _ := svc.Get("a", "k"); !hit {
		t.Fatal("GET 1ms before deadline missed")
	}
	fc.Advance(time.Millisecond) // exactly at the deadline: dead
	if _, hit, _ := svc.Get("a", "k"); hit {
		t.Fatal("GET at deadline hit")
	}
	ts, _ := svc.TenantStats("a")
	if ts.Expired != 1 {
		t.Fatalf("expired = %d, want 1", ts.Expired)
	}
	if ts.Misses != 0 {
		t.Fatalf("expired read counted as cold miss: misses = %d", ts.Misses)
	}
	if ts.Gets != ts.Hits+ts.Misses+ts.Expired {
		t.Fatalf("counter invariant broken: %+v", ts)
	}
	// The expired read reclaimed the entry; the next read is a cold miss.
	if _, hit, _ := svc.Get("a", "k"); hit {
		t.Fatal("GET after reclaim hit")
	}
	ts, _ = svc.TenantStats("a")
	if ts.Expired != 1 || ts.Misses != 1 {
		t.Fatalf("post-reclaim read misattributed: %+v", ts)
	}
	if st := svc.Stats(); st.Expired != 1 || st.StoreEntries != 0 {
		t.Fatalf("service totals: expired=%d entries=%d, want 1, 0", st.Expired, st.StoreEntries)
	}
}

// TestDefaultTTLAndOverride: Config.DefaultTTL applies to plain Puts, and an
// explicit TTL of 0 overrides it to "never expires".
func TestDefaultTTLAndOverride(t *testing.T) {
	fc := clock.NewFake(ttlT0)
	svc := newTestService(t, Config{
		Shards: 1, LinesPerShard: 512, MaxTenants: 4, Seed: 32,
		Clock: fc, DefaultTTL: 50 * time.Millisecond,
	})
	svc.AddTenant("a")

	svc.Put("a", "defaulted", []byte("v"))
	svc.PutTTL("a", "pinned", []byte("v"), 0)
	fc.Advance(51 * time.Millisecond)
	if _, hit, _ := svc.Get("a", "defaulted"); hit {
		t.Fatal("default-TTL entry survived past DefaultTTL")
	}
	if _, hit, _ := svc.Get("a", "pinned"); !hit {
		t.Fatal("TTL-0 entry expired despite override")
	}
}

// TestTouchSemantics: TOUCH extends a live entry's TTL (refreshing recency),
// clears it with ttl 0, reclaims an expired entry, and misses on absent keys.
func TestTouchSemantics(t *testing.T) {
	fc := clock.NewFake(ttlT0)
	svc := newTestService(t, Config{Shards: 1, LinesPerShard: 512, MaxTenants: 4, Seed: 33, Clock: fc})
	svc.AddTenant("a")

	if live, _ := svc.Touch("a", "absent", time.Second); live {
		t.Fatal("TOUCH of absent key reported live")
	}

	// Extend: the entry outlives its original deadline.
	svc.PutTTL("a", "k", []byte("v"), 100*time.Millisecond)
	fc.Advance(90 * time.Millisecond)
	if live, _ := svc.Touch("a", "k", 100*time.Millisecond); !live {
		t.Fatal("TOUCH of live entry reported dead")
	}
	fc.Advance(50 * time.Millisecond) // past the original deadline, within the new one
	if _, hit, _ := svc.Get("a", "k"); !hit {
		t.Fatal("touched entry expired at its original deadline")
	}

	// Clear: ttl 0 makes the entry non-expiring.
	if live, _ := svc.Touch("a", "k", 0); !live {
		t.Fatal("clearing TOUCH reported dead")
	}
	fc.Advance(time.Hour)
	if _, hit, _ := svc.Get("a", "k"); !hit {
		t.Fatal("cleared entry still expired")
	}

	// Reclaim: touching a dead entry behaves like a read of it.
	svc.PutTTL("a", "dead", []byte("v"), 10*time.Millisecond)
	fc.Advance(11 * time.Millisecond)
	if live, _ := svc.Touch("a", "dead", time.Second); live {
		t.Fatal("TOUCH of expired entry reported live")
	}
	ts, _ := svc.TenantStats("a")
	if ts.Expired != 1 {
		t.Fatalf("expired = %d after touching dead entry, want 1", ts.Expired)
	}
	if _, hit, _ := svc.Get("a", "dead"); hit {
		t.Fatal("expired entry revived by TOUCH")
	}
}

// TestSweepBoundedPasses: a mass expiry of N entries is reclaimed within
// ceil(hints/SweepBatch)+1 manual passes, no pass pops more than SweepBatch
// hints, stale hints (overwritten to a later TTL) are discarded without
// touching their entries, and the sweep counters record the work.
func TestSweepBoundedPasses(t *testing.T) {
	const n, batch = 100, 16
	fc := clock.NewFake(ttlT0)
	svc := newTestService(t, Config{
		Shards: 1, LinesPerShard: 1024, MaxTenants: 4, Seed: 34,
		Clock: fc, SweepBatch: batch,
	})
	svc.AddTenant("a")

	for i := 0; i < n; i++ {
		svc.PutTTL("a", fmt.Sprintf("k%d", i), []byte("v"), 100*time.Millisecond)
	}
	// Overwrite a few to a much later deadline: the first-round hints for
	// them go stale and must not reclaim the live entries.
	for i := 0; i < 5; i++ {
		svc.PutTTL("a", fmt.Sprintf("k%d", i), []byte("v2"), time.Hour)
	}
	hints := n + 5

	if got := svc.SweepOnce(); got != 0 {
		t.Fatalf("sweep before any deadline reclaimed %d entries", got)
	}
	fc.Advance(101 * time.Millisecond)
	reclaimed, passes := 0, 0
	for ; passes < hints; passes++ {
		got := svc.SweepOnce()
		if got > batch {
			t.Fatalf("pass reclaimed %d > SweepBatch %d", got, batch)
		}
		if got == 0 {
			break
		}
		reclaimed += got
	}
	if reclaimed != n-5 {
		t.Fatalf("sweep reclaimed %d entries, want %d", reclaimed, n-5)
	}
	if maxPasses := (hints+batch-1)/batch + 1; passes > maxPasses {
		t.Fatalf("sweep took %d passes, want <= %d", passes, maxPasses)
	}
	for i := 0; i < 5; i++ {
		if _, hit, _ := svc.Get("a", fmt.Sprintf("k%d", i)); !hit {
			t.Fatalf("stale hint reclaimed live entry k%d", i)
		}
	}
	st := svc.Stats()
	if st.SweepLines != uint64(n-5) {
		t.Fatalf("SweepLines = %d, want %d", st.SweepLines, n-5)
	}
	if st.SweepPasses == 0 {
		t.Fatal("SweepPasses not counted")
	}
	if st.StoreEntries != 5 {
		t.Fatalf("store entries = %d after sweep, want 5", st.StoreEntries)
	}
}

// TestSweepLoopBackground: with SweepInterval set, advancing the fake clock
// past the interval makes the background sweeper reclaim expired entries on
// its own. The sweeper goroutine runs asynchronously, so the test polls the
// counters (bounded) rather than asserting immediately after Advance.
func TestSweepLoopBackground(t *testing.T) {
	fc := clock.NewFake(ttlT0)
	svc := newTestService(t, Config{
		Shards: 1, LinesPerShard: 512, MaxTenants: 4, Seed: 35,
		Clock: fc, SweepInterval: 10 * time.Millisecond,
	})
	svc.AddTenant("a")
	for i := 0; i < 20; i++ {
		svc.PutTTL("a", fmt.Sprintf("k%d", i), []byte("v"), 5*time.Millisecond)
	}
	// One tick both passes the entries' deadlines and fires the sweeper.
	fc.Advance(10 * time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().SweepLines < 20 {
		if time.Now().After(deadline) {
			t.Fatalf("background sweeper reclaimed %d/20 lines", svc.Stats().SweepLines)
		}
		fc.Advance(10 * time.Millisecond) // keep ticking until the loop catches up
		time.Sleep(time.Millisecond)
	}
	if st := svc.Stats(); st.StoreEntries != 0 {
		t.Fatalf("store entries = %d after background sweep, want 0", st.StoreEntries)
	}
}

// TestMassExpiryRepartition is the TTL subsystem's end-to-end proof, run
// entirely on the fake clock with zero sleeps:
//
//	(a) after a tenant's working set mass-expires, its reads come back as
//	    expired misses, counted separately from cold misses;
//	(b) the sweeper reclaims the dead lines in bounded passes, and the
//	    reclaims show up as occupancy actually handed back (the partition
//	    shrinks without a single eviction);
//	(c) the next repartitions move capacity: the expired tenant's target
//	    shrinks and the live co-runner's grows, because expired reads bypass
//	    the utility monitors and decay erases the dead tenant's old utility.
func TestMassExpiryRepartition(t *testing.T) {
	const (
		wsA, wsB = 600, 600
		batch    = 64
		ttl      = 10 * time.Second
	)
	fc := clock.NewFake(ttlT0)
	svc := newTestService(t, Config{
		Shards: 1, LinesPerShard: 2048, MaxTenants: 4, Seed: 36,
		Clock: fc, SweepBatch: batch,
	})
	svc.AddTenant("burst")  // everything it stores carries the TTL
	svc.AddTenant("steady") // never expires

	// Phase 1: both tenants establish working sets and utility. Cache-aside
	// with full sweeps over disjoint key spaces: first round fills, later
	// rounds hit, so both UMONs see strong reuse.
	driveA := func() {
		for i := 0; i < wsA; i++ {
			key := fmt.Sprintf("a%d", i)
			if _, hit, err := svc.Get("burst", key); err != nil {
				t.Fatal(err)
			} else if !hit {
				if err := svc.PutTTL("burst", key, []byte("va"), ttl); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	driveB := func() {
		for i := 0; i < wsB; i++ {
			key := fmt.Sprintf("b%d", i)
			if _, hit, err := svc.Get("steady", key); err != nil {
				t.Fatal(err)
			} else if !hit {
				if err := svc.Put("steady", key, []byte("vb")); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for round := 0; round < 4; round++ {
		driveA()
		driveB()
		svc.Repartition()
	}
	before := map[string]TenantStats{}
	for _, ts := range svc.Stats().Tenants {
		before[ts.Name] = ts
	}
	if before["burst"].TargetLines == 0 || before["burst"].OccupancyLines == 0 {
		t.Fatalf("burst tenant never established capacity: %+v", before["burst"])
	}

	// The storm: every line the burst tenant owns dies at once.
	fc.Advance(ttl + time.Second)

	// (a) Reads now observe expired misses, not cold ones.
	const probe = 100
	for i := 0; i < probe; i++ {
		if _, hit, _ := svc.Get("burst", fmt.Sprintf("a%d", i)); hit {
			t.Fatalf("a%d hit after mass expiry", i)
		}
	}
	ts, _ := svc.TenantStats("burst")
	if ts.Expired != probe {
		t.Fatalf("expired = %d after %d probes, want %d", ts.Expired, probe, probe)
	}
	if ts.Misses != before["burst"].Misses {
		t.Fatalf("mass-expiry probes counted as cold misses: %d -> %d",
			before["burst"].Misses, ts.Misses)
	}

	// (b) The sweeper reclaims everything else in bounded passes. Every
	// hint came from one of the tenant's PUTs, so the tenant's put counter
	// bounds the passes.
	hints := ts.Puts
	reclaimed, passes := uint64(0), uint64(0)
	for ; passes < hints; passes++ {
		got := svc.SweepOnce()
		if got == 0 {
			break
		}
		reclaimed += uint64(got)
	}
	if maxPasses := (hints+batch-1)/batch + 1; passes > maxPasses {
		t.Fatalf("sweep took %d passes for %d hints, want <= %d", passes, hints, maxPasses)
	}
	st := svc.Stats()
	if st.SweepLines != reclaimed || reclaimed == 0 {
		t.Fatalf("SweepLines = %d, reclaimed = %d", st.SweepLines, reclaimed)
	}
	// Lazy probes + sweep reclaimed the whole store footprint (entries the
	// array evicted during phase 1 were already gone, so >= is the bound on
	// probes+sweeps vs. the live entry count, and the store must hold only
	// the steady tenant now).
	if got := st.StoreEntries; got > wsB {
		t.Fatalf("store entries = %d after sweep, want <= %d (steady only)", got, wsB)
	}
	after, _ := svc.TenantStats("burst")
	if after.OccupancyLines*5 > before["burst"].OccupancyLines {
		t.Fatalf("burst occupancy %d did not collapse from %d",
			after.OccupancyLines, before["burst"].OccupancyLines)
	}

	// (c) Repartitioning against the post-storm monitors moves the capacity:
	// the steady tenant keeps feeding its UMON while the burst tenant's
	// (bypassed by expired reads) decays each interval.
	for round := 0; round < 4; round++ {
		driveB()
		svc.Repartition()
	}
	burstNow, _ := svc.TenantStats("burst")
	steadyNow, _ := svc.TenantStats("steady")
	if burstNow.TargetLines >= before["burst"].TargetLines {
		t.Errorf("burst target did not shrink: %d -> %d",
			before["burst"].TargetLines, burstNow.TargetLines)
	}
	if steadyNow.TargetLines <= before["steady"].TargetLines {
		t.Errorf("steady target did not grow: %d -> %d",
			before["steady"].TargetLines, steadyNow.TargetLines)
	}
}

// TestProtocolTTLCommands drives the TTL surface over the wire: PUT with an
// EXPIRE clause, the TOUCH/EXPIRE verb, lazy expiry visible as MISS, the
// STATS counters, and stream resynchronization after a malformed EXPIRE
// clause with a valid payload length.
func TestProtocolTTLCommands(t *testing.T) {
	fc := clock.NewFake(ttlT0)
	svc := newTestService(t, Config{
		Shards: 1, LinesPerShard: 512, MaxTenants: 4, Seed: 37,
		Clock: fc, DefaultTTL: 50 * time.Millisecond,
	})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(svc, lis)
	t.Cleanup(func() { srv.Close() })
	c := dialTest(t, srv.Addr().String())

	c.expect("TENANT ADD a", "OK 0")

	// PUT with EXPIRE, live then dead.
	c.sendRaw("PUT a k 2 EXPIRE 100\r\nvv\r\n")
	if got := c.line(); got != "STORED" {
		t.Fatalf("PUT EXPIRE: %q", got)
	}
	c.expect("GET a k", "VALUE 2")
	if got := c.line(); got != "vv" {
		t.Fatalf("GET value: %q", got)
	}
	fc.Advance(101 * time.Millisecond)
	c.expect("GET a k", "MISS")

	// DefaultTTL applies to a plain PUT; EXPIRE 0 pins an entry past it.
	c.sendRaw("PUT a def 2\r\nvv\r\n")
	if got := c.line(); got != "STORED" {
		t.Fatalf("plain PUT: %q", got)
	}
	c.sendRaw("PUT a pin 2 EXPIRE 0\r\nvv\r\n")
	if got := c.line(); got != "STORED" {
		t.Fatalf("PUT EXPIRE 0: %q", got)
	}
	fc.Advance(51 * time.Millisecond)
	c.expect("GET a def", "MISS")
	c.expect("GET a pin", "VALUE 2")
	if got := c.line(); got != "vv" {
		t.Fatalf("pinned value: %q", got)
	}

	// TOUCH and its EXPIRE alias.
	c.expect("TOUCH a pin 100", "TOUCHED")
	c.expect("EXPIRE a pin 100", "TOUCHED")
	c.expect("TOUCH a absent 100", "MISS")
	fc.Advance(101 * time.Millisecond)
	c.expect("GET a pin", "MISS")

	// A malformed EXPIRE clause with a valid length drains the payload and
	// errors; the stream stays usable.
	c.sendRaw("PUT a bad 2 EXPIRE nope\r\nvv\r\n")
	if got := c.line(); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("malformed EXPIRE clause: %q", got)
	}
	c.expect("PING", "PONG")
	c.expect("GET a bad", "MISS")

	// STATS carries the new counters.
	c.send("STATS")
	stats := map[string]string{}
	for _, l := range c.linesUntilEND() {
		parts := strings.Fields(l)
		if len(parts) == 3 && parts[0] == "STAT" {
			stats[parts[1]] = parts[2]
		}
	}
	for _, key := range []string{"expired_total", "sweep_lines", "sweep_passes"} {
		if _, ok := stats[key]; !ok {
			t.Errorf("STATS missing %q", key)
		}
	}
	if stats["expired_total"] == "0" {
		t.Errorf("expired_total = 0 after expired reads")
	}
	c.send("STATS a")
	found := false
	for _, l := range c.linesUntilEND() {
		if strings.HasPrefix(l, "STAT expired ") && !strings.HasSuffix(l, " 0") {
			found = true
		}
	}
	if !found {
		t.Error("per-tenant STATS has no non-zero expired counter")
	}
}
