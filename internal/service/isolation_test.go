package service

import (
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"vantage/internal/service/loadgen"
	"vantage/internal/workload"
)

// driver replays a workload.App against one tenant with the cache-aside
// pattern (GET; on miss, PUT), the same loop the network load generator
// runs — here in-process, for deterministic fast tests.
type driver struct {
	svc    *Service
	tenant string
	app    workload.App
	val    []byte
}

func (d *driver) step() error {
	_, addr := d.app.Next()
	key := strconv.FormatUint(addr, 16)
	_, hit, err := d.svc.Get(d.tenant, key)
	if err != nil {
		return err
	}
	if !hit {
		if d.val == nil {
			d.val = make([]byte, 32)
		}
		return d.svc.Put(d.tenant, key, d.val)
	}
	return nil
}

// step is a test-goroutine convenience that fails the test on error.
func (d *driver) stepT(t *testing.T) {
	t.Helper()
	if err := d.step(); err != nil {
		t.Fatal(err)
	}
}

func newZipfDriver(cacheLines int, seed uint64) workload.App {
	return loadgen.CategoryApp(workload.Friendly, cacheLines, seed)
}

func newStreamDriver(cacheLines int, seed uint64) workload.App {
	return loadgen.CategoryApp(workload.Thrashing, cacheLines, seed)
}

// TestIsolation demonstrates the paper's isolation claim on live traffic:
// a cache-friendly tenant's hit rate with two thrashing co-runners must be
// within a few points of its solo hit rate, because Vantage confines the
// streams to near-zero partitions instead of letting them flush the cache.
func TestIsolation(t *testing.T) {
	const (
		warmup  = 30000
		measure = 60000
	)
	// RepartitionInterval 0: the test drives Repartition in op-space (every
	// repartitionEvery friendly ops) so the experiment sees the same number
	// of UMON samples per allocation regardless of scheduler speed — under
	// -race a wall-clock interval would repartition on ~15x sparser monitor
	// state and test noise instead of the controller.
	const repartitionEvery = 2000
	cfg := Config{Shards: 2, LinesPerShard: 4096, MaxTenants: 8, Seed: 11}

	// measureFriendly runs the friendly tenant (plus any co-runners), then
	// returns the friendly tenant's hit rate over the measurement window.
	measureFriendly := func(withStreams bool) float64 {
		svc, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer svc.Close()
		total := svc.TotalLines()
		svc.AddTenant("friendly")

		// Streams run concurrently but are paced to at most ~2x the friendly
		// tenant's op rate: the paper's co-runners are cores progressing at
		// comparable rates, and without pacing the scheduler (especially
		// under -race) can hand the spinning streams an unbounded op-ratio
		// advantage, which tests the wrong claim.
		var friendlyOps atomic.Int64
		var wg sync.WaitGroup
		stop := make(chan struct{})
		if withStreams {
			for i, name := range []string{"stream1", "stream2"} {
				svc.AddTenant(name)
				wg.Add(1)
				go func(name string, seed uint64) {
					defer wg.Done()
					d := driver{svc: svc, tenant: name, app: newStreamDriver(total, seed)}
					ops := int64(0)
					for {
						select {
						case <-stop:
							return
						default:
						}
						if ops > 2*friendlyOps.Load()+500 {
							runtime.Gosched()
							continue
						}
						if err := d.step(); err != nil {
							t.Error(err)
							return
						}
						ops++
					}
				}(name, uint64(100+i))
			}
		}

		d := driver{svc: svc, tenant: "friendly", app: newZipfDriver(total, 42)}
		for i := 0; i < warmup; i++ {
			d.stepT(t)
			if friendlyOps.Add(1)%repartitionEvery == 0 {
				svc.Repartition()
			}
		}
		before, _ := svc.TenantStats("friendly")
		for i := 0; i < measure; i++ {
			d.stepT(t)
			if friendlyOps.Add(1)%repartitionEvery == 0 {
				svc.Repartition()
			}
		}
		after, _ := svc.TenantStats("friendly")
		close(stop)
		wg.Wait()
		return float64(after.Hits-before.Hits) / float64(after.Gets-before.Gets)
	}

	solo := measureFriendly(false)
	shared := measureFriendly(true)
	t.Logf("friendly hit rate: solo %.1f%%, with 2 thrashing co-runners %.1f%%", 100*solo, 100*shared)
	if solo < 0.15 {
		t.Fatalf("solo hit rate %.1f%% implausibly low; workload mis-scaled", 100*solo)
	}
	if shared < solo-0.05 {
		t.Errorf("isolation violated: hit rate fell from %.1f%% solo to %.1f%% shared", 100*solo, 100*shared)
	}
}
