package service

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
)

// testClient is a line-oriented protocol client for tests.
type testClient struct {
	t    *testing.T
	conn net.Conn
	r    *bufio.Reader
}

func dialTest(t *testing.T, addr string) *testClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &testClient{t: t, conn: conn, r: bufio.NewReader(conn)}
}

func (c *testClient) send(line string) {
	c.t.Helper()
	if _, err := io.WriteString(c.conn, line+"\r\n"); err != nil {
		c.t.Fatal(err)
	}
}

func (c *testClient) sendRaw(s string) {
	c.t.Helper()
	if _, err := io.WriteString(c.conn, s); err != nil {
		c.t.Fatal(err)
	}
}

func (c *testClient) line() string {
	c.t.Helper()
	line, err := c.r.ReadString('\n')
	if err != nil {
		c.t.Fatal(err)
	}
	return strings.TrimRight(line, "\r\n")
}

// expect sends one command and asserts the single-line response.
func (c *testClient) expect(cmd, want string) {
	c.t.Helper()
	c.send(cmd)
	if got := c.line(); got != want {
		c.t.Fatalf("%s: got %q want %q", cmd, got, want)
	}
}

// linesUntilEND reads response lines up to (excluding) the END terminator.
func (c *testClient) linesUntilEND() []string {
	c.t.Helper()
	var out []string
	for {
		l := c.line()
		if l == "END" {
			return out
		}
		out = append(out, l)
	}
}

func newTestServer(t *testing.T) (*Service, *Server) {
	t.Helper()
	svc := newTestService(t, Config{Shards: 1, LinesPerShard: 512, MaxTenants: 4, Seed: 9})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(svc, lis)
	t.Cleanup(func() { srv.Close() })
	return svc, srv
}

func TestProtocolRoundTrip(t *testing.T) {
	_, srv := newTestServer(t)
	c := dialTest(t, srv.Addr().String())

	c.expect("PING", "PONG")
	c.expect("TENANT ADD alice", "OK 0")
	c.expect("TENANT ADD alice", "OK 0") // idempotent
	c.expect("TENANT ADD bob", "OK 1")

	// PUT, then GET the value back.
	c.sendRaw("PUT alice greeting 5\r\nhello\r\n")
	if got := c.line(); got != "STORED" {
		t.Fatalf("PUT: got %q", got)
	}
	c.send("GET alice greeting")
	if got := c.line(); got != "VALUE 5" {
		t.Fatalf("GET header: got %q", got)
	}
	val := make([]byte, 7) // 5 bytes + CRLF
	if _, err := io.ReadFull(c.r, val); err != nil {
		t.Fatal(err)
	}
	if string(val) != "hello\r\n" {
		t.Fatalf("GET body: got %q", val)
	}

	// Tenants are isolated on the wire too.
	c.expect("GET bob greeting", "MISS")

	c.expect("DEL alice greeting", "DELETED")
	c.expect("DEL alice greeting", "MISS")
	c.expect("GET alice greeting", "MISS")

	// TENANT LIST enumerates registered tenants.
	c.send("TENANT LIST")
	got := c.linesUntilEND()
	want := []string{"TENANT alice 0", "TENANT bob 1"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("TENANT LIST: got %q want %q", got, want)
	}

	c.expect("TENANT DEL bob", "OK")

	// Errors are reported, and the connection stays usable.
	c.expect("GET nobody k", `ERR service: unknown tenant "nobody"`)
	c.expect("FROB", `ERR unknown command "FROB"`)
	c.expect("GET alice", "ERR usage: GET <tenant> <key>")
	c.expect("PUT alice k notanumber", `ERR bad value length "notanumber"`)
	c.expect("PING", "PONG")

	// STATS <tenant> emits STAT lines ending in END.
	c.send("STATS alice")
	stats := c.linesUntilEND()
	if len(stats) == 0 {
		t.Fatal("STATS alice returned no STAT lines")
	}
	found := false
	for _, l := range stats {
		if strings.HasPrefix(l, "STAT gets ") {
			found = true
		}
		if !strings.HasPrefix(l, "STAT ") {
			t.Fatalf("STATS line %q lacks STAT prefix", l)
		}
	}
	if !found {
		t.Fatalf("STATS alice missing gets counter: %q", stats)
	}

	// Global STATS includes service-level and per-tenant keys.
	c.send("STATS")
	all := strings.Join(c.linesUntilEND(), "\n")
	for _, want := range []string{"STAT ops ", "STAT shards 1", "STAT cache_lines 512", "STAT tenant.alice.gets "} {
		if !strings.Contains(all, want) {
			t.Fatalf("global STATS missing %q in:\n%s", want, all)
		}
	}

	c.expect("QUIT", "BYE")
	if _, err := c.r.ReadString('\n'); err == nil {
		t.Fatal("connection still open after QUIT")
	}
}

// readValue asserts a "VALUE <n>" header followed by the body.
func (c *testClient) readValue(want string) {
	c.t.Helper()
	if got := c.line(); got != fmt.Sprintf("VALUE %d", len(want)) {
		c.t.Fatalf("value header: got %q want VALUE %d", got, len(want))
	}
	body := make([]byte, len(want)+2)
	if _, err := io.ReadFull(c.r, body); err != nil {
		c.t.Fatal(err)
	}
	if string(body) != want+"\r\n" {
		c.t.Fatalf("value body: got %q want %q", body, want+"\r\n")
	}
}

func TestProtocolMGET(t *testing.T) {
	_, srv := newTestServer(t)
	c := dialTest(t, srv.Addr().String())
	c.expect("TENANT ADD alice", "OK 0")
	c.sendRaw("PUT alice k1 4\r\naaaa\r\n")
	if got := c.line(); got != "STORED" {
		t.Fatalf("PUT k1: %q", got)
	}
	c.sendRaw("PUT alice k3 2\r\ncc\r\n")
	if got := c.line(); got != "STORED" {
		t.Fatalf("PUT k3: %q", got)
	}

	// Responses arrive in key order: hit, miss, hit, then END.
	c.send("MGET alice 3 k1 k2 k3")
	c.readValue("aaaa")
	if got := c.line(); got != "MISS" {
		t.Fatalf("k2: got %q want MISS", got)
	}
	c.readValue("cc")
	if got := c.line(); got != "END" {
		t.Fatalf("terminator: got %q want END", got)
	}

	// Errors are a single ERR line — no partial response — and the
	// connection stays usable.
	c.expect("MGET alice 2 k1", "ERR MGET count 2 does not match 1 keys")
	c.expect("MGET alice 0", `ERR bad MGET count "0" (max 1024)`)
	c.expect("MGET alice", "ERR usage: MGET <tenant> <count> <key...>")
	c.expect("MGET nobody 1 k1", `ERR service: unknown tenant "nobody"`)
	c.expect("PING", "PONG")
}

// TestProtocolPipelining sends a batch of commands in one write and checks
// all responses come back in order — the deferred-flush dispatcher must not
// stall a response waiting for more input.
func TestProtocolPipelining(t *testing.T) {
	_, srv := newTestServer(t)
	c := dialTest(t, srv.Addr().String())
	c.expect("TENANT ADD alice", "OK 0")

	c.sendRaw("PUT alice p1 3\r\nabc\r\n" +
		"GET alice p1\r\n" +
		"GET alice nosuch\r\n" +
		"MGET alice 2 p1 nosuch\r\n" +
		"PING\r\n")
	if got := c.line(); got != "STORED" {
		t.Fatalf("pipelined PUT: %q", got)
	}
	c.readValue("abc")
	if got := c.line(); got != "MISS" {
		t.Fatalf("pipelined GET miss: %q", got)
	}
	c.readValue("abc")
	if got := c.line(); got != "MISS" {
		t.Fatalf("pipelined MGET miss: %q", got)
	}
	if got := c.line(); got != "END" {
		t.Fatalf("pipelined MGET terminator: %q", got)
	}
	if got := c.line(); got != "PONG" {
		t.Fatalf("pipelined PING: %q", got)
	}
}

// TestProtocolPutKeyTooLongKeepsStream covers the PUT desync bug: a PUT whose
// key fails validation must still consume its declared value block. Before
// the fix the handler returned the error with the payload unread, so the
// payload bytes were parsed as commands — here "XXXXX" would produce a second
// spurious ERR and desync every later response.
func TestProtocolPutKeyTooLongKeepsStream(t *testing.T) {
	_, srv := newTestServer(t)
	c := dialTest(t, srv.Addr().String())
	c.expect("TENANT ADD alice", "OK 0")

	longKey := strings.Repeat("k", maxKeyLen+1)
	c.sendRaw("PUT alice " + longKey + " 5\r\nXXXXX\r\n")
	if got := c.line(); got != "ERR key too long" {
		t.Fatalf("oversized-key PUT: got %q", got)
	}
	// The stream is still in sync: the payload was drained, not re-parsed.
	c.expect("PING", "PONG")
	c.sendRaw("PUT alice ok 2\r\nhi\r\n")
	if got := c.line(); got != "STORED" {
		t.Fatalf("PUT after drained error: %q", got)
	}

	// An oversized value length cannot be drained; the server refuses and
	// closes the connection.
	c2 := dialTest(t, srv.Addr().String())
	c2.send(fmt.Sprintf("PUT alice k %d", maxValueLen+1))
	if got := c2.line(); !strings.HasPrefix(got, "ERR value length") {
		t.Fatalf("oversized-value PUT: got %q", got)
	}
	if _, err := c2.r.ReadString('\n'); err == nil {
		t.Fatal("connection still open after oversized-value PUT")
	}
}

func TestProtocolGracefulClose(t *testing.T) {
	svc := newTestService(t, Config{Shards: 1, LinesPerShard: 256, MaxTenants: 2, Seed: 10})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(svc, lis)

	c := dialTest(t, srv.Addr().String())
	c.expect("PING", "PONG") // connection established and handled

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// Close is idempotent.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// The open connection was shut down.
	if _, err := c.r.ReadString('\n'); err == nil {
		t.Fatal("connection still open after server Close")
	}
	// No new connections are accepted.
	if conn, err := net.Dial("tcp", srv.Addr().String()); err == nil {
		conn.Close()
		t.Fatal("dial succeeded after server Close")
	}
}

func TestMetricsHandler(t *testing.T) {
	svc := newTestService(t, Config{Shards: 1, LinesPerShard: 256, MaxTenants: 2, Seed: 12})
	svc.AddTenant("alice")
	svc.Put("alice", "k", []byte("v"))
	svc.Get("alice", "k")

	rec := httptest.NewRecorder()
	svc.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"vantaged_ops_total 2",
		"vantaged_cache_lines 256",
		`vantaged_tenant_gets_total{tenant="alice"} 1`,
		`vantaged_tenant_hits_total{tenant="alice"} 1`,
		`vantaged_tenant_hit_ratio{tenant="alice"} 1`,
		"# TYPE vantaged_tenant_occupancy_lines gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("metrics body:\n%s", body)
	}
}

// TestProtocolConcurrentConnections exercises many concurrent protocol
// clients against one server — the one-goroutine-per-connection path.
func TestProtocolConcurrentConnections(t *testing.T) {
	_, srv := newTestServer(t)
	const conns = 8
	done := make(chan error, conns)
	for i := 0; i < conns; i++ {
		go func(i int) {
			done <- func() error {
				conn, err := net.Dial("tcp", srv.Addr().String())
				if err != nil {
					return err
				}
				defer conn.Close()
				r := bufio.NewReader(conn)
				rt := func(line string) (string, error) {
					if _, err := io.WriteString(conn, line+"\r\n"); err != nil {
						return "", err
					}
					resp, err := r.ReadString('\n')
					return strings.TrimRight(resp, "\r\n"), err
				}
				tenant := fmt.Sprintf("t%d", i%2)
				if resp, err := rt("TENANT ADD " + tenant); err != nil || !strings.HasPrefix(resp, "OK") {
					return fmt.Errorf("TENANT ADD: %q %v", resp, err)
				}
				for op := 0; op < 200; op++ {
					key := fmt.Sprintf("c%d-k%d", i, op%20)
					if _, err := io.WriteString(conn, fmt.Sprintf("PUT %s %s 3\r\nabc\r\n", tenant, key)); err != nil {
						return err
					}
					if resp, err := r.ReadString('\n'); err != nil || strings.TrimRight(resp, "\r\n") != "STORED" {
						return fmt.Errorf("PUT: %q %v", resp, err)
					}
					resp, err := rt("GET " + tenant + " " + key)
					if err != nil {
						return err
					}
					if strings.HasPrefix(resp, "VALUE ") {
						if _, err := io.ReadFull(r, make([]byte, 3+2)); err != nil {
							return err
						}
					} else if resp != "MISS" {
						return fmt.Errorf("GET: %q", resp)
					}
				}
				return nil
			}()
		}(i)
	}
	for i := 0; i < conns; i++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}
