package service

import "time"

// This file is the Service's cluster-facing surface: the versioned tenant
// registry replication hooks and the key-export used for re-homing. The
// cluster package drives these; the surface lives here so the binary
// protocol can apply registry frames (and be fuzzed) with no cluster
// handler installed at all.
//
// The model is the paper's §5 banked-cache scaling transposed to processes:
// every node holds a full copy of the tenant registry (the "per-partition
// target registers" replicated across banks) while the keys themselves are
// spread across nodes by the cluster ring, so each node enforces Vantage
// partitioning locally on the keys it owns with no cross-node coordination
// on the data path.

// ClusterHandler is the cluster package's hook into registry mutations.
// AnnounceAdd/AnnounceRemove are called by origin-side AddTenant and
// RemoveTenant — after the local mutation committed and with no service
// locks held — to replicate the op to every peer. The remaining methods
// surface cluster topology for STATS/metrics and the CLUSTER verb.
type ClusterHandler interface {
	AnnounceAdd(version uint64, name string)
	AnnounceRemove(version uint64, name string)
	Peers() int
	Self() string
	Members() []string
	// SetMembers installs a new member set, re-homing any keys this node no
	// longer owns. It returns the number of keys drained to peers.
	SetMembers(members []string) (uint64, error)
}

// clusterHolder wraps the interface for atomic.Pointer (interfaces cannot
// be stored in atomic.Pointer directly).
type clusterHolder struct{ h ClusterHandler }

// SetClusterHandler installs (or, with nil, removes) the cluster handler.
func (s *Service) SetClusterHandler(h ClusterHandler) {
	if h == nil {
		s.cluster.Store(nil)
		return
	}
	s.cluster.Store(&clusterHolder{h: h})
}

func (s *Service) clusterHandler() ClusterHandler {
	if c := s.cluster.Load(); c != nil {
		return c.h
	}
	return nil
}

// ClusterVersion returns the registry version: 0 until the first clustered
// registry mutation, then monotonically increasing and convergent across
// peers (origin ops increment, replicas max-merge).
func (s *Service) ClusterVersion() uint64 { return s.clusterVersion.Load() }

// mergeClusterVersion raises the local version to at least v.
func (s *Service) mergeClusterVersion(v uint64) uint64 {
	for {
		cur := s.clusterVersion.Load()
		if v <= cur {
			return cur
		}
		if s.clusterVersion.CompareAndSwap(cur, v) {
			return v
		}
	}
}

// ApplyRegistryOp applies one replicated registry mutation received from a
// peer: add or remove tenant name, stamped with the origin's registry
// version. Removal of an unknown tenant is a no-op, not an error — the
// remove may race a concurrent origin-side remove, and convergence is the
// point. Returns the local registry version after the merge.
func (s *Service) ApplyRegistryOp(version uint64, add bool, name string) (uint64, error) {
	var err error
	if add {
		_, err = s.addTenantInner(name, false)
	} else if rerr := s.removeTenantInner(name, false); rerr != nil {
		if _, known := s.reg.Load().tenants[name]; known {
			err = rerr
		}
	}
	if err != nil {
		return s.clusterVersion.Load(), err
	}
	return s.mergeClusterVersion(version), nil
}

// RegistrySnapshot returns the registry version and the tenant names it
// covers, for bootstrap pulls by (re)joining peers. The version is read
// before the name list, so a concurrent mutation can only make the
// snapshot under-versioned — the puller will max-merge a later version
// from the next replicated op.
func (s *Service) RegistrySnapshot() (uint64, []string) {
	v := s.clusterVersion.Load()
	return v, s.TenantNames()
}

// SyncRegistry adopts a peer's registry snapshot: every listed tenant is
// registered locally (idempotently) and the version is max-merged. Local
// tenants absent from the snapshot are kept — a snapshot is a floor, not
// the full truth, and removal only travels as explicit ops.
func (s *Service) SyncRegistry(version uint64, names []string) error {
	for _, name := range names {
		if _, err := s.addTenantInner(name, false); err != nil {
			return err
		}
	}
	s.mergeClusterVersion(version)
	return nil
}

// AddRehomedOut credits n keys drained to peers on a membership change.
func (s *Service) AddRehomedOut(n uint64) { s.rehomedOut.Add(n) }

// RehomedCounts returns the lifetime (drained-out, received-in) re-homing
// counters.
func (s *Service) RehomedCounts() (out, in uint64) {
	return s.rehomedOut.Load(), s.rehomedIn.Load()
}

// exportRec is one live entry snapshotted by Export.
type exportRec struct {
	tenant string
	key    string
	val    []byte
	ttlMS  int64
}

// Export visits every live entry in the store as (tenant, key, value,
// remaining TTL in ms; -1 when the entry never expires). Entries whose
// tenant is being purged and entries already past their deadline are
// skipped. Shards are walked one at a time: records are collected under
// the shard lock, then visited with no locks held, so visit may call back
// into the Service (Delete, Put) freely. The value slices alias the store —
// safe because stored values are immutable snapshots (every PUT installs a
// fresh copy). Returning false from visit stops the walk.
//
// Export is the re-homing producer: on membership change the cluster layer
// exports, routes each record through the new ring, and streams records
// that moved to their new owner with TTLs preserved.
func (s *Service) Export(visit func(tenant, key string, val []byte, ttlMS int64) bool) {
	reg := s.reg.Load()
	now := s.clk.Now().UnixNano()
	var recs []exportRec
	for _, sh := range s.shards {
		recs = recs[:0]
		sh.mu.Lock()
		for addr, e := range sh.store {
			part := int(addr>>40) - 1
			if part < 0 || part >= len(reg.byPart) {
				continue
			}
			t := reg.byPart[part]
			if t == nil || reg.tenants[t.name] != t {
				continue // slot purging or stale
			}
			ttlMS := int64(-1)
			if e.exp != 0 {
				rem := e.exp - now
				if rem <= 0 {
					continue // already dead; let expiry reclaim it
				}
				ttlMS = rem / int64(time.Millisecond)
				if ttlMS < 1 {
					ttlMS = 1
				}
			}
			recs = append(recs, exportRec{tenant: t.name, key: e.key, val: e.val, ttlMS: ttlMS})
		}
		sh.mu.Unlock()
		for _, r := range recs {
			if !visit(r.tenant, r.key, r.val, r.ttlMS) {
				return
			}
		}
	}
}
