package service

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"vantage/internal/clock"
)

// aLongTimeAgo is a time far in the past. Setting a connection deadline to
// it forces any blocked or future read/write to return a timeout
// immediately (the net-package idiom for interrupting I/O).
var aLongTimeAgo = time.Unix(1, 0)

// watchdog enforces one side's I/O window (read or write) on a connection
// using a clock.Clock timer instead of kernel deadline arithmetic, so the
// overload windows run on the fake clock in tests. When the window expires,
// the timer callback sets the connection deadline to aLongTimeAgo, forcing
// the pending I/O to return a timeout — which the handler classifies with
// isTimeout exactly as a kernel deadline expiry. The fire path revalidates
// against the armed deadline under a mutex, so a stale fire from a
// superseded window (timer raced with a successful I/O and a re-arm) cannot
// poison the new window.
type watchdog struct {
	clk clock.Clock
	set func(time.Time) error

	mu       sync.Mutex
	deadline time.Time // zero when disarmed
	poisoned bool      // fire has set a past deadline not yet cleared
	t        clock.Timer
}

func newWatchdog(clk clock.Clock, set func(time.Time) error) *watchdog {
	w := &watchdog{clk: clk, set: set}
	w.t = clk.AfterFunc(time.Hour, w.fire)
	w.t.Stop()
	return w
}

func (w *watchdog) fire() {
	w.mu.Lock()
	if !w.deadline.IsZero() && !w.clk.Now().Before(w.deadline) {
		w.deadline = time.Time{}
		w.poisoned = true
		w.set(aLongTimeAgo)
	}
	w.mu.Unlock()
}

// arm starts a fresh window of d, clearing any poison a previous fire left.
func (w *watchdog) arm(d time.Duration) {
	w.mu.Lock()
	w.deadline = w.clk.Now().Add(d)
	if w.poisoned {
		w.poisoned = false
		w.set(time.Time{})
	}
	w.t.Reset(d)
	w.mu.Unlock()
}

// disarm cancels the window. A poison already applied stays (the I/O it
// interrupted has its timeout either way); the next arm clears it.
func (w *watchdog) disarm() {
	w.mu.Lock()
	w.deadline = time.Time{}
	w.t.Stop()
	w.mu.Unlock()
}

// The vantaged wire protocol is a memcached-style CRLF text protocol, one
// connection-handler goroutine per client:
//
//	GET <tenant> <key>                 -> VALUE <n>\r\n<bytes>\r\n | MISS
//	MGET <tenant> <k> <key...>         -> k responses (VALUE block | MISS), then END
//	PUT <tenant> <key> <n> [EXPIRE <ms>]\r\n<bytes>
//	                                   -> STORED | ERR <msg>
//	DEL <tenant> <key>                 -> DELETED | MISS
//	TOUCH <tenant> <key> <ms>          -> TOUCHED | MISS   (EXPIRE is an alias)
//	TENANT ADD <name>                  -> OK <partition>
//	TENANT DEL <name>                  -> OK
//	TENANT LIST                        -> TENANT <name> <part> ... END
//	STATS [<tenant>]                   -> STAT <k> <v> ... END
//	PING                               -> PONG
//	QUIT                               -> closes the connection
//
// A PUT's optional EXPIRE clause gives the entry a TTL in milliseconds;
// EXPIRE 0 stores a non-expiring entry even when the service has a default
// TTL. TOUCH resets a live entry's TTL to <ms> from now (0 clears it) and
// answers MISS for absent or already-expired entries.
//
// Lines end in \r\n; bare \n is accepted. Errors are "ERR <msg>".
//
// The protocol is pipelining-safe: clients may send many commands without
// waiting for responses, and responses come back in order. The server
// defers flushing its write buffer until the read buffer drains, so one
// round trip (and one syscall each way) carries a whole batch of commands.
// MGET is the batch read: one line requests k keys and the k responses
// arrive in key order, terminated by END.
//
// A PUT whose declared length is valid but whose key, arity, or EXPIRE
// clause fails validation still consumes the declared value block, so a
// validation error never desyncs the stream. A PUT with an unparseable length cannot be skipped (the block
// length is unknown) and a PUT with a length above the 1 MiB cap will not
// be drained; the latter closes the connection.
//
// # Overload behavior
//
// The server degrades instead of collapsing, the same philosophy Vantage
// applies to cache capacity (§3.4: shed the weakest demands, never fail the
// mechanism). Every limit below is off (0) by default and enabled via
// ServerConfig:
//
//   - Connections beyond MaxConns are fast-rejected: the server writes the
//     single line "BUSY" and closes, instead of letting the accept queue
//     pile up. Rejections count toward vantaged_conns_rejected_total.
//   - Data commands (GET/MGET/PUT/DEL) beyond MaxInflight wait up to
//     InflightWait for a slot (backpressure), then are shed with
//     "ERR SHED server overloaded"; the connection stays usable. Per-tenant
//     MaxTenantInflight sheds immediately — blocking behind one saturated
//     tenant would leak its overload into everyone else's latency.
//     Shed requests count toward vantaged_requests_shed_total.
//   - IdleTimeout bounds the wall-clock time a whole command line may take
//     to arrive (it is an absolute window armed before each command, so a
//     slow-loris client dribbling one byte at a time is reaped, not just a
//     silent one). ReadTimeout re-arms the window for a PUT's payload;
//     WriteTimeout bounds each flush. Deadline closes count toward
//     vantaged_deadline_closes_total. The windows run on the service's
//     injected clock via watchdog timers (see watchdog), not on kernel
//     deadline arithmetic, so overload tests drive them with a fake clock.
//   - Command lines are capped at maxLineLen; an oversized line gets
//     "ERR line too long" and the connection closes (the line cannot be
//     resynced without reading it).
//
// An installed FaultInjector (see fault.go) adds induced failures: shard-path
// faults surface as "ERR FAULT injected" replies, dispatcher drop faults
// close the connection before the command executes. An MGET whose per-key
// reads fail mid-batch aborts with a single ERR line in place of the
// remaining responses (no END); clients must treat an ERR line as
// terminating the batch. The stream itself stays in sync.
const (
	maxKeyLen   = 250
	maxValueLen = 1 << 20
	// maxBatchKeys bounds the keys per MGET command.
	maxBatchKeys = 1024
	// maxLineLen bounds one command line. The largest legitimate line is an
	// MGET of maxBatchKeys maximum-length keys (~256 KiB); 512 KiB leaves
	// headroom while still bounding what a hostile client can pin.
	maxLineLen = 512 << 10
)

// Wire limits mirrored by ring-aware clients and the cluster proxy, which
// must pre-validate frames before pipelining them onto shared backend
// connections (a malformed frame would kill a connection other clients
// are riding).
const (
	MaxKeyLen    = maxKeyLen
	MaxValueLen  = maxValueLen
	MaxBatchKeys = maxBatchKeys
)

// ServerConfig are the serving-layer overload knobs. The zero value imposes
// no limits, no deadlines, and no fault injection — the pre-hardening
// behavior.
type ServerConfig struct {
	// MaxConns caps concurrently served connections; excess connections are
	// fast-rejected with "BUSY". 0 = unlimited.
	MaxConns int
	// MaxInflight caps data commands executing concurrently across all
	// connections. 0 = unlimited.
	MaxInflight int
	// MaxTenantInflight caps data commands executing concurrently per
	// tenant. 0 = unlimited.
	MaxTenantInflight int
	// InflightWait is how long a command waits for a global in-flight slot
	// before being shed (the backpressure window). Default 10ms when
	// MaxInflight > 0.
	InflightWait time.Duration
	// IdleTimeout is the absolute deadline for a full command line to
	// arrive, armed before each read of the next command; it reaps idle and
	// slow-loris connections alike. 0 = no deadline.
	IdleTimeout time.Duration
	// ReadTimeout re-arms the read deadline for a PUT value block. 0 =
	// inherit the command's IdleTimeout deadline.
	ReadTimeout time.Duration
	// WriteTimeout bounds each response flush. 0 = no deadline.
	WriteTimeout time.Duration
}

// Server serves the wire protocols over a listener. Create with Serve or
// ServeWith. A connection's first byte selects the protocol: binMagic
// (0x83, which can never start a CRLF verb) negotiates the binary framing
// (see binproto.go), anything else is the text protocol.
type Server struct {
	svc *Service
	lis net.Listener
	cfg ServerConfig
	sem chan struct{} // global in-flight slots; nil when MaxInflight == 0

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed atomic.Bool

	// Binary-protocol state (see binproto.go, binring.go): per-shard request
	// rings and their workers, started by the first binary handshake, plus
	// the platform event-loop poller (nil where unsupported). Poller-owned
	// connections leave s.conns (the poller owns their fds); binEpoll keeps
	// them counted toward MaxConns.
	binOnce  sync.Once
	binRings []*binRing
	binStop  chan struct{}
	binPoll  atomic.Pointer[binPoller]
	binEpoll atomic.Int64
	// binNoPoll forces the portable goroutine-per-connection binary
	// transport even where an event loop exists — a test seam.
	binNoPoll bool
}

// Serve starts accepting connections on lis and handling them against svc,
// one goroutine per connection, with no limits or deadlines. It returns
// immediately.
func Serve(svc *Service, lis net.Listener) *Server {
	return ServeWith(svc, lis, ServerConfig{})
}

// ServeWith is Serve with overload limits (see ServerConfig).
func ServeWith(svc *Service, lis net.Listener, cfg ServerConfig) *Server {
	if cfg.MaxInflight > 0 && cfg.InflightWait == 0 {
		cfg.InflightWait = 10 * time.Millisecond
	}
	s := &Server{svc: svc, lis: lis, cfg: cfg, conns: make(map[net.Conn]struct{}), binStop: make(chan struct{})}
	if cfg.MaxInflight > 0 {
		s.sem = make(chan struct{}, cfg.MaxInflight)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener address.
func (s *Server) Addr() net.Addr { return s.lis.Addr() }

// Close shuts the server down gracefully: stop accepting, close every open
// connection (interrupting blocked reads; in-flight commands finish first
// because handlers write their response before reading the next line), and
// wait for all handlers to return.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := s.lis.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	// Binary teardown: the poller closes its connections and exits, then
	// binStop releases the shard workers (they drain their rings first, but
	// writes to closed connections are suppressed).
	if p := s.binPoll.Load(); p != nil {
		p.stop()
	}
	close(s.binStop)
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			conn.Close()
			return
		}
		if s.cfg.MaxConns > 0 && len(s.conns)+int(s.binEpoll.Load()) >= s.cfg.MaxConns {
			s.mu.Unlock()
			s.svc.connsRejected.Add(1)
			// Fast-reject off the accept loop: a client that never reads
			// must not be able to stall accepting. The write deadline bounds
			// the goroutine's lifetime.
			s.wg.Add(1)
			go func(c net.Conn) {
				defer s.wg.Done()
				wd := newWatchdog(s.svc.clk, c.SetWriteDeadline)
				wd.arm(time.Second)
				io.WriteString(c, "BUSY\r\n")
				wd.disarm()
				c.Close()
			}(conn)
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// connState is the per-connection scratch space: parsed fields alias the
// read buffer, num holds strconv.Append output, and tenant/key/val are the
// buffers a PUT copies its header fields into before the payload read
// invalidates the read buffer. Pooled across connections so a steady-state
// connection allocates nothing per command.
type connState struct {
	fields [][]byte
	num    []byte
	tenant []byte
	key    []byte
	val    []byte
	// rwd is the connection's read watchdog, set by handle when read
	// windows are configured; PUT re-arms it for the payload. nil for
	// tests that drive dispatch directly and for unconfigured servers.
	rwd *watchdog
}

var (
	readerPool = sync.Pool{New: func() any { return bufio.NewReaderSize(nil, 16<<10) }}
	writerPool = sync.Pool{New: func() any { return bufio.NewWriterSize(io.Discard, 16<<10) }}
	statePool  = sync.Pool{New: func() any { return &connState{num: make([]byte, 0, 24)} }}
)

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	r := readerPool.Get().(*bufio.Reader)
	r.Reset(conn)
	var rwd *watchdog
	if s.cfg.IdleTimeout > 0 || s.cfg.ReadTimeout > 0 {
		rwd = newWatchdog(s.svc.clk, conn.SetReadDeadline)
	}
	// Protocol negotiation on the first byte: binMagic can never start a
	// text verb, and no text command starts with a byte >= 0x80, so one
	// peek is unambiguous. The idle window covers the wait for that byte.
	if rwd != nil && s.cfg.IdleTimeout > 0 {
		rwd.arm(s.cfg.IdleTimeout)
	}
	if first, err := r.Peek(1); err != nil || first[0] == binMagic {
		if err == nil {
			s.handleBinary(conn, r, rwd)
			return
		}
		if isTimeout(err) {
			s.svc.deadlineCloses.Add(1)
		}
		if rwd != nil {
			rwd.disarm()
		}
		r.Reset(nil)
		readerPool.Put(r)
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		return
	}
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	w := writerPool.Get().(*bufio.Writer)
	w.Reset(conn)
	cs := statePool.Get().(*connState)
	var wwd *watchdog
	if rwd != nil {
		cs.rwd = rwd
	}
	if s.cfg.WriteTimeout > 0 {
		wwd = newWatchdog(s.svc.clk, conn.SetWriteDeadline)
	}
	defer func() {
		if rwd != nil {
			rwd.disarm()
		}
		if wwd != nil {
			wwd.disarm()
		}
		cs.rwd = nil
		r.Reset(nil)
		readerPool.Put(r)
		w.Reset(io.Discard)
		writerPool.Put(w)
		if cap(cs.val) > 64<<10 {
			cs.val = nil // don't let one huge PUT pin a large buffer
		}
		statePool.Put(cs)
	}()
	for {
		// The idle window is absolute across all reads of this command
		// line: a slow-loris client dribbling bytes gets exactly IdleTimeout
		// of wall clock for the whole line, same as a silent one.
		if rwd != nil {
			if s.cfg.IdleTimeout > 0 {
				rwd.arm(s.cfg.IdleTimeout)
			} else {
				rwd.disarm() // ReadTimeout-only: windows cover PUT payloads
			}
		}
		line, err := readLine(r)
		if err != nil {
			if isTimeout(err) {
				s.svc.deadlineCloses.Add(1)
			} else if err == errLineTooLong {
				// The rest of the line cannot be skipped without reading it;
				// report and close.
				w.WriteString("ERR line too long\r\n")
				w.Flush()
			}
			return // EOF, deadline, or closed connection
		}
		var quit bool
		if h := s.svc.latency; h != nil {
			t0 := s.svc.clk.Now()
			quit, err = s.dispatch(conn, line, r, w, cs)
			h.Record(s.svc.clk.Now().Sub(t0))
		} else {
			quit, err = s.dispatch(conn, line, r, w, cs)
		}
		if err != nil {
			w.WriteString("ERR ")
			w.WriteString(err.Error())
			w.WriteString("\r\n")
		}
		if quit {
			w.Flush()
			return
		}
		// Pipelining: only flush once the read buffer has drained, so the
		// responses to a batch of commands leave in as few writes as
		// possible. A client that pipelines K commands gets K responses in
		// one round trip.
		if r.Buffered() == 0 {
			if wwd != nil {
				wwd.arm(s.cfg.WriteTimeout)
			}
			err := w.Flush()
			if wwd != nil {
				wwd.disarm()
			}
			if err != nil {
				if isTimeout(err) {
					s.svc.deadlineCloses.Add(1)
				}
				return
			}
		}
	}
}

// isTimeout reports whether err is a connection deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// errLineTooLong marks a command line over maxLineLen.
var errLineTooLong = errors.New("line exceeds maximum length")

// errShed is the reply for a data command refused by an in-flight limit.
var errShed = errors.New("SHED server overloaded")

// readLine returns the next command line with its EOL trimmed. The returned
// slice aliases the reader's buffer and is valid until the next read. Lines
// longer than the buffer (large MGETs) fall back to an allocated copy,
// bounded at maxLineLen (errLineTooLong beyond that — an unbounded line
// would otherwise grow the copy until memory ran out).
func readLine(r *bufio.Reader) ([]byte, error) {
	line, err := r.ReadSlice('\n')
	if err == nil {
		return trimEOL(line), nil
	}
	if err != bufio.ErrBufferFull {
		return nil, err
	}
	buf := append([]byte(nil), line...)
	for {
		// Enforce the cap before reading more: buf holds no newline yet, so
		// at best its last byte is a '\r' about to be completed — anything
		// past maxLineLen+1 accumulated bytes cannot trim to a legal line.
		if len(buf) > maxLineLen+1 {
			return nil, errLineTooLong
		}
		line, err = r.ReadSlice('\n')
		buf = append(buf, line...)
		if err == nil {
			out := trimEOL(buf)
			if len(out) > maxLineLen {
				return nil, errLineTooLong
			}
			return out, nil
		}
		if err != bufio.ErrBufferFull {
			return nil, err
		}
	}
}

func trimEOL(b []byte) []byte {
	if n := len(b); n > 0 && b[n-1] == '\n' {
		b = b[:n-1]
	}
	if n := len(b); n > 0 && b[n-1] == '\r' {
		b = b[:n-1]
	}
	return b
}

// splitFields splits line on ASCII spaces and tabs into out (reused across
// commands). The sub-slices alias line.
func splitFields(line []byte, out [][]byte) [][]byte {
	i := 0
	for i < len(line) {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		if i >= len(line) {
			break
		}
		j := i
		for j < len(line) && line[j] != ' ' && line[j] != '\t' {
			j++
		}
		out = append(out, line[i:j])
		i = j
	}
	return out
}

// cmdEq reports whether b equals the upper-case command word s,
// ASCII-case-insensitively.
func cmdEq(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(b); i++ {
		c := b[i]
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		if c != s[i] {
			return false
		}
	}
	return true
}

// parseUintB parses a small non-negative decimal integer.
func parseUintB(b []byte) (int, bool) {
	if len(b) == 0 || len(b) > 10 {
		return 0, false
	}
	n := 0
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

// writeUint appends n in decimal to w via the connection's scratch buffer.
func (cs *connState) writeUint(w *bufio.Writer, n int) {
	cs.num = appendUint(cs.num[:0], uint64(n))
	w.Write(cs.num)
}

func appendUint(dst []byte, n uint64) []byte {
	if n == 0 {
		return append(dst, '0')
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return append(dst, buf[i:]...)
}

// writeValueResponse writes "VALUE <n>\r\n<bytes>\r\n" for a hit, or
// "MISS\r\n".
func (cs *connState) writeValueResponse(w *bufio.Writer, val []byte, hit bool) {
	if !hit {
		w.WriteString("MISS\r\n")
		return
	}
	w.WriteString("VALUE ")
	cs.writeUint(w, len(val))
	w.WriteString("\r\n")
	w.Write(val)
	w.WriteString("\r\n")
}

// beginOp reserves the in-flight slots a data command on tenant needs. It
// returns release (nil when no limit is configured, so the unlimited path
// costs two compares) and ok=false when the command must be shed. The
// per-tenant reservation is taken first and sheds immediately; the global
// reservation waits up to InflightWait (backpressure) before shedding.
func (s *Server) beginOp(tenant []byte) (release func(), ok bool) {
	var t *Tenant
	if s.cfg.MaxTenantInflight > 0 {
		t = s.svc.reg.Load().tenants[string(tenant)]
	}
	return s.beginOpT(t)
}

// beginOpT is beginOp for callers that already resolved the tenant (the
// binary shard workers). t may be nil (unknown tenant, or no per-tenant
// limit configured).
func (s *Server) beginOpT(t *Tenant) (release func(), ok bool) {
	if s.cfg.MaxTenantInflight <= 0 {
		t = nil // no per-tenant reservation: release must not decrement
	}
	if t != nil {
		for {
			cur := t.inflight.Load()
			if cur >= int64(s.cfg.MaxTenantInflight) {
				t.shed.Add(1)
				s.svc.requestsShed.Add(1)
				return nil, false
			}
			if t.inflight.CompareAndSwap(cur, cur+1) {
				break
			}
		}
	}
	if s.sem != nil {
		select {
		case s.sem <- struct{}{}:
		default:
			timer := s.svc.clk.NewTimer(s.cfg.InflightWait)
			select {
			case s.sem <- struct{}{}:
				timer.Stop()
			case <-timer.C():
				if t != nil {
					t.inflight.Add(-1)
					t.shed.Add(1)
				}
				s.svc.requestsShed.Add(1)
				return nil, false
			}
		}
	}
	if t == nil && s.sem == nil {
		return nil, true
	}
	return func() {
		if s.sem != nil {
			<-s.sem
		}
		if t != nil {
			t.inflight.Add(-1)
		}
	}, true
}

// dataOp applies the per-command overload gates for a data command: the
// dispatcher-path fault draw (drop) and the in-flight reservations. It
// returns the release func (possibly nil), drop=true when the connection
// must close without replying, and shed=true when the command is refused.
func (s *Server) dataOp(op Op, tenant []byte) (release func(), drop, shed bool) {
	if s.svc.fault.Load() != nil && s.svc.dropFault(op, string(tenant)) {
		return nil, true, false
	}
	release, ok := s.beginOp(tenant)
	return release, false, !ok
}

// dispatch executes one command line, writing the response to w. It returns
// quit=true when the connection should close. fields and their contents
// alias the read buffer; any field needed after a payload read must be
// copied first (see PUT). conn may be nil in tests that drive dispatch
// directly; deadlines are then skipped.
func (s *Server) dispatch(conn net.Conn, line []byte, r *bufio.Reader, w *bufio.Writer, cs *connState) (quit bool, err error) {
	cs.fields = splitFields(line, cs.fields[:0])
	fields := cs.fields
	if len(fields) == 0 {
		return false, nil // ignore empty lines
	}
	switch verb := fields[0]; {
	case cmdEq(verb, "GET"):
		if len(fields) != 3 {
			return false, errors.New("usage: GET <tenant> <key>")
		}
		release, drop, shed := s.dataOp(OpGet, fields[1])
		if drop {
			return true, nil
		}
		if shed {
			return false, errShed
		}
		val, hit, err := s.svc.GetB(fields[1], fields[2])
		if release != nil {
			release()
		}
		if err != nil {
			return false, err
		}
		cs.writeValueResponse(w, val, hit)
		return false, nil

	case cmdEq(verb, "MGET"):
		if len(fields) < 3 {
			return false, errors.New("usage: MGET <tenant> <count> <key...>")
		}
		k, ok := parseUintB(fields[2])
		if !ok || k < 1 || k > maxBatchKeys {
			return false, fmt.Errorf("bad MGET count %q (max %d)", fields[2], maxBatchKeys)
		}
		if len(fields) != 3+k {
			return false, fmt.Errorf("MGET count %d does not match %d keys", k, len(fields)-3)
		}
		// Resolve the tenant before writing anything so an unknown tenant
		// yields a single ERR line, not a partial response.
		if s.svc.reg.Load().tenants[string(fields[1])] == nil {
			return false, fmt.Errorf("service: unknown tenant %q", fields[1])
		}
		release, drop, shed := s.dataOp(OpMGet, fields[1])
		if drop {
			return true, nil
		}
		if shed {
			return false, errShed
		}
		if release != nil {
			defer release()
		}
		for _, key := range fields[3 : 3+k] {
			val, hit, err := s.svc.GetB(fields[1], key)
			if err != nil {
				// Mid-batch failure (an injected shard fault): the batch
				// aborts with this ERR line in place of the remaining
				// responses and no END. The line stream stays in sync.
				return false, err
			}
			cs.writeValueResponse(w, val, hit)
		}
		w.WriteString("END\r\n")
		s.svc.mgets.Add(1)
		return false, nil

	case cmdEq(verb, "PUT"):
		if len(fields) < 4 {
			return false, errors.New("usage: PUT <tenant> <key> <bytes> [EXPIRE <ms>]")
		}
		n, ok := parseUintB(fields[3])
		if !ok {
			return false, fmt.Errorf("bad value length %q", fields[3])
		}
		if n > maxValueLen {
			// The stream cannot be resynced without draining an oversized
			// block; refuse and close.
			return true, fmt.Errorf("value length %d exceeds maximum %d", n, maxValueLen)
		}
		// Any PUT whose <bytes> parses has a value block on the wire, even
		// when the trailing fields are malformed (5 fields, 7+ fields): the
		// block must be drained below or it desyncs every later response.
		badArity := len(fields) != 4 && len(fields) != 6
		// ttlMS: -1 = no EXPIRE clause (use the service default TTL),
		// -2 = malformed clause (drain the block, then report).
		ttlMS := -1
		if len(fields) == 6 {
			if v, ok := parseUintB(fields[5]); ok && cmdEq(fields[4], "EXPIRE") {
				ttlMS = v
			} else {
				ttlMS = -2
			}
		}
		// The value block is part of the command, so its reads get a fresh
		// window: a client that stalls mid-payload is reaped just like a
		// slow-loris command line.
		if cs.rwd != nil && s.cfg.ReadTimeout > 0 {
			cs.rwd.arm(s.cfg.ReadTimeout)
		}
		if len(fields[2]) > maxKeyLen || ttlMS == -2 || badArity {
			// Validation failed but the declared value block is still on
			// the wire: drain it so the next line parses as a command.
			if _, err := io.CopyN(io.Discard, r, int64(n)); err != nil {
				if isTimeout(err) {
					s.svc.deadlineCloses.Add(1)
				}
				return true, errors.New("short value")
			}
			discardEOL(r)
			if badArity {
				return false, errors.New("usage: PUT <tenant> <key> <bytes> [EXPIRE <ms>]")
			}
			if len(fields[2]) > maxKeyLen {
				return false, errors.New("key too long")
			}
			return false, errors.New("bad EXPIRE clause (want EXPIRE <ms>)")
		}
		// The payload read below invalidates the read buffer the fields
		// alias; copy tenant and key out first.
		cs.tenant = append(cs.tenant[:0], fields[1]...)
		cs.key = append(cs.key[:0], fields[2]...)
		if cap(cs.val) < n {
			cs.val = make([]byte, n)
		}
		val := cs.val[:n]
		if _, err := io.ReadFull(r, val); err != nil {
			if isTimeout(err) {
				s.svc.deadlineCloses.Add(1)
			}
			return true, errors.New("short value")
		}
		discardEOL(r)
		release, drop, shed := s.dataOp(OpPut, cs.tenant)
		if drop {
			return true, nil
		}
		if shed {
			return false, errShed
		}
		if ttlMS >= 0 {
			err = s.svc.PutBTTL(cs.tenant, cs.key, val, time.Duration(ttlMS)*time.Millisecond)
		} else {
			err = s.svc.PutB(cs.tenant, cs.key, val)
		}
		if release != nil {
			release()
		}
		if err != nil {
			return false, err
		}
		w.WriteString("STORED\r\n")
		return false, nil

	case cmdEq(verb, "DEL"):
		if len(fields) != 3 {
			return false, errors.New("usage: DEL <tenant> <key>")
		}
		release, drop, shed := s.dataOp(OpDelete, fields[1])
		if drop {
			return true, nil
		}
		if shed {
			return false, errShed
		}
		present, err := s.svc.DeleteB(fields[1], fields[2])
		if release != nil {
			release()
		}
		if err != nil {
			return false, err
		}
		if present {
			w.WriteString("DELETED\r\n")
		} else {
			w.WriteString("MISS\r\n")
		}
		return false, nil

	case cmdEq(verb, "TOUCH"), cmdEq(verb, "EXPIRE"):
		if len(fields) != 4 {
			return false, errors.New("usage: TOUCH <tenant> <key> <ms>")
		}
		ms, ok := parseUintB(fields[3])
		if !ok {
			return false, fmt.Errorf("bad TTL milliseconds %q", fields[3])
		}
		release, drop, shed := s.dataOp(OpTouch, fields[1])
		if drop {
			return true, nil
		}
		if shed {
			return false, errShed
		}
		live, err := s.svc.TouchB(fields[1], fields[2], time.Duration(ms)*time.Millisecond)
		if release != nil {
			release()
		}
		if err != nil {
			return false, err
		}
		if live {
			w.WriteString("TOUCHED\r\n")
		} else {
			w.WriteString("MISS\r\n")
		}
		return false, nil

	case cmdEq(verb, "TENANT"):
		if len(fields) < 2 {
			return false, errors.New("usage: TENANT ADD|DEL|LIST ...")
		}
		switch sub := fields[1]; {
		case cmdEq(sub, "ADD"):
			if len(fields) != 3 {
				return false, errors.New("usage: TENANT ADD <name>")
			}
			part, err := s.svc.AddTenant(string(fields[2]))
			if err != nil {
				return false, err
			}
			w.WriteString("OK ")
			cs.writeUint(w, part)
			w.WriteString("\r\n")
		case cmdEq(sub, "DEL"):
			if len(fields) != 3 {
				return false, errors.New("usage: TENANT DEL <name>")
			}
			if err := s.svc.RemoveTenant(string(fields[2])); err != nil {
				return false, err
			}
			w.WriteString("OK\r\n")
		case cmdEq(sub, "LIST"):
			for _, ts := range s.svc.Stats().Tenants {
				fmt.Fprintf(w, "TENANT %s %d\r\n", ts.Name, ts.Partition)
			}
			w.WriteString("END\r\n")
		default:
			return false, fmt.Errorf("unknown TENANT subcommand %q", fields[1])
		}
		return false, nil

	case cmdEq(verb, "STATS"):
		if len(fields) > 2 {
			return false, errors.New("usage: STATS [<tenant>]")
		}
		st := s.svc.Stats()
		if len(fields) == 2 {
			for _, ts := range st.Tenants {
				if ts.Name == string(fields[1]) {
					writeTenantStats(w, "", ts)
					w.WriteString("END\r\n")
					return false, nil
				}
			}
			return false, fmt.Errorf("unknown tenant %q", fields[1])
		}
		fmt.Fprintf(w, "STAT ops %d\r\n", st.Ops)
		fmt.Fprintf(w, "STAT mgets %d\r\n", st.MGets)
		fmt.Fprintf(w, "STAT conns_rejected %d\r\n", st.ConnsRejected)
		fmt.Fprintf(w, "STAT requests_shed %d\r\n", st.RequestsShed)
		fmt.Fprintf(w, "STAT deadline_closes %d\r\n", st.DeadlineCloses)
		fmt.Fprintf(w, "STAT repartitions %d\r\n", st.Repartitions)
		fmt.Fprintf(w, "STAT umon_drains %d\r\n", st.UMONDrains)
		fmt.Fprintf(w, "STAT expired_total %d\r\n", st.Expired)
		fmt.Fprintf(w, "STAT sweep_lines %d\r\n", st.SweepLines)
		fmt.Fprintf(w, "STAT sweep_passes %d\r\n", st.SweepPasses)
		fmt.Fprintf(w, "STAT exp_heap_entries %d\r\n", st.ExpHeapEntries)
		fmt.Fprintf(w, "STAT bin_conns %d\r\n", st.BinConns)
		fmt.Fprintf(w, "STAT bin_conns_active %d\r\n", st.BinConnsActive)
		fmt.Fprintf(w, "STAT bin_frames %d\r\n", st.BinFrames)
		fmt.Fprintf(w, "STAT bmget_keys %d\r\n", st.BmgetKeys)
		fmt.Fprintf(w, "STAT shards %d\r\n", st.Shards)
		fmt.Fprintf(w, "STAT cache_lines %d\r\n", st.TotalLines)
		fmt.Fprintf(w, "STAT store_entries %d\r\n", st.StoreEntries)
		fmt.Fprintf(w, "STAT unmanaged_lines %d\r\n", st.UnmanagedLines)
		fmt.Fprintf(w, "STAT tenants %d\r\n", len(st.Tenants))
		fmt.Fprintf(w, "STAT cluster_peers %d\r\n", st.ClusterPeers)
		fmt.Fprintf(w, "STAT cluster_registry_version %d\r\n", st.ClusterRegistryVersion)
		fmt.Fprintf(w, "STAT cluster_rehomed_keys %d\r\n", st.ClusterRehomedKeys)
		fmt.Fprintf(w, "STAT cluster_rehomed_in_keys %d\r\n", st.ClusterRehomedIn)
		fmt.Fprintf(w, "STAT uptime_seconds %d\r\n", int64(st.Uptime.Seconds()))
		for _, ts := range st.Tenants {
			writeTenantStats(w, "tenant."+ts.Name+".", ts)
		}
		w.WriteString("END\r\n")
		return false, nil

	case cmdEq(verb, "CLUSTER"):
		// CLUSTER INFO reports this node's cluster view; CLUSTER MEMBERS
		// <addr>... installs a new member set on the node's handler (the
		// operator's join/leave entry point), answering "OK <rehomed>" with
		// the number of keys drained to peers. Both require cluster mode.
		h := s.svc.clusterHandler()
		if h == nil {
			return false, errors.New("not in cluster mode")
		}
		if len(fields) < 2 {
			return false, errors.New("usage: CLUSTER INFO|MEMBERS ...")
		}
		switch sub := fields[1]; {
		case cmdEq(sub, "INFO"):
			if len(fields) != 2 {
				return false, errors.New("usage: CLUSTER INFO")
			}
			out, in := s.svc.RehomedCounts()
			fmt.Fprintf(w, "STAT self %s\r\n", h.Self())
			fmt.Fprintf(w, "STAT peers %d\r\n", h.Peers())
			fmt.Fprintf(w, "STAT registry_version %d\r\n", s.svc.ClusterVersion())
			fmt.Fprintf(w, "STAT rehomed_keys %d\r\n", out)
			fmt.Fprintf(w, "STAT rehomed_in_keys %d\r\n", in)
			for _, m := range h.Members() {
				fmt.Fprintf(w, "MEMBER %s\r\n", m)
			}
			w.WriteString("END\r\n")
		case cmdEq(sub, "MEMBERS"):
			if len(fields) < 3 {
				return false, errors.New("usage: CLUSTER MEMBERS <addr>...")
			}
			members := make([]string, 0, len(fields)-2)
			for _, f := range fields[2:] {
				members = append(members, string(f))
			}
			moved, err := h.SetMembers(members)
			if err != nil {
				return false, err
			}
			w.WriteString("OK ")
			cs.writeUint(w, int(moved))
			w.WriteString("\r\n")
		default:
			return false, fmt.Errorf("unknown CLUSTER subcommand %q", fields[1])
		}
		return false, nil

	case cmdEq(verb, "PING"):
		w.WriteString("PONG\r\n")
		return false, nil

	case cmdEq(verb, "QUIT"):
		w.WriteString("BYE\r\n")
		return true, nil

	default:
		return false, fmt.Errorf("unknown command %q", fields[0])
	}
}

func writeTenantStats(w *bufio.Writer, prefix string, ts TenantStats) {
	fmt.Fprintf(w, "STAT %sgets %d\r\n", prefix, ts.Gets)
	fmt.Fprintf(w, "STAT %sputs %d\r\n", prefix, ts.Puts)
	fmt.Fprintf(w, "STAT %shits %d\r\n", prefix, ts.Hits)
	fmt.Fprintf(w, "STAT %smisses %d\r\n", prefix, ts.Misses)
	fmt.Fprintf(w, "STAT %sexpired %d\r\n", prefix, ts.Expired)
	fmt.Fprintf(w, "STAT %shit_rate %.4f\r\n", prefix, ts.HitRate())
	fmt.Fprintf(w, "STAT %soccupancy_lines %d\r\n", prefix, ts.OccupancyLines)
	fmt.Fprintf(w, "STAT %starget_lines %d\r\n", prefix, ts.TargetLines)
	fmt.Fprintf(w, "STAT %sdemotions %d\r\n", prefix, ts.Demotions)
	fmt.Fprintf(w, "STAT %sforced_evictions %d\r\n", prefix, ts.ForcedEvictions)
	fmt.Fprintf(w, "STAT %sshed %d\r\n", prefix, ts.Shed)
}

// discardEOL consumes the \r\n (or \n) terminating a value block.
func discardEOL(r *bufio.Reader) {
	if b, err := r.ReadByte(); err == nil && b != '\n' {
		if b == '\r' {
			if b2, err := r.ReadByte(); err == nil && b2 != '\n' {
				r.UnreadByte()
			}
		} else {
			r.UnreadByte()
		}
	}
}
