package service

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// The vantaged wire protocol is a memcached-style CRLF text protocol, one
// connection-handler goroutine per client:
//
//	GET <tenant> <key>                 -> VALUE <n>\r\n<bytes>\r\n | MISS
//	PUT <tenant> <key> <n>\r\n<bytes>  -> STORED | ERR <msg>
//	DEL <tenant> <key>                 -> DELETED | MISS
//	TENANT ADD <name>                  -> OK <partition>
//	TENANT DEL <name>                  -> OK
//	TENANT LIST                        -> TENANT <name> <part> ... END
//	STATS [<tenant>]                   -> STAT <k> <v> ... END
//	PING                               -> PONG
//	QUIT                               -> closes the connection
//
// Lines end in \r\n; bare \n is accepted. Errors are "ERR <msg>".
const (
	maxKeyLen   = 250
	maxValueLen = 1 << 20
)

// Server serves the text protocol over a listener. Create with Serve.
type Server struct {
	svc *Service
	lis net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
}

// Serve starts accepting connections on lis and handling them against svc,
// one goroutine per connection. It returns immediately.
func Serve(svc *Service, lis net.Listener) *Server {
	s := &Server{svc: svc, lis: lis, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener address.
func (s *Server) Addr() net.Addr { return s.lis.Addr() }

// Close shuts the server down gracefully: stop accepting, close every open
// connection (interrupting blocked reads; in-flight commands finish first
// because handlers write their response before reading the next line), and
// wait for all handlers to return.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := s.lis.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return // EOF or closed connection
		}
		quit, err := s.dispatch(strings.TrimRight(line, "\r\n"), r, w)
		if err != nil {
			fmt.Fprintf(w, "ERR %s\r\n", err)
		}
		if w.Flush() != nil || quit {
			return
		}
	}
}

// dispatch executes one command line, writing the response to w. It returns
// quit=true when the connection should close.
func (s *Server) dispatch(line string, r *bufio.Reader, w *bufio.Writer) (quit bool, err error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return false, nil // ignore empty lines
	}
	switch verb := strings.ToUpper(fields[0]); verb {
	case "GET":
		if len(fields) != 3 {
			return false, errors.New("usage: GET <tenant> <key>")
		}
		val, hit, err := s.svc.Get(fields[1], fields[2])
		if err != nil {
			return false, err
		}
		if !hit {
			w.WriteString("MISS\r\n")
			return false, nil
		}
		fmt.Fprintf(w, "VALUE %d\r\n", len(val))
		w.Write(val)
		w.WriteString("\r\n")
		return false, nil

	case "PUT":
		if len(fields) != 4 {
			return false, errors.New("usage: PUT <tenant> <key> <bytes>")
		}
		n, convErr := strconv.Atoi(fields[3])
		if convErr != nil || n < 0 || n > maxValueLen {
			return false, fmt.Errorf("bad value length %q", fields[3])
		}
		if len(fields[2]) > maxKeyLen {
			return false, errors.New("key too long")
		}
		val := make([]byte, n)
		if _, err := io.ReadFull(r, val); err != nil {
			return true, errors.New("short value")
		}
		discardEOL(r)
		if err := s.svc.Put(fields[1], fields[2], val); err != nil {
			return false, err
		}
		w.WriteString("STORED\r\n")
		return false, nil

	case "DEL":
		if len(fields) != 3 {
			return false, errors.New("usage: DEL <tenant> <key>")
		}
		present, err := s.svc.Delete(fields[1], fields[2])
		if err != nil {
			return false, err
		}
		if present {
			w.WriteString("DELETED\r\n")
		} else {
			w.WriteString("MISS\r\n")
		}
		return false, nil

	case "TENANT":
		if len(fields) < 2 {
			return false, errors.New("usage: TENANT ADD|DEL|LIST ...")
		}
		switch strings.ToUpper(fields[1]) {
		case "ADD":
			if len(fields) != 3 {
				return false, errors.New("usage: TENANT ADD <name>")
			}
			part, err := s.svc.AddTenant(fields[2])
			if err != nil {
				return false, err
			}
			fmt.Fprintf(w, "OK %d\r\n", part)
		case "DEL":
			if len(fields) != 3 {
				return false, errors.New("usage: TENANT DEL <name>")
			}
			if err := s.svc.RemoveTenant(fields[2]); err != nil {
				return false, err
			}
			w.WriteString("OK\r\n")
		case "LIST":
			for _, ts := range s.svc.Stats().Tenants {
				fmt.Fprintf(w, "TENANT %s %d\r\n", ts.Name, ts.Partition)
			}
			w.WriteString("END\r\n")
		default:
			return false, fmt.Errorf("unknown TENANT subcommand %q", fields[1])
		}
		return false, nil

	case "STATS":
		if len(fields) > 2 {
			return false, errors.New("usage: STATS [<tenant>]")
		}
		st := s.svc.Stats()
		if len(fields) == 2 {
			for _, ts := range st.Tenants {
				if ts.Name == fields[1] {
					writeTenantStats(w, "", ts)
					w.WriteString("END\r\n")
					return false, nil
				}
			}
			return false, fmt.Errorf("unknown tenant %q", fields[1])
		}
		fmt.Fprintf(w, "STAT ops %d\r\n", st.Ops)
		fmt.Fprintf(w, "STAT repartitions %d\r\n", st.Repartitions)
		fmt.Fprintf(w, "STAT shards %d\r\n", st.Shards)
		fmt.Fprintf(w, "STAT cache_lines %d\r\n", st.TotalLines)
		fmt.Fprintf(w, "STAT store_entries %d\r\n", st.StoreEntries)
		fmt.Fprintf(w, "STAT unmanaged_lines %d\r\n", st.UnmanagedLines)
		fmt.Fprintf(w, "STAT tenants %d\r\n", len(st.Tenants))
		fmt.Fprintf(w, "STAT uptime_seconds %d\r\n", int64(st.Uptime.Seconds()))
		for _, ts := range st.Tenants {
			writeTenantStats(w, "tenant."+ts.Name+".", ts)
		}
		w.WriteString("END\r\n")
		return false, nil

	case "PING":
		w.WriteString("PONG\r\n")
		return false, nil

	case "QUIT":
		w.WriteString("BYE\r\n")
		return true, nil

	default:
		return false, fmt.Errorf("unknown command %q", fields[0])
	}
}

func writeTenantStats(w *bufio.Writer, prefix string, ts TenantStats) {
	fmt.Fprintf(w, "STAT %sgets %d\r\n", prefix, ts.Gets)
	fmt.Fprintf(w, "STAT %sputs %d\r\n", prefix, ts.Puts)
	fmt.Fprintf(w, "STAT %shits %d\r\n", prefix, ts.Hits)
	fmt.Fprintf(w, "STAT %smisses %d\r\n", prefix, ts.Misses)
	fmt.Fprintf(w, "STAT %shit_rate %.4f\r\n", prefix, ts.HitRate())
	fmt.Fprintf(w, "STAT %soccupancy_lines %d\r\n", prefix, ts.OccupancyLines)
	fmt.Fprintf(w, "STAT %starget_lines %d\r\n", prefix, ts.TargetLines)
	fmt.Fprintf(w, "STAT %sdemotions %d\r\n", prefix, ts.Demotions)
	fmt.Fprintf(w, "STAT %sforced_evictions %d\r\n", prefix, ts.ForcedEvictions)
}

// discardEOL consumes the \r\n (or \n) terminating a value block.
func discardEOL(r *bufio.Reader) {
	if b, err := r.ReadByte(); err == nil && b != '\n' {
		if b == '\r' {
			if b2, err := r.ReadByte(); err == nil && b2 != '\n' {
				r.UnreadByte()
			}
		} else {
			r.UnreadByte()
		}
	}
}
