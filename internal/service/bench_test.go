package service

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"vantage/internal/hash"
)

// BenchmarkShardedAccess measures concurrent ops/sec of the sharded access
// path (Get/Put through the Vantage controllers, no network) at 1, 4, and 16
// goroutines. Each goroutine is its own tenant with a zipf working set, the
// mix is ~90% GET / 10% PUT plus fills on misses — roughly the loadgen mix.
func BenchmarkShardedAccess(b *testing.B) {
	for _, gs := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("goroutines=%d", gs), func(b *testing.B) {
			svc, err := New(Config{Shards: 4, LinesPerShard: 4096, MaxTenants: 16, Seed: 77})
			if err != nil {
				b.Fatal(err)
			}
			defer svc.Close()
			total := svc.TotalLines()
			tenants := min(gs, 16)
			for i := 0; i < tenants; i++ {
				if _, err := svc.AddTenant(fmt.Sprintf("t%d", i)); err != nil {
					b.Fatal(err)
				}
			}

			// Pre-warm so the benchmark measures steady state, not cold fills.
			warm := driver{svc: svc, tenant: "t0", app: newZipfDriver(total, 1)}
			for i := 0; i < 20000; i++ {
				if err := warm.step(); err != nil {
					b.Fatal(err)
				}
			}
			svc.Repartition()

			var ops atomic.Int64
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N / gs
			if per == 0 {
				per = 1
			}
			for g := 0; g < gs; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					tenant := fmt.Sprintf("t%d", g%tenants)
					app := newZipfDriver(total, uint64(g+2))
					rng := hash.NewRand(uint64(g + 100))
					val := make([]byte, 64)
					var key [16]byte
					for i := 0; i < per; i++ {
						_, addr := app.Next()
						n := fmtHex(key[:0], addr)
						k := string(n)
						if rng.Intn(10) == 0 {
							if err := svc.Put(tenant, k, val); err != nil {
								b.Error(err)
								return
							}
							ops.Add(1)
							continue
						}
						_, hit, err := svc.Get(tenant, k)
						if err != nil {
							b.Error(err)
							return
						}
						ops.Add(1)
						if !hit {
							if err := svc.Put(tenant, k, val); err != nil {
								b.Error(err)
								return
							}
							ops.Add(1)
						}
					}
				}(g)
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(ops.Load())/b.Elapsed().Seconds(), "ops/sec")
		})
	}
}

// fmtHex appends addr in lowercase hex to dst (avoids strconv allocation in
// the hot benchmark loop).
func fmtHex(dst []byte, addr uint64) []byte {
	const digits = "0123456789abcdef"
	if addr == 0 {
		return append(dst, '0')
	}
	var buf [16]byte
	i := len(buf)
	for addr > 0 {
		i--
		buf[i] = digits[addr&0xf]
		addr >>= 4
	}
	return append(dst, buf[i:]...)
}
