package service

import (
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"
)

// leU64 encodes v as the 8-byte little-endian value payload a REG_OP frame
// carries.
func leU64(v uint64) string {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return string(b[:])
}

// TestBinaryClusterFrames pins the semantics of the cluster opcodes over a
// live connection: TENANT_DEL, REG_OP add/remove with version max-merge,
// REG_PULL snapshots, and REHOME's TTL-preserving PUT, plus the
// framing-vs-semantic error split for each.
func TestBinaryClusterFrames(t *testing.T) {
	svc, srv := newTestServer(t)
	if _, err := svc.AddTenant("t"); err != nil {
		t.Fatal(err)
	}
	c := dialBin(t, srv.Addr().String())

	// REG_OP add at version 5: local version max-merges to 5.
	c.expect(binOpRegOp, binFlagRegAdd, 1, 0, "bob", "", leU64(5), binStOK, leU64(5))
	if v := svc.ClusterVersion(); v != 5 {
		t.Fatalf("version = %d, want 5", v)
	}
	// Stale replay at version 3: applied idempotently, version stays 5.
	c.expect(binOpRegOp, binFlagRegAdd, 2, 0, "bob", "", leU64(3), binStOK, leU64(5))
	// Remove of an unknown tenant converges silently (still OK).
	c.expect(binOpRegOp, 0, 3, 0, "ghost", "", leU64(6), binStOK, leU64(6))
	// Remove of bob at version 7.
	c.expect(binOpRegOp, 0, 4, 0, "bob", "", leU64(7), binStOK, leU64(7))
	if _, err := svc.tenant("bob"); err == nil {
		t.Fatal("bob still registered after replicated remove")
	}

	// Semantic violations answer ERR and the stream continues.
	c.expect(binOpRegOp, binFlagRegAdd, 5, 0, "x", "", "short", binStErr, "bad registry frame")
	c.expect(binOpRegOp, binFlagRegAdd, 6, 0, "x", "k", leU64(1), binStErr, "bad registry frame")
	c.expect(binOpRegOp, binFlagRegAdd, 7, 0, "bad name\x01", "", leU64(8), binStErr, `service: invalid tenant name "bad name\x01"`)
	c.expect(binOpPing, 0, 8, 0, "", "", "", binStOK, "")

	// REG_PULL returns version + names. "t" holds slot 0; bob's freed slot 1
	// goes to carol.
	c.expect(binOpTenantAdd, 0, 9, 0, "carol", "", "", binStOK, "\x01\x00\x00\x00")
	c.send(binOpRegPull, 0, 10, 0, "", "", "")
	r := c.resp()
	if r.status != binStOK || len(r.payload) < 12 {
		t.Fatalf("REG_PULL: status=%d payload=%q", r.status, r.payload)
	}
	ver := binary.LittleEndian.Uint64(r.payload[0:8])
	count := binary.LittleEndian.Uint32(r.payload[8:12])
	names := map[string]bool{}
	p := r.payload[12:]
	for i := uint32(0); i < count; i++ {
		n := int(p[0])
		names[string(p[1:1+n])] = true
		p = p[1+n:]
	}
	if ver != 7 || !names["carol"] || names["bob"] {
		t.Fatalf("REG_PULL: ver=%d names=%v", ver, names)
	}
	// Non-empty tenant/key/value on REG_PULL: semantic error.
	c.expect(binOpRegPull, 0, 11, 0, "t", "", "", binStErr, "bad registry pull")

	// TENANT_DEL (operator op, not replication): removes and answers OK;
	// removing again is a semantic error.
	c.expect(binOpTenantDel, 0, 12, 0, "carol", "", "", binStOK, "")
	c.expect(binOpTenantDel, 0, 13, 0, "carol", "", "", binStErr, `service: unknown tenant "carol"`)

	// REHOME: PUT-shaped, counted separately, TTL semantics preserved.
	out0, in0 := svc.RehomedCounts()
	c.expect(binOpRehome, 0, 14, 0, "t", "moved", "payload", binStOK, "")
	c.expect(binOpRehome, binFlagTTL, 15, 60000, "t", "moved-ttl", "payload", binStOK, "")
	c.expect(binOpGet, 0, 16, 0, "t", "moved", "", binStOK, "payload")
	out1, in1 := svc.RehomedCounts()
	if out1 != out0 || in1 != in0+2 {
		t.Fatalf("rehomed counts: out %d->%d in %d->%d", out0, out1, in0, in1)
	}
	// Unknown tenant on REHOME is semantic, like PUT.
	c.expect(binOpRehome, 0, 17, 0, "ghost", "k", "v", binStErr, "unknown tenant")
}

// TestBinaryClusterFramingViolations: reserved-flag bits on the cluster
// opcodes are framing violations and must close the connection.
func TestBinaryClusterFramingViolations(t *testing.T) {
	cases := []struct {
		name  string
		frame []byte
	}{
		{"TENANT_DEL with flags", binFrame(binOpTenantDel, 0x02, 1, 0, "t", "", "")},
		{"REG_OP with reserved flag", binFrame(binOpRegOp, 0x82, 1, 0, "t", "", leU64(1))},
		{"REG_PULL with flags", binFrame(binOpRegPull, 0x01, 1, 0, "", "", "")},
		{"REHOME with reserved flag", binFrame(binOpRehome, 0x04, 1, 0, "t", "k", "v")},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			_, srv := newTestServer(t)
			c := dialBin(t, srv.Addr().String())
			if _, err := c.conn.Write(tc.frame); err != nil {
				t.Fatal(err)
			}
			c.closedSoon()
		})
	}
}

// FuzzClusterFrames is FuzzBinFrames pointed at the cluster opcodes: the
// registry-replication (REG_OP/REG_PULL), tenant-admin (TENANT_DEL) and
// re-homing (REHOME) frames, mixed with data frames the way a draining
// peer's stream interleaves them. Framing violations must close, semantic
// errors must answer ERR and continue, and nothing may hang or panic.
func FuzzClusterFrames(f *testing.F) {
	svc := fuzzService(f)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		f.Fatal(err)
	}
	srv := ServeWith(svc, lis, ServerConfig{
		IdleTimeout:  2 * time.Second,
		WriteTimeout: time.Second,
	})
	f.Cleanup(func() { srv.Close() })
	addr := srv.Addr().String()

	seeds := [][]byte{
		binFrame(binOpRegOp, binFlagRegAdd, 1, 0, "u", "", leU64(1)),
		binFrame(binOpRegOp, 0, 2, 0, "u", "", leU64(2)),
		binFrame(binOpRegOp, 0, 3, 0, "ghost", "", leU64(3)),            // unknown removal: OK, converges
		binFrame(binOpRegOp, binFlagRegAdd, 4, 0, "u", "", "short"),     // bad version payload: ERR
		binFrame(binOpRegOp, binFlagRegAdd, 5, 0, "u", "key", leU64(1)), // key present: ERR
		binFrame(binOpRegOp, binFlagRegAdd, 6, 0, "", "", leU64(1)),     // empty name: ERR
		binFrame(binOpRegOp, 0x80, 7, 0, "u", "", leU64(1)),             // reserved flag: close
		binFrame(binOpRegPull, 0, 8, 0, "", "", ""),
		binFrame(binOpRegPull, 0, 9, 0, "t", "", ""), // tenant present: ERR
		binFrame(binOpRegPull, 1, 10, 0, "", "", ""), // flags: close
		binFrame(binOpTenantDel, 0, 11, 0, "t", "", ""),
		binFrame(binOpTenantDel, 0, 12, 0, "nosuch", "", ""), // unknown: ERR
		binFrame(binOpTenantDel, 1, 13, 0, "t", "", ""),      // flags: close
		binFrame(binOpRehome, 0, 14, 0, "t", "k", "moved-value"),
		binFrame(binOpRehome, binFlagTTL, 15, 5000, "t", "k", "v"),
		binFrame(binOpRehome, 0, 16, 0, "ghost", "k", "v"), // unknown tenant: ERR
		binFrame(binOpRehome, 0, 17, 0, "t", "", "v"),      // zero-length key: ERR
		// A drain-shaped stream: register, rehome a few, pull, delete.
		append(append(append(
			binFrame(binOpRegOp, binFlagRegAdd, 18, 0, "w", "", leU64(9)),
			binFrame(binOpRehome, 0, 19, 0, "w", "a", "1")...),
			binFrame(binOpRehome, binFlagTTL, 20, 100, "w", "b", "2")...),
			binFrame(binOpRegPull, 0, 21, 0, "", "", "")...),
		{4, 0, 0, 0, binOpRegOp, 0}, // truncated frame
		// BMGET interleaved with cluster traffic, the way a proxy's pooled
		// connection shares a peer's stream: valid multi-key, zero keys
		// (semantic ERR), truncated key list (framing: close), duplicate
		// request ids back to back (legal — responses echo both).
		bmFrame(22, "t", "k", "nosuch"),
		bmFrameN(0, 23, 0, "t", 0, nil, ""),
		bmFrameN(0, 24, 0, "t", 3, []string{"k"}, ""),
		append(bmFrame(25, "t", "k"), bmFrame(25, "t", "k", "b")...),
		// BMGET sandwiched between a rehome and a registry pull.
		append(append(
			binFrame(binOpRehome, 0, 26, 0, "t", "bm", "v"),
			bmFrame(27, "t", "bm", "k")...),
			binFrame(binOpRegPull, 0, 28, 0, "", "", "")...),
	}
	for _, seed := range seeds {
		f.Add(seed)
	}

	preamble := []byte{binMagic, 'V', 'B', binVersion}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip("oversized input")
		}
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Skip("dial failed")
		}
		defer conn.Close()
		conn.SetDeadline(time.Now().Add(10 * time.Second))
		tc := conn.(*net.TCPConn)
		if _, err := tc.Write(preamble); err != nil {
			return
		}
		var ack [4]byte
		if _, err := io.ReadFull(conn, ack[:]); err != nil {
			return
		}
		if _, err := tc.Write(data); err != nil {
			io.Copy(io.Discard, conn)
			return
		}
		tc.CloseWrite()
		if _, err := io.Copy(io.Discard, conn); err != nil && isTimeout(err) {
			t.Fatalf("cluster frame stream hung the server on input %q", data)
		}
	})
}
