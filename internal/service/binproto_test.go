package service

import (
	"encoding/binary"
	"io"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"vantage/internal/clock"
)

// binFrame encodes one binary request frame (length prefix included).
func binFrame(op, flags uint8, id, ttlMS uint32, tenant, key, val string) []byte {
	n := binReqHdr + len(tenant) + len(key) + len(val)
	b := make([]byte, 4+n)
	binary.LittleEndian.PutUint32(b[0:4], uint32(n))
	b[4] = op
	b[5] = flags
	b[6] = uint8(len(tenant))
	binary.LittleEndian.PutUint32(b[8:12], id)
	binary.LittleEndian.PutUint32(b[12:16], ttlMS)
	binary.LittleEndian.PutUint16(b[16:18], uint16(len(key)))
	p := b[4+binReqHdr:]
	copy(p, tenant)
	copy(p[len(tenant):], key)
	copy(p[len(tenant)+len(key):], val)
	return b
}

// binResp is one decoded response frame.
type binResp struct {
	status, op uint8
	id         uint32
	payload    []byte
}

// binTestClient speaks the binary protocol for tests.
type binTestClient struct {
	t    *testing.T
	conn net.Conn
}

// dialBin connects and completes the binary negotiation.
func dialBin(t *testing.T, addr string) *binTestClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	if _, err := conn.Write([]byte{binMagic, 'V', 'B', binVersion}); err != nil {
		t.Fatal(err)
	}
	var ack [4]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil {
		t.Fatalf("negotiation ack: %v", err)
	}
	if want := [4]byte{binMagic, 'V', 'B', binVersion}; ack != want {
		t.Fatalf("negotiation ack = %v, want %v", ack, want)
	}
	return &binTestClient{t: t, conn: conn}
}

func (c *binTestClient) send(op, flags uint8, id, ttlMS uint32, tenant, key, val string) {
	c.t.Helper()
	if _, err := c.conn.Write(binFrame(op, flags, id, ttlMS, tenant, key, val)); err != nil {
		c.t.Fatal(err)
	}
}

func (c *binTestClient) resp() binResp {
	c.t.Helper()
	c.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var lb [4]byte
	if _, err := io.ReadFull(c.conn, lb[:]); err != nil {
		c.t.Fatalf("response length: %v", err)
	}
	n := binary.LittleEndian.Uint32(lb[:])
	if n < binRespHdr || n > binMaxFrame {
		c.t.Fatalf("response frame length %d out of range", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(c.conn, b); err != nil {
		c.t.Fatalf("response body: %v", err)
	}
	return binResp{
		status:  b[0],
		op:      b[1],
		id:      binary.LittleEndian.Uint32(b[4:8]),
		payload: b[binRespHdr:],
	}
}

// expect sends one request and asserts the response status/id/payload.
func (c *binTestClient) expect(op, flags uint8, id, ttlMS uint32, tenant, key, val string, wantStatus uint8, wantPayload string) {
	c.t.Helper()
	c.send(op, flags, id, ttlMS, tenant, key, val)
	r := c.resp()
	if r.status != wantStatus || r.op != op || r.id != id || string(r.payload) != wantPayload {
		c.t.Fatalf("op %d id %d: got status=%d op=%d id=%d payload=%q, want status=%d payload=%q",
			op, id, r.status, r.op, r.id, r.payload, wantStatus, wantPayload)
	}
}

// closedSoon asserts the server closes the connection (EOF/reset, not a
// client-side timeout).
func (c *binTestClient) closedSoon() {
	c.t.Helper()
	c.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.conn.Read(make([]byte, 1)); err == nil || isTimeout(err) {
		c.t.Fatalf("connection not closed by server: read err %v", err)
	}
}

// TestBinaryRoundTrip covers every opcode over one negotiated connection,
// with a text client interleaved on the same listener to pin down that the
// protocols coexist per-connection.
func TestBinaryRoundTrip(t *testing.T) {
	svc, srv := newTestServer(t)
	c := dialBin(t, srv.Addr().String())

	c.expect(binOpPing, 0, 1, 0, "", "", "", binStOK, "")
	c.expect(binOpTenantAdd, 0, 2, 0, "alice", "", "", binStOK, "\x00\x00\x00\x00")
	c.expect(binOpTenantAdd, 0, 3, 0, "alice", "", "", binStOK, "\x00\x00\x00\x00") // idempotent

	c.expect(binOpPut, 0, 4, 0, "alice", "greeting", "hello", binStOK, "")
	c.expect(binOpGet, 0, 5, 0, "alice", "greeting", "", binStOK, "hello")
	c.expect(binOpGet, 0, 6, 0, "alice", "nosuch", "", binStMiss, "")
	c.expect(binOpTouch, 0, 7, 60000, "alice", "greeting", "", binStOK, "")
	c.expect(binOpTouch, 0, 8, 60000, "alice", "nosuch", "", binStMiss, "")
	c.expect(binOpDel, 0, 9, 0, "alice", "greeting", "", binStOK, "")
	c.expect(binOpDel, 0, 10, 0, "alice", "greeting", "", binStMiss, "")

	// Explicit-TTL PUT (flag set): stored and readable; ttl_ms=0 with the
	// flag means "never expire" and must not round-trip through the default.
	c.expect(binOpPut, binFlagTTL, 11, 0, "alice", "pinned", "v", binStOK, "")
	c.expect(binOpGet, 0, 12, 0, "alice", "pinned", "", binStOK, "v")

	// A text client on the same listener is untouched by the binary traffic.
	tc := dialTest(t, srv.Addr().String())
	tc.expect("PING", "PONG")
	tc.expect("GET alice pinned", "VALUE 1")
	if got := tc.line(); got != "v" {
		t.Fatalf("text GET body: %q", got)
	}

	// And the binary connection still works after the text exchange.
	c.expect(binOpGet, 0, 13, 0, "alice", "pinned", "", binStOK, "v")

	st := svc.Stats()
	if st.BinConns != 1 || st.BinConnsActive != 1 || st.BinFrames == 0 {
		t.Fatalf("binary counters: conns=%d active=%d frames=%d", st.BinConns, st.BinConnsActive, st.BinFrames)
	}

	// STATS over text exposes the binary counters.
	tc.send("STATS")
	var sawBin bool
	for _, l := range tc.linesUntilEND() {
		if strings.HasPrefix(l, "STAT bin_frames ") {
			sawBin = true
		}
	}
	if !sawBin {
		t.Fatal("STATS missing bin_frames")
	}
}

// TestBinaryVersionMismatch: the server answers with its own version before
// closing, so the client learns what to downgrade to.
func TestBinaryVersionMismatch(t *testing.T) {
	_, srv := newTestServer(t)
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{binMagic, 'V', 'B', binVersion + 9}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var ack [4]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil {
		t.Fatalf("no ack on version mismatch: %v", err)
	}
	if ack[3] != binVersion {
		t.Fatalf("ack version = %d, want %d", ack[3], binVersion)
	}
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("connection left open after version mismatch")
	}
}

// TestBinaryBadPreamble: a magic byte followed by a broken preamble closes
// without an ack.
func TestBinaryBadPreamble(t *testing.T) {
	_, srv := newTestServer(t)
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{binMagic, 'X', 'B', binVersion}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil || isTimeout(err) {
		t.Fatalf("bad preamble not closed: %v", err)
	}
}

// TestBinaryPipelined: a batch written as one TCP segment answers every
// frame, ids echoed in order (single shard preserves FIFO), coalesced or
// not.
func TestBinaryPipelined(t *testing.T) {
	_, srv := newTestServer(t)
	c := dialBin(t, srv.Addr().String())
	c.expect(binOpTenantAdd, 0, 0, 0, "t", "", "", binStOK, "\x00\x00\x00\x00")

	const k = 64
	var batch []byte
	for i := 0; i < k; i++ {
		if i%2 == 0 {
			batch = append(batch, binFrame(binOpPut, 0, uint32(100+i), 0, "t", "key", "value")...)
		} else {
			batch = append(batch, binFrame(binOpGet, 0, uint32(100+i), 0, "t", "key", "")...)
		}
	}
	if _, err := c.conn.Write(batch); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		r := c.resp()
		if r.id != uint32(100+i) {
			t.Fatalf("response %d: id=%d, want %d", i, r.id, 100+i)
		}
		if r.status != binStOK {
			t.Fatalf("response %d: status=%d", i, r.status)
		}
		if i%2 == 1 && string(r.payload) != "value" {
			t.Fatalf("GET %d payload %q", i, r.payload)
		}
	}
}

// TestBinaryFramingViolationCloses: corrupting the framing itself (reserved
// bytes, unknown opcode, absurd length) closes the connection — the stream
// can no longer be trusted.
func TestBinaryFramingViolationCloses(t *testing.T) {
	_, srv := newTestServer(t)
	addr := srv.Addr().String()

	t.Run("reserved-byte", func(t *testing.T) {
		c := dialBin(t, addr)
		f := binFrame(binOpPing, 0, 1, 0, "", "", "")
		f[4+3] = 1 // rsvd u8
		c.conn.Write(f)
		c.closedSoon()
	})
	t.Run("unknown-opcode", func(t *testing.T) {
		c := dialBin(t, addr)
		c.conn.Write(binFrame(99, 0, 1, 0, "", "", ""))
		c.closedSoon()
	})
	t.Run("oversized-length", func(t *testing.T) {
		c := dialBin(t, addr)
		var lb [4]byte
		binary.LittleEndian.PutUint32(lb[:], uint32(binMaxFrame+1))
		c.conn.Write(lb[:])
		c.closedSoon()
	})
	t.Run("undersized-length", func(t *testing.T) {
		c := dialBin(t, addr)
		var lb [4]byte
		binary.LittleEndian.PutUint32(lb[:], 4)
		c.conn.Write(lb[:])
		c.closedSoon()
	})
	t.Run("header-overruns-frame", func(t *testing.T) {
		c := dialBin(t, addr)
		f := binFrame(binOpGet, 0, 1, 0, "t", "k", "")
		f[4+2] = 200 // tlen says 200, frame holds 2 bytes of body
		c.conn.Write(f)
		c.closedSoon()
	})
}

// TestBinarySemanticErrorContinues: semantic failures answer ERR on the
// offending id and the stream keeps going — the length prefix makes desync
// structurally impossible, which is the property under test.
func TestBinarySemanticErrorContinues(t *testing.T) {
	_, srv := newTestServer(t)
	c := dialBin(t, srv.Addr().String())

	c.expect(binOpGet, 0, 1, 0, "ghost", "k", "", binStErr, "unknown tenant")
	c.expect(binOpPing, 0, 2, 0, "", "", "", binStOK, "")

	c.expect(binOpTenantAdd, 0, 3, 0, "t", "", "", binStOK, "\x00\x00\x00\x00")
	longKey := strings.Repeat("k", maxKeyLen+1)
	c.expect(binOpGet, 0, 4, 0, "t", longKey, "", binStErr, "bad key length")
	c.expect(binOpGet, 0, 5, 0, "t", "k", "value-on-a-get", binStErr, "unexpected value payload")
	c.expect(binOpPing, 0, 6, 0, "", "", "", binStOK, "")
}

// TestBinaryShed: the binary path honors the same global in-flight gate as
// the text path — a request that cannot reserve a slot within InflightWait
// answers SHED and the connection survives.
func TestBinaryShed(t *testing.T) {
	svc, srv := newOverloadServer(t,
		Config{Shards: 1, LinesPerShard: 512, MaxTenants: 4, Seed: 31},
		ServerConfig{MaxInflight: 1, InflightWait: 10 * time.Millisecond})
	svc.SetFaultInjector(injectorFunc(func(op Op, tenant string) Fault {
		if tenant == "slow" {
			return Fault{Delay: 400 * time.Millisecond}
		}
		return Fault{}
	}))
	svc.AddTenant("slow")
	svc.AddTenant("fast")

	tc := dialTest(t, srv.Addr().String())
	bc := dialBin(t, srv.Addr().String())

	tc.send("GET slow k") // text conn holds the single in-flight slot
	time.Sleep(100 * time.Millisecond)
	bc.expect(binOpGet, 0, 1, 0, "fast", "k", "", binStShed, "")
	bc.expect(binOpPing, 0, 2, 0, "", "", "", binStOK, "") // conn survives

	if got := tc.line(); got != "MISS" {
		t.Fatalf("slow GET: %q", got)
	}
	if got := svc.Stats().RequestsShed; got == 0 {
		t.Fatal("RequestsShed not incremented")
	}
	// Slot free again: the same request succeeds.
	bc.expect(binOpGet, 0, 3, 0, "fast", "k", "", binStMiss, "")
}

// waitBinaryReaped drives a parked binary connection against a fake clock:
// each round advances past the idle window (when a watchdog is armed; the
// epoll sweep needs no timer) and probes the socket. Passes when the server
// closes the connection.
func waitBinaryReaped(t *testing.T, conn net.Conn, fc *clock.Fake) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		fc.Advance(300 * time.Millisecond)
		conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		_, err := conn.Read(make([]byte, 1))
		if err != nil && !isTimeout(err) {
			return // server closed it
		}
		if err == nil {
			t.Fatal("unexpected bytes from a parked connection")
		}
		if time.Now().After(deadline) {
			t.Fatal("parked binary connection never reaped")
		}
	}
}

// TestBinaryIdleReapFakeClockNoPoll: the portable goroutine transport reaps
// an idle binary connection via its fake-clock watchdog — no real 250ms
// waits, the clock is advanced.
func TestBinaryIdleReapFakeClockNoPoll(t *testing.T) {
	fc := clock.NewFake(time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC))
	svc, srv := newOverloadServer(t,
		Config{Shards: 1, LinesPerShard: 512, MaxTenants: 4, Seed: 32, Clock: fc},
		ServerConfig{IdleTimeout: 250 * time.Millisecond})
	srv.binNoPoll = true

	c := dialBin(t, srv.Addr().String())
	waitBinaryReaped(t, c.conn, fc)
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().DeadlineCloses == 0 {
		if time.Now().After(deadline) {
			t.Fatal("DeadlineCloses not incremented")
		}
		time.Sleep(time.Millisecond)
	}
	// The server keeps serving.
	tc := dialTest(t, srv.Addr().String())
	tc.expect("PING", "PONG")
}

// TestBinaryIdleReapFakeClock is the same reap contract on the default
// transport — the epoll poller's deadline sweep on Linux, the goroutine
// fallback elsewhere. Timestamps come from the injected clock either way.
func TestBinaryIdleReapFakeClock(t *testing.T) {
	fc := clock.NewFake(time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC))
	svc, srv := newOverloadServer(t,
		Config{Shards: 1, LinesPerShard: 512, MaxTenants: 4, Seed: 33, Clock: fc},
		ServerConfig{IdleTimeout: 250 * time.Millisecond})

	c := dialBin(t, srv.Addr().String())
	// A partial frame must not count as progress: the reaper fires on
	// frames, not bytes (slow-loris hardening, binary edition).
	c.conn.Write([]byte{10, 0})
	waitBinaryReaped(t, c.conn, fc)
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().DeadlineCloses == 0 {
		if time.Now().After(deadline) {
			t.Fatal("DeadlineCloses not incremented")
		}
		time.Sleep(time.Millisecond)
	}
	tc := dialTest(t, srv.Addr().String())
	tc.expect("PING", "PONG")
}

// TestBinaryConnsGoroutineFree: on Linux, parked binary connections must
// not cost a goroutine each — they live in the epoll poller. This is the
// acceptance gate for "10k connections without 10k goroutines" at a scale
// a unit test can afford.
func TestBinaryConnsGoroutineFree(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("epoll poller is Linux-only; other platforms use the goroutine fallback")
	}
	svc, srv := newTestServer(t)
	warm := dialBin(t, srv.Addr().String()) // forces poller + worker startup
	warm.expect(binOpPing, 0, 1, 0, "", "", "", binStOK, "")

	waitForGoroutines(t, runtime.NumGoroutine()) // settle transient handlers
	before := runtime.NumGoroutine()

	const n = 50
	conns := make([]*binTestClient, n)
	for i := range conns {
		conns[i] = dialBin(t, srv.Addr().String())
	}
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().BinConnsActive < int64(n)+1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d binary conns active", svc.Stats().BinConnsActive)
		}
		time.Sleep(time.Millisecond)
	}
	// The accept handlers are transient; wait for them to wind down, then
	// the steady state must be far below one goroutine per connection.
	waitForGoroutines(t, before+n/5)

	// All of them still work.
	for i, c := range conns {
		c.expect(binOpPing, 0, uint32(i), 0, "", "", "", binStOK, "")
	}
}

// TestBinaryLeftoverAfterPreamble: frames pipelined in the same segment as
// the negotiation preamble are not lost in the transport handoff.
func TestBinaryLeftoverAfterPreamble(t *testing.T) {
	_, srv := newTestServer(t)
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })

	buf := []byte{binMagic, 'V', 'B', binVersion}
	buf = append(buf, binFrame(binOpPing, 0, 77, 0, "", "", "")...)
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}
	c := &binTestClient{t: t, conn: conn}
	var ack [4]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil {
		t.Fatal(err)
	}
	r := c.resp()
	if r.status != binStOK || r.id != 77 {
		t.Fatalf("pipelined-with-preamble PING: %+v", r)
	}
}

// TestBinaryWriteBackpressure: a client that pipelines GETs for large
// values while reading nothing forces the server's socket to stop
// accepting bytes — the poller transport must park the flush on EPOLLOUT
// and resume when the client drains (the goroutine transport simply blocks
// in write). Every response must arrive intact, in id order (single
// shard), and the connection must keep working afterwards.
func TestBinaryWriteBackpressure(t *testing.T) {
	_, srv := newTestServer(t)
	c := dialBin(t, srv.Addr().String())
	if tc, ok := c.conn.(*net.TCPConn); ok {
		tc.SetReadBuffer(32 << 10) // shrink the client's window to force EAGAIN sooner
	}
	c.expect(binOpTenantAdd, 0, 0, 0, "t", "", "", binStOK, "\x00\x00\x00\x00")

	val := strings.Repeat("v", 512<<10)
	c.expect(binOpPut, 0, 1, 0, "t", "big", val, binStOK, "")

	// 64 GETs x 512 KiB = 32 MiB of responses, far beyond what the kernel
	// will buffer on either end, so the server must hit a short write and
	// re-arm while the client sits on the unsent batch below.
	const k = 64
	var batch []byte
	for i := 0; i < k; i++ {
		batch = append(batch, binFrame(binOpGet, 0, uint32(10+i), 0, "t", "big", "")...)
	}
	if _, err := c.conn.Write(batch); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond) // let the server wedge against full buffers
	for i := 0; i < k; i++ {
		r := c.resp()
		if r.status != binStOK || r.id != uint32(10+i) || len(r.payload) != len(val) {
			t.Fatalf("response %d: status=%d id=%d payload=%d bytes", i, r.status, r.id, len(r.payload))
		}
	}
	c.expect(binOpPing, 0, 999, 0, "", "", "", binStOK, "")
}

// TestBinaryDropFaultAborts: a dispatcher drop fault on a binary data op
// closes the connection without a reply, matching the text dispatcher.
// On the poller transport the close is initiated from a shard worker, so
// this drives the queued-close handoff (only the poller thread may release
// an fd); elsewhere the worker closes the net.Conn directly.
func TestBinaryDropFaultAborts(t *testing.T) {
	svc, srv := newTestServer(t)
	c := dialBin(t, srv.Addr().String())
	c.expect(binOpTenantAdd, 0, 1, 0, "t", "", "", binStOK, "\x00\x00\x00\x00")

	svc.SetFaultInjector(injectorFunc(func(op Op, tenant string) Fault {
		return Fault{Drop: true}
	}))
	c.send(binOpGet, 0, 2, 0, "t", "k", "")
	c.closedSoon()

	// The server survives the abort and keeps serving new connections.
	svc.SetFaultInjector(nil)
	c2 := dialBin(t, srv.Addr().String())
	c2.expect(binOpPing, 0, 3, 0, "", "", "", binStOK, "")
}
