package service

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"vantage/internal/hash"
)

// Fault injection mirrors, at the serving layer, the measurement discipline
// Vantage applies to the cache itself: the interesting behavior is what the
// system does when demand exceeds what it can serve, so the failure paths
// must be drivable on demand. A FaultInjector is consulted on every data
// operation — in the shard path (Get/Put/Delete and their byte-slice
// variants), where an injected fault delays the operation or fails it with
// ErrInjected, and in the protocol dispatcher, where an injected fault drops
// the connection. Chaos tests and the load generator's -chaos mode install
// one to force every degradation branch.

// Op identifies a data operation for fault injection.
type Op uint8

const (
	OpGet Op = iota
	OpPut
	OpDelete
	OpMGet
	OpTouch
)

// String returns the lower-case operation name.
func (op Op) String() string {
	switch op {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpDelete:
		return "del"
	case OpMGet:
		return "mget"
	case OpTouch:
		return "touch"
	}
	return "op(" + strconv.Itoa(int(op)) + ")"
}

// parseOp is the inverse of Op.String.
func parseOp(s string) (Op, bool) {
	switch strings.ToLower(s) {
	case "get":
		return OpGet, true
	case "put":
		return OpPut, true
	case "del", "delete":
		return OpDelete, true
	case "mget":
		return OpMGet, true
	case "touch", "expire":
		return OpTouch, true
	}
	return 0, false
}

// Fault is the injected action for one operation. The zero Fault is "no
// fault". At most one of Err and Drop is set by the built-in plan; Delay may
// accompany either.
type Fault struct {
	// Delay is slept before the operation executes.
	Delay time.Duration
	// Err fails the operation with ErrInjected (an "ERR FAULT injected"
	// reply on the wire; the connection stays usable).
	Err bool
	// Drop closes the connection without a reply. Only meaningful at the
	// protocol layer; the in-process API ignores it.
	Drop bool
}

// FaultInjector decides, per operation, whether to inject a fault.
// Implementations must be safe for concurrent use.
type FaultInjector interface {
	Fault(op Op, tenant string) Fault
}

// ErrInjected is the error returned by service operations failed by a fault
// injector.
var ErrInjected = errors.New("FAULT injected")

// FaultPlan is the built-in seeded FaultInjector: each matching operation
// makes one uniform draw from a deterministic sequence (SplitMix64 over
// Seed and a call counter) and the draw is partitioned into drop / error /
// delay bands. Runs with the same seed and the same operation interleaving
// inject the same faults, so chaos findings reproduce.
type FaultPlan struct {
	// Seed fixes the draw sequence.
	Seed uint64
	// DropRate, ErrRate and DelayRate are per-operation probabilities in
	// [0,1]; their sum must not exceed 1.
	DropRate, ErrRate, DelayRate float64
	// Delay is the sleep applied when a delay fault fires.
	Delay time.Duration
	// Ops restricts injection to these operations (nil = all).
	Ops map[Op]bool
	// Tenants restricts injection to these tenant names (nil = all).
	Tenants map[string]bool

	seq atomic.Uint64
}

// Fault implements FaultInjector.
func (p *FaultPlan) Fault(op Op, tenant string) Fault {
	if p.Ops != nil && !p.Ops[op] {
		return Fault{}
	}
	if p.Tenants != nil && !p.Tenants[tenant] {
		return Fault{}
	}
	// One draw per call, uniform in [0,1): the top 53 bits of a SplitMix64
	// output over (seed, sequence number).
	u := float64(hash.Mix64(p.Seed^p.seq.Add(1))>>11) / (1 << 53)
	switch {
	case u < p.DropRate:
		return Fault{Drop: true}
	case u < p.DropRate+p.ErrRate:
		return Fault{Err: true}
	case u < p.DropRate+p.ErrRate+p.DelayRate:
		return Fault{Delay: p.Delay}
	}
	return Fault{}
}

// ParseFaultSpec parses a fault-injection spec of comma-separated key=value
// terms into a FaultPlan:
//
//	err=<p>          error-fault probability
//	drop=<p>         connection-drop probability
//	delay=<p>:<dur>  delay probability and duration (e.g. delay=0.05:2ms)
//	ops=a|b          restrict to operations (get, put, del, mget, touch)
//	tenants=a|b      restrict to tenant names
//	seed=<n>         draw-sequence seed (default 1)
//
// Example: "err=0.01,drop=0.001,delay=0.05:2ms,ops=get|put,seed=7".
//
// The parser rejects the specs that would silently corrupt the draw bands:
// a repeated key ("err=0.1,err=0.9" — the two bands would overlap in the
// caller's intent but only the last would exist), NaN rates (every
// comparison against a band edge is false, so NaN slips through both the
// [0,1] check and the sum check and then matches no band), empty
// ops/tenants lists or empty tenant names (a band that can never match is
// a spec bug, not a no-op), and rates whose sum exceeds 1 (the bands are
// stacked sub-intervals of [0,1)).
func ParseFaultSpec(spec string) (*FaultPlan, error) {
	p := &FaultPlan{Seed: 1}
	seen := make(map[string]bool, 4)
	for _, term := range strings.Split(spec, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		key, val, ok := strings.Cut(term, "=")
		if !ok {
			return nil, fmt.Errorf("service: fault spec term %q is not key=value", term)
		}
		if seen[key] {
			return nil, fmt.Errorf("service: fault spec key %q given twice (bands would overlap)", key)
		}
		seen[key] = true
		switch key {
		case "err", "drop":
			r, err := strconv.ParseFloat(val, 64)
			if err != nil || math.IsNaN(r) || r < 0 || r > 1 {
				return nil, fmt.Errorf("service: bad %s rate %q", key, val)
			}
			if key == "err" {
				p.ErrRate = r
			} else {
				p.DropRate = r
			}
		case "delay":
			rs, ds, ok := strings.Cut(val, ":")
			if !ok {
				return nil, fmt.Errorf("service: delay term %q wants <p>:<duration>", val)
			}
			r, err := strconv.ParseFloat(rs, 64)
			if err != nil || math.IsNaN(r) || r < 0 || r > 1 {
				return nil, fmt.Errorf("service: bad delay rate %q", rs)
			}
			d, err := time.ParseDuration(ds)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("service: bad delay duration %q", ds)
			}
			p.DelayRate, p.Delay = r, d
		case "ops":
			if val == "" {
				return nil, fmt.Errorf("service: empty ops list in fault spec")
			}
			p.Ops = make(map[Op]bool)
			for _, name := range strings.Split(val, "|") {
				op, ok := parseOp(name)
				if !ok {
					return nil, fmt.Errorf("service: unknown op %q in fault spec", name)
				}
				p.Ops[op] = true
			}
		case "tenants":
			if val == "" {
				return nil, fmt.Errorf("service: empty tenants list in fault spec")
			}
			p.Tenants = make(map[string]bool)
			for _, name := range strings.Split(val, "|") {
				if name == "" {
					return nil, fmt.Errorf("service: empty tenant name in fault spec %q", val)
				}
				p.Tenants[name] = true
			}
		case "seed":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("service: bad fault seed %q", val)
			}
			p.Seed = n
		default:
			return nil, fmt.Errorf("service: unknown fault spec key %q", key)
		}
	}
	if sum := p.DropRate + p.ErrRate + p.DelayRate; sum > 1 {
		return nil, fmt.Errorf("service: fault rates sum to %g > 1", sum)
	}
	return p, nil
}

// faultHolder wraps the interface so it can live behind an atomic.Pointer.
type faultHolder struct{ fi FaultInjector }

// SetFaultInjector installs (or, with nil, removes) the service's fault
// injector. Safe to call while serving; the steady-state cost of an
// uninstalled injector is one atomic load per operation.
func (s *Service) SetFaultInjector(fi FaultInjector) {
	if fi == nil {
		s.fault.Store(nil)
		return
	}
	s.fault.Store(&faultHolder{fi: fi})
}

// injectFault applies any configured shard-path fault for op on tenant:
// delay faults sleep before the operation, error faults fail it with
// ErrInjected. Drop faults are a protocol-layer concern and are ignored
// here.
func (s *Service) injectFault(op Op, tenant string) error {
	h := s.fault.Load()
	if h == nil {
		return nil
	}
	f := h.fi.Fault(op, tenant)
	if f.Delay > 0 {
		s.clk.Sleep(f.Delay)
	}
	if f.Err {
		return ErrInjected
	}
	return nil
}

// dropFault reports whether the dispatcher should drop the connection
// carrying op for tenant. The protocol layer calls this once per data
// command, before executing it.
func (s *Service) dropFault(op Op, tenant string) bool {
	h := s.fault.Load()
	if h == nil {
		return false
	}
	return h.fi.Fault(op, tenant).Drop
}
