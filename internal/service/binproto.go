// The vantaged binary wire protocol: length-prefixed, versioned framing
// negotiated on a connection's first bytes, sharing the listener (and the
// Service) with the CRLF text protocol.
//
// # Negotiation
//
// A binary client opens with the 4-byte preamble
//
//	0x83 'V' 'B' <version>
//
// and the server answers with the same 4 bytes carrying *its* version. The
// magic byte 0x83 has the high bit set, so it can never begin a text verb
// (the text protocol is 7-bit ASCII); conversely no binary preamble parses
// as a command line, so one Peek of the first byte routes the connection
// with zero ambiguity and zero cost to text clients. On a version mismatch
// the server still answers (telling the client what it speaks) and closes.
// A server at its connection cap answers "BUSY\r\n" before negotiation,
// which a binary client recognizes by its non-magic first byte.
//
// # Frames
//
// Every frame is a little-endian u32 length followed by that many bytes.
// Request frames (client -> server) after the length:
//
//	off 0  opcode  u8   GET=1 PUT=2 DEL=3 TOUCH=4 PING=5 TENANT_ADD=6
//	                    TENANT_DEL=7 REG_OP=8 REG_PULL=9 REHOME=10 BMGET=11
//	off 1  flags   u8   bit0 (PUT/REHOME): explicit TTL — ttl_ms is
//	                    authoritative, 0 meaning "never expire"; unset:
//	                    service default TTL (REHOME: never expire).
//	                    bit0 (REG_OP): add (set) vs remove (clear)
//	off 2  tlen    u8   tenant-name length
//	off 3  rsvd    u8   must be 0
//	off 4  id      u32  client-chosen, echoed verbatim in the response
//	off 8  ttl_ms  u32  PUT (with flag) / TOUCH TTL in milliseconds
//	off 12 klen    u16  key length
//	off 14 rsvd    u16  must be 0
//	off 16 tenant[tlen] key[klen] value[rest]   (value: PUT only)
//
// Response frames (server -> client) after the length:
//
//	off 0  status  u8   OK=0 MISS=1 ERR=2 SHED=3
//	off 1  opcode  u8   echo of the request opcode
//	off 2  rsvd    u16
//	off 4  id      u32  echo of the request id
//	off 8  payload      GET hit: value; TENANT_ADD: u32 partition;
//	                    REG_OP: u64 local registry version; REG_PULL:
//	                    u64 version, u32 count, count x (u8 len, name);
//	                    BMGET: see below; ERR: message text
//
// # BMGET
//
// BMGET (opcode 11) reads N keys of one tenant in one frame. The request
// reuses the fixed header with klen carrying the KEY COUNT (not a byte
// length); flags and ttl_ms must be zero. The body after the tenant name is
// count x (u16 keylen, key bytes), tiling the frame exactly — a truncated
// or overrun key list is a framing violation and closes the connection,
// while an empty list, a count over the batch cap, an unknown tenant or a
// bad key length answer a frame-level ERR and the stream continues. The
// response is one coalesced frame whose OK payload is
//
//	u16 count, count x (u8 status, u32 vlen, value bytes)
//
// in request key order, with per-key status OK (value follows), MISS or
// SHED (vlen 0). The frame-level status is ERR only when the whole batch
// failed (validation, unknown tenant, injected fault); per-key SHED covers
// ring overflow and in-flight shedding of the shard sub-batches, so one
// overloaded shard degrades its keys without failing the rest.
//
// # Cluster frames
//
// REG_OP replicates one tenant registry mutation between peers: the tenant
// field carries the name, flag bit0 picks add vs remove, and the value
// payload is exactly 8 bytes — the origin's registry version as a
// little-endian u64 (klen must be 0). The receiver applies the mutation and
// max-merges the version (service.ApplyRegistryOp), answering OK with its
// own version. REG_PULL (no tenant, no key, no value) returns the
// receiver's full registry snapshot for bootstrap. REHOME is a PUT-shaped
// internal transfer used during key re-homing on membership changes: same
// fields as PUT, but the TTL flag semantics preserve "never expires" (no
// flag means no expiry, never the receiver's default TTL) and the receiver
// counts it in cluster_rehomed_in_keys instead of tenant PUT accounting
// pressure on dashboards. All three are ordinary frames: framing
// violations close the connection, semantic errors answer ERR and the
// stream continues.
//
// Responses to one connection may be written out of order relative to
// other connections' requests but in practice arrive in request order per
// connection (one MPSC ring per shard preserves per-shard FIFO); clients
// must match on id regardless. Violating the framing itself (bad length,
// bad reserved bytes, unknown opcode) closes the connection — unlike a
// semantic error, a framing error means the byte stream can no longer be
// trusted. Semantic errors (unknown tenant, oversized key) answer ERR on
// the offending id and the stream continues: the length prefix means an
// error can never desync later frames, which is the property the text
// protocol's PUT-drain bugs had to hand-craft.
//
// # Concurrency model
//
// Binary connections do not get a goroutine each. On Linux a single
// event-loop goroutine (binpoll_linux.go) multiplexes every binary
// connection through epoll, decoding frames straight out of one shared
// read buffer; elsewhere (and for non-TCP listeners or when the poller
// cannot start) a portable goroutine-per-connection reader does the same
// decoding. Either way, decoded requests are resolved once (tenant,
// address, shard route) and pushed onto the target shard's bounded MPSC
// ring (binring.go) — the UMON deferred-ring idiom generalized to whole
// requests — where one worker goroutine per shard executes them against
// the resolved fast paths (getAt/putAt/deleteAt/touchAt) with zero lock
// handoffs between shards. A full ring sheds the request (SHED status)
// instead of blocking the event loop: the same degrade-don't-collapse
// discipline as the text path's in-flight limits, which the workers also
// enforce (per-tenant immediate shed, global backpressure wait).
//
// Responses are coalesced writev-style: workers append frames to a
// per-connection output buffer and flush only when the connection's
// dispatched-frame count drains to zero or the buffer passes a high-water
// mark, so a pipelined batch of K requests costs one write syscall, and
// interleaved batches from many connections cost few: within one ring
// drain the worker defers every flush decision to a single end-of-batch
// scatter-gather pass over the connections it touched (binGather).
package service

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"vantage/internal/hash"
)

const (
	// binMagic opens the negotiation preamble. >= 0x80 so it can never
	// start a text-protocol verb.
	binMagic   = 0x83
	binVersion = 1

	// binReqHdr and binRespHdr are the fixed header sizes after the u32
	// length prefix.
	binReqHdr  = 16
	binRespHdr = 8

	// binMaxFrame bounds one request frame: header + max tenant (u8) +
	// max key + max value. Anything larger is a framing violation.
	binMaxFrame = binReqHdr + 255 + maxKeyLen + maxValueLen

	// binFlushHi flushes a connection's output buffer early when coalesced
	// responses pass this size, bounding memory and syscall payload alike.
	binFlushHi = 64 << 10

	// binFlagTTL marks a PUT whose ttl_ms field is authoritative.
	binFlagTTL = 1 << 0

	// binEnqFlush caps how many resolved requests a connection batches
	// before handing runs to the shard rings mid-read, bounding both the
	// transport's buffered work and the first frame's queue delay when a
	// single read carries a very deep pipeline.
	binEnqFlush = 64
)

// Request opcodes and response statuses.
const (
	binOpGet       = 1
	binOpPut       = 2
	binOpDel       = 3
	binOpTouch     = 4
	binOpPing      = 5
	binOpTenantAdd = 6
	binOpTenantDel = 7
	binOpRegOp     = 8
	binOpRegPull   = 9
	binOpRehome    = 10
	binOpBMGet     = 11

	binStOK   = 0
	binStMiss = 1
	binStErr  = 2
	binStShed = 3
)

// binFlagRegAdd distinguishes add from remove on a REG_OP frame.
const binFlagRegAdd = 1 << 0

var binLE = binary.LittleEndian

// errBadFrame marks a framing violation; the connection closes because the
// stream can no longer be trusted.
var errBadFrame = errors.New("binary framing violation")

// errPollerDown reports that the event-loop poller declined a connection
// (stopping, or platform without one); the caller falls back to the
// portable goroutine transport.
var errPollerDown = errors.New("binary poller unavailable")

// binConn is one negotiated binary connection. Exactly one transport owns
// it: nc (portable goroutine reader) or f/fd (the event-loop poller).
type binConn struct {
	srv *Server

	nc net.Conn // goroutine transport; nil under the poller

	// Poller transport state. f owns the dup'd fd; registered and wantW
	// are guarded by wmu; lastActive is poller-thread-private.
	f          *os.File
	fd         int
	registered bool
	wantW      bool
	wantWSince atomic.Int64 // unix ns the current EPOLLOUT wait began; 0 = none
	lastActive int64        // unix ns of the last completed frame

	wmu sync.Mutex
	out []byte    // coalesced, unflushed response frames
	wwd *watchdog // goroutine-transport write watchdog, nil otherwise

	pending atomic.Int64 // dispatched frames whose responses are unwritten
	dying   atomic.Bool  // close requested; suppresses further writes
	closed  atomic.Bool  // transport released (fd/conn closed)

	in []byte // partial-frame carry between reads

	// Per-shard enqueue runs, transport-thread-private: binDispatch batches
	// resolved data ops here and binFeed hands each shard its run with one
	// pushBatch, so a pipelined read pays one ring lock+wake per shard
	// touched instead of per frame. Always drained before binFeed returns.
	enqBy [][]*binReq
	enqN  int

	// bmShard is transport-thread scratch for BMGET dispatch: the one
	// sub-request per shard the current frame is accumulating into.
	bmShard []*binReq
}

// abort requests the connection's demise from a worker context: the
// goroutine transport closes the net.Conn directly (its reader unblocks
// and finishes the bookkeeping); the poller transport queues the close so
// only the poller thread ever releases an fd (a worker closing it directly
// could race a kernel fd reuse into the poller's read path).
func (c *binConn) abort() {
	if c.dying.Swap(true) {
		return
	}
	if c.nc != nil {
		c.nc.Close()
		return
	}
	c.pollerRequestClose()
}

// handleBinary completes the negotiation for a connection whose first byte
// was binMagic and hands it to a binary transport. The pooled text reader
// is returned to its pool either way; bytes a client pipelined behind the
// preamble are carried into the transport.
func (s *Server) handleBinary(conn net.Conn, r *bufio.Reader, rwd *watchdog) {
	drop := func(timeout bool) {
		if timeout {
			s.svc.deadlineCloses.Add(1)
		}
		if rwd != nil {
			rwd.disarm()
		}
		r.Reset(nil)
		readerPool.Put(r)
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}
	var pre [4]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		drop(isTimeout(err))
		return
	}
	if pre[1] != 'V' || pre[2] != 'B' {
		drop(false)
		return
	}
	// The ack always carries the server's version: a mismatched client
	// learns what the server speaks before the close.
	ack := [4]byte{binMagic, 'V', 'B', binVersion}
	if _, err := conn.Write(ack[:]); err != nil || pre[3] != binVersion {
		drop(false)
		return
	}
	s.binOnce.Do(s.binStart)
	s.svc.binConnsTotal.Add(1)
	s.svc.binConns.Add(1)
	var leftover []byte
	if n := r.Buffered(); n > 0 {
		peek, _ := r.Peek(n)
		leftover = append(leftover, peek...)
	}
	if rwd != nil {
		rwd.disarm()
	}
	// A watchdog that fired during the handshake may have poisoned the
	// read deadline; the binary transports manage their own windows.
	conn.SetReadDeadline(time.Time{})
	r.Reset(nil)
	readerPool.Put(r)
	s.binAttach(conn, leftover)
}

// binAttach hands a negotiated connection to the best available transport:
// the event-loop poller for TCP connections where one exists, else the
// portable goroutine reader.
func (s *Server) binAttach(conn net.Conn, leftover []byte) {
	c := &binConn{srv: s}
	if tc, ok := conn.(*net.TCPConn); ok && !s.binNoPoll {
		if p := s.binPoller(); p != nil {
			if p.attach(tc, c, leftover) == nil {
				return
			}
		}
	}
	c.nc = conn
	s.wg.Add(1)
	go s.binServeConn(c, leftover)
}

// binPoller returns the lazily created event-loop poller, or nil when the
// platform (or the kernel) does not provide one.
func (s *Server) binPoller() *binPoller {
	if p := s.binPoll.Load(); p != nil {
		return p
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if p := s.binPoll.Load(); p != nil {
		return p
	}
	if s.closed.Load() {
		return nil
	}
	p := newBinPoller(s)
	if p == nil {
		return nil
	}
	s.binPoll.Store(p)
	return p
}

// binServeConn is the portable binary transport: one goroutine reads and
// decodes frames into the shard rings; workers write responses directly to
// the connection. Used where the poller is unavailable, for non-TCP
// listeners (unix sockets, in-memory pipes), and — via the binNoPoll test
// seam — to exercise this path on platforms that have a poller.
func (s *Server) binServeConn(c *binConn, leftover []byte) {
	defer s.wg.Done()
	conn := c.nc
	if s.cfg.WriteTimeout > 0 {
		c.wwd = newWatchdog(s.svc.clk, conn.SetWriteDeadline)
	}
	var rwd *watchdog
	if s.cfg.IdleTimeout > 0 {
		rwd = newWatchdog(s.svc.clk, conn.SetReadDeadline)
	}
	defer func() {
		c.dying.Store(true)
		c.wmu.Lock()
		c.closed.Store(true)
		c.wmu.Unlock()
		conn.Close()
		if rwd != nil {
			rwd.disarm()
		}
		if c.wwd != nil {
			c.wwd.disarm()
		}
		s.svc.binConns.Add(-1)
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	if len(leftover) > 0 {
		if _, err := s.binFeed(c, leftover); err != nil {
			return
		}
	}
	buf := make([]byte, 32<<10)
	armed := false
	for {
		if rwd != nil && !armed {
			// Absolute window per frame — the binary analogue of the text
			// protocol's per-command-line idle window. Re-armed only after
			// progress (a completed frame), so a dribbling client cannot
			// keep the connection alive.
			rwd.arm(s.cfg.IdleTimeout)
			armed = true
		}
		n, err := conn.Read(buf)
		if n > 0 {
			frames, ferr := s.binFeed(c, buf[:n])
			if ferr != nil {
				return
			}
			if frames > 0 {
				armed = false
			}
		}
		if err != nil {
			if isTimeout(err) {
				s.svc.deadlineCloses.Add(1)
			}
			return
		}
	}
}

// binFeed consumes a chunk of stream bytes, dispatching every complete
// frame and carrying any partial tail to the next call. It returns the
// number of frames dispatched; a non-nil error is a framing violation and
// the caller must close the connection.
func (s *Server) binFeed(c *binConn, data []byte) (int, error) {
	b := data
	if len(c.in) > 0 {
		c.in = append(c.in, data...)
		b = c.in
	}
	frames := 0
	for {
		if len(b) < 4 {
			break
		}
		n := int(binLE.Uint32(b))
		if n < binReqHdr || n > binMaxFrame {
			s.binFlushEnq(c)
			return frames, errBadFrame
		}
		if len(b) < 4+n {
			break
		}
		if err := s.binDispatch(c, b[4:4+n]); err != nil {
			// Frames decoded before the violation were valid; hand them to
			// their shards before the caller tears the connection down.
			s.binFlushEnq(c)
			return frames, err
		}
		frames++
		b = b[4+n:]
	}
	s.binFlushEnq(c)
	if len(b) > 0 || len(c.in) > 0 {
		// copy() under append handles the overlapping self-move when b
		// still aliases c.in.
		c.in = append(c.in[:0], b...)
	}
	if len(c.in) == 0 && cap(c.in) > binFlushHi {
		c.in = nil // don't let one huge PUT pin a large carry buffer
	}
	return frames, nil
}

// binDispatch validates one request frame and routes it: PING and
// TENANT_ADD answer inline (no shard state), data ops resolve the tenant
// and line address once and enqueue on the owning shard's ring. The frame
// bytes alias the read buffer and are copied into the pooled request
// before this returns.
func (s *Server) binDispatch(c *binConn, f []byte) error {
	op := f[0]
	flags := f[1]
	tl := int(f[2])
	id := binLE.Uint32(f[4:8])
	ttlMS := binLE.Uint32(f[8:12])
	kl := int(binLE.Uint16(f[12:14]))
	if f[3] != 0 || f[14] != 0 || f[15] != 0 {
		return errBadFrame // reserved bytes must be zero in v1
	}
	if binReqHdr+tl+kl > len(f) {
		return errBadFrame
	}
	tenant := f[binReqHdr : binReqHdr+tl]
	key := f[binReqHdr+tl : binReqHdr+tl+kl]
	val := f[binReqHdr+tl+kl:]
	s.svc.binFrames.Add(1)
	switch op {
	case binOpPing:
		s.binRespond(c, binStOK, op, id, nil, false)
		return nil
	case binOpTenantAdd:
		// AddTenant replicates to every peer synchronously, so it must
		// never run on the poller loop: two nodes adding tenants
		// concurrently would each block their loop on the other's RegOp
		// reply — which the other loop, equally blocked, can never write —
		// until the peer timeout breaks the cycle. The op takes a pending
		// slot and answers out of band exactly like a shard op; a client
		// pipelining data frames behind an unacknowledged TENANT_ADD may
		// see "unknown tenant" for them, which is why every client in this
		// repo awaits the add's ack before sending data.
		name := string(tenant)
		c.pending.Add(1)
		go func() {
			part, err := s.svc.AddTenant(name)
			if err != nil {
				s.binRespondErr(c, op, id, err.Error(), true)
				return
			}
			var p [4]byte
			binLE.PutUint32(p[:], uint32(part))
			s.binRespond(c, binStOK, op, id, p[:], true)
		}()
		return nil
	case binOpTenantDel:
		if flags != 0 {
			return errBadFrame
		}
		// Same broadcast, same poller-deadlock hazard as TENANT_ADD.
		name := string(tenant)
		c.pending.Add(1)
		go func() {
			if err := s.svc.RemoveTenant(name); err != nil {
				s.binRespondErr(c, op, id, err.Error(), true)
				return
			}
			s.binRespond(c, binStOK, op, id, nil, true)
		}()
		return nil
	case binOpRegOp:
		if flags&^byte(binFlagRegAdd) != 0 {
			return errBadFrame
		}
		if kl != 0 || len(val) != 8 {
			s.binRespondErr(c, op, id, "bad registry frame", false)
			return nil
		}
		ver, err := s.svc.ApplyRegistryOp(binLE.Uint64(val), flags&binFlagRegAdd != 0, string(tenant))
		if err != nil {
			s.binRespondErr(c, op, id, err.Error(), false)
			return nil
		}
		var p [8]byte
		binLE.PutUint64(p[:], ver)
		s.binRespond(c, binStOK, op, id, p[:], false)
		return nil
	case binOpRegPull:
		if flags != 0 {
			return errBadFrame
		}
		if tl != 0 || kl != 0 || len(val) != 0 {
			s.binRespondErr(c, op, id, "bad registry pull", false)
			return nil
		}
		ver, names := s.svc.RegistrySnapshot()
		p := make([]byte, 12, 12+16*len(names))
		binLE.PutUint64(p[0:8], ver)
		binLE.PutUint32(p[8:12], uint32(len(names)))
		for _, n := range names {
			p = append(p, byte(len(n)))
			p = append(p, n...)
		}
		s.binRespond(c, binStOK, op, id, p, false)
		return nil
	case binOpBMGet:
		return s.binDispatchBMGet(c, f, flags, id, ttlMS, tl, kl)
	case binOpGet, binOpPut, binOpDel, binOpTouch, binOpRehome:
	default:
		return errBadFrame
	}
	if flags&^byte(binFlagTTL) != 0 {
		return errBadFrame
	}
	if kl == 0 || kl > maxKeyLen {
		s.binRespondErr(c, op, id, "bad key length", false)
		return nil
	}
	if op != binOpPut && op != binOpRehome && len(val) != 0 {
		s.binRespondErr(c, op, id, "unexpected value payload", false)
		return nil
	}
	if len(val) > maxValueLen {
		s.binRespondErr(c, op, id, "value too long", false)
		return nil
	}
	t := s.svc.reg.Load().tenants[string(tenant)]
	if t == nil {
		s.binRespondErr(c, op, id, "unknown tenant", false)
		return nil
	}
	q := binReqPool.Get().(*binReq)
	addr := addrOfB(t.part, key)
	q.c, q.op, q.id, q.t = c, op, id, t
	q.addr, q.mixed = addr, hash.Mix64(addr)
	q.ttlMS = ttlMS
	q.hasTTL = flags&binFlagTTL != 0
	q.key = append(q.key[:0], key...)
	q.val = append(q.val[:0], val...)
	si := int(s.svc.route.Hash(q.mixed) & s.svc.mask)
	if c.enqBy == nil {
		c.enqBy = make([][]*binReq, len(s.binRings))
	}
	c.enqBy[si] = append(c.enqBy[si], q)
	if c.enqN++; c.enqN >= binEnqFlush {
		s.binFlushEnq(c)
	}
	return nil
}

// binDispatchBMGet validates one BMGET frame and fans its keys out to the
// owning shards as at most one pooled sub-request per shard, all sharing
// one binBatch that re-merges per-key results into a single coalesced
// response frame. The whole batch holds exactly one pending slot on the
// connection — it produces exactly one response frame. count arrives in
// the header's klen field; the key list must tile the body exactly.
func (s *Server) binDispatchBMGet(c *binConn, f []byte, flags uint8, id, ttlMS uint32, tl, count int) error {
	if flags != 0 || ttlMS != 0 {
		return errBadFrame // no flags or TTL semantics are defined for BMGET in v1
	}
	tenant := f[binReqHdr : binReqHdr+tl]
	list := f[binReqHdr+tl:]
	// Structural pass: the declared count of (u16 len, key) entries must
	// consume the body exactly. Truncation or trailing bytes mean the
	// stream can no longer be trusted; key-length violations are semantic.
	rest := list
	badKey := false
	for i := 0; i < count; i++ {
		if len(rest) < 2 {
			return errBadFrame
		}
		kl := int(binLE.Uint16(rest))
		if len(rest) < 2+kl {
			return errBadFrame
		}
		if kl == 0 || kl > maxKeyLen {
			badKey = true
		}
		rest = rest[2+kl:]
	}
	if len(rest) != 0 {
		return errBadFrame
	}
	switch {
	case count == 0:
		s.binRespondErr(c, binOpBMGet, id, "empty key list", false)
		return nil
	case count > maxBatchKeys:
		s.binRespondErr(c, binOpBMGet, id, "too many keys", false)
		return nil
	case badKey:
		s.binRespondErr(c, binOpBMGet, id, "bad key length", false)
		return nil
	}
	t := s.svc.reg.Load().tenants[string(tenant)]
	if t == nil {
		s.binRespondErr(c, binOpBMGet, id, "unknown tenant", false)
		return nil
	}
	s.svc.bmgetKeys.Add(uint64(count))
	b := &binBatch{c: c, id: id, sts: make([]uint8, count), vals: make([][]byte, count)}
	b.remain.Store(int32(count))
	if c.enqBy == nil {
		c.enqBy = make([][]*binReq, len(s.binRings))
	}
	if cap(c.bmShard) < len(s.binRings) {
		c.bmShard = make([]*binReq, len(s.binRings))
	}
	reqs := c.bmShard[:len(s.binRings)]
	for i := range reqs {
		reqs[i] = nil
	}
	for i := 0; i < count; i++ {
		kl := int(binLE.Uint16(list))
		key := list[2 : 2+kl]
		list = list[2+kl:]
		addr := addrOfB(t.part, key)
		mixed := hash.Mix64(addr)
		si := int(s.svc.route.Hash(mixed) & s.svc.mask)
		q := reqs[si]
		if q == nil {
			q = binReqPool.Get().(*binReq)
			q.c, q.op, q.id, q.t = c, binOpBMGet, id, t
			q.batch = b
			q.bk = q.bk[:0]
			q.kbuf = q.kbuf[:0]
			reqs[si] = q
			c.enqBy[si] = append(c.enqBy[si], q)
			c.enqN++
		}
		off := int32(len(q.kbuf))
		q.kbuf = append(q.kbuf, key...)
		q.bk = append(q.bk, binBKey{addr: addr, mixed: mixed, off: off, ln: int32(kl), idx: int32(i)})
	}
	c.pending.Add(1)
	if c.enqN >= binEnqFlush {
		s.binFlushEnq(c)
	}
	return nil
}

// binFlushEnq hands the connection's accumulated per-shard runs to their
// rings, one pushBatch (one lock, one wake) per shard touched. Requests a
// full ring cannot accept are shed here with the same counters as an
// in-flight shed, so dashboards see one overload signal. Transport-thread
// context only.
func (s *Server) binFlushEnq(c *binConn) {
	if c.enqN == 0 {
		return
	}
	for si, qs := range c.enqBy {
		if len(qs) == 0 {
			continue
		}
		// BMGET sub-requests don't hold pending slots of their own: the
		// batch claimed its single slot at dispatch (one response frame).
		pend := int64(0)
		for _, q := range qs {
			if q.batch == nil {
				pend++
			}
		}
		if pend > 0 {
			c.pending.Add(pend)
		}
		n := s.binRings[si].pushBatch(qs)
		for _, q := range qs[n:] {
			q.t.shed.Add(1)
			s.svc.requestsShed.Add(1)
			if b := q.batch; b != nil {
				for _, bk := range q.bk {
					b.sts[bk.idx] = binStShed
				}
				done := len(q.bk)
				q.recycle()
				s.binBatchDone(b, done, nil)
				continue
			}
			op, id := q.op, q.id
			q.recycle()
			s.binRespond(c, binStShed, op, id, nil, true)
		}
		for i := range qs {
			qs[i] = nil
		}
		if cap(qs) > binEnqFlush*4 {
			c.enqBy[si] = nil
		} else {
			c.enqBy[si] = qs[:0]
		}
	}
	c.enqN = 0
}

// binRespond encodes one response frame onto c's output buffer and
// flushes when the connection's batch drains (pending hits zero) or the
// buffer passes the high-water mark. dec is true when this response
// retires a dispatched data frame (PING/TENANT_ADD answer inline and never
// took a pending slot).
func (s *Server) binRespond(c *binConn, status, op uint8, id uint32, payload []byte, dec bool) {
	s.binRespondG(c, status, op, id, payload, dec, nil)
}

// binRespondG is binRespond with an optional scatter-gather context: when
// g is non-nil (shard-worker context) the flush decision is deferred to
// the worker's end-of-batch binGatherFlush pass, so responses to many
// connections executed in one popBatch run are written back-to-back in one
// pass instead of deciding (and often syscalling) per response. The
// high-water mark still flushes inline to bound buffered memory.
func (s *Server) binRespondG(c *binConn, status, op uint8, id uint32, payload []byte, dec bool, g *binGather) {
	c.wmu.Lock()
	if c.dying.Load() || c.closed.Load() {
		c.wmu.Unlock()
		if dec {
			c.pending.Add(-1)
		}
		return
	}
	c.out = appendBinResp(c.out, status, op, id, payload)
	var left int64
	if dec {
		left = c.pending.Add(-1)
	} else {
		left = c.pending.Load()
	}
	if g != nil {
		if len(c.out) >= binFlushHi {
			s.binFlushLocked(c)
		}
		c.wmu.Unlock()
		g.add(c)
		return
	}
	if left == 0 || len(c.out) >= binFlushHi {
		s.binFlushLocked(c)
	}
	c.wmu.Unlock()
}

func (s *Server) binRespondErr(c *binConn, op uint8, id uint32, msg string, dec bool) {
	s.binRespond(c, binStErr, op, id, []byte(msg), dec)
}

// binGather is a shard worker's per-popBatch set of touched connections.
// Deferring the flush decision to one end-of-batch pass is the
// cross-connection scatter-gather: K coalesced responses to M connections
// cost at most M writes issued consecutively, not K flush checks each
// potentially paying its own syscall.
type binGather struct {
	conns []*binConn
}

// add records a touched connection (deduplicated; M is small).
func (g *binGather) add(c *binConn) {
	for _, e := range g.conns {
		if e == c {
			return
		}
	}
	g.conns = append(g.conns, c)
}

// binGatherFlush writes every gathered connection whose dispatched frames
// have drained. A connection still owing responses keeps its buffer: the
// worker that appends its last response gathers it again and this pass on
// that worker flushes it, so no frame is ever stranded.
func (s *Server) binGatherFlush(g *binGather) {
	for i, c := range g.conns {
		g.conns[i] = nil
		c.wmu.Lock()
		if len(c.out) > 0 && c.pending.Load() == 0 && !c.dying.Load() && !c.closed.Load() {
			s.binFlushLocked(c)
		}
		c.wmu.Unlock()
	}
	g.conns = g.conns[:0]
}

// binFlushLocked writes c's buffered responses. Caller holds c.wmu.
func (s *Server) binFlushLocked(c *binConn) {
	if len(c.out) == 0 {
		return
	}
	if c.nc == nil {
		c.pollerFlushLocked()
		return
	}
	if c.wwd != nil {
		c.wwd.arm(s.cfg.WriteTimeout)
	}
	_, err := c.nc.Write(c.out)
	if c.wwd != nil {
		c.wwd.disarm()
	}
	c.out = c.out[:0]
	if cap(c.out) > 1<<20 {
		c.out = nil
	}
	if err != nil {
		if isTimeout(err) {
			s.svc.deadlineCloses.Add(1)
		}
		c.dying.Store(true)
		c.nc.Close()
	}
}

// appendBinResp appends one encoded response frame to dst.
func appendBinResp(dst []byte, status, op uint8, id uint32, payload []byte) []byte {
	var h [4 + binRespHdr]byte
	binLE.PutUint32(h[0:4], uint32(binRespHdr+len(payload)))
	h[4] = status
	h[5] = op
	binLE.PutUint32(h[8:12], id)
	dst = append(dst, h[:]...)
	return append(dst, payload...)
}
