package service

import (
	"encoding/binary"
	"net"
	"strconv"
	"strings"
	"testing"
)

// bmFrameN encodes a BMGET request frame with full control over the
// declared key count (which may lie about the list for framing tests) and
// optional trailing garbage.
func bmFrameN(flags uint8, id, ttlMS uint32, tenant string, count int, keys []string, extra string) []byte {
	body := make([]byte, 0, 64)
	for _, k := range keys {
		var l [2]byte
		binary.LittleEndian.PutUint16(l[:], uint16(len(k)))
		body = append(body, l[:]...)
		body = append(body, k...)
	}
	body = append(body, extra...)
	n := binReqHdr + len(tenant) + len(body)
	b := make([]byte, 4+binReqHdr, 4+n)
	binary.LittleEndian.PutUint32(b[0:4], uint32(n))
	b[4] = binOpBMGet
	b[5] = flags
	b[6] = uint8(len(tenant))
	binary.LittleEndian.PutUint32(b[8:12], id)
	binary.LittleEndian.PutUint32(b[12:16], ttlMS)
	binary.LittleEndian.PutUint16(b[16:18], uint16(count))
	b = append(b, tenant...)
	return append(b, body...)
}

func bmFrame(id uint32, tenant string, keys ...string) []byte {
	return bmFrameN(0, id, 0, tenant, len(keys), keys, "")
}

type bmEntry struct {
	status uint8
	val    string
}

// parseBMGet decodes an OK response payload.
func parseBMGet(t *testing.T, payload []byte) []bmEntry {
	t.Helper()
	if len(payload) < 2 {
		t.Fatalf("BMGET payload too short: %d bytes", len(payload))
	}
	count := int(binary.LittleEndian.Uint16(payload))
	p := payload[2:]
	out := make([]bmEntry, 0, count)
	for i := 0; i < count; i++ {
		if len(p) < 5 {
			t.Fatalf("BMGET entry %d truncated", i)
		}
		st := p[0]
		vl := int(binary.LittleEndian.Uint32(p[1:5]))
		p = p[5:]
		if len(p) < vl {
			t.Fatalf("BMGET entry %d value truncated", i)
		}
		out = append(out, bmEntry{status: st, val: string(p[:vl])})
		p = p[vl:]
	}
	if len(p) != 0 {
		t.Fatalf("BMGET payload has %d trailing bytes", len(p))
	}
	return out
}

func newBMGetServer(t *testing.T, shards int, nopoll bool) (*Service, *Server) {
	t.Helper()
	svc := newTestService(t, Config{Shards: shards, LinesPerShard: 512, MaxTenants: 4, Seed: 41})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(svc, lis)
	srv.binNoPoll = nopoll
	t.Cleanup(func() { srv.Close() })
	return svc, srv
}

// TestBMGetRoundTrip: one frame carrying N keys answers one coalesced
// frame with per-key results in request order, across shards, on both
// transports.
func TestBMGetRoundTrip(t *testing.T) {
	for _, tr := range []struct {
		name   string
		nopoll bool
	}{{"default", false}, {"nopoll", true}} {
		t.Run(tr.name, func(t *testing.T) {
			svc, srv := newBMGetServer(t, 4, tr.nopoll)
			c := dialBin(t, srv.Addr().String())
			c.expect(binOpTenantAdd, 0, 1, 0, "alice", "", "", binStOK, "\x00\x00\x00\x00")

			// Enough keys to land on several shards.
			var keys []string
			for i := 0; i < 20; i++ {
				k := "key-" + strconv.Itoa(i)
				keys = append(keys, k)
				if i%3 != 2 { // every third key stays missing
					c.expect(binOpPut, 0, uint32(10+i), 0, "alice", k, "v"+strconv.Itoa(i), binStOK, "")
				}
			}
			if _, err := c.conn.Write(bmFrame(99, "alice", keys...)); err != nil {
				t.Fatal(err)
			}
			r := c.resp()
			if r.status != binStOK || r.op != binOpBMGet || r.id != 99 {
				t.Fatalf("BMGET response: status=%d op=%d id=%d", r.status, r.op, r.id)
			}
			ents := parseBMGet(t, r.payload)
			if len(ents) != len(keys) {
				t.Fatalf("BMGET entries = %d, want %d", len(ents), len(keys))
			}
			for i, e := range ents {
				if i%3 == 2 {
					if e.status != binStMiss || e.val != "" {
						t.Fatalf("key %d: got status=%d val=%q, want MISS", i, e.status, e.val)
					}
				} else if e.status != binStOK || e.val != "v"+strconv.Itoa(i) {
					t.Fatalf("key %d: got status=%d val=%q, want OK v%d", i, e.status, e.val, i)
				}
			}

			// Pipelined BMGETs with duplicate ids both answer (the id is
			// echoed verbatim; cross-shard order is unspecified).
			c.conn.Write(bmFrame(7, "alice", "key-0"))
			c.conn.Write(bmFrame(7, "alice", "key-2"))
			r1, r2 := c.resp(), c.resp()
			if r1.id != 7 || r2.id != 7 {
				t.Fatalf("dup-id responses: ids %d %d", r1.id, r2.id)
			}
			got1, got2 := parseBMGet(t, r1.payload), parseBMGet(t, r2.payload)
			hits, misses := 0, 0
			for _, e := range []bmEntry{got1[0], got2[0]} {
				switch {
				case e.status == binStOK && e.val == "v0":
					hits++
				case e.status == binStMiss:
					misses++
				}
			}
			if hits != 1 || misses != 1 {
				t.Fatalf("dup-id payloads: %+v %+v", got1, got2)
			}

			if n := svc.Stats().BmgetKeys; n != uint64(len(keys)+2) {
				t.Fatalf("BmgetKeys = %d, want %d", n, len(keys)+2)
			}
			tc := dialTest(t, srv.Addr().String())
			tc.send("STATS")
			var saw bool
			for _, l := range tc.linesUntilEND() {
				if strings.HasPrefix(l, "STAT bmget_keys ") {
					saw = true
				}
			}
			if !saw {
				t.Fatal("STATS missing bmget_keys")
			}
		})
	}
}

// TestBMGetSemanticErrors: validation failures answer a frame-level ERR
// and the stream continues.
func TestBMGetSemanticErrors(t *testing.T) {
	_, srv := newBMGetServer(t, 2, false)
	c := dialBin(t, srv.Addr().String())
	c.expect(binOpTenantAdd, 0, 1, 0, "alice", "", "", binStOK, "\x00\x00\x00\x00")

	cases := []struct {
		name  string
		frame []byte
		msg   string
	}{
		{"zero keys", bmFrame(2, "alice"), "empty key list"},
		{"unknown tenant", bmFrame(3, "ghost", "k"), "unknown tenant"},
		{"empty key", bmFrameN(0, 4, 0, "alice", 2, []string{"ok", ""}, ""), "bad key length"},
		{"oversized key", bmFrame(5, "alice", strings.Repeat("k", maxKeyLen+1)), "bad key length"},
		{"too many keys", bmFrameN(0, 6, 0, "alice", maxBatchKeys+1, manyKeys(maxBatchKeys+1), ""), "too many keys"},
	}
	for _, tcase := range cases {
		if _, err := c.conn.Write(tcase.frame); err != nil {
			t.Fatal(err)
		}
		r := c.resp()
		if r.status != binStErr || r.op != binOpBMGet || string(r.payload) != tcase.msg {
			t.Fatalf("%s: got status=%d payload=%q, want ERR %q", tcase.name, r.status, r.payload, tcase.msg)
		}
	}
	// The stream survives every semantic error.
	c.expect(binOpPing, 0, 9, 0, "", "", "", binStOK, "")
}

func manyKeys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = "k" + strconv.Itoa(i)
	}
	return out
}

// TestBMGetFramingViolations: a key list that does not tile the body, or
// reserved header fields in use, close the connection.
func TestBMGetFramingViolations(t *testing.T) {
	frames := map[string][]byte{
		"truncated list": bmFrameN(0, 1, 0, "alice", 3, []string{"a", "b"}, ""),
		"trailing bytes": bmFrameN(0, 2, 0, "alice", 1, []string{"a"}, "junk"),
		"nonzero flags":  bmFrameN(1, 3, 0, "alice", 1, []string{"a"}, ""),
		"nonzero ttl":    bmFrameN(0, 4, 7, "alice", 1, []string{"a"}, ""),
		"cut entry len":  append(bmFrameN(0, 5, 0, "alice", 2, []string{"a"}, "x"), nil...),
	}
	for name, frame := range frames {
		t.Run(name, func(t *testing.T) {
			_, srv := newBMGetServer(t, 1, false)
			c := dialBin(t, srv.Addr().String())
			c.expect(binOpTenantAdd, 0, 1, 0, "alice", "", "", binStOK, "\x00\x00\x00\x00")
			if _, err := c.conn.Write(frame); err != nil {
				t.Fatal(err)
			}
			c.closedSoon()
		})
	}
}
