//go:build linux

// The Linux binary-connection event loop: one goroutine multiplexes every
// negotiated binary connection through epoll (level-triggered), so 10k
// idle connections cost their fds plus one map entry each instead of a
// goroutine and two pooled 16 KiB buffers each. The poller thread reads
// and decodes frames out of a single shared 64 KiB buffer into pooled
// requests; the per-shard workers execute and write responses directly to
// the fd (coalesced under the connection's write mutex), arming EPOLLOUT
// only when a socket buffer fills.
//
// Ownership discipline: the poller owns every fd it registers — the
// accept-loop's net.Conn is dup'd via File() and closed at attach, and
// only the poller thread ever releases the dup. A worker that hits a write
// error requests the close through the wake pipe instead of closing the fd
// itself; closing from two threads could race a kernel fd reuse into the
// poller reading on behalf of a dead connection. Lock order is always
// binConn.wmu -> binPoller.mu, never the reverse.
//
// Deadlines: with IdleTimeout or WriteTimeout configured, epoll_wait runs
// with a 50 ms tick and the poller sweeps connection timestamps against
// the service clock — the injected clock, so fake-clock tests can expire
// windows; only the sweep cadence is wall-clock. Idle reaping is per
// completed frame, mirroring the text protocol's per-command-line window:
// a client dribbling bytes that never finish a frame is reaped all the
// same.

package service

import (
	"errors"
	"net"
	"os"
	"sync"
	"syscall"
	"time"
)

type binPoller struct {
	srv   *Server
	epfd  int
	ctl   *os.File        // pollable wrapper around epfd; owns it after construction
	rc    syscall.RawConn // ctl's raw conn: parks the loop on the runtime netpoller
	wakeR int
	wakeW int

	mu      sync.Mutex
	conns   map[int]*binConn
	closeQ  []*binConn
	stopped bool

	lastSweep int64 // unix ns of the last deadline sweep (poller thread only)
}

// newBinPoller starts the event loop, or returns nil when the kernel
// refuses (the caller falls back to the goroutine transport).
//
// The loop does NOT block in a raw epoll_wait syscall. A goroutine stuck in
// a blocking syscall is invisible to the Go scheduler: every readiness event
// then pays a kernel thread wake plus an M-to-P handoff to get back into Go
// code, which measures ~15x worse round-trip latency than the text
// protocol's netpoller wake on a small box. Instead the epoll fd itself is
// made pollable (epoll fds nest: an epfd reports EPOLLIN when its interest
// set has ready events) and wrapped in an os.File, so the loop waits for
// readiness via RawConn.Read — parking on the runtime netpoller exactly the
// way a blocked conn.Read does, and waking through the scheduler's native
// path. Each wake then drains events with a non-blocking EpollWait.
func newBinPoller(srv *Server) *binPoller {
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return nil
	}
	// Nonblocking before os.NewFile, so the file registers with the runtime
	// netpoller (blocking fds get a non-pollable File).
	if err := syscall.SetNonblock(epfd, true); err != nil {
		syscall.Close(epfd)
		return nil
	}
	ctl := os.NewFile(uintptr(epfd), "binpoll-epoll")
	rc, err := ctl.SyscallConn()
	if err != nil {
		ctl.Close()
		return nil
	}
	// A non-pollable wrapper would turn RawConn.Read into an error loop;
	// deadline support is only present on netpoller-registered files, so use
	// it as the pollability probe.
	if err := ctl.SetReadDeadline(time.Time{}); err != nil {
		ctl.Close()
		return nil
	}
	var pipefds [2]int
	if err := syscall.Pipe2(pipefds[:], syscall.O_NONBLOCK|syscall.O_CLOEXEC); err != nil {
		ctl.Close()
		return nil
	}
	p := &binPoller{
		srv:   srv,
		epfd:  epfd,
		ctl:   ctl,
		rc:    rc,
		wakeR: pipefds[0],
		wakeW: pipefds[1],
		conns: make(map[int]*binConn),
	}
	ev := syscall.EpollEvent{Events: syscall.EPOLLIN, Fd: int32(p.wakeR)}
	if err := syscall.EpollCtl(epfd, syscall.EPOLL_CTL_ADD, p.wakeR, &ev); err != nil {
		ctl.Close()
		syscall.Close(p.wakeR)
		syscall.Close(p.wakeW)
		return nil
	}
	srv.wg.Add(1)
	go p.loop()
	return p
}

func (p *binPoller) wakeup() {
	var b [1]byte
	syscall.Write(p.wakeW, b[:])
}

// stop asks the loop to close every connection and exit. Idempotent.
func (p *binPoller) stop() {
	p.mu.Lock()
	p.stopped = true
	p.mu.Unlock()
	p.wakeup()
}

// attach transfers tc to the poller. A non-nil error means ownership was
// NOT taken and the caller may fall back to another transport; after the
// dup succeeds the poller owns the connection and any later failure is
// resolved internally by closing it (returning nil either way).
func (p *binPoller) attach(tc *net.TCPConn, c *binConn, leftover []byte) error {
	p.mu.Lock()
	stopped := p.stopped
	p.mu.Unlock()
	if stopped {
		return errPollerDown
	}
	f, err := tc.File()
	if err != nil {
		return err
	}
	fd := int(f.Fd())
	if err := syscall.SetNonblock(fd, true); err != nil {
		f.Close()
		return err
	}
	c.f, c.fd = f, fd
	// The dup owns the connection now: release the accept loop's net.Conn
	// and its s.conns entry. binEpoll keeps the connection counted toward
	// MaxConns.
	s := p.srv
	s.mu.Lock()
	delete(s.conns, tc)
	s.mu.Unlock()
	tc.Close()
	s.binEpoll.Add(1)
	c.lastActive = s.svc.clk.Now().UnixNano()
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		c.dying.Store(true)
		c.closed.Store(true)
		f.Close()
		s.binEpoll.Add(-1)
		s.svc.binConns.Add(-1)
		return nil // owned and closed; no fallback
	}
	p.conns[fd] = c
	p.mu.Unlock()
	// Feed pipelined pre-attach bytes before registering for events, so
	// the poller thread can never decode the same connection concurrently.
	// Workers may already flush responses straight to the fd; only the
	// EPOLLOUT arming needs registration, which armWriteLocked defers via
	// wantW until the ADD below.
	if len(leftover) > 0 {
		if _, err := s.binFeed(c, leftover); err != nil {
			p.closeConn(c, false)
			return nil
		}
	}
	c.wmu.Lock()
	events := uint32(syscall.EPOLLIN | syscall.EPOLLRDHUP)
	if c.wantW {
		events |= syscall.EPOLLOUT
	}
	ev := syscall.EpollEvent{Events: events, Fd: int32(fd)}
	regErr := syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_ADD, fd, &ev)
	c.registered = regErr == nil
	c.wmu.Unlock()
	if regErr != nil {
		p.closeConn(c, false)
	}
	return nil
}

func (p *binPoller) loop() {
	s := p.srv
	defer s.wg.Done()
	events := make([]syscall.EpollEvent, 128)
	buf := make([]byte, 64<<10)
	sweeping := s.cfg.IdleTimeout > 0 || s.cfg.WriteTimeout > 0
	for {
		if sweeping {
			// The deadline sweep needs a tick even when no events arrive;
			// wall-clock pacing only, timestamps still come from the service
			// clock (see sweepDeadlines).
			p.ctl.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		}
		var n int
		var werr error
		rerr := p.rc.Read(func(fd uintptr) bool {
			n, werr = syscall.EpollWait(int(fd), events, 0)
			if werr == syscall.EINTR {
				n, werr = 0, nil
				return true // retry from the top without parking
			}
			// Park on the netpoller only when the set is drained; any event
			// arriving after this check edges the epfd again and readiness
			// sticks, so no wakeup can be lost.
			return n > 0 || werr != nil
		})
		if werr != nil {
			return // epfd gone; only happens after stop
		}
		if rerr != nil && !errors.Is(rerr, os.ErrDeadlineExceeded) {
			// ctl was closed under us (stop already ran its cleanup).
			return
		}
		for i := 0; i < n; i++ {
			ev := &events[i]
			fd := int(ev.Fd)
			if fd == p.wakeR {
				p.drainWake(buf)
				continue
			}
			p.mu.Lock()
			c := p.conns[fd]
			p.mu.Unlock()
			if c == nil {
				continue
			}
			if ev.Events&syscall.EPOLLOUT != 0 {
				p.writable(c)
			}
			if ev.Events&(syscall.EPOLLIN|syscall.EPOLLRDHUP|syscall.EPOLLHUP|syscall.EPOLLERR) != 0 {
				p.readable(c, buf)
			}
		}
		if p.runDeferred() {
			return
		}
		if sweeping {
			p.sweepDeadlines()
		}
	}
}

func (p *binPoller) drainWake(buf []byte) {
	for {
		n, err := syscall.Read(p.wakeR, buf[:64])
		if n <= 0 || err != nil {
			return
		}
	}
}

// runDeferred processes worker-requested closes and, after stop, closes
// everything and releases the poller's fds. Returns true when the loop
// must exit.
func (p *binPoller) runDeferred() bool {
	p.mu.Lock()
	q := p.closeQ
	p.closeQ = nil
	stopped := p.stopped
	p.mu.Unlock()
	for _, c := range q {
		p.closeConn(c, false)
	}
	if !stopped {
		return false
	}
	p.mu.Lock()
	doomed := make([]*binConn, 0, len(p.conns))
	for _, c := range p.conns {
		doomed = append(doomed, c)
	}
	p.mu.Unlock()
	for _, c := range doomed {
		p.closeConn(c, false)
	}
	p.ctl.Close() // closes epfd and deregisters it from the netpoller
	syscall.Close(p.wakeR)
	syscall.Close(p.wakeW)
	return true
}

// readable drains the socket into the shared buffer and feeds the frame
// decoder. Bounded spins per event keep one hot connection from starving
// the rest; level-triggered epoll re-reports whatever is left.
func (p *binPoller) readable(c *binConn, buf []byte) {
	for spins := 0; spins < 4; spins++ {
		n, err := syscall.Read(c.fd, buf)
		if n > 0 {
			frames, ferr := p.srv.binFeed(c, buf[:n])
			if ferr != nil {
				p.closeConn(c, false)
				return
			}
			if frames > 0 {
				c.lastActive = p.srv.svc.clk.Now().UnixNano()
			}
		}
		switch {
		case err == syscall.EINTR:
			continue
		case err == syscall.EAGAIN:
			return
		case err != nil || n == 0:
			p.closeConn(c, false) // hard error or EOF
			return
		}
		if n < len(buf) {
			return
		}
	}
}

// writable re-drives a connection whose flush previously filled the socket
// buffer.
func (p *binPoller) writable(c *binConn) {
	c.wmu.Lock()
	if c.closed.Load() {
		c.wmu.Unlock()
		return
	}
	c.wantW = false
	c.wantWSince.Store(0)
	c.pollerFlushLocked()
	if !c.wantW && c.registered {
		ev := syscall.EpollEvent{Events: syscall.EPOLLIN | syscall.EPOLLRDHUP, Fd: int32(c.fd)}
		syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_MOD, c.fd, &ev)
	}
	c.wmu.Unlock()
}

// sweepDeadlines reaps connections past their idle window (no completed
// frame for IdleTimeout) or stuck in an EPOLLOUT wait past WriteTimeout.
// Timestamps come from the service clock; the sweep itself is paced by the
// epoll tick.
func (p *binPoller) sweepDeadlines() {
	s := p.srv
	now := s.svc.clk.Now().UnixNano()
	if p.lastSweep != 0 && now-p.lastSweep < int64(25*time.Millisecond) {
		return
	}
	p.lastSweep = now
	idle := int64(s.cfg.IdleTimeout)
	wt := int64(s.cfg.WriteTimeout)
	var doomed []*binConn
	p.mu.Lock()
	for _, c := range p.conns {
		if idle > 0 && now-c.lastActive >= idle {
			doomed = append(doomed, c)
			continue
		}
		if wt > 0 {
			if since := c.wantWSince.Load(); since != 0 && now-since >= wt {
				doomed = append(doomed, c)
			}
		}
	}
	p.mu.Unlock()
	for _, c := range doomed {
		p.closeConn(c, true)
	}
}

// closeConn releases one connection exactly once: drop the map entry,
// deregister, close the dup, settle the gauges. The map delete MUST happen
// before f.Close() frees the fd number: a concurrent attach on a handler
// goroutine can dup the freed number immediately and insert its own
// p.conns[fd] — a late delete would remove the newcomer, leaving it
// registered in epoll but untracked (never read, never swept). Only ever
// runs on the poller thread (workers go through pollerRequestClose), so
// the fd cannot be reused under a concurrent poller read.
func (p *binPoller) closeConn(c *binConn, timeout bool) {
	if !c.closed.CompareAndSwap(false, true) {
		return
	}
	c.dying.Store(true)
	p.mu.Lock()
	delete(p.conns, c.fd)
	p.mu.Unlock()
	c.wmu.Lock()
	if c.registered {
		syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_DEL, c.fd, nil)
		c.registered = false
	}
	c.f.Close()
	c.wmu.Unlock()
	p.srv.binEpoll.Add(-1)
	p.srv.svc.binConns.Add(-1)
	if timeout {
		p.srv.svc.deadlineCloses.Add(1)
	}
}

// pollerRequestClose queues a close for the poller thread. Safe under
// c.wmu (lock order wmu -> p.mu).
func (c *binConn) pollerRequestClose() {
	p := c.srv.binPoll.Load()
	if p == nil {
		return
	}
	p.mu.Lock()
	if !p.stopped {
		p.closeQ = append(p.closeQ, c)
	}
	p.mu.Unlock()
	p.wakeup()
}

// pollerFlushLocked writes c.out to the fd, keeping any unwritable tail
// and arming EPOLLOUT for it. Caller holds c.wmu.
func (c *binConn) pollerFlushLocked() {
	if c.wantW || c.dying.Load() || c.closed.Load() {
		return
	}
	b := c.out
	for len(b) > 0 {
		n, err := syscall.Write(c.fd, b)
		if n > 0 {
			b = b[n:]
		}
		if err == syscall.EINTR {
			continue
		}
		if err == syscall.EAGAIN {
			break
		}
		if err != nil {
			c.out = c.out[:0]
			c.abort()
			return
		}
	}
	if len(b) == 0 {
		c.out = c.out[:0]
		if cap(c.out) > 1<<20 {
			c.out = nil
		}
		return
	}
	c.out = append(c.out[:0], b...) // overlapping forward move is safe
	c.wantW = true
	c.wantWSince.Store(c.srv.svc.clk.Now().UnixNano())
	c.armWriteLocked()
}

// armWriteLocked adds EPOLLOUT to the connection's interest set. Before
// registration (attach still feeding pre-attach bytes) the wantW flag
// alone is enough: attach includes EPOLLOUT in its ADD. Caller holds wmu.
func (c *binConn) armWriteLocked() {
	if !c.registered {
		return
	}
	p := c.srv.binPoll.Load()
	if p == nil {
		return
	}
	ev := syscall.EpollEvent{
		Events: uint32(syscall.EPOLLIN | syscall.EPOLLRDHUP | syscall.EPOLLOUT),
		Fd:     int32(c.fd),
	}
	syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_MOD, c.fd, &ev)
}
