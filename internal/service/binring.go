// The per-shard request rings behind the binary protocol: bounded MPSC
// queues fed by the transports (the epoll poller or the portable readers)
// and drained by one worker goroutine per shard. This generalizes the
// UMON deferred-ring idiom from the service layer (shard.observe/drain) —
// producers pay a few stores under a short mutex, the expensive work
// happens on the single consumer — from monitor samples to whole requests,
// which is what makes goroutine-free connections possible: the transport
// never executes shard work, so it never blocks on a shard lock.
//
// The ring is bounded and never blocks a producer: a full ring sheds the
// request with a SHED response, the same degrade-don't-collapse answer the
// text path gives at its in-flight limits. The worker applies those same
// in-flight limits per request (per-tenant immediate shed; the global
// backpressure wait runs on the worker, where blocking is load-shaping for
// one shard's queue instead of a stalled event loop).

package service

import (
	"sync"
	"sync/atomic"
	"time"
)

// binRingCap bounds one shard's queued requests. At 64-byte values a full
// ring holds ~a quarter MiB of copied payloads; deep enough to ride out a
// worker's lock wait, shallow enough that queue delay stays visible as
// shedding instead of hidden latency.
const binRingCap = 1024

// binReq is one decoded, resolved binary request. Pooled; key and val are
// copies owned by the request (the transport's read buffer is reused).
// A BMGET fans out as one binReq per shard touched: batch points at the
// shared aggregation state and bk/kbuf carry that shard's keys (key/val
// are unused), so the per-shard ring and worker machinery below handles
// batches and single requests identically.
type binReq struct {
	c      *binConn
	t      *Tenant
	op     uint8
	hasTTL bool
	id     uint32
	ttlMS  uint32
	addr   uint64
	mixed  uint64
	key    []byte
	val    []byte

	batch *binBatch
	bk    []binBKey
	kbuf  []byte // backing bytes for bk key slices, copied off the read buffer
}

// binBKey is one BMGET key resolved to its line address and shard route,
// with its position in the client's key list for result re-merging.
type binBKey struct {
	addr  uint64
	mixed uint64
	off   int32 // key bytes are kbuf[off : off+ln]
	ln    int32
	idx   int32 // position in the request's key list
}

// binBatch aggregates one BMGET's per-key results across its shard
// sub-requests. sts/vals are written at disjoint indices by the owning
// workers; the remain counter's final decrement publishes them to the
// finisher, which encodes the single coalesced response. err, when set,
// turns the whole response into a frame-level ERR (first setter wins).
type binBatch struct {
	c      *binConn
	id     uint32
	remain atomic.Int32
	err    atomic.Pointer[string]
	sts    []uint8
	vals   [][]byte
}

var binReqPool = sync.Pool{New: func() any { return &binReq{} }}

func (q *binReq) recycle() {
	q.c, q.t, q.batch = nil, nil, nil
	if cap(q.val) > 64<<10 {
		q.val = nil // don't let one huge PUT pin its buffer in the pool
	}
	if cap(q.kbuf) > 64<<10 {
		q.kbuf = nil
	}
	binReqPool.Put(q)
}

// binRing is a bounded MPSC queue: any transport may push, one shard
// worker pops. The wake channel has capacity 1 — a non-blocking send under
// the producer's mutex is enough, because the worker always re-drains the
// ring after consuming a wake.
type binRing struct {
	mu   sync.Mutex
	buf  []*binReq
	head int
	n    int
	wake chan struct{}
}

func newBinRing(capacity int) *binRing {
	return &binRing{buf: make([]*binReq, capacity), wake: make(chan struct{}, 1)}
}

// pushBatch enqueues as many of qs as fit, in order, under one lock
// acquisition and at most one wake — the producer-side mirror of popBatch.
// It returns the count accepted; the caller sheds the remainder. Feeding a
// decoded read's worth of frames per shard this way costs one mutex and
// one channel send per (connection read x shard) instead of per frame.
func (r *binRing) pushBatch(qs []*binReq) int {
	r.mu.Lock()
	n := len(r.buf) - r.n
	if n > len(qs) {
		n = len(qs)
	}
	for i := 0; i < n; i++ {
		r.buf[(r.head+r.n)%len(r.buf)] = qs[i]
		r.n++
	}
	r.mu.Unlock()
	if n > 0 {
		select {
		case r.wake <- struct{}{}:
		default:
		}
	}
	return n
}

// popBatch moves up to cap(dst)-len(dst) queued requests into dst.
func (r *binRing) popBatch(dst []*binReq) []*binReq {
	r.mu.Lock()
	for r.n > 0 && len(dst) < cap(dst) {
		dst = append(dst, r.buf[r.head])
		r.buf[r.head] = nil
		r.head = (r.head + 1) % len(r.buf)
		r.n--
	}
	r.mu.Unlock()
	return dst
}

// binStart creates the shard rings and starts one worker per shard. Run
// once, via Server.binOnce, on the first binary handshake — a text-only
// deployment never pays for any of this.
func (s *Server) binStart() {
	n := s.svc.cfg.Shards
	s.binRings = make([]*binRing, n)
	for i := range s.binRings {
		s.binRings[i] = newBinRing(binRingCap)
	}
	for i := 0; i < n; i++ {
		s.wg.Add(1)
		go s.binWorker(i)
	}
}

// binWorker drains one shard's ring until the server closes, then drains
// whatever is left (responses to closed connections are suppressed by the
// write path) and exits.
func (s *Server) binWorker(si int) {
	defer s.wg.Done()
	ring := s.binRings[si]
	batch := make([]*binReq, 0, 64)
	var g binGather
	for {
		batch = ring.popBatch(batch[:0])
		if len(batch) == 0 {
			select {
			case <-ring.wake:
				continue
			case <-s.binStop:
				for _, q := range ring.popBatch(batch[:0]) {
					if b := q.batch; b != nil {
						// Drained BMGET sub-requests shed their keys so the
						// finisher (here or on another draining worker) still
						// retires the batch's single pending slot.
						for _, bk := range q.bk {
							b.sts[bk.idx] = binStShed
						}
						done := len(q.bk)
						q.recycle()
						s.binBatchDone(b, done, nil)
						continue
					}
					q.c.pending.Add(-1)
					q.recycle()
				}
				return
			}
		}
		if h := s.svc.latency; h != nil {
			clk := s.svc.clk
			for _, q := range batch {
				t0 := clk.Now()
				s.binExec(q, &g)
				h.Record(clk.Now().Sub(t0))
			}
		} else {
			for _, q := range batch {
				s.binExec(q, &g)
			}
		}
		s.binGatherFlush(&g)
	}
}

// binOpToOp maps a wire opcode to the fault-injection Op taxonomy.
func binOpToOp(op uint8) Op {
	switch op {
	case binOpGet:
		return OpGet
	case binOpPut:
		return OpPut
	case binOpDel:
		return OpDelete
	case binOpTouch:
		return OpTouch
	case binOpRehome:
		return OpPut
	case binOpBMGet:
		return OpMGet
	}
	return OpGet
}

// binExec runs one request on its shard worker: overload gates first
// (dispatcher drop fault, then the same in-flight reservations the text
// path takes), then the resolved service fast path, then the response.
// Responses route through the worker's gather so the flush happens in the
// end-of-batch scatter pass.
func (s *Server) binExec(q *binReq, g *binGather) {
	if q.batch != nil {
		s.binExecBatch(q, g)
		return
	}
	c, op, id := q.c, q.op, q.id
	svc := s.svc
	if svc.fault.Load() != nil && svc.dropFault(binOpToOp(op), q.t.name) {
		// Dispatcher drop fault: close without replying, matching the text
		// dispatcher. Frames already queued behind this one answer into a
		// dying connection and are suppressed.
		c.abort()
		c.pending.Add(-1)
		q.recycle()
		return
	}
	release, ok := s.beginOpT(q.t)
	if !ok {
		s.binRespondG(c, binStShed, op, id, nil, true, g)
		q.recycle()
		return
	}
	if svc.fault.Load() != nil {
		if err := svc.injectFault(binOpToOp(op), q.t.name); err != nil {
			if release != nil {
				release()
			}
			s.binRespondG(c, binStErr, op, id, []byte(err.Error()), true, g)
			q.recycle()
			return
		}
	}
	var status uint8
	var payload []byte
	switch op {
	case binOpGet:
		val, hit := svc.getAt(q.t, q.addr, q.mixed, q.key)
		if hit {
			status, payload = binStOK, val
		} else {
			status = binStMiss
		}
	case binOpPut:
		ttl := svc.cfg.DefaultTTL
		if q.hasTTL {
			ttl = time.Duration(q.ttlMS) * time.Millisecond
		}
		svc.putAt(q.t, q.addr, q.key, q.val, ttl)
		status = binStOK
	case binOpRehome:
		// A re-homed key keeps exactly the TTL it had on the old owner: the
		// flag carries the remaining TTL, no flag means it never expired —
		// the receiver's DefaultTTL must not re-stamp it.
		var ttl time.Duration
		if q.hasTTL {
			ttl = time.Duration(q.ttlMS) * time.Millisecond
		}
		svc.putAt(q.t, q.addr, q.key, q.val, ttl)
		svc.rehomedIn.Add(1)
		status = binStOK
	case binOpDel:
		if svc.deleteAt(q.t, q.addr, q.key) {
			status = binStOK
		} else {
			status = binStMiss
		}
	case binOpTouch:
		if svc.touchAt(q.t, q.addr, q.key, time.Duration(q.ttlMS)*time.Millisecond) {
			status = binStOK
		} else {
			status = binStMiss
		}
	}
	if release != nil {
		release()
	}
	s.binRespondG(c, status, op, id, payload, true, g)
	q.recycle()
}

// binExecBatch runs one shard's slice of a BMGET: the same overload gates
// as a single request (one reservation covers the whole sub-batch, like
// the text MGET's single command reservation), then the resolved GET fast
// path per key, writing results into the shared batch at this sub-request's
// key positions. Whoever retires the last key emits the coalesced frame.
func (s *Server) binExecBatch(q *binReq, g *binGather) {
	b := q.batch
	svc := s.svc
	n := len(q.bk)
	if svc.fault.Load() != nil && svc.dropFault(OpMGet, q.t.name) {
		q.c.abort()
		// The connection is dying; retire our keys so the batch's pending
		// slot drains (the suppressed response is written to nobody).
		q.recycle()
		s.binBatchDone(b, n, g)
		return
	}
	release, ok := s.beginOpT(q.t)
	if !ok {
		for _, bk := range q.bk {
			b.sts[bk.idx] = binStShed
		}
		q.recycle()
		s.binBatchDone(b, n, g)
		return
	}
	if svc.fault.Load() != nil {
		if err := svc.injectFault(OpMGet, q.t.name); err != nil {
			if release != nil {
				release()
			}
			msg := err.Error()
			b.err.CompareAndSwap(nil, &msg)
			q.recycle()
			s.binBatchDone(b, n, g)
			return
		}
	}
	for _, bk := range q.bk {
		key := q.kbuf[bk.off : bk.off+bk.ln]
		// getAt returns the stored slice without copying; entries are
		// immutable snapshots, so retaining them until encode is safe.
		if val, hit := svc.getAt(q.t, bk.addr, bk.mixed, key); hit {
			b.sts[bk.idx] = binStOK
			b.vals[bk.idx] = val
		} else {
			b.sts[bk.idx] = binStMiss
		}
	}
	if release != nil {
		release()
	}
	q.recycle()
	s.binBatchDone(b, n, g)
}

// binBatchDone retires n keys of a BMGET batch. The finisher — whoever
// brings remain to zero, a shard worker or a transport-thread shed path —
// encodes and emits the batch's single response frame, which releases the
// connection's one pending slot for the whole BMGET.
func (s *Server) binBatchDone(b *binBatch, n int, g *binGather) {
	if b.remain.Add(-int32(n)) != 0 {
		return
	}
	if msg := b.err.Load(); msg != nil {
		s.binRespondG(b.c, binStErr, binOpBMGet, b.id, []byte(*msg), true, g)
		return
	}
	sz := 2 + 5*len(b.sts)
	for i, st := range b.sts {
		if st == binStOK {
			sz += len(b.vals[i])
		}
	}
	p := make([]byte, 0, sz)
	var u2 [2]byte
	binLE.PutUint16(u2[:], uint16(len(b.sts)))
	p = append(p, u2[:]...)
	var u4 [4]byte
	for i, st := range b.sts {
		v := b.vals[i]
		if st != binStOK {
			v = nil
		}
		p = append(p, st)
		binLE.PutUint32(u4[:], uint32(len(v)))
		p = append(p, u4[:]...)
		p = append(p, v...)
	}
	s.binRespondG(b.c, binStOK, binOpBMGet, b.id, p, true, g)
}
