package service

import (
	"fmt"
	"sync/atomic"
)

// Tenant is one principal of the cache: a name bound to a partition slot,
// with lifetime request counters. Counters are atomics so the request path
// never takes the registry lock for accounting.
type Tenant struct {
	name string
	part int

	gets, puts   atomic.Uint64
	hits, misses atomic.Uint64
	forced       atomic.Uint64 // forced managed evictions caused by this tenant's fills
}

// Name returns the tenant name.
func (t *Tenant) Name() string { return t.name }

// Partition returns the Vantage partition slot the tenant maps to.
func (t *Tenant) Partition() int { return t.part }

// validTenantName reports whether name is usable in the text protocol and
// in Prometheus label values: printable ASCII, no spaces, quotes, or
// backslashes.
func validTenantName(name string) bool {
	if name == "" || len(name) > 64 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c <= ' ' || c > '~' || c == '"' || c == '\\' {
			return false
		}
	}
	return true
}

// AddTenant registers name, assigning it a free partition slot in every
// shard, and triggers a repartitioning so the new tenant gets capacity
// before its first UCP interval. Adding an existing tenant is idempotent
// and returns its current slot.
func (s *Service) AddTenant(name string) (int, error) {
	if !validTenantName(name) {
		return 0, fmt.Errorf("service: invalid tenant name %q", name)
	}
	s.mu.Lock()
	if t, ok := s.tenants[name]; ok {
		s.mu.Unlock()
		return t.part, nil
	}
	part := -1
	for p, t := range s.byPart {
		if t == nil {
			part = p
			break
		}
	}
	if part < 0 {
		s.mu.Unlock()
		return 0, fmt.Errorf("service: tenant limit %d reached", s.cfg.MaxTenants)
	}
	t := &Tenant{name: name, part: part}
	s.tenants[name] = t
	s.byPart[part] = t
	s.mu.Unlock()
	s.Repartition()
	return part, nil
}

// RemoveTenant deletes name: its partition target drops to zero in every
// shard (the §3.4 deletion idiom — the partition's lines drain into the
// unmanaged region and age out), its stored values are purged, and its
// UMON slots are reset for the next occupant.
func (s *Service) RemoveTenant(name string) error {
	s.mu.Lock()
	t, ok := s.tenants[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("service: unknown tenant %q", name)
	}
	delete(s.tenants, name)
	s.byPart[t.part] = nil
	s.mu.Unlock()

	space := uint64(t.part+1) << 40
	for _, sh := range s.shards {
		sh.mu.Lock()
		for addr := range sh.store {
			if addr&^(1<<40-1) == space {
				delete(sh.store, addr)
			}
		}
		sh.alloc.Monitor(t.part).Reset()
		sh.mu.Unlock()
	}
	s.Repartition()
	return nil
}

// TenantNames returns the registered tenant names (unordered).
func (s *Service) TenantNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.tenants))
	for name := range s.tenants {
		names = append(names, name)
	}
	return names
}

// tenant resolves a name to its Tenant.
func (s *Service) tenant(name string) (*Tenant, error) {
	s.mu.RLock()
	t, ok := s.tenants[name]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("service: unknown tenant %q", name)
	}
	return t, nil
}
