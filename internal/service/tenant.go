package service

import (
	"fmt"
	"sync/atomic"
)

// Tenant is one principal of the cache: a name bound to a partition slot,
// with lifetime request counters. Counters are atomics so the request path
// never takes a lock for accounting.
type Tenant struct {
	name string
	part int

	gets, puts   atomic.Uint64
	hits, misses atomic.Uint64
	expired      atomic.Uint64 // reads/touches that found an expired entry
	forced       atomic.Uint64 // forced managed evictions caused by this tenant's fills

	// inflight is the number of protocol data ops currently executing for
	// this tenant; shed counts ops refused because inflight was at the
	// per-tenant limit. Both belong to the serving layer (see protocol.go)
	// but live here so the limit is enforced across every connection.
	inflight atomic.Int64
	shed     atomic.Uint64

	// announced, when non-nil, is closed once the origin add's cluster
	// broadcast has reached every peer. An idempotent re-add waits on it
	// before returning OK, so no caller can observe a registered tenant
	// that its peers do not know about yet (two clients racing TENANT ADD
	// through a proxy would otherwise let the loser's next request reach a
	// peer ahead of the winner's broadcast). nil means nothing to wait for:
	// solo mode, or a replica-path add.
	announced chan struct{}
}

// Name returns the tenant name.
func (t *Tenant) Name() string { return t.name }

// Partition returns the Vantage partition slot the tenant maps to.
func (t *Tenant) Partition() int { return t.part }

// validTenantName reports whether name is usable in the text protocol and
// in Prometheus label values: printable ASCII, no spaces, quotes, or
// backslashes.
func validTenantName(name string) bool {
	if name == "" || len(name) > 64 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c <= ' ' || c > '~' || c == '"' || c == '\\' {
			return false
		}
	}
	return true
}

// cloneRegistry returns a mutable deep copy of reg's containers (the
// *Tenant values are shared; they are never mutated, only replaced).
func cloneRegistry(reg *registry) *registry {
	next := &registry{
		tenants: make(map[string]*Tenant, len(reg.tenants)+1),
		byPart:  make([]*Tenant, len(reg.byPart)),
	}
	for name, t := range reg.tenants {
		next.tenants[name] = t
	}
	copy(next.byPart, reg.byPart)
	return next
}

// AddTenant registers name, assigning it a free partition slot in every
// shard, and triggers a repartitioning so the new tenant gets capacity
// before its first UCP interval. Adding an existing tenant is idempotent
// and returns its current slot. Slots belonging to tenants whose removal
// is still purging are not eligible (see RemoveTenant).
//
// AddTenant is an origin operation: when a cluster handler is installed,
// a non-idempotent add bumps the registry version and is announced to
// every peer before returning, so a follow-up request routed to any node
// finds the tenant registered.
func (s *Service) AddTenant(name string) (int, error) {
	return s.addTenantInner(name, true)
}

// addTenantInner is AddTenant minus the cluster announcement when origin
// is false — the replica path for ops received from peers, which must not
// re-broadcast.
func (s *Service) addTenantInner(name string, origin bool) (int, error) {
	if !validTenantName(name) {
		return 0, fmt.Errorf("service: invalid tenant name %q", name)
	}
	s.regMu.Lock()
	reg := s.reg.Load()
	if t, ok := reg.tenants[name]; ok {
		s.regMu.Unlock()
		if t.announced != nil {
			// Another caller is still broadcasting this add to the peers;
			// don't return OK until every node knows the tenant.
			<-t.announced
		}
		return t.part, nil
	}
	part := -1
	for p, t := range reg.byPart {
		if t == nil {
			part = p
			break
		}
	}
	if part < 0 {
		s.regMu.Unlock()
		return 0, fmt.Errorf("service: tenant limit %d reached", s.cfg.MaxTenants)
	}
	t := &Tenant{name: name, part: part}
	h := s.clusterHandler()
	if origin && h != nil {
		t.announced = make(chan struct{})
	}
	next := cloneRegistry(reg)
	next.tenants[name] = t
	next.byPart[part] = t
	s.reg.Store(next)
	s.regMu.Unlock()
	s.Repartition()
	if t.announced != nil {
		h.AnnounceAdd(s.clusterVersion.Add(1), name)
		close(t.announced)
	}
	return part, nil
}

// RemoveTenant deletes name: its partition target drops to zero in every
// shard (the §3.4 deletion idiom — the partition's lines drain into the
// unmanaged region and age out), its stored values are purged, and its
// UMON slots are reset for the next occupant.
//
// The partition slot stays reserved (byPart non-nil) until the purge and
// monitor reset complete; only then is it released for reuse. A concurrent
// AddTenant therefore can never claim a slot whose previous occupant's
// values are still being purged — the purge would silently delete the new
// tenant's fresh data and wipe its monitor.
//
// Like AddTenant, RemoveTenant is an origin operation: with a cluster
// handler installed, a successful removal bumps the registry version and
// is announced to every peer.
func (s *Service) RemoveTenant(name string) error {
	return s.removeTenantInner(name, true)
}

// removeTenantInner is RemoveTenant minus the cluster announcement when
// origin is false (the replica path).
func (s *Service) removeTenantInner(name string, origin bool) error {
	s.regMu.Lock()
	reg := s.reg.Load()
	t, ok := reg.tenants[name]
	if !ok {
		s.regMu.Unlock()
		return fmt.Errorf("service: unknown tenant %q", name)
	}
	// Phase 1: unregister the name so new requests fail, but keep the slot
	// reserved while cleanup runs.
	next := cloneRegistry(reg)
	delete(next.tenants, name)
	s.reg.Store(next)
	s.regMu.Unlock()

	if h := s.removePurgeHook; h != nil {
		h()
	}

	space := uint64(t.part+1) << 40
	for _, sh := range s.shards {
		// Flush pending monitor samples into the outgoing tenant's UMON
		// before resetting it, so none leak into the slot's next occupant.
		sh.umu.Lock()
		sh.drainLocked()
		sh.alloc.Monitor(t.part).Reset()
		sh.umu.Unlock()
		sh.mu.Lock()
		for addr := range sh.store {
			if addr&^(1<<40-1) == space {
				delete(sh.store, addr)
			}
		}
		sh.mu.Unlock()
	}

	// Phase 2: cleanup done — release the slot for reuse.
	s.regMu.Lock()
	next = cloneRegistry(s.reg.Load())
	next.byPart[t.part] = nil
	s.reg.Store(next)
	s.regMu.Unlock()
	s.Repartition()
	if origin {
		if h := s.clusterHandler(); h != nil {
			h.AnnounceRemove(s.clusterVersion.Add(1), name)
		}
	}
	return nil
}

// TenantNames returns the registered tenant names (unordered).
func (s *Service) TenantNames() []string {
	reg := s.reg.Load()
	names := make([]string, 0, len(reg.tenants))
	for name := range reg.tenants {
		names = append(names, name)
	}
	return names
}

// tenant resolves a name to its Tenant.
func (s *Service) tenant(name string) (*Tenant, error) {
	if t := s.reg.Load().tenants[name]; t != nil {
		return t, nil
	}
	return nil, fmt.Errorf("service: unknown tenant %q", name)
}
