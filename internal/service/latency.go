package service

import (
	"time"

	"vantage/internal/latency"
)

// The request-latency histogram lives in internal/latency so the cluster
// proxy can record its own forwarding latency in the same bucket layout
// (service's in-package tests import loadgen, which imports cluster, so
// cluster cannot import service back).
type latencyHist = latency.Hist

func newLatencyHist() *latencyHist { return &latency.Hist{} }

func latencyBucketUpperNS(i int) uint64 { return latency.BucketUpperNS(i) }

// LatencyQuantile estimates quantile q (0..1) from the Stats snapshot's
// histogram, returning the upper bound of the bucket containing the q-th
// observation — a conservative (over-)estimate, which is the right
// direction for asserting p99 bounds. Returns 0 when the histogram is
// disabled or empty.
func (st Stats) LatencyQuantile(q float64) time.Duration {
	return latency.Quantile(st.LatencyCounts, q)
}
