// The expiry sweeper: a per-shard background pass, paced by the injected
// clock, that reclaims expired entries before any read observes them. Lazy
// expiry alone would leave a mass-expired working set occupying its
// partition until (or unless) every key is re-read; the sweeper bounds that
// window, and by reporting each reclaimed line to the Vantage controller as
// an expiry demotion it shrinks the partition's measured occupancy at sweep
// speed — so the next UCP repartition allocates against live data, not dead
// entries.
//
// Each TTL'd write pushes an (expiry deadline, address) hint onto its
// shard's min-heap. Hints are not invalidated on overwrite, delete, or
// touch; the entry's own exp field is authoritative and a stale hint is
// discarded when popped. A pass pops at most SweepBatch hints per shard per
// interval (degrade-don't-collapse: a mass expiry lengthens sweep latency
// instead of monopolizing the shard lock), so N expired entries are fully
// reclaimed within ceil(N/SweepBatch) passes plus one pass per stale hint
// batch.

package service

// expHint schedules one expiry check: the line address and the deadline the
// entry carried when the hint was pushed (Unix nanoseconds).
type expHint struct {
	at   int64
	addr uint64
}

// expHeap is a binary min-heap of expiry hints ordered by deadline.
type expHeap []expHint

func (h *expHeap) push(n expHint) {
	*h = append(*h, n)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q[parent].at <= q[i].at {
			break
		}
		q[parent], q[i] = q[i], q[parent]
		i = parent
	}
}

func (h *expHeap) pop() expHint {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	*h = q[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && q[l].at < q[min].at {
			min = l
		}
		if r < n && q[r].at < q[min].at {
			min = r
		}
		if min == i {
			break
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
	return top
}

// sweepShard runs one bounded sweep pass on sh, returning the number of
// expired entries reclaimed. Each reclaimed line is deleted from the store
// and demoted in the controller as an expiry demotion.
func (s *Service) sweepShard(sh *shard) int {
	now := s.clk.Now().UnixNano()
	batch := s.cfg.SweepBatch
	reclaimed := 0
	sh.mu.Lock()
	for pops := 0; pops < batch && len(sh.exph) > 0 && sh.exph[0].at <= now; pops++ {
		h := sh.exph.pop()
		e, ok := sh.store[h.addr]
		if !ok || e.exp == 0 || e.exp > now {
			continue // stale hint: entry deleted, overwritten, or touched later
		}
		delete(sh.store, h.addr)
		sh.ctl.DemoteExpired(h.addr)
		reclaimed++
	}
	sh.sweepLines += uint64(reclaimed)
	sh.sweepPasses++
	sh.mu.Unlock()
	return reclaimed
}

// SweepOnce runs one bounded sweep pass on every shard and returns the total
// number of expired entries reclaimed. Exposed so tests (and deployments
// with SweepInterval 0) can drive sweeping explicitly; safe to call
// concurrently with requests and with the background sweeper.
func (s *Service) SweepOnce() int {
	total := 0
	for _, sh := range s.shards {
		total += s.sweepShard(sh)
	}
	return total
}

// sweepLoop is one shard's background sweeper, paced by the injected clock.
func (s *Service) sweepLoop(sh *shard) {
	defer s.wg.Done()
	tick := s.clk.NewTicker(s.cfg.SweepInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-tick.C():
			s.sweepShard(sh)
		}
	}
}
