// The expiry sweeper: a per-shard background pass, paced by the injected
// clock, that reclaims expired entries before any read observes them. Lazy
// expiry alone would leave a mass-expired working set occupying its
// partition until (or unless) every key is re-read; the sweeper bounds that
// window, and by reporting each reclaimed line to the Vantage controller as
// an expiry demotion it shrinks the partition's measured occupancy at sweep
// speed — so the next UCP repartition allocates against live data, not dead
// entries.
//
// Each TTL'd write pushes an (expiry deadline, address) hint onto its
// shard's min-heap. Hints are not invalidated on overwrite, delete, or
// touch; the entry's own exp field is authoritative and a stale hint is
// discarded when popped. A pass pops at most SweepBatch hints per shard per
// interval (degrade-don't-collapse: a mass expiry lengthens sweep latency
// instead of monopolizing the shard lock), so N expired entries are fully
// reclaimed within ceil(N/SweepBatch) passes plus one pass per stale hint
// batch.
//
// Lazy discarding alone does not bound the heap: stale hints survive until
// their old deadlines pop, so a hot key overwritten (or TOUCHed) with long
// TTLs accumulates one live hint plus arbitrarily many stale ones. pushHint
// therefore compacts the heap whenever it exceeds twice the store size
// (plus slack): compaction keeps exactly one hint per live TTL'd entry —
// the one matching the entry's current deadline — so the heap is always
// O(live entries) and a push is amortized O(log n). The heap size is
// exported as the exp_heap_entries gauge.

package service

// expHint schedules one expiry check: the line address and the deadline the
// entry carried when the hint was pushed (Unix nanoseconds).
type expHint struct {
	at   int64
	addr uint64
}

// expHeap is a binary min-heap of expiry hints ordered by deadline.
type expHeap []expHint

func (h *expHeap) push(n expHint) {
	*h = append(*h, n)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q[parent].at <= q[i].at {
			break
		}
		q[parent], q[i] = q[i], q[parent]
		i = parent
	}
}

// init restores the heap invariant over arbitrary contents (Floyd's
// bottom-up heapify, O(n)); used after compaction rewrites the slice.
func (h *expHeap) init() {
	q := *h
	for i := len(q)/2 - 1; i >= 0; i-- {
		siftDown(q, i, len(q))
	}
}

// siftDown restores the heap property at index i over q[:n].
func siftDown(q []expHint, i, n int) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && q[l].at < q[min].at {
			min = l
		}
		if r < n && q[r].at < q[min].at {
			min = r
		}
		if min == i {
			return
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
}

func (h *expHeap) pop() expHint {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	*h = q[:n]
	siftDown(q, 0, n)
	return top
}

// pushHint records an expiry hint and compacts the heap when stale hints
// dominate. The bound is an invariant, not a heuristic: compaction keeps at
// most one hint per live store entry, so immediately after it the heap is
// ≤ len(store), and the trigger therefore fires at most once per ~len(store)
// pushes — amortized O(1) slice work per push on top of the O(log n) sift.
// Caller holds sh.mu.
func (sh *shard) pushHint(n expHint) {
	sh.exph.push(n)
	if len(sh.exph) > 2*len(sh.store)+64 {
		sh.compactHints()
	}
}

// compactHints drops every hint that no longer matches a live entry's
// current deadline, dedupes hints for the same address (a key re-PUT with
// an identical absolute deadline pushes identical hints), and re-heapifies.
// Correctness rests on the push-site invariant that every assignment of a
// non-zero entry.exp pushed a hint with at == exp: the surviving hint for a
// live entry is exactly the one the sweeper needs. Caller holds sh.mu.
func (sh *shard) compactHints() {
	q := sh.exph
	seen := make(map[uint64]struct{}, len(q)/2)
	kept := q[:0]
	for _, n := range q {
		e, ok := sh.store[n.addr]
		if !ok || e.exp == 0 || e.exp != n.at {
			continue // stale: entry deleted, overwritten, or touched elsewhere
		}
		if _, dup := seen[n.addr]; dup {
			continue
		}
		seen[n.addr] = struct{}{}
		kept = append(kept, n)
	}
	sh.exph = kept
	sh.exph.init()
}

// sweepShard runs one bounded sweep pass on sh, returning the number of
// expired entries reclaimed. Each reclaimed line is deleted from the store
// and demoted in the controller as an expiry demotion.
func (s *Service) sweepShard(sh *shard) int {
	now := s.clk.Now().UnixNano()
	batch := s.cfg.SweepBatch
	reclaimed := 0
	sh.mu.Lock()
	for pops := 0; pops < batch && len(sh.exph) > 0 && sh.exph[0].at <= now; pops++ {
		h := sh.exph.pop()
		e, ok := sh.store[h.addr]
		if !ok || e.exp == 0 || e.exp > now {
			continue // stale hint: entry deleted, overwritten, or touched later
		}
		delete(sh.store, h.addr)
		sh.ctl.DemoteExpired(h.addr)
		reclaimed++
	}
	sh.sweepLines += uint64(reclaimed)
	sh.sweepPasses++
	sh.mu.Unlock()
	return reclaimed
}

// SweepOnce runs one bounded sweep pass on every shard and returns the total
// number of expired entries reclaimed. Exposed so tests (and deployments
// with SweepInterval 0) can drive sweeping explicitly; safe to call
// concurrently with requests and with the background sweeper.
func (s *Service) SweepOnce() int {
	total := 0
	for _, sh := range s.shards {
		total += s.sweepShard(sh)
	}
	return total
}

// sweepLoop is one shard's background sweeper, paced by the injected clock.
func (s *Service) sweepLoop(sh *shard) {
	defer s.wg.Done()
	tick := s.clk.NewTicker(s.cfg.SweepInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-tick.C():
			s.sweepShard(sh)
		}
	}
}
