// Package part implements the partitioning-scheme baselines the paper
// compares Vantage against: way-partitioning (column caching) and PIPP
// (promotion/insertion pseudo-partitioning). Both operate on set-associative
// arrays, as in the paper's evaluation.
package part

import (
	"fmt"

	"vantage/internal/cache"
	"vantage/internal/ctrl"
	"vantage/internal/hash"
	"vantage/internal/repl"
)

// WayPartition implements way-partitioning [3, 19]: each partition owns a
// subset of the ways, fills from a partition are restricted to its ways, and
// LRU ranks lines within them. Allocations are rounded to whole ways (every
// partition keeps at least one way), which is exactly the coarseness and
// associativity loss the paper criticizes: a partition with w ways has
// associativity w.
type WayPartition struct {
	arr    *cache.SetAssoc
	lines  []cache.Line // arr's backing line store
	pol    *repl.LRUTimestamp
	parts  int
	wayOf  []int16 // way index -> owning partition
	ways   []int   // partition -> way count
	partOf []int16 // line -> inserting partition (for Size reporting)
	sizes  []int
	// victim scratch: candidate ways owned by the inserting partition
	own []cache.LineID
	// live counts valid lines; nothing under this controller invalidates a
	// line, so once live reaches NumLines the per-miss free-slot test is
	// skipped (no set can have an invalid way when the array is full).
	live int
}

// NewWayPartition returns a way-partitioning controller over arr with parts
// partitions. arr must have at least parts ways. Ways start evenly divided.
func NewWayPartition(arr *cache.SetAssoc, parts int) *WayPartition {
	if parts <= 0 || parts > arr.Ways() {
		panic(fmt.Sprintf("part: %d partitions need at least as many ways (have %d)", parts, arr.Ways()))
	}
	w := &WayPartition{
		arr:    arr,
		lines:  arr.Lines(),
		pol:    repl.NewLRUTimestamp(arr.NumLines()),
		parts:  parts,
		wayOf:  make([]int16, arr.Ways()),
		ways:   make([]int, parts),
		partOf: make([]int16, arr.NumLines()),
		sizes:  make([]int, parts),
	}
	for i := range w.partOf {
		w.partOf[i] = -1
	}
	targets := make([]int, parts)
	per := arr.NumLines() / parts
	for i := range targets {
		targets[i] = per
	}
	w.SetTargets(targets)
	return w
}

// Name implements ctrl.Controller.
func (w *WayPartition) Name() string { return "WayPart" }

// Array implements ctrl.Controller.
func (w *WayPartition) Array() cache.Array { return w.arr }

// NumPartitions implements ctrl.Controller.
func (w *WayPartition) NumPartitions() int { return w.parts }

// Size implements ctrl.Controller.
func (w *WayPartition) Size(part int) int { return w.sizes[part] }

// WaysOf returns the number of ways partition part currently owns.
func (w *WayPartition) WaysOf(part int) int { return w.ways[part] }

// SetTargets implements ctrl.Controller: line allocations are rounded to
// whole ways by largest remainder, with a minimum of one way per partition.
func (w *WayPartition) SetTargets(targets []int) {
	if len(targets) != w.parts {
		panic("part: target count mismatch")
	}
	ways := ApportionWays(targets, w.arr.Ways())
	copy(w.ways, ways)
	// Assign contiguous way ranges in partition order.
	way := 0
	for p, n := range ways {
		for k := 0; k < n; k++ {
			w.wayOf[way] = int16(p)
			way++
		}
	}
}

// Access implements ctrl.Controller.
func (w *WayPartition) Access(addr uint64, part int) ctrl.AccessResult {
	return w.AccessMixed(addr, hash.Mix64(addr), part)
}

// AccessMixed implements ctrl.MixedController: the set-associative array is
// probed, walked, and installed into with one precomputed Mix64.
func (w *WayPartition) AccessMixed(addr, mixed uint64, part int) ctrl.AccessResult {
	if id, ok := w.arr.LookupMixed(addr, mixed); ok {
		w.pol.OnHit(id, part)
		return ctrl.AccessResult{Hit: true}
	}
	// Walk the set directly — the candidates of a set-associative array are
	// exactly its ways in way order, so the way index is the loop counter and
	// the set hash is computed once. Restrict to the partition's ways; prefer
	// an invalid slot among them.
	ways := w.arr.Ways()
	base := w.arr.SetIndexMixed(addr, mixed) * ways
	w.own = w.own[:0]
	victim := cache.InvalidLine
	if w.live < len(w.lines) {
		for wi := 0; wi < ways; wi++ {
			if int(w.wayOf[wi]) != part {
				continue
			}
			id := cache.LineID(base + wi)
			if !w.lines[id].Valid {
				victim = id
				break
			}
			w.own = append(w.own, id)
		}
		if victim != cache.InvalidLine {
			w.live++ // the install below fills this free slot
		}
	} else {
		for wi := 0; wi < ways; wi++ {
			if int(w.wayOf[wi]) == part {
				w.own = append(w.own, cache.LineID(base+wi))
			}
		}
	}
	if victim == cache.InvalidLine {
		if len(w.own) == 0 {
			// The partition's way assignment can transiently leave it with
			// zero ways only if parts > ways, which the constructor forbids;
			// this is unreachable but kept defensive.
			w.own = w.own[:0]
			for wi := 0; wi < ways; wi++ {
				w.own = append(w.own, cache.LineID(base+wi))
			}
			victim = w.pol.Victim(w.own)
		} else {
			victim = w.pol.Victim(w.own)
		}
	}
	var res ctrl.AccessResult
	if line := w.arr.Line(victim); line.Valid {
		res.EvictedValid = true
		res.Evicted = line.Addr
		w.pol.OnEvict(victim)
		if old := w.partOf[victim]; old >= 0 {
			w.sizes[old]--
		}
	}
	id, _ := w.arr.InstallMixed(addr, mixed, victim)
	w.pol.OnInsert(id, addr, part)
	w.partOf[id] = int16(part)
	w.sizes[part]++
	return res
}

// ApportionWays converts line-granularity targets into whole-way counts by
// largest remainder, guaranteeing each partition at least one way. It is
// exported because UCP's Lookahead output and the experiment harness both
// need the same rounding.
func ApportionWays(targets []int, totalWays int) []int {
	p := len(targets)
	ways := make([]int, p)
	total := 0
	for _, t := range targets {
		total += t
	}
	if total == 0 {
		// Degenerate: split evenly.
		for i := range ways {
			ways[i] = 1
		}
		total = 1
	}
	// Give everyone their floor share (min 1), then distribute the rest by
	// remainder.
	type rem struct {
		part int
		frac float64
	}
	rems := make([]rem, 0, p)
	assigned := 0
	for i, t := range targets {
		exact := float64(t) / float64(total) * float64(totalWays)
		fl := int(exact)
		if fl < 1 {
			fl = 1
		}
		ways[i] = fl
		assigned += fl
		rems = append(rems, rem{i, exact - float64(fl)})
	}
	// Fix up to exactly totalWays: take from the largest or give to the
	// highest remainder.
	for assigned > totalWays {
		// Remove a way from the largest allocation > 1.
		big, bigWays := -1, 1
		for i, n := range ways {
			if n > bigWays {
				big, bigWays = i, n
			}
		}
		if big < 0 {
			break // cannot shrink below 1 way each
		}
		ways[big]--
		assigned--
	}
	for assigned < totalWays {
		best, bestFrac := 0, -2.0
		for _, r := range rems {
			if r.frac > bestFrac {
				best, bestFrac = r.part, r.frac
			}
		}
		ways[best]++
		assigned++
		for i := range rems {
			if rems[i].part == best {
				rems[i].frac -= 1
			}
		}
	}
	return ways
}

var _ ctrl.Controller = (*WayPartition)(nil)
var _ ctrl.MixedController = (*WayPartition)(nil)
