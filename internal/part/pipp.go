package part

import (
	"fmt"

	"vantage/internal/cache"
	"vantage/internal/ctrl"
	"vantage/internal/hash"
)

// PIPP default parameters, as used in the paper's evaluation (§5):
// promotion probability 3/4, streaming promotion probability 1/128,
// streaming detection threshold 12.5%, one way per streaming application.
const (
	PIPPPromProb    = 0.75
	PIPPStreamProb  = 1.0 / 128
	PIPPStreamTheta = 0.125
)

// PIPP implements promotion/insertion pseudo-partitioning (Xie & Loh, ISCA
// 2009) on a set-associative array: each set keeps a priority chain; a
// partition with allocation π inserts new lines at priority π (counted from
// the LRU end), lines promote one position per hit with probability
// PIPPPromProb, and the victim is always the line at the LRU end of the
// chain. Streaming applications (miss ratio above PIPPStreamTheta between
// repartitions) are given a single way of insertion depth and promote with
// probability PIPPStreamProb, limiting their pollution.
//
// PIPP only approximates its allocations — the paper's Fig 8c shows its
// actual sizes swinging around the targets — and with many partitions its
// insertion positions collapse towards the LRU end (§6.1, Fig 7).
type PIPP struct {
	arr   *cache.SetAssoc
	parts int
	// chain[set*ways+k] is the line at priority k (0 = LRU) of the set.
	chain    []cache.LineID
	pos      []int16 // line -> its priority position
	insertAt []int   // partition -> insertion priority (π, in ways)
	partOf   []int16
	sizes    []int
	rng      *hash.Rand
	lines    []cache.Line // arr's backing line store
	// Streaming detection state.
	accesses, missesCnt []uint64
	streaming           []bool
	// live counts valid lines; nothing under this controller invalidates a
	// line, so once live reaches NumLines the per-miss free-slot scan is
	// skipped (no set can have an invalid way when the array is full).
	live int
}

// NewPIPP returns a PIPP controller over arr with parts partitions.
func NewPIPP(arr *cache.SetAssoc, parts int, seed uint64) *PIPP {
	if parts <= 0 || parts > arr.Ways() {
		panic(fmt.Sprintf("part: PIPP with %d partitions needs at least as many ways (have %d)", parts, arr.Ways()))
	}
	p := &PIPP{
		arr:       arr,
		lines:     arr.Lines(),
		parts:     parts,
		chain:     make([]cache.LineID, arr.NumLines()),
		pos:       make([]int16, arr.NumLines()),
		insertAt:  make([]int, parts),
		partOf:    make([]int16, arr.NumLines()),
		sizes:     make([]int, parts),
		rng:       hash.NewRand(seed ^ 0x9199),
		accesses:  make([]uint64, parts),
		missesCnt: make([]uint64, parts),
		streaming: make([]bool, parts),
	}
	// Initialize each set's chain to way order.
	ways := arr.Ways()
	for s := 0; s < arr.Sets(); s++ {
		for k := 0; k < ways; k++ {
			id := arr.SlotAt(s, k)
			p.chain[s*ways+k] = id
			p.pos[id] = int16(k)
		}
	}
	for i := range p.partOf {
		p.partOf[i] = -1
	}
	targets := make([]int, parts)
	per := arr.NumLines() / parts
	for i := range targets {
		targets[i] = per
	}
	p.SetTargets(targets)
	return p
}

// Name implements ctrl.Controller.
func (p *PIPP) Name() string { return "PIPP" }

// Array implements ctrl.Controller.
func (p *PIPP) Array() cache.Array { return p.arr }

// NumPartitions implements ctrl.Controller.
func (p *PIPP) NumPartitions() int { return p.parts }

// Size implements ctrl.Controller.
func (p *PIPP) Size(part int) int { return p.sizes[part] }

// InsertPosition returns partition part's current insertion priority.
func (p *PIPP) InsertPosition(part int) int { return p.insertAt[part] }

// Streaming reports whether part was classified as streaming at the last
// SetTargets call.
func (p *PIPP) Streaming(part int) bool { return p.streaming[part] }

// SetTargets implements ctrl.Controller. Targets in lines are converted to
// way allocations; the allocation becomes the insertion position. Streaming
// classification is refreshed from the access/miss counts accumulated since
// the previous call.
func (p *PIPP) SetTargets(targets []int) {
	if len(targets) != p.parts {
		panic("part: target count mismatch")
	}
	// Refresh streaming classification.
	for i := 0; i < p.parts; i++ {
		if p.accesses[i] >= 64 { // require a minimal sample
			ratio := float64(p.missesCnt[i]) / float64(p.accesses[i])
			p.streaming[i] = ratio >= PIPPStreamTheta
		}
		p.accesses[i], p.missesCnt[i] = 0, 0
	}
	ways := ApportionWays(targets, p.arr.Ways())
	for i, wv := range ways {
		if p.streaming[i] {
			p.insertAt[i] = 1 // one way of depth, pstream promotion
		} else {
			p.insertAt[i] = wv
		}
	}
}

// promProb returns the hit-promotion probability for partition part.
func (p *PIPP) promProb(part int) float64 {
	if p.streaming[part] {
		return PIPPStreamProb
	}
	return PIPPPromProb
}

// Access implements ctrl.Controller.
func (p *PIPP) Access(addr uint64, part int) ctrl.AccessResult {
	return p.AccessMixed(addr, hash.Mix64(addr), part)
}

// AccessMixed implements ctrl.MixedController: the set index, the candidate
// scan, and the install share one precomputed Mix64.
func (p *PIPP) AccessMixed(addr, mixed uint64, part int) ctrl.AccessResult {
	p.accesses[part]++
	ways := p.arr.Ways()
	if id, ok := p.arr.LookupMixed(addr, mixed); ok {
		// Promote one position with the partition's probability.
		if int(p.pos[id]) < ways-1 && p.rng.Float64() < p.promProb(part) {
			p.swapUp(id)
		}
		return ctrl.AccessResult{Hit: true}
	}
	p.missesCnt[part]++
	set := p.arr.SetIndexMixed(addr, mixed)
	base := set * ways
	// Victim: prefer an invalid line; otherwise the LRU end of the chain.
	// The candidates of a set-associative array are exactly its ways in way
	// order, so the set is walked directly instead of materializing them.
	victim := cache.InvalidLine
	if p.live < len(p.lines) {
		for w := 0; w < ways; w++ {
			if !p.lines[base+w].Valid {
				victim = cache.LineID(base + w)
				break
			}
		}
		if victim != cache.InvalidLine {
			p.live++ // the install below fills this free slot
		}
	}
	if victim == cache.InvalidLine {
		victim = p.chain[base]
	}
	var res ctrl.AccessResult
	if line := p.arr.Line(victim); line.Valid {
		res.EvictedValid = true
		res.Evicted = line.Addr
		if old := p.partOf[victim]; old >= 0 {
			p.sizes[old]--
		}
	}
	id, _ := p.arr.InstallMixed(addr, mixed, victim)
	p.partOf[id] = int16(part)
	p.sizes[part]++
	// Place the new line at the partition's insertion priority: move it to
	// position insertAt-1 (clamped), shifting the lines in between down.
	p.placeAt(id, clamp(p.insertAt[part]-1, 0, ways-1))
	return res
}

// swapUp exchanges line id with the line one priority above it.
func (p *PIPP) swapUp(id cache.LineID) {
	set := p.arr.SetOf(id)
	ways := p.arr.Ways()
	base := set * ways
	k := int(p.pos[id])
	other := p.chain[base+k+1]
	p.chain[base+k], p.chain[base+k+1] = other, id
	p.pos[other], p.pos[id] = int16(k), int16(k+1)
}

// placeAt moves line id to priority target within its set's chain, shifting
// the displaced lines towards id's old position.
func (p *PIPP) placeAt(id cache.LineID, target int) {
	set := p.arr.SetOf(id)
	ways := p.arr.Ways()
	base := set * ways
	cur := int(p.pos[id])
	switch {
	case cur < target:
		for k := cur; k < target; k++ {
			next := p.chain[base+k+1]
			p.chain[base+k] = next
			p.pos[next] = int16(k)
		}
	case cur > target:
		for k := cur; k > target; k-- {
			prev := p.chain[base+k-1]
			p.chain[base+k] = prev
			p.pos[prev] = int16(k)
		}
	default:
		return
	}
	p.chain[base+target] = id
	p.pos[id] = int16(target)
}

func clamp(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

var _ ctrl.Controller = (*PIPP)(nil)
var _ ctrl.MixedController = (*PIPP)(nil)
