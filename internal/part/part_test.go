package part

import (
	"testing"

	"vantage/internal/cache"
	"vantage/internal/hash"
)

func TestApportionWays(t *testing.T) {
	cases := []struct {
		targets []int
		ways    int
		want    []int
	}{
		{[]int{100, 100}, 16, []int{8, 8}},
		{[]int{300, 100}, 16, []int{12, 4}},
		{[]int{0, 0}, 4, []int{2, 2}},
		{[]int{1000, 1, 1, 1}, 16, []int{13, 1, 1, 1}},
		{[]int{1, 1, 1, 1}, 4, []int{1, 1, 1, 1}},
	}
	for _, c := range cases {
		got := ApportionWays(c.targets, c.ways)
		sum := 0
		for i, w := range got {
			sum += w
			if w != c.want[i] {
				t.Errorf("ApportionWays(%v,%d) = %v, want %v", c.targets, c.ways, got, c.want)
				break
			}
		}
		if sum != c.ways {
			t.Errorf("ApportionWays(%v,%d) sums to %d", c.targets, c.ways, sum)
		}
	}
}

func TestApportionWaysAlwaysSumsAndMinOne(t *testing.T) {
	rng := hash.NewRand(5)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(16)
		ways := n + rng.Intn(49)
		targets := make([]int, n)
		for i := range targets {
			targets[i] = rng.Intn(10000)
		}
		got := ApportionWays(targets, ways)
		sum := 0
		for _, w := range got {
			if w < 1 {
				t.Fatalf("partition with %d ways for targets %v", w, targets)
			}
			sum += w
		}
		if sum != ways {
			t.Fatalf("sum %d != %d for targets %v", sum, ways, targets)
		}
	}
}

func TestWayPartitionPanics(t *testing.T) {
	arr := cache.NewSetAssoc(256, 4, true, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("more partitions than ways did not panic")
		}
	}()
	NewWayPartition(arr, 8)
}

func TestWayPartitionRestrictsFills(t *testing.T) {
	arr := cache.NewSetAssoc(1024, 16, true, 2)
	w := NewWayPartition(arr, 4)
	w.SetTargets([]int{256, 256, 256, 256})
	rng := hash.NewRand(7)
	for i := 0; i < 20000; i++ {
		for p := 0; p < 4; p++ {
			w.Access(uint64(p)<<40|uint64(rng.Intn(1000)), p)
		}
	}
	// Every valid line must live in a way owned by its inserting partition.
	for id := 0; id < arr.NumLines(); id++ {
		lid := cache.LineID(id)
		if !arr.Line(lid).Valid {
			continue
		}
		owner := w.partOf[id]
		if owner < 0 {
			t.Fatal("valid line without owner")
		}
		if int(w.wayOf[arr.WayOf(lid)]) != int(owner) {
			t.Fatalf("line of partition %d in way %d owned by %d",
				owner, arr.WayOf(lid), w.wayOf[arr.WayOf(lid)])
		}
	}
}

func TestWayPartitionSizesBoundedByWays(t *testing.T) {
	arr := cache.NewSetAssoc(1024, 16, true, 3)
	w := NewWayPartition(arr, 4)
	w.SetTargets([]int{512, 256, 128, 128})
	if w.WaysOf(0) != 8 || w.WaysOf(1) != 4 || w.WaysOf(2) != 2 || w.WaysOf(3) != 2 {
		t.Fatalf("ways: %d %d %d %d", w.WaysOf(0), w.WaysOf(1), w.WaysOf(2), w.WaysOf(3))
	}
	rng := hash.NewRand(9)
	for i := 0; i < 30000; i++ {
		for p := 0; p < 4; p++ {
			w.Access(uint64(p)<<40|uint64(rng.Intn(4096)), p)
		}
	}
	sets := arr.Sets()
	for p := 0; p < 4; p++ {
		limit := w.WaysOf(p) * sets
		if w.Size(p) > limit {
			t.Fatalf("partition %d holds %d lines, way limit %d", p, w.Size(p), limit)
		}
		// Under streaming traffic each partition should fill its ways.
		if w.Size(p) < limit*9/10 {
			t.Fatalf("partition %d underfilled: %d of %d", p, w.Size(p), limit)
		}
	}
}

func TestWayPartitionIsolationIsStrict(t *testing.T) {
	arr := cache.NewSetAssoc(1024, 16, true, 4)
	w := NewWayPartition(arr, 2)
	w.SetTargets([]int{512, 512})
	rng := hash.NewRand(11)
	// Warm partition 0.
	for i := 0; i < 20000; i++ {
		w.Access(uint64(0)<<40|uint64(rng.Intn(400)), 0)
	}
	size0 := w.Size(0)
	// Thrash partition 1; partition 0 must not lose a single line.
	for i := 0; i < 50000; i++ {
		w.Access(uint64(1)<<40|uint64(i), 1)
	}
	if w.Size(0) != size0 {
		t.Fatalf("way-partitioning leaked: %d -> %d", size0, w.Size(0))
	}
}

func TestWayPartitionRepartitionGradual(t *testing.T) {
	arr := cache.NewSetAssoc(1024, 16, true, 5)
	w := NewWayPartition(arr, 2)
	w.SetTargets([]int{768, 256})
	rng := hash.NewRand(13)
	for i := 0; i < 30000; i++ {
		w.Access(uint64(0)<<40|uint64(rng.Intn(900)), 0)
		w.Access(uint64(1)<<40|uint64(rng.Intn(900)), 1)
	}
	big := w.Size(0)
	// Shrink partition 0 to 4 ways: its lines in reassigned ways are evicted
	// only as partition 1 misses there (the paper's slow-repartition effect).
	w.SetTargets([]int{256, 768})
	if w.Size(0) != big {
		t.Fatal("repartitioning flushed lines immediately")
	}
	for i := 0; i < 30000; i++ {
		w.Access(uint64(0)<<40|uint64(rng.Intn(900)), 0)
		w.Access(uint64(1)<<40|uint64(rng.Intn(900)), 1)
	}
	if w.Size(0) >= big {
		t.Fatal("downsized partition never shrank")
	}
}

func TestPIPPPanics(t *testing.T) {
	arr := cache.NewSetAssoc(256, 4, true, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("more partitions than ways did not panic")
		}
	}()
	NewPIPP(arr, 8, 1)
}

func TestPIPPChainInvariant(t *testing.T) {
	arr := cache.NewSetAssoc(512, 8, true, 6)
	p := NewPIPP(arr, 4, 2)
	p.SetTargets([]int{128, 128, 128, 128})
	rng := hash.NewRand(15)
	for i := 0; i < 20000; i++ {
		for q := 0; q < 4; q++ {
			p.Access(uint64(q)<<40|uint64(rng.Intn(500)), q)
		}
	}
	// chain/pos must stay mutually inverse permutations per set.
	ways := arr.Ways()
	for s := 0; s < arr.Sets(); s++ {
		seen := map[cache.LineID]bool{}
		for k := 0; k < ways; k++ {
			id := p.chain[s*ways+k]
			if arr.SetOf(id) != s {
				t.Fatalf("chain of set %d references line of set %d", s, arr.SetOf(id))
			}
			if int(p.pos[id]) != k {
				t.Fatalf("pos[%d]=%d but chain says %d", id, p.pos[id], k)
			}
			if seen[id] {
				t.Fatalf("line %d appears twice in set %d chain", id, s)
			}
			seen[id] = true
		}
	}
}

func TestPIPPApproximatesAllocations(t *testing.T) {
	arr := cache.NewSetAssoc(2048, 16, true, 7)
	p := NewPIPP(arr, 2, 3)
	p.SetTargets([]int{1536, 512}) // 12 and 4 ways
	if p.InsertPosition(0) != 12 || p.InsertPosition(1) != 4 {
		t.Fatalf("insert positions: %d %d", p.InsertPosition(0), p.InsertPosition(1))
	}
	rng := hash.NewRand(17)
	for i := 0; i < 60000; i++ {
		p.Access(uint64(0)<<40|uint64(rng.Intn(3000)), 0)
		p.Access(uint64(1)<<40|uint64(rng.Intn(3000)), 1)
	}
	s0, s1 := p.Size(0), p.Size(1)
	// PIPP only approximates targets; with equal churn, the partition with
	// the deeper insertion position must end up clearly larger.
	if s0 <= s1 {
		t.Fatalf("deep-insert partition not larger: %d vs %d", s0, s1)
	}
	if s0 < 1024 {
		t.Fatalf("partition 0 too small: %d of target 1536", s0)
	}
}

func TestPIPPStreamDetection(t *testing.T) {
	arr := cache.NewSetAssoc(1024, 16, true, 8)
	p := NewPIPP(arr, 2, 4)
	p.SetTargets([]int{512, 512})
	rng := hash.NewRand(19)
	// Partition 0: hot working set (low miss ratio). Partition 1: stream.
	for i := 0; i < 30000; i++ {
		p.Access(uint64(0)<<40|uint64(rng.Intn(200)), 0)
		p.Access(uint64(1)<<40|uint64(i), 1)
	}
	p.SetTargets([]int{512, 512})
	if p.Streaming(0) {
		t.Fatal("hot partition misclassified as streaming")
	}
	if !p.Streaming(1) {
		t.Fatal("streaming partition not detected")
	}
	if p.InsertPosition(1) != 1 {
		t.Fatalf("streaming partition insert position %d, want 1", p.InsertPosition(1))
	}
}

func TestPIPPVictimIsLRUEnd(t *testing.T) {
	arr := cache.NewSetAssoc(64, 4, false, 0) // unhashed: set = addr % 16
	p := NewPIPP(arr, 2, 5)
	// Fill set 0 from partition 0 (insert depth 2 after even split).
	for i := 0; i < 4; i++ {
		p.Access(uint64(i*16), 0)
	}
	// The next miss to set 0 must evict the chain's LRU head.
	lru := p.chain[0]
	want := arr.Line(lru).Addr
	res := p.Access(uint64(4*16), 0)
	if !res.EvictedValid || res.Evicted != want {
		t.Fatalf("evicted %#x (valid=%v), want LRU %#x", res.Evicted, res.EvictedValid, want)
	}
}

func TestSchemeNames(t *testing.T) {
	arr := cache.NewSetAssoc(256, 4, true, 1)
	if NewWayPartition(arr, 2).Name() != "WayPart" {
		t.Fatal("waypart name")
	}
	if NewPIPP(arr, 2, 1).Name() != "PIPP" {
		t.Fatal("pipp name")
	}
}

// TestPIPPPropertyChainConsistency drives randomized traffic shapes through
// PIPP with repeated repartitioning and checks the chain/pos inverse-
// permutation invariant plus size accounting.
func TestPIPPPropertyChainConsistency(t *testing.T) {
	rng := hash.NewRand(29)
	for trial := 0; trial < 10; trial++ {
		ways := []int{4, 8, 16}[rng.Intn(3)]
		sets := 32 << rng.Intn(3)
		arr := cache.NewSetAssoc(sets*ways, ways, true, rng.Uint64())
		parts := 2 + rng.Intn(ways-1)
		if parts > ways {
			parts = ways
		}
		p := NewPIPP(arr, parts, rng.Uint64())
		for step := 0; step < 5000; step++ {
			q := rng.Intn(parts)
			p.Access(uint64(q)<<40|uint64(rng.Intn(2000)), q)
			if step%1000 == 999 {
				targets := make([]int, parts)
				for i := range targets {
					targets[i] = rng.Intn(sets * ways)
				}
				p.SetTargets(targets)
			}
		}
		// Invariants.
		valid, counted := 0, 0
		for id := 0; id < arr.NumLines(); id++ {
			if arr.Line(cache.LineID(id)).Valid {
				valid++
			}
		}
		for q := 0; q < parts; q++ {
			counted += p.Size(q)
		}
		if valid != counted {
			t.Fatalf("trial %d: valid %d != counted %d", trial, valid, counted)
		}
		for s := 0; s < arr.Sets(); s++ {
			for k := 0; k < ways; k++ {
				id := p.chain[s*ways+k]
				if int(p.pos[id]) != k || arr.SetOf(id) != s {
					t.Fatalf("trial %d: chain/pos inconsistent at set %d", trial, s)
				}
			}
		}
	}
}

// TestWayPartitionPropertySizes randomizes way-partition traffic and
// repartitioning and checks occupancy accounting.
func TestWayPartitionPropertySizes(t *testing.T) {
	rng := hash.NewRand(31)
	for trial := 0; trial < 10; trial++ {
		arr := cache.NewSetAssoc(1024, 16, true, rng.Uint64())
		parts := 2 + rng.Intn(8)
		w := NewWayPartition(arr, parts)
		for step := 0; step < 6000; step++ {
			q := rng.Intn(parts)
			w.Access(uint64(q)<<40|uint64(rng.Intn(3000)), q)
			if step%1500 == 1499 {
				targets := make([]int, parts)
				for i := range targets {
					targets[i] = rng.Intn(1024)
				}
				w.SetTargets(targets)
			}
		}
		valid, counted := 0, 0
		for id := 0; id < arr.NumLines(); id++ {
			if arr.Line(cache.LineID(id)).Valid {
				valid++
			}
		}
		for q := 0; q < parts; q++ {
			counted += w.Size(q)
		}
		if valid != counted {
			t.Fatalf("trial %d: valid %d != counted %d", trial, valid, counted)
		}
	}
}
