package part

import (
	"fmt"

	"vantage/internal/cache"
	"vantage/internal/ctrl"
	"vantage/internal/repl"
)

// SetPartition implements set-partitioning (reconfigurable caches /
// molecular caches, Table 1): each partition owns a contiguous range of
// sets, and a partition's fills are redirected into its own sets. Unlike
// way-partitioning it preserves full associativity within each partition,
// but allocations are coarse (multiples of a set), resizing requires
// scrubbing (flushing the moved sets), and the scheme assumes fully
// disjoint address spaces — all drawbacks §2 of the paper catalogs.
//
// The implementation redirects the set index: an access by partition p maps
// to set firstSet[p] + (nativeSet mod sets[p]). Scrubbing on resize is
// modeled by invalidating every line in reassigned sets; the ScrubbedLines
// counter exposes the cost.
type SetPartition struct {
	arr      *cache.SetAssoc
	pol      *repl.LRUTimestamp
	parts    int
	firstSet []int
	numSets  []int
	sizes    []int
	partOf   []int16
	cands    []cache.LineID
	// ScrubbedLines counts lines flushed by repartitioning.
	ScrubbedLines uint64
}

// NewSetPartition returns a set-partitioning controller over arr with parts
// partitions. arr must have at least parts sets.
func NewSetPartition(arr *cache.SetAssoc, parts int) *SetPartition {
	if parts <= 0 || parts > arr.Sets() {
		panic(fmt.Sprintf("part: %d partitions need at least as many sets (have %d)", parts, arr.Sets()))
	}
	s := &SetPartition{
		arr:      arr,
		pol:      repl.NewLRUTimestamp(arr.NumLines()),
		parts:    parts,
		firstSet: make([]int, parts),
		numSets:  make([]int, parts),
		sizes:    make([]int, parts),
		partOf:   make([]int16, arr.NumLines()),
	}
	for i := range s.partOf {
		s.partOf[i] = -1
	}
	targets := make([]int, parts)
	per := arr.NumLines() / parts
	for i := range targets {
		targets[i] = per
	}
	s.SetTargets(targets)
	return s
}

// Name implements ctrl.Controller.
func (s *SetPartition) Name() string { return "SetPart" }

// Array implements ctrl.Controller.
func (s *SetPartition) Array() cache.Array { return s.arr }

// NumPartitions implements ctrl.Controller.
func (s *SetPartition) NumPartitions() int { return s.parts }

// Size implements ctrl.Controller.
func (s *SetPartition) Size(part int) int { return s.sizes[part] }

// SetsOf returns the number of sets partition part currently owns.
func (s *SetPartition) SetsOf(part int) int { return s.numSets[part] }

// SetTargets implements ctrl.Controller: line targets are rounded to whole
// sets (largest remainder, at least one set each); sets that change owner
// are scrubbed.
func (s *SetPartition) SetTargets(targets []int) {
	if len(targets) != s.parts {
		panic("part: target count mismatch")
	}
	// Reuse the way-apportioning logic over sets.
	setsPer := ApportionWays(targets, s.arr.Sets())
	// Record the old owner of each set to detect reassignment.
	oldOwner := make([]int16, s.arr.Sets())
	for i := range oldOwner {
		oldOwner[i] = -1
	}
	for p := 0; p < s.parts; p++ {
		for k := 0; k < s.numSets[p]; k++ {
			oldOwner[s.firstSet[p]+k] = int16(p)
		}
	}
	first := 0
	for p, n := range setsPer {
		resized := n != s.numSets[p] || first != s.firstSet[p]
		s.firstSet[p], s.numSets[p] = first, n
		for k := 0; k < n; k++ {
			set := first + k
			// Scrub on ownership change, and also when the partition's own
			// range moved or changed size: the modulo mapping of addresses
			// to its sets is different, so resident lines are unreachable.
			if oldOwner[set] != int16(p) || resized {
				s.scrubSet(set)
			}
		}
		first += n
	}
}

// scrubSet flushes every valid line in a set (the data-movement cost of
// resizing a set-partitioned cache).
func (s *SetPartition) scrubSet(set int) {
	for w := 0; w < s.arr.Ways(); w++ {
		id := s.arr.SlotAt(set, w)
		if s.arr.Line(id).Valid {
			if old := s.partOf[id]; old >= 0 {
				s.sizes[old]--
				s.partOf[id] = -1
			}
			s.arr.Invalidate(id)
			s.pol.OnEvict(id)
			s.ScrubbedLines++
		}
	}
}

// redirect maps an access by part to its partition's set range.
func (s *SetPartition) redirect(addr uint64, part int) int {
	native := s.arr.SetIndex(addr)
	return s.firstSet[part] + native%s.numSets[part]
}

// Access implements ctrl.Controller.
func (s *SetPartition) Access(addr uint64, part int) ctrl.AccessResult {
	set := s.redirect(addr, part)
	// Lookup within the redirected set only.
	hitID := cache.InvalidLine
	for w := 0; w < s.arr.Ways(); w++ {
		id := s.arr.SlotAt(set, w)
		if l := s.arr.Line(id); l.Valid && l.Addr == addr {
			hitID = id
			break
		}
	}
	if hitID != cache.InvalidLine {
		s.pol.OnHit(hitID, part)
		return ctrl.AccessResult{Hit: true}
	}
	// Miss: victim among the redirected set's ways.
	victim := cache.InvalidLine
	s.cands = s.cands[:0]
	for w := 0; w < s.arr.Ways(); w++ {
		id := s.arr.SlotAt(set, w)
		if !s.arr.Line(id).Valid {
			victim = id
			break
		}
		s.cands = append(s.cands, id)
	}
	if victim == cache.InvalidLine {
		victim = s.pol.Victim(s.cands)
	}
	var res ctrl.AccessResult
	if line := s.arr.Line(victim); line.Valid {
		res.EvictedValid = true
		res.Evicted = line.Addr
		s.pol.OnEvict(victim)
		if old := s.partOf[victim]; old >= 0 {
			s.sizes[old]--
		}
	}
	// Install directly at the victim slot: the redirected index replaces
	// the array's own placement rule, so bypass SetAssoc.Install's
	// same-set check by writing the slot through Invalidate+manual fill.
	s.arr.Invalidate(victim)
	*s.arr.Line(victim) = cache.Line{Addr: addr, Valid: true}
	s.pol.OnInsert(victim, addr, part)
	s.partOf[victim] = int16(part)
	s.sizes[part]++
	return res
}

var _ ctrl.Controller = (*SetPartition)(nil)
