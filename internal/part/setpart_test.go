package part

import (
	"testing"

	"vantage/internal/cache"
	"vantage/internal/hash"
)

func TestSetPartitionPanics(t *testing.T) {
	arr := cache.NewSetAssoc(64, 16, true, 1) // 4 sets
	defer func() {
		if recover() == nil {
			t.Fatal("more partitions than sets did not panic")
		}
	}()
	NewSetPartition(arr, 8)
}

func TestSetPartitionBasics(t *testing.T) {
	arr := cache.NewSetAssoc(1024, 8, true, 2) // 128 sets
	s := NewSetPartition(arr, 4)
	if s.Name() != "SetPart" || s.NumPartitions() != 4 {
		t.Fatal("metadata wrong")
	}
	if s.SetsOf(0) != 32 {
		t.Fatalf("initial sets = %d, want 32", s.SetsOf(0))
	}
	r := s.Access(42, 0)
	if r.Hit {
		t.Fatal("cold hit")
	}
	if r = s.Access(42, 0); !r.Hit {
		t.Fatal("re-access missed")
	}
	if s.Size(0) != 1 {
		t.Fatalf("size = %d", s.Size(0))
	}
}

func TestSetPartitionLinesStayInOwnSets(t *testing.T) {
	arr := cache.NewSetAssoc(1024, 8, true, 3)
	s := NewSetPartition(arr, 4)
	rng := hash.NewRand(5)
	for i := 0; i < 20000; i++ {
		for p := 0; p < 4; p++ {
			s.Access(uint64(p)<<40|uint64(rng.Intn(2000)), p)
		}
	}
	for id := 0; id < arr.NumLines(); id++ {
		lid := cache.LineID(id)
		if !arr.Line(lid).Valid {
			continue
		}
		p := s.partOf[id]
		set := arr.SetOf(lid)
		if set < s.firstSet[p] || set >= s.firstSet[p]+s.numSets[p] {
			t.Fatalf("line of partition %d in set %d outside [%d,%d)",
				p, set, s.firstSet[p], s.firstSet[p]+s.numSets[p])
		}
	}
}

func TestSetPartitionKeepsFullAssociativity(t *testing.T) {
	// Unlike way-partitioning, each partition keeps all ways: fill one
	// redirected set with 8 conflicting lines and verify all 8 reside.
	arr := cache.NewSetAssoc(1024, 8, true, 7)
	s := NewSetPartition(arr, 4)
	// Find 8 addresses for partition 0 that map to the same redirected set.
	target := s.redirect(1, 0)
	var addrs []uint64
	for a := uint64(1); len(addrs) < 8; a++ {
		if s.redirect(a, 0) == target {
			addrs = append(addrs, a)
		}
	}
	for _, a := range addrs {
		s.Access(a, 0)
	}
	for _, a := range addrs {
		if r := s.Access(a, 0); !r.Hit {
			t.Fatalf("conflicting line %d evicted despite 8 ways", a)
		}
	}
}

func TestSetPartitionIsolationIsStrict(t *testing.T) {
	arr := cache.NewSetAssoc(1024, 8, true, 9)
	s := NewSetPartition(arr, 2)
	rng := hash.NewRand(11)
	for i := 0; i < 20000; i++ {
		s.Access(uint64(0)<<40|uint64(rng.Intn(400)), 0)
	}
	size0 := s.Size(0)
	for i := 0; i < 50000; i++ {
		s.Access(uint64(1)<<40|uint64(i), 1)
	}
	if s.Size(0) != size0 {
		t.Fatalf("set partitioning leaked: %d -> %d", size0, s.Size(0))
	}
}

func TestSetPartitionResizeScrubs(t *testing.T) {
	arr := cache.NewSetAssoc(1024, 8, true, 13)
	s := NewSetPartition(arr, 2)
	rng := hash.NewRand(15)
	for i := 0; i < 20000; i++ {
		s.Access(uint64(0)<<40|uint64(rng.Intn(400)), 0)
		s.Access(uint64(1)<<40|uint64(rng.Intn(400)), 1)
	}
	if s.ScrubbedLines != 0 {
		t.Fatal("scrubbing before any resize")
	}
	s.SetTargets([]int{768, 256})
	if s.ScrubbedLines == 0 {
		t.Fatal("resize did not scrub")
	}
	// The shrunk partition lost everything in its moved sets; occupancy
	// accounting must stay consistent.
	valid, counted := 0, 0
	for id := 0; id < arr.NumLines(); id++ {
		if arr.Line(cache.LineID(id)).Valid {
			valid++
		}
	}
	counted = s.Size(0) + s.Size(1)
	if valid != counted {
		t.Fatalf("valid %d != counted %d after scrub", valid, counted)
	}
}

func TestSetPartitionEvictsWithinSet(t *testing.T) {
	arr := cache.NewSetAssoc(64, 4, true, 17) // 16 sets, 2 partitions x 8
	s := NewSetPartition(arr, 2)
	evictions := 0
	for i := 0; i < 2000; i++ {
		r := s.Access(uint64(0)<<40|uint64(i), 0)
		if r.EvictedValid {
			evictions++
		}
	}
	if evictions == 0 {
		t.Fatal("streaming never evicted")
	}
	// Partition 1 untouched: all its sets empty.
	if s.Size(1) != 0 {
		t.Fatalf("partition 1 grew to %d without accesses", s.Size(1))
	}
}
