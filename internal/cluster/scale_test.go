// NFR scale suite: multi-node vantaged clusters exercised end-to-end over
// real TCP, with assertions on scraped /metrics rather than in-process
// state — the same signals an operator's dashboards would alert on. The
// legs cover the cluster tentpole's contract:
//
//   - Registration: hundreds of tenants registered round-robin across
//     nodes replicate everywhere with converged registry versions.
//   - Churn: a registry add/remove churner running beside live traffic
//     must not dent the hit rate (floor: within 2 points of a solo run of
//     the identical workload) and p99 service latency stays bounded.
//   - Shedding: overload sheds are accounted exactly — the client's count
//     of ERR SHED replies equals the sum of the nodes' shed counters.
//   - Leave/join: a departing node drains every key it holds with exact
//     rehomed-keys accounting on both ends, and no acknowledged PUT is
//     lost across two membership changes.
//   - TTL: re-homed entries keep their remaining TTL (driven on a shared
//     fake clock, so expiry boundaries are asserted exactly).
//
// `go test -short` runs the scaled-down CI smoke (3 nodes, 50 tenants,
// one membership change). Set VANTAGE_SCALE_RESULTS=1 (or =path) to write
// the measured numbers as a markdown artifact under results/scale/.
package cluster_test

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"vantage/internal/clock"
	"vantage/internal/cluster"
	"vantage/internal/service"
	"vantage/internal/service/loadgen"
	"vantage/internal/workload"
)

// scaleVNodes is the ring geometry every leg uses; clients and nodes must
// agree on it.
const scaleVNodes = 32

type scaleNode struct {
	addr    string
	svc     *service.Service
	srv     *service.Server
	node    *cluster.Node
	metrics *httptest.Server
}

// startScaleCluster boots n in-process nodes: every node gets its own
// Service (seeded distinctly), a TCP server, a cluster.Node wired as the
// service's ClusterHandler, and an HTTP metrics endpoint. Listeners are
// bound first so the full member list exists before any node starts.
func startScaleCluster(t *testing.T, n int, cfg service.Config, scfg service.ServerConfig) []*scaleNode {
	t.Helper()
	liss := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range liss {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		liss[i] = lis
		addrs[i] = lis.Addr().String()
	}
	nodes := make([]*scaleNode, n)
	for i := range nodes {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)
		svc, err := service.New(c)
		if err != nil {
			t.Fatal(err)
		}
		srv := service.ServeWith(svc, liss[i], scfg)
		nd, err := cluster.NewNode(svc, addrs[i], addrs, scaleVNodes)
		if err != nil {
			t.Fatal(err)
		}
		svc.SetClusterHandler(nd)
		nodes[i] = &scaleNode{addr: addrs[i], svc: svc, srv: srv, node: nd, metrics: httptest.NewServer(svc.MetricsHandler())}
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.metrics.Close()
			nd.srv.Close()
			nd.svc.Close()
		}
	})
	return nodes
}

func addrsOf(nodes []*scaleNode) []string {
	out := make([]string, len(nodes))
	for i, nd := range nodes {
		out[i] = nd.addr
	}
	return out
}

// ----------------------------------------------------- text test client --

type textConn struct {
	t *testing.T
	c net.Conn
	r *bufio.Reader
	w *bufio.Writer
}

func dialScale(t *testing.T, addr string) *textConn {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	tc := &textConn{t: t, c: c, r: bufio.NewReader(c), w: bufio.NewWriter(c)}
	t.Cleanup(func() { c.Close() })
	return tc
}

func (tc *textConn) roundTrip(line string) string {
	tc.t.Helper()
	tc.w.WriteString(line + "\r\n")
	if err := tc.w.Flush(); err != nil {
		tc.t.Fatalf("%q: %v", line, err)
	}
	resp, err := tc.r.ReadString('\n')
	if err != nil {
		tc.t.Fatalf("%q: %v", line, err)
	}
	return strings.TrimRight(resp, "\r\n")
}

func (tc *textConn) put(tenant, key, val string, ttlMS int) {
	tc.t.Helper()
	if ttlMS >= 0 {
		fmt.Fprintf(tc.w, "PUT %s %s %d EXPIRE %d\r\n%s\r\n", tenant, key, len(val), ttlMS, val)
	} else {
		fmt.Fprintf(tc.w, "PUT %s %s %d\r\n%s\r\n", tenant, key, len(val), val)
	}
	if err := tc.w.Flush(); err != nil {
		tc.t.Fatal(err)
	}
	resp, err := tc.r.ReadString('\n')
	if err != nil {
		tc.t.Fatal(err)
	}
	if strings.TrimRight(resp, "\r\n") != "STORED" {
		tc.t.Fatalf("PUT %s: %q", key, resp)
	}
}

// get returns (value, hit).
func (tc *textConn) get(tenant, key string) (string, bool) {
	tc.t.Helper()
	resp := tc.roundTrip("GET " + tenant + " " + key)
	if resp == "MISS" {
		return "", false
	}
	n, err := strconv.Atoi(strings.TrimPrefix(resp, "VALUE "))
	if err != nil {
		tc.t.Fatalf("GET %s: %q", key, resp)
	}
	body := make([]byte, n+2)
	if _, err := io.ReadFull(tc.r, body); err != nil {
		tc.t.Fatal(err)
	}
	return string(body[:n]), true
}

// okCount parses the "OK <n>" reply of CLUSTER MEMBERS.
func okCount(t *testing.T, resp string) int {
	t.Helper()
	n, err := strconv.Atoi(strings.TrimPrefix(resp, "OK "))
	if err != nil {
		t.Fatalf("expected OK <n>, got %q", resp)
	}
	return n
}

// --------------------------------------------------- metrics scraping --

func scrapeMetrics(t *testing.T, nd *scaleNode) string {
	t.Helper()
	resp, err := http.Get(nd.metrics.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricValue returns the value of an unlabelled metric from a scrape.
func metricValue(t *testing.T, raw, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(raw, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("metric %s: bad value %q", name, rest)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in scrape", name)
	return 0
}

// histogramP99 extracts the p99 upper bound (seconds) and total count from
// the scraped vantaged_request_latency_seconds histogram.
func histogramP99(t *testing.T, raw string) (p99 float64, count uint64) {
	t.Helper()
	prefix := `vantaged_request_latency_seconds_bucket{le="`
	type bucket struct {
		le  float64
		cum uint64
	}
	var buckets []bucket
	for _, line := range strings.Split(raw, "\n") {
		rest, ok := strings.CutPrefix(line, prefix)
		if !ok {
			continue
		}
		leStr, cntStr, ok := strings.Cut(rest, `"} `)
		if !ok {
			t.Fatalf("bad histogram line %q", line)
		}
		le := math.Inf(1)
		if leStr != "+Inf" {
			v, err := strconv.ParseFloat(leStr, 64)
			if err != nil {
				t.Fatalf("bad le %q", leStr)
			}
			le = v
		}
		cum, err := strconv.ParseUint(cntStr, 10, 64)
		if err != nil {
			t.Fatalf("bad count %q", cntStr)
		}
		buckets = append(buckets, bucket{le, cum})
	}
	if len(buckets) == 0 {
		t.Fatal("no latency histogram in scrape (TrackLatency off?)")
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	count = buckets[len(buckets)-1].cum
	if count == 0 {
		return 0, 0
	}
	rank := uint64(math.Ceil(0.99 * float64(count)))
	for _, b := range buckets {
		if b.cum >= rank {
			return b.le, count
		}
	}
	return buckets[len(buckets)-1].le, count
}

// ----------------------------------------------------- results artifact --

var scaleResults struct {
	mu    sync.Mutex
	lines []string
}

func recordResult(format string, args ...any) {
	scaleResults.mu.Lock()
	defer scaleResults.mu.Unlock()
	scaleResults.lines = append(scaleResults.lines, fmt.Sprintf(format, args...))
}

func TestMain(m *testing.M) {
	code := m.Run()
	if dest := os.Getenv("VANTAGE_SCALE_RESULTS"); dest != "" && code == 0 {
		if dest == "1" {
			dest = filepath.Join("..", "..", "results", "scale", "v1", "results.md")
		}
		writeScaleResults(dest)
	}
	os.Exit(code)
}

func writeScaleResults(dest string) {
	scaleResults.mu.Lock()
	lines := append([]string(nil), scaleResults.lines...)
	scaleResults.mu.Unlock()
	var b strings.Builder
	b.WriteString("# Cluster NFR scale suite — results (v1)\n\n")
	b.WriteString("Produced by `go test ./internal/cluster/` with `VANTAGE_SCALE_RESULTS` set.\n")
	fmt.Fprintf(&b, "Geometry: %d virtual nodes per member. All assertions passed.\n\n", scaleVNodes)
	for _, l := range lines {
		b.WriteString("- " + l + "\n")
	}
	if err := os.MkdirAll(filepath.Dir(dest), 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "scale results:", err)
		return
	}
	if err := os.WriteFile(dest, []byte(b.String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "scale results:", err)
	}
}

// ------------------------------------------------------------- leg A --

// TestScaleRegistration registers hundreds of tenants round-robin across
// the nodes and asserts, from each node's metrics scrape, that every node
// converged on the full set at the same registry version — the paper's §5
// replicated per-partition targets, lifted to cluster scope.
func TestScaleRegistration(t *testing.T) {
	total := 220
	if testing.Short() {
		total = 50
	}
	nodes := startScaleCluster(t, 3,
		service.Config{Shards: 2, LinesPerShard: 4096, MaxTenants: 256, Seed: 11},
		service.ServerConfig{})
	conns := make([]*textConn, len(nodes))
	for i, nd := range nodes {
		conns[i] = dialScale(t, nd.addr)
	}
	for i := 0; i < total; i++ {
		resp := conns[i%len(conns)].roundTrip(fmt.Sprintf("TENANT ADD reg-%03d", i))
		if !strings.HasPrefix(resp, "OK") {
			t.Fatalf("register %d: %q", i, resp)
		}
	}
	var version float64
	for i, nd := range nodes {
		raw := scrapeMetrics(t, nd)
		if got := metricValue(t, raw, "vantaged_tenants"); got != float64(total) {
			t.Fatalf("node %d has %v tenants, want %d", i, got, total)
		}
		if got := metricValue(t, raw, "vantaged_cluster_peers"); got != 2 {
			t.Fatalf("node %d reports %v peers, want 2", i, got)
		}
		v := metricValue(t, raw, "vantaged_cluster_registry_version")
		if i == 0 {
			version = v
		} else if v != version {
			t.Fatalf("registry version diverged: node 0 at %v, node %d at %v", version, i, v)
		}
	}
	if version != float64(total) {
		t.Fatalf("registry version %v after %d origin registrations", version, total)
	}
	recordResult("registration: %d tenants on each of 3 nodes, registry version converged at %.0f", total, version)
}

// ------------------------------------------------------------- leg B --

// friendlySpecs builds the workload tenants both the solo baseline and the
// cluster run replay: identical apps (same seeds), so hit rates compare.
func friendlySpecs(n, cacheLines int) []loadgen.Tenant {
	specs := make([]loadgen.Tenant, n)
	for i := range specs {
		seed := uint64(100 + i)
		specs[i] = loadgen.Tenant{
			Name: fmt.Sprintf("w%d", i),
			MakeApp: func(conn int) workload.App {
				return loadgen.CategoryApp(workload.Friendly, cacheLines, seed+uint64(conn)*7919)
			},
		}
	}
	return specs
}

func sumHitRate(res loadgen.Result) (gets, hits uint64) {
	for _, tr := range res.Tenants {
		gets += tr.Gets
		hits += tr.Hits
	}
	return gets, hits
}

// TestScaleChurnHitRate replays the same deterministic workload against a
// solo node and against a 3-node cluster with a registry churner running,
// and asserts the cluster-under-churn hit rate is within 2 points of solo.
// p99 service latency comes from the nodes' scraped histograms.
func TestScaleChurnHitRate(t *testing.T) {
	ops, nTenants, churnTenants := 2500, 6, 24
	if testing.Short() {
		ops, nTenants, churnTenants = 600, 4, 12
	}
	cfg := service.Config{Shards: 2, LinesPerShard: 2048, MaxTenants: 64, Seed: 7, TrackLatency: true}
	cacheLines := cfg.Shards * cfg.LinesPerShard
	specs := friendlySpecs(nTenants, cacheLines)

	solo := startScaleCluster(t, 1, cfg, service.ServerConfig{})
	soloRes, err := loadgen.Run(loadgen.Options{
		Addr: solo[0].addr, Tenants: specs, OpsPerConn: ops, ValueSize: 32, Batch: 8,
	})
	if err != nil {
		t.Fatalf("solo run: %v", err)
	}
	soloGets, soloHits := sumHitRate(soloRes)
	soloHR := float64(soloHits) / float64(soloGets)

	nodes := startScaleCluster(t, 3, cfg, service.ServerConfig{})
	clusterRes, err := loadgen.Run(loadgen.Options{
		ClusterAddrs: addrsOf(nodes), VNodes: scaleVNodes,
		Tenants: specs, OpsPerConn: ops, ValueSize: 32, Batch: 8,
		ChurnTenants: churnTenants, ChurnInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("cluster run: %v", err)
	}
	gets, hits := sumHitRate(clusterRes)
	hr := float64(hits) / float64(gets)
	if hr < soloHR-0.02 {
		t.Fatalf("hit rate under churn %.4f fell more than 2 points below solo %.4f", hr, soloHR)
	}
	if clusterRes.ChurnOps == 0 {
		t.Fatal("churner made no acknowledged registry ops; the leg tested nothing")
	}

	// p99 per node from the scraped histogram; the bound is an NFR
	// smoke-level ceiling (loopback TCP, possibly under -race), not a
	// performance claim — BENCH_service.json carries those.
	var worstP99 float64
	var version float64
	for i, nd := range nodes {
		raw := scrapeMetrics(t, nd)
		p99, count := histogramP99(t, raw)
		if count == 0 {
			t.Fatalf("node %d served nothing", i)
		}
		if p99 > 0.5 {
			t.Fatalf("node %d p99 %.3fs exceeds 500ms NFR bound", i, p99)
		}
		if p99 > worstP99 {
			worstP99 = p99
		}
		v := metricValue(t, raw, "vantaged_cluster_registry_version")
		if i == 0 {
			version = v
		} else if v != version {
			t.Fatalf("registry version diverged under churn: %v vs %v", version, v)
		}
	}
	recordResult("churn: hit rate %.4f vs solo %.4f (floor solo-0.02), %d churn ops, worst node p99 <= %.2gs, %d gets",
		hr, soloHR, clusterRes.ChurnOps, worstP99, gets)
}

// TestScaleShedAccounting overloads a cluster whose nodes allow one data
// command in flight and asserts the client-observed shed count equals the
// sum of the nodes' shed counters exactly — the NFR that overload is
// shed visibly, never silently.
func TestScaleShedAccounting(t *testing.T) {
	ops := 300
	if testing.Short() {
		ops = 100
	}
	cfg := service.Config{Shards: 2, LinesPerShard: 1024, MaxTenants: 16, Seed: 13}
	// Per-tenant limit 1 sheds immediately (no backpressure wait), and a
	// 100%-rate delay fault on GETs holds each in-flight slot for 2ms, so
	// a tenant's two connections collide constantly.
	nodes := startScaleCluster(t, 3, cfg, service.ServerConfig{
		MaxTenantInflight: 1,
	})
	plan, err := service.ParseFaultSpec("delay=1:2ms,ops=get")
	if err != nil {
		t.Fatal(err)
	}
	for _, nd := range nodes {
		nd.svc.SetFaultInjector(plan)
	}
	specs := friendlySpecs(4, cfg.Shards*cfg.LinesPerShard)
	for i := range specs {
		specs[i].Conns = 2
	}
	res, err := loadgen.Run(loadgen.Options{
		ClusterAddrs: addrsOf(nodes), VNodes: scaleVNodes,
		Tenants: specs, OpsPerConn: ops, ValueSize: 16,
		Chaos: true,
	})
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	var shed uint64
	for _, nd := range nodes {
		shed += uint64(metricValue(t, scrapeMetrics(t, nd), "vantaged_requests_shed_total"))
	}
	if res.Shed == 0 {
		t.Fatal("no sheds under MaxInflight=1; the leg tested nothing")
	}
	if shed != res.Shed {
		t.Fatalf("shed accounting: nodes counted %d, client observed %d", shed, res.Shed)
	}
	recordResult("shed: %d sheds counted identically by client and nodes under MaxTenantInflight=1", shed)
}

// ------------------------------------------------------------- leg C --

// TestScaleLeaveJoin drives a node out of and back into a 3-node cluster
// and asserts exact re-homed key accounting from counter deltas, plus the
// headline invariant: every acknowledged PUT survives both membership
// changes.
func TestScaleLeaveJoin(t *testing.T) {
	total := 1500
	if testing.Short() {
		total = 400
	}
	cfg := service.Config{Shards: 2, LinesPerShard: 8192, MaxTenants: 8, Seed: 5}
	nodes := startScaleCluster(t, 3, cfg, service.ServerConfig{})
	addrs := addrsOf(nodes)
	byAddr := make(map[string]*scaleNode, len(nodes))
	conns := make(map[string]*textConn, len(nodes))
	for _, nd := range nodes {
		byAddr[nd.addr] = nd
		conns[nd.addr] = dialScale(t, nd.addr)
	}
	ring3, err := cluster.NewRing(addrs, scaleVNodes)
	if err != nil {
		t.Fatal(err)
	}

	if resp := conns[addrs[0]].roundTrip("TENANT ADD mover"); !strings.HasPrefix(resp, "OK") {
		t.Fatalf("TENANT ADD: %q", resp)
	}
	// Acknowledged PUTs, routed by ring ownership like a smart client.
	owned := make(map[string]int, len(addrs))
	value := func(i int) string { return fmt.Sprintf("val-%06d", i) }
	key := func(i int) string { return fmt.Sprintf("k%05d", i) }
	for i := 0; i < total; i++ {
		owner := ring3.Owner("mover", key(i))
		conns[owner].put("mover", key(i), value(i), -1)
		owned[owner]++
	}
	leaver := addrs[2]
	ownedByLeaver := owned[leaver]
	if ownedByLeaver == 0 {
		t.Fatalf("leaver owns no keys of %d; vacuous leg", total)
	}

	rehomedOut := func(nd *scaleNode) uint64 {
		return uint64(metricValue(t, scrapeMetrics(t, nd), "vantaged_cluster_rehomed_keys_total"))
	}
	rehomedIn := func(nd *scaleNode) uint64 {
		return uint64(metricValue(t, scrapeMetrics(t, nd), "vantaged_cluster_rehomed_in_keys_total"))
	}

	// --- leave: survivors first (monotone: they move nothing), then the
	// leaver, which must drain exactly the keys it owns.
	survivors := addrs[:2]
	ring2, err := cluster.NewRing(survivors, scaleVNodes)
	if err != nil {
		t.Fatal(err)
	}
	memberCmd := "CLUSTER MEMBERS " + strings.Join(survivors, " ")
	for _, a := range survivors {
		if moved := okCount(t, conns[a].roundTrip(memberCmd)); moved != 0 {
			t.Fatalf("survivor %s moved %d keys on removal of %s; consistent hashing must move none", a, moved, leaver)
		}
	}
	inBefore := rehomedIn(byAddr[survivors[0]]) + rehomedIn(byAddr[survivors[1]])
	if moved := okCount(t, conns[leaver].roundTrip(memberCmd)); moved != ownedByLeaver {
		t.Fatalf("leaver drained %d keys, owned %d", moved, ownedByLeaver)
	}
	if out := rehomedOut(byAddr[leaver]); out != uint64(ownedByLeaver) {
		t.Fatalf("leaver rehomed_keys_total %d, want %d", out, ownedByLeaver)
	}
	if in := rehomedIn(byAddr[survivors[0]]) + rehomedIn(byAddr[survivors[1]]) - inBefore; in != uint64(ownedByLeaver) {
		t.Fatalf("survivors received %d keys, want %d", in, ownedByLeaver)
	}
	if entries := metricValue(t, scrapeMetrics(t, byAddr[leaver]), "vantaged_store_entries"); entries != 0 {
		t.Fatalf("leaver still stores %v entries after draining", entries)
	}
	// Zero lost acknowledged PUTs: every key hits at its ring2 owner.
	for i := 0; i < total; i++ {
		got, hit := conns[ring2.Owner("mover", key(i))].get("mover", key(i))
		if !hit || got != value(i) {
			t.Fatalf("after leave: key %s -> hit=%v val=%q, want %q", key(i), hit, got, value(i))
		}
	}
	recordResult("leave: %d/%d keys drained by the departing node (exact), survivors moved 0, all %d acked PUTs readable",
		ownedByLeaver, total, total)

	if testing.Short() {
		return // CI smoke: one membership change
	}

	// --- join: the node comes back empty; survivors drain exactly the
	// keys the 3-ring assigns it (the same set, keys never duplicated).
	wantFrom := make(map[string]int, 2)
	for i := 0; i < total; i++ {
		if ring3.Owner("mover", key(i)) == leaver {
			wantFrom[ring2.Owner("mover", key(i))]++
		}
	}
	joinCmd := "CLUSTER MEMBERS " + strings.Join(addrs, " ")
	if moved := okCount(t, conns[leaver].roundTrip(joinCmd)); moved != 0 {
		t.Fatalf("rejoining empty node drained %d keys", moved)
	}
	for _, a := range survivors {
		if moved := okCount(t, conns[a].roundTrip(joinCmd)); moved != wantFrom[a] {
			t.Fatalf("survivor %s drained %d keys on rejoin, want %d", a, moved, wantFrom[a])
		}
	}
	if in := rehomedIn(byAddr[leaver]); in != uint64(ownedByLeaver) {
		t.Fatalf("rejoined node received %d keys, want %d", in, ownedByLeaver)
	}
	for i := 0; i < total; i++ {
		got, hit := conns[ring3.Owner("mover", key(i))].get("mover", key(i))
		if !hit || got != value(i) {
			t.Fatalf("after join: key %s -> hit=%v val=%q, want %q", key(i), hit, got, value(i))
		}
	}
	recordResult("join: %d keys drained back to the rejoining node (exact per-survivor counts), all %d acked PUTs readable",
		ownedByLeaver, total)
}

// ------------------------------------------------------------- leg D --

// TestScaleRehomeTTL drives a drain on a shared fake clock and asserts
// re-homed entries expire at their original deadline on the new owner:
// neither re-stamped with the receiver's default TTL nor restarted.
func TestScaleRehomeTTL(t *testing.T) {
	fake := clock.NewFake(time.Unix(1_700_000_000, 0))
	cfg := service.Config{Shards: 1, LinesPerShard: 1024, MaxTenants: 4, Seed: 3, Clock: fake,
		// A default TTL the REHOME must NOT re-stamp onto entries that
		// carry their own deadline (or none).
		DefaultTTL: time.Hour}
	nodes := startScaleCluster(t, 2, cfg, service.ServerConfig{})
	a, b := nodes[0], nodes[1]
	if _, err := a.svc.AddTenant("t"); err != nil {
		t.Fatal(err)
	}
	// Stored on A directly (routing is irrelevant to a drain: everything
	// A holds that the new ring homes elsewhere moves).
	if err := a.svc.PutTTL("t", "ttl10", []byte("x"), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := a.svc.PutTTL("t", "never", []byte("y"), 0); err != nil {
		t.Fatal(err)
	}

	fake.Advance(4 * time.Second) // 6s of TTL left
	moved, err := a.node.SetMembers([]string{b.addr})
	if err != nil {
		t.Fatal(err)
	}
	if moved != 2 {
		t.Fatalf("drained %d keys, want 2", moved)
	}
	if _, hit, _ := b.svc.Get("t", "ttl10"); !hit {
		t.Fatal("ttl10 missing on the new owner right after the drain")
	}

	fake.Advance(5 * time.Second) // t=9s: 1s before the original deadline
	if _, hit, _ := b.svc.Get("t", "ttl10"); !hit {
		t.Fatal("ttl10 expired early: remaining TTL was not preserved")
	}
	fake.Advance(2 * time.Second) // t=11s: past the original 10s deadline
	if _, hit, _ := b.svc.Get("t", "ttl10"); hit {
		t.Fatal("ttl10 alive past its original deadline: TTL was restarted or re-stamped in transit")
	}
	if val, hit, _ := b.svc.Get("t", "never"); !hit || string(val) != "y" {
		t.Fatal("never-expiring entry lost or re-stamped with a TTL by the drain")
	}
	recordResult("ttl: re-homed entry expired exactly at its original deadline on the new owner; never-expire preserved against a 1h receiver default TTL")
}
