// Package cluster scales vantaged from one process to N: a consistent-hash
// ring routes every (tenant, key) to exactly one node, the tenant registry
// is replicated to every peer over the binary protocol, and membership
// changes re-home only the keys whose ownership actually moved.
//
// The design transposes the paper's §5 banked-cache scaling onto processes.
// A banked LLC replicates each partition's target registers across banks so
// any bank can enforce the partition locally while lines are spread by an
// address interleaving; here the tenant registry (the "target registers")
// is replicated to every vantaged node while keys are spread by the ring,
// so any node can enforce a tenant's Vantage partition on the keys it owns
// without cross-node coordination on the data path.
package cluster

import (
	"fmt"
	"sort"

	"vantage/internal/hash"
)

// Ring is an immutable consistent-hash ring over a member set. Each member
// contributes vnodes virtual points; a (tenant, key) pair is owned by the
// member whose first point clockwise from the pair's hash it is. Two rings
// built from the same member set and vnode count are identical, whichever
// peer builds them and in whatever order the members were listed — that
// determinism is what lets every client and node route independently.
//
// Ownership is monotone under membership change by construction: removing a
// member removes only its points, so a pair changes owner only if its
// previous owner left; adding a member moves to it exactly the pairs its
// new points now cover. No other key moves.
type Ring struct {
	members []string // sorted, deduplicated
	vnodes  int
	points  []ringPoint // sorted by (hash, member index)
}

type ringPoint struct {
	h    uint64
	node int32 // index into members
}

// DefaultVNodes is the virtual-node count used when a caller passes 0: high
// enough that the largest member's share stays within a few percent of 1/N,
// low enough that building a ring is microseconds.
const DefaultVNodes = 64

// NewRing builds a ring over members with vnodes virtual points per member
// (0 = DefaultVNodes). Members are canonicalized (sorted, deduplicated), so
// peers need only agree on the set, not the order.
func NewRing(members []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	canon := make([]string, 0, len(members))
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if m == "" {
			return nil, fmt.Errorf("cluster: empty member address")
		}
		if !seen[m] {
			seen[m] = true
			canon = append(canon, m)
		}
	}
	if len(canon) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	sort.Strings(canon)
	r := &Ring{members: canon, vnodes: vnodes}
	r.points = make([]ringPoint, 0, len(canon)*vnodes)
	for i, m := range canon {
		base := hash.Mix64(fnv1a(m) ^ 0x76616e7461676564) // "vantaged"
		for v := 0; v < vnodes; v++ {
			h := hash.Mix64(base + uint64(v)*0x9e3779b97f4a7c15)
			r.points = append(r.points, ringPoint{h: h, node: int32(i)})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].h != r.points[b].h {
			return r.points[a].h < r.points[b].h
		}
		return r.points[a].node < r.points[b].node
	})
	return r, nil
}

// Members returns the canonicalized member set (sorted). The slice is the
// ring's own; callers must not mutate it.
func (r *Ring) Members() []string { return r.members }

// VNodes returns the virtual-node count per member.
func (r *Ring) VNodes() int { return r.vnodes }

// Contains reports whether addr is a ring member.
func (r *Ring) Contains(addr string) bool {
	i := sort.SearchStrings(r.members, addr)
	return i < len(r.members) && r.members[i] == addr
}

// Owner returns the member that owns (tenant, key): the first ring point at
// or clockwise past KeyHash(tenant, key). Registry operations route a bare
// tenant with key "" the same way, giving each tenant a deterministic
// registrar.
func (r *Ring) Owner(tenant, key string) string {
	return r.members[r.ownerIdx(KeyHash(tenant, key))]
}

// OwnerB is Owner for byte-slice tenant and key, for protocol paths that
// must not allocate strings per frame.
func (r *Ring) OwnerB(tenant, key []byte) string {
	return r.members[r.ownerIdx(keyHashB(tenant, key))]
}

func (r *Ring) ownerIdx(h uint64) int32 {
	pts := r.points
	i := sort.Search(len(pts), func(i int) bool { return pts[i].h >= h })
	if i == len(pts) {
		i = 0 // wrap: the smallest point owns the top arc
	}
	return pts[i].node
}

// KeyHash is the routing hash over (tenant, key): FNV-1a over tenant, a NUL
// separator (tenant names exclude control bytes, so the pair encoding is
// unambiguous), FNV-1a over key, finished with the SplitMix64 mixer — the
// same FNV+Mix64 construction the service uses for line addresses.
func KeyHash(tenant, key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(tenant); i++ {
		h ^= uint64(tenant[i])
		h *= 1099511628211
	}
	h ^= 0
	h *= 1099511628211
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return hash.Mix64(h)
}

func keyHashB(tenant, key []byte) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(tenant); i++ {
		h ^= uint64(tenant[i])
		h *= 1099511628211
	}
	h ^= 0
	h *= 1099511628211
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return hash.Mix64(h)
}

func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
