package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
)

// Proxy is a thin protocol-level forwarder: clients that cannot (or do not
// want to) run the consistent-hash ring themselves connect to the proxy as
// if it were a single vantaged node, and the proxy routes each command to
// the key's owner over the same wire protocol the client spoke. Both wire
// fronts are supported — text lines and the binary framing — and frames
// are forwarded verbatim, so the proxy adds one hop and no re-encoding.
//
// The proxy is deliberately stateless: it holds the ring and a per-client
// set of lazily dialed backend connections, nothing else. Ownership moves
// only when the operator restarts the proxy with a new member list (the
// nodes themselves re-home keys via CLUSTER MEMBERS); a long-lived proxy
// deployment would re-resolve membership out of band.
type Proxy struct {
	lis     net.Listener
	ring    *Ring
	members []string

	mu     sync.Mutex
	conns  map[net.Conn]bool
	closed bool

	wg sync.WaitGroup
}

// proxyMaxLine bounds one text command line; proxyMaxBody bounds one PUT
// value block or binary frame. Both are generous — the backends enforce
// the real protocol limits and their ERR/close is relayed — these only
// keep a garbage length field from making the proxy buffer gigabytes.
const (
	proxyMaxLine = 1 << 20
	proxyMaxBody = 64 << 20
)

// NewProxy starts a proxy for the given member list on lis.
func NewProxy(lis net.Listener, members []string, vnodes int) (*Proxy, error) {
	ring, err := NewRing(members, vnodes)
	if err != nil {
		return nil, err
	}
	p := &Proxy{lis: lis, ring: ring, members: ring.Members(), conns: make(map[net.Conn]bool)}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address.
func (p *Proxy) Addr() net.Addr { return p.lis.Addr() }

// Close stops accepting, closes every client connection and waits for the
// per-connection goroutines to drain.
func (p *Proxy) Close() {
	p.mu.Lock()
	p.closed = true
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	p.lis.Close()
	for _, c := range conns {
		c.Close()
	}
	p.wg.Wait()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.lis.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			return
		}
		p.conns[conn] = true
		p.mu.Unlock()
		p.wg.Add(1)
		go p.serveConn(conn)
	}
}

func (p *Proxy) forget(conn net.Conn) {
	p.mu.Lock()
	delete(p.conns, conn)
	p.mu.Unlock()
}

// serveConn sniffs the first byte — the binary preamble's magic can never
// start a text verb — and hands the connection to the matching front.
func (p *Proxy) serveConn(conn net.Conn) {
	defer p.wg.Done()
	defer p.forget(conn)
	defer conn.Close()
	r := bufio.NewReaderSize(conn, 32<<10)
	first, err := r.Peek(1)
	if err != nil {
		return
	}
	if first[0] == peerMagic {
		p.serveBinary(conn, r)
		return
	}
	p.serveText(conn, r)
}

// ---------------------------------------------------------------- text --

// textBackend is one lazily dialed text-protocol connection to a node,
// owned by a single client connection (so responses can't interleave).
type textBackend struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

type textSession struct {
	p        *Proxy
	w        *bufio.Writer
	backends map[string]*textBackend
}

func (ts *textSession) backend(addr string) (*textBackend, error) {
	if b := ts.backends[addr]; b != nil {
		return b, nil
	}
	conn, err := net.DialTimeout("tcp", addr, peerDialTimeout)
	if err != nil {
		return nil, fmt.Errorf("backend %s: %w", addr, err)
	}
	b := &textBackend{conn: conn, r: bufio.NewReaderSize(conn, 32<<10), w: bufio.NewWriterSize(conn, 16<<10)}
	ts.backends[addr] = b
	return b, nil
}

func (ts *textSession) closeAll() {
	for _, b := range ts.backends {
		b.conn.Close()
	}
}

// readLine reads one CRLF- (or LF-) terminated line, stripped.
func readLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return "", err
	}
	if len(line) > proxyMaxLine {
		return "", errors.New("line too long")
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// relayValueResponse reads one GET-shaped response (VALUE block, MISS, or
// ERR) from b and returns it verbatim including terminators.
func (ts *textSession) relayValueResponse(b *textBackend) ([]byte, error) {
	line, err := readLine(b.r)
	if err != nil {
		return nil, err
	}
	out := []byte(line + "\r\n")
	if n, ok := strings.CutPrefix(line, "VALUE "); ok {
		size, err := strconv.Atoi(n)
		if err != nil || size < 0 || size > proxyMaxBody {
			return nil, fmt.Errorf("backend sent VALUE length %q", n)
		}
		body := make([]byte, size+2) // value + CRLF
		if _, err := io.ReadFull(b.r, body); err != nil {
			return nil, err
		}
		out = append(out, body...)
	}
	return out, nil
}

// relayUntilEnd copies response lines to the client until the END
// terminator. A leading ERR line is a complete response on its own.
func (ts *textSession) relayUntilEnd(b *textBackend) error {
	for {
		line, err := readLine(b.r)
		if err != nil {
			return err
		}
		ts.w.WriteString(line)
		ts.w.WriteString("\r\n")
		if line == "END" || strings.HasPrefix(line, "ERR") {
			return nil
		}
	}
}

// roundTripLine forwards one command line and relays the one-line reply.
func (ts *textSession) roundTripLine(addr, line string) (string, error) {
	b, err := ts.backend(addr)
	if err != nil {
		return "", err
	}
	b.w.WriteString(line)
	b.w.WriteString("\r\n")
	if err := b.w.Flush(); err != nil {
		return "", err
	}
	return readLine(b.r)
}

// serveText runs the text front: parse just enough of each command to know
// its routing key and its framing (PUT's value block, MGET's fan-out),
// forward, and relay the response.
func (p *Proxy) serveText(conn net.Conn, r *bufio.Reader) {
	w := bufio.NewWriterSize(conn, 16<<10)
	ts := &textSession{p: p, w: w, backends: make(map[string]*textBackend)}
	defer ts.closeAll()
	for {
		line, err := readLine(r)
		if err != nil {
			return
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		quit, err := p.textCommand(ts, r, line, fields)
		if err != nil {
			// A backend or framing failure mid-command: the client stream
			// can no longer be trusted to stay in sync, so close.
			fmt.Fprintf(w, "ERR proxy: %v\r\n", err)
			w.Flush()
			return
		}
		if w.Flush() != nil || quit {
			return
		}
	}
}

func (p *Proxy) textCommand(ts *textSession, r *bufio.Reader, line string, fields []string) (quit bool, err error) {
	verb := strings.ToUpper(fields[0])
	switch verb {
	case "GET", "DEL", "TOUCH", "EXPIRE":
		if len(fields) < 3 {
			// Malformed: any node produces the right usage error.
			resp, err := ts.roundTripLine(p.members[0], line)
			if err != nil {
				return false, err
			}
			ts.w.WriteString(resp + "\r\n")
			return false, nil
		}
		addr := p.ring.Owner(fields[1], fields[2])
		b, err := ts.backend(addr)
		if err != nil {
			return false, err
		}
		b.w.WriteString(line)
		b.w.WriteString("\r\n")
		if err := b.w.Flush(); err != nil {
			return false, err
		}
		if verb == "GET" {
			resp, err := ts.relayValueResponse(b)
			if err != nil {
				return false, err
			}
			ts.w.Write(resp)
			return false, nil
		}
		resp, err := readLine(b.r)
		if err != nil {
			return false, err
		}
		ts.w.WriteString(resp + "\r\n")
		return false, nil

	case "PUT":
		return p.textPut(ts, r, line, fields)

	case "MGET":
		return false, p.textMGet(ts, line, fields)

	case "TENANT":
		// Registration replicates cluster-wide from whichever node takes
		// it; route by name so retries of one op land on one node. LIST
		// reads any node's registry — they converge — so use the first.
		addr := p.members[0]
		if len(fields) == 3 && (strings.EqualFold(fields[1], "ADD") || strings.EqualFold(fields[1], "DEL")) {
			addr = p.ring.Owner(fields[2], "")
		}
		if len(fields) >= 2 && strings.EqualFold(fields[1], "LIST") {
			b, err := ts.backend(addr)
			if err != nil {
				return false, err
			}
			b.w.WriteString(line + "\r\n")
			if err := b.w.Flush(); err != nil {
				return false, err
			}
			return false, ts.relayUntilEnd(b)
		}
		resp, err := ts.roundTripLine(addr, line)
		if err != nil {
			return false, err
		}
		ts.w.WriteString(resp + "\r\n")
		return false, nil

	case "STATS":
		// Per-node counters; the proxy reports the first member's. The
		// scale suite scrapes each node directly for cluster-wide views.
		b, err := ts.backend(p.members[0])
		if err != nil {
			return false, err
		}
		b.w.WriteString(line + "\r\n")
		if err := b.w.Flush(); err != nil {
			return false, err
		}
		return false, ts.relayUntilEnd(b)

	case "PING":
		ts.w.WriteString("PONG\r\n")
		return false, nil

	case "QUIT":
		ts.w.WriteString("BYE\r\n")
		return true, nil

	case "CLUSTER":
		// Membership is per node; issuing it through a proxy would be
		// ambiguous about which node should drain.
		ts.w.WriteString("ERR CLUSTER must be issued to a node, not the proxy\r\n")
		return false, nil

	default:
		fmt.Fprintf(ts.w, "ERR unknown command %q\r\n", fields[0])
		return false, nil
	}
}

// textPut forwards PUT: the value block belongs to the command, so it is
// read from the client (keeping the client stream in sync even when the
// command line is malformed) and forwarded with the line.
func (p *Proxy) textPut(ts *textSession, r *bufio.Reader, line string, fields []string) (quit bool, err error) {
	if len(fields) < 4 {
		resp, err := ts.roundTripLine(p.members[0], line)
		if err != nil {
			return false, err
		}
		ts.w.WriteString(resp + "\r\n")
		return false, nil
	}
	n, perr := strconv.Atoi(fields[3])
	if perr != nil || n < 0 {
		// No value block can follow an unparseable length; the backend
		// answers the same ERR without one.
		resp, err := ts.roundTripLine(p.members[0], line)
		if err != nil {
			return false, err
		}
		ts.w.WriteString(resp + "\r\n")
		return false, nil
	}
	if n > proxyMaxBody {
		return true, fmt.Errorf("value length %d exceeds proxy maximum", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return true, errors.New("short value")
	}
	// Absorb the client's value terminator, tolerating a bare LF.
	if c, err := r.ReadByte(); err == nil && c == '\r' {
		r.ReadByte()
	} else if err == nil && c != '\n' {
		r.UnreadByte()
	}
	b, err := ts.backend(p.ring.Owner(fields[1], fields[2]))
	if err != nil {
		return false, err
	}
	b.w.WriteString(line)
	b.w.WriteString("\r\n")
	b.w.Write(body)
	b.w.WriteString("\r\n")
	if err := b.w.Flush(); err != nil {
		return false, err
	}
	resp, err := readLine(b.r)
	if err != nil {
		return false, err
	}
	ts.w.WriteString(resp + "\r\n")
	return false, nil
}

// textMGet fans an MGET out to each owner and reassembles the per-key
// responses in the client's key order, terminated by one END. Any ERR from
// a backend (unknown tenant, injected fault) replaces the whole response
// with that single ERR line, no END — the same shape a node's own
// mid-batch abort has.
func (p *Proxy) textMGet(ts *textSession, line string, fields []string) error {
	if len(fields) < 3 {
		resp, err := ts.roundTripLine(p.members[0], line)
		if err != nil {
			return err
		}
		ts.w.WriteString(resp + "\r\n")
		return nil
	}
	k, perr := strconv.Atoi(fields[2])
	if perr != nil || k < 1 || len(fields) != 3+k {
		resp, err := ts.roundTripLine(p.members[0], line)
		if err != nil {
			return err
		}
		ts.w.WriteString(resp + "\r\n")
		return nil
	}
	tenant, keys := fields[1], fields[3:]
	byOwner := make(map[string][]int)
	for i, key := range keys {
		owner := p.ring.Owner(tenant, key)
		byOwner[owner] = append(byOwner[owner], i)
	}
	responses := make([][]byte, len(keys))
	// Owners are visited sequentially: an MGET is one command, and the
	// proxy's job is correctness, not fan-out latency (ring-aware clients
	// route themselves).
	for _, addr := range p.members {
		idxs := byOwner[addr]
		if len(idxs) == 0 {
			continue
		}
		b, err := ts.backend(addr)
		if err != nil {
			return err
		}
		fmt.Fprintf(b.w, "MGET %s %d", tenant, len(idxs))
		for _, i := range idxs {
			b.w.WriteByte(' ')
			b.w.WriteString(keys[i])
		}
		b.w.WriteString("\r\n")
		if err := b.w.Flush(); err != nil {
			return err
		}
		for _, i := range idxs {
			resp, err := ts.relayValueResponse(b)
			if err != nil {
				return err
			}
			if strings.HasPrefix(string(resp), "ERR") {
				// The backend aborted: it sent no END and no further
				// responses for this batch. Relay the abort as the whole
				// client response.
				ts.w.Write(resp)
				return nil
			}
			responses[i] = resp
		}
		end, err := readLine(b.r)
		if err != nil {
			return err
		}
		if end != "END" {
			return fmt.Errorf("backend %s ended MGET with %q", addr, end)
		}
	}
	for _, resp := range responses {
		ts.w.Write(resp)
	}
	ts.w.WriteString("END\r\n")
	return nil
}

// -------------------------------------------------------------- binary --

// binBackend is one negotiated binary connection to a node, owned by a
// single proxied client. Its reader goroutine relays response frames to
// the client as they arrive; ids pass through untouched, and the binary
// contract already tells clients to match responses by id, so interleaved
// arrivals from different backends are fine.
type binBackend struct {
	conn net.Conn
}

// serveBinary runs the binary front: negotiate with the client, then parse
// each request frame just enough to route it and forward it verbatim.
func (p *Proxy) serveBinary(conn net.Conn, r *bufio.Reader) {
	var pre [4]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		return
	}
	if pre[0] != peerMagic || pre[1] != 'V' || pre[2] != 'B' {
		return
	}
	ack := [4]byte{peerMagic, 'V', 'B', peerVersion}
	if _, err := conn.Write(ack[:]); err != nil || pre[3] != peerVersion {
		return
	}

	var wmu sync.Mutex // serializes response-frame writes to the client
	backends := make(map[string]*binBackend)
	var bwg sync.WaitGroup
	defer func() {
		for _, b := range backends {
			b.conn.Close()
		}
		bwg.Wait()
	}()

	backend := func(addr string) (*binBackend, error) {
		if b := backends[addr]; b != nil {
			return b, nil
		}
		bc, err := net.DialTimeout("tcp", addr, peerDialTimeout)
		if err != nil {
			return nil, err
		}
		if _, err := bc.Write(ack[:]); err != nil {
			bc.Close()
			return nil, err
		}
		var back [4]byte
		if _, err := io.ReadFull(bc, back[:]); err != nil || back[0] != peerMagic || back[3] != peerVersion {
			bc.Close()
			return nil, errors.New("backend negotiation failed")
		}
		b := &binBackend{conn: bc}
		backends[addr] = b
		bwg.Add(1)
		go func() {
			defer bwg.Done()
			relayBinResponses(bc, conn, &wmu)
			// A dead backend mid-stream loses responses the client is
			// owed; the only honest recovery is closing the client.
			conn.Close()
		}()
		return b, nil
	}

	hdr := make([]byte, 4+peerReqHdr)
	var frame []byte
	for {
		if _, err := io.ReadFull(r, hdr[:4]); err != nil {
			return
		}
		n := int(peerLE.Uint32(hdr[:4]))
		if n < peerReqHdr || n > proxyMaxBody {
			return
		}
		if cap(frame) < 4+n {
			frame = make([]byte, 4+n)
		}
		frame = frame[:4+n]
		copy(frame, hdr[:4])
		if _, err := io.ReadFull(r, frame[4:]); err != nil {
			return
		}
		op := frame[4]
		tl := int(frame[6])
		kl := int(peerLE.Uint16(frame[16:18]))
		if peerReqHdr+tl+kl > n {
			return // framing violation, same as a node would treat it
		}
		tenant := string(frame[4+peerReqHdr : 4+peerReqHdr+tl])
		key := string(frame[4+peerReqHdr+tl : 4+peerReqHdr+tl+kl])

		var addr string
		switch op {
		case peerOpPing:
			// Answered locally: PING probes the proxy's own liveness.
			var resp [4 + peerRespHdr]byte
			peerLE.PutUint32(resp[0:4], peerRespHdr)
			resp[4] = peerStOK
			resp[5] = op
			copy(resp[8:12], frame[8:12]) // id passes through
			wmu.Lock()
			_, err := conn.Write(resp[:])
			wmu.Unlock()
			if err != nil {
				return
			}
			continue
		case peerOpTenantAdd, peerOpTenantDel, peerOpRegOp:
			addr = p.ring.Owner(tenant, "")
		case peerOpRegPull:
			addr = p.members[0]
		case peerOpGet, peerOpPut, peerOpDel, peerOpTouch, peerOpRehome:
			addr = p.ring.Owner(tenant, key)
		default:
			return // unknown opcode: the stream can't be trusted
		}
		b, err := backend(addr)
		if err != nil {
			return
		}
		if _, err := b.conn.Write(frame); err != nil {
			return
		}
	}
}

// relayBinResponses copies complete response frames from a backend to the
// client until either side dies.
func relayBinResponses(from net.Conn, to net.Conn, wmu *sync.Mutex) {
	r := bufio.NewReaderSize(from, 32<<10)
	hdr := make([]byte, 4)
	var frame []byte
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			return
		}
		n := int(peerLE.Uint32(hdr))
		if n < peerRespHdr || n > proxyMaxBody {
			return
		}
		if cap(frame) < 4+n {
			frame = make([]byte, 4+n)
		}
		frame = frame[:4+n]
		copy(frame, hdr)
		if _, err := io.ReadFull(r, frame[4:]); err != nil {
			return
		}
		wmu.Lock()
		_, err := to.Write(frame)
		wmu.Unlock()
		if err != nil {
			return
		}
	}
}
