package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vantage/internal/latency"
)

// Proxy routes client commands to the key's ring owner so clients that
// cannot (or do not want to) run the consistent-hash ring themselves can
// speak to the cluster as if it were a single vantaged node. Both wire
// fronts are supported — text lines and the binary framing.
//
// The data plane is pooled and pipelined: the proxy keeps one persistent
// negotiated binary connection per backend (shared by all clients, see
// pool.go), translates hot text commands onto it, splits each incoming
// client batch by ring owner, scatters the per-backend frames in one
// buffered write per backend, and re-merges responses into each client's
// stream — in arrival order keyed by request id on the binary front, in
// strict command order (a per-session sequencer) on the text front. MGET
// and BMGET fan out as per-owner BMGET sub-frames whose coalesced
// responses are re-merged in client key order.
//
// Control verbs (TENANT, STATS, CLUSTER, malformed lines) and anything
// the binary framing cannot carry fall back to per-session text
// connections, preceded by a barrier that drains in-flight pooled
// responses so cross-plane ordering is preserved.
//
// Ownership moves only when the operator restarts the proxy with a new
// member list (the nodes themselves re-home keys via CLUSTER MEMBERS); a
// long-lived proxy deployment would re-resolve membership out of band.
type Proxy struct {
	lis     net.Listener
	ring    *Ring
	members []string
	pool    *pool
	lat     *latency.Hist // nil unless ProxyConfig.TrackLatency

	mu     sync.Mutex
	conns  map[net.Conn]bool
	closed bool

	wg sync.WaitGroup
}

// ProxyConfig carries optional proxy behavior.
type ProxyConfig struct {
	// TrackLatency records per-request submit→response latency in the
	// same log2 histogram layout the nodes use.
	TrackLatency bool
}

// ProxyStats is a snapshot of the proxy's own counters (the backends keep
// their own; STATS through the proxy relays a node's counters and injects
// these).
type ProxyStats struct {
	PoolConns       int64  // currently open pooled backend connections
	PoolConnsTotal  uint64 // successful backend dials, lifetime
	PipelinedFrames uint64 // frames pipelined through the pool, lifetime
	LatencyCounts   []uint64
	LatencySumNS    uint64
}

// LatencyQuantile estimates quantile q from the snapshot's histogram (see
// service.Stats.LatencyQuantile).
func (st ProxyStats) LatencyQuantile(q float64) time.Duration {
	return latency.Quantile(st.LatencyCounts, q)
}

// proxyMaxLine bounds one text command line; proxyMaxBody bounds one PUT
// value block or binary frame. Both are generous — the backends enforce
// the real protocol limits and their ERR/close is relayed — these only
// keep a garbage length field from making the proxy buffer gigabytes.
const (
	proxyMaxLine = 1 << 20
	proxyMaxBody = 64 << 20
)

// proxyFlushHi flushes a client-side response buffer early when merged
// responses outgrow it, even though the batch hasn't fully drained.
const proxyFlushHi = 48 << 10

// Wire limits mirrored from internal/service's protocol. The proxy must
// pre-validate what it pipelines onto shared backend connections (a
// malformed frame would kill a connection other clients are riding) and
// must answer whole-batch limits itself (a split BMGET would otherwise
// slip past the node's per-frame caps). The cluster package cannot import
// service for the canonical values without a cycle through loadgen.
const (
	proxyMaxKeyLen    = 250
	proxyMaxValueLen  = 1 << 20
	proxyMaxBatchKeys = 1024
)

// NewProxy starts a proxy for the given member list on lis.
func NewProxy(lis net.Listener, members []string, vnodes int) (*Proxy, error) {
	return NewProxyWith(lis, members, vnodes, ProxyConfig{})
}

// NewProxyWith starts a proxy with explicit configuration.
func NewProxyWith(lis net.Listener, members []string, vnodes int, cfg ProxyConfig) (*Proxy, error) {
	ring, err := NewRing(members, vnodes)
	if err != nil {
		return nil, err
	}
	p := &Proxy{lis: lis, ring: ring, members: ring.Members(), conns: make(map[net.Conn]bool)}
	if cfg.TrackLatency {
		p.lat = &latency.Hist{}
	}
	p.pool = newPool(p.lat)
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address.
func (p *Proxy) Addr() net.Addr { return p.lis.Addr() }

// Stats snapshots the proxy's own counters.
func (p *Proxy) Stats() ProxyStats {
	st := ProxyStats{
		PoolConns:       p.pool.connsGauge.Load(),
		PoolConnsTotal:  p.pool.connsTotal.Load(),
		PipelinedFrames: p.pool.frames.Load(),
	}
	if p.lat != nil {
		st.LatencyCounts, st.LatencySumNS = p.lat.Snapshot()
	}
	return st
}

// Close stops accepting, closes every client connection and the backend
// pool (synthesizing failures for anything in flight), and waits for the
// per-connection goroutines to drain.
func (p *Proxy) Close() {
	p.mu.Lock()
	p.closed = true
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	p.lis.Close()
	for _, c := range conns {
		c.Close()
	}
	p.wg.Wait()
	p.pool.close()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.lis.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			return
		}
		p.conns[conn] = true
		p.mu.Unlock()
		p.wg.Add(1)
		go p.serveConn(conn)
	}
}

func (p *Proxy) forget(conn net.Conn) {
	p.mu.Lock()
	delete(p.conns, conn)
	p.mu.Unlock()
}

// serveConn sniffs the first byte — the binary preamble's magic can never
// start a text verb — and hands the connection to the matching front.
func (p *Proxy) serveConn(conn net.Conn) {
	defer p.wg.Done()
	defer p.forget(conn)
	defer conn.Close()
	r := bufio.NewReaderSize(conn, 32<<10)
	first, err := r.Peek(1)
	if err != nil {
		return
	}
	if first[0] == peerMagic {
		p.serveBinary(conn, r)
		return
	}
	p.serveText(conn, r)
}

// route submits one frame through the pool, answering with a synthesized
// ERR when the backend cannot be dialed (reconnect is retried on the next
// batch that routes there).
func (p *Proxy) route(tch *touched, pd pend, addr string, frame []byte) {
	pc, err := p.pool.get(addr)
	if err != nil {
		pd.s.deliver(pd, peerStErr, []byte("proxy: backend "+addr+" unavailable"))
		return
	}
	pc.submit(pd, frame)
	tch.add(pc)
}

// now returns a submit timestamp when latency tracking is on, else 0.
func (p *Proxy) now() int64 {
	if p.lat == nil {
		return 0
	}
	return time.Now().UnixNano()
}

func (p *Proxy) record(t0 int64) {
	if p.lat != nil && t0 != 0 {
		p.lat.Record(time.Duration(time.Now().UnixNano() - t0))
	}
}

// ---------------------------------------------------------------- text --

// Response renderings for pooled text commands.
const (
	kGet = iota + 1
	kPut
	kDel
	kTouch
)

// textBackend is one lazily dialed text-protocol connection to a node,
// owned by a single client session (so fallback responses can't
// interleave). Only control verbs and malformed lines use these; the data
// plane rides the shared binary pool.
type textBackend struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// textProxySess is one text client. Pooled responses complete out of
// order (whichever backend answers first) but the text protocol promises
// responses in command order, so each command takes a sequence slot and
// completions are emitted strictly in slot order.
type textProxySess struct {
	p    *Proxy
	conn net.Conn

	mu   sync.Mutex
	cond *sync.Cond
	w    *bufio.Writer
	next uint64 // next sequence slot to assign
	head uint64 // next slot to emit
	done map[uint64][]byte

	backends map[string]*textBackend
	scratch  []byte
}

func (ts *textProxySess) backend(addr string) (*textBackend, error) {
	if b := ts.backends[addr]; b != nil {
		return b, nil
	}
	conn, err := net.DialTimeout("tcp", addr, peerDialTimeout)
	if err != nil {
		return nil, fmt.Errorf("backend %s: %w", addr, err)
	}
	b := &textBackend{conn: conn, r: bufio.NewReaderSize(conn, 32<<10), w: bufio.NewWriterSize(conn, 16<<10)}
	ts.backends[addr] = b
	return b, nil
}

func (ts *textProxySess) closeAll() {
	for _, b := range ts.backends {
		b.conn.Close()
	}
}

// allocSeq claims the next response-ordering slot.
func (ts *textProxySess) allocSeq() uint64 {
	ts.mu.Lock()
	s := ts.next
	ts.next++
	ts.mu.Unlock()
	return s
}

// complete stores one command's rendered response and emits every
// response that is now at the head of the order. The whole buffer flushes
// once all assigned slots have drained (the batch boundary) or when it
// grows past the high-water mark.
func (ts *textProxySess) complete(seq uint64, resp []byte) {
	ts.mu.Lock()
	ts.done[seq] = resp
	for {
		b, ok := ts.done[ts.head]
		if !ok {
			break
		}
		delete(ts.done, ts.head)
		ts.head++
		ts.w.Write(b)
	}
	if ts.head == ts.next || ts.w.Buffered() >= proxyFlushHi {
		if ts.w.Flush() != nil {
			ts.conn.Close() // the session's read loop sees the close
		}
	}
	ts.cond.Broadcast()
	ts.mu.Unlock()
}

// barrier flushes outstanding pooled frames and waits until every
// assigned slot has been emitted, so fallback text round trips cannot
// overtake pooled responses.
func (ts *textProxySess) barrier(tch *touched) {
	tch.flush()
	ts.mu.Lock()
	for ts.head != ts.next {
		ts.cond.Wait()
	}
	ts.mu.Unlock()
}

// deliver renders one pooled backend response into the session's response
// order. Called from pool reader goroutines.
func (ts *textProxySess) deliver(pd pend, status uint8, payload []byte) {
	if pd.m != nil {
		m := pd.m
		if !m.absorb(pd, status, payload) {
			return
		}
		ts.p.record(m.t0)
		ts.complete(m.seq, renderMGetMerged(m))
		return
	}
	ts.complete(pd.seq, renderTextResp(pd.kind, status, payload))
}

// renderTextResp maps one binary response onto the text protocol's exact
// reply strings for the originating verb.
func renderTextResp(kind, status uint8, payload []byte) []byte {
	switch status {
	case peerStOK:
		switch kind {
		case kGet:
			out := make([]byte, 0, len(payload)+24)
			out = append(out, "VALUE "...)
			out = strconv.AppendInt(out, int64(len(payload)), 10)
			out = append(out, "\r\n"...)
			out = append(out, payload...)
			return append(out, "\r\n"...)
		case kPut:
			return []byte("STORED\r\n")
		case kDel:
			return []byte("DELETED\r\n")
		case kTouch:
			return []byte("TOUCHED\r\n")
		}
	case peerStMiss:
		return []byte("MISS\r\n")
	case peerStShed:
		return []byte("ERR SHED server overloaded\r\n")
	}
	out := make([]byte, 0, len(payload)+8)
	out = append(out, "ERR "...)
	out = append(out, payload...)
	return append(out, "\r\n"...)
}

// renderMGetMerged renders a merged BMGET fan-out as the text MGET
// response: per-key VALUE/MISS blocks in key order plus END, or — like a
// node's own whole-batch failure — a single ERR line with no END when any
// owner failed the batch or shed its sub-batch.
func renderMGetMerged(m *bmMerge) []byte {
	if msg := m.errMsg.Load(); msg != nil {
		return []byte("ERR " + *msg + "\r\n")
	}
	for _, st := range m.sts {
		if st == peerStShed {
			return []byte("ERR SHED server overloaded\r\n")
		}
	}
	var out []byte
	for i, st := range m.sts {
		if st == peerStOK {
			out = append(out, "VALUE "...)
			out = strconv.AppendInt(out, int64(len(m.vals[i])), 10)
			out = append(out, "\r\n"...)
			out = append(out, m.vals[i]...)
			out = append(out, "\r\n"...)
		} else {
			out = append(out, "MISS\r\n"...)
		}
	}
	return append(out, "END\r\n"...)
}

// readLine reads one CRLF- (or LF-) terminated line, stripped.
func readLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return "", err
	}
	if len(line) > proxyMaxLine {
		return "", errors.New("line too long")
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// canPool reports whether tenant and key fit the binary framing the pool
// speaks (anything else falls back to the text path, where the backend
// produces its own exact error strings).
func canPool(tenant, key string) bool {
	return len(tenant) > 0 && len(tenant) <= 255 && len(key) <= proxyMaxKeyLen
}

// serveText runs the text front: hot data verbs are translated onto the
// pooled binary plane and answered through the sequencer; everything else
// drains the pipeline and takes the synchronous fallback path.
func (p *Proxy) serveText(conn net.Conn, r *bufio.Reader) {
	ts := &textProxySess{
		p:        p,
		conn:     conn,
		w:        bufio.NewWriterSize(conn, 16<<10),
		done:     make(map[uint64][]byte),
		backends: make(map[string]*textBackend),
	}
	ts.cond = sync.NewCond(&ts.mu)
	defer ts.closeAll()
	var tch touched
	defer tch.flush()
	for {
		line, err := readLine(r)
		if err != nil {
			return
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		verb := strings.ToUpper(fields[0])
		hot := true
		switch verb {
		case "GET", "DEL":
			if len(fields) != 3 || !canPool(fields[1], fields[2]) {
				hot = false
				break
			}
			op, kind := uint8(peerOpGet), uint8(kGet)
			if verb == "DEL" {
				op, kind = peerOpDel, kDel
			}
			pd := pend{s: ts, op: op, kind: kind, seq: ts.allocSeq(), t0: p.now()}
			ts.scratch = appendReqFrame(ts.scratch[:0], op, 0, 0, fields[1], []byte(fields[2]), nil)
			p.route(&tch, pd, p.ring.Owner(fields[1], fields[2]), ts.scratch)

		case "TOUCH", "EXPIRE":
			if len(fields) != 4 || !canPool(fields[1], fields[2]) {
				hot = false
				break
			}
			ms, perr := strconv.ParseUint(fields[3], 10, 32)
			if perr != nil {
				hot = false
				break
			}
			pd := pend{s: ts, op: peerOpTouch, kind: kTouch, seq: ts.allocSeq(), t0: p.now()}
			ts.scratch = appendReqFrame(ts.scratch[:0], peerOpTouch, 0, uint32(ms), fields[1], []byte(fields[2]), nil)
			p.route(&tch, pd, p.ring.Owner(fields[1], fields[2]), ts.scratch)

		case "PUT":
			done, perr := p.textPutPooled(ts, r, &tch, fields)
			if perr != nil {
				ts.fatal(perr)
				return
			}
			hot = done

		case "MGET":
			hot = p.textMGetPooled(ts, &tch, fields)

		case "PING":
			ts.complete(ts.allocSeq(), []byte("PONG\r\n"))

		case "CLUSTER":
			// Membership is per node; issuing it through a proxy would be
			// ambiguous about which node should drain.
			ts.complete(ts.allocSeq(), []byte("ERR CLUSTER must be issued to a node, not the proxy\r\n"))

		case "QUIT":
			ts.barrier(&tch)
			ts.w.WriteString("BYE\r\n")
			ts.w.Flush()
			return

		default:
			hot = false
		}
		if !hot {
			ts.barrier(&tch)
			if err := p.textFallback(ts, r, line, fields, verb); err != nil {
				ts.fatal(err)
				return
			}
			if ts.w.Flush() != nil {
				return
			}
			continue
		}
		if r.Buffered() == 0 {
			tch.flush()
		}
	}
}

// fatal reports a proxy-side failure mid-command; the client stream can
// no longer be trusted to stay in sync, so the session ends after it.
func (ts *textProxySess) fatal(err error) {
	fmt.Fprintf(ts.w, "ERR proxy: %v\r\n", err)
	ts.w.Flush()
}

// textPutPooled handles a PUT whose line parses onto the binary framing:
// the value block is consumed from the client and the whole store rides
// the pool. Returns done=false (nothing consumed) when the command needs
// the fallback path; a non-nil error kills the session.
func (p *Proxy) textPutPooled(ts *textProxySess, r *bufio.Reader, tch *touched, fields []string) (done bool, err error) {
	if len(fields) != 4 && len(fields) != 6 {
		return false, nil
	}
	if !canPool(fields[1], fields[2]) || len(fields[2]) == 0 {
		return false, nil
	}
	n, perr := strconv.Atoi(fields[3])
	if perr != nil || n < 0 || n > proxyMaxValueLen {
		return false, nil
	}
	var flags uint8
	var ttlMS uint32
	if len(fields) == 6 {
		ms, perr := strconv.ParseUint(fields[5], 10, 32)
		if perr != nil || !strings.EqualFold(fields[4], "EXPIRE") {
			return false, nil
		}
		flags, ttlMS = peerFlagTTL, uint32(ms)
	}
	// The line is pool-shaped: the value block belongs to this command, so
	// consume it here (a short read means the client died mid-value).
	ts.scratch = appendReqFrame(ts.scratch[:0], peerOpPut, flags, ttlMS, fields[1], []byte(fields[2]), nil)
	base := len(ts.scratch)
	ts.scratch = append(ts.scratch, make([]byte, n)...)
	if _, err := io.ReadFull(r, ts.scratch[base:]); err != nil {
		return false, errors.New("short value")
	}
	peerLE.PutUint32(ts.scratch[0:4], uint32(peerReqHdr+len(fields[1])+len(fields[2])+n))
	// Absorb the client's value terminator, tolerating a bare LF.
	if c, err := r.ReadByte(); err == nil && c == '\r' {
		r.ReadByte()
	} else if err == nil && c != '\n' {
		r.UnreadByte()
	}
	pd := pend{s: ts, op: peerOpPut, kind: kPut, seq: ts.allocSeq(), t0: p.now()}
	p.route(tch, pd, p.ring.Owner(fields[1], fields[2]), ts.scratch)
	return true, nil
}

// textMGetPooled fans a well-formed MGET out as per-owner BMGET frames
// and re-merges the coalesced responses in client key order. Returns
// false (fallback) for malformed lines the backend should answer.
func (p *Proxy) textMGetPooled(ts *textProxySess, tch *touched, fields []string) bool {
	if len(fields) < 3 || !canPool(fields[1], "") {
		return false
	}
	k, perr := strconv.Atoi(fields[2])
	if perr != nil || k < 1 || k > proxyMaxBatchKeys || len(fields) != 3+k {
		return false
	}
	tenant, keyFields := fields[1], fields[3:]
	keys := make([][]byte, k)
	byOwner := make(map[string][]int, len(p.members))
	for i, key := range keyFields {
		keys[i] = []byte(key)
		owner := p.ring.Owner(tenant, key)
		byOwner[owner] = append(byOwner[owner], i)
	}
	m := newBMMerge(0, ts.allocSeq(), k, len(byOwner), p.now())
	for addr, idxs := range byOwner {
		ts.scratch = appendBMGetReq(ts.scratch[:0], tenant, keys, idxs)
		p.route(tch, pend{s: ts, m: m, idxs: idxs}, addr, ts.scratch)
	}
	return true
}

// textFallback handles control verbs and malformed lines over per-session
// text connections, exactly as the pre-pool proxy did: the backend
// produces its own usage errors and multi-line relays. Callers have
// already drained the pooled pipeline.
func (p *Proxy) textFallback(ts *textProxySess, r *bufio.Reader, line string, fields []string, verb string) error {
	switch verb {
	case "GET", "DEL", "TOUCH", "EXPIRE":
		if len(fields) < 3 {
			// Malformed: any node produces the right usage error.
			return ts.roundTripTo(p.members[0], line)
		}
		return ts.roundTripTo(p.ring.Owner(fields[1], fields[2]), line)

	case "PUT":
		return p.textPutFallback(ts, r, line, fields)

	case "MGET":
		// Only malformed MGETs reach here; the one-line usage error comes
		// from any node.
		return ts.roundTripTo(p.members[0], line)

	case "TENANT":
		// Registration replicates cluster-wide from whichever node takes
		// it; route by name so retries of one op land on one node. LIST
		// reads any node's registry — they converge — so use the first.
		addr := p.members[0]
		if len(fields) == 3 && (strings.EqualFold(fields[1], "ADD") || strings.EqualFold(fields[1], "DEL")) {
			addr = p.ring.Owner(fields[2], "")
		}
		if len(fields) >= 2 && strings.EqualFold(fields[1], "LIST") {
			b, err := ts.backend(addr)
			if err != nil {
				return err
			}
			b.w.WriteString(line + "\r\n")
			if err := b.w.Flush(); err != nil {
				return err
			}
			return ts.relayUntilEnd(b, nil)
		}
		return ts.roundTripTo(addr, line)

	case "STATS":
		// Per-node counters; the proxy reports the first member's, plus
		// its own pool counters injected before END. The scale suite
		// scrapes each node directly for cluster-wide views.
		b, err := ts.backend(p.members[0])
		if err != nil {
			return err
		}
		b.w.WriteString(line + "\r\n")
		if err := b.w.Flush(); err != nil {
			return err
		}
		return ts.relayUntilEnd(b, func() {
			st := p.Stats()
			fmt.Fprintf(ts.w, "STAT proxy_pool_conns %d\r\n", st.PoolConns)
			fmt.Fprintf(ts.w, "STAT proxy_pipelined_frames %d\r\n", st.PipelinedFrames)
			if st.LatencyCounts != nil {
				fmt.Fprintf(ts.w, "STAT proxy_latency_p50_us %d\r\n", st.LatencyQuantile(0.5).Microseconds())
				fmt.Fprintf(ts.w, "STAT proxy_latency_p99_us %d\r\n", st.LatencyQuantile(0.99).Microseconds())
			}
		})

	default:
		fmt.Fprintf(ts.w, "ERR unknown command %q\r\n", fields[0])
		return nil
	}
}

// roundTripTo forwards one command line and relays the one-line reply.
func (ts *textProxySess) roundTripTo(addr, line string) error {
	b, err := ts.backend(addr)
	if err != nil {
		return err
	}
	b.w.WriteString(line)
	b.w.WriteString("\r\n")
	if err := b.w.Flush(); err != nil {
		return err
	}
	resp, err := readLine(b.r)
	if err != nil {
		return err
	}
	ts.w.WriteString(resp + "\r\n")
	return nil
}

// relayUntilEnd copies response lines to the client until the END
// terminator, invoking inject (when non-nil) just before END so the proxy
// can add its own lines. A leading ERR line is a complete response on its
// own.
func (ts *textProxySess) relayUntilEnd(b *textBackend, inject func()) error {
	for {
		line, err := readLine(b.r)
		if err != nil {
			return err
		}
		if line == "END" && inject != nil {
			inject()
		}
		ts.w.WriteString(line)
		ts.w.WriteString("\r\n")
		if line == "END" || strings.HasPrefix(line, "ERR") {
			return nil
		}
	}
}

// textPutFallback forwards a malformed or un-poolable PUT over the text
// path: the value block belongs to the command, so it is read from the
// client (keeping the client stream in sync even when the command line is
// malformed) and forwarded with the line.
func (p *Proxy) textPutFallback(ts *textProxySess, r *bufio.Reader, line string, fields []string) error {
	if len(fields) < 4 {
		return ts.roundTripTo(p.members[0], line)
	}
	n, perr := strconv.Atoi(fields[3])
	if perr != nil || n < 0 {
		// No value block can follow an unparseable length; the backend
		// answers the same ERR without one.
		return ts.roundTripTo(p.members[0], line)
	}
	if n > proxyMaxBody {
		return fmt.Errorf("value length %d exceeds proxy maximum", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return errors.New("short value")
	}
	// Absorb the client's value terminator, tolerating a bare LF.
	if c, err := r.ReadByte(); err == nil && c == '\r' {
		r.ReadByte()
	} else if err == nil && c != '\n' {
		r.UnreadByte()
	}
	addr := p.members[0]
	if len(fields) >= 3 {
		addr = p.ring.Owner(fields[1], fields[2])
	}
	b, err := ts.backend(addr)
	if err != nil {
		return err
	}
	b.w.WriteString(line)
	b.w.WriteString("\r\n")
	b.w.Write(body)
	b.w.WriteString("\r\n")
	if err := b.w.Flush(); err != nil {
		return err
	}
	resp, err := readLine(b.r)
	if err != nil {
		return err
	}
	ts.w.WriteString(resp + "\r\n")
	return nil
}

// -------------------------------------------------------------- binary --

// binProxySess is one binary client. The binary contract tells clients to
// match responses by id, so pooled responses are written back in arrival
// order with the client's original id restored; no sequencer is needed.
type binProxySess struct {
	p    *Proxy
	conn net.Conn

	wmu sync.Mutex
	w   *bufio.Writer

	// outstanding counts client frames still owed a response; the writer
	// flushes when it drains (the batch boundary) or on the high-water
	// mark.
	outstanding atomic.Int64
}

// deliver writes one pooled backend response (or merged BMGET) back to
// the client. Called from pool reader goroutines.
func (bs *binProxySess) deliver(pd pend, status uint8, payload []byte) {
	if pd.m != nil {
		m := pd.m
		if !m.absorb(pd, status, payload) {
			return
		}
		bs.p.record(m.t0)
		if msg := m.errMsg.Load(); msg != nil {
			bs.writeFrame(peerStErr, peerOpBMGet, m.id, []byte(*msg))
			return
		}
		bs.writeFrame(peerStOK, peerOpBMGet, m.id, appendBMGetMerged(nil, m))
		return
	}
	bs.writeFrame(status, pd.op, pd.id, payload)
}

func (bs *binProxySess) writeFrame(status, op uint8, id uint32, payload []byte) {
	var h [4 + peerRespHdr]byte
	peerLE.PutUint32(h[0:4], uint32(peerRespHdr+len(payload)))
	h[4] = status
	h[5] = op
	peerLE.PutUint32(h[8:12], id)
	bs.wmu.Lock()
	bs.w.Write(h[:])
	bs.w.Write(payload)
	left := bs.outstanding.Add(-1)
	if left <= 0 || bs.w.Buffered() >= proxyFlushHi {
		if bs.w.Flush() != nil {
			bs.conn.Close() // the session's read loop sees the close
		}
	}
	bs.wmu.Unlock()
}

// serveBinary runs the binary front: negotiate with the client, then
// parse each request frame just enough to validate and route it, rewrite
// its id, and pipeline it through the shared pool.
func (p *Proxy) serveBinary(conn net.Conn, r *bufio.Reader) {
	var pre [4]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		return
	}
	if pre[0] != peerMagic || pre[1] != 'V' || pre[2] != 'B' {
		return
	}
	ack := [4]byte{peerMagic, 'V', 'B', peerVersion}
	if _, err := conn.Write(ack[:]); err != nil || pre[3] != peerVersion {
		return
	}

	bs := &binProxySess{p: p, conn: conn, w: bufio.NewWriterSize(conn, 64<<10)}
	var tch touched
	defer tch.flush()

	hdr := make([]byte, 4)
	var frame []byte
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			return
		}
		n := int(peerLE.Uint32(hdr))
		if n < peerReqHdr || n > proxyMaxBody {
			return
		}
		if cap(frame) < 4+n {
			frame = make([]byte, 4+n)
		}
		frame = frame[:4+n]
		copy(frame, hdr)
		if _, err := io.ReadFull(r, frame[4:]); err != nil {
			return
		}
		op := frame[4]
		tl := int(frame[6])
		id := peerLE.Uint32(frame[8:12])
		kl := int(peerLE.Uint16(frame[16:18]))
		if peerReqHdr+tl > n {
			return // framing violation, same as a node would treat it
		}
		tenant := string(frame[4+peerReqHdr : 4+peerReqHdr+tl])

		bs.outstanding.Add(1)
		switch op {
		case peerOpPing:
			// Answered locally: PING probes the proxy's own liveness.
			bs.writeFrame(peerStOK, op, id, nil)
		case peerOpBMGet:
			if !p.binBMGet(bs, &tch, frame, tenant, id, kl) {
				return
			}
		case peerOpTenantAdd, peerOpTenantDel, peerOpRegOp:
			p.route(&tch, pend{s: bs, id: id, op: op, t0: p.now()}, p.ring.Owner(tenant, ""), frame)
		case peerOpRegPull:
			p.route(&tch, pend{s: bs, id: id, op: op, t0: p.now()}, p.members[0], frame)
		case peerOpGet, peerOpPut, peerOpDel, peerOpTouch, peerOpRehome:
			if peerReqHdr+tl+kl > n {
				return
			}
			key := string(frame[4+peerReqHdr+tl : 4+peerReqHdr+tl+kl])
			p.route(&tch, pend{s: bs, id: id, op: op, t0: p.now()}, p.ring.Owner(tenant, key), frame)
		default:
			return // unknown opcode: the stream can't be trusted
		}
		if r.Buffered() == 0 {
			tch.flush()
		}
	}
}

// binBMGet validates and routes one BMGET frame: a single-owner batch
// forwards verbatim; a multi-owner batch splits into per-owner sub-frames
// whose responses re-merge into one coalesced frame. Semantic failures
// answer the same frame-level ERRs a node would; framing violations
// return false and close the client, mirroring node behavior.
func (p *Proxy) binBMGet(bs *binProxySess, tch *touched, frame []byte, tenant string, id uint32, count int) bool {
	// No flags or TTL semantics are defined for BMGET in v1.
	if frame[5] != 0 || peerLE.Uint32(frame[12:16]) != 0 {
		return false
	}
	body := frame[4+peerReqHdr+len(tenant):]
	keys := make([][]byte, 0, count)
	badKey := false
	for i := 0; i < count; i++ {
		if len(body) < 2 {
			return false
		}
		kl := int(peerLE.Uint16(body))
		body = body[2:]
		if len(body) < kl {
			return false
		}
		if kl == 0 || kl > proxyMaxKeyLen {
			badKey = true
		}
		keys = append(keys, body[:kl])
		body = body[kl:]
	}
	if len(body) != 0 {
		return false // the key list must tile the body exactly
	}
	// Semantic validation mirrors the node's: the proxy must answer these
	// itself because a split batch would otherwise slip past the node's
	// whole-frame limits (and an empty batch has no owner to route to).
	switch {
	case count == 0:
		bs.writeFrame(peerStErr, peerOpBMGet, id, []byte("empty key list"))
		return true
	case count > proxyMaxBatchKeys:
		bs.writeFrame(peerStErr, peerOpBMGet, id, []byte("too many keys"))
		return true
	case badKey:
		bs.writeFrame(peerStErr, peerOpBMGet, id, []byte("bad key length"))
		return true
	}
	byOwner := make(map[string][]int, len(p.members))
	for i, key := range keys {
		owner := p.ring.Owner(tenant, string(key))
		byOwner[owner] = append(byOwner[owner], i)
	}
	if len(byOwner) == 1 {
		// One owner serves the whole batch: forward the frame verbatim.
		for addr := range byOwner {
			p.route(tch, pend{s: bs, id: id, op: peerOpBMGet, t0: p.now()}, addr, frame)
		}
		return true
	}
	m := newBMMerge(id, 0, count, len(byOwner), p.now())
	var sub []byte
	for addr, idxs := range byOwner {
		sub = appendBMGetReq(sub[:0], tenant, keys, idxs)
		p.route(tch, pend{s: bs, m: m, idxs: idxs}, addr, sub)
	}
	return true
}
