package cluster

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Peer is a binary-protocol client for node-to-node traffic: registry
// replication (REG_OP/REG_PULL) and key re-homing (REHOME). The wire
// constants are mirrored from internal/service — the frame layout is the
// contract, not a shared Go package — the same stance the loadgen's binary
// client takes. A Peer is safe for concurrent use; calls serialize on one
// mutex because peer traffic is control-plane (broadcasts, drains), not
// the data path.
type Peer struct {
	addr string

	mu   sync.Mutex
	conn net.Conn
	rbuf []byte
}

// Mirrored binary wire constants (see internal/service/binproto.go).
const (
	peerMagic   = 0x83
	peerVersion = 1
	peerReqHdr  = 16
	peerRespHdr = 8

	peerOpGet       = 1
	peerOpPut       = 2
	peerOpDel       = 3
	peerOpTouch     = 4
	peerOpPing      = 5
	peerOpTenantAdd = 6
	peerOpTenantDel = 7
	peerOpRegOp     = 8
	peerOpRegPull   = 9
	peerOpRehome    = 10
	peerOpBMGet     = 11

	peerStOK   = 0
	peerStMiss = 1
	peerStErr  = 2
	peerStShed = 3

	peerFlagTTL    = 1 << 0
	peerFlagRegAdd = 1 << 0

	// peerDialTimeout bounds connect+negotiate; peerIOTimeout bounds each
	// request/response exchange. Control-plane traffic, so generous.
	peerDialTimeout = 5 * time.Second
	peerIOTimeout   = 10 * time.Second
)

var peerLE = binary.LittleEndian

// NewPeer returns an unconnected peer client; the first call dials.
func NewPeer(addr string) *Peer { return &Peer{addr: addr} }

// Addr returns the peer's address.
func (p *Peer) Addr() string { return p.addr }

// connLocked returns the live connection, dialing and negotiating if
// needed. Caller holds p.mu.
func (p *Peer) connLocked() (net.Conn, error) {
	if p.conn != nil {
		return p.conn, nil
	}
	conn, err := net.DialTimeout("tcp", p.addr, peerDialTimeout)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial peer %s: %w", p.addr, err)
	}
	conn.SetDeadline(time.Now().Add(peerDialTimeout))
	if _, err := conn.Write([]byte{peerMagic, 'V', 'B', peerVersion}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("cluster: negotiate with %s: %w", p.addr, err)
	}
	var ack [4]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("cluster: negotiate with %s: %w", p.addr, err)
	}
	if ack[0] != peerMagic {
		conn.Close()
		return nil, fmt.Errorf("cluster: peer %s is busy or not speaking binary", p.addr)
	}
	if ack[3] != peerVersion {
		conn.Close()
		return nil, fmt.Errorf("cluster: peer %s speaks binary v%d, want v%d", p.addr, ack[3], peerVersion)
	}
	conn.SetDeadline(time.Time{})
	p.conn = conn
	return conn, nil
}

// dropLocked discards the connection after an I/O error so the next call
// redials. Caller holds p.mu.
func (p *Peer) dropLocked() {
	if p.conn != nil {
		p.conn.Close()
		p.conn = nil
	}
}

// Close releases the connection.
func (p *Peer) Close() {
	p.mu.Lock()
	p.dropLocked()
	p.mu.Unlock()
}

// appendFrame encodes one request frame onto dst.
func appendFrame(dst []byte, op, flags uint8, id, ttlMS uint32, tenant, key string, val []byte) []byte {
	n := peerReqHdr + len(tenant) + len(key) + len(val)
	var h [4 + peerReqHdr]byte
	peerLE.PutUint32(h[0:4], uint32(n))
	h[4] = op
	h[5] = flags
	h[6] = uint8(len(tenant))
	peerLE.PutUint32(h[8:12], id)
	peerLE.PutUint32(h[12:16], ttlMS)
	peerLE.PutUint16(h[16:18], uint16(len(key)))
	dst = append(dst, h[:]...)
	dst = append(dst, tenant...)
	dst = append(dst, key...)
	return append(dst, val...)
}

// readRespLocked reads one response frame, returning status and payload.
// The payload aliases p.rbuf and is only valid until the next call. Caller
// holds p.mu.
func (p *Peer) readRespLocked(conn net.Conn) (status uint8, id uint32, payload []byte, err error) {
	var lb [4]byte
	if _, err := io.ReadFull(conn, lb[:]); err != nil {
		return 0, 0, nil, err
	}
	n := int(peerLE.Uint32(lb[:]))
	if n < peerRespHdr || n > 64<<20 {
		return 0, 0, nil, fmt.Errorf("cluster: peer %s sent frame length %d", p.addr, n)
	}
	if cap(p.rbuf) < n {
		p.rbuf = make([]byte, n)
	}
	b := p.rbuf[:n]
	if _, err := io.ReadFull(conn, b); err != nil {
		return 0, 0, nil, err
	}
	return b[0], peerLE.Uint32(b[4:8]), b[peerRespHdr:], nil
}

// roundTrip sends one frame and awaits its response under the mutex.
func (p *Peer) roundTrip(op, flags uint8, ttlMS uint32, tenant, key string, val []byte) (uint8, []byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	conn, err := p.connLocked()
	if err != nil {
		return 0, nil, err
	}
	conn.SetDeadline(time.Now().Add(peerIOTimeout))
	frame := appendFrame(nil, op, flags, 1, ttlMS, tenant, key, val)
	if _, err := conn.Write(frame); err != nil {
		p.dropLocked()
		return 0, nil, fmt.Errorf("cluster: write to %s: %w", p.addr, err)
	}
	st, _, payload, err := p.readRespLocked(conn)
	if err != nil {
		p.dropLocked()
		return 0, nil, fmt.Errorf("cluster: read from %s: %w", p.addr, err)
	}
	conn.SetDeadline(time.Time{})
	// payload aliases p.rbuf, which the next call (possibly from another
	// goroutine, once the mutex drops) overwrites; copy before returning.
	return st, append([]byte(nil), payload...), nil
}

// Ping round-trips a PING frame.
func (p *Peer) Ping() error {
	st, payload, err := p.roundTrip(peerOpPing, 0, 0, "", "", nil)
	if err != nil {
		return err
	}
	if st != peerStOK {
		return fmt.Errorf("cluster: peer %s ping: %s", p.addr, payload)
	}
	return nil
}

// RegOp replicates one registry mutation (add when add is true, else
// remove) stamped with the origin's version, returning the peer's registry
// version after the merge.
func (p *Peer) RegOp(version uint64, add bool, tenant string) (uint64, error) {
	var flags uint8
	if add {
		flags = peerFlagRegAdd
	}
	var vb [8]byte
	peerLE.PutUint64(vb[:], version)
	st, payload, err := p.roundTrip(peerOpRegOp, flags, 0, tenant, "", vb[:])
	if err != nil {
		return 0, err
	}
	if st != peerStOK {
		return 0, fmt.Errorf("cluster: peer %s rejected registry op: %s", p.addr, payload)
	}
	if len(payload) != 8 {
		return 0, fmt.Errorf("cluster: peer %s registry op payload %d bytes", p.addr, len(payload))
	}
	return peerLE.Uint64(payload), nil
}

// RegPull fetches the peer's registry snapshot: version and tenant names.
func (p *Peer) RegPull() (uint64, []string, error) {
	st, payload, err := p.roundTrip(peerOpRegPull, 0, 0, "", "", nil)
	if err != nil {
		return 0, nil, err
	}
	if st != peerStOK {
		return 0, nil, fmt.Errorf("cluster: peer %s rejected registry pull: %s", p.addr, payload)
	}
	if len(payload) < 12 {
		return 0, nil, fmt.Errorf("cluster: peer %s registry pull payload %d bytes", p.addr, len(payload))
	}
	version := peerLE.Uint64(payload[0:8])
	count := int(peerLE.Uint32(payload[8:12]))
	names := make([]string, 0, count)
	b := payload[12:]
	for i := 0; i < count; i++ {
		if len(b) < 1 || len(b) < 1+int(b[0]) {
			return 0, nil, fmt.Errorf("cluster: peer %s registry pull truncated", p.addr)
		}
		names = append(names, string(b[1:1+int(b[0])]))
		b = b[1+int(b[0]):]
	}
	return version, names, nil
}

// RehomeEntry is one key in flight to its new owner. TTLMS is the
// remaining TTL in milliseconds; -1 means the entry never expires.
type RehomeEntry struct {
	Tenant string
	Key    string
	Val    []byte
	TTLMS  int64
}

// RehomeBatch streams entries as pipelined REHOME frames and drains the
// responses, returning which entries the peer acknowledged OK (frames
// carry the entry index as their id, and responses are matched on it —
// the server's per-shard rings may answer out of order). A transport
// error fails the batch; a non-OK status on one entry skips it without
// failing the rest, so one oversized or raced key cannot wedge a drain.
func (p *Peer) RehomeBatch(entries []RehomeEntry) ([]bool, error) {
	if len(entries) == 0 {
		return nil, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	conn, err := p.connLocked()
	if err != nil {
		return nil, err
	}
	conn.SetDeadline(time.Now().Add(peerIOTimeout))
	buf := make([]byte, 0, 64<<10)
	for i, e := range entries {
		var flags uint8
		var ttlMS uint32
		if e.TTLMS >= 0 {
			flags = peerFlagTTL
			if e.TTLMS > int64(^uint32(0)) {
				ttlMS = ^uint32(0)
			} else {
				ttlMS = uint32(e.TTLMS)
			}
			if ttlMS == 0 {
				ttlMS = 1 // TTL 0 with the flag means "never"; keep it expiring
			}
		}
		buf = appendFrame(buf, peerOpRehome, flags, uint32(i), ttlMS, e.Tenant, e.Key, e.Val)
		if len(buf) >= 256<<10 {
			if _, err := conn.Write(buf); err != nil {
				p.dropLocked()
				return nil, fmt.Errorf("cluster: rehome write to %s: %w", p.addr, err)
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := conn.Write(buf); err != nil {
			p.dropLocked()
			return nil, fmt.Errorf("cluster: rehome write to %s: %w", p.addr, err)
		}
	}
	acked := make([]bool, len(entries))
	for range entries {
		st, id, _, err := p.readRespLocked(conn)
		if err != nil {
			p.dropLocked()
			return nil, fmt.Errorf("cluster: rehome read from %s: %w", p.addr, err)
		}
		if st == peerStOK && int(id) < len(acked) {
			acked[id] = true
		}
	}
	conn.SetDeadline(time.Time{})
	return acked, nil
}

// appendBMGetFrame encodes one BMGET request frame onto dst: the header's
// key-length field carries the key COUNT and the body is the tenant name
// followed by count (u16 length, key bytes) entries.
func appendBMGetFrame(dst []byte, id uint32, tenant string, keys []string) []byte {
	n := peerReqHdr + len(tenant)
	for _, k := range keys {
		n += 2 + len(k)
	}
	var h [4 + peerReqHdr]byte
	peerLE.PutUint32(h[0:4], uint32(n))
	h[4] = peerOpBMGet
	h[6] = uint8(len(tenant))
	peerLE.PutUint32(h[8:12], id)
	peerLE.PutUint16(h[16:18], uint16(len(keys)))
	dst = append(dst, h[:]...)
	dst = append(dst, tenant...)
	var kl [2]byte
	for _, k := range keys {
		peerLE.PutUint16(kl[:], uint16(len(k)))
		dst = append(dst, kl[:]...)
		dst = append(dst, k...)
	}
	return dst
}

// BMGetEntry is one key's outcome from a BMGet: a hit with its value, a
// miss, or Shed when the owner refused that key's shard under overload.
type BMGetEntry struct {
	Hit  bool
	Shed bool
	Val  []byte
}

// BMGet fetches a batch of keys from one tenant in a single multi-key
// frame. The response carries one entry per key in request order; a
// frame-level ERR (unknown tenant, malformed batch, injected fault) fails
// the whole call.
func (p *Peer) BMGet(tenant string, keys []string) ([]BMGetEntry, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	conn, err := p.connLocked()
	if err != nil {
		return nil, err
	}
	conn.SetDeadline(time.Now().Add(peerIOTimeout))
	if _, err := conn.Write(appendBMGetFrame(nil, 1, tenant, keys)); err != nil {
		p.dropLocked()
		return nil, fmt.Errorf("cluster: bmget write to %s: %w", p.addr, err)
	}
	st, _, payload, err := p.readRespLocked(conn)
	if err != nil {
		p.dropLocked()
		return nil, fmt.Errorf("cluster: bmget read from %s: %w", p.addr, err)
	}
	conn.SetDeadline(time.Time{})
	if st != peerStOK {
		return nil, fmt.Errorf("cluster: peer %s rejected bmget: %s", p.addr, payload)
	}
	entries, err := parseBMGetPayload(payload, len(keys))
	if err != nil {
		return nil, fmt.Errorf("cluster: peer %s bmget: %w", p.addr, err)
	}
	return entries, nil
}

// parseBMGetPayload decodes a coalesced BMGET response body — u16 count,
// then count (u8 status, u32 value length, value bytes) entries — copying
// values out of the shared read buffer.
func parseBMGetPayload(payload []byte, want int) ([]BMGetEntry, error) {
	if len(payload) < 2 {
		return nil, fmt.Errorf("bmget payload %d bytes", len(payload))
	}
	count := int(peerLE.Uint16(payload[0:2]))
	if count != want {
		return nil, fmt.Errorf("bmget answered %d keys, want %d", count, want)
	}
	entries := make([]BMGetEntry, 0, count)
	b := payload[2:]
	for i := 0; i < count; i++ {
		if len(b) < 5 {
			return nil, fmt.Errorf("bmget payload truncated at entry %d", i)
		}
		st := b[0]
		vlen := int(peerLE.Uint32(b[1:5]))
		b = b[5:]
		if len(b) < vlen {
			return nil, fmt.Errorf("bmget payload truncated at entry %d value", i)
		}
		e := BMGetEntry{}
		switch st {
		case peerStOK:
			e.Hit = true
			e.Val = append([]byte(nil), b[:vlen]...)
		case peerStMiss:
		case peerStShed:
			e.Shed = true
		default:
			return nil, fmt.Errorf("bmget entry %d status %d", i, st)
		}
		b = b[vlen:]
		entries = append(entries, e)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("bmget payload has %d trailing bytes", len(b))
	}
	return entries, nil
}
