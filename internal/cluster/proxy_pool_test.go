// Pool lifecycle tests: the proxy's shared backend connections must fail
// fast and heal. A backend dying mid-pipeline turns every in-flight
// request on that connection into a prompt ERR — never a hang — while
// other backends keep answering on the same client connection; the next
// batch after a restart redials transparently. The observability surface
// (STATS injection, Stats(), -track-latency histograms) rides the same
// fixtures.
package cluster_test

import (
	"encoding/binary"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"vantage/internal/cluster"
	"vantage/internal/service"
	"vantage/internal/service/loadgen"
)

// poolNode is one restartable cluster member: Close tears it down and
// start() brings a fresh empty node back up at the same address.
type poolNode struct {
	addr string
	svc  *service.Service
	srv  *service.Server
	node *cluster.Node
}

func (pn *poolNode) start(t *testing.T, addrs []string) {
	t.Helper()
	svc, err := service.New(service.Config{
		Shards: 2, LinesPerShard: 1024, MaxTenants: 4, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := service.ServeWith(svc, listenAt(t, pn.addr), service.ServerConfig{})
	nd, err := cluster.NewNode(svc, pn.addr, addrs, scaleVNodes)
	if err != nil {
		t.Fatal(err)
	}
	svc.SetClusterHandler(nd)
	pn.svc, pn.srv, pn.node = svc, srv, nd
}

func (pn *poolNode) stop() {
	if pn.srv != nil {
		pn.srv.Close()
		pn.svc.Close()
		pn.srv, pn.svc, pn.node = nil, nil, nil
	}
}

// bootPoolCluster starts a 3-node cluster with per-node handles (so tests
// can kill and restart individual members) and a proxy built with cfg.
func bootPoolCluster(t *testing.T, cfg cluster.ProxyConfig) ([]*poolNode, *cluster.Proxy) {
	t.Helper()
	addrs := reservePorts(t, 3)
	nodes := make([]*poolNode, len(addrs))
	for i, addr := range addrs {
		nodes[i] = &poolNode{addr: addr}
		nodes[i].start(t, addrs)
		t.Cleanup(nodes[i].stop)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p, err := cluster.NewProxyWith(lis, addrs, scaleVNodes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return nodes, p
}

// keyOwnedBy finds a key the ring assigns to addr for the given tenant.
func keyOwnedBy(t *testing.T, ring *cluster.Ring, tenant, addr string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		k := "k" + string(rune('a'+i%26)) + "-" + itoa(i)
		if ring.Owner(tenant, k) == addr {
			return k
		}
	}
	t.Fatalf("no key owned by %s", addr)
	return ""
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}

// TestProxyBackendDeathAndReconnect kills one backend under a shared pool
// connection and requires (1) the victim's requests turn into ERR lines,
// promptly; (2) requests to the survivors keep working on the same client
// connection; (3) after the backend restarts, the next request redials and
// answers normally — reconnect-on-next-batch, no proxy restart.
func TestProxyBackendDeathAndReconnect(t *testing.T) {
	nodes, p := bootPoolCluster(t, cluster.ProxyConfig{})
	addrs := make([]string, len(nodes))
	for i, pn := range nodes {
		addrs[i] = pn.addr
	}
	ring, err := cluster.NewRing(addrs, scaleVNodes)
	if err != nil {
		t.Fatal(err)
	}

	tc := dialScale(t, p.Addr().String())
	if resp := tc.roundTrip("TENANT ADD pool"); !strings.HasPrefix(resp, "OK") {
		t.Fatalf("TENANT ADD: %q", resp)
	}

	// One key per backend, all stored through the proxy.
	keys := make([]string, len(nodes))
	for i, pn := range nodes {
		keys[i] = keyOwnedBy(t, ring, "pool", pn.addr)
		tc.put("pool", keys[i], "v-"+keys[i], -1)
		if v, hit := tc.get("pool", keys[i]); !hit || v != "v-"+keys[i] {
			t.Fatalf("warm GET %s: %q %v", keys[i], v, hit)
		}
	}

	// Kill backend 1. The pooled connection to it is live with our GETs'
	// responses already drained, so the next request either rides the dead
	// connection (readLoop EOF synthesizes the ERR) or triggers a failed
	// redial ("backend unavailable") — both must answer, quickly.
	victim := nodes[1]
	victim.stop()
	tc.c.SetReadDeadline(time.Now().Add(10 * time.Second))
	if resp := tc.roundTrip("GET pool " + keys[1]); !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("GET to dead backend: %q", resp)
	}

	// Survivors still answer on the same client connection.
	if v, hit := tc.get("pool", keys[0]); !hit || v != "v-"+keys[0] {
		t.Fatalf("survivor GET after death: %q %v", v, hit)
	}
	if v, hit := tc.get("pool", keys[2]); !hit || v != "v-"+keys[2] {
		t.Fatalf("survivor GET after death: %q %v", v, hit)
	}

	// An MGET spanning the dead backend collapses to the whole-batch ERR
	// shape (single ERR line, no END) instead of hanging on the lost leg.
	tc.w.WriteString("MGET pool 2 " + keys[0] + " " + keys[1] + "\r\n")
	if err := tc.w.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := readUntilEnd(t, tc)
	if len(lines) != 1 || !strings.HasPrefix(lines[0], "ERR") {
		t.Fatalf("MGET spanning dead backend: %q", lines)
	}

	// Restart at the same address, catch the registry up, and the very next
	// proxied request must redial: a MISS (fresh cache), never an ERR.
	victim.start(t, addrs)
	if err := victim.node.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		tc.c.SetReadDeadline(time.Now().Add(10 * time.Second))
		resp := tc.roundTrip("GET pool " + keys[1])
		if resp == "MISS" {
			break
		}
		if !strings.HasPrefix(resp, "ERR") || time.Now().After(deadline) {
			t.Fatalf("GET after restart: %q", resp)
		}
		time.Sleep(20 * time.Millisecond)
	}
	tc.put("pool", keys[1], "again", -1)
	if v, hit := tc.get("pool", keys[1]); !hit || v != "again" {
		t.Fatalf("PUT/GET after restart: %q %v", v, hit)
	}
}

// TestProxyStatsAndLatency checks the proxy's observability surface: the
// STATS relay injects the pool gauges (and latency quantiles when tracking
// is on) before END, and Stats() exposes live counters plus a populated
// latency histogram under -track-latency.
func TestProxyStatsAndLatency(t *testing.T) {
	_, p := bootPoolCluster(t, cluster.ProxyConfig{TrackLatency: true})
	tc := dialScale(t, p.Addr().String())

	if resp := tc.roundTrip("TENANT ADD obs"); !strings.HasPrefix(resp, "OK") {
		t.Fatalf("TENANT ADD: %q", resp)
	}
	for i := 0; i < 32; i++ {
		k := "k" + itoa(i)
		tc.put("obs", k, "v", -1)
		tc.get("obs", k)
	}

	tc.w.WriteString("STATS\r\n")
	if err := tc.w.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := readUntilEnd(t, tc)
	want := map[string]bool{
		"STAT proxy_pool_conns ":       false,
		"STAT proxy_pipelined_frames ": false,
		"STAT proxy_latency_p50_us ":   false,
		"STAT proxy_latency_p99_us ":   false,
	}
	for _, l := range lines {
		for prefix := range want {
			if strings.HasPrefix(l, prefix) {
				want[prefix] = true
			}
		}
	}
	for prefix, seen := range want {
		if !seen {
			t.Fatalf("STATS missing %q: %q", prefix, lines)
		}
	}
	if lines[len(lines)-1] != "END" {
		t.Fatalf("STATS terminator: %q", lines)
	}

	st := p.Stats()
	if st.PoolConns < 1 || st.PoolConnsTotal < 1 {
		t.Fatalf("pool gauges: %+v", st)
	}
	if st.PipelinedFrames == 0 {
		t.Fatalf("no pipelined frames recorded: %+v", st)
	}
	if st.LatencyCounts == nil {
		t.Fatal("TrackLatency on but LatencyCounts nil")
	}
	var total uint64
	for _, c := range st.LatencyCounts {
		total += c
	}
	if total == 0 || st.LatencySumNS == 0 {
		t.Fatalf("empty latency histogram: total=%d sum=%d", total, st.LatencySumNS)
	}
	if st.LatencyQuantile(0.99) <= 0 {
		t.Fatalf("p99 = %v", st.LatencyQuantile(0.99))
	}
}

// rawBinConn is a minimal binary-protocol client speaking the wire bytes
// directly (the frame layout is the contract, deliberately not a shared Go
// package — same stance as the Peer client).
type rawBinConn struct {
	t *testing.T
	c net.Conn
}

func dialRawBin(t *testing.T, addr string) *rawBinConn {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if _, err := c.Write([]byte{0x83, 'V', 'B', 1}); err != nil {
		t.Fatal(err)
	}
	var ack [4]byte
	if _, err := io.ReadFull(c, ack[:]); err != nil {
		t.Fatal(err)
	}
	return &rawBinConn{t: t, c: c}
}

// tenantOp sends one TENANT_ADD (6) or TENANT_DEL (7) frame and returns
// the response status.
func (rb *rawBinConn) tenantOp(op uint8, id uint32, tenant string) uint8 {
	rb.t.Helper()
	frame := make([]byte, 4+16+len(tenant))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(16+len(tenant)))
	frame[4] = op
	frame[6] = uint8(len(tenant))
	binary.LittleEndian.PutUint32(frame[8:12], id)
	copy(frame[20:], tenant)
	if _, err := rb.c.Write(frame); err != nil {
		rb.t.Fatal(err)
	}
	var hdr [4]byte
	if _, err := io.ReadFull(rb.c, hdr[:]); err != nil {
		rb.t.Fatal(err)
	}
	resp := make([]byte, binary.LittleEndian.Uint32(hdr[:]))
	if _, err := io.ReadFull(rb.c, resp); err != nil {
		rb.t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint32(resp[4:8]); got != id {
		rb.t.Fatalf("response id %d, want %d", got, id)
	}
	return resp[0]
}

// TestConcurrentBinaryTenantAdds is the regression test for a distributed
// poller deadlock: TENANT_ADD replicates to every peer synchronously, so
// when it executed inline on the binary transport's event loop, two nodes
// adding tenants at the same time each blocked their loop on the other's
// RegOp reply — which the other loop, equally blocked, could not write —
// until the 5s peer timeout broke the cycle (observed as reproducible
// +10s stalls in the cluster/3node/proxy/bmget bench row). The add now
// answers out of band, so concurrent adds on different nodes must complete
// in milliseconds; the whole test failing its deadline means the loop
// blocked again.
func TestConcurrentBinaryTenantAdds(t *testing.T) {
	nodes, _ := bootPoolCluster(t, cluster.ProxyConfig{})

	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for round := 0; round < 5; round++ {
			start := make(chan struct{})
			for i := 0; i < 2; i++ {
				rb := dialRawBin(t, nodes[i].addr)
				wg.Add(1)
				go func(rb *rawBinConn, name string) {
					defer wg.Done()
					<-start
					if st := rb.tenantOp(6, 1, name); st != 0 {
						t.Errorf("TENANT_ADD %s: status %d", name, st)
					}
					if st := rb.tenantOp(7, 2, name); st != 0 {
						t.Errorf("TENANT_DEL %s: status %d", name, st)
					}
				}(rb, "cc"+itoa(2*round+i))
			}
			close(start)
			wg.Wait()
		}
	}()
	select {
	case <-done:
	case <-time.After(4 * time.Second):
		t.Fatal("concurrent binary TENANT_ADDs did not finish in 4s: poller loop blocked on peer replication")
	}
}

// TestProxyBMGetMatchesRing drives the identical BMGET workload through
// the pooled proxy and through a ring-aware client against fresh
// same-address clusters: the proxy's split/scatter/re-merge must be
// invisible, so per-tenant accounting matches exactly.
func TestProxyBMGetMatchesRing(t *testing.T) {
	addrs := reservePorts(t, 3)

	pc := bootProxyCluster(t, addrs, true)
	viaProxy, err := loadgen.Run(loadgen.Options{
		Addr:       pc.proxyAddr,
		Tenants:    proxyTenants(),
		OpsPerConn: 3000,
		ValueSize:  32,
		Batch:      8,
		BMGet:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	pc.Close()

	bootProxyCluster(t, addrs, false)
	viaRing, err := loadgen.Run(loadgen.Options{
		ClusterAddrs: addrs,
		VNodes:       scaleVNodes,
		Tenants:      proxyTenants(),
		OpsPerConn:   3000,
		ValueSize:    32,
		Batch:        8,
		BMGet:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	pt, rt := viaProxy.Tenants[0], viaRing.Tenants[0]
	if pt.Gets != rt.Gets || pt.Hits != rt.Hits || pt.Misses != rt.Misses || pt.Puts != rt.Puts {
		t.Fatalf("proxied BMGET %+v != ring BMGET %+v", pt, rt)
	}
	if pt.Hits == 0 {
		t.Fatalf("degenerate run %+v", pt)
	}
}
