package cluster

import (
	"bufio"
	"encoding/binary"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"vantage/internal/latency"
)

// The proxy's backend layer: one persistent negotiated binary connection
// per cluster member, shared by every proxied client. Frames from all
// clients are pipelined onto the shared connection — ids are rewritten to
// a pool-internal counter so concurrent clients cannot collide — and a
// single reader goroutine per connection demultiplexes responses back to
// the submitting client by id. Writes are buffered and flushed at client
// batch boundaries, so a 32-deep client batch costs the proxy one write
// and one read per backend instead of 32 round trips.
//
// Failure model: when a backend connection dies (read error, write error,
// or negotiation failure), every in-flight request on it is answered with
// a synthesized ERR frame — clients get a definite failure, never a hang —
// and the connection is removed from the pool so the next client batch
// triggers a fresh dial (reconnect-on-next-batch).

// pend describes one forwarded request awaiting its backend response.
type pend struct {
	s    respSink
	id   uint32   // the client's original request id, restored on delivery
	op   uint8    // client-visible opcode for the response frame
	kind uint8    // text front: which rendering the response needs
	seq  uint64   // text front: response-ordering slot
	m    *bmMerge // non-nil: one sub-batch of a split BMGET
	idxs []int    // merge only: client key positions this sub-batch covers
	t0   int64    // submit time (ns since epoch) when latency tracking is on
}

// respSink receives demultiplexed backend responses (or synthesized
// failures). payload is only valid for the duration of the call.
type respSink interface {
	deliver(pd pend, status uint8, payload []byte)
}

// bmMerge re-merges the per-owner sub-responses of a split BMGET into one
// coalesced response in the client's key order. The last sub-response to
// land finishes the merge; a frame-level ERR from any owner wins over all
// per-key results (first error is kept), matching the node's own
// whole-batch failure semantics.
type bmMerge struct {
	id     uint32 // client request id (binary front) — unused by text
	seq    uint64 // text front ordering slot
	sts    []uint8
	vals   [][]byte
	remain atomic.Int32
	errMsg atomic.Pointer[string]
	t0     int64
}

func newBMMerge(id uint32, seq uint64, count, owners int, t0 int64) *bmMerge {
	m := &bmMerge{id: id, seq: seq, sts: make([]uint8, count), vals: make([][]byte, count), t0: t0}
	m.remain.Store(int32(owners))
	return m
}

// absorb folds one sub-response into the merge and reports whether this
// was the final one (the caller then renders the merged result).
func (m *bmMerge) absorb(pd pend, status uint8, payload []byte) bool {
	switch status {
	case peerStOK:
		if err := scatterBMGet(m, payload, pd.idxs); err != "" {
			m.setErr(err)
		}
	case peerStErr:
		m.setErr(string(payload))
	case peerStShed:
		// A node never sheds a whole BMGET frame (sheds are per-key), but a
		// synthesized or future status maps to per-key sheds here.
		for _, i := range pd.idxs {
			m.sts[i] = peerStShed
		}
	default:
		m.setErr("backend sent unexpected BMGET status")
	}
	return m.remain.Add(-1) == 0
}

func (m *bmMerge) setErr(msg string) {
	m.errMsg.CompareAndSwap(nil, &msg)
}

// scatterBMGet decodes one owner's coalesced payload into the merge's
// client-order slots. Returns a non-empty message on a malformed payload.
func scatterBMGet(m *bmMerge, payload []byte, idxs []int) string {
	if len(payload) < 2 {
		return "backend sent short BMGET payload"
	}
	count := int(peerLE.Uint16(payload))
	if count != len(idxs) {
		return "backend BMGET count mismatch"
	}
	p := payload[2:]
	for _, i := range idxs {
		if len(p) < 5 {
			return "backend BMGET entry truncated"
		}
		st := p[0]
		vl := int(peerLE.Uint32(p[1:5]))
		p = p[5:]
		if vl > len(p) {
			return "backend BMGET value truncated"
		}
		m.sts[i] = st
		if st == peerStOK {
			m.vals[i] = append([]byte(nil), p[:vl]...)
		}
		p = p[vl:]
	}
	return ""
}

// appendBMGetMerged encodes the merged result in the BMGET response
// payload layout (u16 count, then per key u8 status / u32 vlen / value).
func appendBMGetMerged(dst []byte, m *bmMerge) []byte {
	var cb [2]byte
	peerLE.PutUint16(cb[:], uint16(len(m.sts)))
	dst = append(dst, cb[:]...)
	for i, st := range m.sts {
		var e [5]byte
		e[0] = st
		peerLE.PutUint32(e[1:5], uint32(len(m.vals[i])))
		dst = append(dst, e[:]...)
		dst = append(dst, m.vals[i]...)
	}
	return dst
}

// pool owns the shared backend connections.
type pool struct {
	mu     sync.Mutex
	conns  map[string]*poolConn
	closed bool

	lat *latency.Hist // nil unless latency tracking is on

	connsGauge atomic.Int64  // currently open backend connections
	connsTotal atomic.Uint64 // dials that succeeded, lifetime
	frames     atomic.Uint64 // frames pipelined through the pool, lifetime
}

func newPool(lat *latency.Hist) *pool {
	return &pool{conns: make(map[string]*poolConn), lat: lat}
}

// poolConn is one shared backend connection. The write side is a mutex-
// guarded buffered writer (frames from many clients interleave; each frame
// is appended atomically); the read side is one goroutine demultiplexing
// response frames via the pending map.
type poolConn struct {
	pl   *pool
	addr string

	ready   chan struct{} // closed once dial+negotiate finishes
	dialErr error
	conn    net.Conn

	wmu sync.Mutex
	w   *bufio.Writer

	pmu     sync.Mutex
	pending map[uint32]pend
	nextID  uint32
	dead    bool
}

// get returns the live connection for addr, dialing one if none exists.
// Only the first caller dials; concurrent callers wait on ready.
func (pl *pool) get(addr string) (*poolConn, error) {
	pl.mu.Lock()
	if pl.closed {
		pl.mu.Unlock()
		return nil, errPoolClosed
	}
	pc := pl.conns[addr]
	if pc == nil {
		pc = &poolConn{pl: pl, addr: addr, ready: make(chan struct{}), pending: make(map[uint32]pend)}
		pl.conns[addr] = pc
		pl.mu.Unlock()
		pc.dial()
	} else {
		pl.mu.Unlock()
		<-pc.ready
	}
	if pc.dialErr != nil {
		return nil, pc.dialErr
	}
	return pc, nil
}

var errPoolClosed = &net.OpError{Op: "dial", Err: io.ErrClosedPipe}

// dial connects and negotiates the binary preamble, then starts the
// demultiplexing reader. On failure the slot is removed so the next batch
// retries the dial.
func (pc *poolConn) dial() {
	defer close(pc.ready)
	conn, err := net.DialTimeout("tcp", pc.addr, peerDialTimeout)
	if err == nil {
		conn.SetDeadline(time.Now().Add(peerDialTimeout))
		pre := [4]byte{peerMagic, 'V', 'B', peerVersion}
		if _, werr := conn.Write(pre[:]); werr != nil {
			err = werr
		} else if _, rerr := io.ReadFull(conn, pre[:]); rerr != nil {
			err = rerr
		} else if pre[0] != peerMagic || pre[3] != peerVersion {
			err = errNegotiate
		}
		conn.SetDeadline(time.Time{})
	}
	if err != nil {
		if conn != nil {
			conn.Close()
		}
		pc.dialErr = err
		pc.dead = true
		pc.pl.drop(pc)
		return
	}
	pc.conn = conn
	pc.w = bufio.NewWriterSize(conn, 64<<10)
	pc.pl.connsGauge.Add(1)
	pc.pl.connsTotal.Add(1)
	go pc.readLoop()
}

var errNegotiate = &net.OpError{Op: "negotiate", Err: io.ErrUnexpectedEOF}

func (pl *pool) drop(pc *poolConn) {
	pl.mu.Lock()
	if pl.conns[pc.addr] == pc {
		delete(pl.conns, pc.addr)
	}
	pl.mu.Unlock()
}

// submit registers one forwarded frame and appends it to the connection's
// write buffer without flushing. frame is the full wire encoding (4-byte
// length prefix included); its id field is rewritten in place to the
// pool-internal id before buffering. When the connection is already dead
// the request is answered immediately with a synthesized ERR — the caller
// never has to special-case a dying backend.
func (pc *poolConn) submit(pd pend, frame []byte) {
	pc.pmu.Lock()
	if pc.dead {
		pc.pmu.Unlock()
		pc.failOne(pd)
		return
	}
	pc.nextID++
	id := pc.nextID
	peerLE.PutUint32(frame[8:12], id)
	pc.pending[id] = pd
	pc.pmu.Unlock()

	pc.wmu.Lock()
	pc.w.Write(frame) // errors are sticky; flush surfaces them
	pc.wmu.Unlock()
	pc.pl.frames.Add(1)
}

// flush pushes buffered frames to the wire; a write error kills the
// connection (and synthesizes failures for everything in flight).
func (pc *poolConn) flush() {
	pc.wmu.Lock()
	err := pc.w.Flush()
	pc.wmu.Unlock()
	if err != nil {
		pc.fail()
	}
}

// readLoop demultiplexes response frames to their pending requests until
// the connection dies.
func (pc *poolConn) readLoop() {
	r := bufio.NewReaderSize(pc.conn, 64<<10)
	var hdr [4]byte
	var frame []byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			break
		}
		n := int(peerLE.Uint32(hdr[:]))
		if n < peerRespHdr || n > proxyMaxBody {
			break
		}
		if cap(frame) < n {
			frame = make([]byte, n)
		}
		frame = frame[:n]
		if _, err := io.ReadFull(r, frame); err != nil {
			break
		}
		id := peerLE.Uint32(frame[4:8])
		pc.pmu.Lock()
		pd, ok := pc.pending[id]
		if ok {
			delete(pc.pending, id)
		}
		pc.pmu.Unlock()
		if !ok {
			break // response for nothing we sent: protocol violation
		}
		if pc.pl.lat != nil && pd.t0 != 0 && pd.m == nil {
			pc.pl.lat.Record(time.Duration(time.Now().UnixNano() - pd.t0))
		}
		pd.s.deliver(pd, frame[0], frame[peerRespHdr:])
	}
	pc.fail()
}

// fail marks the connection dead, removes it from the pool, and answers
// every in-flight request with a synthesized ERR so no client hangs.
func (pc *poolConn) fail() {
	pc.pmu.Lock()
	if pc.dead {
		pc.pmu.Unlock()
		return
	}
	pc.dead = true
	pending := pc.pending
	pc.pending = nil
	pc.pmu.Unlock()
	pc.conn.Close()
	pc.pl.drop(pc)
	pc.pl.connsGauge.Add(-1)
	for _, pd := range pending {
		pc.failOne(pd)
	}
}

func (pc *poolConn) failOne(pd pend) {
	pd.s.deliver(pd, peerStErr, []byte("proxy: backend "+pc.addr+" lost"))
}

// close shuts every connection down; in-flight requests get synthesized
// errors via each connection's fail path.
func (pl *pool) close() {
	pl.mu.Lock()
	pl.closed = true
	conns := make([]*poolConn, 0, len(pl.conns))
	for _, pc := range pl.conns {
		conns = append(conns, pc)
	}
	pl.mu.Unlock()
	for _, pc := range conns {
		select {
		case <-pc.ready:
			if pc.dialErr == nil {
				pc.fail()
			}
		default:
			// Still dialing; its own failure path cleans up.
		}
	}
}

// touched tracks which pool connections a client batch wrote to, so the
// batch boundary can flush exactly those. The slice is tiny (cluster
// member count) and reused across batches.
type touched struct {
	conns []*poolConn
}

func (t *touched) add(pc *poolConn) {
	for _, c := range t.conns {
		if c == pc {
			return
		}
	}
	t.conns = append(t.conns, pc)
}

func (t *touched) flush() {
	for i, pc := range t.conns {
		pc.flush()
		t.conns[i] = nil
	}
	t.conns = t.conns[:0]
}

// appendReqFrame encodes one binary request frame (length prefix
// included). The id field is left zero — submit rewrites it.
func appendReqFrame(dst []byte, op, flags uint8, ttlMS uint32, tenant string, key, val []byte) []byte {
	n := peerReqHdr + len(tenant) + len(key) + len(val)
	var h [4 + peerReqHdr]byte
	peerLE.PutUint32(h[0:4], uint32(n))
	h[4] = op
	h[5] = flags
	h[6] = uint8(len(tenant))
	peerLE.PutUint32(h[12:16], ttlMS)
	peerLE.PutUint16(h[16:18], uint16(len(key)))
	dst = append(dst, h[:]...)
	dst = append(dst, tenant...)
	dst = append(dst, key...)
	return append(dst, val...)
}

// appendBMGetReq encodes a BMGET request frame for the given subset of
// keys (length prefix included, id zero).
func appendBMGetReq(dst []byte, tenant string, keys [][]byte, idxs []int) []byte {
	body := 0
	for _, i := range idxs {
		body += 2 + len(keys[i])
	}
	n := peerReqHdr + len(tenant) + body
	var h [4 + peerReqHdr]byte
	peerLE.PutUint32(h[0:4], uint32(n))
	h[4] = peerOpBMGet
	h[6] = uint8(len(tenant))
	peerLE.PutUint16(h[16:18], uint16(len(idxs)))
	dst = append(dst, h[:]...)
	dst = append(dst, tenant...)
	for _, i := range idxs {
		var l [2]byte
		binary.LittleEndian.PutUint16(l[:], uint16(len(keys[i])))
		dst = append(dst, l[:]...)
		dst = append(dst, keys[i]...)
	}
	return dst
}
